//===- face/Eigenfaces.cpp - PCA face identification ------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "face/Eigenfaces.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace wbt;
using namespace wbt::face;

namespace {

/// Identity archetype: smooth geometric "face" parameters.
struct Identity {
  double EyeY, EyeSpacing, EyeSize;
  double NoseLen, MouthY, MouthWidth, FaceWidth, Brightness;
};

Identity makeIdentity(Rng &R) {
  Identity Id;
  Id.EyeY = R.uniform(4.0, 6.5);
  Id.EyeSpacing = R.uniform(2.5, 5.0);
  Id.EyeSize = R.uniform(0.8, 1.8);
  Id.NoseLen = R.uniform(2.0, 5.0);
  Id.MouthY = R.uniform(10.5, 13.5);
  Id.MouthWidth = R.uniform(2.0, 5.5);
  Id.FaceWidth = R.uniform(5.0, 7.5);
  Id.Brightness = R.uniform(0.55, 0.9);
  return Id;
}

/// Renders a face with feature jitter \p Variation and pixel noise.
FaceVector renderFace(const Identity &Base, double Variation, double Noise,
                      Rng &R) {
  Identity Id = Base;
  Id.EyeY += R.gaussian(0, Variation);
  Id.EyeSpacing += R.gaussian(0, Variation);
  Id.NoseLen += R.gaussian(0, Variation);
  Id.MouthWidth += R.gaussian(0, Variation * 2);
  FaceVector F(static_cast<size_t>(FaceDim) * FaceDim, 0.1);
  double CX = FaceDim / 2.0;
  for (int Y = 0; Y != FaceDim; ++Y)
    for (int X = 0; X != FaceDim; ++X) {
      double V = 0.1;
      double DX = X - CX, DY = Y - FaceDim / 2.0;
      // Head oval.
      if (DX * DX / (Id.FaceWidth * Id.FaceWidth) +
              DY * DY / (7.5 * 7.5) <=
          1.0)
        V = Id.Brightness;
      // Eyes.
      for (double Sign : {-1.0, 1.0}) {
        double EX = CX + Sign * Id.EyeSpacing;
        if ((X - EX) * (X - EX) + (Y - Id.EyeY) * (Y - Id.EyeY) <=
            Id.EyeSize * Id.EyeSize)
          V = 0.05;
      }
      // Nose line.
      if (std::fabs(X - CX) < 0.8 && Y > Id.EyeY + 1 &&
          Y < Id.EyeY + 1 + Id.NoseLen)
        V *= 0.55;
      // Mouth.
      if (std::fabs(Y - Id.MouthY) < 0.8 && std::fabs(X - CX) < Id.MouthWidth)
        V = 0.15;
      F[static_cast<size_t>(Y) * FaceDim + X] =
          std::clamp(V + R.gaussian(0.0, Noise), 0.0, 1.0);
    }
  return F;
}

FaceVector boxSmooth(const FaceVector &F, int Radius) {
  if (Radius <= 0)
    return F;
  FaceVector Out(F.size(), 0.0);
  for (int Y = 0; Y != FaceDim; ++Y)
    for (int X = 0; X != FaceDim; ++X) {
      double Sum = 0.0;
      int Count = 0;
      for (int DY = -Radius; DY <= Radius; ++DY)
        for (int DX = -Radius; DX <= Radius; ++DX) {
          int NX = X + DX, NY = Y + DY;
          if (NX < 0 || NX >= FaceDim || NY < 0 || NY >= FaceDim)
            continue;
          Sum += F[static_cast<size_t>(NY) * FaceDim + NX];
          ++Count;
        }
      Out[static_cast<size_t>(Y) * FaceDim + X] = Sum / Count;
    }
  return Out;
}

double distanceOf(FaceMetric Metric, const std::vector<double> &A,
                  const std::vector<double> &B) {
  double D = 0.0;
  switch (Metric) {
  case FaceMetric::L1:
    for (size_t I = 0, E = A.size(); I != E; ++I)
      D += std::fabs(A[I] - B[I]);
    return D;
  case FaceMetric::L2:
    for (size_t I = 0, E = A.size(); I != E; ++I)
      D += (A[I] - B[I]) * (A[I] - B[I]);
    return D;
  case FaceMetric::Cosine: {
    double Dot = 0, NA = 0, NB = 0;
    for (size_t I = 0, E = A.size(); I != E; ++I) {
      Dot += A[I] * B[I];
      NA += A[I] * A[I];
      NB += B[I] * B[I];
    }
    return 1.0 - Dot / (std::sqrt(NA * NB) + 1e-12);
  }
  }
  return D;
}

} // namespace

void wbt::face::jacobiEigen(std::vector<std::vector<double>> A,
                            std::vector<double> &Values,
                            std::vector<std::vector<double>> &Vectors) {
  size_t N = A.size();
  Vectors.assign(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I != N; ++I)
    Vectors[I][I] = 1.0;

  for (int Sweep = 0; Sweep != 60; ++Sweep) {
    double Off = 0.0;
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J)
        Off += A[I][J] * A[I][J];
    if (Off < 1e-18)
      break;
    for (size_t P = 0; P != N; ++P)
      for (size_t Q = P + 1; Q != N; ++Q) {
        if (std::fabs(A[P][Q]) < 1e-15)
          continue;
        double Theta = (A[Q][Q] - A[P][P]) / (2.0 * A[P][Q]);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        for (size_t K = 0; K != N; ++K) {
          double AKP = A[K][P], AKQ = A[K][Q];
          A[K][P] = C * AKP - S * AKQ;
          A[K][Q] = S * AKP + C * AKQ;
        }
        for (size_t K = 0; K != N; ++K) {
          double APK = A[P][K], AQK = A[Q][K];
          A[P][K] = C * APK - S * AQK;
          A[Q][K] = S * APK + C * AQK;
        }
        for (size_t K = 0; K != N; ++K) {
          double VKP = Vectors[K][P], VKQ = Vectors[K][Q];
          Vectors[K][P] = C * VKP - S * VKQ;
          Vectors[K][Q] = S * VKP + C * VKQ;
        }
      }
  }

  // Sort by descending eigenvalue; Vectors columns -> rows.
  std::vector<size_t> Order(N);
  for (size_t I = 0; I != N; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(),
            [&](size_t X, size_t Y) { return A[X][X] > A[Y][Y]; });
  Values.resize(N);
  std::vector<std::vector<double>> Sorted(N, std::vector<double>(N));
  for (size_t I = 0; I != N; ++I) {
    Values[I] = A[Order[I]][Order[I]];
    for (size_t K = 0; K != N; ++K)
      Sorted[I][K] = Vectors[K][Order[I]];
  }
  Vectors = std::move(Sorted);
}

FaceDataset wbt::face::makeFaceDataset(uint64_t Seed, int Index,
                                       const FaceDatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 99);
  FaceDataset D;
  D.NumIdentities = Opts.Identities;
  double Noise = R.uniform(Opts.NoiseLo, Opts.NoiseHi);
  double Variation = R.uniform(Opts.VariationLo, Opts.VariationHi);
  for (int Id = 0; Id != Opts.Identities; ++Id) {
    Identity Base = makeIdentity(R);
    for (int G = 0; G != Opts.GalleryPerId; ++G) {
      D.Gallery.push_back(renderFace(Base, Variation * 0.4, Noise * 0.5, R));
      D.GalleryIds.push_back(Id);
    }
    for (int P = 0; P != Opts.ProbesPerId; ++P) {
      D.Probes.push_back(renderFace(Base, Variation, Noise, R));
      D.ProbeIds.push_back(Id);
    }
  }
  return D;
}

std::vector<double> EigenfaceModel::project(const FaceVector &Face) const {
  FaceVector Centered = boxSmooth(Face, Params.SmoothRadius);
  for (size_t I = 0, E = Centered.size(); I != E; ++I)
    Centered[I] -= Mean[I];
  std::vector<double> Out(Components.size(), 0.0);
  for (size_t C = 0; C != Components.size(); ++C) {
    double Dot = 0.0;
    for (size_t I = 0, E = Centered.size(); I != E; ++I)
      Dot += Components[C][I] * Centered[I];
    Out[C] = Dot;
  }
  return Out;
}

int EigenfaceModel::identify(const FaceVector &Face) const {
  std::vector<double> P = project(Face);
  int Best = -1;
  double BestD = std::numeric_limits<double>::infinity();
  for (size_t G = 0; G != GalleryProjections.size(); ++G) {
    double D = distanceOf(Params.Metric, P, GalleryProjections[G]);
    if (D < BestD) {
      BestD = D;
      Best = GalleryIds[G];
    }
  }
  return Best;
}

EigenfaceModel wbt::face::trainEigenfaces(const FaceDataset &Data,
                                          const FaceParams &P) {
  assert(!Data.Gallery.empty() && "empty gallery");
  size_t N = Data.Gallery.size();
  size_t Dim = Data.Gallery[0].size();

  EigenfaceModel M;
  M.Params = P;
  M.Params.NumComponents =
      std::clamp(P.NumComponents, 1, static_cast<int>(N));

  std::vector<FaceVector> Smoothed;
  Smoothed.reserve(N);
  for (const FaceVector &F : Data.Gallery)
    Smoothed.push_back(boxSmooth(F, P.SmoothRadius));

  M.Mean.assign(Dim, 0.0);
  for (const FaceVector &F : Smoothed)
    for (size_t I = 0; I != Dim; ++I)
      M.Mean[I] += F[I];
  for (double &V : M.Mean)
    V /= static_cast<double>(N);

  // Gram trick: eigenvectors of the small N x N matrix X X^T map to
  // principal components X^T v.
  std::vector<FaceVector> Centered = Smoothed;
  for (FaceVector &F : Centered)
    for (size_t I = 0; I != Dim; ++I)
      F[I] -= M.Mean[I];
  std::vector<std::vector<double>> Gram(N, std::vector<double>(N, 0.0));
  for (size_t A = 0; A != N; ++A)
    for (size_t B = A; B != N; ++B) {
      double Dot = 0.0;
      for (size_t I = 0; I != Dim; ++I)
        Dot += Centered[A][I] * Centered[B][I];
      Gram[A][B] = Dot;
      Gram[B][A] = Dot;
    }
  std::vector<double> Values;
  std::vector<std::vector<double>> Vectors;
  jacobiEigen(std::move(Gram), Values, Vectors);

  for (int C = 0; C != M.Params.NumComponents; ++C) {
    if (Values[static_cast<size_t>(C)] < 1e-9)
      break;
    FaceVector Comp(Dim, 0.0);
    for (size_t A = 0; A != N; ++A)
      for (size_t I = 0; I != Dim; ++I)
        Comp[I] += Vectors[static_cast<size_t>(C)][A] * Centered[A][I];
    double Norm = 0.0;
    for (double V : Comp)
      Norm += V * V;
    Norm = std::sqrt(Norm) + 1e-12;
    for (double &V : Comp)
      V /= Norm;
    M.Components.push_back(std::move(Comp));
  }

  for (size_t G = 0; G != N; ++G) {
    M.GalleryProjections.push_back(M.project(Data.Gallery[G]));
    M.GalleryIds.push_back(Data.GalleryIds[G]);
  }
  return M;
}

double wbt::face::identificationError(const EigenfaceModel &M,
                                      const FaceDataset &Data) {
  if (Data.Probes.empty())
    return 0.0;
  long Wrong = 0;
  for (size_t P = 0; P != Data.Probes.size(); ++P)
    Wrong += M.identify(Data.Probes[P]) != Data.ProbeIds[P];
  return static_cast<double>(Wrong) / static_cast<double>(Data.Probes.size());
}
