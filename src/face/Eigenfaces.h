//===- face/Eigenfaces.h - PCA face identification ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eigenfaces identification in the style of the CSU face identification
/// system (the paper's [18]): PCA over a gallery of face vectors (via the
/// Gram-matrix trick and a Jacobi eigensolver), nearest-neighbor matching
/// in the projected space. The paper's three tunables: the number of
/// retained components, the distance metric, and the preprocessing
/// smoothing radius. Quality is the misidentification rate (lower is
/// better, matching Table I's MIN aggregation).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_FACE_EIGENFACES_H
#define WBT_FACE_EIGENFACES_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace face {

/// A face image flattened to a vector (FaceDim x FaceDim).
using FaceVector = std::vector<double>;
constexpr int FaceDim = 16;

enum class FaceMetric { L1, L2, Cosine };

struct FaceParams {
  int NumComponents = 12;
  FaceMetric Metric = FaceMetric::L2;
  /// Box-smoothing radius applied to every image before PCA [0, 3].
  int SmoothRadius = 0;
};

/// Labeled face set.
struct FaceDataset {
  std::vector<FaceVector> Gallery;
  std::vector<int> GalleryIds;
  std::vector<FaceVector> Probes;
  std::vector<int> ProbeIds;
  int NumIdentities = 0;
};

struct FaceDatasetOptions {
  int Identities = 15;
  int GalleryPerId = 2;
  int ProbesPerId = 3;
  /// Probe rendering noise range (per dataset).
  double NoiseLo = 0.02;
  double NoiseHi = 0.12;
  /// Probe expression variation (feature jitter).
  double VariationLo = 0.05;
  double VariationHi = 0.25;
};

FaceDataset makeFaceDataset(uint64_t Seed, int Index,
                            const FaceDatasetOptions &Opts =
                                FaceDatasetOptions());

/// A trained eigenface model.
struct EigenfaceModel {
  FaceVector Mean;
  /// Row-major components (NumComponents x FaceDim^2).
  std::vector<FaceVector> Components;
  /// Gallery projections and ids.
  std::vector<std::vector<double>> GalleryProjections;
  std::vector<int> GalleryIds;
  FaceParams Params;

  std::vector<double> project(const FaceVector &Face) const;
  /// Identity of the nearest gallery face.
  int identify(const FaceVector &Face) const;
};

EigenfaceModel trainEigenfaces(const FaceDataset &Data, const FaceParams &P);

/// Fraction of probes identified incorrectly.
double identificationError(const EigenfaceModel &M, const FaceDataset &Data);

/// Symmetric Jacobi eigendecomposition (descending eigenvalues); exposed
/// for testing.
void jacobiEigen(std::vector<std::vector<double>> A,
                 std::vector<double> &Values,
                 std::vector<std::vector<double>> &Vectors);

} // namespace face
} // namespace wbt

#endif // WBT_FACE_EIGENFACES_H
