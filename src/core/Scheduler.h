//===- core/Scheduler.h - Paper Algorithm 1 task scheduler ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process scheduler of paper Sec. III-B2 (Algorithm 1), realized over
/// an in-process worker pool. "Processes" are tasks; the pool size plays
/// MAX_POOL_SIZE. The rules carried over from the paper:
///
///  * sampling tasks are prioritized over tuning tasks (they do the real
///    computation);
///  * among sampling tasks, those whose parent tuning process has the
///    fewest remaining samples run first, so nearly finished tuning
///    processes can complete and yield their resources;
///  * a tuning task is only admitted while at least 75% of the pool is
///    free (Alg. 1 line 8: threshold = MAX_POOL_SIZE * 0.75), preventing
///    a flood of concurrent tuning processes.
///
/// Setting UseAlg1 = false degrades to a plain FIFO pool, which is the
/// "no scheduler" configuration of the paper's Fig. 10 ablation.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CORE_SCHEDULER_H
#define WBT_CORE_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wbt {

/// Priority worker pool implementing paper Algorithm 1.
class Scheduler {
public:
  struct Options {
    /// MAX_POOL_SIZE; 0 means hardware concurrency.
    unsigned Workers = 0;
    /// Apply the Alg. 1 rules; false = plain FIFO (Fig. 10 ablation).
    bool UseAlg1 = true;
    /// Fraction of the pool that must be free to admit a tuning task.
    double TuningGate = 0.75;
  };

  struct Stats {
    size_t TasksRun = 0;
    size_t SamplingTasks = 0;
    size_t TuningTasks = 0;
    /// Times a tuning task was passed over because the gate was closed.
    size_t TuningDeferrals = 0;
    size_t MaxQueueLength = 0;
    /// Tasks whose body threw; the exception is swallowed so one bad
    /// sample cannot take down the pool (mirrors the disposable-sample
    /// semantics of the fork runtime).
    size_t TasksFailed = 0;
  };

  explicit Scheduler(const Options &Opts);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Enqueues a sampling task; \p Todo is the number of samples its parent
  /// tuning process still has outstanding (the Alg. 1 priority key).
  void submitSampling(int Todo, std::function<void()> Fn);

  /// Enqueues a tuning task (aggregation + continuation spawning).
  void submitTuning(std::function<void()> Fn);

  /// Blocks until all submitted tasks — including tasks they submitted —
  /// have finished.
  void waitIdle();

  /// Bounded waitIdle(): returns true once idle, false on timeout.
  bool waitIdleFor(std::chrono::milliseconds Timeout);

  Stats stats() const;
  unsigned workers() const { return NumWorkers; }

private:
  struct Task {
    bool IsSampling;
    int Todo;
    uint64_t Seq;
    std::function<void()> Fn;
  };

  void workerLoop();
  bool popNext(Task &Out); // caller holds Mutex

  unsigned NumWorkers;
  bool UseAlg1;
  double TuningGate;

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::vector<Task> SamplingQueue; // min-heap on (Todo, Seq)
  std::deque<Task> TuningQueue;    // FIFO
  unsigned Active = 0;
  uint64_t NextSeq = 0;
  bool ShuttingDown = false;
  Stats TheStats;

  std::vector<std::thread> Threads;
};

} // namespace wbt

#endif // WBT_CORE_SCHEDULER_H
