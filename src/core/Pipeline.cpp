//===- core/Pipeline.cpp - Staged white-box tuning engine -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "support/Timer.h"

#include <algorithm>
#include <atomic>

using namespace wbt;

namespace {

/// splitmix64-style mixer for deriving per-run seeds.
uint64_t mixSeed(uint64_t X, uint64_t Y) {
  uint64_t Z = X + 0x9e3779b97f4a7c15ULL * (Y + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

struct ErasedStage {
  std::string Name;
  StageOptions Opts;
  std::function<std::any(const std::any &, SampleContext &)> Body;
  std::function<std::shared_ptr<void>()> MakeAgg;
  std::function<void(void *, const SampleInfo &, std::any &&)> AggAdd;
  std::function<std::vector<std::any>(void *)> AggFinish;
  std::function<double(const std::vector<std::any> &)> AutoScore;
};

} // namespace

namespace wbt {
namespace detail {

struct RunState {
  explicit RunState(const Scheduler::Options &SOpts) : Sched(SOpts) {}

  Scheduler Sched;
  const std::vector<ErasedStage> *Stages = nullptr;
  uint64_t Seed = 1;

  std::mutex Mutex;
  std::vector<std::any> Finals;
  std::vector<StageReport> Reports;
  std::atomic<long> TotalSamples{0};
  std::atomic<uint64_t> NextTpId{0};

  std::mutex ExposedMutex;
  std::map<std::string, std::any> Exposed;
};

/// One execution of one stage for one tuning process (one auto-tune
/// attempt). Owns the aggregator and the per-sample drawn-value cache.
struct StageExec : std::enable_shared_from_this<StageExec> {
  RunState *RS = nullptr;
  const ErasedStage *Stage = nullptr;
  size_t StageIdx = 0;
  uint64_t TpId = 0;
  int Attempt = 0;
  std::shared_ptr<const std::any> Input;
  int N = 0;
  int K = 1;

  std::unique_ptr<SamplingStrategy> Strategy;
  std::shared_ptr<void> Agg;

  std::mutex Mutex;
  int Pending = 0;
  long PrunedLocal = 0;
  long FailedLocal = 0;
  std::vector<std::pair<SampleInfo, std::any>> BatchBuffer;
  std::vector<std::map<std::string, double>> Drawn;
  size_t LiveBytes = 0;
  size_t PeakLiveBytes = 0;

  bool HasPrev = false;
  double PrevScore = 0.0;
  std::vector<std::any> PrevOuts;

  void launch();
  void runOne(int Sample, int Fold);
  void deliver(const SampleInfo &Info, std::any &&Result,
               bool Failed = false);
  void complete();
  void continueWith(std::vector<std::any> &&Outs);

  static void startTuningProcess(RunState *RS, size_t StageIdx,
                                 std::any State);
};

void StageExec::launch() {
  Drawn.assign(static_cast<size_t>(N), {});
  Pending = N * K;
  PrunedLocal = 0;
  FailedLocal = 0;
  LiveBytes = 0;
  Agg = Stage->MakeAgg();
  const StageOptions &Opts = Stage->Opts;
  Strategy = Opts.Strategy ? Opts.Strategy() : makeRandomStrategy();
  RS->TotalSamples.fetch_add(static_cast<long>(N) * K,
                             std::memory_order_relaxed);

  std::shared_ptr<StageExec> Self = shared_from_this();
  int Total = N * K;
  for (int S = 0; S != N; ++S)
    for (int F = 0; F != K; ++F) {
      int Issued = S * K + F;
      RS->Sched.submitSampling(Total - Issued, [Self, S, F] {
        Self->runOne(S, F);
      });
    }
}

void StageExec::runOne(int Sample, int Fold) {
  SampleInfo Info;
  Info.Sample = Sample;
  Info.Fold = Fold;
  Info.KFolds = K;
  uint64_t Seed = mixSeed(
      mixSeed(RS->Seed, StageIdx * 0x1000193 + TpId),
      (static_cast<uint64_t>(Attempt) << 32) +
          (static_cast<uint64_t>(Sample) << 8) + static_cast<uint64_t>(Fold));
  SampleContext Ctx(this, Info, Rng(Seed));
  // A throwing body must still reach deliver(): Pending would otherwise
  // never hit zero and the stage's aggregation would be lost. Sampling
  // runs are disposable — a failed one simply commits nothing.
  std::any Result;
  bool Failed = false;
  try {
    Result = Stage->Body(*Input, Ctx);
  } catch (...) {
    Failed = true;
  }
  deliver(Ctx.Info, std::move(Result), Failed);
}

void StageExec::deliver(const SampleInfo &Info, std::any &&Result,
                        bool Failed) {
  bool Done = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Failed)
      ++FailedLocal;
    if (Info.HasScore && !Failed)
      Strategy->feedback(Info.Sample, Info.Score);
    if (Result.has_value()) {
      if (Stage->Opts.Incremental) {
        Stage->AggAdd(Agg.get(), Info, std::move(Result));
        PeakLiveBytes = std::max(PeakLiveBytes, Stage->Opts.ResultBytesHint);
      } else {
        BatchBuffer.emplace_back(Info, std::move(Result));
        LiveBytes += Stage->Opts.ResultBytesHint;
        PeakLiveBytes = std::max(PeakLiveBytes, LiveBytes);
      }
    } else if (!Failed) {
      ++PrunedLocal;
    }
    Done = --Pending == 0;
  }
  if (!Done)
    return;
  std::shared_ptr<StageExec> Self = shared_from_this();
  RS->Sched.submitTuning([Self] { Self->complete(); });
}

void StageExec::complete() {
  if (!Stage->Opts.Incremental) {
    // Replay commits in deterministic (sample, fold) order: arrival order
    // depends on thread interleaving.
    std::sort(BatchBuffer.begin(), BatchBuffer.end(),
              [](const auto &A, const auto &B) {
                if (A.first.Sample != B.first.Sample)
                  return A.first.Sample < B.first.Sample;
                return A.first.Fold < B.first.Fold;
              });
    for (auto &[Info, Result] : BatchBuffer)
      Stage->AggAdd(Agg.get(), Info, std::move(Result));
    BatchBuffer.clear();
  }
  std::vector<std::any> Outs = Stage->AggFinish(Agg.get());

  {
    std::lock_guard<std::mutex> Lock(RS->Mutex);
    StageReport &Rep = RS->Reports[StageIdx];
    if (Attempt == 0)
      ++Rep.TuningProcesses;
    else
      ++Rep.AutoTuneRetries;
    Rep.SamplesRun += static_cast<long>(N) * K;
    Rep.Pruned += PrunedLocal;
    Rep.Failed += FailedLocal;
    Rep.PeakLiveBytes = std::max(Rep.PeakLiveBytes, PeakLiveBytes);
    if (Outs.size() > 1)
      Rep.Splits += static_cast<long>(Outs.size()) - 1;
  }

  const StageOptions &Opts = Stage->Opts;
  if (Opts.AutoTuneSamples && Stage->AutoScore && !Outs.empty()) {
    double Score = Stage->AutoScore(Outs);
    bool Improved = !HasPrev || Score > PrevScore + Opts.AutoTuneTolerance;
    if (Improved && N * 2 <= Opts.MaxSamples) {
      // Exponential doubling (paper Sec. IV-D): retry this stage with
      // twice the samples and compare.
      std::shared_ptr<StageExec> Retry = std::make_shared<StageExec>();
      Retry->RS = RS;
      Retry->Stage = Stage;
      Retry->StageIdx = StageIdx;
      Retry->TpId = TpId;
      Retry->Attempt = Attempt + 1;
      Retry->Input = Input;
      Retry->N = N * 2;
      Retry->K = K;
      Retry->HasPrev = true;
      Retry->PrevScore = Score;
      Retry->PrevOuts = std::move(Outs);
      Retry->launch();
      return;
    }
    if (HasPrev && PrevScore >= Score)
      Outs = std::move(PrevOuts);
  } else if (Opts.AutoTuneSamples && Stage->AutoScore && Outs.empty() &&
             HasPrev) {
    Outs = std::move(PrevOuts);
  }

  continueWith(std::move(Outs));
}

void StageExec::continueWith(std::vector<std::any> &&Outs) {
  if (StageIdx + 1 == RS->Stages->size()) {
    std::lock_guard<std::mutex> Lock(RS->Mutex);
    for (std::any &O : Outs)
      RS->Finals.push_back(std::move(O));
    return;
  }
  for (std::any &O : Outs)
    startTuningProcess(RS, StageIdx + 1, std::move(O));
}

void StageExec::startTuningProcess(RunState *RS, size_t StageIdx,
                                   std::any State) {
  std::shared_ptr<StageExec> Exec = std::make_shared<StageExec>();
  Exec->RS = RS;
  Exec->Stage = &(*RS->Stages)[StageIdx];
  Exec->StageIdx = StageIdx;
  Exec->TpId = RS->NextTpId.fetch_add(1, std::memory_order_relaxed);
  Exec->Input = std::make_shared<const std::any>(std::move(State));
  Exec->N = std::max(1, Exec->Stage->Opts.NumSamples);
  Exec->K = std::max(1, Exec->Stage->Opts.KFolds);
  RS->Sched.submitTuning([Exec] { Exec->launch(); });
}

} // namespace detail
} // namespace wbt

//===----------------------------------------------------------------------===//
// SampleContext
//===----------------------------------------------------------------------===//

double SampleContext::sample(const std::string &Name, const Distribution &D) {
  std::lock_guard<std::mutex> Lock(Exec->Mutex);
  std::map<std::string, double> &Values =
      Exec->Drawn[static_cast<size_t>(Info.Sample)];
  auto It = Values.find(Name);
  if (It != Values.end())
    return It->second;
  double V = Exec->Strategy->draw(Info.Sample, Name, D, RunRng);
  Values.emplace(Name, V);
  return V;
}

bool SampleContext::check(bool Ok) { return Ok; }

void SampleContext::setScore(double Score) {
  Info.Score = Score;
  Info.HasScore = true;
}

void SampleContext::expose(const std::string &Name, std::any Value) {
  std::lock_guard<std::mutex> Lock(Exec->RS->ExposedMutex);
  Exec->RS->Exposed[Name] = std::move(Value);
}

std::any SampleContext::load(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Exec->RS->ExposedMutex);
  auto It = Exec->RS->Exposed.find(Name);
  return It == Exec->RS->Exposed.end() ? std::any() : It->second;
}

const std::map<std::string, double> &SampleContext::drawnValues() const {
  return Exec->Drawn[static_cast<size_t>(Info.Sample)];
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

struct Pipeline::Impl {
  std::vector<ErasedStage> Stages;
};

Pipeline::Pipeline() : TheImpl(std::make_unique<Impl>()) {}
Pipeline::~Pipeline() = default;

size_t Pipeline::numStages() const { return TheImpl->Stages.size(); }

void Pipeline::addStageImpl(
    std::string Name, StageOptions Opts,
    std::function<std::any(const std::any &, SampleContext &)> Body,
    std::function<std::shared_ptr<void>()> MakeAgg,
    std::function<void(void *, const SampleInfo &, std::any &&)> AggAdd,
    std::function<std::vector<std::any>(void *)> AggFinish) {
  ErasedStage S;
  S.Name = std::move(Name);
  S.Opts = std::move(Opts);
  S.Body = std::move(Body);
  S.MakeAgg = std::move(MakeAgg);
  S.AggAdd = std::move(AggAdd);
  S.AggFinish = std::move(AggFinish);
  TheImpl->Stages.push_back(std::move(S));
}

void Pipeline::setAutoTuneScoreImpl(
    std::function<double(const std::vector<std::any> &)> F) {
  assert(!TheImpl->Stages.empty() && "no stage to attach auto-tune score to");
  TheImpl->Stages.back().AutoScore = std::move(F);
}

RunReport Pipeline::run(std::any Initial, const RunOptions &Opts) {
  assert(!TheImpl->Stages.empty() && "cannot run an empty pipeline");
  Timer T;

  Scheduler::Options SOpts;
  SOpts.Workers = Opts.Workers;
  SOpts.UseAlg1 = Opts.UseAlg1Scheduler;

  detail::RunState RS(SOpts);
  RS.Stages = &TheImpl->Stages;
  RS.Seed = Opts.Seed;
  RS.Reports.resize(TheImpl->Stages.size());
  for (size_t I = 0, E = TheImpl->Stages.size(); I != E; ++I)
    RS.Reports[I].Name = TheImpl->Stages[I].Name;

  detail::StageExec::startTuningProcess(&RS, 0, std::move(Initial));
  RS.Sched.waitIdle();

  RunReport Report;
  Report.Finals = std::move(RS.Finals);
  Report.Stages = std::move(RS.Reports);
  Report.Sched = RS.Sched.stats();
  Report.TotalSamples = RS.TotalSamples.load();
  Report.Seconds = T.seconds();
  return Report;
}
