//===- core/Pipeline.h - Staged white-box tuning engine ---------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process staged tuning engine — WBTuner's execution model
/// (paper Secs. II-C and III) realized over a worker pool instead of
/// fork(2). A Pipeline is a sequence of tuning regions (stages). Running
/// one stage for one *tuning process* means:
///
///   1. spawn NumSamples *sampling runs* (paper: sampling processes), each
///      with a copy-on-read view of the tuning process' state;
///   2. inside the run, `SampleContext::sample()` draws tuned-variable
///      values through the stage's SamplingStrategy (paper @sample);
///   3. a run may prune itself (paper @check) by returning std::nullopt;
///   4. finished runs commit their result to the stage Aggregator (paper
///      @aggregate, child side); incremental aggregation (Sec. IV-B) folds
///      each result as it arrives, one-shot aggregation buffers them all;
///   5. when the last run commits, the aggregator's finish() produces the
///      continuation states (paper @aggregate, tuning side); producing
///      more than one state is the paper's @split.
///
/// k-fold cross-validation (paper Sec. IV-A) is built in: with KFolds > 1
/// every logical sample becomes a sampling-and-validation group of KFolds
/// runs that share drawn values but see distinct fold indices. Auto-tuned
/// sample counts (paper Sec. IV-D) double NumSamples until the aggregated
/// score stops improving.
///
/// For the faithful multi-process runtime with the paper's literal
/// primitives, see proc/Runtime.h; this engine trades fidelity of the
/// process model for determinism and speed, keeping the tuning semantics.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CORE_PIPELINE_H
#define WBT_CORE_PIPELINE_H

#include "core/Scheduler.h"
#include "param/Distribution.h"
#include "strategy/SamplingStrategy.h"

#include <any>
#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace wbt {

namespace detail {
struct StageExec;
} // namespace detail

/// Identifies one sampling run within a stage execution.
struct SampleInfo {
  /// Logical sample index (the SVG index under cross-validation).
  int Sample = 0;
  /// Validation fold for this run; 0 when KFolds == 1.
  int Fold = 0;
  /// Number of folds (1 = no cross-validation).
  int KFolds = 1;
  /// Score reported via SampleContext::setScore(); meaning is user-defined
  /// (higher is better for strategy feedback).
  double Score = 0.0;
  bool HasScore = false;
};

/// Per-run handle passed to stage bodies. Provides the paper's in-region
/// primitives: @sample, @check, score feedback, and the exposed store.
class SampleContext {
public:
  /// @sample(x, cbDist): the value of tuned variable \p Name for this run.
  /// Runs in the same sampling-and-validation group observe the same value.
  double sample(const std::string &Name, const Distribution &D);

  /// Convenience integer draw.
  int64_t sampleInt(const std::string &Name, const Distribution &D) {
    double V = sample(Name, D);
    return static_cast<int64_t>(V + (V >= 0 ? 0.5 : -0.5));
  }

  /// @check(cbChk): returns \p Ok and records a prune when false. The body
  /// should `return std::nullopt` when this returns false.
  bool check(bool Ok);

  /// Reports this run's score (higher = better) for feedback-driven
  /// strategies and auto-tuned sample counts.
  void setScore(double Score);

  /// @expose(x): publishes a value into the run-global exposed store.
  void expose(const std::string &Name, std::any Value);

  /// @load(x): reads an exposed value; empty any if absent.
  std::any load(const std::string &Name) const;

  int sampleIndex() const { return Info.Sample; }
  int fold() const { return Info.Fold; }
  int numFolds() const { return Info.KFolds; }

  /// Values drawn so far for this run, keyed by variable name.
  const std::map<std::string, double> &drawnValues() const;

  /// Deterministic per-run random stream.
  Rng &rng() { return RunRng; }

private:
  friend struct detail::StageExec;
  SampleContext(detail::StageExec *Exec, SampleInfo Info, Rng RunRng)
      : Exec(Exec), Info(Info), RunRng(RunRng) {}

  detail::StageExec *Exec;
  SampleInfo Info;
  Rng RunRng;
};

/// Aggregation callback of a stage (paper @aggregate / cbAggr). add() is
/// invoked once per surviving run — serialized by the engine, so
/// implementations need no locking — and finish() produces the states the
/// continuation tuning processes proceed with (size > 1 == @split).
template <typename Result, typename Out> class Aggregator {
public:
  virtual ~Aggregator() = default;
  virtual void add(const SampleInfo &Info, Result &&R) = 0;
  virtual std::vector<Out> finish() = 0;
};

/// Adapts a one-shot lambda over the full committed vector. This is the
/// paper's non-incremental aggregation: memory grows with the sample
/// count, which Fig. 10 measures.
template <typename Result, typename Out>
class BatchAggregator : public Aggregator<Result, Out> {
public:
  using Fn = std::function<std::vector<Out>(
      std::vector<std::pair<SampleInfo, Result>> &&)>;
  explicit BatchAggregator(Fn F) : F(std::move(F)) {}

  void add(const SampleInfo &Info, Result &&R) override {
    Buffer.emplace_back(Info, std::move(R));
  }
  std::vector<Out> finish() override { return F(std::move(Buffer)); }

private:
  Fn F;
  std::vector<std::pair<SampleInfo, Result>> Buffer;
};

/// Keeps only the best-scoring result (incremental MIN/MAX over the score,
/// O(1) memory). Emits one continuation holding that result.
template <typename Result>
class BestScoreAggregator : public Aggregator<Result, Result> {
public:
  explicit BestScoreAggregator(bool Minimize) : Minimize(Minimize) {}

  void add(const SampleInfo &Info, Result &&R) override {
    double S = Info.HasScore ? Info.Score : 0.0;
    if (!HasBest || (Minimize ? S < BestScore : S > BestScore)) {
      HasBest = true;
      BestScore = S;
      Best = std::move(R);
    }
  }

  std::vector<Result> finish() override {
    if (!HasBest)
      return {};
    return {std::move(Best)};
  }

private:
  bool Minimize;
  bool HasBest = false;
  double BestScore = 0.0;
  Result Best{};
};

/// Per-stage configuration (the arguments of @sampling plus the practical
/// features of paper Sec. IV).
struct StageOptions {
  /// Number of logical samples (n of @sampling(n, cbStrgy)).
  int NumSamples = 16;
  /// k-fold cross-validation: runs per sampling-and-validation group.
  int KFolds = 1;
  /// Incremental aggregation (paper Sec. IV-B). When false the engine
  /// buffers every committed result before aggregating (Fig. 10 ablation).
  bool Incremental = true;
  /// Sampling strategy factory; null means RAND. A fresh instance is
  /// created per stage execution so chains (MCMC) restart per tuning
  /// process.
  std::function<std::unique_ptr<SamplingStrategy>()> Strategy;
  /// Auto-tuned sample count (paper Sec. IV-D): double NumSamples until
  /// the aggregated score stops improving or MaxSamples is reached.
  /// Requires the stage to be added with an auto-tune scoring function.
  bool AutoTuneSamples = false;
  int MaxSamples = 1024;
  double AutoTuneTolerance = 1e-9;
  /// Estimated bytes per committed result, for the Fig. 10 memory proxy.
  size_t ResultBytesHint = sizeof(double);
};

/// Per-stage outcome counters.
struct StageReport {
  std::string Name;
  /// Tuning processes that executed this stage.
  long TuningProcesses = 0;
  /// Sampling runs launched (over all tuning processes and attempts).
  long SamplesRun = 0;
  /// Runs that pruned themselves (@check failed / body returned nullopt).
  long Pruned = 0;
  /// Runs whose body threw. Treated like pruned runs (no committed
  /// result), but counted separately — a failure is a defect signal, a
  /// prune is a strategy signal.
  long Failed = 0;
  /// Continuation states produced in excess of one per tuning process.
  long Splits = 0;
  /// Auto-tune attempts beyond the first.
  long AutoTuneRetries = 0;
  /// High-water mark of undigested committed-result bytes.
  size_t PeakLiveBytes = 0;
};

/// Whole-run outcome: final tuning-process states plus statistics.
struct RunReport {
  std::vector<std::any> Finals;
  std::vector<StageReport> Stages;
  Scheduler::Stats Sched;
  double Seconds = 0.0;
  long TotalSamples = 0;

  /// Convenience typed accessor for Finals[I].
  template <typename T> const T &finalAs(size_t I) const {
    assert(I < Finals.size() && "final state index out of range");
    const T *P = std::any_cast<T>(&Finals[I]);
    assert(P && "final state has a different type");
    return *P;
  }
};

/// Engine-wide execution options.
struct RunOptions {
  /// Worker threads (MAX_POOL_SIZE); 0 = hardware concurrency.
  unsigned Workers = 0;
  /// Master seed; every run derives a deterministic stream from it.
  uint64_t Seed = 1;
  /// Apply paper Alg. 1 scheduling rules (Fig. 10 ablation when false).
  bool UseAlg1Scheduler = true;
};

/// A staged tuning task: an ordered list of tuning regions.
class Pipeline {
public:
  Pipeline();
  ~Pipeline();

  Pipeline(const Pipeline &) = delete;
  Pipeline &operator=(const Pipeline &) = delete;

  /// Adds a stage. \p Body runs once per sampling run with the tuning
  /// process' state \p In; it returns std::nullopt to prune. \p MakeAgg
  /// creates the stage's aggregator (fresh per stage execution).
  template <typename In, typename Result, typename Out>
  void addStage(
      std::string Name, StageOptions Opts,
      std::function<std::optional<Result>(const In &, SampleContext &)> Body,
      std::function<std::unique_ptr<Aggregator<Result, Out>>()> MakeAgg) {
    addStageImpl(
        std::move(Name), std::move(Opts),
        [Body = std::move(Body)](const std::any &InAny,
                                 SampleContext &Ctx) -> std::any {
          const In *State = std::any_cast<In>(&InAny);
          assert(State && "stage input type mismatch");
          std::optional<Result> R = Body(*State, Ctx);
          if (!R)
            return {};
          return std::any(std::move(*R));
        },
        [MakeAgg = std::move(MakeAgg)]() -> std::shared_ptr<void> {
          return MakeAgg();
        },
        [](void *Agg, const SampleInfo &Info, std::any &&R) {
          Result *P = std::any_cast<Result>(&R);
          assert(P && "stage result type mismatch");
          static_cast<Aggregator<Result, Out> *>(Agg)->add(Info,
                                                           std::move(*P));
        },
        [](void *Agg) {
          std::vector<Out> Outs =
              static_cast<Aggregator<Result, Out> *>(Agg)->finish();
          std::vector<std::any> Erased;
          Erased.reserve(Outs.size());
          for (Out &O : Outs)
            Erased.emplace_back(std::move(O));
          return Erased;
        });
  }

  /// Convenience: batch aggregation from a lambda.
  template <typename In, typename Result, typename Out>
  void addStage(
      std::string Name, StageOptions Opts,
      std::function<std::optional<Result>(const In &, SampleContext &)> Body,
      typename BatchAggregator<Result, Out>::Fn Agg) {
    Opts.Incremental = false;
    addStage<In, Result, Out>(
        std::move(Name), std::move(Opts), std::move(Body),
        [Agg = std::move(Agg)]() {
          return std::make_unique<BatchAggregator<Result, Out>>(Agg);
        });
  }

  /// Attaches the auto-tune scoring function for the most recently added
  /// stage: maps the stage's continuation states to a quality score
  /// (higher = better). Enables StageOptions::AutoTuneSamples.
  template <typename Out>
  void setAutoTuneScore(std::function<double(const std::vector<Out> &)> F) {
    setAutoTuneScoreImpl(
        [F = std::move(F)](const std::vector<std::any> &Outs) {
          std::vector<Out> Typed;
          Typed.reserve(Outs.size());
          for (const std::any &A : Outs) {
            const Out *P = std::any_cast<Out>(&A);
            assert(P && "auto-tune output type mismatch");
            Typed.push_back(*P);
          }
          return F(Typed);
        });
  }

  size_t numStages() const;

  /// Executes the pipeline on \p Initial and returns the final states of
  /// every surviving tuning process plus statistics.
  RunReport run(std::any Initial, const RunOptions &Opts = RunOptions());

private:
  void addStageImpl(
      std::string Name, StageOptions Opts,
      std::function<std::any(const std::any &, SampleContext &)> Body,
      std::function<std::shared_ptr<void>()> MakeAgg,
      std::function<void(void *, const SampleInfo &, std::any &&)> AggAdd,
      std::function<std::vector<std::any>(void *)> AggFinish);
  void setAutoTuneScoreImpl(
      std::function<double(const std::vector<std::any> &)> F);

  struct Impl;
  std::unique_ptr<Impl> TheImpl;
};

} // namespace wbt

#endif // WBT_CORE_PIPELINE_H
