//===- core/Scheduler.cpp - Paper Algorithm 1 task scheduler --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"

#include <algorithm>

using namespace wbt;

Scheduler::Scheduler(const Options &Opts)
    : NumWorkers(Opts.Workers ? Opts.Workers
                              : std::max(1u, std::thread::hardware_concurrency())),
      UseAlg1(Opts.UseAlg1), TuningGate(Opts.TuningGate) {
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void Scheduler::submitSampling(int Todo, std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    SamplingQueue.push_back(Task{true, Todo, NextSeq++, std::move(Fn)});
    std::push_heap(SamplingQueue.begin(), SamplingQueue.end(),
                   [](const Task &A, const Task &B) {
                     if (A.Todo != B.Todo)
                       return A.Todo > B.Todo; // smaller Todo on top
                     return A.Seq > B.Seq;
                   });
    TheStats.MaxQueueLength = std::max(
        TheStats.MaxQueueLength, SamplingQueue.size() + TuningQueue.size());
  }
  WorkAvailable.notify_one();
}

void Scheduler::submitTuning(std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    TuningQueue.push_back(Task{false, 0, NextSeq++, std::move(Fn)});
    TheStats.MaxQueueLength = std::max(
        TheStats.MaxQueueLength, SamplingQueue.size() + TuningQueue.size());
  }
  WorkAvailable.notify_one();
}

void Scheduler::waitIdle() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] {
    return SamplingQueue.empty() && TuningQueue.empty() && Active == 0;
  });
}

bool Scheduler::waitIdleFor(std::chrono::milliseconds Timeout) {
  std::unique_lock<std::mutex> Lock(Mutex);
  return AllDone.wait_for(Lock, Timeout, [this] {
    return SamplingQueue.empty() && TuningQueue.empty() && Active == 0;
  });
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TheStats;
}

bool Scheduler::popNext(Task &Out) {
  // Alg. 1: sampling tasks never wait while a slot is free (threshold 0).
  bool SamplingFirst = UseAlg1 || TuningQueue.empty();
  if (!SamplingQueue.empty() &&
      (SamplingFirst || TuningQueue.front().Seq > SamplingQueue.front().Seq)) {
    std::pop_heap(SamplingQueue.begin(), SamplingQueue.end(),
                  [](const Task &A, const Task &B) {
                    if (A.Todo != B.Todo)
                      return A.Todo > B.Todo;
                    return A.Seq > B.Seq;
                  });
    Out = std::move(SamplingQueue.back());
    SamplingQueue.pop_back();
    return true;
  }
  if (TuningQueue.empty())
    return false;
  if (UseAlg1) {
    // Alg. 1 line 8: a tuning spawn needs more than TuningGate of the pool
    // free. `Active` does not yet count this task.
    unsigned Free = NumWorkers - Active;
    if (static_cast<double>(Free) <= TuningGate * NumWorkers &&
        Active != 0) {
      ++TheStats.TuningDeferrals;
      return false;
    }
  }
  Out = std::move(TuningQueue.front());
  TuningQueue.pop_front();
  return true;
}

void Scheduler::workerLoop() {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      for (;;) {
        if (popNext(T))
          break;
        if (ShuttingDown && SamplingQueue.empty() && TuningQueue.empty())
          return;
        WorkAvailable.wait(Lock);
      }
      ++Active;
      ++TheStats.TasksRun;
      if (T.IsSampling)
        ++TheStats.SamplingTasks;
      else
        ++TheStats.TuningTasks;
    }
    // A throwing task must not unwind into std::thread (std::terminate)
    // or leak its Active count (waitIdle would hang): contain it, count
    // it, and keep the worker alive — in-process samples are as
    // disposable as forked ones.
    bool Failed = false;
    try {
      T.Fn();
    } catch (...) {
      Failed = true;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      TheStats.TasksFailed += Failed;
      if (SamplingQueue.empty() && TuningQueue.empty() && Active == 0)
        AllDone.notify_all();
    }
    // A finished task may have unblocked the tuning gate.
    WorkAvailable.notify_all();
  }
}
