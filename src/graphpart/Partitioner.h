//===- graphpart/Partitioner.h - Multilevel graph partitioning --*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A METIS-style multilevel k-way partitioner (Karypis & Kumar, the
/// paper's [38]): heavy-edge-matching coarsening, greedy region-growing
/// initial partition, and boundary Kernighan-Lin refinement during
/// uncoarsening. The paper's three tunables: the coarsening stop size,
/// the allowed imbalance, and the number of refinement passes. Quality is
/// the edge cut (lower is better).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_GRAPHPART_PARTITIONER_H
#define WBT_GRAPHPART_PARTITIONER_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace gp {

/// Undirected weighted graph in adjacency-list form.
struct Graph {
  struct Edge {
    int To;
    double Weight;
  };
  std::vector<std::vector<Edge>> Adj;
  std::vector<double> VertexWeight;

  int numVertices() const { return static_cast<int>(Adj.size()); }
  void addEdge(int A, int B, double W);
  double totalVertexWeight() const;
};

struct PartitionParams {
  int NumParts = 4;
  /// Stop coarsening when the graph has at most this many vertices.
  int CoarsenTo = 40;
  /// Allowed part weight = (1 + Imbalance) * average.
  double Imbalance = 0.05;
  /// Boundary refinement passes per uncoarsening level.
  int RefinePasses = 4;
  uint64_t Seed = 1;
};

struct PartitionResult {
  std::vector<int> Assignment;
  double EdgeCut = 0.0;
  /// max part weight / average part weight.
  double BalanceRatio = 1.0;
  int CoarsestSize = 0;
  int Levels = 0;
};

/// Multilevel k-way partitioning of \p G.
PartitionResult partition(const Graph &G, const PartitionParams &P);

/// Edge cut of an assignment.
double edgeCut(const Graph &G, const std::vector<int> &Assignment);

/// Planted-partition random graph: \p Communities dense groups with
/// sparse cross edges; ground truth is the planted community per vertex.
struct PlantedGraph {
  Graph G;
  std::vector<int> TrueCommunity;
};

struct PlantedGraphOptions {
  int Communities = 4;
  int VerticesPerCommunity = 60;
  double IntraProb = 0.16;
  double InterProb = 0.01;
};

PlantedGraph makePlantedGraph(uint64_t Seed, int Index,
                              const PlantedGraphOptions &Opts =
                                  PlantedGraphOptions());

} // namespace gp
} // namespace wbt

#endif // WBT_GRAPHPART_PARTITIONER_H
