//===- graphpart/Partitioner.cpp - Multilevel graph partitioning -----------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "graphpart/Partitioner.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace wbt;
using namespace wbt::gp;

void Graph::addEdge(int A, int B, double W) {
  assert(A != B && "self loops are not representable");
  Adj[static_cast<size_t>(A)].push_back(Edge{B, W});
  Adj[static_cast<size_t>(B)].push_back(Edge{A, W});
}

double Graph::totalVertexWeight() const {
  double Sum = 0.0;
  for (double W : VertexWeight)
    Sum += W;
  return Sum;
}

double wbt::gp::edgeCut(const Graph &G, const std::vector<int> &Assignment) {
  double Cut = 0.0;
  for (int V = 0; V != G.numVertices(); ++V)
    for (const Graph::Edge &E : G.Adj[static_cast<size_t>(V)])
      if (Assignment[static_cast<size_t>(V)] !=
          Assignment[static_cast<size_t>(E.To)])
        Cut += E.Weight;
  return Cut / 2.0; // every edge visited from both ends
}

namespace {

struct Level {
  Graph G;
  /// Fine-vertex -> coarse-vertex map into the next level.
  std::vector<int> Map;
};

/// One round of heavy-edge matching; returns the coarser graph and fills
/// \p Map. Returns false when coarsening made no progress.
bool coarsenOnce(const Graph &Fine, Graph &Coarse, std::vector<int> &Map,
                 Rng &R) {
  int N = Fine.numVertices();
  std::vector<int> Order(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    Order[static_cast<size_t>(I)] = I;
  R.shuffle(Order);

  Map.assign(static_cast<size_t>(N), -1);
  int NextCoarse = 0;
  for (int V : Order) {
    if (Map[static_cast<size_t>(V)] != -1)
      continue;
    // Heaviest unmatched neighbor.
    int Best = -1;
    double BestW = -1.0;
    for (const Graph::Edge &E : Fine.Adj[static_cast<size_t>(V)])
      if (Map[static_cast<size_t>(E.To)] == -1 && E.Weight > BestW) {
        BestW = E.Weight;
        Best = E.To;
      }
    int C = NextCoarse++;
    Map[static_cast<size_t>(V)] = C;
    if (Best != -1)
      Map[static_cast<size_t>(Best)] = C;
  }
  if (NextCoarse >= N)
    return false;

  Coarse.Adj.assign(static_cast<size_t>(NextCoarse), {});
  Coarse.VertexWeight.assign(static_cast<size_t>(NextCoarse), 0.0);
  for (int V = 0; V != N; ++V)
    Coarse.VertexWeight[static_cast<size_t>(Map[static_cast<size_t>(V)])] +=
        Fine.VertexWeight[static_cast<size_t>(V)];
  // Merge parallel edges.
  std::map<std::pair<int, int>, double> Merged;
  for (int V = 0; V != N; ++V) {
    int CV = Map[static_cast<size_t>(V)];
    for (const Graph::Edge &E : Fine.Adj[static_cast<size_t>(V)]) {
      int CU = Map[static_cast<size_t>(E.To)];
      if (CV == CU || CV > CU)
        continue; // skip contracted edges; count each pair once
      Merged[{CV, CU}] += E.Weight;
    }
  }
  for (auto &[Key, W] : Merged)
    Coarse.addEdge(Key.first, Key.second, W);
  return true;
}

/// Greedy region-growing initial k-way partition.
std::vector<int> initialPartition(const Graph &G, int K, double MaxPart,
                                  Rng &R) {
  int N = G.numVertices();
  std::vector<int> Assign(static_cast<size_t>(N), -1);
  std::vector<double> PartWeight(static_cast<size_t>(K), 0.0);
  for (int Part = 0; Part != K - 1; ++Part) {
    // Seed at a random unassigned vertex, grow by BFS until the target.
    std::vector<int> Unassigned;
    for (int V = 0; V != N; ++V)
      if (Assign[static_cast<size_t>(V)] == -1)
        Unassigned.push_back(V);
    if (Unassigned.empty())
      break;
    std::deque<int> Work{Unassigned[R.index(Unassigned.size())]};
    while (!Work.empty() && PartWeight[static_cast<size_t>(Part)] < MaxPart) {
      int V = Work.front();
      Work.pop_front();
      if (Assign[static_cast<size_t>(V)] != -1)
        continue;
      Assign[static_cast<size_t>(V)] = Part;
      PartWeight[static_cast<size_t>(Part)] +=
          G.VertexWeight[static_cast<size_t>(V)];
      for (const Graph::Edge &E : G.Adj[static_cast<size_t>(V)])
        if (Assign[static_cast<size_t>(E.To)] == -1)
          Work.push_back(E.To);
    }
  }
  // Everything left goes to the lightest part.
  for (int V = 0; V != N; ++V) {
    if (Assign[static_cast<size_t>(V)] != -1)
      continue;
    size_t Lightest = 0;
    for (size_t P = 1; P != PartWeight.size(); ++P)
      if (PartWeight[P] < PartWeight[Lightest])
        Lightest = P;
    Assign[static_cast<size_t>(V)] = static_cast<int>(Lightest);
    PartWeight[Lightest] += G.VertexWeight[static_cast<size_t>(V)];
  }
  return Assign;
}

/// Greedy boundary refinement (KL-style single-vertex moves).
void refine(const Graph &G, std::vector<int> &Assign, int K, double MaxPart,
            int Passes, Rng &R) {
  int N = G.numVertices();
  std::vector<double> PartWeight(static_cast<size_t>(K), 0.0);
  for (int V = 0; V != N; ++V)
    PartWeight[static_cast<size_t>(Assign[static_cast<size_t>(V)])] +=
        G.VertexWeight[static_cast<size_t>(V)];

  std::vector<int> Order(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    Order[static_cast<size_t>(I)] = I;

  for (int Pass = 0; Pass != Passes; ++Pass) {
    R.shuffle(Order);
    bool Moved = false;
    for (int V : Order) {
      int Own = Assign[static_cast<size_t>(V)];
      // Connectivity to each part.
      std::vector<double> Link(static_cast<size_t>(K), 0.0);
      for (const Graph::Edge &E : G.Adj[static_cast<size_t>(V)])
        Link[static_cast<size_t>(Assign[static_cast<size_t>(E.To)])] +=
            E.Weight;
      int BestPart = Own;
      double BestGain = 0.0;
      for (int P = 0; P != K; ++P) {
        if (P == Own)
          continue;
        double Gain = Link[static_cast<size_t>(P)] -
                      Link[static_cast<size_t>(Own)];
        bool Fits = PartWeight[static_cast<size_t>(P)] +
                        G.VertexWeight[static_cast<size_t>(V)] <=
                    MaxPart;
        if (Gain > BestGain && Fits) {
          BestGain = Gain;
          BestPart = P;
        }
      }
      if (BestPart != Own) {
        PartWeight[static_cast<size_t>(Own)] -=
            G.VertexWeight[static_cast<size_t>(V)];
        PartWeight[static_cast<size_t>(BestPart)] +=
            G.VertexWeight[static_cast<size_t>(V)];
        Assign[static_cast<size_t>(V)] = BestPart;
        Moved = true;
      }
    }
    if (!Moved)
      break;
  }
}

} // namespace

PartitionResult wbt::gp::partition(const Graph &G, const PartitionParams &P) {
  assert(P.NumParts >= 2 && "need at least two parts");
  Rng R(P.Seed);
  PartitionResult Res;
  Res.Levels = 0;

  // Coarsening phase.
  std::vector<Level> Levels;
  Graph Current = G;
  while (Current.numVertices() > std::max(P.CoarsenTo, 2 * P.NumParts)) {
    Level L;
    if (!coarsenOnce(Current, L.G, L.Map, R))
      break;
    std::swap(L.G, Current); // L.G = fine graph, Current = coarse
    Levels.push_back(std::move(L));
    ++Res.Levels;
  }
  Res.CoarsestSize = Current.numVertices();

  // Initial partition on the coarsest graph.
  double Target = G.totalVertexWeight() / P.NumParts;
  double MaxPart = Target * (1.0 + P.Imbalance);
  std::vector<int> Assign = initialPartition(Current, P.NumParts, MaxPart, R);
  refine(Current, Assign, P.NumParts, MaxPart, P.RefinePasses, R);

  // Uncoarsening with refinement at every level.
  for (size_t I = Levels.size(); I-- > 0;) {
    const Level &L = Levels[I];
    std::vector<int> FineAssign(L.Map.size());
    for (size_t V = 0; V != L.Map.size(); ++V)
      FineAssign[V] = Assign[static_cast<size_t>(L.Map[V])];
    Assign = std::move(FineAssign);
    refine(L.G, Assign, P.NumParts, MaxPart, P.RefinePasses, R);
  }

  Res.EdgeCut = edgeCut(G, Assign);
  std::vector<double> PartWeight(static_cast<size_t>(P.NumParts), 0.0);
  for (int V = 0; V != G.numVertices(); ++V)
    PartWeight[static_cast<size_t>(Assign[static_cast<size_t>(V)])] +=
        G.VertexWeight[static_cast<size_t>(V)];
  double MaxW = *std::max_element(PartWeight.begin(), PartWeight.end());
  Res.BalanceRatio = Target > 0 ? MaxW / Target : 1.0;
  Res.Assignment = std::move(Assign);
  return Res;
}

PlantedGraph wbt::gp::makePlantedGraph(uint64_t Seed, int Index,
                                       const PlantedGraphOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 555);
  PlantedGraph Out;
  int N = Opts.Communities * Opts.VerticesPerCommunity;
  Out.G.Adj.assign(static_cast<size_t>(N), {});
  Out.G.VertexWeight.assign(static_cast<size_t>(N), 1.0);
  Out.TrueCommunity.resize(static_cast<size_t>(N));
  for (int V = 0; V != N; ++V)
    Out.TrueCommunity[static_cast<size_t>(V)] =
        V / Opts.VerticesPerCommunity;
  for (int A = 0; A != N; ++A)
    for (int B = A + 1; B != N; ++B) {
      bool Same = Out.TrueCommunity[static_cast<size_t>(A)] ==
                  Out.TrueCommunity[static_cast<size_t>(B)];
      double Prob = Same ? Opts.IntraProb : Opts.InterProb;
      if (R.flip(Prob))
        Out.G.addEdge(A, B, 1.0);
    }
  return Out;
}
