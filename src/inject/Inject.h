//===- inject/Inject.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for the fork runtime. The
/// runtime's hazardous syscalls go through thin `wbt::sys::*` wrappers
/// (inject/Sys.h) which consult an armed *plan* before touching the
/// kernel; trace points double as kill points. A plan is a compact
/// string — from `RuntimeOptions::InjectPlan` or the `WBT_INJECT`
/// environment variable — so any failing run is replayable from the
/// plan text plus its seed.
///
/// Plan grammar (clauses separated by ';'):
///
///   plan   := item (';' item)*
///   item   := 'seed=' N | clause
///   clause := site '@' sel ':' act
///   site   := fork | mmap | mkdtemp | mkdir | waitpid | write | read
///           | unlink | opendir | zygote | socket | connect | accept
///           | send | recv | 'tp.' point-name
///   sel    := 'n' N        -- eligible from the Nth call on (1-based,
///                             per process; children inherit counters)
///           | 'p' FLOAT    -- each eligible call fires with probability
///                             FLOAT (seeded hash; deterministic)
///   act    := ERRNO ['*' count]  -- fail with that errno; the clause
///                                   fires at most `count` times
///                                   (default 1 for 'n', unlimited for
///                                   'p'; '*0' = unlimited)
///           | 'short' ['*' count] -- write site: truncate the write
///                                    halfway, then fail with ENOSPC;
///                                    send site: push half the frame
///                                    onto the wire, then fail with
///                                    EPIPE (a genuinely torn frame)
///           | 'kill' ['*' count]  -- SIGKILL the calling process
///                                    (trace-point sites)
///
/// Examples:
///   waitpid@n1:EINTR*8           first 8 waitpid calls are interrupted
///   fork@n2:EAGAIN               the 2nd fork of each process fails once
///   mkdtemp@n1:EACCES            init's run-directory creation fails
///   write@p0.1:short             10% of file-store writes truncate
///   connect@n1:ECONNREFUSED      an agent's first connect is refused
///   send@n3:short                the 3rd send tears a frame mid-wire
///   tp.sample.begin@n1:kill      SIGKILL at the first sample trace point
///   seed=7;fork@p0.05:EAGAIN*3   seeded probabilistic fork failures
///
/// Determinism: every decision is a pure function of (plan seed, site,
/// per-process call counter, process tag). Counters are process-local
/// and inherited across fork(2); the runtime tags each forked sampling
/// child / pool worker / split child with its deterministic identity
/// (tagProcess), so probabilistic clauses land on the same child
/// identities across replays of the same schedule. Interleaving-
/// dependent call orders (pool workers racing on leases) can shift
/// which *call* fires, never whether the run as a whole is replayable
/// from the plan.
///
/// When no plan is armed every hook is a single relaxed load of one
/// global flag and a predicted-not-taken branch — nothing measurable on
/// paths that are about to enter the kernel anyway (the
/// `shm+fold+workerpool+inject` ablation row pins this).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_INJECT_INJECT_H
#define WBT_INJECT_INJECT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wbt {
namespace inject {

/// Wrapper points a plan clause can target. TracePoint clauses match on
/// the point's name instead (Clause::Point).
enum class Site : int {
  Fork = 0,
  Mmap,
  Mkdtemp,
  Mkdir,
  Waitpid,
  Write,
  Read,
  Unlink,
  Opendir,
  Zygote,
  Socket,
  Connect,
  Accept,
  Send,
  Recv,
  TracePoint,
};
constexpr int NumSites = static_cast<int>(Site::TracePoint) + 1;

/// One parsed plan clause. See the file header for the grammar.
struct Clause {
  Site S = Site::Fork;
  std::string Point;    ///< trace-point name (Site::TracePoint only)
  uint64_t FromNth = 1; ///< eligible from this call ordinal (1-based)
  double P = -1.0;      ///< >= 0: per-call firing probability
  int64_t Budget = 1;   ///< remaining firings; < 0 = unlimited
  int Err = 0;          ///< errno delivered when the clause fires
  bool Short = false;   ///< truncate the write halfway (write site)
  bool Kill = false;    ///< SIGKILL the calling process
};

struct Plan {
  uint64_t Seed = 1;
  std::vector<Clause> Clauses;
};

/// Parses \p Text into \p Out. On failure returns false and describes
/// the offending clause in \p Err.
bool parsePlan(const std::string &Text, Plan &Out, std::string &Err);

/// Arms \p P process-wide and resets all call counters. Forked children
/// inherit the armed state and the counters at their fork point.
void arm(const Plan &P);
/// Convenience: parse + arm. Returns false (leaving injection disarmed)
/// on a parse error.
bool armText(const std::string &Text, std::string &Err);
void disarm();

namespace detail {
extern std::atomic<bool> GArmed;
/// Slow paths; only reached while a plan is armed.
int onCallSlow(Site S);
int onWriteSlow(size_t Size, size_t &Allowed);
int onSendSlow(size_t Size, size_t &Allowed);
void onTracePointSlow(const char *Name);
} // namespace detail

/// Whether a plan is armed. The disarmed fast path of every hook.
inline bool armed() {
  return detail::GArmed.load(std::memory_order_relaxed);
}

/// Consults the plan for one call at \p S. Returns 0 to proceed with
/// the real call, or an errno the wrapper must fail with.
inline int onCall(Site S) {
  if (!armed())
    return 0;
  return detail::onCallSlow(S);
}

/// Write-site variant: on failure \p Allowed is how many of \p Size
/// bytes the wrapper should still write before failing (short writes).
inline int onWrite(size_t Size, size_t &Allowed) {
  if (!armed())
    return 0;
  return detail::onWriteSlow(Size, Allowed);
}

/// Send-site variant: on failure \p Allowed is how many of \p Size
/// bytes the wrapper should still push onto the wire before failing
/// (torn frames — the peer reads a half-written length-prefixed frame).
inline int onSend(size_t Size, size_t &Allowed) {
  if (!armed())
    return 0;
  return detail::onSendSlow(Size, Allowed);
}

/// Kill-point hook, called from the runtime's trace points with the
/// point's name. May not return (SIGKILL).
inline void onTracePoint(const char *Name) {
  if (armed())
    detail::onTracePointSlow(Name);
}

/// Mixes a deterministic per-process identity (e.g. region << 20 |
/// child index) into this process' probabilistic decisions, so 'p'
/// clauses select the same child identities across replays instead of
/// all-or-none of a region's children.
void tagProcess(uint64_t Tag);

/// Calls observed at \p S in this process so far (tests/diagnostics).
uint64_t callCount(Site S);

const char *siteName(Site S);

} // namespace inject
} // namespace wbt

#endif // WBT_INJECT_INJECT_H
