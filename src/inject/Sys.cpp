//===- inject/Sys.cpp - Injectable syscall wrappers -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "inject/Sys.h"

#include "inject/Inject.h"

#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace wbt;

pid_t sys::forkProcess() {
  if (int E = inject::onCall(inject::Site::Fork)) {
    errno = E;
    return -1;
  }
  return ::fork();
}

pid_t sys::forkZygote() {
  if (int E = inject::onCall(inject::Site::Zygote)) {
    errno = E;
    return -1;
  }
  return ::fork();
}

void *sys::mmapShared(size_t Bytes) {
  if (int E = inject::onCall(inject::Site::Mmap)) {
    errno = E;
    return MAP_FAILED;
  }
  return ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
}

char *sys::makeTempDir(char *Templ) {
  if (int E = inject::onCall(inject::Site::Mkdtemp)) {
    errno = E;
    return nullptr;
  }
  return ::mkdtemp(Templ);
}

bool sys::makeDir(const std::string &Path) {
  if (int E = inject::onCall(inject::Site::Mkdir)) {
    errno = E;
    return false;
  }
  return ::mkdir(Path.c_str(), 0700) == 0 || errno == EEXIST;
}

pid_t sys::waitPid(pid_t Pid, int *Status, int Flags) {
  for (;;) {
    // Injected EINTR takes the same retry edge as the real thing, so an
    // EINTR storm exercises exactly the loop that used to be missing.
    if (int E = inject::onCall(inject::Site::Waitpid)) {
      if (E == EINTR)
        continue;
      errno = E;
      return -1;
    }
    pid_t R = ::waitpid(Pid, Status, Flags);
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

DIR *sys::openDir(const char *Path) {
  if (int E = inject::onCall(inject::Site::Opendir)) {
    errno = E;
    return nullptr;
  }
  return ::opendir(Path);
}

int sys::removePath(const char *Path) {
  if (int E = inject::onCall(inject::Site::Unlink)) {
    errno = E;
    return -1;
  }
  return ::remove(Path);
}

void sys::fatal(const char *Fmt, ...) {
  std::va_list Ap;
  va_start(Ap, Fmt);
  std::fputs("wbtuner: fatal: ", stderr);
  std::vfprintf(stderr, Fmt, Ap);
  std::fputc('\n', stderr);
  va_end(Ap);
  std::fflush(nullptr);
  std::abort();
}
