//===- inject/Sys.cpp - Injectable syscall wrappers -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "inject/Sys.h"

#include "inject/Inject.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace wbt;

pid_t sys::forkProcess() {
  if (int E = inject::onCall(inject::Site::Fork)) {
    errno = E;
    return -1;
  }
  return ::fork();
}

pid_t sys::forkZygote() {
  if (int E = inject::onCall(inject::Site::Zygote)) {
    errno = E;
    return -1;
  }
  return ::fork();
}

void *sys::mmapShared(size_t Bytes) {
  if (int E = inject::onCall(inject::Site::Mmap)) {
    errno = E;
    return MAP_FAILED;
  }
  return ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
}

char *sys::makeTempDir(char *Templ) {
  if (int E = inject::onCall(inject::Site::Mkdtemp)) {
    errno = E;
    return nullptr;
  }
  return ::mkdtemp(Templ);
}

bool sys::makeDir(const std::string &Path) {
  if (int E = inject::onCall(inject::Site::Mkdir)) {
    errno = E;
    return false;
  }
  return ::mkdir(Path.c_str(), 0700) == 0 || errno == EEXIST;
}

pid_t sys::waitPid(pid_t Pid, int *Status, int Flags) {
  for (;;) {
    // Injected EINTR takes the same retry edge as the real thing, so an
    // EINTR storm exercises exactly the loop that used to be missing.
    if (int E = inject::onCall(inject::Site::Waitpid)) {
      if (E == EINTR)
        continue;
      errno = E;
      return -1;
    }
    pid_t R = ::waitpid(Pid, Status, Flags);
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

DIR *sys::openDir(const char *Path) {
  if (int E = inject::onCall(inject::Site::Opendir)) {
    errno = E;
    return nullptr;
  }
  return ::opendir(Path);
}

int sys::removePath(const char *Path) {
  if (int E = inject::onCall(inject::Site::Unlink)) {
    errno = E;
    return -1;
  }
  return ::remove(Path);
}

int sys::socketCreate() {
  if (int E = inject::onCall(inject::Site::Socket)) {
    errno = E;
    return -1;
  }
  return ::socket(AF_INET, SOCK_STREAM, 0);
}

int sys::connectTo(int Fd, const std::string &Addr, uint16_t Port) {
  if (int E = inject::onCall(inject::Site::Connect)) {
    errno = E;
    return -1;
  }
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Addr.c_str(), &Sa.sin_addr) != 1) {
    errno = EINVAL;
    return -1;
  }
  for (;;) {
    int R = ::connect(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa));
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

int sys::acceptConn(int Fd) {
  if (int E = inject::onCall(inject::Site::Accept)) {
    errno = E;
    return -1;
  }
  for (;;) {
    int R = ::accept(Fd, nullptr, nullptr);
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

/// send(2) until \p Size bytes of \p Buf are on the wire or the socket
/// fails; EINTR retried, SIGPIPE suppressed (errors surface as EPIPE).
static ssize_t sendAll(int Fd, const void *Buf, size_t Size) {
  const char *P = static_cast<const char *>(Buf);
  size_t Sent = 0;
  while (Sent < Size) {
    ssize_t R = ::send(Fd, P + Sent, Size - Sent, MSG_NOSIGNAL);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      return -1;
    Sent += static_cast<size_t>(R);
  }
  return static_cast<ssize_t>(Size);
}

ssize_t sys::sendBytes(int Fd, const void *Buf, size_t Size) {
  size_t Allowed = 0;
  if (int E = inject::onSend(Size, Allowed)) {
    // A torn frame must really reach the peer: push the allowed prefix
    // onto the wire, then fail as if the connection died mid-send.
    if (Allowed)
      sendAll(Fd, Buf, Allowed);
    errno = E;
    return -1;
  }
  return sendAll(Fd, Buf, Size);
}

ssize_t sys::recvBytes(int Fd, void *Buf, size_t Size) {
  if (int E = inject::onCall(inject::Site::Recv)) {
    errno = E;
    return -1;
  }
  for (;;) {
    ssize_t R = ::recv(Fd, Buf, Size, 0);
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

ssize_t sys::sendOnce(int Fd, const void *Buf, size_t Size) {
  size_t Allowed = 0;
  if (int E = inject::onSend(Size, Allowed)) {
    if (E == EINTR || E == EAGAIN) {
      // Interruptions surface as-is: the caller's pump loop is the
      // retry edge under test.
      errno = E;
      return -1;
    }
    if (Allowed) {
      // A 'short' action reads as an honest partial write here; the
      // terminal error lands on the caller's next attempt.
      ssize_t W = ::send(Fd, Buf, Allowed, MSG_NOSIGNAL);
      if (W > 0)
        return W;
    }
    errno = E;
    return -1;
  }
  return ::send(Fd, Buf, Size, MSG_NOSIGNAL);
}

ssize_t sys::recvOnce(int Fd, void *Buf, size_t Size) {
  if (int E = inject::onCall(inject::Site::Recv)) {
    errno = E;
    return -1;
  }
  return ::recv(Fd, Buf, Size, 0);
}

int sys::socketUnix() {
  if (int E = inject::onCall(inject::Site::Socket)) {
    errno = E;
    return -1;
  }
  return ::socket(AF_UNIX, SOCK_STREAM, 0);
}

void sys::fatal(const char *Fmt, ...) {
  std::va_list Ap;
  va_start(Ap, Fmt);
  std::fputs("wbtuner: fatal: ", stderr);
  std::vfprintf(stderr, Fmt, Ap);
  std::fputc('\n', stderr);
  va_end(Ap);
  std::fflush(nullptr);
  std::abort();
}
