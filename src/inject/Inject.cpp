//===- inject/Inject.cpp - Deterministic fault injection ------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "inject/Inject.h"

#include <signal.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace wbt;
using namespace wbt::inject;

namespace {

/// The armed plan plus per-process execution state. Plain process
/// memory: forked children inherit a snapshot of the counters, which is
/// exactly what makes per-child decisions deterministic.
struct State {
  Plan ThePlan;
  std::atomic<uint64_t> Counters[NumSites];
  uint64_t ProcessTag = 0;
};

State GState;

uint64_t splitmix(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic per-call coin for 'p' clauses: a pure function of the
/// plan seed, the process tag, the site, and the call ordinal.
bool coin(Site S, uint64_t Nth, double P) {
  uint64_t H = splitmix(GState.ThePlan.Seed ^
                        splitmix(GState.ProcessTag ^
                                 (static_cast<uint64_t>(S) << 32) ^ Nth));
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0) < P;
}

/// Whether \p C fires for call ordinal \p Nth, consuming budget.
bool clauseFires(Clause &C, uint64_t Nth) {
  if (Nth < C.FromNth || C.Budget == 0)
    return false;
  if (C.P >= 0 && !coin(C.S, Nth, C.P))
    return false;
  if (C.Budget > 0)
    --C.Budget;
  return true;
}

struct ErrnoName {
  const char *Name;
  int Value;
};

constexpr ErrnoName ErrnoNames[] = {
    {"EINTR", EINTR},   {"EAGAIN", EAGAIN},
    {"ENOMEM", ENOMEM}, {"ENOSPC", ENOSPC},
    {"EACCES", EACCES}, {"EIO", EIO},
    {"EMFILE", EMFILE}, {"ENFILE", ENFILE},
    {"ENOENT", ENOENT}, {"ECHILD", ECHILD},
    {"EBADF", EBADF},   {"EROFS", EROFS},
    {"ECONNREFUSED", ECONNREFUSED},
    {"ECONNRESET", ECONNRESET},
    {"EPIPE", EPIPE},   {"ETIMEDOUT", ETIMEDOUT},
};

int errnoFromName(const std::string &Name) {
  for (const ErrnoName &E : ErrnoNames)
    if (Name == E.Name)
      return E.Value;
  // Raw numbers are accepted for anything not in the table.
  char *End = nullptr;
  long V = std::strtol(Name.c_str(), &End, 10);
  if (End && *End == '\0' && V > 0)
    return static_cast<int>(V);
  return -1;
}

struct SiteToken {
  const char *Name;
  Site S;
};

constexpr SiteToken SiteTokens[] = {
    {"fork", Site::Fork},       {"mmap", Site::Mmap},
    {"mkdtemp", Site::Mkdtemp}, {"mkdir", Site::Mkdir},
    {"waitpid", Site::Waitpid}, {"write", Site::Write},
    {"read", Site::Read},       {"unlink", Site::Unlink},
    {"opendir", Site::Opendir}, {"zygote", Site::Zygote},
    {"socket", Site::Socket},   {"connect", Site::Connect},
    {"accept", Site::Accept},   {"send", Site::Send},
    {"recv", Site::Recv},       {"tp", Site::TracePoint},
};

bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Parses one `site@sel:act` clause.
bool parseClause(const std::string &Item, Clause &C, std::string &Err) {
  size_t At = Item.find('@');
  size_t Colon = At == std::string::npos ? std::string::npos
                                         : Item.find(':', At + 1);
  if (At == std::string::npos || Colon == std::string::npos) {
    Err = "clause '" + Item + "' is not site@sel:act";
    return false;
  }
  std::string SiteStr = Item.substr(0, At);
  std::string Sel = Item.substr(At + 1, Colon - At - 1);
  std::string Act = Item.substr(Colon + 1);

  // Site, with the `tp.<name>` form carrying the trace-point name.
  std::string PointName;
  if (SiteStr.compare(0, 3, "tp.") == 0) {
    PointName = SiteStr.substr(3);
    SiteStr = "tp";
  }
  bool SiteOk = false;
  for (const SiteToken &T : SiteTokens)
    if (SiteStr == T.Name) {
      C.S = T.S;
      SiteOk = true;
      break;
    }
  if (!SiteOk || (C.S == Site::TracePoint && PointName.empty())) {
    Err = "unknown site '" + SiteStr + "' in '" + Item + "'";
    return false;
  }
  C.Point = PointName;

  // Selector: nN (ordinal) or pF (probability).
  bool Probabilistic = false;
  if (Sel.size() > 1 && Sel[0] == 'n') {
    if (!parseUint(Sel.substr(1), C.FromNth) || C.FromNth == 0) {
      Err = "bad ordinal selector '" + Sel + "' in '" + Item + "'";
      return false;
    }
  } else if (Sel.size() > 1 && Sel[0] == 'p') {
    char *End = nullptr;
    C.P = std::strtod(Sel.c_str() + 1, &End);
    if (!End || *End != '\0' || C.P < 0.0 || C.P > 1.0) {
      Err = "bad probability selector '" + Sel + "' in '" + Item + "'";
      return false;
    }
    Probabilistic = true;
  } else {
    Err = "bad selector '" + Sel + "' in '" + Item + "'";
    return false;
  }

  // Action, with an optional '*count' firing budget.
  C.Budget = Probabilistic ? -1 : 1;
  size_t Star = Act.find('*');
  if (Star != std::string::npos) {
    uint64_t N = 0;
    if (!parseUint(Act.substr(Star + 1), N)) {
      Err = "bad count in '" + Item + "'";
      return false;
    }
    C.Budget = N == 0 ? -1 : static_cast<int64_t>(N);
    Act = Act.substr(0, Star);
  }
  if (Act == "kill") {
    if (C.S != Site::TracePoint) {
      Err = "'kill' is only valid at tp.* sites ('" + Item + "')";
      return false;
    }
    C.Kill = true;
    return true;
  }
  if (Act == "short") {
    if (C.S != Site::Write && C.S != Site::Send) {
      Err = "'short' is only valid at the write/send sites ('" + Item + "')";
      return false;
    }
    C.Short = true;
    C.Err = C.S == Site::Send ? EPIPE : ENOSPC;
    return true;
  }
  C.Err = errnoFromName(Act);
  if (C.Err <= 0) {
    Err = "unknown errno '" + Act + "' in '" + Item + "'";
    return false;
  }
  if (C.S == Site::TracePoint) {
    Err = "tp.* sites only support 'kill' ('" + Item + "')";
    return false;
  }
  return true;
}

/// First clause of \p S (matching \p Point at trace points) that fires
/// for this call, or null.
Clause *decide(Site S, const char *Point = nullptr) {
  uint64_t Nth = GState.Counters[static_cast<int>(S)].fetch_add(
                     1, std::memory_order_relaxed) +
                 1;
  for (Clause &C : GState.ThePlan.Clauses) {
    if (C.S != S)
      continue;
    if (S == Site::TracePoint && (!Point || C.Point != Point))
      continue;
    if (clauseFires(C, Nth))
      return &C;
  }
  return nullptr;
}

} // namespace

namespace wbt {
namespace inject {
namespace detail {

std::atomic<bool> GArmed{false};

int onCallSlow(Site S) {
  Clause *C = decide(S);
  return C ? C->Err : 0;
}

int onWriteSlow(size_t Size, size_t &Allowed) {
  Clause *C = decide(Site::Write);
  if (!C)
    return 0;
  Allowed = C->Short ? Size / 2 : 0;
  return C->Err;
}

int onSendSlow(size_t Size, size_t &Allowed) {
  Clause *C = decide(Site::Send);
  if (!C)
    return 0;
  Allowed = C->Short ? Size / 2 : 0;
  return C->Err;
}

void onTracePointSlow(const char *Name) {
  Clause *C = decide(Site::TracePoint, Name);
  if (C && C->Kill)
    raise(SIGKILL);
}

} // namespace detail

bool parsePlan(const std::string &Text, Plan &Out, std::string &Err) {
  Out = Plan();
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Semi = Text.find(';', Pos);
    std::string Item = Text.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Text.size() + 1 : Semi + 1;
    if (Item.empty())
      continue;
    if (Item.compare(0, 5, "seed=") == 0) {
      if (!parseUint(Item.substr(5), Out.Seed)) {
        Err = "bad seed in '" + Item + "'";
        return false;
      }
      continue;
    }
    Clause C;
    if (!parseClause(Item, C, Err))
      return false;
    Out.Clauses.push_back(std::move(C));
  }
  return true;
}

void arm(const Plan &P) {
  GState.ThePlan = P;
  for (std::atomic<uint64_t> &C : GState.Counters)
    C.store(0, std::memory_order_relaxed);
  GState.ProcessTag = 0;
  detail::GArmed.store(!P.Clauses.empty(), std::memory_order_relaxed);
}

bool armText(const std::string &Text, std::string &Err) {
  Plan P;
  if (!parsePlan(Text, P, Err))
    return false;
  arm(P);
  return true;
}

void disarm() {
  detail::GArmed.store(false, std::memory_order_relaxed);
  GState.ThePlan = Plan();
}

void tagProcess(uint64_t Tag) { GState.ProcessTag = Tag; }

uint64_t callCount(Site S) {
  return GState.Counters[static_cast<int>(S)].load(std::memory_order_relaxed);
}

const char *siteName(Site S) {
  for (const SiteToken &T : SiteTokens)
    if (T.S == S)
      return T.Name;
  return "unknown";
}

} // namespace inject
} // namespace wbt
