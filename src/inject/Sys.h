//===- inject/Sys.h - Injectable syscall wrappers ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over the fork runtime's hazardous syscalls. Each one
/// consults the armed fault-injection plan (inject/Inject.h) before the
/// real call — a single predicted branch when disarmed — and each fixes
/// one class of syscall-handling bug in place:
///
///  * waitPid retries EINTR instead of letting an interrupted wait read
///    as "child not exited" (which leaked split-child accounting and
///    could hang the root in waitLiveTuningProcesses);
///  * fatal() reports and aborts in every build type, replacing
///    assert()s that compile out under NDEBUG and let init continue
///    with a garbage run directory.
///
/// Injected failures set errno exactly like the kernel would, so call
/// sites cannot tell (and must not care) whether a failure is real.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_INJECT_SYS_H
#define WBT_INJECT_SYS_H

#include <dirent.h>
#include <sys/types.h>

#include <cstddef>
#include <string>

namespace wbt {
namespace sys {

/// fork(2). Injection: returns -1 with the planned errno.
pid_t forkProcess();

/// fork(2) of a parked zygote worker — its own injection site so plans
/// can fail nursery spawns/respawns without touching regular forks.
pid_t forkZygote();

/// mmap(2) of an anonymous MAP_SHARED region. Returns MAP_FAILED (with
/// errno) on failure, injected or real.
void *mmapShared(size_t Bytes);

/// mkdtemp(3) over \p Templ (modified in place). Null + errno on failure.
char *makeTempDir(char *Templ);

/// mkdir(2), mode 0700; an existing directory counts as success.
/// Returns false with errno set on failure.
bool makeDir(const std::string &Path);

/// waitpid(2) that retries while the wait is interrupted (EINTR), real
/// or injected — an interrupted wait is not a verdict on the child.
pid_t waitPid(pid_t Pid, int *Status, int Flags);

/// opendir(3). Null + errno on failure.
DIR *openDir(const char *Path);

/// remove(3) — the unlink site (run-directory teardown).
int removePath(const char *Path);

/// Reports a fatal runtime error and aborts, in every build type.
[[noreturn]] void fatal(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sys
} // namespace wbt

#endif // WBT_INJECT_SYS_H
