//===- inject/Sys.h - Injectable syscall wrappers ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over the fork runtime's hazardous syscalls. Each one
/// consults the armed fault-injection plan (inject/Inject.h) before the
/// real call — a single predicted branch when disarmed — and each fixes
/// one class of syscall-handling bug in place:
///
///  * waitPid retries EINTR instead of letting an interrupted wait read
///    as "child not exited" (which leaked split-child accounting and
///    could hang the root in waitLiveTuningProcesses);
///  * fatal() reports and aborts in every build type, replacing
///    assert()s that compile out under NDEBUG and let init continue
///    with a garbage run directory.
///
/// Injected failures set errno exactly like the kernel would, so call
/// sites cannot tell (and must not care) whether a failure is real.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_INJECT_SYS_H
#define WBT_INJECT_SYS_H

#include <dirent.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace wbt {
namespace sys {

/// fork(2). Injection: returns -1 with the planned errno.
pid_t forkProcess();

/// fork(2) of a parked zygote worker — its own injection site so plans
/// can fail nursery spawns/respawns without touching regular forks.
pid_t forkZygote();

/// mmap(2) of an anonymous MAP_SHARED region. Returns MAP_FAILED (with
/// errno) on failure, injected or real.
void *mmapShared(size_t Bytes);

/// mkdtemp(3) over \p Templ (modified in place). Null + errno on failure.
char *makeTempDir(char *Templ);

/// mkdir(2), mode 0700; an existing directory counts as success.
/// Returns false with errno set on failure.
bool makeDir(const std::string &Path);

/// waitpid(2) that retries while the wait is interrupted (EINTR), real
/// or injected — an interrupted wait is not a verdict on the child.
pid_t waitPid(pid_t Pid, int *Status, int Flags);

/// opendir(3). Null + errno on failure.
DIR *openDir(const char *Path);

/// remove(3) — the unlink site (run-directory teardown).
int removePath(const char *Path);

/// socket(2), AF_INET stream. -1 + errno on failure.
int socketCreate();

/// connect(2) of \p Fd to the IPv4 address \p Addr at \p Port, retrying
/// EINTR. -1 + errno on failure (ECONNREFUSED drives agent reconnect
/// backoff, real or injected).
int connectTo(int Fd, const std::string &Addr, uint16_t Port);

/// accept(2) on listening \p Fd, retrying EINTR. -1 + errno on failure;
/// EAGAIN when \p Fd is non-blocking and no connection is pending.
int acceptConn(int Fd);

/// Full send(2) of \p Size bytes (MSG_NOSIGNAL, partial sends retried).
/// Returns \p Size, or -1 + errno. An injected 'short' pushes half the
/// bytes onto the wire before failing with EPIPE, so the peer reads a
/// genuinely torn length-prefixed frame.
ssize_t sendBytes(int Fd, const void *Buf, size_t Size);

/// recv(2), retrying EINTR. Returns bytes read (0 = orderly shutdown),
/// or -1 + errno; EAGAIN when \p Fd is non-blocking and nothing is
/// buffered.
ssize_t recvBytes(int Fd, void *Buf, size_t Size);

/// Single-shot send(2) (MSG_NOSIGNAL, no retry loop): EINTR and EAGAIN
/// surface to the caller, which is what a poll-pumped server wants — it
/// keeps the unsent tail buffered and retries on the next pump. Consults
/// the same injection plan as sendBytes (a 'short' action pushes the
/// allowed prefix and reports it as a genuine partial write).
ssize_t sendOnce(int Fd, const void *Buf, size_t Size);

/// Single-shot recv(2): EINTR and EAGAIN surface to the caller (see
/// sendOnce). Injection: Site::Recv.
ssize_t recvOnce(int Fd, void *Buf, size_t Size);

/// socket(2), AF_UNIX stream (the daemon control socket). -1 + errno on
/// failure; shares Site::Socket with the inet flavor.
int socketUnix();

/// Reports a fatal runtime error and aborts, in every build type.
[[noreturn]] void fatal(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sys
} // namespace wbt

#endif // WBT_INJECT_SYS_H
