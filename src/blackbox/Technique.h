//===- blackbox/Technique.h - Black-box search techniques -------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search techniques for the OpenTuner-style black-box baseline. A
/// technique proposes full parameter configurations; the driver evaluates
/// them with the user's scoring function and feeds the outcome back.
/// Scores are normalized so that higher is always better inside the
/// search (the driver negates when minimizing).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BLACKBOX_TECHNIQUE_H
#define WBT_BLACKBOX_TECHNIQUE_H

#include "param/ConfigSpace.h"

#include <memory>
#include <string>
#include <vector>

namespace wbt {
namespace bb {

/// One evaluated configuration.
struct Result {
  Config C;
  /// Internal score, higher is better.
  double Score = 0.0;
  /// Wall-clock seconds since the search started.
  double AtSeconds = 0.0;
};

/// Append-only store of every evaluation, with the incumbent best.
class ResultDB {
public:
  /// Records a result; \returns true if it is a new global best.
  bool add(Result R);

  bool empty() const { return Results.empty(); }
  size_t size() const { return Results.size(); }
  const Result &at(size_t I) const { return Results[I]; }
  bool hasBest() const { return Best != ~size_t(0); }
  const Result &best() const { return Results[Best]; }

  /// Indices of the top \p K results by score (best first).
  std::vector<size_t> topK(size_t K) const;

private:
  std::vector<Result> Results;
  size_t Best = ~size_t(0);
};

/// A configuration proposer. Implementations may carry internal state
/// (annealing temperature, pattern-search step, ...) updated in feedback().
class Technique {
public:
  virtual ~Technique();

  /// Proposes the next configuration to evaluate.
  virtual Config propose(const ConfigSpace &Space, const ResultDB &DB,
                         Rng &R) = 0;

  /// Reports the evaluated score of a configuration this technique
  /// proposed (higher is better).
  virtual void feedback(const Config &C, double Score, Rng &R);

  virtual std::string name() const = 0;
};

/// Uniform random search.
std::unique_ptr<Technique> makeRandomTechnique();

/// Greedy mutation of the incumbent best.
std::unique_ptr<Technique> makeHillClimbTechnique(double Scale = 0.1);

/// Metropolis simulated annealing with geometric cooling.
std::unique_ptr<Technique> makeAnnealingTechnique(double InitTemp = 1.0,
                                                  double Cooling = 0.97,
                                                  double Scale = 0.15);

/// Tournament-selection genetic algorithm over the result database.
std::unique_ptr<Technique> makeGeneticTechnique(size_t Parents = 8,
                                                double MutateProb = 0.3,
                                                double MutateScale = 0.1);

/// Coordinate pattern search around the incumbent with shrinking steps.
std::unique_ptr<Technique> makePatternSearchTechnique(double InitStep = 0.25,
                                                      double Shrink = 0.7);

/// The default OpenTuner-like ensemble (one of each of the above).
std::vector<std::unique_ptr<Technique>> makeDefaultEnsemble();

/// The multi-armed-bandit meta technique (OpenTuner's default search
/// strategy, paper Sec. V-A): picks among arms by sliding-window AUC
/// credit plus an exploration bonus.
class AucBandit {
public:
  AucBandit(size_t NumArms, size_t Window = 50, double ExploreC = 0.05);

  /// Picks the next arm.
  size_t select(Rng &R);

  /// Reports whether the arm's proposal produced a new global best.
  void reward(size_t Arm, bool NewBest);

  size_t numArms() const { return Arms.size(); }

private:
  struct ArmState {
    std::vector<uint8_t> History; // sliding window of new-best flags
    size_t Uses = 0;
  };

  double aucOf(const ArmState &A) const;

  std::vector<ArmState> Arms;
  size_t Window;
  double ExploreC;
  size_t TotalUses = 0;
};

} // namespace bb
} // namespace wbt

#endif // WBT_BLACKBOX_TECHNIQUE_H
