//===- blackbox/SearchDriver.h - Budgeted black-box search ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The black-box tuning loop: a bandit over search techniques proposes
/// configurations, the user objective evaluates each with a *full program
/// execution* (the black-box cost model of paper Fig. 2), and the driver
/// tracks the incumbent and the score-over-time curve used by the paper's
/// Figs. 12/16/19/21.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BLACKBOX_SEARCHDRIVER_H
#define WBT_BLACKBOX_SEARCHDRIVER_H

#include "blackbox/Technique.h"

#include <functional>

namespace wbt {
namespace bb {

/// Budget and behavior of a black-box search.
struct DriverOptions {
  /// True when the objective reports an error to minimize.
  bool Minimize = false;
  /// Stop after this much wall-clock time (seconds); <= 0 means no limit.
  double TimeBudgetSeconds = 0.0;
  /// Stop after this many objective evaluations; <= 0 means no limit.
  long MaxEvals = 0;
  uint64_t Seed = 1;
  /// Evaluations issued concurrently per round. 1 reproduces stock
  /// OpenTuner (no parallel sampling, paper Sec. V); > 1 is the paper's
  /// multi-core extension.
  unsigned Workers = 1;
};

/// Search outcome: incumbent plus the best-score-over-time curve.
struct DriverResult {
  Config Best;
  /// Best score in user units (minimization is not negated here).
  double BestScore = 0.0;
  long Evals = 0;
  double Seconds = 0.0;
  /// (elapsed seconds, best-so-far user score) at every improvement.
  std::vector<std::pair<double, double>> Curve;
};

/// Runs an OpenTuner-style multi-armed-bandit search.
class SearchDriver {
public:
  /// Uses the default technique ensemble.
  SearchDriver();
  /// Uses a custom ensemble.
  explicit SearchDriver(std::vector<std::unique_ptr<Technique>> Ensemble);
  ~SearchDriver();

  /// Minimizes/maximizes \p Objective over \p Space within the budget.
  /// \p Objective must be callable from multiple threads when
  /// DriverOptions::Workers > 1.
  DriverResult run(const ConfigSpace &Space,
                   const std::function<double(const Config &)> &Objective,
                   const DriverOptions &Opts);

private:
  std::vector<std::unique_ptr<Technique>> Ensemble;
};

} // namespace bb
} // namespace wbt

#endif // WBT_BLACKBOX_SEARCHDRIVER_H
