//===- blackbox/Technique.cpp - Black-box search techniques ---------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "blackbox/Technique.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace wbt;
using namespace wbt::bb;

bool ResultDB::add(Result R) {
  Results.push_back(std::move(R));
  if (Best == ~size_t(0) || Results.back().Score > Results[Best].Score) {
    Best = Results.size() - 1;
    return true;
  }
  return false;
}

std::vector<size_t> ResultDB::topK(size_t K) const {
  std::vector<size_t> Idx(Results.size());
  for (size_t I = 0, E = Idx.size(); I != E; ++I)
    Idx[I] = I;
  K = std::min(K, Idx.size());
  std::partial_sort(Idx.begin(), Idx.begin() + K, Idx.end(),
                    [this](size_t A, size_t B) {
                      return Results[A].Score > Results[B].Score;
                    });
  Idx.resize(K);
  return Idx;
}

Technique::~Technique() = default;

void Technique::feedback(const Config &C, double Score, Rng &R) {
  (void)C;
  (void)Score;
  (void)R;
}

namespace {

class RandomTechnique : public Technique {
public:
  Config propose(const ConfigSpace &Space, const ResultDB &DB,
                 Rng &R) override {
    (void)DB;
    return Space.randomConfig(R);
  }
  std::string name() const override { return "Random"; }
};

class HillClimbTechnique : public Technique {
public:
  explicit HillClimbTechnique(double Scale) : Scale(Scale) {}

  Config propose(const ConfigSpace &Space, const ResultDB &DB,
                 Rng &R) override {
    if (!DB.hasBest())
      return Space.randomConfig(R);
    return Space.mutate(DB.best().C, R, Scale, /*MutateProb=*/0.5);
  }
  std::string name() const override { return "HillClimb"; }

private:
  double Scale;
};

class AnnealingTechnique : public Technique {
public:
  AnnealingTechnique(double InitTemp, double Cooling, double Scale)
      : Temp(InitTemp), Cooling(Cooling), Scale(Scale) {}

  Config propose(const ConfigSpace &Space, const ResultDB &DB,
                 Rng &R) override {
    if (!HasCurrent) {
      Current = DB.hasBest() ? DB.best().C : Space.randomConfig(R);
      HasCurrent = true;
    }
    LastProposal = Space.mutate(Current, R, Scale);
    return LastProposal;
  }

  void feedback(const Config &C, double Score, Rng &R) override {
    if (!(C == LastProposal))
      return;
    bool Accept = Score >= CurrentScore;
    if (!Accept && Temp > 1e-12) {
      double Span = std::max(1e-12, std::fabs(CurrentScore) + 1.0);
      Accept = R.flip(std::exp((Score - CurrentScore) / (Temp * Span)));
    }
    if (Accept) {
      Current = C;
      CurrentScore = Score;
    }
    Temp *= Cooling;
  }

  std::string name() const override { return "Annealing"; }

private:
  double Temp;
  double Cooling;
  double Scale;
  bool HasCurrent = false;
  Config Current;
  Config LastProposal;
  double CurrentScore = -std::numeric_limits<double>::infinity();
};

class GeneticTechnique : public Technique {
public:
  GeneticTechnique(size_t Parents, double MutateProb, double MutateScale)
      : Parents(Parents), MutateProb(MutateProb), MutateScale(MutateScale) {}

  Config propose(const ConfigSpace &Space, const ResultDB &DB,
                 Rng &R) override {
    if (DB.size() < 2)
      return Space.randomConfig(R);
    std::vector<size_t> Pool = DB.topK(Parents);
    const Config &A = DB.at(Pool[R.index(Pool.size())]).C;
    const Config &B = DB.at(Pool[R.index(Pool.size())]).C;
    Config Child = Space.crossover(A, B, R);
    if (R.flip(MutateProb))
      Child = Space.mutate(Child, R, MutateScale, 0.5);
    return Child;
  }

  std::string name() const override { return "Genetic"; }

private:
  size_t Parents;
  double MutateProb;
  double MutateScale;
};

class PatternSearchTechnique : public Technique {
public:
  PatternSearchTechnique(double InitStep, double Shrink)
      : Step(InitStep), Shrink(Shrink) {}

  Config propose(const ConfigSpace &Space, const ResultDB &DB,
                 Rng &R) override {
    if (!DB.hasBest())
      return Space.randomConfig(R);
    Config C = DB.best().C;
    BaseScore = DB.best().Score;
    size_t I = Coord % Space.size();
    Coord = (Coord + 1) % std::max<size_t>(1, Space.size());
    const ParamSpec &S = Space.spec(I);
    double Delta = Step * (S.Max - S.Min) * (Up ? 1.0 : -1.0);
    Up = !Up;
    C.Values[I] += Delta;
    Space.clamp(C);
    (void)R;
    LastProposal = C;
    return C;
  }

  void feedback(const Config &C, double Score, Rng &R) override {
    (void)R;
    if (!(C == LastProposal))
      return;
    if (Score <= BaseScore)
      Step = std::max(1e-4, Step * Shrink);
  }

  std::string name() const override { return "PatternSearch"; }

private:
  double Step;
  double Shrink;
  size_t Coord = 0;
  bool Up = true;
  Config LastProposal;
  double BaseScore = -std::numeric_limits<double>::infinity();
};

} // namespace

std::unique_ptr<Technique> wbt::bb::makeRandomTechnique() {
  return std::make_unique<RandomTechnique>();
}

std::unique_ptr<Technique> wbt::bb::makeHillClimbTechnique(double Scale) {
  return std::make_unique<HillClimbTechnique>(Scale);
}

std::unique_ptr<Technique>
wbt::bb::makeAnnealingTechnique(double InitTemp, double Cooling, double Scale) {
  return std::make_unique<AnnealingTechnique>(InitTemp, Cooling, Scale);
}

std::unique_ptr<Technique>
wbt::bb::makeGeneticTechnique(size_t Parents, double MutateProb,
                              double MutateScale) {
  return std::make_unique<GeneticTechnique>(Parents, MutateProb, MutateScale);
}

std::unique_ptr<Technique>
wbt::bb::makePatternSearchTechnique(double InitStep, double Shrink) {
  return std::make_unique<PatternSearchTechnique>(InitStep, Shrink);
}

std::vector<std::unique_ptr<Technique>> wbt::bb::makeDefaultEnsemble() {
  std::vector<std::unique_ptr<Technique>> Out;
  Out.push_back(makeRandomTechnique());
  Out.push_back(makeHillClimbTechnique());
  Out.push_back(makeAnnealingTechnique());
  Out.push_back(makeGeneticTechnique());
  Out.push_back(makePatternSearchTechnique());
  return Out;
}

AucBandit::AucBandit(size_t NumArms, size_t Window, double ExploreC)
    : Arms(NumArms), Window(Window ? Window : 1), ExploreC(ExploreC) {}

double AucBandit::aucOf(const ArmState &A) const {
  // OpenTuner-style AUC credit: recent new-bests weigh linearly more.
  size_t N = A.History.size();
  if (N == 0)
    return 0.0;
  double Num = 0.0;
  for (size_t I = 0; I != N; ++I)
    if (A.History[I])
      Num += static_cast<double>(I + 1);
  return Num / (static_cast<double>(N) * (N + 1) / 2.0);
}

size_t AucBandit::select(Rng &R) {
  // Try every unused arm first.
  for (size_t I = 0, E = Arms.size(); I != E; ++I)
    if (Arms[I].Uses == 0)
      return I;
  size_t BestArm = 0;
  double BestValue = -std::numeric_limits<double>::infinity();
  for (size_t I = 0, E = Arms.size(); I != E; ++I) {
    double Explore = std::sqrt(2.0 * std::log(static_cast<double>(TotalUses)) /
                               static_cast<double>(Arms[I].Uses));
    double Value = aucOf(Arms[I]) + ExploreC * Explore +
                   1e-6 * R.uniform(0.0, 1.0); // tie breaking
    if (Value > BestValue) {
      BestValue = Value;
      BestArm = I;
    }
  }
  return BestArm;
}

void AucBandit::reward(size_t Arm, bool NewBest) {
  ArmState &A = Arms[Arm];
  ++A.Uses;
  ++TotalUses;
  A.History.push_back(NewBest ? 1 : 0);
  if (A.History.size() > Window)
    A.History.erase(A.History.begin());
}
