//===- blackbox/SearchDriver.cpp - Budgeted black-box search --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "blackbox/SearchDriver.h"

#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <limits>
#include <mutex>

using namespace wbt;
using namespace wbt::bb;

SearchDriver::SearchDriver() : Ensemble(makeDefaultEnsemble()) {}

SearchDriver::SearchDriver(std::vector<std::unique_ptr<Technique>> Ensemble)
    : Ensemble(std::move(Ensemble)) {}

SearchDriver::~SearchDriver() = default;

DriverResult SearchDriver::run(
    const ConfigSpace &Space,
    const std::function<double(const Config &)> &Objective,
    const DriverOptions &Opts) {
  assert(!Ensemble.empty() && "search needs at least one technique");
  assert((Opts.TimeBudgetSeconds > 0 || Opts.MaxEvals > 0) &&
         "search needs a budget");

  Timer T;
  Rng R(Opts.Seed);
  ResultDB DB;
  AucBandit Bandit(Ensemble.size());
  DriverResult Out;
  double Sign = Opts.Minimize ? -1.0 : 1.0;

  unsigned Workers = std::max(1u, Opts.Workers);
  std::unique_ptr<ThreadPool> Pool;
  if (Workers > 1)
    Pool = std::make_unique<ThreadPool>(Workers);

  long Evals = 0;
  while (true) {
    if (Opts.MaxEvals > 0 && Evals >= Opts.MaxEvals)
      break;
    if (Opts.TimeBudgetSeconds > 0 && T.seconds() >= Opts.TimeBudgetSeconds)
      break;

    // One round: Workers proposals, evaluated together.
    unsigned Batch = Workers;
    if (Opts.MaxEvals > 0)
      Batch = static_cast<unsigned>(std::min<long>(
          Batch, Opts.MaxEvals - Evals));
    std::vector<size_t> Arms(Batch);
    std::vector<Config> Configs(Batch);
    std::vector<double> Scores(Batch, 0.0);
    for (unsigned I = 0; I != Batch; ++I) {
      Arms[I] = Bandit.select(R);
      Configs[I] = Ensemble[Arms[I]]->propose(Space, DB, R);
    }

    if (Pool) {
      std::mutex Mutex;
      for (unsigned I = 0; I != Batch; ++I)
        Pool->submit([&, I] {
          double S = Objective(Configs[I]);
          std::lock_guard<std::mutex> Lock(Mutex);
          Scores[I] = S;
        });
      Pool->waitIdle();
    } else {
      for (unsigned I = 0; I != Batch; ++I)
        Scores[I] = Objective(Configs[I]);
    }

    for (unsigned I = 0; I != Batch; ++I) {
      double Internal = Sign * Scores[I];
      Result Res;
      Res.C = Configs[I];
      Res.Score = Internal;
      Res.AtSeconds = T.seconds();
      bool NewBest = DB.add(std::move(Res));
      Bandit.reward(Arms[I], NewBest);
      Ensemble[Arms[I]]->feedback(Configs[I], Internal, R);
      ++Evals;
      if (NewBest)
        Out.Curve.emplace_back(T.seconds(), Scores[I]);
    }
  }

  Out.Evals = Evals;
  Out.Seconds = T.seconds();
  if (DB.hasBest()) {
    Out.Best = DB.best().C;
    Out.BestScore = Sign * DB.best().Score;
  } else {
    Out.Best = Space.defaultConfig();
    Out.BestScore = Opts.Minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  }
  return Out;
}
