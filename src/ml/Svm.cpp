//===- ml/Svm.cpp - Kernel SVM via SMO -------------------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::ml;

double wbt::ml::kernel(const SvmParams &P, const std::vector<double> &A,
                       const std::vector<double> &B) {
  assert(A.size() == B.size() && "kernel over mismatched vectors");
  double Dot = 0.0;
  switch (P.Kernel) {
  case KernelKind::Linear:
    for (size_t I = 0, E = A.size(); I != E; ++I)
      Dot += A[I] * B[I];
    return Dot;
  case KernelKind::Rbf: {
    double D2 = 0.0;
    for (size_t I = 0, E = A.size(); I != E; ++I)
      D2 += (A[I] - B[I]) * (A[I] - B[I]);
    return std::exp(-P.Gamma * D2);
  }
  case KernelKind::Poly:
    for (size_t I = 0, E = A.size(); I != E; ++I)
      Dot += A[I] * B[I];
    return std::pow(P.Gamma * Dot + P.Coef0, P.Degree);
  }
  return 0.0;
}

double BinarySvm::decision(const std::vector<double> &X) const {
  double Sum = Bias;
  for (size_t I = 0, E = SupportX.size(); I != E; ++I)
    Sum += Alpha[I] * kernel(Params, SupportX[I], X);
  return Sum;
}

BinarySvm wbt::ml::trainBinarySvm(const std::vector<std::vector<double>> &X,
                                  const std::vector<int> &Y,
                                  const SvmParams &P, Rng &R) {
  assert(X.size() == Y.size() && !X.empty() && "bad SVM training input");
  size_t N = X.size();

  // Per-sample box constraint, optionally balanced by class frequency.
  long Pos = 0;
  for (int L : Y)
    Pos += L > 0;
  long Neg = static_cast<long>(N) - Pos;
  double CPos = P.C, CNeg = P.C;
  if (P.BalanceClasses && Pos > 0 && Neg > 0) {
    CPos = P.C * static_cast<double>(N) / (2.0 * Pos);
    CNeg = P.C * static_cast<double>(N) / (2.0 * Neg);
  }
  auto BoxC = [&](size_t I) { return Y[I] > 0 ? CPos : CNeg; };

  std::vector<double> Alpha(N, 0.0);
  double B = 0.0;

  // Cache the kernel matrix for the O(N^2) training sizes we use.
  std::vector<double> K(N * N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I; J != N; ++J) {
      double V = kernel(P, X[I], X[J]);
      K[I * N + J] = V;
      K[J * N + I] = V;
    }

  auto Decision = [&](size_t I) {
    double Sum = B;
    for (size_t J = 0; J != N; ++J)
      if (Alpha[J] != 0.0)
        Sum += Alpha[J] * Y[J] * K[J * N + I];
    return Sum;
  };

  // Simplified SMO (Platt): sweep until MaxPasses consecutive passes make
  // no progress.
  int Passes = 0;
  int Guard = 0;
  const int MaxSweeps = 200;
  while (Passes < P.MaxPasses && Guard++ < MaxSweeps) {
    int Changed = 0;
    for (size_t I = 0; I != N; ++I) {
      double Ei = Decision(I) - Y[I];
      bool ViolatesKkt = (Y[I] * Ei < -P.Tol && Alpha[I] < BoxC(I)) ||
                         (Y[I] * Ei > P.Tol && Alpha[I] > 0);
      if (!ViolatesKkt)
        continue;
      size_t J = R.index(N - 1);
      if (J >= I)
        ++J;
      double Ej = Decision(J) - Y[J];
      double AiOld = Alpha[I], AjOld = Alpha[J];
      double L, H;
      if (Y[I] != Y[J]) {
        L = std::max(0.0, AjOld - AiOld);
        H = std::min(BoxC(J), BoxC(I) + AjOld - AiOld);
      } else {
        L = std::max(0.0, AiOld + AjOld - BoxC(I));
        H = std::min(BoxC(J), AiOld + AjOld);
      }
      if (L >= H)
        continue;
      double Eta = 2 * K[I * N + J] - K[I * N + I] - K[J * N + J];
      if (Eta >= 0)
        continue;
      double Aj = AjOld - Y[J] * (Ei - Ej) / Eta;
      Aj = std::clamp(Aj, L, H);
      if (std::fabs(Aj - AjOld) < 1e-6)
        continue;
      double Ai = AiOld + Y[I] * Y[J] * (AjOld - Aj);
      Alpha[I] = Ai;
      Alpha[J] = Aj;
      double B1 = B - Ei - Y[I] * (Ai - AiOld) * K[I * N + I] -
                  Y[J] * (Aj - AjOld) * K[I * N + J];
      double B2 = B - Ej - Y[I] * (Ai - AiOld) * K[I * N + J] -
                  Y[J] * (Aj - AjOld) * K[J * N + J];
      if (Ai > 0 && Ai < BoxC(I))
        B = B1;
      else if (Aj > 0 && Aj < BoxC(J))
        B = B2;
      else
        B = 0.5 * (B1 + B2);
      ++Changed;
    }
    Passes = Changed == 0 ? Passes + 1 : 0;
  }

  BinarySvm Model;
  Model.Params = P;
  Model.Bias = B;
  for (size_t I = 0; I != N; ++I)
    if (Alpha[I] > 1e-9) {
      Model.SupportX.push_back(X[I]);
      Model.Alpha.push_back(Alpha[I] * Y[I]);
    }
  return Model;
}

int MultiSvm::predict(const std::vector<double> &X) const {
  assert(!PerClass.empty() && "predict on an untrained model");
  int Best = 0;
  double BestScore = PerClass[0].decision(X);
  for (int C = 1; C != NumClasses; ++C) {
    double S = PerClass[static_cast<size_t>(C)].decision(X);
    if (S > BestScore) {
      BestScore = S;
      Best = C;
    }
  }
  return Best;
}

std::vector<int>
MultiSvm::predictAll(const std::vector<std::vector<double>> &X) const {
  std::vector<int> Out;
  Out.reserve(X.size());
  for (const auto &Row : X)
    Out.push_back(predict(Row));
  return Out;
}

MultiSvm wbt::ml::trainMultiSvm(const MlDataset &Train, const SvmParams &P,
                                Rng &R) {
  MultiSvm Model;
  Model.NumClasses = Train.NumClasses;
  for (int C = 0; C != Train.NumClasses; ++C) {
    std::vector<int> Y(Train.Y.size());
    for (size_t I = 0, E = Train.Y.size(); I != E; ++I)
      Y[I] = Train.Y[I] == C ? 1 : -1;
    Model.PerClass.push_back(trainBinarySvm(Train.X, Y, P, R));
  }
  return Model;
}

double wbt::ml::svmError(const MultiSvm &Model, const MlDataset &Data) {
  return errorRate(Model.predictAll(Data.X), Data.Y);
}
