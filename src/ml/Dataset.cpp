//===- ml/Dataset.cpp - Classification data with ground truth --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <cassert>

using namespace wbt;
using namespace wbt::ml;

MlDataset wbt::ml::makeClassificationDataset(uint64_t Seed, int Index,
                                             const MlDatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 101);
  MlDataset D;
  D.NumClasses = static_cast<int>(R.uniformInt(Opts.MinClasses,
                                               Opts.MaxClasses));
  D.NumFeatures = Opts.InformativeFeatures + Opts.NoiseFeatures;

  // One Gaussian prototype per class in informative-feature space.
  std::vector<std::vector<double>> Prototypes(
      static_cast<size_t>(D.NumClasses));
  for (auto &P : Prototypes) {
    P.resize(static_cast<size_t>(Opts.InformativeFeatures));
    for (double &V : P)
      V = R.uniform(-2.0, 2.0);
  }
  double Spread = R.uniform(Opts.SpreadLo, Opts.SpreadHi);

  for (int I = 0; I != Opts.Samples; ++I) {
    int Cls = static_cast<int>(R.uniformInt(0, D.NumClasses - 1));
    std::vector<double> Row(static_cast<size_t>(D.NumFeatures));
    for (int F = 0; F != Opts.InformativeFeatures; ++F)
      Row[static_cast<size_t>(F)] =
          Prototypes[static_cast<size_t>(Cls)][static_cast<size_t>(F)] +
          R.gaussian(0.0, Spread);
    for (int F = Opts.InformativeFeatures; F != D.NumFeatures; ++F)
      Row[static_cast<size_t>(F)] = R.gaussian(0.0, 1.5);
    if (R.flip(Opts.LabelNoise))
      Cls = static_cast<int>(R.uniformInt(0, D.NumClasses - 1));
    D.X.push_back(std::move(Row));
    D.Y.push_back(Cls);
  }
  return D;
}

MlDataset wbt::ml::subset(const MlDataset &D,
                          const std::vector<size_t> &Indices) {
  MlDataset Out;
  Out.NumClasses = D.NumClasses;
  Out.NumFeatures = D.NumFeatures;
  Out.X.reserve(Indices.size());
  Out.Y.reserve(Indices.size());
  for (size_t I : Indices) {
    assert(I < D.size() && "subset index out of range");
    Out.X.push_back(D.X[I]);
    Out.Y.push_back(D.Y[I]);
  }
  return Out;
}

void wbt::ml::kFoldIndices(size_t N, int K, int Fold,
                           std::vector<size_t> &Train,
                           std::vector<size_t> &Test) {
  assert(K >= 2 && Fold >= 0 && Fold < K && "bad fold arguments");
  Train.clear();
  Test.clear();
  for (size_t I = 0; I != N; ++I) {
    if (static_cast<int>(I % static_cast<size_t>(K)) == Fold)
      Test.push_back(I);
    else
      Train.push_back(I);
  }
}

void wbt::ml::halfSplit(size_t N, std::vector<size_t> &First,
                        std::vector<size_t> &Second) {
  First.clear();
  Second.clear();
  for (size_t I = 0; I != N; ++I)
    (I < N / 2 ? First : Second).push_back(I);
}

double wbt::ml::errorRate(const std::vector<int> &Predicted,
                          const std::vector<int> &Truth) {
  assert(Predicted.size() == Truth.size() && "prediction size mismatch");
  if (Predicted.empty())
    return 0.0;
  long Wrong = 0;
  for (size_t I = 0, E = Predicted.size(); I != E; ++I)
    Wrong += Predicted[I] != Truth[I];
  return static_cast<double>(Wrong) / static_cast<double>(Predicted.size());
}
