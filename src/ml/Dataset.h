//===- ml/Dataset.h - Classification data with ground truth -----*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic multi-class classification datasets standing in for the
/// paper's UCI inputs: Gaussian class clusters with controlled overlap,
/// irrelevant distractor features and label noise, so that SVM/C4.5
/// hyper-parameters have input-dependent optima and unregularized tuning
/// overfits (the effect paper Fig. 17 demonstrates). Plus k-fold index
/// utilities shared by the cross-validation machinery.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_ML_DATASET_H
#define WBT_ML_DATASET_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace ml {

struct MlDataset {
  /// Row-major feature matrix.
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  int NumClasses = 2;
  int NumFeatures = 0;

  size_t size() const { return X.size(); }
};

struct MlDatasetOptions {
  int Samples = 160;
  int MinClasses = 2;
  int MaxClasses = 4;
  int InformativeFeatures = 4;
  int NoiseFeatures = 3;
  /// Class-cluster spread range (controls overlap).
  double SpreadLo = 0.5;
  double SpreadHi = 1.4;
  /// Fraction of labels flipped at random.
  double LabelNoise = 0.05;
};

/// Dataset number \p Index of the family identified by \p Seed.
MlDataset makeClassificationDataset(uint64_t Seed, int Index,
                                    const MlDatasetOptions &Opts =
                                        MlDatasetOptions());

/// Rows of \p D selected by \p Indices.
MlDataset subset(const MlDataset &D, const std::vector<size_t> &Indices);

/// Deterministic k-fold split: fills \p Train and \p Test with the row
/// indices for fold \p Fold of \p K over \p N rows (round-robin).
void kFoldIndices(size_t N, int K, int Fold, std::vector<size_t> &Train,
                  std::vector<size_t> &Test);

/// First half / second half split (the paper's SVM protocol: first half
/// for training+tuning, second half for testing).
void halfSplit(size_t N, std::vector<size_t> &First,
               std::vector<size_t> &Second);

/// Fraction of mispredicted labels.
double errorRate(const std::vector<int> &Predicted,
                 const std::vector<int> &Truth);

} // namespace ml
} // namespace wbt

#endif // WBT_ML_DATASET_H
