//===- ml/C45.h - C4.5 decision trees ---------------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C4.5 decision-tree learning (Quinlan, the paper's [60]): gain-ratio
/// threshold splits over continuous features, with the two tunables the
/// paper uses — the pessimistic-pruning confidence factor CF and the
/// minimum case count per branch.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_ML_C45_H
#define WBT_ML_C45_H

#include "ml/Dataset.h"

#include <memory>

namespace wbt {
namespace ml {

struct C45Params {
  /// Pessimistic-pruning confidence factor (Quinlan's CF, default 0.25).
  /// Smaller values prune more aggressively.
  double Confidence = 0.25;
  /// Minimum number of cases each branch of a split must receive.
  int MinCases = 2;
  int MaxDepth = 25;
};

/// A trained tree.
class C45Tree {
public:
  struct Node {
    bool IsLeaf = true;
    int Label = 0;       // leaf: predicted class
    long Cases = 0;      // training cases reaching the node
    long Errors = 0;     // training misclassifications at this node
    int Feature = -1;    // split feature
    double Threshold = 0; // goes left when X[Feature] <= Threshold
    std::unique_ptr<Node> Left;
    std::unique_ptr<Node> Right;
  };

  int predict(const std::vector<double> &X) const;
  std::vector<int> predictAll(const std::vector<std::vector<double>> &X) const;

  /// Nodes in the tree (diagnostics; pruning shrinks this).
  long nodeCount() const;

  std::unique_ptr<Node> Root;
};

/// Trains a tree with gain-ratio splits and pessimistic pruning.
C45Tree trainC45(const MlDataset &Train, const C45Params &P);

/// Error of \p Tree on \p Data.
double c45Error(const C45Tree &Tree, const MlDataset &Data);

} // namespace ml
} // namespace wbt

#endif // WBT_ML_C45_H
