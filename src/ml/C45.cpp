//===- ml/C45.cpp - C4.5 decision trees ------------------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/C45.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::ml;

namespace {

double entropyOf(const std::vector<long> &Counts, long Total) {
  if (Total == 0)
    return 0.0;
  double H = 0.0;
  for (long C : Counts) {
    if (C == 0)
      continue;
    double P = static_cast<double>(C) / static_cast<double>(Total);
    H -= P * std::log2(P);
  }
  return H;
}

/// Quinlan's pessimistic error estimate: the upper confidence bound on
/// the leaf's error rate (normal approximation of the binomial tail at
/// confidence CF), times the case count.
double pessimisticErrors(long Cases, long Errors, double Confidence) {
  if (Cases == 0)
    return 0.0;
  // Map CF in (0, 1) to a z score: CF = 0.25 -> z ~ 0.674. Smaller CF
  // gives a larger z, i.e. more pruning.
  Confidence = std::clamp(Confidence, 1e-4, 0.9999);
  // Inverse normal tail via Acklam-style approximation of probit(1 - CF).
  double P = 1.0 - Confidence;
  // Rational approximation adequate for the central range used here.
  double T = std::sqrt(-2.0 * std::log(std::min(P, 1.0 - P)));
  double Z = T - (2.30753 + 0.27061 * T) / (1.0 + 0.99229 * T + 0.04481 * T * T);
  if (P < 0.5)
    Z = -Z;
  double F = static_cast<double>(Errors) / static_cast<double>(Cases);
  double N = static_cast<double>(Cases);
  // Wilson score upper bound.
  double Denom = 1.0 + Z * Z / N;
  double Center = F + Z * Z / (2 * N);
  double Spread = Z * std::sqrt(F * (1 - F) / N + Z * Z / (4 * N * N));
  double Upper = (Center + Spread) / Denom;
  return Upper * N;
}

struct Builder {
  const MlDataset &D;
  const C45Params &P;

  long majorityAndErrors(const std::vector<size_t> &Rows, int &Label) const {
    std::vector<long> Counts(static_cast<size_t>(D.NumClasses), 0);
    for (size_t R : Rows)
      ++Counts[static_cast<size_t>(D.Y[R])];
    size_t Best = 0;
    for (size_t C = 1; C != Counts.size(); ++C)
      if (Counts[C] > Counts[Best])
        Best = C;
    Label = static_cast<int>(Best);
    return static_cast<long>(Rows.size()) - Counts[Best];
  }

  std::unique_ptr<C45Tree::Node> build(std::vector<size_t> Rows,
                                       int Depth) const {
    auto Node = std::make_unique<C45Tree::Node>();
    Node->Cases = static_cast<long>(Rows.size());
    Node->Errors = majorityAndErrors(Rows, Node->Label);
    if (Node->Errors == 0 || Depth >= P.MaxDepth ||
        static_cast<int>(Rows.size()) < 2 * P.MinCases)
      return Node;

    // Best gain-ratio threshold split.
    std::vector<long> TotalCounts(static_cast<size_t>(D.NumClasses), 0);
    for (size_t R : Rows)
      ++TotalCounts[static_cast<size_t>(D.Y[R])];
    double BaseH = entropyOf(TotalCounts, Node->Cases);

    int BestFeature = -1;
    double BestThreshold = 0.0, BestRatio = 1e-9;
    std::vector<std::pair<double, int>> Sorted(Rows.size());
    for (int F = 0; F != D.NumFeatures; ++F) {
      for (size_t I = 0; I != Rows.size(); ++I)
        Sorted[I] = {D.X[Rows[I]][static_cast<size_t>(F)], D.Y[Rows[I]]};
      std::sort(Sorted.begin(), Sorted.end());
      std::vector<long> LeftCounts(static_cast<size_t>(D.NumClasses), 0);
      long LeftN = 0;
      for (size_t I = 0; I + 1 < Sorted.size(); ++I) {
        ++LeftCounts[static_cast<size_t>(Sorted[I].second)];
        ++LeftN;
        if (Sorted[I].first == Sorted[I + 1].first)
          continue;
        long RightN = Node->Cases - LeftN;
        if (LeftN < P.MinCases || RightN < P.MinCases)
          continue;
        std::vector<long> RightCounts(static_cast<size_t>(D.NumClasses), 0);
        for (size_t C = 0; C != RightCounts.size(); ++C)
          RightCounts[C] = TotalCounts[C] - LeftCounts[C];
        double PL = static_cast<double>(LeftN) / Node->Cases;
        double PR = 1.0 - PL;
        double Gain = BaseH - PL * entropyOf(LeftCounts, LeftN) -
                      PR * entropyOf(RightCounts, RightN);
        double SplitInfo = -PL * std::log2(PL) - PR * std::log2(PR);
        if (SplitInfo < 1e-9)
          continue;
        double Ratio = Gain / SplitInfo;
        if (Ratio > BestRatio) {
          BestRatio = Ratio;
          BestFeature = F;
          BestThreshold = 0.5 * (Sorted[I].first + Sorted[I + 1].first);
        }
      }
    }
    if (BestFeature < 0)
      return Node;

    std::vector<size_t> LeftRows, RightRows;
    for (size_t R : Rows)
      (D.X[R][static_cast<size_t>(BestFeature)] <= BestThreshold ? LeftRows
                                                                 : RightRows)
          .push_back(R);
    if (LeftRows.empty() || RightRows.empty())
      return Node;

    Node->IsLeaf = false;
    Node->Feature = BestFeature;
    Node->Threshold = BestThreshold;
    Node->Left = build(std::move(LeftRows), Depth + 1);
    Node->Right = build(std::move(RightRows), Depth + 1);

    // Pessimistic (confidence-factor) pruning: collapse the split when
    // the subtree's estimated error is no better than the leaf's.
    double SubtreeErr =
        pessimisticErrors(Node->Left->Cases, Node->Left->Errors,
                          P.Confidence) +
        pessimisticErrors(Node->Right->Cases, Node->Right->Errors,
                          P.Confidence);
    double LeafErr = pessimisticErrors(Node->Cases, Node->Errors,
                                       P.Confidence);
    if (LeafErr <= SubtreeErr + 0.1) {
      Node->IsLeaf = true;
      Node->Left.reset();
      Node->Right.reset();
    }
    return Node;
  }
};

long countNodes(const C45Tree::Node *N) {
  if (!N)
    return 0;
  return 1 + countNodes(N->Left.get()) + countNodes(N->Right.get());
}

} // namespace

int C45Tree::predict(const std::vector<double> &X) const {
  assert(Root && "predict on an untrained tree");
  const Node *N = Root.get();
  while (!N->IsLeaf)
    N = X[static_cast<size_t>(N->Feature)] <= N->Threshold ? N->Left.get()
                                                           : N->Right.get();
  return N->Label;
}

std::vector<int>
C45Tree::predictAll(const std::vector<std::vector<double>> &X) const {
  std::vector<int> Out;
  Out.reserve(X.size());
  for (const auto &Row : X)
    Out.push_back(predict(Row));
  return Out;
}

long C45Tree::nodeCount() const { return countNodes(Root.get()); }

C45Tree wbt::ml::trainC45(const MlDataset &Train, const C45Params &P) {
  assert(!Train.X.empty() && "training set is empty");
  Builder B{Train, P};
  std::vector<size_t> Rows(Train.size());
  for (size_t I = 0; I != Rows.size(); ++I)
    Rows[I] = I;
  C45Tree Tree;
  Tree.Root = B.build(std::move(Rows), 0);
  return Tree;
}

double wbt::ml::c45Error(const C45Tree &Tree, const MlDataset &Data) {
  return errorRate(Tree.predictAll(Data.X), Data.Y);
}
