//===- ml/Svm.h - Kernel SVM via SMO ----------------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Support-vector machine (Cortes & Vapnik, the paper's [25]) trained
/// with the simplified SMO dual solver, wrapped one-vs-rest for
/// multi-class problems (the paper's [36]). The eight tunables of the
/// paper's Table I row: kernel type, C, gamma, degree, coef0, tolerance,
/// max passes, and class-weight balancing.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_ML_SVM_H
#define WBT_ML_SVM_H

#include "ml/Dataset.h"

namespace wbt {
namespace ml {

enum class KernelKind { Linear, Rbf, Poly };

struct SvmParams {
  KernelKind Kernel = KernelKind::Rbf;
  double C = 1.0;
  double Gamma = 0.5;
  int Degree = 3;
  double Coef0 = 1.0;
  double Tol = 1e-3;
  int MaxPasses = 5;
  /// Scale the box constraint per class inversely to its frequency.
  bool BalanceClasses = false;
};

/// Kernel evaluation.
double kernel(const SvmParams &P, const std::vector<double> &A,
              const std::vector<double> &B);

/// A trained binary classifier (labels -1 / +1).
struct BinarySvm {
  SvmParams Params;
  std::vector<std::vector<double>> SupportX;
  std::vector<double> Alpha; // alpha_i * y_i, support vectors only
  double Bias = 0.0;

  /// Signed decision value; sign is the predicted label.
  double decision(const std::vector<double> &X) const;
};

/// Trains a binary SVM on labels in {-1, +1} with simplified SMO.
BinarySvm trainBinarySvm(const std::vector<std::vector<double>> &X,
                         const std::vector<int> &Y, const SvmParams &P,
                         Rng &R);

/// One-vs-rest multi-class wrapper.
struct MultiSvm {
  std::vector<BinarySvm> PerClass;
  int NumClasses = 0;

  int predict(const std::vector<double> &X) const;
  std::vector<int> predictAll(const std::vector<std::vector<double>> &X) const;
};

MultiSvm trainMultiSvm(const MlDataset &Train, const SvmParams &P, Rng &R);

/// Error of \p Model on \p Data.
double svmError(const MultiSvm &Model, const MlDataset &Data);

} // namespace ml
} // namespace wbt

#endif // WBT_ML_SVM_H
