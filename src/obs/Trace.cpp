//===- obs/Trace.cpp - Cross-process event ring ---------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <csignal>
#include <ctime>
#include <unistd.h>

namespace wbt {
namespace obs {

namespace {

size_t roundPow2(size_t N) {
  size_t P = 8;
  while (P < N)
    P <<= 1;
  return P;
}

TraceCell *cells(TraceRingLayout *L) {
  return reinterpret_cast<TraceCell *>(L + 1);
}

uint64_t nowNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

} // namespace

size_t traceRingBytes(size_t Records) {
  if (Records == 0)
    return 0;
  return sizeof(TraceRingLayout) + roundPow2(Records) * sizeof(TraceCell);
}

void traceRingInit(void *Mem, size_t Records) {
  TraceRingLayout *L = static_cast<TraceRingLayout *>(Mem);
  L->Capacity = roundPow2(Records);
  L->Head.store(0, std::memory_order_relaxed);
  L->Tail.store(0, std::memory_order_relaxed);
  L->Drops.store(0, std::memory_order_relaxed);
  L->Published.store(0, std::memory_order_relaxed);
  L->DrainBusy.store(0, std::memory_order_relaxed);
  TraceCell *C = cells(L);
  for (uint64_t I = 0; I != L->Capacity; ++I)
    C[I].Seq.store(I, std::memory_order_relaxed);
}

bool traceRingEmit(TraceRingLayout *L, const TraceEvent &Ev,
                   bool DebugDieBeforePublish) {
  const uint64_t Cap = L->Capacity;
  uint64_t Pos = L->Head.load(std::memory_order_relaxed);
  TraceCell *C = cells(L);
  for (;;) {
    TraceCell &Cell = C[Pos & (Cap - 1)];
    uint64_t Seq = Cell.Seq.load(std::memory_order_acquire);
    int64_t Diff = int64_t(Seq) - int64_t(Pos);
    if (Diff == 0) {
      // Cell free for this lap: claim it. CAS failure means another
      // producer won the race; retry at its published head.
      if (L->Head.compare_exchange_weak(Pos, Pos + 1,
                                        std::memory_order_relaxed))
        break;
    } else if (Diff < 0) {
      // The consumer has not freed this lap's cell yet — ring full.
      // Children must never block on observability: drop and count.
      L->Drops.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      Pos = L->Head.load(std::memory_order_relaxed);
    }
  }
  TraceCell &Cell = C[Pos & (Cap - 1)];
  Cell.Ev = Ev;
  if (DebugDieBeforePublish)
    raise(SIGKILL); // claimed but never published: the torn-write drill
  // Payload first, then the one release-store that publishes it — a
  // writer killed before this line leaves the cell unpublished, never
  // torn (same discipline as SharedControl::slabCommit).
  Cell.Seq.store(Pos + 1, std::memory_order_release);
  L->Published.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t traceRingDrain(TraceRingLayout *L, std::vector<TraceEvent> &Out,
                      bool SkipUnpublished) {
  uint32_t Expected = 0;
  if (!L->DrainBusy.compare_exchange_strong(Expected, 1,
                                            std::memory_order_acquire))
    return 0;
  const uint64_t Cap = L->Capacity;
  TraceCell *C = cells(L);
  size_t Drained = 0;
  uint64_t Pos = L->Tail.load(std::memory_order_relaxed);
  for (;;) {
    TraceCell &Cell = C[Pos & (Cap - 1)];
    uint64_t Seq = Cell.Seq.load(std::memory_order_acquire);
    if (Seq == Pos + 1) {
      Out.push_back(Cell.Ev);
      ++Drained;
    } else if (SkipUnpublished &&
               L->Head.load(std::memory_order_acquire) > Pos) {
      // The cell was claimed (Head moved past it) but its writer never
      // published — it died between claim and publish. With every
      // writer reaped nobody can complete it; skip it as a drop so the
      // ring never wedges.
      L->Drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      break; // caught up, or an in-flight writer we must wait for
    }
    Cell.Seq.store(Pos + Cap, std::memory_order_release);
    ++Pos;
  }
  L->Tail.store(Pos, std::memory_order_relaxed);
  L->DrainBusy.store(0, std::memory_order_release);
  return Drained;
}

TraceEvent makeEvent(EventKind Kind, uint64_t A, uint64_t B, uint16_t Arg) {
  TraceEvent Ev;
  Ev.TsNs = nowNs();
  Ev.Pid = int32_t(getpid());
  Ev.Kind = uint16_t(Kind);
  Ev.Arg = Arg;
  Ev.A = A;
  Ev.B = B;
  return Ev;
}

const char *eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::RegionBegin:
  case EventKind::RegionEnd:
    return "region";
  case EventKind::SampleBegin:
  case EventKind::SampleEnd:
    return "sample";
  case EventKind::WorkerBegin:
  case EventKind::WorkerEnd:
    return "worker";
  case EventKind::LeaseBegin:
  case EventKind::LeaseEnd:
    return "lease";
  case EventKind::Fork:
    return "fork";
  case EventKind::StoreCommit:
    return "commit";
  case EventKind::Fold:
    return "fold";
  case EventKind::Kill:
    return "kill";
  case EventKind::Respawn:
    return "respawn";
  case EventKind::SpareActivate:
    return "spare-activate";
  case EventKind::LeaseReclaim:
    return "lease-reclaim";
  case EventKind::SchedAdmit:
    return "sched-admit";
  case EventKind::SchedDefer:
    return "sched-defer";
  case EventKind::ZygoteSpawn:
    return "zygote-spawn";
  case EventKind::ZygoteRestore:
    return "zygote-restore";
  case EventKind::BatchBegin:
  case EventKind::BatchEnd:
    return "batch";
  case EventKind::BatchRoll:
    return "batch-roll";
  case EventKind::SlabRecycle:
    return "slab-recycle";
  case EventKind::NetAccept:
    return "net-accept";
  case EventKind::NetClaim:
    return "net-claim";
  case EventKind::NetCommitFrame:
    return "net-frame";
  case EventKind::NetDisconnect:
    return "net-disconnect";
  case EventKind::Progress:
    return "progress";
  }
  return "unknown";
}

const char *eventPointName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::RegionBegin:
    return "region.begin";
  case EventKind::RegionEnd:
    return "region.end";
  case EventKind::SampleBegin:
    return "sample.begin";
  case EventKind::SampleEnd:
    return "sample.end";
  case EventKind::WorkerBegin:
    return "worker.begin";
  case EventKind::WorkerEnd:
    return "worker.end";
  case EventKind::LeaseBegin:
    return "lease.begin";
  case EventKind::LeaseEnd:
    return "lease.end";
  case EventKind::Fork:
    return "fork";
  case EventKind::StoreCommit:
    return "commit";
  case EventKind::Fold:
    return "fold";
  case EventKind::Kill:
    return "kill";
  case EventKind::Respawn:
    return "respawn";
  case EventKind::SpareActivate:
    return "spare-activate";
  case EventKind::LeaseReclaim:
    return "lease-reclaim";
  case EventKind::SchedAdmit:
    return "sched-admit";
  case EventKind::SchedDefer:
    return "sched-defer";
  case EventKind::ZygoteSpawn:
    return "zygote.spawn";
  case EventKind::ZygoteRestore:
    return "zygote.restore";
  case EventKind::BatchBegin:
    return "batch.begin";
  case EventKind::BatchEnd:
    return "batch.end";
  case EventKind::BatchRoll:
    return "batch.roll";
  case EventKind::SlabRecycle:
    return "slab.recycle";
  case EventKind::NetAccept:
    return "net.accept";
  case EventKind::NetClaim:
    return "net.claim";
  case EventKind::NetCommitFrame:
    return "net.frame";
  case EventKind::NetDisconnect:
    return "net.disconnect";
  case EventKind::Progress:
    return "progress";
  }
  return "unknown";
}

} // namespace obs
} // namespace wbt
