//===- obs/Metrics.cpp - Runtime counters and histograms ------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

namespace wbt {
namespace obs {

const char *fallbackReasonName(FallbackReason R) {
  switch (R) {
  case FallbackReason::Oversized:
    return "oversized";
  case FallbackReason::LongName:
    return "long_name";
  case FallbackReason::Exhausted:
    return "exhausted";
  }
  return "unknown";
}

int latencyBucket(uint64_t Ns) {
  uint64_t Us = Ns / 1000;
  if (Us < 2)
    return 0;
  int B = 63 - __builtin_clzll(Us);
  return B < NumHistBuckets ? B : NumHistBuckets - 1;
}

uint64_t latencyBucketLowUs(int B) { return B == 0 ? 0 : uint64_t(1) << B; }

uint64_t HistogramSnapshot::total() const {
  uint64_t N = 0;
  for (uint64_t C : Counts)
    N += C;
  return N;
}

double HistogramSnapshot::meanUs() const {
  uint64_t N = total();
  return N ? double(SumNs) / double(N) / 1000.0 : 0.0;
}

double HistogramSnapshot::quantileUs(double Q) const {
  uint64_t N = total();
  if (!N)
    return 0.0;
  uint64_t Want = uint64_t(Q * double(N));
  if (Want >= N)
    Want = N - 1;
  uint64_t Seen = 0;
  for (int B = 0; B != NumHistBuckets; ++B) {
    Seen += Counts[B];
    if (Seen > Want)
      return double(uint64_t(1) << (B + 1)); // bucket upper bound
  }
  return double(uint64_t(1) << NumHistBuckets);
}

void writeMetricsJson(std::FILE *F, const RuntimeMetrics &M) {
  std::fprintf(F,
               "{\"regions_resolved\": %llu, \"regions_per_sec\": %.2f, "
               "\"shm_commits\": %llu, \"file_fallbacks\": %llu",
               (unsigned long long)M.RegionsResolved, M.regionsPerSec(),
               (unsigned long long)M.ShmCommits,
               (unsigned long long)M.FileFallbacks);
  for (int R = 0; R != NumFallbackReasons; ++R)
    std::fprintf(F, ", \"fallback_%s\": %llu",
                 fallbackReasonName(FallbackReason(R)),
                 (unsigned long long)M.Fallbacks[R]);
  std::fprintf(F,
               ", \"crashed\": %llu, \"timed_out\": %llu, "
               "\"fork_failures\": %llu, \"lease_reclaims\": %llu, "
               "\"retries\": %llu, \"slab_records_hw\": %llu, "
               "\"slab_bytes_hw\": %llu, \"slab_recycles\": %llu, "
               "\"slab_epoch_hw\": %llu, \"thp_granted\": %llu, "
               "\"thp_declined\": %llu, \"hugetlb_granted\": %llu, "
               "\"hugetlb_declined\": %llu, \"zygote_respawns\": %llu, "
               "\"zygote_restores\": %llu, \"remove_failures\": %llu, "
               "\"net_agents\": %llu, \"net_reconnects\": %llu, "
               "\"net_remote_leases\": %llu, \"net_leases_returned\": %llu, "
               "\"net_frames\": %llu, \"trace_events\": %llu, "
               "\"trace_drops\": %llu, \"fork_p50_us\": %.1f, "
               "\"fork_mean_us\": %.1f, \"commit_p50_us\": %.1f, "
               "\"commit_mean_us\": %.1f}",
               (unsigned long long)M.CrashedSamples,
               (unsigned long long)M.TimedOutSamples,
               (unsigned long long)M.ForkFailures,
               (unsigned long long)M.LeaseReclaims,
               (unsigned long long)M.Retries,
               (unsigned long long)M.SlabRecordsHighWater,
               (unsigned long long)M.SlabBytesHighWater,
               (unsigned long long)M.SlabRecycles,
               (unsigned long long)M.SlabEpochHighWater,
               (unsigned long long)M.ThpGranted,
               (unsigned long long)M.ThpDeclined,
               (unsigned long long)M.HugetlbGranted,
               (unsigned long long)M.HugetlbDeclined,
               (unsigned long long)M.ZygoteRespawns,
               (unsigned long long)M.ZygoteRestores,
               (unsigned long long)M.RemoveFailures,
               (unsigned long long)M.NetAgents,
               (unsigned long long)M.NetReconnects,
               (unsigned long long)M.NetRemoteLeases,
               (unsigned long long)M.NetLeasesReturned,
               (unsigned long long)M.NetFrames,
               (unsigned long long)M.TraceEvents,
               (unsigned long long)M.TraceDrops, M.ForkLatency.quantileUs(0.5),
               M.ForkLatency.meanUs(), M.CommitLatency.quantileUs(0.5),
               M.CommitLatency.meanUs());
}

} // namespace obs
} // namespace wbt
