//===- obs/Metrics.cpp - Runtime counters and histograms ------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cinttypes>
#include <type_traits>
#include <cstring>
#include <string>

namespace wbt {
namespace obs {

const char *fallbackReasonName(FallbackReason R) {
  switch (R) {
  case FallbackReason::Oversized:
    return "oversized";
  case FallbackReason::LongName:
    return "long_name";
  case FallbackReason::Exhausted:
    return "exhausted";
  }
  return "unknown";
}

int latencyBucket(uint64_t Ns) {
  uint64_t Us = Ns / 1000;
  if (Us < 2)
    return 0;
  int B = 63 - __builtin_clzll(Us);
  return B < NumHistBuckets ? B : NumHistBuckets - 1;
}

uint64_t latencyBucketLowUs(int B) { return B == 0 ? 0 : uint64_t(1) << B; }

uint64_t HistogramSnapshot::total() const {
  uint64_t N = 0;
  for (uint64_t C : Counts)
    N += C;
  return N;
}

double HistogramSnapshot::meanUs() const {
  uint64_t N = total();
  return N ? double(SumNs) / double(N) / 1000.0 : 0.0;
}

double HistogramSnapshot::quantileUs(double Q) const {
  uint64_t N = total();
  if (!N)
    return 0.0;
  uint64_t Want = uint64_t(Q * double(N));
  if (Want >= N)
    Want = N - 1;
  uint64_t Seen = 0;
  for (int B = 0; B != NumHistBuckets; ++B) {
    Seen += Counts[B];
    if (Seen > Want)
      return double(uint64_t(1) << (B + 1)); // bucket upper bound
  }
  return double(uint64_t(1) << NumHistBuckets);
}

void MetricsSnapshotPage::publish(const RuntimeMetrics &M) {
  static_assert(std::is_trivially_copyable<RuntimeMetrics>::value,
                "the metrics page is copied with memcpy");
  uint64_t S = Seq.load(std::memory_order_relaxed);
  // Odd: a copy is in flight. The release fence keeps the payload
  // stores from sinking above the odd store (StoreStore), so a reader
  // can never pair a torn payload with a stable even sequence.
  Seq.store(S + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::memcpy(&Snap, &M, sizeof(Snap));
  // Publication: even again, release-paired with the reader's fence.
  Seq.store(S + 2, std::memory_order_release);
}

bool MetricsSnapshotPage::read(RuntimeMetrics &Out) const {
  // Bounded retries: writers publish at sweep cadence, so a torn read
  // is rare and one retry almost always lands. The bound only guards
  // against a writer that dies mid-copy (odd forever).
  for (int Try = 0; Try != 1024; ++Try) {
    uint64_t S1 = Seq.load(std::memory_order_acquire);
    if (S1 == 0)
      return false; // nothing published yet
    if (S1 & 1)
      continue; // writer mid-copy
    std::memcpy(&Out, &Snap, sizeof(Out));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Seq.load(std::memory_order_relaxed) == S1)
      return true;
  }
  return false;
}

void writeMetricsJson(std::FILE *F, const RuntimeMetrics &M) {
  std::fprintf(F,
               "{\"regions_resolved\": %llu, \"regions_per_sec\": %.2f, "
               "\"shm_commits\": %llu, \"file_fallbacks\": %llu",
               (unsigned long long)M.RegionsResolved, M.regionsPerSec(),
               (unsigned long long)M.ShmCommits,
               (unsigned long long)M.FileFallbacks);
  for (int R = 0; R != NumFallbackReasons; ++R)
    std::fprintf(F, ", \"fallback_%s\": %llu",
                 fallbackReasonName(FallbackReason(R)),
                 (unsigned long long)M.Fallbacks[R]);
  std::fprintf(F,
               ", \"crashed\": %llu, \"timed_out\": %llu, "
               "\"fork_failures\": %llu, \"lease_reclaims\": %llu, "
               "\"retries\": %llu, \"slab_records_hw\": %llu, "
               "\"slab_bytes_hw\": %llu, \"slab_recycles\": %llu, "
               "\"slab_epoch_hw\": %llu, \"thp_granted\": %llu, "
               "\"thp_declined\": %llu, \"hugetlb_granted\": %llu, "
               "\"hugetlb_declined\": %llu, \"zygote_respawns\": %llu, "
               "\"zygote_restores\": %llu, \"remove_failures\": %llu, "
               "\"net_agents\": %llu, \"net_reconnects\": %llu, "
               "\"net_remote_leases\": %llu, \"net_leases_returned\": %llu, "
               "\"net_frames\": %llu, \"net_bytes_in\": %llu, "
               "\"net_bytes_out\": %llu, \"net_recv_hello\": %llu, "
               "\"net_recv_claim_req\": %llu, "
               "\"net_recv_commit_batch\": %llu, \"net_recv_trace\": %llu, "
               "\"trace_events\": %llu, "
               "\"trace_drops\": %llu, \"scores_noted\": %llu, "
               "\"score_last\": %.6g, \"score_min\": %.6g, "
               "\"score_max\": %.6g, \"fork_p50_us\": %.1f, "
               "\"fork_mean_us\": %.1f, \"commit_p50_us\": %.1f, "
               "\"commit_mean_us\": %.1f, \"region_p50_us\": %.1f, "
               "\"region_mean_us\": %.1f",
               (unsigned long long)M.CrashedSamples,
               (unsigned long long)M.TimedOutSamples,
               (unsigned long long)M.ForkFailures,
               (unsigned long long)M.LeaseReclaims,
               (unsigned long long)M.Retries,
               (unsigned long long)M.SlabRecordsHighWater,
               (unsigned long long)M.SlabBytesHighWater,
               (unsigned long long)M.SlabRecycles,
               (unsigned long long)M.SlabEpochHighWater,
               (unsigned long long)M.ThpGranted,
               (unsigned long long)M.ThpDeclined,
               (unsigned long long)M.HugetlbGranted,
               (unsigned long long)M.HugetlbDeclined,
               (unsigned long long)M.ZygoteRespawns,
               (unsigned long long)M.ZygoteRestores,
               (unsigned long long)M.RemoveFailures,
               (unsigned long long)M.NetAgents,
               (unsigned long long)M.NetReconnects,
               (unsigned long long)M.NetRemoteLeases,
               (unsigned long long)M.NetLeasesReturned,
               (unsigned long long)M.NetFrames,
               (unsigned long long)M.NetBytesIn,
               (unsigned long long)M.NetBytesOut,
               (unsigned long long)M.NetRecvHello,
               (unsigned long long)M.NetRecvClaimReq,
               (unsigned long long)M.NetRecvCommitBatch,
               (unsigned long long)M.NetRecvTrace,
               (unsigned long long)M.TraceEvents,
               (unsigned long long)M.TraceDrops,
               (unsigned long long)M.ScoresNoted, M.ScoreLast, M.ScoreMin,
               M.ScoreMax, M.ForkLatency.quantileUs(0.5),
               M.ForkLatency.meanUs(), M.CommitLatency.quantileUs(0.5),
               M.CommitLatency.meanUs(), M.RegionLatency.quantileUs(0.5),
               M.RegionLatency.meanUs());
  // Raw bucket counts, so consumers can rebuild the full distribution
  // rather than settle for the p50/mean digests above.
  struct {
    const char *Key;
    const HistogramSnapshot *H;
  } Hists[] = {{"fork_latency_buckets", &M.ForkLatency},
               {"commit_latency_buckets", &M.CommitLatency},
               {"region_latency_buckets", &M.RegionLatency}};
  for (const auto &E : Hists) {
    std::fprintf(F, ", \"%s\": [", E.Key);
    for (int B = 0; B != NumHistBuckets; ++B)
      std::fprintf(F, "%s%llu", B ? ", " : "",
                   (unsigned long long)E.H->Counts[B]);
    std::fprintf(F, "]");
  }
  std::fprintf(F, "}");
}

namespace {

/// Pre-rendered forms of one label set: the `{job="a"}` suffix a plain
/// sample line takes, and the `job="a",` lead merged before `le` on
/// bucket lines. Both empty for the label-free (single-tenant) path.
struct LabelSet {
  std::string Plain;
  std::string Lead;
  explicit LabelSet(const std::string &L)
      : Plain(L.empty() ? std::string() : "{" + L + "}"),
        Lead(L.empty() ? std::string() : L + ",") {}
};

void expLine(std::string &Out, const LabelSet &L, const char *Name,
             const char *Type, double Value) {
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf), "# TYPE wbt_%s %s\nwbt_%s%s %.6g\n", Name,
                Type, Name, L.Plain.c_str(), Value);
  Out += Buf;
}

void expCounter(std::string &Out, const LabelSet &L, const char *Name,
                uint64_t Value) {
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf),
                "# TYPE wbt_%s counter\nwbt_%s%s %" PRIu64 "\n", Name, Name,
                L.Plain.c_str(), Value);
  Out += Buf;
}

void expHistogram(std::string &Out, const LabelSet &L, const char *Name,
                  const HistogramSnapshot &H) {
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf), "# TYPE wbt_%s_us histogram\n", Name);
  Out += Buf;
  uint64_t Cum = 0;
  for (int B = 0; B != NumHistBuckets; ++B) {
    Cum += H.Counts[B];
    std::snprintf(Buf, sizeof(Buf),
                  "wbt_%s_us_bucket{%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
                  Name, L.Lead.c_str(), uint64_t(1) << (B + 1), Cum);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "wbt_%s_us_bucket{%sle=\"+Inf\"} %" PRIu64 "\n"
                "wbt_%s_us_sum%s %.1f\n"
                "wbt_%s_us_count%s %" PRIu64 "\n",
                Name, L.Lead.c_str(), Cum, Name, L.Plain.c_str(),
                double(H.SumNs) / 1000.0, Name, L.Plain.c_str(), H.total());
  Out += Buf;
  // Pre-digested gauges so flat-text consumers (wbt-top) need no
  // bucket math.
  std::snprintf(Buf, sizeof(Buf),
                "# TYPE wbt_%s_p50_us gauge\nwbt_%s_p50_us%s %.1f\n"
                "# TYPE wbt_%s_mean_us gauge\nwbt_%s_mean_us%s %.1f\n",
                Name, Name, L.Plain.c_str(), H.quantileUs(0.5), Name, Name,
                L.Plain.c_str(), H.meanUs());
  Out += Buf;
}

} // namespace

void writeExpositionText(std::string &Out, const RuntimeMetrics &M,
                         const std::string &Labels) {
  LabelSet L(Labels);
  expCounter(Out, L, "regions_resolved", M.RegionsResolved);
  expLine(Out, L, "elapsed_sec", "gauge", M.ElapsedSec);
  expLine(Out, L, "regions_per_sec", "gauge", M.regionsPerSec());
  expCounter(Out, L, "shm_commits", M.ShmCommits);
  expCounter(Out, L, "file_fallbacks", M.FileFallbacks);
  for (int R = 0; R != NumFallbackReasons; ++R) {
    std::string Key =
        std::string("fallback_") + fallbackReasonName(FallbackReason(R));
    expCounter(Out, L, Key.c_str(), M.Fallbacks[R]);
  }
  expCounter(Out, L, "crashed", M.CrashedSamples);
  expCounter(Out, L, "timed_out", M.TimedOutSamples);
  expCounter(Out, L, "fork_failures", M.ForkFailures);
  expCounter(Out, L, "lease_reclaims", M.LeaseReclaims);
  expCounter(Out, L, "retries", M.Retries);
  expCounter(Out, L, "slab_records_hw", M.SlabRecordsHighWater);
  expCounter(Out, L, "slab_bytes_hw", M.SlabBytesHighWater);
  expCounter(Out, L, "slab_recycles", M.SlabRecycles);
  expCounter(Out, L, "slab_epoch_hw", M.SlabEpochHighWater);
  expCounter(Out, L, "thp_granted", M.ThpGranted);
  expCounter(Out, L, "thp_declined", M.ThpDeclined);
  expCounter(Out, L, "hugetlb_granted", M.HugetlbGranted);
  expCounter(Out, L, "hugetlb_declined", M.HugetlbDeclined);
  expCounter(Out, L, "zygote_respawns", M.ZygoteRespawns);
  expCounter(Out, L, "zygote_restores", M.ZygoteRestores);
  expCounter(Out, L, "remove_failures", M.RemoveFailures);
  expCounter(Out, L, "net_agents", M.NetAgents);
  expCounter(Out, L, "net_reconnects", M.NetReconnects);
  expCounter(Out, L, "net_remote_leases", M.NetRemoteLeases);
  expCounter(Out, L, "net_leases_returned", M.NetLeasesReturned);
  expCounter(Out, L, "net_frames", M.NetFrames);
  expCounter(Out, L, "net_bytes_in", M.NetBytesIn);
  expCounter(Out, L, "net_bytes_out", M.NetBytesOut);
  expCounter(Out, L, "net_recv_hello", M.NetRecvHello);
  expCounter(Out, L, "net_recv_claim_req", M.NetRecvClaimReq);
  expCounter(Out, L, "net_recv_commit_batch", M.NetRecvCommitBatch);
  expCounter(Out, L, "net_recv_trace", M.NetRecvTrace);
  expCounter(Out, L, "trace_events", M.TraceEvents);
  expCounter(Out, L, "trace_drops", M.TraceDrops);
  expCounter(Out, L, "scores_noted", M.ScoresNoted);
  expLine(Out, L, "score_last", "gauge", M.ScoreLast);
  expLine(Out, L, "score_min", "gauge", M.ScoreMin);
  expLine(Out, L, "score_max", "gauge", M.ScoreMax);
  expHistogram(Out, L, "fork_latency", M.ForkLatency);
  expHistogram(Out, L, "commit_latency", M.CommitLatency);
  expHistogram(Out, L, "region_latency", M.RegionLatency);
}

} // namespace obs
} // namespace wbt
