//===- obs/TraceExporter.h - Chrome trace-event JSON ------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Renders drained trace events as Chrome trace-event JSON, loadable in
// Perfetto / chrome://tracing: one track per pid (pid == tid), span
// kinds as "B"/"E" duration events, forks as "X" complete events, the
// rest as instants. Spans left open by a killed process get synthesized
// closing events so begin/end always balance per pid. Tuning processes
// created by @split persist their drained events as binary fragment
// files in the run directory; the root reads them back and writes one
// merged JSON file at finish().
//
//===----------------------------------------------------------------------===//

#ifndef WBT_OBS_TRACEEXPORTER_H
#define WBT_OBS_TRACEEXPORTER_H

#include "obs/Trace.h"

#include <string>
#include <vector>

namespace wbt {
namespace obs {

/// printf-appends to `Out`, growing past the internal stack buffer when
/// the formatted record is longer (long names must never truncate into
/// torn JSON). Exposed for tests.
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Renders `Events` (any order; sorted internally) as a complete Chrome
/// trace JSON document.
std::string chromeTraceJson(std::vector<TraceEvent> Events);

/// chromeTraceJson + write to `Path`. Returns false on I/O error.
bool writeChromeTrace(const std::string &Path, std::vector<TraceEvent> Events);

/// Persists raw events for a @split tuning process (atomic via rename).
bool writeTraceFragment(const std::string &Path,
                        const std::vector<TraceEvent> &Events);

/// Appends a fragment's events to `Out`. Returns false when the file is
/// missing or truncated (partial records are discarded, not surfaced).
bool readTraceFragment(const std::string &Path, std::vector<TraceEvent> &Out);

} // namespace obs
} // namespace wbt

#endif // WBT_OBS_TRACEEXPORTER_H
