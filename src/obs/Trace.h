//===- obs/Trace.h - Cross-process event ring -------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fixed-size trace events and the lock-free MAP_SHARED ring they travel
// through. Sampling children and pool workers emit events from arbitrary
// points of the runtime; the tuning process drains the ring during its
// WNOHANG supervisor sweeps. The ring is a bounded MPMC queue with
// per-cell sequence numbers: producers claim a cell with one CAS and
// publish it with one release-store (mirroring the commit slab's
// payload-first protocol), and a full ring drops the event and bumps a
// counter instead of ever blocking a child. A writer that dies between
// claim and publish leaves exactly one unpublished cell, which the
// consumer skips (and counts as a drop) once every child of the region
// has been reaped.
//
// The ring functions are free functions over a raw layout pointer so
// they can be unit-tested on a private mapping and embedded into
// SharedControl's single shared mapping without owning memory.
//
//===----------------------------------------------------------------------===//

#ifndef WBT_OBS_TRACE_H
#define WBT_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wbt {
namespace obs {

/// What happened. Span kinds come in Begin/End pairs (exported as "B"/"E"
/// duration events); the rest are instants or complete events.
enum class EventKind : uint16_t {
  None = 0,
  RegionBegin,   ///< tuning: A = region ordinal, B = sample count
  RegionEnd,     ///< tuning: A = region ordinal
  SampleBegin,   ///< fork-mode child: A = region ordinal, B = sample index
  SampleEnd,     ///< fork-mode child: A = region ordinal, B = sample index
  WorkerBegin,   ///< pool worker: A = region ordinal, B = worker index
  WorkerEnd,     ///< pool worker: A = region ordinal, B = worker index
  LeaseBegin,    ///< pool worker: A = lease index, B = attempt
  LeaseEnd,      ///< pool worker: A = lease index, Arg = final LeaseState
  Fork,          ///< tuning: A = slot/worker index, B = fork latency ns,
                 ///< Arg = 1 for a @split tuning fork
  StoreCommit,   ///< child: A = backend (0 slab, 1 file), B = latency ns,
                 ///< Arg = FallbackReason + 1, or 0 when no fallback
  Fold,          ///< tuning: A = child table index folded from
  Kill,          ///< tuning: A = slot index, B = pid (timeout SIGKILL)
  Respawn,       ///< tuning: A = worker slot respawned after a crash
  SpareActivate, ///< tuning: A = slot index of the activated spare
  LeaseReclaim,  ///< tuning: A = lease index returned by a dead worker
  SchedAdmit,    ///< A = 1 for a tuning acquire, B = slot/sample index
  SchedDefer,    ///< pool full, acquire timed out; B = slot/sample index
  ZygoteSpawn,   ///< tuning: A = zygote slot, B = fork latency ns
  ZygoteRestore, ///< zygote: A = region ordinal, B = zygote slot
  BatchBegin,    ///< tuning: A = first region ordinal, B = region count
  BatchEnd,      ///< tuning: A = first region ordinal, B = region count
  BatchRoll,     ///< worker: A = region ordinal rolled into, B = lease index
  SlabRecycle,   ///< tuning: A = new slab epoch, B = records retired
  NetAccept,     ///< tuning: A = agent id, B = net generation
  NetClaim,      ///< tuning: A = agent id, B = leases granted
  NetCommitFrame,///< agent: A = lease count in frame, B = net generation
  NetDisconnect, ///< tuning: A = agent id, B = leases returned
  Progress,      ///< tuning: A = region ordinal, B = bit pattern of the
                 ///< aggregate score (double), Arg = committed samples
};

/// One fixed-size trace record. 32 bytes, POD, safe to write from a
/// process that may be SIGKILLed at any instruction.
struct TraceEvent {
  uint64_t TsNs; ///< CLOCK_MONOTONIC, nanoseconds
  int32_t Pid;
  uint16_t Kind; ///< EventKind
  uint16_t Arg;  ///< small kind-specific argument (state, reason)
  uint64_t A;
  uint64_t B;
};

/// Header + cell array of the shared ring. Lives inside SharedControl's
/// one MAP_SHARED mapping; never unmapped separately.
struct TraceRingLayout {
  uint64_t Capacity; ///< power of two, immutable after init
  std::atomic<uint64_t> Head;      ///< next cell to claim (producers)
  std::atomic<uint64_t> Tail;      ///< next cell to read (consumer)
  std::atomic<uint64_t> Drops;     ///< events lost to a full ring or a
                                   ///< dead writer's unpublished cell
  std::atomic<uint64_t> Published; ///< events successfully emitted
  std::atomic<uint32_t> DrainBusy; ///< consumer mutual exclusion (TAS)
};

struct TraceCell {
  std::atomic<uint64_t> Seq;
  TraceEvent Ev;
};

/// Bytes needed for a ring of `Records` capacity (rounded up to a power
/// of two, minimum 8). Returns 0 when Records == 0 (tracing disabled).
size_t traceRingBytes(size_t Records);

/// Initializes a zeroed region of traceRingBytes(Records) bytes.
void traceRingInit(void *Mem, size_t Records);

/// Claims a cell, writes `Ev`, publishes it. Returns false (and counts a
/// drop) when the ring is full — never blocks. Safe from any number of
/// concurrent processes sharing the mapping. `DebugDieBeforePublish`
/// SIGKILLs the calling process after the claim but before the publish
/// (torn-write drills).
bool traceRingEmit(TraceRingLayout *L, const TraceEvent &Ev,
                   bool DebugDieBeforePublish = false);

/// Drains every published event into `Out` (appending, in emit order).
/// Single consumer: concurrent callers return 0 immediately. With
/// `SkipUnpublished`, a claimed-but-unpublished cell (dead writer) is
/// skipped and counted as a drop instead of wedging the ring — only safe
/// once the writers that could still publish have been reaped. Returns
/// the number of events appended.
size_t traceRingDrain(TraceRingLayout *L, std::vector<TraceEvent> &Out,
                      bool SkipUnpublished);

/// Fills Pid/TsNs from the calling process and the monotonic clock.
TraceEvent makeEvent(EventKind Kind, uint64_t A = 0, uint64_t B = 0,
                     uint16_t Arg = 0);

/// Human-readable name of an event kind ("fork", "lease", ...). Begin
/// and End of one span share a name (exporter track labels).
const char *eventKindName(EventKind Kind);

/// Unique per-kind trace-point name ("sample.begin", "commit", ...) —
/// the names fault-injection kill clauses (`tp.<name>@...:kill`) match
/// on, so Begin and End points are distinguishable.
const char *eventPointName(EventKind Kind);

} // namespace obs
} // namespace wbt

#endif // WBT_OBS_TRACE_H
