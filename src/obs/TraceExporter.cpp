//===- obs/TraceExporter.cpp - Chrome trace-event JSON --------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExporter.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

namespace wbt {
namespace obs {

namespace {

bool isBegin(EventKind K) {
  return K == EventKind::RegionBegin || K == EventKind::SampleBegin ||
         K == EventKind::WorkerBegin || K == EventKind::LeaseBegin ||
         K == EventKind::BatchBegin;
}

bool isEnd(EventKind K) {
  return K == EventKind::RegionEnd || K == EventKind::SampleEnd ||
         K == EventKind::WorkerEnd || K == EventKind::LeaseEnd ||
         K == EventKind::BatchEnd;
}

EventKind beginOf(EventKind End) {
  switch (End) {
  case EventKind::RegionEnd:
    return EventKind::RegionBegin;
  case EventKind::SampleEnd:
    return EventKind::SampleBegin;
  case EventKind::WorkerEnd:
    return EventKind::WorkerBegin;
  case EventKind::LeaseEnd:
    return EventKind::LeaseBegin;
  case EventKind::BatchEnd:
    return EventKind::BatchBegin;
  default:
    return End;
  }
}

/// Common prefix of one trace record: {"name":...,"ph":..,"pid","tid","ts"}.
void openRecord(std::string &Out, bool &First, const char *Name,
                const char *Ph, int32_t Pid, double TsUs) {
  if (!First)
    Out += ",\n";
  First = false;
  appendf(Out,
          "    {\"name\": \"%s\", \"cat\": \"wbt\", \"ph\": \"%s\", "
          "\"pid\": %" PRId32 ", \"tid\": %" PRId32 ", \"ts\": %.3f",
          Name, Ph, Pid, Pid, TsUs);
}

} // namespace

void appendf(std::string &Out, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  va_list Ap2;
  va_copy(Ap2, Ap);
  char Buf[256];
  int Need = vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (Need >= 0 && size_t(Need) < sizeof(Buf)) {
    Out.append(Buf, size_t(Need));
  } else if (Need >= 0) {
    // The stack buffer truncated the record; re-format into the exact
    // size so long names never emit torn JSON.
    size_t Base = Out.size();
    Out.resize(Base + size_t(Need) + 1);
    vsnprintf(&Out[Base], size_t(Need) + 1, Fmt, Ap2);
    Out.resize(Base + size_t(Need));
  }
  va_end(Ap2);
}

std::string chromeTraceJson(std::vector<TraceEvent> Events) {
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &X, const TraceEvent &Y) {
                     return X.TsNs < Y.TsNs;
                   });
  uint64_t T0 = Events.empty() ? 0 : Events.front().TsNs;
  uint64_t TMax = Events.empty() ? 0 : Events.back().TsNs;
  auto tsUs = [&](uint64_t TsNs) {
    return double(TsNs - T0) / 1000.0;
  };

  // One track per pid; name it after the first span the process opens
  // (a pid that is a sampling child in one region can only ever be a
  // child — tuning pids open regions first). Remote agents first: their
  // NetCommitFrame records mark the pid as an agent regardless of which
  // span kind happens to sort first, so a merged multi-host trace keeps
  // remote tracks distinguishable from local workers.
  std::map<int32_t, const char *> TrackName;
  for (const TraceEvent &Ev : Events)
    if (EventKind(Ev.Kind) == EventKind::NetCommitFrame &&
        !TrackName.count(Ev.Pid))
      TrackName[Ev.Pid] = "agent";
  for (const TraceEvent &Ev : Events) {
    EventKind K = EventKind(Ev.Kind);
    const char *Name = nullptr;
    if (K == EventKind::RegionBegin || K == EventKind::Fork)
      Name = "tuning";
    else if (K == EventKind::SampleBegin)
      Name = "sampler";
    else if (K == EventKind::WorkerBegin || K == EventKind::LeaseBegin)
      Name = "worker";
    if (Name && !TrackName.count(Ev.Pid))
      TrackName[Ev.Pid] = Name;
  }

  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                    "  \"traceEvents\": [\n";
  bool First = true;
  for (const auto &[Pid, Name] : TrackName) {
    openRecord(Out, First, "process_name", "M", Pid, 0.0);
    appendf(Out, ", \"args\": {\"name\": \"%s\"}}", Name);
  }

  // Per-pid stack of open spans so we can synthesize closers for
  // processes that were SIGKILLed with spans still open.
  std::map<int32_t, std::vector<EventKind>> Open;
  for (const TraceEvent &Ev : Events) {
    EventKind K = EventKind(Ev.Kind);
    double Ts = tsUs(Ev.TsNs);
    if (isBegin(K)) {
      Open[Ev.Pid].push_back(K);
      openRecord(Out, First, eventKindName(K), "B", Ev.Pid, Ts);
      appendf(Out, ", \"args\": {\"a\": %" PRIu64 ", \"b\": %" PRIu64 "}}",
              Ev.A, Ev.B);
    } else if (isEnd(K)) {
      std::vector<EventKind> &Stack = Open[Ev.Pid];
      // An end without a matching begin (its begin was dropped by a full
      // ring) would unbalance the track: skip it.
      if (Stack.empty() || Stack.back() != beginOf(K))
        continue;
      Stack.pop_back();
      openRecord(Out, First, eventKindName(K), "E", Ev.Pid, Ts);
      appendf(Out, ", \"args\": {\"a\": %" PRIu64 ", \"arg\": %u}}", Ev.A,
              unsigned(Ev.Arg));
    } else if (K == EventKind::Fork || K == EventKind::StoreCommit) {
      // Complete events with a measured duration; the event is emitted
      // at completion, so the span starts dur earlier.
      double DurUs = double(Ev.B) / 1000.0;
      const char *Name = K == EventKind::Fork
                             ? (Ev.Arg ? "fork-split" : "fork")
                             : (Ev.A ? "commit-file" : "commit-shm");
      openRecord(Out, First, Name, "X", Ev.Pid,
                 Ts > DurUs ? Ts - DurUs : 0.0);
      appendf(Out, ", \"dur\": %.3f", DurUs);
      if (K == EventKind::StoreCommit && Ev.Arg)
        appendf(Out, ", \"args\": {\"fallback\": \"%s\"}}",
                fallbackReasonName(FallbackReason(Ev.Arg - 1)));
      else
        appendf(Out, ", \"args\": {\"a\": %" PRIu64 "}}", Ev.A);
    } else if (K == EventKind::Progress) {
      // Per-region aggregate outcome as a Perfetto counter track: B is
      // the bit pattern of the score. Non-finite scores would render as
      // bare `inf`/`nan` (invalid JSON) — emit those as instants only.
      double Score;
      std::memcpy(&Score, &Ev.B, sizeof(Score));
      if (std::isfinite(Score)) {
        openRecord(Out, First, "score", "C", Ev.Pid, Ts);
        appendf(Out,
                ", \"args\": {\"score\": %.6g, \"region\": %" PRIu64
                ", \"samples\": %u}}",
                Score, Ev.A, unsigned(Ev.Arg));
      } else {
        openRecord(Out, First, "progress", "i", Ev.Pid, Ts);
        appendf(Out, ", \"s\": \"t\", \"args\": {\"a\": %" PRIu64 "}}", Ev.A);
      }
    } else {
      openRecord(Out, First, eventKindName(K), "i", Ev.Pid, Ts);
      appendf(Out, ", \"s\": \"t\", \"args\": {\"a\": %" PRIu64 "}}", Ev.A);
    }
  }

  // Close dangling spans (killed workers/samplers) at the trace horizon,
  // innermost first, so every "B" has its "E" on every track.
  for (auto &[Pid, Stack] : Open) {
    while (!Stack.empty()) {
      EventKind K = Stack.back();
      Stack.pop_back();
      openRecord(Out, First, eventKindName(K), "E", Pid, tsUs(TMax));
      Out += ", \"args\": {\"synthesized\": 1}}";
    }
  }

  Out += "\n  ]\n}\n";
  return Out;
}

bool writeChromeTrace(const std::string &Path,
                      std::vector<TraceEvent> Events) {
  std::string Json = chromeTraceJson(std::move(Events));
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  Ok = (std::fclose(F) == 0) && Ok;
  return Ok;
}

static const char FragMagic[8] = {'W', 'B', 'T', 'F', '1', 0, 0, 0};

bool writeTraceFragment(const std::string &Path,
                        const std::vector<TraceEvent> &Events) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F)
    return false;
  uint64_t N = Events.size();
  bool Ok = std::fwrite(FragMagic, 1, sizeof(FragMagic), F) ==
                sizeof(FragMagic) &&
            std::fwrite(&N, sizeof(N), 1, F) == 1 &&
            (N == 0 ||
             std::fwrite(Events.data(), sizeof(TraceEvent), N, F) == N);
  Ok = (std::fclose(F) == 0) && Ok;
  if (Ok)
    Ok = std::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok)
    std::remove(Tmp.c_str());
  return Ok;
}

bool readTraceFragment(const std::string &Path, std::vector<TraceEvent> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Magic[8];
  uint64_t N = 0;
  bool Ok = std::fread(Magic, 1, sizeof(Magic), F) == sizeof(Magic) &&
            std::memcmp(Magic, FragMagic, sizeof(Magic)) == 0 &&
            std::fread(&N, sizeof(N), 1, F) == 1;
  if (Ok && N) {
    // A corrupt header could claim any count; cap it by what the file
    // can actually hold before sizing the output buffer.
    long DataPos = std::ftell(F);
    if (DataPos >= 0 && std::fseek(F, 0, SEEK_END) == 0) {
      long EndPos = std::ftell(F);
      uint64_t Cap = EndPos > DataPos
                         ? static_cast<uint64_t>(EndPos - DataPos) /
                               sizeof(TraceEvent)
                         : 0;
      if (N > Cap) {
        N = Cap;
        Ok = false;
      }
      std::fseek(F, DataPos, SEEK_SET);
    }
  }
  if (N) {
    size_t Base = Out.size();
    Out.resize(Base + N);
    size_t Read = std::fread(&Out[Base], sizeof(TraceEvent), N, F);
    if (Read != N) { // truncated fragment: keep the complete records
      Out.resize(Base + Read);
      Ok = false;
    }
  }
  std::fclose(F);
  return Ok;
}

} // namespace obs
} // namespace wbt
