//===- obs/Metrics.h - Runtime counters and histograms ----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Always-on runtime metrics: shared-memory counter/histogram cells that
// SharedControl embeds in its mapping, and the plain-value snapshot
// (`RuntimeMetrics`) that Runtime::metrics() returns and the bench
// `--json` emitters embed next to the build-type provenance. Unlike the
// event ring, metrics are collected whether or not tracing is enabled —
// a fetch_add per commit is cheap enough to leave on.
//
//===----------------------------------------------------------------------===//

#ifndef WBT_OBS_METRICS_H
#define WBT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace wbt {
namespace obs {

/// Why a shm commit was routed to the file store instead of the slab.
enum class FallbackReason : uint8_t {
  Oversized = 0, ///< payload above ShmRecordThreshold or > 4 GiB
  LongName = 1,  ///< variable name longer than the slab's inline field
  Exhausted = 2, ///< slab records or payload arena ran out
};
constexpr int NumFallbackReasons = 3;

const char *fallbackReasonName(FallbackReason R);

/// Fixed log2 latency buckets: bucket B counts samples in
/// [2^B, 2^{B+1}) microseconds (bucket 0 also absorbs sub-microsecond
/// samples, the last bucket is open-ended).
constexpr int NumHistBuckets = 16;

/// Which bucket a latency falls in.
int latencyBucket(uint64_t Ns);

/// Inclusive lower bound of bucket B, in microseconds.
uint64_t latencyBucketLowUs(int B);

/// Shared-memory histogram cell. POD-layout, zero-initialized by the
/// mapping's memset; concurrent writers only fetch_add.
struct LatencyHistogram {
  std::atomic<uint64_t> Counts[NumHistBuckets];
  std::atomic<uint64_t> SumNs;

  void record(uint64_t Ns) {
    Counts[latencyBucket(Ns)].fetch_add(1, std::memory_order_relaxed);
    SumNs.fetch_add(Ns, std::memory_order_relaxed);
  }
};

/// Plain-value copy of a LatencyHistogram.
struct HistogramSnapshot {
  uint64_t Counts[NumHistBuckets] = {};
  uint64_t SumNs = 0;

  uint64_t total() const;
  double meanUs() const;
  /// Upper-bound estimate of the Q-quantile (Q in [0,1]), microseconds.
  double quantileUs(double Q) const;
};

/// One coherent snapshot of the run's counters, queryable from
/// Runtime::metrics() at any point while the runtime is initialized.
struct RuntimeMetrics {
  uint64_t RegionsResolved = 0;
  double ElapsedSec = 0; ///< since Runtime::init
  uint64_t ShmCommits = 0;
  uint64_t FileFallbacks = 0; ///< sum over Fallbacks[]
  uint64_t Fallbacks[NumFallbackReasons] = {};
  uint64_t CrashedSamples = 0;
  uint64_t TimedOutSamples = 0;
  uint64_t ForkFailures = 0;
  uint64_t LeaseReclaims = 0; ///< dead-worker lease re-runs
  uint64_t Retries = 0;       ///< spare activations + pool respawns
  uint64_t SlabRecordsHighWater = 0; ///< cumulative across recycling epochs
  uint64_t SlabBytesHighWater = 0;   ///< cumulative across recycling epochs
  uint64_t SlabRecycles = 0;         ///< epoch resets of the commit slab
  uint64_t SlabEpochHighWater = 0;   ///< largest single-epoch record count
  uint64_t ThpGranted = 0;  ///< madvise(MADV_HUGEPAGE) accepted at init
  uint64_t ThpDeclined = 0; ///< huge pages asked for but refused
  uint64_t HugetlbGranted = 0;  ///< mmap(MAP_HUGETLB) reservation held
  uint64_t HugetlbDeclined = 0; ///< hugetlbfs refused; fell back to THP
  uint64_t ZygoteRespawns = 0; ///< nursery refills after a zygote died
  uint64_t ZygoteRestores = 0; ///< parked zygotes woken into a region
  uint64_t RemoveFailures = 0; ///< run-dir entries removeTree failed on
  uint64_t NetAgents = 0;         ///< remote sampling agents spawned
  uint64_t NetReconnects = 0;     ///< agent connections re-accepted
  uint64_t NetRemoteLeases = 0;   ///< leases granted over the wire
  uint64_t NetLeasesReturned = 0; ///< remote leases returned on disconnect
  uint64_t NetFrames = 0;         ///< protocol frames the server received
  uint64_t NetBytesIn = 0;        ///< bytes the lease server received
  uint64_t NetBytesOut = 0;       ///< bytes the lease server sent
  uint64_t NetRecvHello = 0;      ///< Hello frames received
  uint64_t NetRecvClaimReq = 0;   ///< ClaimReq frames received
  uint64_t NetRecvCommitBatch = 0; ///< CommitBatch frames received
  uint64_t NetRecvTrace = 0;       ///< TraceFrame frames received
  uint64_t TraceEvents = 0;
  uint64_t TraceDrops = 0;
  uint64_t ScoresNoted = 0; ///< Runtime::noteScore() calls, run-wide
  double ScoreLast = 0;     ///< most recently noted aggregate score
  double ScoreMin = 0;      ///< smallest score noted (0 until any)
  double ScoreMax = 0;      ///< largest score noted (0 until any)
  HistogramSnapshot ForkLatency;
  HistogramSnapshot CommitLatency;
  HistogramSnapshot RegionLatency; ///< region open -> resolve wall clock

  double regionsPerSec() const {
    return ElapsedSec > 0 ? double(RegionsResolved) / ElapsedSec : 0.0;
  }
};

/// One seqlock-published RuntimeMetrics snapshot page: a sequence word
/// guarding a plain-data payload, laid out for a MAP_SHARED mapping so
/// any process holding the page reads tear-free snapshots without locks.
/// Single writer per page by construction (the publishing process); the
/// writer bumps the sequence to odd, copies the payload, then publishes
/// with an even release-store, and a reader retries until it sees the
/// same even sequence on both sides of its copy. SharedControl embeds
/// one for the run-wide snapshot, and wbtuned carves one per job slot
/// out of its own mapping so every job-runner publishes into its own
/// page (the per-job metrics behind the `job` label on the scrape
/// endpoint). Zero-initialized memory is a valid empty page.
struct MetricsSnapshotPage {
  std::atomic<uint64_t> Seq;
  RuntimeMetrics Snap;

  /// Writer side (the page's single writer only).
  void publish(const RuntimeMetrics &M);
  /// Reader side. False when nothing has been published yet or a stable
  /// snapshot could not be obtained in a bounded number of retries (a
  /// writer that died mid-copy leaves the sequence odd forever).
  bool read(RuntimeMetrics &Out) const;
  /// Publication count (even sequence / 2); 0 before the first publish.
  uint64_t published() const {
    return Seq.load(std::memory_order_relaxed) / 2;
  }
};

/// Writes the snapshot as one JSON object (no trailing newline) — the
/// shared shape both bench --json emitters embed under "metrics".
void writeMetricsJson(std::FILE *F, const RuntimeMetrics &M);

/// Appends the snapshot in Prometheus text exposition format (TYPE lines,
/// cumulative `_bucket{le=...}` histograms) — what the scrape endpoint
/// serves and wbt-top parses. Every writeMetricsJson key appears as a
/// `wbt_`-prefixed metric. A non-empty \p Labels (e.g. `job="canny"`,
/// already escaped) is attached to every sample line — `wbt_x{job="a"}`,
/// merged before `le` on bucket lines — which is how wbtuned serves one
/// exposition per tenant job from a single endpoint.
void writeExpositionText(std::string &Out, const RuntimeMetrics &M,
                         const std::string &Labels = std::string());

} // namespace obs
} // namespace wbt

#endif // WBT_OBS_METRICS_H
