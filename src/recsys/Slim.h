//===- recsys/Slim.h - SLIM top-N recommender -------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SLIM (Ning & Karypis, the paper's [55]): a sparse item-item linear
/// model A ~= A * W learned by coordinate descent with elastic-net
/// regularization, W >= 0, diag(W) = 0. The paper's three tunables: the
/// l1 and l2 penalties and the candidate neighborhood size. Evaluation is
/// leave-one-out hit rate at N (HR@N) on synthetic implicit feedback with
/// planted latent taste groups.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_RECSYS_SLIM_H
#define WBT_RECSYS_SLIM_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace rec {

/// Implicit feedback: per user, the set of consumed item ids.
struct RatingData {
  int NumUsers = 0;
  int NumItems = 0;
  std::vector<std::vector<int>> UserItems;
  /// One held-out item per user (leave-one-out evaluation).
  std::vector<int> HeldOut;
};

struct RatingDataOptions {
  int NumUsers = 120;
  int NumItems = 60;
  int LatentGroups = 5;
  int ItemsPerUserLo = 8;
  int ItemsPerUserHi = 16;
  /// Probability a consumption ignores the user's taste group.
  double NoiseRate = 0.15;
};

/// Dataset number \p Index of the family identified by \p Seed.
RatingData makeRatingData(uint64_t Seed, int Index,
                          const RatingDataOptions &Opts = RatingDataOptions());

struct SlimParams {
  double L1 = 0.1;
  double L2 = 0.5;
  /// Candidate neighbors per item column (0 = all items).
  int NeighborhoodSize = 20;
  int Iterations = 30;
};

/// The learned item-item weight matrix (row-major, NumItems^2).
struct SlimModel {
  int NumItems = 0;
  std::vector<double> W;

  double weight(int From, int To) const {
    return W[static_cast<size_t>(From) * NumItems + To];
  }
  /// Nonzero entries (sparsity diagnostic).
  long nonZeros() const;
};

/// Trains SLIM by cyclic coordinate descent.
SlimModel trainSlim(const RatingData &Data, const SlimParams &P);

/// Top-N recommendations for a user (items not already consumed).
std::vector<int> recommend(const SlimModel &M,
                           const std::vector<int> &Consumed, int N);

/// Leave-one-out HR@N over all users: the fraction whose held-out item
/// appears in their top-N list.
double hitRateAtN(const SlimModel &M, const RatingData &Data, int N);

} // namespace rec
} // namespace wbt

#endif // WBT_RECSYS_SLIM_H
