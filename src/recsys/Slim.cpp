//===- recsys/Slim.cpp - SLIM top-N recommender -----------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "recsys/Slim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::rec;

RatingData wbt::rec::makeRatingData(uint64_t Seed, int Index,
                                    const RatingDataOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 7777);
  RatingData D;
  D.NumUsers = Opts.NumUsers;
  D.NumItems = Opts.NumItems;

  // Assign items to latent taste groups.
  std::vector<int> ItemGroup(static_cast<size_t>(Opts.NumItems));
  for (int I = 0; I != Opts.NumItems; ++I)
    ItemGroup[static_cast<size_t>(I)] =
        static_cast<int>(R.uniformInt(0, Opts.LatentGroups - 1));

  for (int U = 0; U != Opts.NumUsers; ++U) {
    int Group = static_cast<int>(R.uniformInt(0, Opts.LatentGroups - 1));
    int Count = static_cast<int>(
        R.uniformInt(Opts.ItemsPerUserLo, Opts.ItemsPerUserHi));
    std::vector<uint8_t> Taken(static_cast<size_t>(Opts.NumItems), 0);
    std::vector<int> Items;
    int Guard = 0;
    while (static_cast<int>(Items.size()) < Count && Guard++ < 1000) {
      int Item = static_cast<int>(R.uniformInt(0, Opts.NumItems - 1));
      if (Taken[static_cast<size_t>(Item)])
        continue;
      bool InGroup = ItemGroup[static_cast<size_t>(Item)] == Group;
      if (!InGroup && !R.flip(Opts.NoiseRate))
        continue;
      Taken[static_cast<size_t>(Item)] = 1;
      Items.push_back(Item);
    }
    // Hold out the last in-group item for evaluation.
    int Held = Items.back();
    Items.pop_back();
    D.UserItems.push_back(std::move(Items));
    D.HeldOut.push_back(Held);
  }
  return D;
}

long SlimModel::nonZeros() const {
  long N = 0;
  for (double V : W)
    N += V != 0.0;
  return N;
}

SlimModel wbt::rec::trainSlim(const RatingData &Data, const SlimParams &P) {
  int NI = Data.NumItems;
  SlimModel M;
  M.NumItems = NI;
  M.W.assign(static_cast<size_t>(NI) * NI, 0.0);

  // Column-major binary user-item matrix and item co-occurrence counts.
  std::vector<std::vector<int>> ItemUsers(static_cast<size_t>(NI));
  for (int U = 0; U != Data.NumUsers; ++U)
    for (int I : Data.UserItems[static_cast<size_t>(U)])
      ItemUsers[static_cast<size_t>(I)].push_back(U);

  // Gram matrix G = A^T A over binary vectors.
  std::vector<double> G(static_cast<size_t>(NI) * NI, 0.0);
  {
    std::vector<uint8_t> Mark(static_cast<size_t>(Data.NumUsers), 0);
    for (int I = 0; I != NI; ++I) {
      for (int U : ItemUsers[static_cast<size_t>(I)])
        Mark[static_cast<size_t>(U)] = 1;
      for (int J = 0; J != NI; ++J) {
        long C = 0;
        for (int U : ItemUsers[static_cast<size_t>(J)])
          C += Mark[static_cast<size_t>(U)];
        G[static_cast<size_t>(I) * NI + J] = static_cast<double>(C);
      }
      for (int U : ItemUsers[static_cast<size_t>(I)])
        Mark[static_cast<size_t>(U)] = 0;
    }
  }

  // Candidate neighborhood per column: the most co-consumed items.
  auto CandidatesOf = [&](int Col) {
    std::vector<int> Cand;
    if (P.NeighborhoodSize <= 0 || P.NeighborhoodSize >= NI - 1) {
      for (int I = 0; I != NI; ++I)
        if (I != Col)
          Cand.push_back(I);
      return Cand;
    }
    std::vector<std::pair<double, int>> Ranked;
    for (int I = 0; I != NI; ++I)
      if (I != Col)
        Ranked.emplace_back(G[static_cast<size_t>(I) * NI + Col], I);
    std::partial_sort(Ranked.begin(),
                      Ranked.begin() + std::min<size_t>(Ranked.size(),
                                                        P.NeighborhoodSize),
                      Ranked.end(), std::greater<>());
    for (int K = 0; K != P.NeighborhoodSize &&
                    K < static_cast<int>(Ranked.size());
         ++K)
      Cand.push_back(Ranked[static_cast<size_t>(K)].second);
    return Cand;
  };

  // Coordinate descent per column j: minimize
  //   1/2 ||a_j - A w_j||^2 + l2/2 ||w_j||^2 + l1 ||w_j||_1,
  // w >= 0, w_jj = 0. The update for coordinate i is the soft threshold
  //   w_i = max(0, (G_ij - sum_{k != i} G_ik w_k - l1)) / (G_ii + l2).
  for (int Col = 0; Col != NI; ++Col) {
    std::vector<int> Cand = CandidatesOf(Col);
    std::vector<double> W(Cand.size(), 0.0);
    for (int Iter = 0; Iter != P.Iterations; ++Iter) {
      double MaxDelta = 0.0;
      for (size_t CI = 0; CI != Cand.size(); ++CI) {
        int I = Cand[CI];
        double Gii = G[static_cast<size_t>(I) * NI + I];
        if (Gii <= 0)
          continue;
        double Residual = G[static_cast<size_t>(I) * NI + Col];
        for (size_t CK = 0; CK != Cand.size(); ++CK) {
          if (CK == CI || W[CK] == 0.0)
            continue;
          Residual -= G[static_cast<size_t>(I) * NI + Cand[CK]] * W[CK];
        }
        double New = std::max(0.0, (Residual - P.L1) / (Gii + P.L2));
        MaxDelta = std::max(MaxDelta, std::fabs(New - W[CI]));
        W[CI] = New;
      }
      if (MaxDelta < 1e-6)
        break;
    }
    for (size_t CI = 0; CI != Cand.size(); ++CI)
      M.W[static_cast<size_t>(Cand[CI]) * NI + Col] = W[CI];
  }
  return M;
}

std::vector<int> wbt::rec::recommend(const SlimModel &M,
                                     const std::vector<int> &Consumed,
                                     int N) {
  std::vector<uint8_t> Seen(static_cast<size_t>(M.NumItems), 0);
  for (int I : Consumed)
    Seen[static_cast<size_t>(I)] = 1;
  std::vector<std::pair<double, int>> Scores;
  for (int Item = 0; Item != M.NumItems; ++Item) {
    if (Seen[static_cast<size_t>(Item)])
      continue;
    double S = 0.0;
    for (int I : Consumed)
      S += M.weight(I, Item);
    Scores.emplace_back(S, Item);
  }
  size_t K = std::min<size_t>(static_cast<size_t>(N), Scores.size());
  std::partial_sort(Scores.begin(), Scores.begin() + static_cast<long>(K),
                    Scores.end(), std::greater<>());
  std::vector<int> Out;
  for (size_t I = 0; I != K; ++I)
    Out.push_back(Scores[I].second);
  return Out;
}

double wbt::rec::hitRateAtN(const SlimModel &M, const RatingData &Data,
                            int N) {
  long Hits = 0;
  for (int U = 0; U != Data.NumUsers; ++U) {
    std::vector<int> Top =
        recommend(M, Data.UserItems[static_cast<size_t>(U)], N);
    Hits += std::find(Top.begin(), Top.end(),
                      Data.HeldOut[static_cast<size_t>(U)]) != Top.end();
  }
  return Data.NumUsers ? static_cast<double>(Hits) / Data.NumUsers : 0.0;
}
