//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer used to report tuning times and to implement
/// time budgets in the black-box baseline.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SUPPORT_TIMER_H
#define WBT_SUPPORT_TIMER_H

#include <chrono>

namespace wbt {

/// Starts on construction; seconds() reports elapsed wall-clock time.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace wbt

#endif // WBT_SUPPORT_TIMER_H
