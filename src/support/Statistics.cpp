//===- support/Statistics.cpp - Small numeric helpers --------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

double wbt::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double wbt::variance(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0.0;
  double M = mean(Xs);
  double Sum = 0.0;
  for (double X : Xs)
    Sum += (X - M) * (X - M);
  return Sum / static_cast<double>(Xs.size());
}

double wbt::stddev(const std::vector<double> &Xs) {
  return std::sqrt(variance(Xs));
}

double wbt::median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0.0;
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return 0.5 * (Xs[N / 2 - 1] + Xs[N / 2]);
}

double wbt::rmse(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "rmse over mismatched sequences");
  if (A.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Sum += (A[I] - B[I]) * (A[I] - B[I]);
  return std::sqrt(Sum / static_cast<double>(A.size()));
}

size_t wbt::argMin(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  return static_cast<size_t>(
      std::min_element(Xs.begin(), Xs.end()) - Xs.begin());
}

size_t wbt::argMax(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  return static_cast<size_t>(
      std::max_element(Xs.begin(), Xs.end()) - Xs.begin());
}

double wbt::pearson(const std::vector<double> &A,
                    const std::vector<double> &B) {
  assert(A.size() == B.size() && "pearson over mismatched sequences");
  if (A.size() < 2)
    return 0.0;
  double MA = mean(A), MB = mean(B);
  double Num = 0.0, DA = 0.0, DB = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    Num += (A[I] - MA) * (B[I] - MB);
    DA += (A[I] - MA) * (A[I] - MA);
    DB += (B[I] - MB) * (B[I] - MB);
  }
  if (DA == 0.0 || DB == 0.0)
    return 0.0;
  return Num / std::sqrt(DA * DB);
}

double wbt::clamp(double X, double Lo, double Hi) {
  return X < Lo ? Lo : (X > Hi ? Hi : X);
}
