//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace wbt;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Queue.empty() && Active == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // ShuttingDown with an empty queue: drain and exit.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      if (Queue.empty() && Active == 0)
        AllDone.notify_all();
    }
  }
}
