//===- support/ByteBuffer.cpp - Trivial binary serialization -------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ByteBuffer.h"

#include "inject/Inject.h"

#include <cerrno>
#include <cstdio>

bool wbt::writeFileBytes(const std::string &Path, const uint8_t *Data,
                         size_t Size) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  // Fault injection (write site): an injected failure may still write a
  // prefix of the payload first — a mid-write ENOSPC. Either way the
  // temp file is discarded, so a torn payload can never be renamed into
  // a visible store entry.
  size_t Allowed = Size;
  int InjectErr = inject::onWrite(Size, Allowed);
  size_t Attempt = InjectErr ? Allowed : Size;
  size_t Written = Attempt ? std::fwrite(Data, 1, Attempt, F) : 0;
  bool CloseOk = std::fclose(F) == 0; // exactly once, even on short writes
  bool Ok = !InjectErr && Written == Size && CloseOk;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (InjectErr)
      errno = InjectErr;
    return false;
  }
  // rename(2) is atomic within a filesystem, so a concurrent reader either
  // sees the complete new file or nothing.
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

bool wbt::writeFileBytes(const std::string &Path,
                         const std::vector<uint8_t> &Bytes) {
  return writeFileBytes(Path, Bytes.data(), Bytes.size());
}

bool wbt::readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  if (int E = inject::onCall(inject::Site::Read)) {
    errno = E;
    return false;
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  size_t Read = Size ? std::fread(Out.data(), 1, Out.size(), F) : 0;
  std::fclose(F);
  return Read == Out.size();
}
