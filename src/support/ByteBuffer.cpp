//===- support/ByteBuffer.cpp - Trivial binary serialization -------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ByteBuffer.h"

#include <cstdio>

bool wbt::writeFileBytes(const std::string &Path, const uint8_t *Data,
                         size_t Size) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = Size ? std::fwrite(Data, 1, Size, F) : 0;
  bool Ok = Written == Size && std::fclose(F) == 0;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  // rename(2) is atomic within a filesystem, so a concurrent reader either
  // sees the complete new file or nothing.
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

bool wbt::writeFileBytes(const std::string &Path,
                         const std::vector<uint8_t> &Bytes) {
  return writeFileBytes(Path, Bytes.data(), Bytes.size());
}

bool wbt::readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  size_t Read = Size ? std::fread(Out.data(), 1, Out.size(), F) : 0;
  std::fclose(F);
  return Read == Out.size();
}
