//===- support/Rng.h - Seeded random number generation ----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, splittable random number generation used throughout the
/// tuner and the synthetic workload generators. All randomized components
/// take an explicit Rng (or a seed) so that every experiment is replayable.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SUPPORT_RNG_H
#define WBT_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace wbt {

/// A seeded pseudo-random generator with convenience draws.
///
/// Wraps std::mt19937_64. `split()` derives an independent child stream,
/// which lets a parent hand distinct deterministic streams to concurrently
/// executing sampling runs without sharing mutable state.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : Engine(Seed) {}

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) {
    assert(Lo <= Hi && "empty uniform range");
    std::uniform_real_distribution<double> D(Lo, Hi);
    return D(Engine);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty integer range");
    std::uniform_int_distribution<int64_t> D(Lo, Hi);
    return D(Engine);
  }

  /// Log-uniform double in [Lo, Hi); both bounds must be positive.
  double logUniform(double Lo, double Hi) {
    assert(Lo > 0 && Hi >= Lo && "log-uniform needs positive bounds");
    return std::exp(uniform(std::log(Lo), std::log(Hi)));
  }

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double Mean = 0.0, double Stddev = 1.0) {
    std::normal_distribution<double> D(Mean, Stddev);
    return D(Engine);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool flip(double P = 0.5) { return uniform(0.0, 1.0) < P; }

  /// Uniformly picks an index in [0, N).
  size_t index(size_t N) {
    assert(N > 0 && "cannot pick from an empty range");
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(N) - 1));
  }

  /// Uniformly picks an element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    return Items[index(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[index(I)]);
  }

  /// Derives an independent child generator. The child stream is a pure
  /// function of the parent state at the time of the call, so a sequence
  /// of split() calls yields distinct deterministic streams.
  Rng split() {
    uint64_t A = Engine();
    uint64_t B = Engine();
    return Rng(mix(A, B));
  }

  /// Raw 64-bit draw.
  uint64_t next() { return Engine(); }

  std::mt19937_64 &engine() { return Engine; }

private:
  static uint64_t mix(uint64_t A, uint64_t B) {
    uint64_t X = A ^ (B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2));
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    return X;
  }

  std::mt19937_64 Engine;
};

} // namespace wbt

#endif // WBT_SUPPORT_RNG_H
