//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics over double sequences, used by aggregation
/// strategies, scoring functions and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SUPPORT_STATISTICS_H
#define WBT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace wbt {

/// Arithmetic mean; 0 for an empty sequence.
double mean(const std::vector<double> &Xs);

/// Population variance; 0 for sequences shorter than 2.
double variance(const std::vector<double> &Xs);

/// Population standard deviation.
double stddev(const std::vector<double> &Xs);

/// Median (average of the two middle elements for even sizes); 0 if empty.
double median(std::vector<double> Xs);

/// Root-mean-square error between two equally sized sequences.
double rmse(const std::vector<double> &A, const std::vector<double> &B);

/// Index of the smallest element; 0 if empty.
size_t argMin(const std::vector<double> &Xs);

/// Index of the largest element; 0 if empty.
size_t argMax(const std::vector<double> &Xs);

/// Pearson correlation; 0 when either side has no variance.
double pearson(const std::vector<double> &A, const std::vector<double> &B);

/// Clamps \p X into [Lo, Hi].
double clamp(double X, double Lo, double Hi);

} // namespace wbt

#endif // WBT_SUPPORT_STATISTICS_H
