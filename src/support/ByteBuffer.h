//===- support/ByteBuffer.h - Trivial binary serialization ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small binary writer/reader pair used to move sampled results between
/// processes (through the file-backed aggregation store and the shared ring
/// buffer) and to persist exposed variables. Values are encoded in native
/// byte order; both ends of a tuning run live on the same machine.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SUPPORT_BYTEBUFFER_H
#define WBT_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace wbt {

/// Append-only binary encoder.
class ByteWriter {
public:
  template <typename T> void write(const T &Value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "write() only handles trivially copyable types");
    size_t Off = Bytes.size();
    Bytes.resize(Off + sizeof(T));
    std::memcpy(Bytes.data() + Off, &Value, sizeof(T));
  }

  void writeString(const std::string &S) {
    write<uint64_t>(S.size());
    size_t Off = Bytes.size();
    Bytes.resize(Off + S.size());
    std::memcpy(Bytes.data() + Off, S.data(), S.size());
  }

  template <typename T> void writeVector(const std::vector<T> &V) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "writeVector() only handles trivially copyable elements");
    write<uint64_t>(V.size());
    size_t Off = Bytes.size();
    Bytes.resize(Off + V.size() * sizeof(T));
    if (!V.empty())
      std::memcpy(Bytes.data() + Off, V.data(), V.size() * sizeof(T));
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Sequential binary decoder over a byte span. Reads past the end are
/// reported through ok() and yield zero values instead of UB.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  template <typename T> T read() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "read() only handles trivially copyable types");
    T Value{};
    if (Pos + sizeof(T) > Size) {
      Ok = false;
      return Value;
    }
    std::memcpy(&Value, Data + Pos, sizeof(T));
    Pos += sizeof(T);
    return Value;
  }

  std::string readString() {
    uint64_t N = read<uint64_t>();
    if (!Ok || Pos + N > Size) {
      Ok = false;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }

  template <typename T> std::vector<T> readVector() {
    uint64_t N = read<uint64_t>();
    std::vector<T> V;
    if (!Ok || Pos + N * sizeof(T) > Size) {
      Ok = false;
      return V;
    }
    V.resize(N);
    if (N)
      std::memcpy(V.data(), Data + Pos, N * sizeof(T));
    Pos += N * sizeof(T);
    return V;
  }

  /// True while every read so far stayed in bounds.
  bool ok() const { return Ok; }
  size_t remaining() const { return Size - Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
};

/// Writes \p Size bytes at \p Data to \p Path atomically (write to temp,
/// rename). \returns true on success.
bool writeFileBytes(const std::string &Path, const uint8_t *Data, size_t Size);

/// Vector convenience over the span overload.
bool writeFileBytes(const std::string &Path, const std::vector<uint8_t> &Bytes);

/// Reads the whole file at \p Path. \returns false if it cannot be read.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out);

} // namespace wbt

#endif // WBT_SUPPORT_BYTEBUFFER_H
