//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool used by the in-process staged tuning engine.
/// Tasks are plain std::function<void()>; waitIdle() provides the barrier
/// the engine needs at aggregation points.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SUPPORT_THREADPOOL_H
#define WBT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wbt {

/// Fixed-size thread pool with FIFO scheduling.
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads (defaults to hardware concurrency).
  explicit ThreadPool(unsigned NumWorkers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void waitIdle();

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  unsigned Active = 0;
  bool ShuttingDown = false;
};

} // namespace wbt

#endif // WBT_SUPPORT_THREADPOOL_H
