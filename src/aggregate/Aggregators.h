//===- aggregate/Aggregators.h - cbAggr implementations ---------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation strategies — the cbAggr callback of the paper's
/// @aggregate(x, cbAggr) primitive. The paper ships MIN, MAX, AVG,
/// majority vote (MV) and duplicate elimination (DEDUP) (Sec. IV-C), each
/// in two forms: one-shot over the full committed sample vector, and
/// *incremental* accumulators that fold results in as sampling runs finish
/// (Sec. IV-B), bounding memory by the accumulator size instead of the
/// sample count.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_AGGREGATE_AGGREGATORS_H
#define WBT_AGGREGATE_AGGREGATORS_H

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

namespace wbt {

/// The built-in aggregation strategy names of paper Table I column 6, plus
/// TOURNAMENT (pairwise-duel selection for noisy remote measurements).
enum class AggregationKind {
  Min,
  Max,
  Avg,
  MajorityVote,
  Dedup,
  Tournament,
  Custom
};

/// Printable name ("MIN", "MV", ...).
const char *aggregationKindName(AggregationKind K);

//===----------------------------------------------------------------------===//
// One-shot aggregation over the full sample vector.
//===----------------------------------------------------------------------===//

/// Minimum of \p Xs; +inf if empty.
double aggregateMin(const std::vector<double> &Xs);
/// Maximum of \p Xs; -inf if empty.
double aggregateMax(const std::vector<double> &Xs);
/// Mean of \p Xs; 0 if empty.
double aggregateAvg(const std::vector<double> &Xs);

/// Per-element majority vote over equally sized binary masks: output
/// element is 1 iff it is set in strictly more than `Threshold` fraction
/// of the masks (the paper's "set in the majority of sample runs").
std::vector<uint8_t> majorityVote(const std::vector<std::vector<uint8_t>> &Runs,
                                  double Threshold = 0.5);

/// Indices of the first representative of each equivalence class under
/// \p Same; the paper's DEDUP keeps one tuning continuation per unique
/// internal result.
std::vector<size_t>
dedupIndices(size_t Count, const std::function<bool(size_t, size_t)> &Same);

/// DEDUP over double vectors with an L-inf tolerance.
std::vector<size_t> dedupVectors(const std::vector<std::vector<double>> &Items,
                                 double Tolerance);

/// Tournament (pairwise-duel) selection over per-config sample vectors.
/// Every pair of configs duels: config A beats config B when A's samples
/// win strictly more than half of all (a, b) cross pairs (ties split).
/// The winner is the config with the highest Copeland score (duels won,
/// half a point per drawn duel); mean score breaks remaining ties. Robust
/// to heavy-tailed measurement noise that corrupts AVG: an occasional
/// huge outlier shifts a mean arbitrarily but flips almost no duels.
/// Returns the winning index, or `(size_t)-1` when \p Configs is empty.
size_t tournamentSelect(const std::vector<std::vector<double>> &Configs,
                        bool Minimize = true);

//===----------------------------------------------------------------------===//
// Incremental accumulators (paper Sec. IV-B).
//===----------------------------------------------------------------------===//

/// Streaming min/max/mean/count over doubles. Thread safe: sampling runs
/// add() concurrently, the tuning side reads after the region barrier.
class ScalarAccumulator {
public:
  void add(double X);
  /// Back to the empty state (accumulator reuse across regions).
  void reset();
  size_t count() const { return N; }
  double min() const { return N ? Min : std::numeric_limits<double>::infinity(); }
  double max() const {
    return N ? Max : -std::numeric_limits<double>::infinity();
  }
  double mean() const { return N ? Sum / static_cast<double>(N) : 0.0; }

private:
  mutable std::mutex Mutex;
  size_t N = 0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
  double Sum = 0.0;
};

/// Streaming "best item" keeper: retains the single item with the best
/// score seen so far, so memory stays O(1) in the number of runs.
template <typename T> class BestAccumulator {
public:
  /// \p Minimize selects whether lower scores win.
  explicit BestAccumulator(bool Minimize = false) : Minimize(Minimize) {}

  void add(double Score, T Item) {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Better = !HasBest || (Minimize ? Score < BestScore
                                        : Score > BestScore);
    if (!Better)
      return;
    HasBest = true;
    BestScore = Score;
    BestItem = std::move(Item);
  }

  bool hasBest() const { return HasBest; }
  double bestScore() const { return BestScore; }
  const T &bestItem() const { return BestItem; }

private:
  bool Minimize;
  std::mutex Mutex;
  bool HasBest = false;
  double BestScore = 0.0;
  T BestItem{};
};

/// Streaming per-element vote counter over fixed-size binary masks.
class VoteAccumulator {
public:
  /// Fixes the mask size on the first add(); later masks must match.
  void add(const std::vector<uint8_t> &Mask);
  /// Back to the empty state; the next add() fixes a new mask size.
  void reset();
  size_t runs() const { return N; }

  /// Mask of elements set in more than \p Threshold of the runs.
  std::vector<uint8_t> result(double Threshold = 0.5) const;

private:
  mutable std::mutex Mutex;
  size_t N = 0;
  std::vector<uint32_t> Counts;
};

/// Streaming tournament selector: per-config samples accumulate as runs
/// finish, the tuning side asks for the pairwise-duel winner after the
/// region barrier. Memory is O(total samples) — duels need the full
/// per-config distributions, not a running moment.
class TournamentAccumulator {
public:
  /// Record one score for config \p Config (configs may arrive in any
  /// order; the table grows to cover the largest index seen).
  void add(size_t Config, double Score);
  /// Back to the empty state (accumulator reuse across regions).
  void reset();
  size_t configs() const;
  size_t runs() const { return N; }

  /// Index of the duel winner, `(size_t)-1` when no scores were added.
  size_t result(bool Minimize = true) const;

private:
  mutable std::mutex Mutex;
  size_t N = 0;
  std::vector<std::vector<double>> Samples;
};

/// Streaming elementwise mean over fixed-size double vectors.
class MeanVectorAccumulator {
public:
  void add(const std::vector<double> &Xs);
  /// Back to the empty state; the next add() fixes a new vector size.
  void reset();
  size_t runs() const { return N; }
  std::vector<double> result() const;

private:
  mutable std::mutex Mutex;
  size_t N = 0;
  std::vector<double> Sums;
};

} // namespace wbt

#endif // WBT_AGGREGATE_AGGREGATORS_H
