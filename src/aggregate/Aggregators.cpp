//===- aggregate/Aggregators.cpp - cbAggr implementations -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "aggregate/Aggregators.h"

#include <cassert>
#include <cmath>

using namespace wbt;

const char *wbt::aggregationKindName(AggregationKind K) {
  switch (K) {
  case AggregationKind::Min:
    return "MIN";
  case AggregationKind::Max:
    return "MAX";
  case AggregationKind::Avg:
    return "AVG";
  case AggregationKind::MajorityVote:
    return "MV";
  case AggregationKind::Dedup:
    return "DEDUP";
  case AggregationKind::Custom:
    return "CUSTOM";
  }
  return "?";
}

double wbt::aggregateMin(const std::vector<double> &Xs) {
  double M = std::numeric_limits<double>::infinity();
  for (double X : Xs)
    M = std::min(M, X);
  return M;
}

double wbt::aggregateMax(const std::vector<double> &Xs) {
  double M = -std::numeric_limits<double>::infinity();
  for (double X : Xs)
    M = std::max(M, X);
  return M;
}

double wbt::aggregateAvg(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

std::vector<uint8_t>
wbt::majorityVote(const std::vector<std::vector<uint8_t>> &Runs,
                  double Threshold) {
  if (Runs.empty())
    return {};
  VoteAccumulator Acc;
  for (const std::vector<uint8_t> &Mask : Runs)
    Acc.add(Mask);
  return Acc.result(Threshold);
}

std::vector<size_t>
wbt::dedupIndices(size_t Count,
                  const std::function<bool(size_t, size_t)> &Same) {
  std::vector<size_t> Reps;
  for (size_t I = 0; I != Count; ++I) {
    bool Duplicate = false;
    for (size_t Rep : Reps)
      if (Same(Rep, I)) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Reps.push_back(I);
  }
  return Reps;
}

std::vector<size_t>
wbt::dedupVectors(const std::vector<std::vector<double>> &Items,
                  double Tolerance) {
  return dedupIndices(Items.size(), [&](size_t A, size_t B) {
    const std::vector<double> &X = Items[A];
    const std::vector<double> &Y = Items[B];
    if (X.size() != Y.size())
      return false;
    for (size_t I = 0, E = X.size(); I != E; ++I)
      if (std::fabs(X[I] - Y[I]) > Tolerance)
        return false;
    return true;
  });
}

void ScalarAccumulator::add(double X) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++N;
  Min = std::min(Min, X);
  Max = std::max(Max, X);
  Sum += X;
}

void ScalarAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Min = std::numeric_limits<double>::infinity();
  Max = -std::numeric_limits<double>::infinity();
  Sum = 0.0;
}

void VoteAccumulator::add(const std::vector<uint8_t> &Mask) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Counts.empty())
    Counts.resize(Mask.size(), 0);
  assert(Counts.size() == Mask.size() && "vote masks must share a size");
  for (size_t I = 0, E = Mask.size(); I != E; ++I)
    if (Mask[I])
      ++Counts[I];
  ++N;
}

void VoteAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Counts.clear();
}

std::vector<uint8_t> VoteAccumulator::result(double Threshold) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<uint8_t> Out(Counts.size(), 0);
  double Cut = Threshold * static_cast<double>(N);
  for (size_t I = 0, E = Counts.size(); I != E; ++I)
    Out[I] = Counts[I] > Cut ? 1 : 0;
  return Out;
}

void MeanVectorAccumulator::add(const std::vector<double> &Xs) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sums.empty())
    Sums.resize(Xs.size(), 0.0);
  assert(Sums.size() == Xs.size() && "mean vectors must share a size");
  for (size_t I = 0, E = Xs.size(); I != E; ++I)
    Sums[I] += Xs[I];
  ++N;
}

void MeanVectorAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Sums.clear();
}

std::vector<double> MeanVectorAccumulator::result() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<double> Out(Sums.size(), 0.0);
  if (!N)
    return Out;
  for (size_t I = 0, E = Sums.size(); I != E; ++I)
    Out[I] = Sums[I] / static_cast<double>(N);
  return Out;
}
