//===- aggregate/Aggregators.cpp - cbAggr implementations -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "aggregate/Aggregators.h"

#include <cassert>
#include <cmath>

using namespace wbt;

const char *wbt::aggregationKindName(AggregationKind K) {
  switch (K) {
  case AggregationKind::Min:
    return "MIN";
  case AggregationKind::Max:
    return "MAX";
  case AggregationKind::Avg:
    return "AVG";
  case AggregationKind::MajorityVote:
    return "MV";
  case AggregationKind::Dedup:
    return "DEDUP";
  case AggregationKind::Tournament:
    return "TOURNAMENT";
  case AggregationKind::Custom:
    return "CUSTOM";
  }
  return "?";
}

double wbt::aggregateMin(const std::vector<double> &Xs) {
  double M = std::numeric_limits<double>::infinity();
  for (double X : Xs)
    M = std::min(M, X);
  return M;
}

double wbt::aggregateMax(const std::vector<double> &Xs) {
  double M = -std::numeric_limits<double>::infinity();
  for (double X : Xs)
    M = std::max(M, X);
  return M;
}

double wbt::aggregateAvg(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

std::vector<uint8_t>
wbt::majorityVote(const std::vector<std::vector<uint8_t>> &Runs,
                  double Threshold) {
  if (Runs.empty())
    return {};
  VoteAccumulator Acc;
  for (const std::vector<uint8_t> &Mask : Runs)
    Acc.add(Mask);
  return Acc.result(Threshold);
}

std::vector<size_t>
wbt::dedupIndices(size_t Count,
                  const std::function<bool(size_t, size_t)> &Same) {
  std::vector<size_t> Reps;
  for (size_t I = 0; I != Count; ++I) {
    bool Duplicate = false;
    for (size_t Rep : Reps)
      if (Same(Rep, I)) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Reps.push_back(I);
  }
  return Reps;
}

std::vector<size_t>
wbt::dedupVectors(const std::vector<std::vector<double>> &Items,
                  double Tolerance) {
  return dedupIndices(Items.size(), [&](size_t A, size_t B) {
    const std::vector<double> &X = Items[A];
    const std::vector<double> &Y = Items[B];
    if (X.size() != Y.size())
      return false;
    for (size_t I = 0, E = X.size(); I != E; ++I)
      if (std::fabs(X[I] - Y[I]) > Tolerance)
        return false;
    return true;
  });
}

/// Fraction of (a, b) cross pairs that \p A wins against \p B; ties count
/// half. 0.5 (a drawn duel) when either side has no samples.
static double duelWinRate(const std::vector<double> &A,
                          const std::vector<double> &B, bool Minimize) {
  if (A.empty() || B.empty())
    return 0.5;
  double Wins = 0.0;
  for (double X : A)
    for (double Y : B) {
      if (X == Y)
        Wins += 0.5;
      else if ((X < Y) == Minimize)
        Wins += 1.0;
    }
  return Wins / (static_cast<double>(A.size()) * static_cast<double>(B.size()));
}

static size_t tournamentWinner(const std::vector<std::vector<double>> &Configs,
                               bool Minimize) {
  size_t N = Configs.size();
  if (!N)
    return static_cast<size_t>(-1);
  std::vector<double> Copeland(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double R = duelWinRate(Configs[I], Configs[J], Minimize);
      if (R > 0.5)
        Copeland[I] += 1.0;
      else if (R < 0.5)
        Copeland[J] += 1.0;
      else {
        Copeland[I] += 0.5;
        Copeland[J] += 0.5;
      }
    }
  size_t Best = 0;
  for (size_t I = 1; I != N; ++I) {
    if (Copeland[I] > Copeland[Best]) {
      Best = I;
      continue;
    }
    if (Copeland[I] == Copeland[Best]) {
      double MeanI = aggregateAvg(Configs[I]);
      double MeanBest = aggregateAvg(Configs[Best]);
      if (Minimize ? MeanI < MeanBest : MeanI > MeanBest)
        Best = I;
    }
  }
  return Best;
}

size_t wbt::tournamentSelect(const std::vector<std::vector<double>> &Configs,
                             bool Minimize) {
  return tournamentWinner(Configs, Minimize);
}

void TournamentAccumulator::add(size_t Config, double Score) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Config >= Samples.size())
    Samples.resize(Config + 1);
  Samples[Config].push_back(Score);
  ++N;
}

void TournamentAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Samples.clear();
}

size_t TournamentAccumulator::configs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Samples.size();
}

size_t TournamentAccumulator::result(bool Minimize) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!N)
    return static_cast<size_t>(-1);
  return tournamentWinner(Samples, Minimize);
}

void ScalarAccumulator::add(double X) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++N;
  Min = std::min(Min, X);
  Max = std::max(Max, X);
  Sum += X;
}

void ScalarAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Min = std::numeric_limits<double>::infinity();
  Max = -std::numeric_limits<double>::infinity();
  Sum = 0.0;
}

void VoteAccumulator::add(const std::vector<uint8_t> &Mask) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Counts.empty())
    Counts.resize(Mask.size(), 0);
  assert(Counts.size() == Mask.size() && "vote masks must share a size");
  for (size_t I = 0, E = Mask.size(); I != E; ++I)
    if (Mask[I])
      ++Counts[I];
  ++N;
}

void VoteAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Counts.clear();
}

std::vector<uint8_t> VoteAccumulator::result(double Threshold) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<uint8_t> Out(Counts.size(), 0);
  double Cut = Threshold * static_cast<double>(N);
  for (size_t I = 0, E = Counts.size(); I != E; ++I)
    Out[I] = Counts[I] > Cut ? 1 : 0;
  return Out;
}

void MeanVectorAccumulator::add(const std::vector<double> &Xs) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sums.empty())
    Sums.resize(Xs.size(), 0.0);
  assert(Sums.size() == Xs.size() && "mean vectors must share a size");
  for (size_t I = 0, E = Xs.size(); I != E; ++I)
    Sums[I] += Xs[I];
  ++N;
}

void MeanVectorAccumulator::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  N = 0;
  Sums.clear();
}

std::vector<double> MeanVectorAccumulator::result() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<double> Out(Sums.size(), 0.0);
  if (!N)
    return Out;
  for (size_t I = 0, E = Sums.size(); I != E; ++I)
    Out[I] = Sums[I] / static_cast<double>(N);
  return Out;
}
