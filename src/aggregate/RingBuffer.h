//===- aggregate/RingBuffer.h - Bounded MPSC ring buffer --------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared ring buffer of paper Sec. IV-B: sampling runs copy their
/// results in, the tuning side consumes them to perform incremental
/// aggregation. Bounded capacity is the whole point — it caps the number
/// of undigested sample results held in memory at once, which is what
/// paper Fig. 10 measures against one-shot aggregation.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_AGGREGATE_RINGBUFFER_H
#define WBT_AGGREGATE_RINGBUFFER_H

#include <cassert>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

namespace wbt {

/// Bounded multi-producer single-consumer queue. push() blocks while the
/// buffer is full; pop() blocks while it is empty, unless the producer side
/// has been closed.
template <typename T> class RingBuffer {
public:
  explicit RingBuffer(size_t Capacity)
      : Slots(Capacity ? Capacity : 1), Capacity(Capacity ? Capacity : 1) {}

  /// Blocks until space is available, then enqueues \p Item.
  void push(T Item) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotFull.wait(Lock, [this] { return Count < Capacity; });
    Slots[(Head + Count) % Capacity] = std::move(Item);
    ++Count;
    PeakCount = std::max(PeakCount, Count);
    NotEmpty.notify_one();
  }

  /// Dequeues the oldest item; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return Count > 0 || Closed; });
    if (Count == 0)
      return std::nullopt;
    T Item = std::move(Slots[Head]);
    Head = (Head + 1) % Capacity;
    --Count;
    NotFull.notify_one();
    return Item;
  }

  /// Marks the producer side finished; wakes blocked consumers.
  void close() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
    NotEmpty.notify_all();
  }

  size_t capacity() const { return Capacity; }

  /// Largest number of items held simultaneously (memory high-water mark).
  size_t peakCount() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return PeakCount;
  }

private:
  mutable std::mutex Mutex;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::vector<T> Slots;
  size_t Capacity;
  size_t Head = 0;
  size_t Count = 0;
  size_t PeakCount = 0;
  bool Closed = false;
};

} // namespace wbt

#endif // WBT_AGGREGATE_RINGBUFFER_H
