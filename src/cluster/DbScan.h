//===- cluster/DbScan.h - Density-based clustering --------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DBScan (Ester et al., the paper's [28]) with its two tunables: the
/// neighborhood radius Eps and the core-point threshold MinPts.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CLUSTER_DBSCAN_H
#define WBT_CLUSTER_DBSCAN_H

#include "cluster/Dataset.h"

namespace wbt {
namespace clus {

struct DbScanResult {
  /// Cluster id per point; -1 = noise.
  std::vector<int> Labels;
  int NumClusters = 0;
  long NoisePoints = 0;
};

/// Runs DBScan over \p Points.
DbScanResult dbscan(const std::vector<Point> &Points, double Eps, int MinPts);

} // namespace clus
} // namespace wbt

#endif // WBT_CLUSTER_DBSCAN_H
