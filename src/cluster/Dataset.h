//===- cluster/Dataset.h - Point sets with planted clusters -----*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gaussian-mixture point sets with known memberships, standing in for
/// the paper's MineBench clustering inputs. The number of planted
/// clusters, their spreads and the noise fraction vary per dataset, so
/// K-means' K and DBScan's (eps, minPts) have input-dependent optima.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CLUSTER_DATASET_H
#define WBT_CLUSTER_DATASET_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace clus {

/// A point in D dimensions.
using Point = std::vector<double>;

/// Points plus planted ground truth.
struct Dataset {
  std::vector<Point> Points;
  /// Planted memberships; -1 marks background noise points.
  std::vector<int> TrueLabels;
  int TrueClusters = 0;
  int Dims = 2;
};

struct DatasetOptions {
  int Dims = 2;
  int MinClusters = 2;
  int MaxClusters = 8;
  int PointsPerCluster = 60;
  /// Fraction of uniform background noise points.
  double NoiseFraction = 0.05;
  /// Per-cluster stddev range.
  double SpreadLo = 0.02;
  double SpreadHi = 0.08;
};

/// Generates dataset number \p Index of the family identified by \p Seed.
Dataset makeClusterDataset(uint64_t Seed, int Index,
                           const DatasetOptions &Opts = DatasetOptions());

/// Squared Euclidean distance.
double distSq(const Point &A, const Point &B);

} // namespace clus
} // namespace wbt

#endif // WBT_CLUSTER_DATASET_H
