//===- cluster/Scores.cpp - Clustering quality measures --------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Scores.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <map>

using namespace wbt;
using namespace wbt::clus;

double wbt::clus::silhouette(const std::vector<Point> &Points,
                             const std::vector<int> &Labels) {
  assert(Points.size() == Labels.size() && "labels/points size mismatch");
  std::map<int, long> Sizes;
  for (int L : Labels)
    if (L >= 0)
      ++Sizes[L];
  if (Sizes.size() < 2)
    return 0.0;

  double Total = 0.0;
  long Counted = 0;
  for (size_t I = 0, E = Points.size(); I != E; ++I) {
    int Li = Labels[I];
    if (Li < 0 || Sizes[Li] < 2)
      continue;
    // Mean distance to own cluster (a) and to the nearest other (b).
    std::map<int, double> SumD;
    for (size_t J = 0; J != E; ++J) {
      if (J == I || Labels[J] < 0)
        continue;
      SumD[Labels[J]] += std::sqrt(distSq(Points[I], Points[J]));
    }
    double A = SumD[Li] / static_cast<double>(Sizes[Li] - 1);
    double B = std::numeric_limits<double>::infinity();
    for (auto &[L, S] : SumD) {
      if (L == Li)
        continue;
      B = std::min(B, S / static_cast<double>(Sizes[L]));
    }
    if (!std::isfinite(B))
      continue;
    double Max = std::max(A, B);
    if (Max > 0)
      Total += (B - A) / Max;
    ++Counted;
  }
  return Counted ? Total / static_cast<double>(Counted) : 0.0;
}

double wbt::clus::adjustedRand(const std::vector<int> &A,
                               const std::vector<int> &B) {
  assert(A.size() == B.size() && "labelings must have equal size");
  size_t N = A.size();
  if (N < 2)
    return 1.0;
  std::map<std::pair<int, int>, long> Joint;
  std::map<int, long> RowSum, ColSum;
  for (size_t I = 0; I != N; ++I) {
    ++Joint[{A[I], B[I]}];
    ++RowSum[A[I]];
    ++ColSum[B[I]];
  }
  auto Choose2 = [](long X) { return 0.5 * X * (X - 1); };
  double SumJoint = 0, SumRow = 0, SumCol = 0;
  for (auto &[K, V] : Joint)
    SumJoint += Choose2(V);
  for (auto &[K, V] : RowSum)
    SumRow += Choose2(V);
  for (auto &[K, V] : ColSum)
    SumCol += Choose2(V);
  double Expected = SumRow * SumCol / Choose2(static_cast<long>(N));
  double MaxIndex = 0.5 * (SumRow + SumCol);
  if (MaxIndex == Expected)
    return 1.0;
  return (SumJoint - Expected) / (MaxIndex - Expected);
}
