//===- cluster/Dataset.cpp - Point sets with planted clusters --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Dataset.h"

#include <cassert>

using namespace wbt;
using namespace wbt::clus;

Dataset wbt::clus::makeClusterDataset(uint64_t Seed, int Index,
                                      const DatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 17);
  Dataset D;
  D.Dims = Opts.Dims;
  D.TrueClusters =
      static_cast<int>(R.uniformInt(Opts.MinClusters, Opts.MaxClusters));

  // Cluster centers kept pairwise separated by rejection sampling.
  std::vector<Point> Centers;
  while (static_cast<int>(Centers.size()) < D.TrueClusters) {
    Point C(Opts.Dims);
    for (double &X : C)
      X = R.uniform(0.15, 0.85);
    bool TooClose = false;
    for (const Point &O : Centers)
      if (distSq(C, O) < 0.04)
        TooClose = true;
    if (!TooClose || Centers.size() > 64)
      Centers.push_back(std::move(C));
  }

  for (int Cl = 0; Cl != D.TrueClusters; ++Cl) {
    double Spread = R.uniform(Opts.SpreadLo, Opts.SpreadHi);
    for (int I = 0; I != Opts.PointsPerCluster; ++I) {
      Point P(Opts.Dims);
      for (int K = 0; K != Opts.Dims; ++K)
        P[static_cast<size_t>(K)] =
            Centers[Cl][static_cast<size_t>(K)] + R.gaussian(0.0, Spread);
      D.Points.push_back(std::move(P));
      D.TrueLabels.push_back(Cl);
    }
  }

  int NoiseCount = static_cast<int>(Opts.NoiseFraction * D.Points.size());
  for (int I = 0; I != NoiseCount; ++I) {
    Point P(Opts.Dims);
    for (double &X : P)
      X = R.uniform(0.0, 1.0);
    D.Points.push_back(std::move(P));
    D.TrueLabels.push_back(-1);
  }

  // Shuffle points and labels together.
  std::vector<size_t> Perm(D.Points.size());
  for (size_t I = 0; I != Perm.size(); ++I)
    Perm[I] = I;
  R.shuffle(Perm);
  std::vector<Point> Pts(D.Points.size());
  std::vector<int> Lbls(D.Points.size());
  for (size_t I = 0; I != Perm.size(); ++I) {
    Pts[I] = std::move(D.Points[Perm[I]]);
    Lbls[I] = D.TrueLabels[Perm[I]];
  }
  D.Points = std::move(Pts);
  D.TrueLabels = std::move(Lbls);
  return D;
}

double wbt::clus::distSq(const Point &A, const Point &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double S = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    S += (A[I] - B[I]) * (A[I] - B[I]);
  return S;
}
