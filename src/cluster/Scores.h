//===- cluster/Scores.h - Clustering quality measures -----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal (silhouette) and external (adjusted Rand index, against the
/// planted labels) clustering scores. Tuning uses the internal score —
/// ground truth is measurement-only, exactly as the paper stresses in
/// Sec. V-A.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CLUSTER_SCORES_H
#define WBT_CLUSTER_SCORES_H

#include "cluster/Dataset.h"

namespace wbt {
namespace clus {

/// Mean silhouette coefficient in [-1, 1] (higher = better separated);
/// noise points (label < 0) are skipped. Returns 0 when fewer than two
/// clusters are present.
double silhouette(const std::vector<Point> &Points,
                  const std::vector<int> &Labels);

/// Adjusted Rand index between two labelings (1 = identical partitions,
/// ~0 = random agreement). Noise label -1 is treated as its own class.
double adjustedRand(const std::vector<int> &A, const std::vector<int> &B);

} // namespace clus
} // namespace wbt

#endif // WBT_CLUSTER_SCORES_H
