//===- cluster/DbScan.cpp - Density-based clustering -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/DbScan.h"

#include <deque>

using namespace wbt;
using namespace wbt::clus;

DbScanResult wbt::clus::dbscan(const std::vector<Point> &Points, double Eps,
                               int MinPts) {
  const int Unvisited = -2, Noise = -1;
  DbScanResult Res;
  Res.Labels.assign(Points.size(), Unvisited);
  double EpsSq = Eps * Eps;

  auto Neighbors = [&](size_t I) {
    std::vector<size_t> Out;
    for (size_t J = 0, E = Points.size(); J != E; ++J)
      if (J != I && distSq(Points[I], Points[J]) <= EpsSq)
        Out.push_back(J);
    return Out;
  };

  int NextCluster = 0;
  for (size_t I = 0, E = Points.size(); I != E; ++I) {
    if (Res.Labels[I] != Unvisited)
      continue;
    std::vector<size_t> Nbrs = Neighbors(I);
    if (static_cast<int>(Nbrs.size()) + 1 < MinPts) {
      Res.Labels[I] = Noise;
      continue;
    }
    int Cluster = NextCluster++;
    Res.Labels[I] = Cluster;
    std::deque<size_t> Work(Nbrs.begin(), Nbrs.end());
    while (!Work.empty()) {
      size_t J = Work.front();
      Work.pop_front();
      if (Res.Labels[J] == Noise)
        Res.Labels[J] = Cluster; // border point
      if (Res.Labels[J] != Unvisited)
        continue;
      Res.Labels[J] = Cluster;
      std::vector<size_t> JNbrs = Neighbors(J);
      if (static_cast<int>(JNbrs.size()) + 1 >= MinPts)
        for (size_t K : JNbrs)
          Work.push_back(K);
    }
  }

  Res.NumClusters = NextCluster;
  for (int L : Res.Labels)
    Res.NoisePoints += L == Noise;
  return Res;
}
