//===- cluster/KMeans.cpp - Lloyd's K-means --------------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/KMeans.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace wbt;
using namespace wbt::clus;

KMeansResult wbt::clus::kmeans(const std::vector<Point> &Points, int K, Rng &R,
                               const KMeansOptions &Opts) {
  assert(!Points.empty() && "kmeans over an empty point set");
  assert(K >= 1 && "kmeans needs K >= 1");
  K = std::min<int>(K, static_cast<int>(Points.size()));
  size_t Dims = Points[0].size();

  KMeansResult Res;
  Res.Centers.reserve(K);

  // k-means++ seeding: first center uniform, then proportional to the
  // squared distance to the nearest chosen center.
  Res.Centers.push_back(Points[R.index(Points.size())]);
  std::vector<double> D2(Points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(Res.Centers.size()) < K) {
    double Total = 0.0;
    for (size_t I = 0, E = Points.size(); I != E; ++I) {
      D2[I] = std::min(D2[I], distSq(Points[I], Res.Centers.back()));
      Total += D2[I];
    }
    if (Total <= 0.0) {
      Res.Centers.push_back(Points[R.index(Points.size())]);
      continue;
    }
    double Pick = R.uniform(0.0, Total);
    size_t Chosen = Points.size() - 1;
    double Acc = 0.0;
    for (size_t I = 0, E = Points.size(); I != E; ++I) {
      Acc += D2[I];
      if (Acc >= Pick) {
        Chosen = I;
        break;
      }
    }
    Res.Centers.push_back(Points[Chosen]);
  }

  Res.Labels.assign(Points.size(), 0);
  double PrevInertia = std::numeric_limits<double>::infinity();
  for (int Iter = 0; Iter != Opts.MaxIterations; ++Iter) {
    // Assignment step.
    Res.Inertia = 0.0;
    for (size_t I = 0, E = Points.size(); I != E; ++I) {
      int Best = 0;
      double BestD = distSq(Points[I], Res.Centers[0]);
      for (int C = 1; C != K; ++C) {
        double D = distSq(Points[I], Res.Centers[static_cast<size_t>(C)]);
        if (D < BestD) {
          BestD = D;
          Best = C;
        }
      }
      Res.Labels[I] = Best;
      Res.Inertia += BestD;
    }
    Res.Iterations = Iter + 1;
    if (Opts.IterationCheck && !Opts.IterationCheck(Iter, Res.Inertia))
      break;

    // Update step.
    std::vector<Point> Sums(static_cast<size_t>(K), Point(Dims, 0.0));
    std::vector<long> Counts(static_cast<size_t>(K), 0);
    for (size_t I = 0, E = Points.size(); I != E; ++I) {
      Point &S = Sums[static_cast<size_t>(Res.Labels[I])];
      for (size_t D = 0; D != Dims; ++D)
        S[D] += Points[I][D];
      ++Counts[static_cast<size_t>(Res.Labels[I])];
    }
    for (int C = 0; C != K; ++C) {
      if (Counts[static_cast<size_t>(C)] == 0) {
        // Re-seed an empty cluster.
        Res.Centers[static_cast<size_t>(C)] = Points[R.index(Points.size())];
        continue;
      }
      for (size_t D = 0; D != Dims; ++D)
        Res.Centers[static_cast<size_t>(C)][D] =
            Sums[static_cast<size_t>(C)][D] /
            static_cast<double>(Counts[static_cast<size_t>(C)]);
    }

    if (std::fabs(PrevInertia - Res.Inertia) <
        Opts.Tolerance * (1.0 + Res.Inertia))
      break;
    PrevInertia = Res.Inertia;
  }
  return Res;
}
