//===- cluster/KMeans.h - Lloyd's K-means -----------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-means (MacQueen / Lloyd) with k-means++-style seeding. The K
/// parameter is the paper's canonical single-knob tuning example
/// (Sec. I); iteration progress is exposed so a @check callback can kill
/// diverging runs early (paper Sec. V-B3 tunes K-means with MCMC + MAX
/// aggregation and mid-run checks).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_CLUSTER_KMEANS_H
#define WBT_CLUSTER_KMEANS_H

#include "cluster/Dataset.h"

#include <functional>

namespace wbt {
namespace clus {

struct KMeansResult {
  std::vector<int> Labels;
  std::vector<Point> Centers;
  /// Sum of squared distances to assigned centers (inertia).
  double Inertia = 0.0;
  int Iterations = 0;
};

struct KMeansOptions {
  int MaxIterations = 50;
  double Tolerance = 1e-7;
  /// Invoked after every iteration with (iteration, inertia); returning
  /// false aborts the run (the white-box @check hook).
  std::function<bool(int, double)> IterationCheck;
};

/// Clusters \p Points into \p K groups.
KMeansResult kmeans(const std::vector<Point> &Points, int K, Rng &R,
                    const KMeansOptions &Opts = KMeansOptions());

} // namespace clus
} // namespace wbt

#endif // WBT_CLUSTER_KMEANS_H
