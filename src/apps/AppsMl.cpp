//===- apps/AppsMl.cpp - SVM and C4.5 tuned apps ---------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Both apps follow the paper's protocol (Sec. V-B3): the dataset is
// halved, the first half is used for training + tuning, the second half
// only for the reported quality. Tuning uses the engine's built-in k-fold
// cross-validation (paper Sec. IV-A): every logical sample becomes an SVG
// of KFolds runs sharing hyper-parameters, scored by validation error,
// aggregated by MIN of the SVG-mean validation error. A
// `CrossValidate = false` switch reproduces the overfitting ablation of
// paper Fig. 17.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"
#include "ml/C45.h"
#include "ml/Svm.h"
#include "support/Timer.h"

#include <cmath>
#include <map>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::ml;

namespace {

constexpr uint64_t SvmSeed = 7705;
constexpr uint64_t C45Seed = 7706;
constexpr int Folds = 4;

/// Picks the hyper-parameter SVG with the lowest mean validation error.
/// Result type: (drawn values, validation error).
struct CvSample {
  std::map<std::string, double> Params;
  double ValidationError = 1.0;
};

class CvMinAggregator : public Aggregator<CvSample, CvSample> {
public:
  void add(const SampleInfo &Info, CvSample &&R) override {
    Acc &A = BySvg[Info.Sample];
    A.Sum += R.ValidationError;
    ++A.Count;
    A.Rep = std::move(R);
  }

  std::vector<CvSample> finish() override {
    bool Found = false;
    double BestErr = 0;
    CvSample Best;
    for (auto &[Svg, A] : BySvg) {
      double Mean = A.Sum / A.Count;
      if (!Found || Mean < BestErr) {
        Found = true;
        BestErr = Mean;
        Best = A.Rep;
        Best.ValidationError = Mean;
      }
    }
    if (!Found)
      return {};
    return {Best};
  }

private:
  struct Acc {
    double Sum = 0;
    int Count = 0;
    CvSample Rep;
  };
  std::map<int, Acc> BySvg;
};

//===----------------------------------------------------------------------===//
// SVM
//===----------------------------------------------------------------------===//

SvmParams svmParamsFrom(const std::map<std::string, double> &V) {
  SvmParams P;
  P.Kernel = static_cast<KernelKind>(
      static_cast<int>(V.at("kernel") + 0.5));
  P.C = V.at("C");
  P.Gamma = V.at("gamma");
  P.Degree = static_cast<int>(V.at("degree") + 0.5);
  P.Coef0 = V.at("coef0");
  P.Tol = V.at("tol");
  P.MaxPasses = static_cast<int>(V.at("maxPasses") + 0.5);
  P.BalanceClasses = V.at("balance") >= 0.5;
  return P;
}

std::map<std::string, double> drawSvmParams(SampleContext &Ctx) {
  std::map<std::string, double> V;
  V["kernel"] = Ctx.sampleInt("kernel", Distribution::uniformInt(0, 2));
  V["C"] = Ctx.sample("C", Distribution::logUniform(0.01, 100.0));
  V["gamma"] = Ctx.sample("gamma", Distribution::logUniform(0.001, 10.0));
  V["degree"] = Ctx.sampleInt("degree", Distribution::uniformInt(2, 4));
  V["coef0"] = Ctx.sample("coef0", Distribution::uniform(0.0, 2.0));
  V["tol"] = Ctx.sample("tol", Distribution::logUniform(1e-4, 1e-1));
  V["maxPasses"] = Ctx.sampleInt("maxPasses", Distribution::uniformInt(2, 8));
  V["balance"] = Ctx.sampleInt("balance", Distribution::uniformInt(0, 1));
  return V;
}

class SvmApp : public TunedApp {
public:
  /// \p CrossValidate false reproduces the Fig. 17 overfitting ablation.
  explicit SvmApp(bool CrossValidate = true) : CrossValidate(CrossValidate) {}

  std::string name() const override { return "SVM"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override {
    return CrossValidate ? "RAND+CV" : "RAND";
  }
  const char *aggregationName() const override { return "MIN"; }
  int numParams() const override { return 8; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    MlDatasetOptions Opts;
    Opts.Samples = 150;
    MlDataset Full = makeClassificationDataset(SvmSeed, Index, Opts);
    std::vector<size_t> First, Second;
    halfSplit(Full.size(), First, Second);
    Train = subset(Full, First);
    Test = subset(Full, Second);
  }

  double nativeQuality() override {
    Rng R(1);
    return svmError(trainMultiSvm(Train, SvmParams(), R), Test);
  }

  /// Tuned-model errors, for the Fig. 17 bars.
  struct ErrorPair {
    double TrainError = 0;
    double TestError = 0;
  };
  ErrorPair LastErrors;

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 24;
    S.KFolds = CrossValidate ? Folds : 1;
    const MlDataset *TrainPtr = &Train;
    bool CV = CrossValidate;
    P.addStage<int, CvSample, CvSample>(
        "svm", S,
        std::function<std::optional<CvSample>(const int &, SampleContext &)>(
            [TrainPtr, CV](const int &,
                           SampleContext &Ctx) -> std::optional<CvSample> {
              CvSample Out;
              Out.Params = drawSvmParams(Ctx);
              SvmParams SP = svmParamsFrom(Out.Params);
              Rng RunRng = Ctx.rng();
              if (CV) {
                std::vector<size_t> TrIdx, VaIdx;
                kFoldIndices(TrainPtr->size(), Folds, Ctx.fold(), TrIdx,
                             VaIdx);
                MultiSvm M = trainMultiSvm(subset(*TrainPtr, TrIdx), SP,
                                           RunRng);
                Out.ValidationError = svmError(M, subset(*TrainPtr, VaIdx));
              } else {
                // No validation: score on the training data itself — this
                // is what overfits (paper Fig. 17, left bars).
                MultiSvm M = trainMultiSvm(*TrainPtr, SP, RunRng);
                Out.ValidationError = svmError(M, *TrainPtr);
              }
              Ctx.setScore(-Out.ValidationError);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<CvSample, CvSample>>()>(
            [] { return std::make_unique<CvMinAggregator>(); }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const CvSample &Best = Rep.finalAs<CvSample>(0);
      Out.TuneScore = Best.ValidationError;
      // Retrain on the full training half with the chosen parameters.
      Rng R(Seed ^ 0x5157);
      MultiSvm M = trainMultiSvm(Train, svmParamsFrom(Best.Params), R);
      LastErrors.TrainError = svmError(M, Train);
      LastErrors.TestError = svmError(M, Test);
      Out.Quality = LastErrors.TestError;
    } else {
      Out.Quality = 1.0;
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addEnum("kernel", {"linear", "rbf", "poly"}, 1);
    Space.addDouble("C", 0.01, 100.0, 1.0, true);
    Space.addDouble("gamma", 0.001, 10.0, 0.5, true);
    Space.addInt("degree", 2, 4, 3);
    Space.addDouble("coef0", 0.0, 2.0, 1.0);
    Space.addDouble("tol", 1e-4, 1e-1, 1e-3, true);
    Space.addInt("maxPasses", 2, 8, 5);
    Space.addBool("balance", false);

    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          SvmParams SP;
          SP.Kernel = static_cast<KernelKind>(C.asEnum(0));
          SP.C = C.asDouble(1);
          SP.Gamma = C.asDouble(2);
          SP.Degree = static_cast<int>(C.asInt(3));
          SP.Coef0 = C.asDouble(4);
          SP.Tol = C.asDouble(5);
          SP.MaxPasses = static_cast<int>(C.asInt(6));
          SP.BalanceClasses = C.asBool(7);
          // The paper extends OpenTuner with the same cross-validation:
          // each black-box sample is Folds full executions, each of which
          // reloads and re-splits the dataset.
          MlDatasetOptions LoadOpts;
          LoadOpts.Samples = 150;
          MlDataset Fresh =
              makeClassificationDataset(SvmSeed, DataIndex, LoadOpts);
          double Sum = 0;
          for (int F = 0; F != Folds; ++F) {
            std::vector<size_t> TrIdx, VaIdx;
            kFoldIndices(Train.size(), Folds, F, TrIdx, VaIdx);
            Rng R(Seed + static_cast<uint64_t>(F));
            MultiSvm M = trainMultiSvm(subset(Train, TrIdx), SP, R);
            Sum += svmError(M, subset(Train, VaIdx));
          }
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return Sum / Folds;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals * Folds;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    SvmParams SP;
    SP.Kernel = static_cast<KernelKind>(Res.Best.asEnum(0));
    SP.C = Res.Best.asDouble(1);
    SP.Gamma = Res.Best.asDouble(2);
    SP.Degree = static_cast<int>(Res.Best.asInt(3));
    SP.Coef0 = Res.Best.asDouble(4);
    SP.Tol = Res.Best.asDouble(5);
    SP.MaxPasses = static_cast<int>(Res.Best.asInt(6));
    SP.BalanceClasses = Res.Best.asBool(7);
    Rng R(Seed ^ 0xB157);
    Out.Quality = svmError(trainMultiSvm(Train, SP, R), Test);
    return Out;
  }

private:
  bool CrossValidate;
  MlDataset Train, Test;
  int DataIndex = 0;
};

//===----------------------------------------------------------------------===//
// C4.5
//===----------------------------------------------------------------------===//

class C45App : public TunedApp {
public:
  std::string name() const override { return "C4.5"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override { return "RAND+CV"; }
  const char *aggregationName() const override { return "MIN"; }
  int numParams() const override { return 2; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    MlDatasetOptions Opts;
    Opts.Samples = 240;
    Opts.LabelNoise = 0.12;
    MlDataset Full = makeClassificationDataset(C45Seed, Index, Opts);
    std::vector<size_t> First, Second;
    halfSplit(Full.size(), First, Second);
    Train = subset(Full, First);
    Test = subset(Full, Second);
  }

  double nativeQuality() override {
    return c45Error(trainC45(Train, C45Params()), Test);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 20;
    S.KFolds = Folds;
    const MlDataset *TrainPtr = &Train;
    P.addStage<int, CvSample, CvSample>(
        "c45", S,
        std::function<std::optional<CvSample>(const int &, SampleContext &)>(
            [TrainPtr](const int &,
                       SampleContext &Ctx) -> std::optional<CvSample> {
              CvSample Out;
              Out.Params["confidence"] =
                  Ctx.sample("confidence", Distribution::uniform(0.01, 0.9));
              Out.Params["minCases"] = static_cast<double>(Ctx.sampleInt(
                  "minCases", Distribution::uniformInt(1, 30)));
              C45Params CP;
              CP.Confidence = Out.Params["confidence"];
              CP.MinCases = static_cast<int>(Out.Params["minCases"]);
              std::vector<size_t> TrIdx, VaIdx;
              kFoldIndices(TrainPtr->size(), Folds, Ctx.fold(), TrIdx, VaIdx);
              C45Tree Tree = trainC45(subset(*TrainPtr, TrIdx), CP);
              Out.ValidationError =
                  c45Error(Tree, subset(*TrainPtr, VaIdx));
              Ctx.setScore(-Out.ValidationError);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<CvSample, CvSample>>()>(
            [] { return std::make_unique<CvMinAggregator>(); }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const CvSample &Best = Rep.finalAs<CvSample>(0);
      Out.TuneScore = Best.ValidationError;
      C45Params CP;
      CP.Confidence = Best.Params.at("confidence");
      CP.MinCases = static_cast<int>(Best.Params.at("minCases"));
      Out.Quality = c45Error(trainC45(Train, CP), Test);
    } else {
      Out.Quality = 1.0;
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("confidence", 0.01, 0.9, 0.25);
    Space.addInt("minCases", 1, 30, 2);
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          C45Params CP;
          CP.Confidence = C.asDouble(0);
          CP.MinCases = static_cast<int>(C.asInt(1));
          // Each black-box sample reloads the dataset (full execution).
          MlDatasetOptions LoadOpts;
          LoadOpts.Samples = 240;
          LoadOpts.LabelNoise = 0.12;
          MlDataset Fresh =
              makeClassificationDataset(C45Seed, DataIndex, LoadOpts);
          double Sum = 0;
          for (int F = 0; F != Folds; ++F) {
            std::vector<size_t> TrIdx, VaIdx;
            kFoldIndices(Train.size(), Folds, F, TrIdx, VaIdx);
            Sum += c45Error(trainC45(subset(Train, TrIdx), CP),
                            subset(Train, VaIdx));
          }
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return Sum / Folds;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals * Folds;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    C45Params CP;
    CP.Confidence = Res.Best.asDouble(0);
    CP.MinCases = static_cast<int>(Res.Best.asInt(1));
    Out.Quality = c45Error(trainC45(Train, CP), Test);
    return Out;
  }

private:
  MlDataset Train, Test;
  int DataIndex = 0;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makeSvmApp() {
  auto App = std::make_unique<SvmApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeC45App() {
  auto App = std::make_unique<C45App>();
  App->loadDataset(0);
  return App;
}

namespace wbt {
namespace apps {
/// Extra factory for the Fig. 17 ablation (declared in bench code).
std::unique_ptr<TunedApp> makeSvmAppNoCv() {
  auto App = std::make_unique<SvmApp>(/*CrossValidate=*/false);
  App->loadDataset(0);
  return App;
}

/// Train/test errors of the last white-box tuned SVM (Fig. 17 bars).
std::pair<double, double> svmLastErrors(TunedApp &App) {
  auto &S = static_cast<SvmApp &>(App);
  return {S.LastErrors.TrainError, S.LastErrors.TestError};
}
} // namespace apps
} // namespace wbt
