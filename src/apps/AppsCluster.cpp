//===- apps/AppsCluster.cpp - K-means and DBScan tuned apps ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Both clustering apps follow the paper's Table I rows: MCMC sampling
// with MAX aggregation over an internal quality score (silhouette — the
// programs' own scoring function); K-means additionally uses the @check
// hook to kill diverging runs mid-iteration (paper rule [CHECK],
// Sec. V-B3). Ground-truth adjusted Rand index is measurement-only.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "blackbox/SearchDriver.h"
#include "cluster/DbScan.h"
#include "cluster/KMeans.h"
#include "cluster/Scores.h"
#include "core/Pipeline.h"
#include "support/Timer.h"

#include <cmath>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::clus;

namespace {

constexpr uint64_t KmeansSeed = 7703;
constexpr uint64_t DbscanSeed = 7704;

/// The per-run result both apps commit: labels plus the internal score.
struct ClusterResult {
  std::vector<int> Labels;
  double Silhouette = 0;
};

class KmeansApp : public TunedApp {
public:
  std::string name() const override { return "Kmeans"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "MCMC"; }
  const char *aggregationName() const override { return "MAX"; }
  int numParams() const override { return 1; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    Data = makeClusterDataset(KmeansSeed, Index);
    // Total scatter around the global mean: the scale for the @check.
    Point Mean(static_cast<size_t>(Data.Dims), 0.0);
    for (const Point &P : Data.Points)
      for (size_t D = 0; D != Mean.size(); ++D)
        Mean[D] += P[D];
    for (double &M : Mean)
      M /= static_cast<double>(Data.Points.size());
    TotalScatter = 0;
    for (const Point &P : Data.Points)
      TotalScatter += distSq(P, Mean);
  }

  double nativeQuality() override {
    Rng R(1);
    KMeansResult Res = kmeans(Data.Points, /*default K=*/8, R);
    return adjustedRand(Res.Labels, Data.TrueLabels);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 28;
    S.Strategy = [] { return makeMcmcStrategy(0.2, 0.25); };
    const Dataset *D = &Data;
    double Scatter = TotalScatter;
    P.addStage<int, ClusterResult, ClusterResult>(
        "kmeans", S,
        std::function<std::optional<ClusterResult>(const int &,
                                                   SampleContext &)>(
            [D, Scatter](const int &, SampleContext &Ctx)
                -> std::optional<ClusterResult> {
              int K = static_cast<int>(
                  Ctx.sampleInt("k", Distribution::uniformInt(2, 20)));
              Rng RunRng = Ctx.rng();
              KMeansOptions Opts;
              // The white-box @check: a run whose inertia is still a large
              // fraction of the total scatter after a few iterations is
              // hopeless; kill it before convergence (paper Sec. V-B3).
              bool Aborted = false;
              Opts.IterationCheck = [&](int Iter, double Inertia) {
                if (Iter == 3 && Inertia > 0.6 * Scatter) {
                  Aborted = true;
                  return false;
                }
                return true;
              };
              KMeansResult Res = kmeans(D->Points, K, RunRng, Opts);
              if (!Ctx.check(!Aborted))
                return std::nullopt;
              ClusterResult Out;
              Out.Labels = std::move(Res.Labels);
              Out.Silhouette = silhouette(D->Points, Out.Labels);
              Ctx.setScore(Out.Silhouette);
              return Out;
            }),
        std::function<
            std::unique_ptr<Aggregator<ClusterResult, ClusterResult>>()>([] {
          return std::make_unique<BestScoreAggregator<ClusterResult>>(false);
        }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const ClusterResult &Best = Rep.finalAs<ClusterResult>(0);
      Out.TuneScore = Best.Silhouette;
      Out.Quality = adjustedRand(Best.Labels, Data.TrueLabels);
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addInt("k", 2, 20, 8);
    std::mutex Mutex;
    long Evals = 0;
    std::vector<int> BestLabels;
    double BestScore = -2;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          // Full execution: reload the data, then cluster.
          Dataset Fresh = makeClusterDataset(KmeansSeed, DataIndex);
          Rng R(Seed + static_cast<uint64_t>(C.asInt(0)));
          KMeansResult KRes =
              kmeans(Fresh.Points, static_cast<int>(C.asInt(0)), R);
          double S = silhouette(Data.Points, KRes.Labels);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          if (S > BestScore) {
            BestScore = S;
            BestLabels = KRes.Labels;
          }
          return S;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = BestScore;
    if (!BestLabels.empty())
      Out.Quality = adjustedRand(BestLabels, Data.TrueLabels);
    return Out;
  }

private:
  Dataset Data;
  double TotalScatter = 0;
  int DataIndex = 0;
};

class DbscanApp : public TunedApp {
public:
  std::string name() const override { return "DBScan"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "MCMC"; }
  const char *aggregationName() const override { return "MAX"; }
  int numParams() const override { return 2; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    Data = makeClusterDataset(DbscanSeed, Index);
  }

  double nativeQuality() override {
    DbScanResult Res = dbscan(Data.Points, 0.1, 5);
    return adjustedRand(Res.Labels, Data.TrueLabels);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 30;
    S.Strategy = [] { return makeMcmcStrategy(0.2, 0.2); };
    const Dataset *D = &Data;
    P.addStage<int, ClusterResult, ClusterResult>(
        "dbscan", S,
        std::function<std::optional<ClusterResult>(const int &,
                                                   SampleContext &)>(
            [D](const int &, SampleContext &Ctx)
                -> std::optional<ClusterResult> {
              double Eps =
                  Ctx.sample("eps", Distribution::logUniform(0.01, 0.4));
              int MinPts = static_cast<int>(
                  Ctx.sampleInt("minPts", Distribution::uniformInt(2, 15)));
              DbScanResult Res = dbscan(D->Points, Eps, MinPts);
              // @check: degenerate outcomes die before scoring.
              bool Plausible =
                  Res.NumClusters >= 2 &&
                  Res.NoisePoints <
                      static_cast<long>(D->Points.size()) / 2;
              if (!Ctx.check(Plausible))
                return std::nullopt;
              ClusterResult Out;
              Out.Labels = std::move(Res.Labels);
              Out.Silhouette = silhouette(D->Points, Out.Labels);
              Ctx.setScore(Out.Silhouette);
              return Out;
            }),
        std::function<
            std::unique_ptr<Aggregator<ClusterResult, ClusterResult>>()>([] {
          return std::make_unique<BestScoreAggregator<ClusterResult>>(false);
        }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const ClusterResult &Best = Rep.finalAs<ClusterResult>(0);
      Out.TuneScore = Best.Silhouette;
      Out.Quality = adjustedRand(Best.Labels, Data.TrueLabels);
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("eps", 0.01, 0.4, 0.1, /*LogScale=*/true);
    Space.addInt("minPts", 2, 15, 5);
    std::mutex Mutex;
    long Evals = 0;
    std::vector<int> BestLabels;
    double BestScore = -2;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Driver.run(
        Space,
        [&](const Config &C) {
          // Full execution: reload the data, then cluster.
          Dataset Fresh = makeClusterDataset(DbscanSeed, DataIndex);
          DbScanResult Res = dbscan(Fresh.Points, C.asDouble(0),
                                    static_cast<int>(C.asInt(1)));
          double S = Res.NumClusters >= 2
                         ? silhouette(Fresh.Points, Res.Labels)
                         : -1.0;
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          if (S > BestScore) {
            BestScore = S;
            BestLabels = Res.Labels;
          }
          return S;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = BudgetSeconds;
    Out.TuneScore = BestScore;
    if (!BestLabels.empty())
      Out.Quality = adjustedRand(BestLabels, Data.TrueLabels);
    return Out;
  }

private:
  Dataset Data;
  int DataIndex = 0;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makeKmeansApp() {
  auto App = std::make_unique<KmeansApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeDbscanApp() {
  auto App = std::make_unique<DbscanApp>();
  App->loadDataset(0);
  return App;
}
