//===- apps/Apps.cpp - The paper's 13 tuned programs -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace wbt;
using namespace wbt::apps;

TunedApp::~TunedApp() = default;

std::vector<std::unique_ptr<TunedApp>> wbt::apps::makeAllApps() {
  std::vector<std::unique_ptr<TunedApp>> Apps;
  Apps.push_back(makeCannyApp());
  Apps.push_back(makeWatershedApp());
  Apps.push_back(makeKmeansApp());
  Apps.push_back(makeDbscanApp());
  Apps.push_back(makeFaceApp());
  Apps.push_back(makeSphinxApp());
  Apps.push_back(makePhylipApp());
  Apps.push_back(makeFastaApp());
  Apps.push_back(makeTopnApp());
  Apps.push_back(makeMetisApp());
  Apps.push_back(makeC45App());
  Apps.push_back(makeSvmApp());
  Apps.push_back(makeArdupilotApp());
  return Apps;
}
