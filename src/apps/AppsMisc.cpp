//===- apps/AppsMisc.cpp - Sphinx, SLIM, METIS, Face tuned apps ------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"
#include "face/Eigenfaces.h"
#include "graphpart/Partitioner.h"
#include "recsys/Slim.h"
#include "speech/Recognizer.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;

namespace {

constexpr uint64_t SphinxSeed = 7709;
constexpr uint64_t TopnSeed = 7710;
constexpr uint64_t MetisSeed = 7711;
constexpr uint64_t FaceSeed = 7712;

//===----------------------------------------------------------------------===//
// Sphinx (speech recognition)
//===----------------------------------------------------------------------===//

/// One sampling run's output: the recognized word per utterance plus a
/// tuning-legal confidence (relative margin between the best and
/// second-best word distance).
struct DecodeResult {
  std::vector<int> Words;
  double MeanMargin = 0;
};

/// Majority vote per utterance across sample runs (paper: "the tuning
/// results are aggregated using majority vote").
class TranscriptVoteAggregator
    : public Aggregator<DecodeResult, std::vector<int>> {
public:
  void add(const SampleInfo &, DecodeResult &&R) override {
    if (Votes.empty())
      Votes.resize(R.Words.size());
    for (size_t U = 0; U != R.Words.size(); ++U)
      ++Votes[U][R.Words[U]];
  }

  std::vector<std::vector<int>> finish() override {
    std::vector<int> Voted;
    for (auto &PerWord : Votes) {
      int Best = -1;
      long BestCount = -1;
      for (auto &[Word, Count] : PerWord)
        if (Count > BestCount) {
          BestCount = Count;
          Best = Word;
        }
      Voted.push_back(Best);
    }
    if (Voted.empty())
      return {};
    return {Voted};
  }

private:
  std::vector<std::map<int, long>> Votes;
};

/// Decodes the whole set and reports the mean recognition margin.
DecodeResult decodeSet(const std::vector<speech::Utterance> &Set,
                       const speech::Vocabulary &Vocab,
                       const speech::SpeechParams &P) {
  DecodeResult Out;
  double MarginSum = 0;
  for (const speech::Utterance &U : Set) {
    speech::Frames Query = speech::frontEnd(U.Audio, P);
    int Best = -1;
    double BestD = 1e18, SecondD = 1e18;
    for (size_t W = 0; W != Vocab.Templates.size(); ++W) {
      speech::Frames Ref = speech::frontEnd(Vocab.Templates[W], P);
      double D = speech::dtwDistance(Query, Ref, P.DtwBand, P.MatchExponent);
      D += P.LengthPenalty *
           std::fabs(static_cast<double>(Query.size()) -
                     static_cast<double>(Ref.size())) /
           static_cast<double>(std::max<size_t>(1, Ref.size()));
      D -= P.LangWeight * 0.05 * Vocab.Priors[W];
      if (D < BestD) {
        SecondD = BestD;
        BestD = D;
        Best = static_cast<int>(W);
      } else if (D < SecondD) {
        SecondD = D;
      }
    }
    Out.Words.push_back(Best);
    MarginSum += (SecondD - BestD) / (std::fabs(BestD) + 1e-9);
  }
  Out.MeanMargin = Set.empty() ? 0 : MarginSum / static_cast<double>(Set.size());
  return Out;
}

/// Sampling ranges: plausible neighborhoods a Sphinx user would give,
/// wide enough to cover speaker-specific optima.
speech::SpeechParams speechParamsFrom(SampleContext &Ctx) {
  speech::SpeechParams P;
  P.Preemphasis = Ctx.sample("preemph", Distribution::uniform(0.2, 0.7));
  P.LowEdge = Ctx.sample("lowEdge", Distribution::uniform(0.0, 4.0));
  P.HighEdge = Ctx.sample("highEdge", Distribution::uniform(11.0, 15.0));
  P.NumFilters = static_cast<int>(
      Ctx.sampleInt("numFilters", Distribution::uniformInt(5, 12)));
  P.NoiseFloor = Ctx.sample("noiseFloor", Distribution::uniform(0.0, 0.08));
  P.EnergyWeight = Ctx.sample("energyW", Distribution::uniform(0.2, 1.0));
  P.DeltaWeight = Ctx.sample("deltaW", Distribution::uniform(0.2, 1.0));
  P.MeanNorm = Ctx.sampleInt("meanNorm", Distribution::uniformInt(0, 1)) != 0;
  P.VarNorm =
      Ctx.sample("varNorm", Distribution::uniform(0.0, 1.0)) < 0.3;
  P.Lifter = Ctx.sample("lifter", Distribution::uniform(0.8, 1.3));
  P.SilenceThresh = Ctx.sample("silence", Distribution::uniform(0.02, 0.12));
  P.DtwBand = static_cast<int>(
      Ctx.sampleInt("dtwBand", Distribution::uniformInt(4, 14)));
  P.LangWeight = Ctx.sample("langW", Distribution::uniform(0.0, 0.5));
  P.LengthPenalty = Ctx.sample("lenPen", Distribution::uniform(0.0, 0.05));
  P.SmoothAlpha = Ctx.sample("smooth", Distribution::uniform(0.0, 0.3));
  P.MatchExponent = Ctx.sample("matchExp", Distribution::uniform(0.8, 1.3));
  return P;
}

class SphinxApp : public TunedApp {
public:
  std::string name() const override { return "Speech Rec"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "MV"; }
  int numParams() const override { return 16; }

  void loadDataset(int Index) override {
    if (Full.Sets.empty())
      Full = speech::makeSpeechDataset(SphinxSeed);
    SetIndex = static_cast<size_t>(Index) % Full.Sets.size();
  }

  /// Correctly recognized utterances (0..5) of a transcript.
  double correctOf(const std::vector<int> &Words) const {
    const auto &Set = Full.Sets[SetIndex];
    if (Words.size() != Set.size())
      return 0;
    int Correct = 0;
    for (size_t U = 0; U != Set.size(); ++U)
      Correct += Words[U] == Set[U].TrueWord;
    return Correct;
  }

  double nativeQuality() override {
    return speech::recognizeSet(Full.Sets[SetIndex], Full.Vocab,
                                speech::SpeechParams());
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const speech::SpeechDataset *D = &Full;
    size_t Set = SetIndex;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 36;
    P.addStage<int, DecodeResult, std::vector<int>>(
        "recognize", S,
        std::function<std::optional<DecodeResult>(const int &,
                                                  SampleContext &)>(
            [D, Set](const int &,
                     SampleContext &Ctx) -> std::optional<DecodeResult> {
              speech::SpeechParams SP = speechParamsFrom(Ctx);
              DecodeResult R = decodeSet(D->Sets[Set], D->Vocab, SP);
              Ctx.setScore(R.MeanMargin);
              // All decodes vote (the paper's scoring-function-free MV).
              return R;
            }),
        std::function<
            std::unique_ptr<Aggregator<DecodeResult, std::vector<int>>>()>(
            [] { return std::make_unique<TranscriptVoteAggregator>(); }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty())
      Out.Quality = correctOf(Rep.finalAs<std::vector<int>>(0));
    else
      Out.Quality = nativeQuality();
    Out.TuneScore = Out.Quality;
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("preemph", 0.2, 0.7, 0.7);
    Space.addDouble("lowEdge", 0.0, 4.0, 0.0);
    Space.addDouble("highEdge", 11.0, 15.0, 15.0);
    Space.addInt("numFilters", 5, 12, 5);
    Space.addDouble("noiseFloor", 0.0, 0.08, 0.0);
    Space.addDouble("energyW", 0.2, 1.0, 0.5);
    Space.addDouble("deltaW", 0.2, 1.0, 0.2);
    Space.addBool("meanNorm", false);
    Space.addBool("varNorm", false);
    Space.addDouble("lifter", 0.8, 1.3, 1.0);
    Space.addDouble("silence", 0.02, 0.12, 0.02);
    Space.addInt("dtwBand", 4, 14, 4);
    Space.addDouble("langW", 0.0, 0.5, 0.0);
    Space.addDouble("lenPen", 0.0, 0.05, 0.02);
    Space.addDouble("smooth", 0.0, 0.3, 0.0);
    Space.addDouble("matchExp", 0.8, 1.3, 1.0);

    auto ParamsOf = [](const Config &C) {
      speech::SpeechParams P;
      P.Preemphasis = C.asDouble(0);
      P.LowEdge = C.asDouble(1);
      P.HighEdge = C.asDouble(2);
      P.NumFilters = static_cast<int>(C.asInt(3));
      P.NoiseFloor = C.asDouble(4);
      P.EnergyWeight = C.asDouble(5);
      P.DeltaWeight = C.asDouble(6);
      P.MeanNorm = C.asBool(7);
      P.VarNorm = C.asBool(8);
      P.Lifter = C.asDouble(9);
      P.SilenceThresh = C.asDouble(10);
      P.DtwBand = static_cast<int>(C.asInt(11));
      P.LangWeight = C.asDouble(12);
      P.LengthPenalty = C.asDouble(13);
      P.SmoothAlpha = C.asDouble(14);
      P.MatchExponent = C.asDouble(15);
      return P;
    };

    // OpenTuner extended with the same majority-vote aggregation.
    auto Agg = std::make_shared<TranscriptVoteAggregator>();
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Driver.run(
        Space,
        [&](const Config &C) {
          DecodeResult R =
              decodeSet(Full.Sets[SetIndex], Full.Vocab, ParamsOf(C));
          double Margin = R.MeanMargin;
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          SampleInfo Info;
          Agg->add(Info, std::move(R));
          return Margin;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = BudgetSeconds;
    std::vector<std::vector<int>> Voted = Agg->finish();
    Out.Quality = Voted.empty() ? nativeQuality() : correctOf(Voted[0]);
    Out.TuneScore = Out.Quality;
    return Out;
  }

private:
  speech::SpeechDataset Full;
  size_t SetIndex = 0;
};

//===----------------------------------------------------------------------===//
// SLIM Top-N recommender
//===----------------------------------------------------------------------===//

struct SlimResult {
  rec::SlimParams Params;
  double HitRate = 0;
};

class TopnApp : public TunedApp {
public:
  std::string name() const override { return "TOPN Rec"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "MAX"; }
  int numParams() const override { return 3; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    Data = rec::makeRatingData(TopnSeed, Index);
  }

  double nativeQuality() override {
    return rec::hitRateAtN(rec::trainSlim(Data, rec::SlimParams()), Data, 10);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const rec::RatingData *D = &Data;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 20;
    P.addStage<int, SlimResult, SlimResult>(
        "slim", S,
        std::function<std::optional<SlimResult>(const int &,
                                                SampleContext &)>(
            [D](const int &, SampleContext &Ctx) -> std::optional<SlimResult> {
              SlimResult Out;
              Out.Params.L1 =
                  Ctx.sample("l1", Distribution::logUniform(0.001, 10.0));
              Out.Params.L2 =
                  Ctx.sample("l2", Distribution::logUniform(0.01, 20.0));
              Out.Params.NeighborhoodSize = static_cast<int>(Ctx.sampleInt(
                  "nnbrs", Distribution::uniformInt(4, 50)));
              rec::SlimModel M = rec::trainSlim(*D, Out.Params);
              if (!Ctx.check(M.nonZeros() > 0))
                return std::nullopt;
              Out.HitRate = rec::hitRateAtN(M, *D, 10);
              Ctx.setScore(Out.HitRate);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<SlimResult, SlimResult>>()>(
            [] {
              return std::make_unique<BestScoreAggregator<SlimResult>>(false);
            }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      Out.Quality = Rep.finalAs<SlimResult>(0).HitRate;
      Out.TuneScore = Out.Quality;
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("l1", 0.001, 10.0, 0.1, true);
    Space.addDouble("l2", 0.01, 20.0, 0.5, true);
    Space.addInt("nnbrs", 4, 50, 20);
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          rec::SlimParams P;
          P.L1 = C.asDouble(0);
          P.L2 = C.asDouble(1);
          P.NeighborhoodSize = static_cast<int>(C.asInt(2));
          // Full execution: reload the rating matrix per sample.
          rec::RatingData Fresh = rec::makeRatingData(TopnSeed, DataIndex);
          double HR = rec::hitRateAtN(rec::trainSlim(Fresh, P), Fresh, 10);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return HR;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.Quality = Res.BestScore;
    Out.TuneScore = Res.BestScore;
    return Out;
  }

private:
  rec::RatingData Data;
  int DataIndex = 0;
};

//===----------------------------------------------------------------------===//
// METIS graph partitioner
//===----------------------------------------------------------------------===//

struct PartResult {
  gp::PartitionParams Params;
  double EdgeCut = 0;
};

class MetisApp : public TunedApp {
public:
  std::string name() const override { return "METIS"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "MAX"; }
  int numParams() const override { return 3; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    Planted = gp::makePlantedGraph(MetisSeed, Index);
  }

  double nativeQuality() override {
    gp::PartitionParams P;
    P.NumParts = 4;
    return gp::partition(Planted.G, P).EdgeCut;
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const gp::Graph *G = &Planted.G;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 20;
    P.addStage<int, PartResult, PartResult>(
        "partition", S,
        std::function<std::optional<PartResult>(const int &,
                                                SampleContext &)>(
            [G, Seed](const int &,
                      SampleContext &Ctx) -> std::optional<PartResult> {
              PartResult Out;
              Out.Params.NumParts = 4;
              Out.Params.CoarsenTo = static_cast<int>(Ctx.sampleInt(
                  "coarsenTo", Distribution::uniformInt(16, 160)));
              Out.Params.Imbalance =
                  Ctx.sample("imbalance", Distribution::uniform(0.01, 0.3));
              Out.Params.RefinePasses = static_cast<int>(Ctx.sampleInt(
                  "refinePasses", Distribution::uniformInt(0, 12)));
              Out.Params.Seed = Seed + static_cast<uint64_t>(Ctx.sampleIndex());
              gp::PartitionResult R = gp::partition(*G, Out.Params);
              if (!Ctx.check(R.BalanceRatio < 1.6))
                return std::nullopt;
              Out.EdgeCut = R.EdgeCut;
              Ctx.setScore(-Out.EdgeCut);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<PartResult, PartResult>>()>(
            [] {
              return std::make_unique<BestScoreAggregator<PartResult>>(false);
            }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      Out.Quality = Rep.finalAs<PartResult>(0).EdgeCut;
      Out.TuneScore = Out.Quality;
    } else {
      Out.Quality = nativeQuality();
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addInt("coarsenTo", 16, 160, 40);
    Space.addDouble("imbalance", 0.01, 0.3, 0.05);
    Space.addInt("refinePasses", 0, 12, 4);
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          gp::PartitionParams P;
          P.NumParts = 4;
          P.CoarsenTo = static_cast<int>(C.asInt(0));
          P.Imbalance = C.asDouble(1);
          P.RefinePasses = static_cast<int>(C.asInt(2));
          P.Seed = Seed;
          // Full execution: reload the graph per sample.
          gp::PlantedGraph Fresh = gp::makePlantedGraph(MetisSeed, DataIndex);
          double Cut = gp::partition(Fresh.G, P).EdgeCut;
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return Cut;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.Quality = Res.BestScore;
    Out.TuneScore = Res.BestScore;
    return Out;
  }

private:
  gp::PlantedGraph Planted;
  int DataIndex = 0;
};

//===----------------------------------------------------------------------===//
// Face recognition (eigenfaces)
//===----------------------------------------------------------------------===//

struct FaceResult {
  face::FaceParams Params;
  double ValidationError = 1.0;
};

class FaceApp : public TunedApp {
public:
  std::string name() const override { return "Face Rec"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "MIN"; }
  int numParams() const override { return 3; }

  void loadDataset(int Index) override {
    face::FaceDatasetOptions Opts;
    Opts.Identities = 20;
    Opts.NoiseLo = 0.15;
    Opts.NoiseHi = 0.30;
    Opts.VariationLo = 0.40;
    Opts.VariationHi = 0.80;
    Data = face::makeFaceDataset(FaceSeed, Index, Opts);
    // Validation split: first gallery image per id trains, second
    // validates (tuning never sees the probes).
    TrainSplit = face::FaceDataset();
    TrainSplit.NumIdentities = Data.NumIdentities;
    for (size_t G = 0; G != Data.Gallery.size(); ++G) {
      bool First = G % 2 == 0;
      if (First) {
        TrainSplit.Gallery.push_back(Data.Gallery[G]);
        TrainSplit.GalleryIds.push_back(Data.GalleryIds[G]);
      } else {
        TrainSplit.Probes.push_back(Data.Gallery[G]);
        TrainSplit.ProbeIds.push_back(Data.GalleryIds[G]);
      }
    }
  }

  double evalParams(const face::FaceParams &P) {
    return face::identificationError(face::trainEigenfaces(Data, P), Data);
  }

  double nativeQuality() override {
    // Factory configuration: few components, heavy preprocessing blur —
    // plausible defaults tuned for no dataset in particular.
    face::FaceParams Factory;
    Factory.NumComponents = 4;
    Factory.Metric = face::FaceMetric::L1;
    Factory.SmoothRadius = 3;
    return evalParams(Factory);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const face::FaceDataset *Split = &TrainSplit;
    Pipeline P;
    StageOptions S;
    S.NumSamples = 24;
    P.addStage<int, FaceResult, FaceResult>(
        "eigenfaces", S,
        std::function<std::optional<FaceResult>(const int &,
                                                SampleContext &)>(
            [Split](const int &,
                    SampleContext &Ctx) -> std::optional<FaceResult> {
              FaceResult Out;
              Out.Params.NumComponents = static_cast<int>(Ctx.sampleInt(
                  "numComponents", Distribution::uniformInt(1, 30)));
              Out.Params.Metric = static_cast<face::FaceMetric>(Ctx.sampleInt(
                  "metric", Distribution::uniformInt(0, 2)));
              Out.Params.SmoothRadius = static_cast<int>(Ctx.sampleInt(
                  "smoothRadius", Distribution::uniformInt(0, 3)));
              // Two-fold validation: train on each gallery half, test on
              // the other, average.
              face::FaceDataset Swapped;
              Swapped.NumIdentities = Split->NumIdentities;
              Swapped.Gallery = Split->Probes;
              Swapped.GalleryIds = Split->ProbeIds;
              Swapped.Probes = Split->Gallery;
              Swapped.ProbeIds = Split->GalleryIds;
              Out.ValidationError =
                  0.5 * (face::identificationError(
                             face::trainEigenfaces(*Split, Out.Params),
                             *Split) +
                         face::identificationError(
                             face::trainEigenfaces(Swapped, Out.Params),
                             Swapped));
              Ctx.setScore(-Out.ValidationError);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<FaceResult, FaceResult>>()>(
            [] {
              return std::make_unique<BestScoreAggregator<FaceResult>>(false);
            }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const FaceResult &Best = Rep.finalAs<FaceResult>(0);
      Out.TuneScore = Best.ValidationError;
      Out.Quality = evalParams(Best.Params);
    } else {
      Out.Quality = nativeQuality();
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addInt("numComponents", 1, 30, 12);
    Space.addEnum("metric", {"l1", "l2", "cosine"}, 1);
    Space.addInt("smoothRadius", 0, 3, 0);
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          face::FaceParams P;
          P.NumComponents = static_cast<int>(C.asInt(0));
          P.Metric = static_cast<face::FaceMetric>(C.asEnum(1));
          P.SmoothRadius = static_cast<int>(C.asInt(2));
          double Err = face::identificationError(
              face::trainEigenfaces(TrainSplit, P), TrainSplit);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return Err;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    face::FaceParams P;
    P.NumComponents = static_cast<int>(Res.Best.asInt(0));
    P.Metric = static_cast<face::FaceMetric>(Res.Best.asEnum(1));
    P.SmoothRadius = static_cast<int>(Res.Best.asInt(2));
    Out.Quality = evalParams(P);
    return Out;
  }

private:
  face::FaceDataset Data;
  face::FaceDataset TrainSplit;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makeSphinxApp() {
  auto App = std::make_unique<SphinxApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeTopnApp() {
  auto App = std::make_unique<TopnApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeMetisApp() {
  auto App = std::make_unique<MetisApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeFaceApp() {
  auto App = std::make_unique<FaceApp>();
  App->loadDataset(0);
  return App;
}
