//===- apps/AppsImage.cpp - Canny and Watershed tuned apps -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Canny follows the paper's Fig. 4 wiring: a Gaussian-smoothing region
// whose aggregation prunes improperly smoothed samples ([39]-style blur
// check) and splits one tuning process per surviving result, then an
// edge-traversal region whose sampled edge maps are majority-voted into
// the final image. Gradient + non-maximal suppression are parameter-free
// and therefore computed once per smoothing sample and reused by every
// stage-2 run — the white-box execution reuse the paper highlights.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "aggregate/Aggregators.h"
#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"
#include "image/Canny.h"
#include "image/Ssim.h"
#include "image/Synthetic.h"
#include "image/Watershed.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::img;

namespace {

constexpr uint64_t CannySeed = 7701;
constexpr uint64_t WatershedSeed = 7702;

/// Tuning-legal plausibility score of an edge mask (no ground truth):
/// penalizes empty/saturated results and rewards connected edges — the
/// paper's "very few or too many pixels" heuristic plus continuity.
double edgeHeuristic(const std::vector<uint8_t> &Mask, int W, int H) {
  double Frac = edgeFraction(Mask);
  if (Frac < 0.003 || Frac > 0.25)
    return -10.0 + Frac; // clearly poor
  // Continuity: fraction of edge pixels with 2+ edge neighbors.
  long Edges = 0, Connected = 0;
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      size_t I = static_cast<size_t>(Y) * W + X;
      if (!Mask[I])
        continue;
      ++Edges;
      int Neighbors = 0;
      for (int DY = -1; DY <= 1; ++DY)
        for (int DX = -1; DX <= 1; ++DX) {
          if (DX == 0 && DY == 0)
            continue;
          int NX = X + DX, NY = Y + DY;
          if (NX < 0 || NX >= W || NY < 0 || NY >= H)
            continue;
          Neighbors += Mask[static_cast<size_t>(NY) * W + NX];
        }
      Connected += Neighbors >= 2;
    }
  double Continuity =
      Edges ? static_cast<double>(Connected) / static_cast<double>(Edges) : 0;
  // Mild preference for moderate densities.
  double Density = -std::fabs(std::log(Frac / 0.04));
  return Continuity + 0.15 * Density;
}

//===----------------------------------------------------------------------===//
// Canny
//===----------------------------------------------------------------------===//

struct SmoothState {
  Image Suppressed; // gradient magnitude after NMS (parameter-free reuse)
  double Sigma = 0;
  double SharpnessRatio = 0;
};

class CannyApp : public TunedApp {
public:
  std::string name() const override { return "Canny"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "CUSTOM/MV"; }
  int numParams() const override { return 3; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    SceneOptions Opts;
    Opts.NoiseLo = 0.04;
    Opts.NoiseHi = 0.14;
    Opts.BlurHi = 1.6;
    TheScene = makeScene(CannySeed, Index, Opts);
  }

  double qualityOf(const std::vector<uint8_t> &Mask) const {
    return ssimMasks(Mask, TheScene.TrueEdges, TheScene.Picture.width(),
                     TheScene.Picture.height());
  }

  double nativeQuality() override {
    // The paper's Fig. 1 configuration (0.6, 0.5, 0.9): good for some
    // images, poor for others — which is the point.
    return qualityOf(canny(TheScene.Picture, 0.6, 0.5, 0.9));
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    int W = TheScene.Picture.width(), H = TheScene.Picture.height();
    double BaseSharpness = laplacianSharpness(TheScene.Picture);

    auto Votes = std::make_shared<VoteAccumulator>();
    auto BestHeur = std::make_shared<ScalarAccumulator>();

    Pipeline P;
    // Region 1: Gaussian smoothing, tuning sigma. AggregateGaussian
    // prunes badly smoothed samples and splits per survivor.
    StageOptions S1;
    S1.NumSamples = 24;
    P.addStage<Image, SmoothState, SmoothState>(
        "gaussian", S1,
        std::function<std::optional<SmoothState>(const Image &,
                                                 SampleContext &)>(
            [BaseSharpness](const Image &In,
                            SampleContext &Ctx) -> std::optional<SmoothState> {
              SmoothState Out;
              Out.Sigma = Ctx.sample("sigma", Distribution::uniform(0.2, 3.0));
              Image Smoothed = gaussianSmooth(In, Out.Sigma);
              Out.SharpnessRatio =
                  laplacianSharpness(Smoothed) / (BaseSharpness + 1e-12);
              // The [39]-style blur check: prune under- and over-smoothed
              // samples (paper prunes 78 of 200 here).
              if (!Ctx.check(Out.SharpnessRatio > 0.08 &&
                             Out.SharpnessRatio < 0.85))
                return std::nullopt;
              Out.Suppressed = nonMaxSuppress(sobel(Smoothed));
              Ctx.setScore(-std::fabs(Out.SharpnessRatio - 0.45));
              return Out;
            }),
        BatchAggregator<SmoothState, SmoothState>::Fn(
            [](std::vector<std::pair<SampleInfo, SmoothState>> &&Results) {
              std::sort(Results.begin(), Results.end(),
                        [](const auto &A, const auto &B) {
                          return std::fabs(A.second.SharpnessRatio - 0.45) <
                                 std::fabs(B.second.SharpnessRatio - 0.45);
                        });
              std::vector<SmoothState> Keep;
              for (auto &[Info, State] : Results) {
                if (Keep.size() == 4)
                  break;
                Keep.push_back(std::move(State));
              }
              return Keep; // paper @split: one tuning process each
            }));

    // Region 2: hysteresis edge traversal, tuning low/high; edge maps are
    // voted pixel-wise across every sample of every tuning process.
    StageOptions S2;
    S2.NumSamples = 20;
    P.addStage<SmoothState, int, int>(
        "hysteresis", S2,
        std::function<std::optional<int>(const SmoothState &,
                                         SampleContext &)>(
            [Votes, BestHeur, W, H](const SmoothState &In,
                                    SampleContext &Ctx) -> std::optional<int> {
              double Low = Ctx.sample("low", Distribution::uniform(0.05, 0.6));
              double High =
                  Ctx.sample("high", Distribution::uniform(0.3, 0.95));
              std::vector<uint8_t> Mask = hysteresis(In.Suppressed, Low, High);
              double Heur = edgeHeuristic(Mask, W, H);
              Ctx.setScore(Heur);
              if (!Ctx.check(Heur > -5.0))
                return std::nullopt;
              Votes->add(Mask); // incremental MV across all processes
              BestHeur->add(Heur);
              return 1;
            }),
        std::function<std::unique_ptr<Aggregator<int, int>>()>([] {
          return std::make_unique<BestScoreAggregator<int>>(false);
        }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(TheScene.Picture), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    Out.TuneScore = BestHeur->max();
    LastMask = Votes->runs() ? Votes->result(0.5)
                             : std::vector<uint8_t>(
                                   static_cast<size_t>(W) * H, 0);
    Out.Quality = qualityOf(LastMask);
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    int W = TheScene.Picture.width(), H = TheScene.Picture.height();
    ConfigSpace Space;
    Space.addDouble("sigma", 0.2, 3.0, 1.0);
    Space.addDouble("low", 0.05, 0.6, 0.3);
    Space.addDouble("high", 0.3, 0.95, 0.8);

    auto Votes = std::make_shared<VoteAccumulator>();
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          // A black-box sample is a full execution: load -> smooth ->
          // gradient -> NMS -> hysteresis every time.
          SceneOptions LoadOpts;
          LoadOpts.NoiseLo = 0.04;
          LoadOpts.NoiseHi = 0.14;
          LoadOpts.BlurHi = 1.6;
          Scene Fresh = makeScene(CannySeed, DataIndex, LoadOpts);
          std::vector<uint8_t> Mask =
              canny(Fresh.Picture, C.asDouble(0), C.asDouble(1),
                    C.asDouble(2));
          double Heur = edgeHeuristic(Mask, W, H);
          if (Heur > -5.0)
            Votes->add(Mask); // same voting aggregation as WBTuner
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return Heur;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    LastMask = Votes->runs() ? Votes->result(0.5)
                             : std::vector<uint8_t>(
                                   static_cast<size_t>(W) * H, 0);
    Out.Quality = qualityOf(LastMask);
    return Out;
  }

  const Scene &scene() const { return TheScene; }
  const std::vector<uint8_t> &lastMask() const { return LastMask; }

private:
  Scene TheScene;
  std::vector<uint8_t> LastMask;
  int DataIndex = 0;
};

//===----------------------------------------------------------------------===//
// Watershed
//===----------------------------------------------------------------------===//

struct SurfaceState {
  Image Surface; // smoothed gradient magnitude (reused by stage 2)
  double Sigma = 0;
};

/// Tuning-legal plausibility of a segmentation.
double segmentationHeuristic(const Segmentation &Seg) {
  if (Seg.NumBasins < 2 || Seg.NumBasins > 40)
    return -10.0;
  double BoundaryFrac = 0;
  for (int L : Seg.Labels)
    BoundaryFrac += L == 0;
  BoundaryFrac /= static_cast<double>(Seg.Labels.size());
  if (BoundaryFrac > 0.3)
    return -10.0;
  return -std::fabs(std::log(static_cast<double>(Seg.NumBasins) / 7.0)) -
         5.0 * BoundaryFrac;
}

class WatershedApp : public TunedApp {
public:
  std::string name() const override { return "Watershed"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "MV"; }
  int numParams() const override { return 3; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    TheScene = makeScene(WatershedSeed, Index);
  }

  double qualityOf(const std::vector<uint8_t> &Boundary) const {
    return boundaryF1(Boundary, TheScene.TrueEdges, TheScene.Picture.width(),
                      TheScene.Picture.height(), 2);
  }

  double nativeQuality() override {
    return qualityOf(
        watershed(TheScene.Picture, 1.0, 0.2, 10).boundaryMask());
  }

  /// Stage-2 sample result: one boundary mask plus its heuristic.
  struct MaskResult {
    std::vector<uint8_t> Mask;
    double Heur = 0;
  };

  /// Per-tuning-process aggregation: majority-vote the masks produced
  /// under one smoothing level; carry the mean heuristic so the final
  /// winner among tuning processes can be picked without ground truth.
  struct VotedMasks {
    std::vector<uint8_t> Mask;
    double MeanHeur = -1e18;
  };

  class PerTpVoteAggregator : public Aggregator<MaskResult, VotedMasks> {
  public:
    void add(const SampleInfo &, MaskResult &&R) override {
      Votes.add(R.Mask);
      HeurSum += R.Heur;
      ++Count;
    }
    std::vector<VotedMasks> finish() override {
      if (!Count)
        return {};
      VotedMasks Out;
      Out.Mask = Votes.result(0.5);
      Out.MeanHeur = HeurSum / Count;
      return {Out};
    }

  private:
    VoteAccumulator Votes;
    double HeurSum = 0;
    int Count = 0;
  };

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    int W = TheScene.Picture.width(), H = TheScene.Picture.height();

    Pipeline P;
    StageOptions S1;
    S1.NumSamples = 10;
    P.addStage<Image, SurfaceState, SurfaceState>(
        "smooth+gradient", S1,
        std::function<std::optional<SurfaceState>(const Image &,
                                                  SampleContext &)>(
            [](const Image &In,
               SampleContext &Ctx) -> std::optional<SurfaceState> {
              SurfaceState Out;
              Out.Sigma = Ctx.sample("sigma", Distribution::uniform(0.4, 2.5));
              Out.Surface =
                  sobel(gaussianSmooth(In, Out.Sigma)).Magnitude;
              double Peak = Out.Surface.maxValue();
              if (!Ctx.check(Peak > 0.05))
                return std::nullopt;
              Ctx.setScore(-std::fabs(Out.Sigma - 1.2));
              return Out;
            }),
        BatchAggregator<SurfaceState, SurfaceState>::Fn(
            [](std::vector<std::pair<SampleInfo, SurfaceState>> &&Results) {
              // Keep three diverse smoothing levels alive (@split).
              std::sort(Results.begin(), Results.end(),
                        [](const auto &A, const auto &B) {
                          return A.second.Sigma < B.second.Sigma;
                        });
              std::vector<SurfaceState> Keep;
              for (size_t I = 0; I < Results.size();
                   I += std::max<size_t>(1, Results.size() / 3))
                if (Keep.size() < 3)
                  Keep.push_back(std::move(Results[I].second));
              return Keep;
            }));

    StageOptions S2;
    S2.NumSamples = 16;
    P.addStage<SurfaceState, MaskResult, VotedMasks>(
        "markers+flood", S2,
        std::function<std::optional<MaskResult>(const SurfaceState &,
                                                SampleContext &)>(
            [](const SurfaceState &In,
               SampleContext &Ctx) -> std::optional<MaskResult> {
              double Depth =
                  Ctx.sample("markerDepth", Distribution::uniform(0.05, 0.5));
              int MinBasin = static_cast<int>(
                  Ctx.sampleInt("minBasin", Distribution::uniformInt(1, 80)));
              Segmentation Seg =
                  flood(In.Surface, extractMarkers(In.Surface, Depth),
                        MinBasin);
              MaskResult Out;
              Out.Heur = segmentationHeuristic(Seg);
              Ctx.setScore(Out.Heur);
              if (!Ctx.check(Out.Heur > -5.0))
                return std::nullopt;
              Out.Mask = Seg.boundaryMask();
              return Out;
            }),
        std::function<
            std::unique_ptr<Aggregator<MaskResult, VotedMasks>>()>(
            [] { return std::make_unique<PerTpVoteAggregator>(); }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(TheScene.Picture), RO);

    // Pick the smoothing level whose samples looked most plausible.
    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    const VotedMasks *Best = nullptr;
    for (const std::any &F : Rep.Finals) {
      const VotedMasks *V = std::any_cast<VotedMasks>(&F);
      if (V && (!Best || V->MeanHeur > Best->MeanHeur))
        Best = V;
    }
    if (Best) {
      Out.TuneScore = Best->MeanHeur;
      Out.Quality = qualityOf(Best->Mask);
    } else {
      Out.Quality = qualityOf(
          std::vector<uint8_t>(static_cast<size_t>(W) * H, 0));
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("sigma", 0.4, 2.5, 1.0);
    Space.addDouble("markerDepth", 0.05, 0.5, 0.2);
    Space.addInt("minBasin", 1, 80, 10);

    std::mutex Mutex;
    long Evals = 0;
    std::vector<uint8_t> BestMask;
    double BestHeur = -1e18;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          // Full execution: the image is loaded per sample.
          Scene Fresh = makeScene(WatershedSeed, DataIndex);
          Segmentation Seg =
              watershed(Fresh.Picture, C.asDouble(0), C.asDouble(1),
                        static_cast<int>(C.asInt(2)));
          double Heur = segmentationHeuristic(Seg);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          if (Heur > BestHeur) {
            BestHeur = Heur;
            BestMask = Seg.boundaryMask();
          }
          return Heur;
        },
        Opts);

    int W = TheScene.Picture.width(), H = TheScene.Picture.height();
    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    if (BestMask.empty())
      BestMask.assign(static_cast<size_t>(W) * H, 0);
    Out.Quality = qualityOf(BestMask);
    return Out;
  }

private:
  Scene TheScene;
  int DataIndex = 0;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makeCannyApp() {
  auto App = std::make_unique<CannyApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeWatershedApp() {
  auto App = std::make_unique<WatershedApp>();
  App->loadDataset(0);
  return App;
}
