//===- apps/AppsDrone.cpp - Ardupilot behavior-learning app ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Sec. V-B5 case study: tune the student ("Ardupilot")
// controller's 40 parameters so its motor-speed behavior mimics the
// reference ("PX4") controller. The white-box tuning regions are the
// individual flight-mode control functions — takeoff, cruise, land — each
// scored by the RMS motor-speed error of that mode only, which black-box
// tuning cannot express (one parameter bank per mode, partial-mission
// scores). Training flies the route mission; the reported quality is
// measured on the held-out zigzag test mission (paper Fig. 22).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"
#include "drone/Control.h"
#include "support/Timer.h"

#include <cmath>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::drone;

namespace {

/// Sampling ranges of the student gains (identical per mode).
StudentModeGains drawModeGains(SampleContext &Ctx, const char *Prefix) {
  auto Name = [&](const char *Field) {
    return std::string(Prefix) + "." + Field;
  };
  StudentModeGains G;
  G.PosP = Ctx.sample(Name("PosP"), Distribution::uniform(0.2, 2.5));
  G.VelP = Ctx.sample(Name("VelP"), Distribution::uniform(0.5, 4.0));
  G.VelI = Ctx.sample(Name("VelI"), Distribution::uniform(0.0, 1.0));
  G.VelD = Ctx.sample(Name("VelD"), Distribution::uniform(0.0, 0.3));
  G.AngP = Ctx.sample(Name("AngP"), Distribution::uniform(1.0, 8.0));
  G.RateP = Ctx.sample(Name("RateP"), Distribution::uniform(0.02, 0.3));
  G.RateI = Ctx.sample(Name("RateI"), Distribution::uniform(0.0, 0.3));
  G.RateD = Ctx.sample(Name("RateD"), Distribution::uniform(0.0, 0.02));
  G.ThrP = Ctx.sample(Name("ThrP"), Distribution::uniform(0.05, 0.4));
  G.ThrI = Ctx.sample(Name("ThrI"), Distribution::uniform(0.0, 0.2));
  G.MaxLean = Ctx.sample(Name("MaxLean"), Distribution::uniform(0.1, 0.6));
  G.MaxClimb = Ctx.sample(Name("MaxClimb"), Distribution::uniform(0.5, 4.0));
  G.MaxSpeed = Ctx.sample(Name("MaxSpeed"), Distribution::uniform(1.0, 8.0));
  return G;
}

struct DroneState {
  StudentParams Params;
  double LastModeError = 1.0;
};

class ArdupilotApp : public TunedApp {
public:
  std::string name() const override { return "Ardupilot"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "CUSTOM"; }
  int numParams() const override { return 40; }

  void loadDataset(int Index) override {
    (void)Index; // one physical world; missions are fixed
    ReferenceController Ref;
    RefTrain = fly(Ref, routeMission(), Model);
    Ref.reset();
    RefTest = fly(Ref, zigzagMission(), Model);
  }

  /// RMS motor error of the student on the training mission.
  double trainDistance(const StudentParams &P) const {
    StudentController C{P};
    return behaviorDistance(fly(C, routeMission(), Model), RefTrain);
  }

  double nativeQuality() override {
    StudentController C{StudentParams()};
    return behaviorDistance(fly(C, zigzagMission(), Model), RefTest);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    Pipeline P;
    const FlightTrace *Ref = &RefTrain;
    const QuadModel *M = &Model;

    // One tuning region per flight-mode control function. Each stage
    // samples only its mode's gain bank, flies the mission, and is scored
    // by that mode's motor RMS error alone.
    static const char *ModeNames[NumFlightModes] = {"takeoff", "cruise",
                                                    "land"};
    for (int Mode = 0; Mode != NumFlightModes; ++Mode) {
      StageOptions S;
      S.NumSamples = 14;
      P.addStage<DroneState, DroneState, DroneState>(
          ModeNames[Mode], S,
          std::function<std::optional<DroneState>(const DroneState &,
                                                  SampleContext &)>(
              [Ref, M, Mode](const DroneState &In,
                             SampleContext &Ctx) -> std::optional<DroneState> {
                DroneState Out = In;
                Out.Params.Mode[Mode] = drawModeGains(Ctx, ModeNames[Mode]);
                if (Mode == 0)
                  Out.Params.HoverThrottle = Ctx.sample(
                      "MOT_HOVER", Distribution::uniform(0.3, 0.7));
                StudentController C{Out.Params};
                FlightTrace Trace = fly(C, routeMission(), *M);
                std::vector<double> PerMode =
                    behaviorDistancePerMode(Trace, *Ref);
                double Err = PerMode[static_cast<size_t>(Mode)];
                if (Err < 0)
                  Err = 1.0; // the mode was never reached
                // Kill samples that crash the mission outright.
                if (!Ctx.check(Err < 0.9))
                  return std::nullopt;
                Out.LastModeError = Err;
                Ctx.setScore(-Err);
                return Out;
              }),
          std::function<
              std::unique_ptr<Aggregator<DroneState, DroneState>>()>([] {
            return std::make_unique<BestScoreAggregator<DroneState>>(false);
          }));
    }

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    DroneState Init;
    RunReport Rep = P.run(std::any(Init), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      LastTuned = Rep.finalAs<DroneState>(0).Params;
      Out.TuneScore = trainDistance(LastTuned);
      StudentController C{LastTuned};
      LastTestTrace = fly(C, zigzagMission(), Model);
      Out.Quality = behaviorDistance(LastTestTrace, RefTest);
    } else {
      Out.Quality = nativeQuality();
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    // All 40 parameters in one flat space; every sample is a whole
    // mission including "simulator startup" — the configuration the paper
    // explains cannot keep up.
    ConfigSpace Space;
    StudentParams Defaults;
    std::vector<double> Flat = Defaults.flatten();
    static const double Lo[13] = {0.2, 0.5, 0.0,  0.0, 1.0, 0.02, 0.0,
                                  0.0, 0.05, 0.0, 0.1, 0.5, 1.0};
    static const double Hi[13] = {2.5, 4.0, 1.0,  0.3, 8.0, 0.3, 0.3,
                                  0.02, 0.4, 0.2, 0.6, 4.0, 8.0};
    for (size_t I = 0; I != StudentParams::NumValues - 1; ++I)
      Space.addDouble(StudentParams::valueName(I), Lo[I % 13], Hi[I % 13],
                      Flat[I]);
    Space.addDouble("MOT_HOVER", 0.3, 0.7, Defaults.HoverThrottle);

    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          StudentParams P = StudentParams::unflatten(C.Values);
          double D = trainDistance(P);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return D;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    StudentParams P = StudentParams::unflatten(Res.Best.Values);
    StudentController C{P};
    Out.Quality = behaviorDistance(fly(C, zigzagMission(), Model), RefTest);
    return Out;
  }

  const QuadModel &model() const { return Model; }
  const FlightTrace &referenceTestTrace() const { return RefTest; }
  const FlightTrace &tunedTestTrace() const { return LastTestTrace; }
  const StudentParams &tunedParams() const { return LastTuned; }

private:
  QuadModel Model;
  FlightTrace RefTrain, RefTest;
  StudentParams LastTuned;
  FlightTrace LastTestTrace;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makeArdupilotApp() {
  auto App = std::make_unique<ArdupilotApp>();
  App->loadDataset(0);
  return App;
}

namespace wbt {
namespace apps {

/// Fig. 22 accessors (used by bench_drone).
DroneFig22Data droneFig22(TunedApp &App) {
  auto &A = static_cast<ArdupilotApp &>(App);
  DroneFig22Data Out;
  Out.Model = A.model();
  Out.Reference = A.referenceTestTrace();
  Out.Tuned = A.tunedTestTrace();
  StudentController Factory{StudentParams()};
  Out.Factory = fly(Factory, zigzagMission(), Out.Model);
  return Out;
}

} // namespace apps
} // namespace wbt
