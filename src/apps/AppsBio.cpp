//===- apps/AppsBio.cpp - Phylip and FASTA tuned apps ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Phylip follows paper Fig. 14: three tuning regions (transition model /
// distance matrix / tree fit) with duplicate-elimination aggregation
// after the first two — new tuning processes are spawned only for unique
// intermediate results — and MIN (sum of squares, the program's default
// scoring function) at the end. FASTA exploits the staged structure the
// other way: the ktup diagonal scan is parameter-free, so the white-box
// pipeline computes it once and reuses it for every gap-penalty sample,
// while the black-box baseline repeats it per full execution.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "aggregate/Aggregators.h"
#include "bio/Fasta.h"
#include "bio/Phylip.h"
#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <mutex>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::bio;

namespace {

constexpr uint64_t PhylipSeed = 7707;
constexpr uint64_t FastaSeed = 7708;

//===----------------------------------------------------------------------===//
// Phylip
//===----------------------------------------------------------------------===//

std::vector<double> flattenUpper(const std::vector<std::vector<double>> &M) {
  std::vector<double> Out;
  for (size_t I = 0; I != M.size(); ++I)
    for (size_t J = I + 1; J != M.size(); ++J)
      Out.push_back(M[I][J]);
  return Out;
}

struct EaseState {
  double Ease = 0.5;
  std::vector<double> ModelDistances; // for DEDUP
};

struct MatrixState {
  double Ease = 0.5, Invar = 0.0, Cvi = 0.0;
  std::vector<std::vector<double>> Matrix;
};

struct TreeState {
  MatrixState From;
  double Power = 2.0;
  TreeFit Fit;
};

/// Sum of squares normalized by the matrix's mean squared distance —
/// scale-invariant, so shrinking every distance cannot fake a good fit.
double relativeSS(const TreeFit &Fit,
                  const std::vector<std::vector<double>> &M) {
  double MeanSq = 0;
  long N = 0;
  for (size_t I = 0; I != M.size(); ++I)
    for (size_t J = I + 1; J != M.size(); ++J) {
      MeanSq += M[I][J] * M[I][J];
      ++N;
    }
  MeanSq = N ? MeanSq / N : 1.0;
  return Fit.SumOfSquares / (MeanSq * N + 1e-12);
}

/// DEDUP over committed states keyed by a flattened vector; keeps up to
/// \p MaxKeep unique representatives (paper: new tuning processes only
/// for unique matrices).
template <typename State>
class DedupAggregator : public Aggregator<State, State> {
public:
  DedupAggregator(std::function<std::vector<double>(const State &)> Key,
                  double Tolerance, size_t MaxKeep)
      : Key(std::move(Key)), Tolerance(Tolerance), MaxKeep(MaxKeep) {}

  void add(const SampleInfo &, State &&S) override {
    Buffer.push_back(std::move(S));
  }

  std::vector<State> finish() override {
    std::vector<std::vector<double>> Keys;
    Keys.reserve(Buffer.size());
    for (const State &S : Buffer)
      Keys.push_back(Key(S));
    std::vector<size_t> Reps = dedupVectors(Keys, Tolerance);
    std::vector<State> Out;
    for (size_t R : Reps) {
      if (Out.size() == MaxKeep)
        break;
      Out.push_back(std::move(Buffer[R]));
    }
    return Out;
  }

private:
  std::function<std::vector<double>(const State &)> Key;
  double Tolerance;
  size_t MaxKeep;
  std::vector<State> Buffer;
};

class PhylipApp : public TunedApp {
public:
  std::string name() const override { return "Phylip"; }
  bool lowerIsBetter() const override { return true; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "DEDUP/MIN"; }
  int numParams() const override { return 4; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    Data = makeSequenceDataset(PhylipSeed, Index);
  }

  double qualityOf(const TreeFit &Fit) const {
    return treeDistanceRmse(Fit.FittedDistances, Data.TrueDistances);
  }

  double nativeQuality() override {
    // Default knobs: JC distances, no rate corrections, power 0.
    TreeFit Fit = fitTree(distanceMatrix(Data.Leaves, 0.0, 0.0, 0.0), 0.0);
    return qualityOf(Fit);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const SequenceDataset *D = &Data;
    Pipeline P;

    // Region 1: transition-probability model (ease), DEDUP.
    StageOptions S1;
    S1.NumSamples = 8;
    P.addStage<int, EaseState, EaseState>(
        "transition-model", S1,
        std::function<std::optional<EaseState>(const int &, SampleContext &)>(
            [D](const int &, SampleContext &Ctx) -> std::optional<EaseState> {
              EaseState Out;
              Out.Ease = Ctx.sample("ease", Distribution::uniform(0.0, 1.0));
              Out.ModelDistances = flattenUpper(
                  distanceMatrix(D->Leaves, Out.Ease, 0.0, 0.0));
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<EaseState, EaseState>>()>(
            [] {
              return std::make_unique<DedupAggregator<EaseState>>(
                  [](const EaseState &S) { return S.ModelDistances; },
                  /*Tolerance=*/0.02, /*MaxKeep=*/3);
            }));

    // Region 3 (stage 2 here): distance matrix (invarfrac, cvi), DEDUP.
    StageOptions S2;
    S2.NumSamples = 10;
    P.addStage<EaseState, MatrixState, MatrixState>(
        "distance-matrix", S2,
        std::function<std::optional<MatrixState>(const EaseState &,
                                                 SampleContext &)>(
            [D](const EaseState &In,
                SampleContext &Ctx) -> std::optional<MatrixState> {
              MatrixState Out;
              Out.Ease = In.Ease;
              Out.Invar =
                  Ctx.sample("invarfrac", Distribution::uniform(0.0, 0.4));
              Out.Cvi = Ctx.sample("cvi", Distribution::uniform(0.0, 1.2));
              Out.Matrix =
                  distanceMatrix(D->Leaves, Out.Ease, Out.Invar, Out.Cvi);
              return Out;
            }),
        std::function<
            std::unique_ptr<Aggregator<MatrixState, MatrixState>>()>([] {
          return std::make_unique<DedupAggregator<MatrixState>>(
              [](const MatrixState &S) { return flattenUpper(S.Matrix); },
              /*Tolerance=*/0.03, /*MaxKeep=*/3);
        }));

    // Region 5 (stage 3): tree fit (power), MIN sum of squares.
    StageOptions S3;
    S3.NumSamples = 8;
    P.addStage<MatrixState, TreeState, TreeState>(
        "tree-fit", S3,
        std::function<std::optional<TreeState>(const MatrixState &,
                                               SampleContext &)>(
            [](const MatrixState &In,
               SampleContext &Ctx) -> std::optional<TreeState> {
              TreeState Out;
              Out.From = In;
              Out.Power = Ctx.sample("power", Distribution::uniform(0.0, 3.0));
              Out.Fit = fitTree(In.Matrix, Out.Power);
              Ctx.setScore(-relativeSS(Out.Fit, In.Matrix));
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<TreeState, TreeState>>()>(
            [] {
              return std::make_unique<BestScoreAggregator<TreeState>>(false);
            }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    // Several tuning processes finish (one per surviving matrix); take
    // the tree with the lowest sum of squares — the default scoring
    // function.
    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    const TreeState *Best = nullptr;
    double BestRss = 0;
    for (const std::any &F : Rep.Finals) {
      const TreeState *S = std::any_cast<TreeState>(&F);
      if (!S)
        continue;
      double Rss = relativeSS(S->Fit, S->From.Matrix);
      if (!Best || Rss < BestRss) {
        Best = S;
        BestRss = Rss;
      }
    }
    if (Best) {
      Out.TuneScore = BestRss;
      Out.Quality = qualityOf(Best->Fit);
    } else {
      Out.Quality = nativeQuality();
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("ease", 0.0, 1.0, 0.0);
    Space.addDouble("invarfrac", 0.0, 0.4, 0.0);
    Space.addDouble("cvi", 0.0, 1.2, 0.0);
    Space.addDouble("power", 0.0, 3.0, 0.0);
    std::mutex Mutex;
    long Evals = 0;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Opts.Minimize = true;
    bb::DriverResult Res = Driver.run(
        Space,
        [&](const Config &C) {
          // A black-box sample is a full execution: it reloads the
          // sequences and recomputes the whole pipeline.
          SequenceDataset Fresh = makeSequenceDataset(PhylipSeed, DataIndex);
          auto M = distanceMatrix(Fresh.Leaves, C.asDouble(0), C.asDouble(1),
                                  C.asDouble(2));
          TreeFit Fit = fitTree(M, C.asDouble(3));
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          return relativeSS(Fit, M);
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = Res.Seconds;
    Out.TuneScore = Res.BestScore;
    TreeFit Fit = fitTree(
        distanceMatrix(Data.Leaves, Res.Best.asDouble(0),
                       Res.Best.asDouble(1), Res.Best.asDouble(2)),
        Res.Best.asDouble(3));
    Out.Quality = qualityOf(Fit);
    return Out;
  }

private:
  SequenceDataset Data;
  int DataIndex = 0;
};

//===----------------------------------------------------------------------===//
// FASTA
//===----------------------------------------------------------------------===//

struct DiagonalState {
  std::vector<int> Diagonals; // best diagonal per subject
  std::vector<long> Hits;
};

struct GapResult {
  double GapOpen = -4, GapExtend = -1;
  std::vector<double> Scores;
  double Contrast = 0;
};

/// Tuning-legal score separation heuristic: how bimodal the score
/// distribution looks (planted homologs should separate from background).
double scoreContrast(std::vector<double> Scores) {
  if (Scores.size() < 4)
    return 0;
  std::sort(Scores.begin(), Scores.end(), std::greater<>());
  size_t Top = std::max<size_t>(1, Scores.size() * 3 / 10);
  std::vector<double> High(Scores.begin(),
                           Scores.begin() + static_cast<long>(Top));
  std::vector<double> Low(Scores.begin() + static_cast<long>(Top),
                          Scores.end());
  double Spread = stddev(Scores) + 1e-9;
  return (mean(High) - mean(Low)) / Spread;
}

class FastaApp : public TunedApp {
public:
  std::string name() const override { return "FASTA"; }
  bool lowerIsBetter() const override { return false; }
  const char *samplingName() const override { return "RAND"; }
  const char *aggregationName() const override { return "CUSTOM"; }
  int numParams() const override { return 2; }

  void loadDataset(int Index) override {
    DataIndex = Index;
    FastaDatasetOptions Opts;
    Opts.MutationLo = 0.18;
    Opts.MutationHi = 0.32;
    Opts.RegionFracLo = 0.15;
    Opts.RegionFracHi = 0.35;
    Opts.IndelRate = 0.05;
    Data = makeFastaDataset(FastaSeed, Index, Opts);
  }

  double qualityOf(const std::vector<double> &Scores) const {
    return rankingQuality(Scores, Data.IsHomolog);
  }

  double nativeQuality() override {
    FastaParams P; // defaults
    std::vector<double> Scores;
    for (const Sequence &S : Data.Database)
      Scores.push_back(fastaScore(Data.Query, S, P));
    return qualityOf(Scores);
  }

  TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) override {
    Timer T;
    const FastaDataset *D = &Data;
    Pipeline P;

    // Region 1: the parameter-free ktup diagonal scan, computed once and
    // reused by every stage-2 sample (the expensive preprocessing the
    // paper's black-box baseline must repeat).
    StageOptions S1;
    S1.NumSamples = 1;
    P.addStage<int, DiagonalState, DiagonalState>(
        "diagonal-scan", S1,
        std::function<std::optional<DiagonalState>(const int &,
                                                   SampleContext &)>(
            [D](const int &, SampleContext &) -> std::optional<DiagonalState> {
              DiagonalState Out;
              FastaParams FP;
              for (const Sequence &S : D->Database) {
                long Hits = 0;
                Out.Diagonals.push_back(
                    bestDiagonal(D->Query, S, FP.Ktup, Hits));
                Out.Hits.push_back(Hits);
              }
              return Out;
            }),
        std::function<
            std::unique_ptr<Aggregator<DiagonalState, DiagonalState>>()>([] {
          return std::make_unique<BestScoreAggregator<DiagonalState>>(false);
        }));

    // Region 2: gap penalties over the banded alignment only.
    StageOptions S2;
    S2.NumSamples = 30;
    P.addStage<DiagonalState, GapResult, GapResult>(
        "banded-align", S2,
        std::function<std::optional<GapResult>(const DiagonalState &,
                                               SampleContext &)>(
            [D](const DiagonalState &In,
                SampleContext &Ctx) -> std::optional<GapResult> {
              GapResult Out;
              Out.GapOpen =
                  Ctx.sample("gapOpen", Distribution::uniform(-10.0, -0.5));
              Out.GapExtend =
                  Ctx.sample("gapExtend", Distribution::uniform(-3.0, -0.1));
              FastaParams FP;
              FP.GapOpen = Out.GapOpen;
              FP.GapExtend = Out.GapExtend;
              for (size_t I = 0; I != D->Database.size(); ++I)
                Out.Scores.push_back(
                    In.Hits[I] == 0
                        ? 0.0
                        : bandedAlign(D->Query, D->Database[I],
                                      In.Diagonals[I], FP));
              Out.Contrast = scoreContrast(Out.Scores);
              Ctx.setScore(Out.Contrast);
              return Out;
            }),
        std::function<std::unique_ptr<Aggregator<GapResult, GapResult>>()>(
            [] {
              return std::make_unique<BestScoreAggregator<GapResult>>(false);
            }));

    RunOptions RO;
    RO.Workers = Workers;
    RO.Seed = Seed;
    RunReport Rep = P.run(std::any(0), RO);

    TuneOutcome Out;
    Out.Samples = Rep.TotalSamples;
    Out.Seconds = T.seconds();
    if (!Rep.Finals.empty()) {
      const GapResult &Best = Rep.finalAs<GapResult>(0);
      Out.TuneScore = Best.Contrast;
      Out.Quality = qualityOf(Best.Scores);
    }
    return Out;
  }

  TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                           uint64_t Seed) override {
    ConfigSpace Space;
    Space.addDouble("gapOpen", -10.0, -0.5, -4.0);
    Space.addDouble("gapExtend", -3.0, -0.1, -1.0);
    std::mutex Mutex;
    long Evals = 0;
    std::vector<double> BestScores;
    double BestContrast = -1e18;
    bb::SearchDriver Driver;
    bb::DriverOptions Opts;
    Opts.TimeBudgetSeconds = BudgetSeconds;
    Opts.Workers = Workers;
    Opts.Seed = Seed;
    Driver.run(
        Space,
        [&](const Config &C) {
          FastaParams FP;
          FP.GapOpen = C.asDouble(0);
          FP.GapExtend = C.asDouble(1);
          // Full execution: reload the database, rescan diagonals, align.
          FastaDatasetOptions LoadOpts;
          LoadOpts.MutationLo = 0.18;
          LoadOpts.MutationHi = 0.32;
          LoadOpts.RegionFracLo = 0.15;
          LoadOpts.RegionFracHi = 0.35;
          LoadOpts.IndelRate = 0.05;
          FastaDataset Fresh = makeFastaDataset(FastaSeed, DataIndex, LoadOpts);
          std::vector<double> Scores;
          for (const Sequence &S : Data.Database)
            Scores.push_back(fastaScore(Data.Query, S, FP));
          double Contrast = scoreContrast(Scores);
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Evals;
          if (Contrast > BestContrast) {
            BestContrast = Contrast;
            BestScores = std::move(Scores);
          }
          return Contrast;
        },
        Opts);

    TuneOutcome Out;
    Out.Samples = Evals;
    Out.Seconds = BudgetSeconds;
    Out.TuneScore = BestContrast;
    if (!BestScores.empty())
      Out.Quality = qualityOf(BestScores);
    return Out;
  }

private:
  FastaDataset Data;
  int DataIndex = 0;
};

} // namespace

std::unique_ptr<TunedApp> wbt::apps::makePhylipApp() {
  auto App = std::make_unique<PhylipApp>();
  App->loadDataset(0);
  return App;
}

std::unique_ptr<TunedApp> wbt::apps::makeFastaApp() {
  auto App = std::make_unique<FastaApp>();
  App->loadDataset(0);
  return App;
}
