//===- apps/Apps.h - The paper's 13 tuned programs --------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One TunedApp per benchmark program of paper Table I. Every app knows
/// how to (a) load one of its seeded datasets, (b) report the untuned
/// (native) result quality, (c) tune itself white-box through the staged
/// engine (core/Pipeline.h) using only tuning-legal signals (internal
/// heuristics, validation scores — never the ground truth), and (d) tune
/// itself black-box through the OpenTuner-style baseline under a time
/// budget. Quality numbers returned for reporting are measured against
/// each dataset's planted ground truth, exactly like the paper's
/// methodology (Sec. V-A).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_APPS_APPS_H
#define WBT_APPS_APPS_H

#include "drone/Control.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wbt {
namespace apps {

/// Result of one tuning run.
struct TuneOutcome {
  /// Ground-truth quality of the tuned result, in the app's score units
  /// (direction given by TunedApp::lowerIsBetter()).
  double Quality = 0.0;
  /// The internal score tuning optimized (heuristic / validation).
  double TuneScore = 0.0;
  /// Sampling runs (white-box) or full executions (black-box).
  long Samples = 0;
  double Seconds = 0.0;
};

/// A tunable benchmark program.
class TunedApp {
public:
  virtual ~TunedApp();

  virtual std::string name() const = 0;
  /// Direction of the Quality metric.
  virtual bool lowerIsBetter() const = 0;
  /// Table I columns 5-6.
  virtual const char *samplingName() const = 0;
  virtual const char *aggregationName() const = 0;
  virtual int numParams() const = 0;

  /// Loads (generates) dataset \p Index; all later calls refer to it.
  virtual void loadDataset(int Index) = 0;

  /// Quality with the program's default parameters, no tuning.
  virtual double nativeQuality() = 0;

  /// White-box tuning with the staged engine.
  virtual TuneOutcome whiteBoxTune(unsigned Workers, uint64_t Seed) = 0;

  /// Black-box tuning with the OpenTuner-style baseline under a
  /// wall-clock budget. \p Workers > 1 enables parallel sampling (the
  /// paper's multi-core extension).
  virtual TuneOutcome blackBoxTune(double BudgetSeconds, unsigned Workers,
                                   uint64_t Seed) = 0;
};

std::unique_ptr<TunedApp> makeCannyApp();
std::unique_ptr<TunedApp> makeWatershedApp();
std::unique_ptr<TunedApp> makeKmeansApp();
std::unique_ptr<TunedApp> makeDbscanApp();
std::unique_ptr<TunedApp> makeFaceApp();
std::unique_ptr<TunedApp> makeSphinxApp();
std::unique_ptr<TunedApp> makePhylipApp();
std::unique_ptr<TunedApp> makeFastaApp();
std::unique_ptr<TunedApp> makeTopnApp();
std::unique_ptr<TunedApp> makeMetisApp();
std::unique_ptr<TunedApp> makeC45App();
std::unique_ptr<TunedApp> makeSvmApp();
std::unique_ptr<TunedApp> makeArdupilotApp();

/// All 13, in Table I order.
std::vector<std::unique_ptr<TunedApp>> makeAllApps();

//===----------------------------------------------------------------------===//
// Case-study accessors used by the figure benches.
//===----------------------------------------------------------------------===//

/// SVM without cross-validation — the paper Fig. 17 overfitting ablation.
std::unique_ptr<TunedApp> makeSvmAppNoCv();

/// (training error, testing error) of the last white-box tuned SVM model;
/// only valid on apps created by makeSvmApp()/makeSvmAppNoCv().
std::pair<double, double> svmLastErrors(TunedApp &App);

/// Traces behind paper Fig. 22; only valid on makeArdupilotApp() apps
/// after whiteBoxTune().
struct DroneFig22Data {
  drone::QuadModel Model;
  drone::FlightTrace Reference; ///< PX4 on the zigzag test mission
  drone::FlightTrace Factory;   ///< untuned Ardupilot
  drone::FlightTrace Tuned;     ///< Ardupilot after behavior learning
};
DroneFig22Data droneFig22(TunedApp &App);

} // namespace apps
} // namespace wbt

#endif // WBT_APPS_APPS_H
