//===- semantics/Machine.cpp - Small-step interpreter of Fig. 8 -----------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "semantics/Machine.h"

#include <cassert>

using namespace wbt;
using namespace wbt::sem;

Machine::Machine(std::vector<Stmt> Program, uint64_t Seed)
    : Program(std::move(Program)), SchedRng(Seed), Seed(Seed) {
  auto Root = std::make_unique<Process>();
  Root->Pid = NextPid++;
  Root->Mode = Process::ModeKind::Tuning;
  Root->TheDelta = std::make_shared<Delta>();
  Root->ProcRng = Rng(Seed ^ 0xabcdefULL);
  Procs.push_back(std::move(Root));
}

const Process &Machine::process(int Pid) const {
  assert(Pid >= 0 && static_cast<size_t>(Pid) < Procs.size() && "bad pid");
  return *Procs[Pid];
}

Process &Machine::process(int Pid) {
  assert(Pid >= 0 && static_cast<size_t>(Pid) < Procs.size() && "bad pid");
  return *Procs[Pid];
}

std::vector<int> Machine::livePids() const {
  std::vector<int> Out;
  for (const auto &P : Procs)
    if (P->Status != Process::StatusKind::Terminated)
      Out.push_back(P->Pid);
  return Out;
}

const Delta &Machine::deltaOf(int Pid) const { return *process(Pid).TheDelta; }

bool Machine::regionChildrenDone(const Process &P) const {
  for (int Pid : P.RegionChildren)
    if (Procs[Pid]->Status != Process::StatusKind::Terminated)
      return false;
  return true;
}

bool Machine::regionChildrenAllAtBarrierOrDone(const Process &P) const {
  for (int Pid : P.RegionChildren) {
    Process::StatusKind S = Procs[Pid]->Status;
    if (S != Process::StatusKind::AtBarrier &&
        S != Process::StatusKind::Terminated)
      return false;
  }
  return true;
}

bool Machine::runnable(const Process &P) const {
  if (P.Status == Process::StatusKind::Terminated)
    return false;
  if (P.Status == Process::StatusKind::AtBarrier)
    return false; // released by the tuning process
  if (P.PC >= Program.size())
    return true; // steps into termination
  const Stmt &S = Program[P.PC];
  if (P.isTuning() && S.K == Stmt::Kind::Aggregate)
    return regionChildrenDone(P);
  if (P.isTuning() && S.K == Stmt::Kind::Sync && !P.RegionChildren.empty())
    return regionChildrenAllAtBarrierOrDone(P);
  return true;
}

void Machine::terminate(Process &P) {
  P.Status = Process::StatusKind::Terminated;
}

int Machine::spawn(Process &Parent, Process::ModeKind Mode, int SampleIndex,
                   std::shared_ptr<Delta> D, size_t PC) {
  auto Child = std::make_unique<Process>();
  Child->Pid = NextPid++;
  Child->Mode = Mode;
  Child->SampleIndex = SampleIndex;
  Child->ParentPid = Parent.Pid;
  Child->Sigma = Parent.Sigma; // fork copies the regular store
  Child->TheDelta = std::move(D);
  Child->PC = PC;
  Child->ProcRng =
      Rng((Seed + 0x9e3779b9ULL * (Child->Pid + 1)) ^ 0x5eedULL);
  int Pid = Child->Pid;
  Procs.push_back(std::move(Child));
  return Pid;
}

bool Machine::step() {
  std::vector<int> Ready;
  for (const auto &P : Procs)
    if (runnable(*P))
      Ready.push_back(P->Pid);
  if (Ready.empty())
    return false;
  Process &P = *Procs[Ready[SchedRng.index(Ready.size())]];
  execute(P);
  return true;
}

size_t Machine::run(size_t MaxSteps) {
  size_t Steps = 0;
  while (step()) {
    ++Steps;
    assert(Steps < MaxSteps && "program did not quiesce");
  }
  return Steps;
}

bool Machine::stuck() const {
  if (!livePids().empty()) {
    for (const auto &P : Procs)
      if (runnable(*P))
        return false;
    return true;
  }
  return false;
}

void Machine::execute(Process &P) {
  if (P.PC >= Program.size()) {
    Trace.push_back(std::to_string(P.Pid) + ":end");
    terminate(P);
    return;
  }
  const Stmt &S = Program[P.PC];
  switch (S.K) {
  case Stmt::Kind::Assign:
    P.Sigma[S.X] = S.Expr(P.Sigma);
    Trace.push_back(std::to_string(P.Pid) + ":assign " + S.X);
    ++P.PC;
    return;

  case Stmt::Kind::Sampling: {
    // Rule [SAMPLING]: a no-op in sampling mode.
    if (P.isSampling()) {
      Trace.push_back(std::to_string(P.Pid) + ":sampling-nop");
      ++P.PC;
      return;
    }
    P.RegionChildren.clear();
    for (int I = 0; I != S.N; ++I) {
      int Pid = spawn(P, Process::ModeKind::Sampling, I, P.TheDelta,
                      P.PC + 1);
      P.RegionChildren.insert(Pid);
      if (S.Cb)
        S.Cb(*this, *Procs[Pid]); // invoke(cbStrgy) in the child
    }
    if (S.Cb)
      S.Cb(*this, P); // the tuning continuation also invokes cbStrgy
    Trace.push_back(std::to_string(P.Pid) + ":sampling " +
                    std::to_string(S.N));
    ++P.PC;
    return;
  }

  case Stmt::Kind::Aggregate:
    if (P.isSampling()) {
      // Rule [AGGR-S]: commit sigma(x) into the aggregation store slot of
      // this sample run, then terminate.
      P.TheDelta->Aggregated[S.X][P.SampleIndex] = P.Sigma[S.X];
      Trace.push_back(std::to_string(P.Pid) + ":commit " + S.X);
      terminate(P);
      return;
    }
    // Rule [AGGR-T]: children of the region are all terminated (the
    // scheduler guarantees it); invoke cbAggr.
    if (S.Cb)
      S.Cb(*this, P);
    P.RegionChildren.clear();
    Trace.push_back(std::to_string(P.Pid) + ":aggregate " + S.X);
    ++P.PC;
    return;

  case Stmt::Kind::Sample:
    // Rule [SAMPLE] only applies to sampling processes.
    if (P.isSampling()) {
      P.Sigma[S.X] = S.Dist(*this, P);
      Trace.push_back(std::to_string(P.Pid) + ":sample " + S.X);
    } else {
      Trace.push_back(std::to_string(P.Pid) + ":sample-nop");
    }
    ++P.PC;
    return;

  case Stmt::Kind::Split: {
    // Rule [SPLIT]: fresh empty delta for the child tuning process.
    assert(P.isTuning() && "rule [SPLIT] applies to tuning processes only");
    int Pid = spawn(P, Process::ModeKind::Tuning, -1,
                    std::make_shared<Delta>(), P.PC + 1);
    Trace.push_back(std::to_string(P.Pid) + ":split -> " +
                    std::to_string(Pid));
    ++P.PC;
    return;
  }

  case Stmt::Kind::Sync:
    if (P.isSampling()) {
      // Rule [SYNC-S]: notify parent, wait for release.
      P.Status = Process::StatusKind::AtBarrier;
      Trace.push_back(std::to_string(P.Pid) + ":barrier");
      return;
    }
    // Rule [SYNC-T]: every live child has arrived; run cbBarrier and
    // release them.
    if (S.Cb)
      S.Cb(*this, P);
    for (int Pid : P.RegionChildren) {
      Process &C = *Procs[Pid];
      if (C.Status == Process::StatusKind::AtBarrier) {
        C.Status = Process::StatusKind::Ready;
        ++C.PC;
      }
    }
    Trace.push_back(std::to_string(P.Pid) + ":sync-release");
    ++P.PC;
    return;

  case Stmt::Kind::Check:
    // Rule [CHECK] only applies to sampling processes.
    if (P.isSampling() && !S.Pred(*this, P)) {
      Pruned.push_back(P.Pid);
      Trace.push_back(std::to_string(P.Pid) + ":pruned");
      terminate(P);
      return;
    }
    Trace.push_back(std::to_string(P.Pid) + ":check-pass");
    ++P.PC;
    return;

  case Stmt::Kind::Expose:
    // Rule [EXPOSE] applies to tuning processes.
    if (P.isTuning()) {
      P.TheDelta->Exposed[S.X] = P.Sigma[S.X];
      Trace.push_back(std::to_string(P.Pid) + ":expose " + S.X);
    } else {
      Trace.push_back(std::to_string(P.Pid) + ":expose-nop");
    }
    ++P.PC;
    return;

  case Stmt::Kind::Load:
    if (P.isTuning()) {
      auto It = P.TheDelta->Exposed.find(S.X);
      P.Sigma[S.Y] = It == P.TheDelta->Exposed.end() ? 0.0 : It->second;
      Trace.push_back(std::to_string(P.Pid) + ":load " + S.X);
    } else {
      Trace.push_back(std::to_string(P.Pid) + ":load-nop");
    }
    ++P.PC;
    return;

  case Stmt::Kind::LoadS:
    if (P.isTuning()) {
      auto It = P.TheDelta->Aggregated.find(S.X);
      Value V = 0.0;
      if (It != P.TheDelta->Aggregated.end()) {
        auto JT = It->second.find(S.N);
        if (JT != It->second.end())
          V = JT->second;
      }
      P.Sigma[S.Y] = V;
      Trace.push_back(std::to_string(P.Pid) + ":loadS " + S.X);
    } else {
      Trace.push_back(std::to_string(P.Pid) + ":loadS-nop");
    }
    ++P.PC;
    return;

  case Stmt::Kind::Guard:
    if (S.Pred(*this, P)) {
      Trace.push_back(std::to_string(P.Pid) + ":guard-taken");
      ++P.PC;
    } else {
      Trace.push_back(std::to_string(P.Pid) + ":guard-skip");
      P.PC += 2;
    }
    return;
  }
}
