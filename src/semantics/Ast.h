//===- semantics/Ast.h - Statement AST for the formal semantics -*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement language of paper Fig. 8. Programs are straight-line
/// sequences of assignments and tuning primitives (plus a small `guard`
/// extension so conditional @split sites — like line 9 of the paper's
/// Fig. 4 — can be expressed). The Machine (semantics/Machine.h) executes
/// them by the paper's small-step rules.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SEMANTICS_AST_H
#define WBT_SEMANTICS_AST_H

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace wbt {
namespace sem {

/// Values are numbers; rich payloads are out of scope for the semantics.
using Value = double;
/// The regular store sigma: Var -> Value.
using Store = std::map<std::string, Value>;

class Machine;
struct Process;

/// cbStrgy / cbAggr / cbBarrier: a callback with full access to the
/// machine and the invoking process.
using Callback = std::function<void(Machine &, Process &)>;
/// cbDist: produces a sample value for the invoking process.
using DistCallback = std::function<Value(Machine &, Process &)>;
/// cbChk / guard predicates.
using PredCallback = std::function<bool(Machine &, Process &)>;

/// One statement of Fig. 8 (plus Guard).
struct Stmt {
  enum class Kind {
    Assign,    ///< x := Expr(sigma)
    Sampling,  ///< @sampling(n, cbStrgy)
    Aggregate, ///< @aggregate(x, cbAggr)
    Sample,    ///< @sample(x, cbDist)
    Split,     ///< @split()
    Sync,      ///< @sync(cbBarrier)
    Check,     ///< @check(cbChk)
    Expose,    ///< @expose(x)
    Load,      ///< y = @load(x)
    LoadS,     ///< y = @loadS(x, i)
    Guard,     ///< if !pred, skip the next statement
  };

  Kind K;
  std::string X; ///< primary variable operand
  std::string Y; ///< destination for Load/LoadS
  int N = 0;     ///< sample count (Sampling) or index (LoadS)
  std::function<Value(const Store &)> Expr;
  Callback Cb;
  DistCallback Dist;
  PredCallback Pred;
};

/// Builders, so programs read like the paper's examples.
inline Stmt assign(std::string X, std::function<Value(const Store &)> Expr) {
  Stmt S;
  S.K = Stmt::Kind::Assign;
  S.X = std::move(X);
  S.Expr = std::move(Expr);
  return S;
}

inline Stmt assignConst(std::string X, Value V) {
  return assign(std::move(X), [V](const Store &) { return V; });
}

inline Stmt sampling(int N, Callback CbStrgy = nullptr) {
  Stmt S;
  S.K = Stmt::Kind::Sampling;
  S.N = N;
  S.Cb = std::move(CbStrgy);
  return S;
}

inline Stmt aggregate(std::string X, Callback CbAggr = nullptr) {
  Stmt S;
  S.K = Stmt::Kind::Aggregate;
  S.X = std::move(X);
  S.Cb = std::move(CbAggr);
  return S;
}

inline Stmt sample(std::string X, DistCallback CbDist) {
  Stmt S;
  S.K = Stmt::Kind::Sample;
  S.X = std::move(X);
  S.Dist = std::move(CbDist);
  return S;
}

inline Stmt split() {
  Stmt S;
  S.K = Stmt::Kind::Split;
  return S;
}

inline Stmt sync(Callback CbBarrier = nullptr) {
  Stmt S;
  S.K = Stmt::Kind::Sync;
  S.Cb = std::move(CbBarrier);
  return S;
}

inline Stmt check(PredCallback CbChk) {
  Stmt S;
  S.K = Stmt::Kind::Check;
  S.Pred = std::move(CbChk);
  return S;
}

inline Stmt expose(std::string X) {
  Stmt S;
  S.K = Stmt::Kind::Expose;
  S.X = std::move(X);
  return S;
}

inline Stmt load(std::string Y, std::string X) {
  Stmt S;
  S.K = Stmt::Kind::Load;
  S.Y = std::move(Y);
  S.X = std::move(X);
  return S;
}

inline Stmt loadS(std::string Y, std::string X, int I) {
  Stmt S;
  S.K = Stmt::Kind::LoadS;
  S.Y = std::move(Y);
  S.X = std::move(X);
  S.N = I;
  return S;
}

inline Stmt guard(PredCallback Pred) {
  Stmt S;
  S.K = Stmt::Kind::Guard;
  S.Pred = std::move(Pred);
  return S;
}

} // namespace sem
} // namespace wbt

#endif // WBT_SEMANTICS_AST_H
