//===- semantics/Machine.h - Small-step interpreter of Fig. 8 ---*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable form of the paper's operational semantics (Fig. 8). Each
/// simulated process carries its regular store sigma, an execution mode
/// T<pid> or S<pid>, and a program counter into the shared statement list.
/// The sample store delta (exposed store + aggregation store) is shared
/// between a tuning process and the sampling children it spawns; an
/// @split child starts with a fresh, empty delta — exactly the
/// spawn(sigma, {}, T<newPid()>, s) of rule [SPLIT].
///
/// Two rules are tightened the way the implementation section (paper
/// Sec. III-B) describes, since the paper's rules leave the ordering to
/// the runtime: [AGGR-T] blocks until every child of the current region
/// has terminated, and [SYNC-T] waits only for children that are still
/// alive.
///
/// Scheduling among runnable processes is pseudo-random but fully
/// determined by the machine's seed, which makes schedule-independence
/// properties testable: run the same program under many seeds and demand
/// identical final stores.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SEMANTICS_MACHINE_H
#define WBT_SEMANTICS_MACHINE_H

#include "semantics/Ast.h"
#include "support/Rng.h"

#include <memory>
#include <set>

namespace wbt {
namespace sem {

/// The sample store delta of Fig. 8: exposed store plus aggregation store.
struct Delta {
  /// Exposed store: Var -> Value.
  std::map<std::string, Value> Exposed;
  /// Aggregation store: Var -> (sample index -> Value).
  std::map<std::string, std::map<int, Value>> Aggregated;
};

/// One simulated process.
struct Process {
  enum class ModeKind { Tuning, Sampling };
  enum class StatusKind {
    Ready,      ///< can take a step
    AtBarrier,  ///< S: arrived at @sync, waiting for release
    Terminated, ///< finished (committed, pruned, or ran off the program)
  };

  int Pid = 0;
  ModeKind Mode = ModeKind::Tuning;
  StatusKind Status = StatusKind::Ready;
  /// Index within the spawning region (S processes), -1 otherwise.
  int SampleIndex = -1;
  int ParentPid = -1;
  Store Sigma;
  std::shared_ptr<Delta> TheDelta;
  size_t PC = 0;
  /// Children of the current @sampling region (tuning processes).
  std::set<int> RegionChildren;
  /// Per-process deterministic stream for cbDist callbacks.
  Rng ProcRng{0};

  bool isTuning() const { return Mode == ModeKind::Tuning; }
  bool isSampling() const { return Mode == ModeKind::Sampling; }
};

/// Executes a program under the Fig. 8 rules.
class Machine {
public:
  /// \p Program is shared by all processes; the root tuning process (pid
  /// 0) starts at statement 0 with an empty sigma and empty delta.
  explicit Machine(std::vector<Stmt> Program, uint64_t Seed = 1);

  /// Takes one small step on a scheduler-chosen runnable process.
  /// \returns false when no process can step (all terminated, or stuck).
  bool step();

  /// Runs to quiescence. \returns the number of steps taken; asserts if
  /// MaxSteps is exhausted (runaway program).
  size_t run(size_t MaxSteps = 1000000);

  /// True if live processes remain but none can step (deadlock).
  bool stuck() const;

  //===--------------------------------------------------------------------===
  // Inspection
  //===--------------------------------------------------------------------===

  const Process &process(int Pid) const;
  Process &process(int Pid);
  /// Pids of processes not yet terminated.
  std::vector<int> livePids() const;
  size_t totalSpawned() const { return Procs.size(); }

  /// The delta a process observes (shared with its region family).
  const Delta &deltaOf(int Pid) const;

  /// Every terminated-by-check process (for prune accounting in tests).
  const std::vector<int> &prunedPids() const { return Pruned; }

  /// Human-readable event log: "pid:action" per executed step.
  const std::vector<std::string> &trace() const { return Trace; }

private:
  bool runnable(const Process &P) const;
  void execute(Process &P);
  void terminate(Process &P);
  int spawn(Process &Parent, Process::ModeKind Mode, int SampleIndex,
            std::shared_ptr<Delta> D, size_t PC);
  bool regionChildrenDone(const Process &P) const;
  bool regionChildrenAllAtBarrierOrDone(const Process &P) const;

  std::vector<Stmt> Program;
  std::vector<std::unique_ptr<Process>> Procs;
  std::vector<int> Pruned;
  std::vector<std::string> Trace;
  Rng SchedRng;
  uint64_t Seed;
  int NextPid = 0;
};

} // namespace sem
} // namespace wbt

#endif // WBT_SEMANTICS_MACHINE_H
