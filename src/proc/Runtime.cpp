//===- proc/Runtime.cpp - Fork-based WBTuner runtime ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "proc/Runtime.h"

#include "inject/Sys.h"
#include "net/AgentChannel.h"
#include "net/LeaseServer.h"
#include "net/MetricsEndpoint.h"
#include "obs/TraceExporter.h"
#include "proc/SharedControl.h"
#include "strategy/SamplingStrategy.h"

#include <dirent.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string_view>

using namespace wbt;
using namespace wbt::proc;

namespace {

uint64_t mixSeed(uint64_t X, uint64_t Y) {
  uint64_t Z = X + 0x9e3779b97f4a7c15ULL * (Y + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

bool makeDir(const std::string &Path) { return sys::makeDir(Path); }

/// makeDir for directories the runtime can survive without (per-region
/// stores, split tp dirs): failure is reported, not fatal — commits
/// into the missing directory fail cleanly and read as absent.
void makeDirOrWarn(const std::string &Path) {
  if (!makeDir(Path))
    std::fprintf(stderr, "wbtuner: cannot create directory %s: %s\n",
                 Path.c_str(), std::strerror(errno));
}

std::atomic<uint64_t> GRemoveFailures{0};

void warnRemoveFailure(const std::string &Path) {
  GRemoveFailures.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "wbtuner: cannot remove %s: %s\n", Path.c_str(),
               std::strerror(errno));
}

/// Depth-first removal of one entry; returns how many entries could not
/// be removed. Failures are warned and counted, and the walk continues
/// past them — one undeletable entry must not strand its siblings. (An
/// earlier nftw(3)-based walk stopped at the first failing callback and
/// discarded nftw's return value, so a single EACCES leaked the rest of
/// the run directory without a word.) Symlinks are never followed; the
/// depth cap bounds pathological nesting under the run dir.
uint64_t removeTreeRec(const std::string &Path, int Depth) {
  struct stat St;
  if (lstat(Path.c_str(), &St) != 0) {
    if (errno == ENOENT)
      return 0;
    warnRemoveFailure(Path);
    return 1;
  }
  uint64_t Failures = 0;
  if (S_ISDIR(St.st_mode) && Depth < 64) {
    DIR *D = sys::openDir(Path.c_str());
    if (!D) {
      warnRemoveFailure(Path);
      return 1;
    }
    std::vector<std::string> Names;
    while (dirent *E = readdir(D)) {
      std::string_view Name(E->d_name);
      if (Name != "." && Name != "..")
        Names.emplace_back(Name);
    }
    closedir(D);
    for (const std::string &Name : Names)
      Failures += removeTreeRec(Path + "/" + Name, Depth + 1);
  }
  if (sys::removePath(Path.c_str()) != 0 && errno != ENOENT) {
    warnRemoveFailure(Path);
    ++Failures;
  }
  return Failures;
}

/// Recursively removes \p Path with a direct depth-first traversal — no
/// shell, no quoting, no extra fork on the teardown path. Returns false
/// when some entry survived (already warned and counted).
bool removeTree(const std::string &Path) {
  return removeTreeRec(Path, 0) == 0;
}

std::string sampleFilePath(const std::string &RegionDir,
                           const std::string &Var, int I) {
  return RegionDir + "/" + Var + "." + std::to_string(I);
}

/// CLOCK_MONOTONIC now, in seconds.
double monoNow() {
  timespec T;
  clock_gettime(CLOCK_MONOTONIC, &T);
  return static_cast<double>(T.tv_sec) +
         static_cast<double>(T.tv_nsec) * 1e-9;
}

/// CLOCK_MONOTONIC deadline \p Ms from now, for the monotonic-clock
/// condvars (SharedLock::init).
timespec monoDeadlineIn(int Ms) {
  timespec T;
  clock_gettime(CLOCK_MONOTONIC, &T);
  T.tv_sec += Ms / 1000;
  T.tv_nsec += static_cast<long>(Ms % 1000) * 1000000L;
  if (T.tv_nsec >= 1000000000L) {
    T.tv_nsec -= 1000000000L;
    ++T.tv_sec;
  }
  return T;
}

/// Spare parking commands (ChildSlot::Command).
enum SpareCommand : int32_t { SpPark = 0, SpActivate = 1, SpDiscard = 2 };

/// Lifecycle of one sample lease in a worker-pool region. Terminal states
/// translate to SampleStatus when the region resolves.
enum LeaseState : int32_t {
  LsPending = 0, // not yet claimed
  LsClaimed,     // a worker is running it
  LsReturned,    // orphaned by a dead worker; awaiting re-claim
  LsCommitted,
  LsPruned,
  LsCrashed,
  LsTimedOut,
  LsForkFailed, // no worker ever existed to run it
};

/// A worker re-runs an orphaned lease at most once: the original attempt
/// plus one retry. A lease whose second owner also dies is Crashed — the
/// sample itself is the likely killer.
constexpr int32_t MaxLeaseAttempts = 2;

SampleStatus leaseSampleStatus(int32_t Ls) {
  switch (Ls) {
  case LsCommitted:
    return SampleStatus::Committed;
  case LsPruned:
    return SampleStatus::Pruned;
  case LsTimedOut:
    return SampleStatus::TimedOut;
  case LsForkFailed:
    return SampleStatus::ForkFailed;
  default:
    // LsCrashed, plus any non-terminal state that slipped through (the
    // settle loop should have retired them all): count it as a crash
    // rather than pretend the sample ran.
    return SampleStatus::Crashed;
  }
}

/// Thrown inside a pool worker to unwind one lease's body invocation —
/// check() pruning the lease, or aggregate() after the commit — and
/// caught in workerLoop(), which then claims the next index.
struct LeaseEnd {};

} // namespace

namespace wbt {
namespace proc {

/// Supervision record of one sampling child. Lives in the per-region
/// MAP_SHARED child table, so both the child and the supervising tuning
/// process see it. The SlotHeld/BarrierLeft flags carry cleanup ownership:
/// whoever wins the atomic exchange performs the release, which makes pool
/// slot and barrier reclamation exactly-once even when the supervisor
/// reclaims on behalf of a child that died mid-exit.
struct ChildSlot {
  std::atomic<int32_t> Pid;
  std::atomic<int32_t> SlotHeld;    // 1 while a pool slot is owned
  std::atomic<int32_t> BarrierLeft; // 1 once the barrier has been left
  std::atomic<int32_t> InBarrier;   // 1 while blocked in @sync
  std::atomic<int32_t> Status;      // SampleStatus
  std::atomic<int32_t> Signal;
  std::atomic<int32_t> Command;     // SpareCommand (spares only)
  std::atomic<int32_t> CurrentLease; // claimed sample index, -1 between
                                     // leases (pool workers only)
};

/// Per-sample lease record of a worker-pool region. Lives in the shared
/// child table after the worker slots; the supervisor and every worker
/// see the same state machine (LeaseState).
struct LeaseCell {
  std::atomic<int32_t> State;    // LeaseState
  std::atomic<int32_t> Signal;   // terminating signal of a crashed owner
  std::atomic<int32_t> Attempts; // times a worker started this lease
};

/// Header of the per-region shared child table; ChildSlot[NumSlots]
/// follows it in memory, then LeaseCell[NumLeases] in pool mode.
struct RegionTable {
  SharedLock ParkLock; // spare parking: guards Command + wakes spares
  int32_t NumMains;
  int32_t NumSlots;  // mains + spares (pool mode: workers + respawns)
  int32_t PoolMode;  // 1 for samplingRegion() regions
  int32_t NumLeases; // sample count N (pool mode only)
  std::atomic<int32_t> LeasesReturned; // LsReturned cells awaiting re-claim
  // Pipelined batches (regionBatch): the lease table spans BatchCount
  // regions of BatchN samples each; lease Idx belongs to region
  // BatchBase + Idx / BatchN at local sample index Idx % BatchN.
  // Non-batched regions set BatchCount = 1 and BatchN = NumLeases so
  // the mapping degenerates to the identity.
  int32_t BatchCount;
  int32_t BatchN;
  uint64_t BatchBase;
  // Workers may only run leases below this bound; the supervisor raises
  // it (under ParkLock) as deliveries complete, which is what caps the
  // number of in-flight regions at Pipeline.
  std::atomic<int64_t> ClaimLimit;
};

} // namespace proc
} // namespace wbt

static ChildSlot *slotsOf(RegionTable *T) {
  return reinterpret_cast<ChildSlot *>(T + 1);
}

static LeaseCell *leasesOf(RegionTable *T) {
  return reinterpret_cast<LeaseCell *>(slotsOf(T) + T->NumSlots);
}

static SampleStatus statusOf(const ChildSlot &S) {
  return static_cast<SampleStatus>(S.Status.load(std::memory_order_relaxed));
}

uint64_t proc::removeTreeFailures() {
  return GRemoveFailures.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Zygote board
//===----------------------------------------------------------------------===//

namespace {

/// Zygote-board commands (ZygoteBoard::Command).
enum ZygoteCommand : int32_t { ZbRun = 0, ZbExit = 1 };

/// Sample capacity of the zygote board's embedded region table; regions
/// with more samples fall back to forked pool workers.
constexpr int ZygoteLeaseCap = 4096;

/// Shared rendezvous of the zygote nursery. Lives in the opaque tail of
/// the control-block mapping (SharedControl::auxRegion), so every
/// zygote — forked once, at nursery spawn — sees it at the same address
/// for the whole run. A RegionTable with room for
/// ChildSlot[Zygotes + ZygoteLeaseCap] + LeaseCell[ZygoteLeaseCap]
/// follows in memory: each zygote region points Runtime::Table at it,
/// so the entire pool supervision machinery (sweeps, crash/timeout
/// lease reclaim, respawns, straggler kills) runs unchanged on top.
struct ZygoteBoard {
  SharedLock Lock; ///< guards Generation/Command; wakes parked zygotes
  std::atomic<uint64_t> Generation;
  std::atomic<int32_t> Command; ///< ZygoteCommand
  // Region snapshot of the current generation — the tuned-parameter
  // state a woken zygote restores. Published before the Generation bump
  // (under Lock) that wakes the nursery.
  uint64_t Region;
  int32_t N;
  int32_t Kind;
  int32_t LeaseSlot;
  int32_t BarrierSlot;
};

RegionTable *zygoteTableOf(ZygoteBoard *B) {
  return reinterpret_cast<RegionTable *>(B + 1);
}

size_t zygoteBoardBytes(int Zygotes) {
  return sizeof(ZygoteBoard) + sizeof(RegionTable) +
         (static_cast<size_t>(Zygotes) + ZygoteLeaseCap) * sizeof(ChildSlot) +
         static_cast<size_t>(ZygoteLeaseCap) * sizeof(LeaseCell);
}

} // namespace

//===----------------------------------------------------------------------===//
// Region readers (aggregation-store backends)
//===----------------------------------------------------------------------===//

namespace {

/// StoreBackend::Files: one file per (variable, child) under the cached
/// region directory. Readers are built only after every child of the
/// region is reaped, so one readdir(3) pass at construction sees the
/// complete store; has() then answers from the in-memory index instead
/// of an access(2) per call, which kept @loadS-heavy aggregation
/// callbacks — and every Shm-backend fallback miss — quadratic in
/// filesystem round-trips.
class FileRegionReader : public RegionReader {
public:
  explicit FileRegionReader(std::string InDir) : Dir(std::move(InDir)) {
    DIR *D = opendir(Dir.c_str());
    if (!D)
      return;
    while (dirent *E = readdir(D)) {
      // Commit files are named "<var>.<child>"; anything else in the
      // directory (".", "..", an unrenamed ".tmp" of a writer killed
      // mid-commit) has a non-numeric suffix and is skipped.
      std::string_view Name(E->d_name);
      size_t Dot = Name.rfind('.');
      if (Dot == std::string_view::npos || Dot == 0 ||
          Dot + 1 == Name.size())
        continue;
      int Child = 0;
      bool Numeric = true;
      for (size_t I = Dot + 1; I != Name.size(); ++I) {
        if (Name[I] < '0' || Name[I] > '9') {
          Numeric = false;
          break;
        }
        Child = Child * 10 + (Name[I] - '0');
      }
      if (!Numeric)
        continue;
      Index[std::string(Name.substr(0, Dot))].insert(Child);
    }
    closedir(D);
  }

  bool has(const std::string &Var, int I) const override {
    auto It = Index.find(Var);
    return It != Index.end() && It->second.count(I);
  }
  bool load(const std::string &Var, int I,
            std::vector<uint8_t> &Out) const override {
    if (!has(Var, I))
      return false;
    return readFileBytes(sampleFilePath(Dir, Var, I), Out);
  }

private:
  std::string Dir;
  std::map<std::string, std::set<int>> Index;
};

/// StoreBackend::Shm: index of the region's published slab records,
/// built with one scan when the region barrier resolves. Payload
/// pointers reference the shared mapping (valid for the Runtime's
/// lifetime). Misses fall through to the file reader, which covers the
/// oversized-payload and slab-overflow fallbacks. Slab recycling can
/// retire this view's records after the fact: the reader snapshots the
/// slab epoch at construction, and once the epoch moves on it answers
/// from the file store alone (the documented degradation for views that
/// outlive their region — see DESIGN.md, slab recycling).
class ShmRegionReader : public RegionReader {
public:
  ShmRegionReader(const SharedControl &InCtl, uint64_t Tp, uint64_t Region,
                  size_t SlabStart, int NumSlots, std::string Dir)
      : Ctl(&InCtl), Epoch(InCtl.slabEpoch()), Files(std::move(Dir)) {
    SlabEntryView E;
    for (size_t Idx = SlabStart, End = InCtl.slabAllocated(); Idx != End;
         ++Idx) {
      if (!InCtl.slabEntry(Idx, E))
        continue;
      if (E.Tp != Tp || E.Region != Region || E.Child < 0 ||
          E.Child >= NumSlots)
        continue;
      // Map overwrite = last commit wins, matching the file backend.
      Entries[std::string(E.Name)][E.Child] = {E.Data, E.Size};
    }
  }

  bool has(const std::string &Var, int I) const override {
    if (fresh()) {
      auto It = Entries.find(Var);
      if (It != Entries.end() && It->second.count(I))
        return true;
    }
    return Files.has(Var, I);
  }
  bool load(const std::string &Var, int I,
            std::vector<uint8_t> &Out) const override {
    if (fresh()) {
      auto It = Entries.find(Var);
      if (It != Entries.end()) {
        auto Jt = It->second.find(I);
        if (Jt != It->second.end()) {
          Out.assign(Jt->second.first, Jt->second.first + Jt->second.second);
          return true;
        }
      }
    }
    return Files.load(Var, I, Out);
  }

private:
  /// The cached payload pointers are valid only while the slab epoch they
  /// were scanned under is still current; slabRecycle() invalidates them
  /// wholesale by bumping the epoch.
  bool fresh() const { return Ctl->slabEpoch() == Epoch; }

  const SharedControl *Ctl;
  uint64_t Epoch;
  std::map<std::string, std::map<int, std::pair<const uint8_t *, uint32_t>>>
      Entries;
  FileRegionReader Files;
};

} // namespace

//===----------------------------------------------------------------------===//
// AggregationView
//===----------------------------------------------------------------------===//

int AggregationView::countStatus(SampleStatus S) const {
  int N = 0;
  for (const SampleRecord &R : Records)
    N += R.Status == S;
  return N;
}

std::vector<int> AggregationView::committed(const std::string &Var) const {
  // The status table answers "did child I commit?" without touching the
  // store backend; the presence check then only runs for Committed
  // children (distinguishing the aggregate() variable from commitExtra()
  // variables a given child may not have written).
  std::vector<int> Out;
  for (int I = 0, E = spawned(); I != E; ++I)
    if (Records[I].Status == SampleStatus::Committed && Store->has(Var, I))
      Out.push_back(I);
  return Out;
}

bool AggregationView::loadBytes(const std::string &Var, int I,
                                std::vector<uint8_t> &Out) const {
  return Store->load(Var, I, Out);
}

double AggregationView::loadDouble(const std::string &Var, int I,
                                   double Default) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return Default;
  return decodeDouble(Bytes, Default);
}

std::vector<double> AggregationView::loadDoubles(const std::string &Var,
                                                 int I) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return {};
  return decodeVector<double>(Bytes);
}

std::vector<uint8_t> AggregationView::loadMask(const std::string &Var,
                                               int I) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return {};
  return decodeVector<uint8_t>(Bytes);
}

//===----------------------------------------------------------------------===//
// Runtime
//===----------------------------------------------------------------------===//

Runtime &Runtime::get() {
  static Runtime Instance;
  return Instance;
}

void Runtime::init(const RuntimeOptions &InOpts) {
  assert(!Inited && "proc runtime initialized twice");
  Opts = InOpts;

  // Arm fault injection before the first wrapped syscall, so init's own
  // mkdtemp/mkdir calls are injectable. A malformed plan is a hard
  // error: silently running without the requested faults would make a
  // soak run vacuously green.
  std::string PlanText = Opts.InjectPlan;
  if (PlanText.empty()) {
    const char *Env = getenv("WBT_INJECT");
    if (Env && *Env)
      PlanText = Env;
  }
  if (!PlanText.empty()) {
    std::string Err;
    if (!inject::armText(PlanText, Err))
      sys::fatal("bad WBT_INJECT plan: %s", Err.c_str());
  } else {
    inject::disarm();
  }

  // Run-directory failures here were previously assert()s, which
  // compile out under NDEBUG and let execution continue with a garbage
  // RunDir; every store write of the run then lands nowhere. Fail
  // loudly in all build types instead.
  if (Opts.RunDir.empty()) {
    // Respect TMPDIR like the mktemp(3) family does; /tmp is the
    // fallback, not the policy.
    const char *Tmp = getenv("TMPDIR");
    std::string Templ =
        std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/wbtuner.XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    char *Dir = sys::makeTempDir(Buf.data());
    if (!Dir)
      sys::fatal("mkdtemp %s failed: %s", Templ.c_str(),
                 std::strerror(errno));
    Opts.RunDir = Dir;
  } else if (!makeDir(Opts.RunDir)) {
    sys::fatal("cannot create run directory %s: %s", Opts.RunDir.c_str(),
               std::strerror(errno));
  }
  if (!makeDir(Opts.RunDir + "/exposed"))
    sys::fatal("cannot create exposed store %s/exposed: %s",
               Opts.RunDir.c_str(), std::strerror(errno));

  // Tracing is opt-in: RuntimeOptions::TracePath, or WBT_TRACE for runs
  // that cannot change code. Off means the ring is not even mapped and
  // every tracepoint is one predictable untaken branch.
  TracePathEff = Opts.TracePath;
  if (TracePathEff.empty()) {
    const char *Env = getenv("WBT_TRACE");
    if (Env && *Env)
      TracePathEff = Env;
  }
  TraceOn = !TracePathEff.empty();

  Ctl = std::make_unique<SharedControl>();
  SlabConfig Slab;
  if (Opts.Backend == StoreBackend::Shm) {
    Slab.Records = Opts.ShmSlabRecords;
    Slab.ArenaBytes = Opts.ShmSlabBytes;
  } else {
    Slab.Records = 0; // Files backend: no slab at all
    Slab.ArenaBytes = 0;
  }
  Slab.HugePages = Opts.HugePages;
  TraceConfig Trace;
  Trace.Records = TraceOn ? Opts.TraceRingRecords : 0;
  size_t AuxBytes =
      Opts.Zygotes > 0 ? zygoteBoardBytes(static_cast<int>(Opts.Zygotes)) : 0;
  Ctl->init(Opts.MaxPool, Opts.VoteSlots, Opts.UseScheduler, Slab, Trace,
            AuxBytes);
  if (AuxBytes) {
    auto *B = static_cast<ZygoteBoard *>(Ctl->auxRegion());
    B->Lock.init();
    zygoteTableOf(B)->ParkLock.init();
  }

  Inited = true;
  IsRoot = true;
  Mode = ModeKind::Tuning;
  TpId = 0;
  TpDir = Opts.RunDir + "/tp0";
  if (!makeDir(TpDir))
    sys::fatal("cannot create tuning-process directory %s: %s",
               TpDir.c_str(), std::strerror(errno));
  TheRng = Rng(mixSeed(Opts.Seed, 0));
  // Reset per-run state so a root that called finish() can init() again
  // in the same process (backend equivalence tests, benchmarks).
  RegionCounter = 0;
  RegionActive = false;
  SplitChildren.clear();
  Reaped.clear();
  NumSpares = 0;
  RegionDirPath.clear();
  RegionSlabStart = 0;
  RegionShmStart = 0;
  std::fill(std::begin(RegionFallbackStart), std::end(RegionFallbackStart),
            0);
  FoldScalars.clear();
  FoldVotes.clear();
  FoldMeanVecs.clear();
  FoldedPairs.clear();
  RegionIsPool = false;
  RegionWorkers = 0;
  LeaseSlot = -1;
  LeaseIndex = -1;
  RespawnsUsed = 0;
  RegionBody = nullptr;
  PoolWorker = false;
  WorkerIndex = -1;
  BatchActive = false;
  BatchRegions = 0;
  BatchN = 0;
  BatchBase = 0;
  ZygotesSpawned = false;
  NumZygotes = 0;
  ZygotePids.clear();
  ZygoteRespawnsLeft = 0;
  RegionIsZygote = false;
  NetServer.reset();
  NetAgentPids.clear();
  NetSpawned = false;
  NetAgentMode = false;
  AgentVars.clear();
  AgentCommitted = false;
  // Distributed sampling: open the lease server now so its port exists
  // before any region; the agent processes themselves are forked lazily
  // at the first worker-pool region (like the zygote nursery, so the
  // region body is part of the forked image). A listen failure is not
  // fatal — the run degrades to local-only sampling.
  if (Opts.NetAgents > 0) {
    net::LeaseServer::Callbacks CB;
    CB.Claim = [this](uint32_t Want) { return netClaimLeases(Want); };
    CB.Commit = [this](const net::LeaseResult &R) { netApplyCommit(R); };
    CB.Return = [this](int64_t Lease) { return netReturnLease(Lease); };
    CB.Trace = [this](obs::EventKind Kind, uint64_t A, uint64_t B) {
      traceEmit(Kind, A, B);
    };
    CB.TraceSink = [this](std::vector<obs::TraceEvent> &&Evs) {
      // Agent trace batches arrive already rebased onto our clock; merge
      // them straight into the root's drained-event pool for export.
      if (TraceOn)
        TraceBuf.insert(TraceBuf.end(), Evs.begin(), Evs.end());
    };
    auto Srv = std::make_unique<net::LeaseServer>(std::move(CB));
    if (Srv->listen(Opts.NetListenAddress))
      NetServer = std::move(Srv);
    else
      std::fprintf(stderr,
                   "wbtuner: lease server cannot listen on %s: %s; "
                   "running local-only\n",
                   Opts.NetListenAddress.c_str(), std::strerror(errno));
  }
  // Live telemetry plane: the scrape endpoint shares the supervisor's
  // poll cadence (no thread of its own). The address comes from the
  // option or, when unset, the WBT_METRICS environment knob; a listen
  // failure degrades to running without a scrape surface, like the
  // lease server above.
  MetricsEp.reset();
  AgentTraceBuf.clear();
  RegionT0 = 0;
  {
    std::string MAddr = Opts.MetricsAddress;
    if (MAddr.empty()) {
      if (const char *Env = std::getenv("WBT_METRICS"))
        MAddr = Env;
    }
    if (!MAddr.empty()) {
      auto Ep = std::make_unique<net::MetricsEndpoint>([this] {
        // Serve the seqlock-published page so a scrape never races the
        // live counters; before the first publish, render live metrics.
        obs::RuntimeMetrics M;
        if (!Ctl || !Ctl->readMetricsSnapshot(M))
          M = metrics();
        std::string Out;
        obs::writeExpositionText(Out, M);
        return Out;
      });
      if (Ep->listen(MAddr))
        MetricsEp = std::move(Ep);
      else
        std::fprintf(stderr,
                     "wbtuner: metrics endpoint cannot listen on %s: %s; "
                     "running without scrape surface\n",
                     MAddr.c_str(), std::strerror(errno));
    }
  }
  TraceBuf.clear();
  InitTime = monoNow();
  // The root tuning process occupies a pool slot like any other process.
  Ctl->acquireSlot(/*IsTuning=*/true);
  // Seed the metrics page so the very first scrape sees a snapshot.
  publishTelemetry();
}

void Runtime::finish() {
  assert(Inited && "finish() before init()");
  assert(isTuning() && "sampling processes terminate in aggregate()");
  // Reap our own split children first; their finish() already waited for
  // theirs, so this transitively covers all descendants. A split child
  // that died before reaching finish() left its live-tuning-process count
  // and pool slot behind — reclaim them on its behalf so the root cannot
  // hang in waitLiveTuningProcesses().
  for (pid_t Pid : SplitChildren) {
    int St = 0;
    // sys::waitPid retries EINTR internally: an interrupted wait used to
    // read as "child handled", skipping both the reap and the abnormal-
    // death reclamation below — a zombie plus, if the child died before
    // finish(), a root hang in waitLiveTuningProcesses().
    if (sys::waitPid(Pid, &St, 0) != Pid)
      continue;
    if (!(WIFEXITED(St) && WEXITSTATUS(St) == 0)) {
      std::fprintf(stderr,
                   "wbtuner: split tuning process %d died abnormally "
                   "(status 0x%x); reclaiming its accounting\n",
                   static_cast<int>(Pid), St);
      Ctl->tuningProcessExited();
      Ctl->releaseSlot();
    }
  }
  SplitChildren.clear();
  if (IsRoot) {
    // Retire the sampling agents and the nursery before the
    // all-descendants wait: neither holds a pool slot or a
    // live-tuning-process count, so nothing below would ever reap them.
    shutdownNetAgents();
    shutdownZygotes();
    while (!Ctl->waitLiveTuningProcessesTimed(1, 100)) {
    }
    // Every descendant is gone: take the final drain (skipping cells a
    // killed writer left unpublished), merge @split fragments, and write
    // the Chrome trace before the run directory disappears.
    if (TraceOn) {
      drainTraceEvents(/*Final=*/true);
      exportTrace();
    }
    Ctl->releaseSlot();
    if (!Opts.KeepFiles)
      removeTree(Opts.RunDir);
    MetricsEp.reset();
    Inited = false;
    Ctl.reset();
    inject::disarm();
    return;
  }
  // A @split tuning process parks its drained events as a binary
  // fragment for the root to merge. No skip-drain here: other tuning
  // processes' children may still be writing.
  if (TraceOn) {
    drainTraceEvents(/*Final=*/false);
    writeTraceFragmentFile();
  }
  Ctl->tuningProcessExited();
  Ctl->releaseSlot();
}

void Runtime::finishAndExit() {
  finish();
  std::fflush(nullptr); // _exit(2) skips stdio teardown
  _exit(0);
}

std::string Runtime::regionDir(uint64_t Region) const {
  return TpDir + "/r" + std::to_string(Region);
}

void Runtime::exitChild() {
  // Controlled exit of a sampling process: leave the region barrier so a
  // pending @sync cannot deadlock, then return the pool slot. The
  // exchange flags hand cleanup to the supervisor if we lose the race
  // with a timeout kill. _exit(2) skips stdio teardown, so flush what the
  // user printed first.
  traceEmit(PoolWorker ? obs::EventKind::WorkerEnd
                       : obs::EventKind::SampleEnd,
            RegionCounter,
            static_cast<uint64_t>(PoolWorker ? WorkerIndex : ChildIndex));
  std::fflush(nullptr);
  // Pool workers live in slot WorkerIndex; ChildIndex is their current
  // sample lease, which indexes the lease table, not the slot array.
  ChildSlot &S = slotsOf(Table)[PoolWorker ? WorkerIndex : ChildIndex];
  if (S.BarrierLeft.exchange(1, std::memory_order_acq_rel) == 0)
    Ctl->barrierLeave(BarrierSlot);
  if (S.SlotHeld.exchange(0, std::memory_order_acq_rel) == 1)
    Ctl->releaseSlot();
  Ctl->childEventNotify();
  _exit(0);
}

void Runtime::parkAsSpare(int Idx) {
  ChildSlot &S = slotsOf(Table)[Idx];
  // Give the pool slot back while parked; re-acquire on activation.
  if (S.SlotHeld.exchange(0, std::memory_order_acq_rel) == 1)
    Ctl->releaseSlot();
  int32_t Cmd = SpPark;
  pthread_mutex_lock(&Table->ParkLock.Mutex);
  while ((Cmd = S.Command.load(std::memory_order_relaxed)) == SpPark)
    pthread_cond_wait(&Table->ParkLock.Cond, &Table->ParkLock.Mutex);
  pthread_mutex_unlock(&Table->ParkLock.Mutex);
  if (Cmd == SpDiscard) {
    std::fflush(nullptr);
    Ctl->childEventNotify();
    _exit(0);
  }
  // Activated: take a real sampling slot and run the region body with the
  // fresh RNG stream this index was seeded with.
  Ctl->acquireSlot(/*IsTuning=*/false);
  S.SlotHeld.store(1, std::memory_order_release);
  traceEmit(obs::EventKind::SchedAdmit, 0, static_cast<uint64_t>(Idx));
}

//===----------------------------------------------------------------------===//
// Supervisor internals (tuning side)
//===----------------------------------------------------------------------===//

bool Runtime::regionDeadlinePassed() const {
  return RegionHasDeadline && monoNow() > RegionDeadline;
}

/// Reaps child \p Idx if it has exited; classifies its terminal status
/// and reclaims whatever it still owned. Returns true if newly reaped.
bool Runtime::reapOne(int Idx, bool Block) {
  ChildSlot &S = slotsOf(Table)[Idx];
  pid_t Pid = S.Pid.load(std::memory_order_relaxed);
  if (Reaped[Idx] || Pid <= 0)
    return false;
  int St = 0;
  // EINTR retries live inside sys::waitPid: an interrupted *blocking*
  // wait here used to read as "child not exited", so the exiting-child
  // fast path re-armed a full event-wait timeout — and the child's
  // lease/slot reclamation was deferred a sweep.
  if (sys::waitPid(Pid, &St, Block ? 0 : WNOHANG) != Pid)
    return false;
  Reaped[Idx] = true;
  // A dead zygote leaves the nursery; the next zygote region refills the
  // slot from the respawn budget.
  if (RegionIsZygote && Idx < NumZygotes)
    ZygotePids[Idx] = 0;

  bool CleanExit = WIFEXITED(St) && WEXITSTATUS(St) == 0;
  SampleStatus Cur = statusOf(S);
  if (!CleanExit) {
    // killStragglers() already recorded TimedOut for its victims; any
    // other abnormal death is a crash.
    if (Cur != SampleStatus::TimedOut) {
      S.Status.store(static_cast<int32_t>(SampleStatus::Crashed),
                     std::memory_order_relaxed);
      S.Signal.store(WIFSIGNALED(St) ? WTERMSIG(St) : 0,
                     std::memory_order_relaxed);
      Ctl->noteCrash();
    }
  } else if (Cur == SampleStatus::Running) {
    // Exited zero without committing or pruning through the primitives:
    // semantically a prune (no file in the store).
    S.Status.store(static_cast<int32_t>(SampleStatus::Pruned),
                   std::memory_order_relaxed);
  }

  // Reclaim the pool slot and barrier membership the child still owned.
  // Exchange semantics make this a no-op for children that cleaned up
  // themselves in exitChild().
  if (S.SlotHeld.exchange(0, std::memory_order_acq_rel) == 1)
    Ctl->releaseSlot();
  if (S.BarrierLeft.exchange(1, std::memory_order_acq_rel) == 0)
    Ctl->barrierReclaimDead(BarrierSlot, &S.InBarrier);
  if (Table->PoolMode)
    reclaimWorkerLease(Idx);
  return true;
}

/// A reaped pool worker may have died mid-lease; decide that lease's
/// fate. First death of the lease's owner returns it to the pool for a
/// survivor to re-claim; a repeat offender (or a timeout kill) retires
/// it with the worker's terminal status, since re-running a sample that
/// kills its workers — or has already blown the region deadline — only
/// wastes the rest of the pool.
void Runtime::reclaimWorkerLease(int SlotIdx) {
  ChildSlot &S = slotsOf(Table)[SlotIdx];
  int Idx = S.CurrentLease.exchange(-1, std::memory_order_acq_rel);
  if (Idx < 0 || Idx >= Table->NumLeases)
    return;
  LeaseCell &L = leasesOf(Table)[Idx];
  int32_t Expect = LsClaimed;
  bool Timed = statusOf(S) == SampleStatus::TimedOut;
  if (!Timed && L.Attempts.load(std::memory_order_relaxed) < MaxLeaseAttempts) {
    if (L.State.compare_exchange_strong(Expect, LsReturned,
                                        std::memory_order_acq_rel)) {
      Table->LeasesReturned.fetch_add(1, std::memory_order_release);
      Ctl->noteLeaseReclaim();
      traceEmit(obs::EventKind::LeaseReclaim, static_cast<uint64_t>(Idx));
    }
    return;
  }
  if (L.State.compare_exchange_strong(Expect,
                                      Timed ? LsTimedOut : LsCrashed,
                                      std::memory_order_acq_rel))
    L.Signal.store(S.Signal.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

/// One WNOHANG pass over every child. Activates retry spares for newly
/// found crashed/timed-out samples when allowed. Returns the number of
/// children the region still has to wait for.
int Runtime::sweepChildren() {
  ChildSlot *Slots = slotsOf(Table);
  int NumSlots = Table->NumSlots;
  bool Pool = Table->PoolMode != 0;
  for (int I = 0; I != NumSlots; ++I) {
    // Pool mode has no parked spares: every slot with a pid is a worker
    // (initial or respawned) and is supervised. Zygote nursery slots are
    // the exception — they are supervised only while activated into the
    // region; once re-parked (Command back to SpPark) they run no user
    // code and never exit.
    bool ZygoteSlot = RegionIsZygote && I < NumZygotes;
    bool Counted =
        ZygoteSlot
            ? Slots[I].Command.load(std::memory_order_acquire) == SpActivate
            : Pool || I < RegionN ||
                  Slots[I].Command.load(std::memory_order_relaxed) ==
                      SpActivate;
    if (!Counted)
      continue; // parked spares are discarded at region end
    // A child whose slot and barrier share are already released is inside
    // exitChild() with only _exit(2) left (or is a kill victim): its wake
    // event fired before the zombie existed, so a WNOHANG pass can miss
    // it and stall a full event-wait timeout. Reaping it blocking is
    // bounded — no user code runs past that point. Except zygotes: a
    // drained zygote releases both flags and then parks instead of
    // exiting, so a blocking wait on it would hang forever.
    bool Exiting =
        !ZygoteSlot &&
        Slots[I].SlotHeld.load(std::memory_order_acquire) == 0 &&
        Slots[I].BarrierLeft.load(std::memory_order_acquire) == 1;
    if (!reapOne(I, /*Block=*/Exiting))
      continue;
    SampleStatus St = statusOf(Slots[I]);
    if ((St == SampleStatus::Crashed || St == SampleStatus::TimedOut) &&
        !RegionUsedSync && !Pool)
      activateSpare();
  }
  int Live = 0;
  for (int I = 0; I != NumSlots; ++I) {
    bool Counted =
        RegionIsZygote && I < NumZygotes
            ? Slots[I].Command.load(std::memory_order_acquire) == SpActivate
            : Pool || I < RegionN ||
                  Slots[I].Command.load(std::memory_order_relaxed) ==
                      SpActivate;
    Live += Counted && !Reaped[I] &&
            Slots[I].Pid.load(std::memory_order_relaxed) > 0;
  }
  // Fold freshly published slab commits while we are here anyway — this
  // is what makes aggregate() O(1) per sample: by the time the last
  // child exits, nearly everything has already been folded.
  foldSlabCommits();
  // ... and drain the trace ring on the same schedule, so children's
  // events free ring cells while the region is still running.
  drainTraceEvents(/*Final=*/false);
  // ... and refresh the telemetry plane: publish a fresh seqlock
  // snapshot and give the scrape endpoint one non-blocking poll round.
  publishTelemetry();
  return Live;
}

/// Wakes the next parked spare to replace a failed sample. Returns false
/// when no spare is left.
bool Runtime::activateSpare() {
  ChildSlot *Slots = slotsOf(Table);
  while (NextSpare < NumSpares) {
    int Idx = RegionN + NextSpare++;
    ChildSlot &S = Slots[Idx];
    if (S.Pid.load(std::memory_order_relaxed) <= 0 || Reaped[Idx])
      continue; // its fork failed, or it died while parked
    // The spare will owe a barrierLeave like any live child.
    Ctl->barrierAdd(BarrierSlot, +1);
    S.BarrierLeft.store(0, std::memory_order_relaxed);
    S.Status.store(static_cast<int32_t>(SampleStatus::Running),
                   std::memory_order_relaxed);
    pthread_mutex_lock(&Table->ParkLock.Mutex);
    S.Command.store(SpActivate, std::memory_order_relaxed);
    pthread_cond_broadcast(&Table->ParkLock.Cond);
    pthread_mutex_unlock(&Table->ParkLock.Mutex);
    Ctl->noteRetry();
    traceEmit(obs::EventKind::SpareActivate, static_cast<uint64_t>(Idx));
    return true;
  }
  return false;
}

/// Region deadline enforcement: SIGKILL every child that is still running
/// the body, reclaiming its resources first (claim-then-kill keeps the
/// slot accounting exact). Parked spares are left for discardSpares().
void Runtime::killStragglers() {
  ChildSlot *Slots = slotsOf(Table);
  for (int I = 0, E = Table->NumSlots; I != E; ++I) {
    ChildSlot &S = Slots[I];
    // Parked (or already re-parked) zygotes are not stragglers: only
    // nursery slots still activated into the region can be killed.
    bool Counted =
        RegionIsZygote && I < NumZygotes
            ? S.Command.load(std::memory_order_acquire) == SpActivate
            : Table->PoolMode || I < RegionN ||
                  S.Command.load(std::memory_order_relaxed) == SpActivate;
    pid_t Pid = S.Pid.load(std::memory_order_relaxed);
    if (!Counted || Reaped[I] || Pid <= 0)
      continue;
    int32_t Expect = static_cast<int32_t>(SampleStatus::Running);
    if (S.Status.compare_exchange_strong(
            Expect, static_cast<int32_t>(SampleStatus::TimedOut),
            std::memory_order_relaxed))
      Ctl->noteTimeout();
    // Claim the child's resources before the kill so it cannot die
    // between claiming and releasing them itself.
    if (S.SlotHeld.exchange(0, std::memory_order_acq_rel) == 1)
      Ctl->releaseSlot();
    if (S.BarrierLeft.exchange(1, std::memory_order_acq_rel) == 0)
      Ctl->barrierReclaimDead(BarrierSlot, &S.InBarrier);
    traceEmit(obs::EventKind::Kill, static_cast<uint64_t>(I),
              static_cast<uint64_t>(Pid));
    kill(Pid, SIGKILL);
    reapOne(I, /*Block=*/true);
  }
}

/// Tells every still-parked spare to exit and reaps it.
void Runtime::discardSpares() {
  if (!NumSpares)
    return;
  ChildSlot *Slots = slotsOf(Table);
  pthread_mutex_lock(&Table->ParkLock.Mutex);
  for (int J = 0; J != NumSpares; ++J) {
    ChildSlot &S = Slots[RegionN + J];
    int32_t Expect = SpPark;
    S.Command.compare_exchange_strong(Expect, SpDiscard,
                                      std::memory_order_relaxed);
  }
  pthread_cond_broadcast(&Table->ParkLock.Cond);
  pthread_mutex_unlock(&Table->ParkLock.Mutex);
  for (int J = 0; J != NumSpares; ++J)
    reapOne(RegionN + J, /*Block=*/true);
}

void Runtime::destroyRegionTable() {
  if (Table) {
    // The zygote board's table lives inside the control-block mapping —
    // the nursery parks on it between regions; drop the pointer only.
    if (!RegionIsZygote)
      munmap(Table, TableBytes);
    Table = nullptr;
    TableBytes = 0;
  }
}

//===----------------------------------------------------------------------===//
// Incremental folding (tuning side)
//===----------------------------------------------------------------------===//

ScalarAccumulator &Runtime::foldScalar(const std::string &Var) {
  return FoldScalars[Var];
}
VoteAccumulator &Runtime::foldVote(const std::string &Var) {
  return FoldVotes[Var];
}
MeanVectorAccumulator &Runtime::foldMeanVector(const std::string &Var) {
  return FoldMeanVecs[Var];
}

/// Folds one committed payload into every accumulator registered for
/// \p Var, at most once per (Var, Child). Payloads that fail to decode
/// are skipped (the pair is still marked, matching one-shot aggregation
/// over loadDouble()/loadMask()/loadDoubles() defaults).
void Runtime::foldEntryBytes(const std::string &Var, int Child,
                             const uint8_t *Data, size_t Size) {
  std::pair<std::string, int> Key(Var, Child);
  if (FoldedPairs.count(Key))
    return;
  bool Registered = false;
  auto Si = FoldScalars.find(Var);
  if (Si != FoldScalars.end()) {
    ByteReader R(Data, Size);
    double X = R.read<double>();
    if (R.ok())
      Si->second.add(X);
    Registered = true;
  }
  auto Vi = FoldVotes.find(Var);
  if (Vi != FoldVotes.end()) {
    ByteReader R(Data, Size);
    std::vector<uint8_t> Mask = R.readVector<uint8_t>();
    if (R.ok() && !Mask.empty())
      Vi->second.add(Mask);
    Registered = true;
  }
  auto Mi = FoldMeanVecs.find(Var);
  if (Mi != FoldMeanVecs.end()) {
    ByteReader R(Data, Size);
    std::vector<double> Xs = R.readVector<double>();
    if (R.ok() && !Xs.empty())
      Mi->second.add(Xs);
    Registered = true;
  }
  if (Registered) {
    FoldedPairs.insert(std::move(Key));
    traceEmit(obs::EventKind::Fold, static_cast<uint64_t>(Child));
  }
}

/// One pass over the region's slab window, folding every published
/// commit of a child that has reached Committed. Children still Running
/// are revisited on the next sweep (their commitExtra() records become
/// foldable only once the final status says the run succeeded); crashed
/// or pruned children are never folded, mirroring committed().
void Runtime::foldSlabCommits() {
  if (!Table ||
      (FoldScalars.empty() && FoldVotes.empty() && FoldMeanVecs.empty()))
    return;
  ChildSlot *Slots = slotsOf(Table);
  SlabEntryView E;
  for (size_t Idx = RegionSlabStart, End = Ctl->slabAllocated(); Idx != End;
       ++Idx) {
    if (!Ctl->slabEntry(Idx, E))
      continue; // unpublished (in flight, or its writer died mid-commit)
    if (E.Tp != TpId || E.Region != RegionCounter)
      continue;
    // Pool mode: Child is a lease index, and the gate is the lease's own
    // state — the committing worker is usually still alive and Running.
    // In a batch, Child is the region-local sample index; the lease cell
    // lives at the region's window offset in the shared table.
    if (Table->PoolMode) {
      if (E.Child < 0 || E.Child >= Table->BatchN)
        continue;
      int64_t LIdx =
          Table->BatchCount > 1
              ? static_cast<int64_t>(E.Region - Table->BatchBase) *
                        Table->BatchN +
                    E.Child
              : E.Child;
      if (LIdx < 0 || LIdx >= Table->NumLeases)
        continue;
      if (leasesOf(Table)[LIdx].State.load(std::memory_order_acquire) !=
          LsCommitted)
        continue;
    } else {
      if (E.Child < 0 || E.Child >= Table->NumSlots)
        continue;
      if (statusOf(Slots[E.Child]) != SampleStatus::Committed)
        continue;
    }
    foldEntryBytes(std::string(E.Name), E.Child, E.Data, E.Size);
  }
}

/// Folds every registered (Var, Committed child) pair the slab sweeps
/// did not cover: file-fallback commits under Shm, and the entire
/// region under the Files backend.
void Runtime::foldRemaining(
    const RegionReader &Store,
    const std::vector<AggregationView::SampleRecord> &Records) {
  if (FoldScalars.empty() && FoldVotes.empty() && FoldMeanVecs.empty())
    return;
  std::vector<std::string> Vars;
  for (const auto &KV : FoldScalars)
    Vars.push_back(KV.first);
  for (const auto &KV : FoldVotes)
    Vars.push_back(KV.first);
  for (const auto &KV : FoldMeanVecs)
    Vars.push_back(KV.first);
  std::vector<uint8_t> Bytes;
  for (const std::string &Var : Vars) {
    for (size_t I = 0, E = Records.size(); I != E; ++I) {
      int Child = static_cast<int>(I);
      if (Records[I].Status != SampleStatus::Committed)
        continue;
      if (FoldedPairs.count({Var, Child}))
        continue;
      if (!Store.load(Var, Child, Bytes))
        continue;
      foldEntryBytes(Var, Child, Bytes.data(), Bytes.size());
    }
  }
}

std::shared_ptr<const RegionReader> Runtime::makeRegionReader() const {
  // Record indices run over sample slots in fork mode and over leases in
  // pool mode; a batch delivery reads one region's window of BatchN
  // samples (slab records carry region-local child indices).
  int NumRecords =
      !Table ? 0
             : (Table->PoolMode ? (Table->BatchCount > 1 ? Table->BatchN
                                                         : Table->NumLeases)
                                : Table->NumSlots);
  if (Opts.Backend == StoreBackend::Shm)
    return std::make_shared<ShmRegionReader>(*Ctl, TpId, RegionCounter,
                                             RegionSlabStart, NumRecords,
                                             RegionDirPath);
  return std::make_shared<FileRegionReader>(RegionDirPath);
}

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

void Runtime::sampling(int N, const RegionOptions &Ro) {
  assert(Inited && "sampling() before init()");
  assert(N > 0 && "region needs at least one sample");
  // Rule [SAMPLING] only applies in a tuning process; in a sampling
  // process it is a no-op.
  if (isSampling())
    return;
  assert(!RegionActive && "nested @sampling regions are not supported");
  maybeRecycleSlab();

  ++RegionCounter;
  // Cache the region directory once; every file commit/load reuses it
  // instead of rebuilding the path strings. The directory itself is
  // created lazily by the first file-fallback commit: pure-shm regions
  // never touch the filesystem at all.
  RegionDirPath = regionDir(RegionCounter);
  // Fresh fold state; references returned by foldScalar() & friends for
  // the previous region die here.
  FoldScalars.clear();
  FoldVotes.clear();
  FoldMeanVecs.clear();
  FoldedPairs.clear();
  // Slab entries allocated before this point cannot belong to this
  // region; sweeps scan [RegionSlabStart, slabAllocated()).
  RegionSlabStart = Ctl->slabAllocated();
  // Store-counter watermarks: AggregationView reports per-region deltas
  // against these.
  RegionShmStart = Ctl->slabPublishedTotal();
  for (int R = 0; R != obs::NumFallbackReasons; ++R)
    RegionFallbackStart[R] =
        Ctl->slabFallbacks(static_cast<obs::FallbackReason>(R));
  RegionT0 = monoNow();
  traceEmit(obs::EventKind::RegionBegin, RegionCounter,
            static_cast<uint64_t>(N));

  RegionN = N;
  RegionKind = Ro.Kind;
  RegionUsedSync = false;
  RegionIsPool = false;
  NextSpare = 0;
  NumSpares = Ro.MaxRetries >= 0 ? Ro.MaxRetries : Opts.MaxRetries;
  double TimeoutSec =
      Ro.TimeoutSec >= 0 ? Ro.TimeoutSec : Opts.SampleTimeoutSec;
  RegionHasDeadline = TimeoutSec > 0;
  RegionDeadline = RegionHasDeadline ? monoNow() + TimeoutSec : 0;

  BarrierSlot = Ctl->acquireBarrierSlot();
  Ctl->barrierReset(BarrierSlot, N);

  int NumSlots = N + NumSpares;
  TableBytes = sizeof(RegionTable) +
               static_cast<size_t>(NumSlots) * sizeof(ChildSlot);
  void *Mem = sys::mmapShared(TableBytes);
  if (Mem == MAP_FAILED)
    sys::fatal("mmap of region child table (%zu bytes) failed: %s",
               TableBytes, std::strerror(errno));
  std::memset(Mem, 0, TableBytes);
  Table = static_cast<RegionTable *>(Mem);
  Table->ParkLock.init();
  Table->NumMains = N;
  Table->NumSlots = NumSlots;
  ChildSlot *Slots = slotsOf(Table);
  for (int I = 0; I != NumSlots; ++I) {
    bool IsSpare = I >= N;
    // Spares are outside the barrier until activated; mains owe a leave.
    Slots[I].BarrierLeft.store(IsSpare ? 1 : 0, std::memory_order_relaxed);
    Slots[I].Status.store(
        static_cast<int32_t>(IsSpare ? SampleStatus::Unused
                                     : SampleStatus::Running),
        std::memory_order_relaxed);
  }
  Reaped.assign(static_cast<size_t>(NumSlots), 0);

  // Flush stdio before forking so children do not replay the parent's
  // buffered output.
  std::fflush(nullptr);
  for (int I = 0; I != NumSlots; ++I) {
    ChildSlot &S = Slots[I];
    // Alg. 1: a sampling spawn waits only for a free slot. The wait is
    // supervised: while blocked, reap children that already died so their
    // leaked slots cannot starve the spawn loop.
    while (!Ctl->acquireSlotTimed(/*IsTuning=*/false, 50)) {
      traceEmit(obs::EventKind::SchedDefer, 0, static_cast<uint64_t>(I));
      sweepChildren();
    }
    traceEmit(obs::EventKind::SchedAdmit, 0, static_cast<uint64_t>(I));
    S.SlotHeld.store(1, std::memory_order_relaxed);
    double ForkT0 = monoNow();
    pid_t Pid = I == Opts.DebugFailForkAt ? -1 : sys::forkProcess();
    if (Pid < 0) {
      // The sample never existed: release the reserved slot, shrink the
      // barrier, record the failure, and carry on with the region.
      S.SlotHeld.store(0, std::memory_order_relaxed);
      Ctl->releaseSlot();
      if (S.BarrierLeft.exchange(1, std::memory_order_relaxed) == 0)
        Ctl->barrierLeave(BarrierSlot);
      S.Status.store(static_cast<int32_t>(SampleStatus::ForkFailed),
                     std::memory_order_relaxed);
      Ctl->noteForkFailure();
      Reaped[I] = 1;
      std::fprintf(stderr,
                   "wbtuner: fork failed for sample %d of region %llu "
                   "(tp %llu); skipping it\n",
                   I, static_cast<unsigned long long>(RegionCounter),
                   static_cast<unsigned long long>(TpId));
      continue;
    }
    if (Pid == 0) {
      // Sampling child: it owns the slot just acquired and releases it in
      // exitChild() (or when parking, for spares).
      Mode = ModeKind::Sampling;
      ChildIndex = I;
      RegionActive = true;
      SplitChildren.clear();
      closeInheritedNetFds();
      if (inject::armed())
        inject::tagProcess(mixSeed(TpId, (RegionCounter << 20) +
                                             static_cast<uint64_t>(I)));
      TheRng = Rng(mixSeed(mixSeed(Opts.Seed, TpId),
                           (RegionCounter << 20) + static_cast<uint64_t>(I)));
      if (I >= N)
        parkAsSpare(I); // returns only if activated as a replacement
      traceEmit(obs::EventKind::SampleBegin, RegionCounter,
                static_cast<uint64_t>(ChildIndex));
      return;
    }
    uint64_t ForkNs = static_cast<uint64_t>((monoNow() - ForkT0) * 1e9);
    Ctl->recordForkLatency(ForkNs);
    traceEmit(obs::EventKind::Fork, static_cast<uint64_t>(Pid), ForkNs);
    S.Pid.store(static_cast<int32_t>(Pid), std::memory_order_relaxed);
  }
  RegionActive = true;
}

//===----------------------------------------------------------------------===//
// Worker-pool sampling regions
//===----------------------------------------------------------------------===//

/// Forks one pool worker into child-table slot \p SlotIdx (initial spawn
/// and wipe-out respawns share this path). The caller has already set up
/// the slot's barrier membership. In the child this never returns.
void Runtime::forkPoolWorker(int SlotIdx) {
  ChildSlot &S = slotsOf(Table)[SlotIdx];
  // Alg. 1: a sampling spawn waits only for a free slot; the wait is
  // supervised so dead workers' leaked slots cannot starve it.
  while (!Ctl->acquireSlotTimed(/*IsTuning=*/false, 50)) {
    traceEmit(obs::EventKind::SchedDefer, 0, static_cast<uint64_t>(SlotIdx));
    sweepChildren();
  }
  traceEmit(obs::EventKind::SchedAdmit, 0, static_cast<uint64_t>(SlotIdx));
  S.SlotHeld.store(1, std::memory_order_relaxed);
  std::fflush(nullptr);
  double ForkT0 = monoNow();
  pid_t Pid = SlotIdx == Opts.DebugFailForkAt ? -1 : sys::forkProcess();
  if (Pid < 0) {
    // This worker never existed: release its slot and barrier share. Its
    // prospective leases stay with the counter for the other workers.
    S.SlotHeld.store(0, std::memory_order_relaxed);
    Ctl->releaseSlot();
    if (S.BarrierLeft.exchange(1, std::memory_order_relaxed) == 0)
      Ctl->barrierLeave(BarrierSlot);
    S.Status.store(static_cast<int32_t>(SampleStatus::ForkFailed),
                   std::memory_order_relaxed);
    Ctl->noteForkFailure();
    Reaped[SlotIdx] = 1;
    std::fprintf(stderr,
                 "wbtuner: fork failed for pool worker %d of region %llu "
                 "(tp %llu); continuing with fewer workers\n",
                 SlotIdx, static_cast<unsigned long long>(RegionCounter),
                 static_cast<unsigned long long>(TpId));
    return;
  }
  if (Pid == 0) {
    Mode = ModeKind::Sampling;
    PoolWorker = true;
    WorkerIndex = SlotIdx;
    RegionActive = true;
    SplitChildren.clear();
    closeInheritedNetFds();
    if (inject::armed())
      inject::tagProcess(mixSeed(TpId, (RegionCounter << 20) + 0xF00D +
                                           static_cast<uint64_t>(SlotIdx)));
    traceEmit(obs::EventKind::WorkerBegin, RegionCounter,
              static_cast<uint64_t>(SlotIdx));
    workerLoop(); // never returns
  }
  uint64_t ForkNs = static_cast<uint64_t>((monoNow() - ForkT0) * 1e9);
  Ctl->recordForkLatency(ForkNs);
  traceEmit(obs::EventKind::Fork, static_cast<uint64_t>(Pid), ForkNs);
  S.Pid.store(static_cast<int32_t>(Pid), std::memory_order_relaxed);
}

/// Sampling side of a pool region: claim a sample index, impersonate the
/// fork-per-sample child of that index (same ChildIndex, same RNG
/// stream), run the body, repeat until the region is drained. Shared by
/// one-shot pool workers (workerLoop) and zygotes, which park and run it
/// again for the next region.
void Runtime::runLeases() {
  for (;;) {
    int Idx = Table->BatchCount > 1 ? claimLeaseGated() : claimLease();
    if (Idx < 0)
      break;
    runOneLease(Idx);
  }
  ChildIndex = -1;
  LeaseIndex = -1;
}

/// Batch-mode claim: returned leases first, then a bounded counter claim
/// that never passes the pipeline's claim limit. A gated worker parks
/// WITHOUT holding an index — an index claimed before parking belongs to
/// a region whose delivery then stalls until the sleeping holder gets
/// rescheduled (observed as multi-ms pipeline hiccups every K regions on
/// loaded machines, and as outright deadlock when the holder's region
/// also had a returned lease nobody could pick up). Servicing returns
/// while gated keeps a dead worker's lease from wedging the delivery
/// window the supervisor is waiting on. Limit raises broadcast under
/// ParkLock, so the timed wait only pays its 50 ms on a missed reclaim,
/// never as a steady-state cost. Returns -1 once the counter is drained
/// and no returned leases remain.
int Runtime::claimLeaseGated() {
  int N = Table->NumLeases;
  for (;;) {
    int Ret = claimReturnedLease();
    if (Ret >= 0)
      return Ret;
    int64_t Bound = std::min<int64_t>(
        Table->ClaimLimit.load(std::memory_order_acquire), N);
    int64_t Idx = Ctl->leaseClaimBounded(LeaseSlot, Bound);
    if (Idx >= 0)
      return static_cast<int>(Idx);
    if (Ctl->leaseNext(LeaseSlot) >= N &&
        Table->LeasesReturned.load(std::memory_order_acquire) == 0)
      return -1;
    timespec Deadline = monoDeadlineIn(50);
    pthread_mutex_lock(&Table->ParkLock.Mutex);
    if (Table->LeasesReturned.load(std::memory_order_acquire) == 0 &&
        Table->ClaimLimit.load(std::memory_order_acquire) <=
            Ctl->leaseNext(LeaseSlot))
      pthread_cond_timedwait(&Table->ParkLock.Cond, &Table->ParkLock.Mutex,
                             &Deadline);
    pthread_mutex_unlock(&Table->ParkLock.Mutex);
  }
}

/// Runs one claimed lease to its terminal state: impersonate the
/// fork-per-sample child of that index, run the body, publish the
/// outcome.
void Runtime::runOneLease(int Idx) {
  ChildSlot &Me = slotsOf(Table)[WorkerIndex];
  if (Table->BatchCount > 1) {
    // Roll into the lease's region: same region identity a worker forked
    // for that region alone would carry. Re-claimed returns can roll
    // backwards into an earlier region; the next counter claim rolls
    // forward again.
    uint64_t Reg = Table->BatchBase +
                   static_cast<uint64_t>(Idx) /
                       static_cast<uint64_t>(Table->BatchN);
    if (Reg != RegionCounter) {
      RegionCounter = Reg;
      RegionDirPath = regionDir(RegionCounter);
      RegionN = Table->BatchN;
      traceEmit(obs::EventKind::BatchRoll, RegionCounter,
                static_cast<uint64_t>(Idx));
    }
  }
  int Local = Table->BatchCount > 1 ? Idx % Table->BatchN : Idx;
  LeaseCell &L = leasesOf(Table)[Idx];
  L.Attempts.fetch_add(1, std::memory_order_relaxed);
  L.State.store(LsClaimed, std::memory_order_relaxed);
  // Publish which lease we hold before running user code: if we die in
  // the body, the supervisor reads CurrentLease to return the lease.
  Me.CurrentLease.store(Idx, std::memory_order_release);
  // ChildIndex is the region-local sample index (what sample() strata
  // and commit records see); LeaseIndex addresses the shared lease
  // table, which in a batch spans every region's window.
  ChildIndex = Local;
  LeaseIndex = Idx;
  traceEmit(obs::EventKind::LeaseBegin, RegionCounter,
            static_cast<uint64_t>(Idx));
  // The per-index reseed that makes pool draws bitwise-identical to a
  // fork-per-sample child of the same index (same formula as
  // sampling()'s child branch).
  TheRng = Rng(mixSeed(mixSeed(Opts.Seed, TpId),
                       (RegionCounter << 20) + static_cast<uint64_t>(Local)));
  try {
    RegionBody();
    // Returning without reaching aggregate() is a voluntary prune,
    // mirroring a fork-mode child that exits cleanly mid-body.
    int32_t Expect = LsClaimed;
    L.State.compare_exchange_strong(Expect, LsPruned,
                                    std::memory_order_relaxed);
  } catch (const LeaseEnd &) {
    // check() pruned the lease or aggregate() committed it.
  }
  traceEmit(obs::EventKind::LeaseEnd, RegionCounter,
            static_cast<uint64_t>(Idx),
            static_cast<uint16_t>(L.State.load(std::memory_order_relaxed)));
  Me.CurrentLease.store(-1, std::memory_order_release);
  if (Table->BatchCount > 1) {
    // One supervisor wakeup per settled region window instead of per
    // lease: each notify costs the supervisor a sleep/wake round trip,
    // and a batch delivery can only advance when its whole window is
    // terminal anyway. The last finisher of a window is guaranteed to
    // see every cell terminal (the terminal stores above are release,
    // these loads acquire); two leases finishing back-to-back can at
    // worst both notify, which is harmless.
    LeaseCell *Leases = leasesOf(Table);
    int64_t Reg = static_cast<int64_t>(Idx) / Table->BatchN;
    bool Settled = true;
    for (int64_t I = Reg * Table->BatchN, E = I + Table->BatchN; I != E; ++I) {
      int32_t St = Leases[I].State.load(std::memory_order_acquire);
      if (St == LsPending || St == LsClaimed || St == LsReturned) {
        Settled = false;
        break;
      }
    }
    if (Settled)
      Ctl->childEventNotify();
    return;
  }
  // Wake the supervisor so freshly committed leases fold while the
  // rest of the pool keeps running.
  Ctl->childEventNotify();
}

int Runtime::sampleAttempt() const {
  if (!isSampling() || !PoolWorker || LeaseIndex < 0)
    return 1;
  return static_cast<int>(
      leasesOf(Table)[LeaseIndex].Attempts.load(std::memory_order_relaxed));
}

void Runtime::workerLoop() {
  runLeases();
  exitChild();
}

/// Next sample index for this worker: a lease returned by a dead worker
/// first (re-run path), else the shared claim counter. -1 once both are
/// exhausted.
/// Claims one returned (orphaned-and-recovered) lease, if any is
/// visible, via CAS on the cell state. Returns its index or -1.
int Runtime::claimReturnedLease() {
  if (Table->LeasesReturned.load(std::memory_order_acquire) <= 0)
    return -1;
  LeaseCell *Leases = leasesOf(Table);
  int N = Table->NumLeases;
  for (int I = 0; I != N; ++I) {
    int32_t Expect = LsReturned;
    if (Leases[I].State.compare_exchange_strong(Expect, LsClaimed,
                                                std::memory_order_acq_rel)) {
      Table->LeasesReturned.fetch_sub(1, std::memory_order_relaxed);
      return I;
    }
  }
  // Another worker won every visible return.
  return -1;
}

int Runtime::claimLease() {
  int N = Table->NumLeases;
  for (;;) {
    int Ret = claimReturnedLease();
    if (Ret >= 0)
      return Ret;
    int64_t Idx = Ctl->leaseClaim(LeaseSlot);
    if (Idx < N)
      return static_cast<int>(Idx);
    // Counter drained. A lease may still be returned after this check —
    // the supervisor's wipe-out path (settlePoolLeases) covers that by
    // forking a fresh worker, so exiting here is safe.
    if (Table->LeasesReturned.load(std::memory_order_acquire) == 0)
      return -1;
  }
}

/// Live == 0 with the region not yet drained: decide every open lease's
/// fate. Orphans (claimed by a worker that died, or lost inside the
/// claim window) are returned for re-running and one replacement worker
/// is forked per pass, bounded by a respawn budget of N; past the budget
/// — or past the region deadline — the stragglers are retired in place.
/// Returns true once every lease is terminal.
bool Runtime::settlePoolLeases() {
  LeaseCell *Leases = leasesOf(Table);
  int N = Table->NumLeases;
  int64_t CounterNext = Ctl->leaseNext(LeaseSlot);
  bool DeadlinePassed = regionDeadlinePassed();
  bool BudgetLeft = RespawnsUsed < N;
  int Open = 0;
  int RemoteOwned = 0;
  for (int I = 0; I != N; ++I) {
    LeaseCell &L = Leases[I];
    int32_t St = L.State.load(std::memory_order_acquire);
    if (St == LsCommitted || St == LsPruned || St == LsCrashed ||
        St == LsTimedOut || St == LsForkFailed)
      continue;
    if (NetServer && NetServer->ownsLease(I)) {
      // Remotely owned by a live agent: not ours to settle. (The busy()
      // gate in aggregate() keeps the normal path from ever reaching
      // this; it guards early-teardown callers.)
      ++RemoteOwned;
      continue;
    }
    if (DeadlinePassed || !BudgetLeft) {
      // No more re-running: retire in place. Never-attempted leases are
      // ForkFailed (no process ever existed to run them) unless the
      // clock, not the pool, is what ran out.
      int32_t Final =
          DeadlinePassed
              ? LsTimedOut
              : (L.Attempts.load(std::memory_order_relaxed) == 0
                     ? LsForkFailed
                     : LsCrashed);
      if (St == LsReturned)
        Table->LeasesReturned.fetch_sub(1, std::memory_order_relaxed);
      L.State.store(Final, std::memory_order_relaxed);
      continue;
    }
    if (St == LsClaimed) {
      // Its owner is dead (nothing is live); route it through the same
      // return-or-retire policy the reaper applies.
      if (L.Attempts.load(std::memory_order_relaxed) < MaxLeaseAttempts) {
        L.State.store(LsReturned, std::memory_order_relaxed);
        Table->LeasesReturned.fetch_add(1, std::memory_order_release);
        Ctl->noteLeaseReclaim();
        traceEmit(obs::EventKind::LeaseReclaim, static_cast<uint64_t>(I));
      } else {
        L.State.store(LsCrashed, std::memory_order_relaxed);
        continue;
      }
    } else if (St == LsPending && I < CounterNext) {
      // The counter passed this index but no claim mark ever landed: the
      // claimant died inside claimLease(). Make it re-claimable.
      L.State.store(LsReturned, std::memory_order_relaxed);
      Table->LeasesReturned.fetch_add(1, std::memory_order_release);
      Ctl->noteLeaseReclaim();
      traceEmit(obs::EventKind::LeaseReclaim, static_cast<uint64_t>(I));
    }
    ++Open;
  }
  if (Open == 0)
    return RemoteOwned == 0;
  // Fork one replacement worker into the next respawn slot; if its fork
  // fails the budget still shrinks, so this loop terminates.
  int SlotIdx = RegionWorkers + RespawnsUsed++;
  ChildSlot &S = slotsOf(Table)[SlotIdx];
  S.Status.store(static_cast<int32_t>(SampleStatus::Running),
                 std::memory_order_relaxed);
  S.CurrentLease.store(-1, std::memory_order_relaxed);
  S.BarrierLeft.store(0, std::memory_order_relaxed);
  Ctl->barrierAdd(BarrierSlot, +1);
  Reaped[SlotIdx] = 0;
  Ctl->noteRetry();
  traceEmit(obs::EventKind::Respawn, static_cast<uint64_t>(SlotIdx));
  forkPoolWorker(SlotIdx);
  return false;
}

/// Region deadline in a pool region: killStragglers() already marked the
/// live workers TimedOut (their claimed leases follow suit through
/// reclaimWorkerLease); everything still unclaimed or returned can never
/// run inside the budget either.
void Runtime::markLeasesTimedOut() {
  LeaseCell *Leases = leasesOf(Table);
  for (int I = 0, N = Table->NumLeases; I != N; ++I) {
    for (int32_t From : {LsPending, LsReturned, LsClaimed}) {
      int32_t Expect = From;
      if (Leases[I].State.compare_exchange_strong(
              Expect, LsTimedOut, std::memory_order_acq_rel)) {
        if (From == LsReturned)
          Table->LeasesReturned.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
    }
  }
}

void Runtime::samplingRegion(int N, const RegionOptions &Ro,
                             const std::function<void()> &Body) {
  assert(Inited && "samplingRegion() before init()");
  assert(N > 0 && "region needs at least one sample");
  assert(Body && "samplingRegion() needs a body callback");
  // Rule [SAMPLING] only applies in a tuning process; a sampling process
  // (fork-mode child or pool worker) must not open nested regions.
  if (isSampling())
    return;
  assert(!RegionActive && "nested @sampling regions are not supported");
  maybeRecycleSlab();

  ++RegionCounter;
  RegionDirPath = regionDir(RegionCounter); // created lazily on fallback
  FoldScalars.clear();
  FoldVotes.clear();
  FoldMeanVecs.clear();
  FoldedPairs.clear();
  RegionSlabStart = Ctl->slabAllocated();
  RegionShmStart = Ctl->slabPublishedTotal();
  for (int R = 0; R != obs::NumFallbackReasons; ++R)
    RegionFallbackStart[R] =
        Ctl->slabFallbacks(static_cast<obs::FallbackReason>(R));
  RegionT0 = monoNow();
  traceEmit(obs::EventKind::RegionBegin, RegionCounter,
            static_cast<uint64_t>(N));

  RegionN = N;
  RegionKind = Ro.Kind;
  RegionUsedSync = false;
  NumSpares = 0; // lease retry replaces spare-based retry
  NextSpare = 0;
  double TimeoutSec =
      Ro.TimeoutSec >= 0 ? Ro.TimeoutSec : Opts.SampleTimeoutSec;
  RegionHasDeadline = TimeoutSec > 0;
  RegionDeadline = RegionHasDeadline ? monoNow() + TimeoutSec : 0;

  RegionIsPool = true;
  RegionBody = Body;
  RespawnsUsed = 0;
  // The tuning process holds a pool slot of its own, so W == maxPool
  // would deadlock the spawn loop.
  int MaxWorkers = std::max(1, static_cast<int>(Ctl->maxPool()) - 1);
  int W = Ro.Workers > 0
              ? Ro.Workers
              : (Opts.WorkerPool > 0 ? static_cast<int>(Opts.WorkerPool)
                                     : MaxWorkers);
  W = std::max(1, std::min({W, MaxWorkers, N}));

  // Distributed agents fork here, lazily, for the same reason zygotes
  // do: the region body must already be part of their image.
  if (NetServer)
    spawnNetAgents();

  // Zygote nursery: eligible regions run on pre-forked parked workers
  // woken through the shared board — no per-region fork, no per-region
  // table mmap. Root tuning process only (a @split tp would need a
  // nursery of its own), bounded by the board's lease capacity.
  if (Opts.Zygotes > 0 && IsRoot && N <= ZygoteLeaseCap) {
    openZygoteRegion(N, N, W, N);
    netOpenRegion();
    RegionActive = true;
    Body();
    assert(!RegionActive && "samplingRegion() body must call aggregate()");
    RegionBody = nullptr;
    return;
  }
  openPoolTable(W, N, N);
  netOpenRegion();

  // Tuning side: run the body once ourselves. Sampling primitives no-op,
  // and the body's aggregate() call performs the supervision above.
  RegionActive = true;
  Body();
  assert(!RegionActive && "samplingRegion() body must call aggregate()");
  RegionBody = nullptr;
}

/// Maps the fresh per-region child table + lease table and forks \p W
/// pool workers into it. \p TotalLeases is N for a plain pool region and
/// Regions * N for a batch (one flat lease space over every region's
/// window); \p ClaimInit seeds the batch claim limit — TotalLeases when
/// not batching, so the gate in runLeases() never parks anyone. Forked
/// children enter workerLoop() inside forkPoolWorker() and never return;
/// past the fork loop we are always the tuning process.
void Runtime::openPoolTable(int W, int TotalLeases, int64_t ClaimInit) {
  RegionWorkers = W;

  LeaseSlot = Ctl->acquireLeaseSlot();
  Ctl->leaseReset(LeaseSlot);
  BarrierSlot = Ctl->acquireBarrierSlot();
  Ctl->barrierReset(BarrierSlot, W);

  // W worker slots plus one respawn slot per lease (used only when every
  // worker died with leases still open — at most one respawn per lease),
  // then the lease table.
  int NumSlots = W + TotalLeases;
  TableBytes = sizeof(RegionTable) +
               static_cast<size_t>(NumSlots) * sizeof(ChildSlot) +
               static_cast<size_t>(TotalLeases) * sizeof(LeaseCell);
  void *Mem = sys::mmapShared(TableBytes);
  if (Mem == MAP_FAILED)
    sys::fatal("mmap of region child table (%zu bytes) failed: %s",
               TableBytes, std::strerror(errno));
  std::memset(Mem, 0, TableBytes);
  Table = static_cast<RegionTable *>(Mem);
  Table->ParkLock.init();
  Table->NumMains = W;
  Table->NumSlots = NumSlots;
  Table->PoolMode = 1;
  Table->NumLeases = TotalLeases;
  Table->BatchCount = BatchActive ? BatchRegions : 1;
  Table->BatchN = BatchActive ? BatchN : TotalLeases;
  Table->BatchBase = RegionCounter;
  Table->ClaimLimit.store(ClaimInit, std::memory_order_release);
  ChildSlot *Slots = slotsOf(Table);
  for (int I = 0; I != NumSlots; ++I) {
    bool IsRespawn = I >= W;
    Slots[I].BarrierLeft.store(IsRespawn ? 1 : 0, std::memory_order_relaxed);
    Slots[I].Status.store(
        static_cast<int32_t>(IsRespawn ? SampleStatus::Unused
                                       : SampleStatus::Running),
        std::memory_order_relaxed);
    Slots[I].CurrentLease.store(-1, std::memory_order_relaxed);
  }
  // Lease cells: memset already made them {LsPending, 0, 0}.
  Reaped.assign(static_cast<size_t>(NumSlots), 0);

  for (int I = 0; I != W; ++I)
    forkPoolWorker(I);
}

/// Raises the batch claim limit and wakes workers parked on it. Shares
/// ParkLock with spare parking — both are rare, coarse wakeups.
void Runtime::advanceClaimLimit(int64_t NewLimit) {
  if (!Table || Table->ClaimLimit.load(std::memory_order_acquire) >= NewLimit)
    return;
  pthread_mutex_lock(&Table->ParkLock.Mutex);
  Table->ClaimLimit.store(NewLimit, std::memory_order_release);
  pthread_cond_broadcast(&Table->ParkLock.Cond);
  pthread_mutex_unlock(&Table->ParkLock.Mutex);
}

/// Epoch-based slab recycling: between regions, when this is the sole
/// live tuning process (no @split siblings, no sampling children — so
/// structurally nobody can be mid-commit or mid-scan) and the slab is
/// at least half full, retire every published record and reset the bump
/// allocators. Long runs then reuse the same slab instead of degrading
/// to Exhausted file fallbacks once the cumulative commit volume passes
/// the slab's capacity. Parked zygotes never touch the slab, so they
/// don't block recycling.
void Runtime::maybeRecycleSlab() {
  if (Opts.Backend != StoreBackend::Shm || !IsRoot || RegionActive)
    return;
  if (Ctl->liveTuningProcesses() != 1 || !Ctl->slabNeedsRecycle())
    return;
  uint64_t Retired = Ctl->slabAllocated();
  Ctl->slabRecycle();
  traceEmit(obs::EventKind::SlabRecycle, Ctl->slabEpoch(), Retired);
}

void Runtime::regionBatch(int Regions, int N, const RegionOptions &Ro,
                          const std::function<void()> &Body) {
  assert(Inited && "regionBatch() before init()");
  assert(Regions > 0 && N > 0 && "batch needs regions and samples");
  assert(Body && "regionBatch() needs a body callback");
  // Rule [SAMPLING] only applies in a tuning process; a sampling process
  // must not open nested regions.
  if (isSampling())
    return;
  int K = std::min(Ro.Pipeline, Regions);
  if (K <= 1 || Regions == 1) {
    // Degenerate pipeline: plain sequential regions, same results.
    for (int R = 0; R != Regions; ++R)
      samplingRegion(N, Ro, Body);
    return;
  }
  assert(!RegionActive && "nested @sampling regions are not supported");
  maybeRecycleSlab();

  int64_t Total = static_cast<int64_t>(Regions) * N;
  BatchActive = true;
  BatchRegions = Regions;
  BatchN = N;
  BatchBase = RegionCounter + 1;
  RegionCounter = BatchBase; // forked workers start in the first region
  RegionDirPath = regionDir(RegionCounter);
  RegionN = N;
  RegionKind = Ro.Kind;
  RegionUsedSync = false;
  NumSpares = 0;
  NextSpare = 0;
  RegionIsPool = true;
  RegionBody = Body;
  RespawnsUsed = 0;
  double TimeoutSec =
      Ro.TimeoutSec >= 0 ? Ro.TimeoutSec : Opts.SampleTimeoutSec;
  // One slab watermark for every delivery: by the time region R is
  // delivered, commits of regions > R may already be published; each
  // delivery rescans the batch window and folds only its own region's
  // records (the E.Region filter).
  RegionSlabStart = Ctl->slabAllocated();

  int MaxWorkers = std::max(1, static_cast<int>(Ctl->maxPool()) - 1);
  int W = Ro.Workers > 0
              ? Ro.Workers
              : (Opts.WorkerPool > 0 ? static_cast<int>(Opts.WorkerPool)
                                     : MaxWorkers);
  W = std::min(W, MaxWorkers);
  if (Total < W)
    W = static_cast<int>(Total);
  W = std::max(1, W);

  traceEmit(obs::EventKind::BatchBegin, BatchBase,
            static_cast<uint64_t>(Regions));
  // Workers may sample up to K regions ahead of the oldest undelivered
  // one; each completed delivery slides the window forward.
  int64_t ClaimInit = std::min<int64_t>(Total, static_cast<int64_t>(K) * N);
  if (NetServer)
    spawnNetAgents();
  if (Opts.Zygotes > 0 && IsRoot && Total <= ZygoteLeaseCap)
    openZygoteRegion(N, static_cast<int>(Total), W, ClaimInit);
  else
    openPoolTable(W, static_cast<int>(Total), ClaimInit);
  // One lease window spans the whole batch, mirroring the local claim
  // counter: agents roll across regions without a round-trip per region.
  netOpenRegion();

  // Deliver each region in submission order. The body runs with exactly
  // the region identity sequential samplingRegion() calls would give it;
  // its aggregate() call waits only for this region's lease window.
  for (int R = 0; R != Regions; ++R) {
    RegionCounter = BatchBase + static_cast<uint64_t>(R);
    RegionDirPath = regionDir(RegionCounter);
    FoldScalars.clear();
    FoldVotes.clear();
    FoldMeanVecs.clear();
    FoldedPairs.clear();
    // Store-counter watermarks are per-delivery: a batch region's counts
    // attribute commits by when they were published, not which region
    // produced them (overlap makes exact attribution impossible here).
    RegionShmStart = Ctl->slabPublishedTotal();
    for (int F = 0; F != obs::NumFallbackReasons; ++F)
      RegionFallbackStart[F] =
          Ctl->slabFallbacks(static_cast<obs::FallbackReason>(F));
    RegionHasDeadline = TimeoutSec > 0;
    RegionDeadline = RegionHasDeadline ? monoNow() + TimeoutSec : 0;
    RegionT0 = monoNow();
    traceEmit(obs::EventKind::RegionBegin, RegionCounter,
              static_cast<uint64_t>(N));
    RegionActive = true;
    Body();
    assert(!RegionActive && "regionBatch() body must call aggregate()");
    advanceClaimLimit(
        std::min<int64_t>(Total, static_cast<int64_t>(R + 1 + K) * N));
  }
  traceEmit(obs::EventKind::BatchEnd, BatchBase,
            static_cast<uint64_t>(Regions));

  // The teardown aggregate() skipped for every delivery.
  netCloseRegion();
  destroyRegionTable();
  RegionIsZygote = false;
  Ctl->releaseBarrierSlot(BarrierSlot);
  Ctl->releaseLeaseSlot(LeaseSlot);
  LeaseSlot = -1;
  RegionIsPool = false;
  RegionBody = nullptr;
  BatchActive = false;
  BatchRegions = 0;
  BatchN = 0;
  BatchBase = 0;
}

//===----------------------------------------------------------------------===//
// Zygote nursery
//===----------------------------------------------------------------------===//

/// Ensures the nursery matches Opts.Zygotes: the first call forks every
/// zygote (lazily, at the first eligible region, so the region body is
/// already part of the forked image); later calls refill slots whose
/// zygote died, bounded by the run-wide respawn budget.
void Runtime::spawnZygotes() {
  if (!ZygotesSpawned) {
    NumZygotes = static_cast<int>(Opts.Zygotes);
    ZygotePids.assign(static_cast<size_t>(NumZygotes), 0);
    ZygoteRespawnsLeft = Opts.ZygoteRespawnBudget;
    ZygotesSpawned = true;
    for (int I = 0; I != NumZygotes; ++I)
      spawnZygoteInto(I);
    return;
  }
  for (int I = 0; I != NumZygotes; ++I) {
    if (ZygotePids[I] != 0 || ZygoteRespawnsLeft == 0)
      continue;
    --ZygoteRespawnsLeft;
    if (spawnZygoteInto(I)) {
      Ctl->noteZygoteRespawn();
      traceEmit(obs::EventKind::Respawn, static_cast<uint64_t>(I));
    }
  }
}

/// Forks one zygote into nursery slot \p Slot. In the child this never
/// returns. Returns false if the fork failed (warned; the nursery just
/// runs short).
bool Runtime::spawnZygoteInto(int Slot) {
  auto *B = static_cast<ZygoteBoard *>(Ctl->auxRegion());
  // Snapshot the generation in the parent, before the fork: a zygote
  // that is slow to reach its first park must still see the wake of the
  // region about to be opened, so its "already seen" mark cannot come
  // from its own (possibly later) first read.
  uint64_t StartGen = B->Generation.load(std::memory_order_relaxed);
  std::fflush(nullptr);
  double ForkT0 = monoNow();
  pid_t Pid = sys::forkZygote();
  if (Pid < 0) {
    Ctl->noteForkFailure();
    std::fprintf(stderr,
                 "wbtuner: fork failed for zygote %d (tp %llu): %s; "
                 "continuing with fewer zygotes\n",
                 Slot, static_cast<unsigned long long>(TpId),
                 std::strerror(errno));
    return false;
  }
  if (Pid == 0)
    zygoteLoop(Slot, StartGen); // never returns
  uint64_t ForkNs = static_cast<uint64_t>((monoNow() - ForkT0) * 1e9);
  Ctl->recordForkLatency(ForkNs);
  traceEmit(obs::EventKind::ZygoteSpawn, static_cast<uint64_t>(Slot), ForkNs);
  ZygotePids[Slot] = Pid;
  return true;
}

/// A zygote's whole life: park on the board until a generation bump (or
/// shutdown), restore the published region's tuned-parameter identity,
/// run leases like any pool worker, drain, re-park. Draws are bitwise-
/// identical to fork-mode sampling because runLeases() reseeds per lease
/// from (seed, tp, region, index) — nothing depends on process age.
void Runtime::zygoteLoop(int Slot, uint64_t StartGen) {
  Mode = ModeKind::Sampling;
  PoolWorker = true;
  WorkerIndex = Slot;
  SplitChildren.clear();
  ZygotesSpawned = false;
  ZygotePids.clear();
  // Inherited agent connections are the server's, not ours; holding dup'd
  // fds open would keep an agent from ever seeing a server-side EOF.
  closeInheritedNetFds();
  NetAgentPids.clear();
  NetSpawned = false;
  auto *B = static_cast<ZygoteBoard *>(Ctl->auxRegion());
  Table = zygoteTableOf(B);
  TableBytes = 0;
  ChildSlot &Me = slotsOf(Table)[Slot];
  uint64_t SeenGen = StartGen;
  for (;;) {
    pthread_mutex_lock(&B->Lock.Mutex);
    while (B->Generation.load(std::memory_order_relaxed) == SeenGen &&
           B->Command.load(std::memory_order_relaxed) != ZbExit)
      pthread_cond_wait(&B->Lock.Cond, &B->Lock.Mutex);
    int32_t Cmd = B->Command.load(std::memory_order_relaxed);
    SeenGen = B->Generation.load(std::memory_order_relaxed);
    pthread_mutex_unlock(&B->Lock.Mutex);
    if (Cmd == ZbExit) {
      std::fflush(nullptr);
      Ctl->childEventNotify();
      _exit(0);
    }
    if (Me.Command.load(std::memory_order_acquire) != SpActivate)
      continue; // not a participant of this region; park again
    // Restore the region snapshot the supervisor published before the
    // generation bump (the board Lock ordered it ahead of our wake).
    RegionCounter = B->Region;
    RegionN = B->N;
    RegionKind = static_cast<SamplingKind>(B->Kind);
    LeaseSlot = B->LeaseSlot;
    BarrierSlot = B->BarrierSlot;
    RegionDirPath = regionDir(RegionCounter);
    RegionActive = true;
    // Same per-process injection identity a forked worker of this slot
    // would have, so fault plans replay identically across modes.
    if (inject::armed())
      inject::tagProcess(mixSeed(TpId, (RegionCounter << 20) + 0xF00D +
                                           static_cast<uint64_t>(Slot)));
    // Parked zygotes hold no pool slot; take one for the region like an
    // activated spare does.
    Ctl->acquireSlot(/*IsTuning=*/false);
    Me.SlotHeld.store(1, std::memory_order_release);
    Ctl->noteZygoteRestore();
    traceEmit(obs::EventKind::ZygoteRestore, RegionCounter,
              static_cast<uint64_t>(Slot));
    traceEmit(obs::EventKind::WorkerBegin, RegionCounter,
              static_cast<uint64_t>(Slot));
    runLeases();
    traceEmit(obs::EventKind::WorkerEnd, RegionCounter,
              static_cast<uint64_t>(Slot));
    // Drain like exitChild(), but park instead of exiting. The exchanges
    // keep slot/barrier reclamation exactly-once against a straggler
    // kill racing the park; the SpPark store is what tells the
    // supervisor this zygote is done with the region.
    std::fflush(nullptr);
    if (Me.BarrierLeft.exchange(1, std::memory_order_acq_rel) == 0)
      Ctl->barrierLeave(BarrierSlot);
    if (Me.SlotHeld.exchange(0, std::memory_order_acq_rel) == 1)
      Ctl->releaseSlot();
    RegionActive = false;
    Me.Command.store(SpPark, std::memory_order_release);
    Ctl->childEventNotify();
  }
}

/// Opens a pool region on the zygote board instead of a fresh table:
/// reset the board's slots and lease cells for this region, publish the
/// region snapshot, and wake the nursery with a generation bump. No
/// fork, no mmap — the board lives in the control-block mapping every
/// zygote already shares. A pipelined batch opens the board ONCE for the
/// whole run of regions: \p TotalLeases spans every region's window and
/// the nursery is woken a single time, so zygotes roll from one region's
/// last lease straight into the next without re-parking. Returns the
/// number of participants.
int Runtime::openZygoteRegion(int N, int TotalLeases, int MaxW,
                              int64_t ClaimInit) {
  spawnZygotes();
  auto *B = static_cast<ZygoteBoard *>(Ctl->auxRegion());
  RegionTable *T = zygoteTableOf(B);
  Table = T;
  TableBytes = 0;
  RegionIsZygote = true;
  int Z = NumZygotes;
  RegionWorkers = Z; // respawn slots start after the nursery slots

  LeaseSlot = Ctl->acquireLeaseSlot();
  Ctl->leaseReset(LeaseSlot);
  BarrierSlot = Ctl->acquireBarrierSlot();

  int NumSlots = Z + TotalLeases;
  T->NumMains = Z;
  T->NumSlots = NumSlots;
  T->PoolMode = 1;
  T->NumLeases = TotalLeases;
  T->LeasesReturned.store(0, std::memory_order_relaxed);
  // The board table persists across regions (no memset): the batch
  // fields must be stored explicitly every time.
  T->BatchCount = BatchActive ? BatchRegions : 1;
  T->BatchN = BatchActive ? BatchN : TotalLeases;
  T->BatchBase = RegionCounter;
  T->ClaimLimit.store(ClaimInit, std::memory_order_release);
  ChildSlot *Slots = slotsOf(T);
  // Live zygotes become participants up to the worker cap; the rest (and
  // dead slots the respawn budget could not refill) sit this region out.
  int Want = std::min(MaxW, TotalLeases);
  int P = 0;
  for (int I = 0; I != Z; ++I) {
    ChildSlot &S = Slots[I];
    bool Part = ZygotePids[I] > 0 && P < Want;
    S.Pid.store(static_cast<int32_t>(ZygotePids[I]),
                std::memory_order_relaxed);
    S.SlotHeld.store(0, std::memory_order_relaxed);
    S.BarrierLeft.store(Part ? 0 : 1, std::memory_order_relaxed);
    S.InBarrier.store(0, std::memory_order_relaxed);
    S.Status.store(static_cast<int32_t>(Part ? SampleStatus::Running
                                             : SampleStatus::Unused),
                   std::memory_order_relaxed);
    S.Signal.store(0, std::memory_order_relaxed);
    S.Command.store(Part ? SpActivate : SpPark, std::memory_order_relaxed);
    S.CurrentLease.store(-1, std::memory_order_relaxed);
    P += Part;
  }
  for (int I = Z; I != NumSlots; ++I) {
    // Respawn slots, filled by settlePoolLeases() only if the whole
    // participant set dies with leases open.
    ChildSlot &S = Slots[I];
    S.Pid.store(0, std::memory_order_relaxed);
    S.SlotHeld.store(0, std::memory_order_relaxed);
    S.BarrierLeft.store(1, std::memory_order_relaxed);
    S.InBarrier.store(0, std::memory_order_relaxed);
    S.Status.store(static_cast<int32_t>(SampleStatus::Unused),
                   std::memory_order_relaxed);
    S.Signal.store(0, std::memory_order_relaxed);
    S.Command.store(SpPark, std::memory_order_relaxed);
    S.CurrentLease.store(-1, std::memory_order_relaxed);
  }
  LeaseCell *Leases = leasesOf(T);
  for (int I = 0; I != TotalLeases; ++I) {
    Leases[I].State.store(LsPending, std::memory_order_relaxed);
    Leases[I].Signal.store(0, std::memory_order_relaxed);
    Leases[I].Attempts.store(0, std::memory_order_relaxed);
  }
  Reaped.assign(static_cast<size_t>(NumSlots), 0);
  Ctl->barrierReset(BarrierSlot, P);

  // Publish the region snapshot, then wake the nursery; the board mutex
  // orders everything above ahead of every woken zygote's reads.
  B->Region = RegionCounter;
  B->N = N;
  B->Kind = static_cast<int32_t>(RegionKind);
  B->LeaseSlot = LeaseSlot;
  B->BarrierSlot = BarrierSlot;
  pthread_mutex_lock(&B->Lock.Mutex);
  B->Generation.fetch_add(1, std::memory_order_relaxed);
  pthread_cond_broadcast(&B->Lock.Cond);
  pthread_mutex_unlock(&B->Lock.Mutex);
  return P;
}

/// Root finish(): wake every parked zygote with ZbExit and reap it. The
/// wait is blocking but bounded — a woken zygote runs no user code
/// between the wake and its _exit(2).
void Runtime::shutdownZygotes() {
  if (!ZygotesSpawned)
    return;
  auto *B = static_cast<ZygoteBoard *>(Ctl->auxRegion());
  pthread_mutex_lock(&B->Lock.Mutex);
  B->Command.store(ZbExit, std::memory_order_relaxed);
  pthread_cond_broadcast(&B->Lock.Cond);
  pthread_mutex_unlock(&B->Lock.Mutex);
  for (int I = 0; I != NumZygotes; ++I) {
    if (ZygotePids[I] <= 0)
      continue;
    int St = 0;
    sys::waitPid(ZygotePids[I], &St, 0);
    ZygotePids[I] = 0;
  }
  ZygotesSpawned = false;
  NumZygotes = 0;
  ZygotePids.clear();
}

//===----------------------------------------------------------------------===//
// Distributed sampling agents
//===----------------------------------------------------------------------===//

/// Forked children must not keep dup'd copies of the server's sockets:
/// a connection the server closes would otherwise never read as EOF to
/// its agent. closeAll() runs no lease-state callbacks, so this is safe
/// in any child.
void Runtime::closeInheritedNetFds() {
  if (NetServer) {
    NetServer->closeAll();
    NetServer.reset();
  }
  // Same for the scrape endpoint: only the root answers scrapes; a child
  // holding a dup of the listen fd would keep the port alive after the
  // root is gone.
  if (MetricsEp) {
    MetricsEp->closeAll();
    MetricsEp.reset();
  }
}

/// Forks the agent processes, once, at the first net-eligible region —
/// the same lazy-spawn idea as the zygote nursery, and with the same
/// constraint: every later region must run the same body closure the
/// agents were forked with. Agents take no pool slot (they stand in for
/// remote machines, which would not share this host's pool either).
void Runtime::spawnNetAgents() {
  if (NetSpawned || !NetServer)
    return;
  NetSpawned = true;
  uint16_t Port = NetServer->port();
  for (unsigned I = 0; I != Opts.NetAgents; ++I) {
    std::fflush(nullptr);
    pid_t Pid = sys::forkProcess();
    if (Pid < 0) {
      Ctl->noteForkFailure();
      std::fprintf(stderr,
                   "wbtuner: fork failed for sampling agent %u: %s; "
                   "continuing with fewer agents\n",
                   I + 1, std::strerror(errno));
      continue;
    }
    if (Pid == 0)
      netAgentLoop(I + 1, Port); // never returns
    NetAgentPids.push_back(Pid);
  }
}

/// Root finish(): best-effort Shutdown broadcast (an idle agent exits
/// cleanly), then SIGKILL + reap — an agent mid-lease runs no cleanup
/// worth waiting for.
void Runtime::shutdownNetAgents() {
  if (NetServer) {
    NetServer->broadcastShutdown();
    // Two short pump rounds give in-flight TraceFrame batches a bounded
    // window to land before the kill; a half-sent frame from a killed
    // agent is discarded by the frame buffer as usual.
    if (!NetAgentPids.empty()) {
      NetServer->pump(10);
      NetServer->pump(10);
    }
  }
  for (pid_t Pid : NetAgentPids) {
    kill(Pid, SIGKILL);
    int St = 0;
    sys::waitPid(Pid, &St, 0);
  }
  NetAgentPids.clear();
  NetSpawned = false;
  NetServer.reset();
}

/// Opens the server's lease window over the region (or, in a batch, the
/// whole flat lease space), so agents can start claiming. The window
/// carries everything an agent needs to impersonate a local worker:
/// batch geometry for the lease→region mapping and the sampling kind
/// for stratified draws.
void Runtime::netOpenRegion() {
  if (!NetServer || !Table || !Table->PoolMode)
    return;
  NetServer->openRegion(TpId, Table->BatchBase,
                        static_cast<uint32_t>(Table->BatchCount),
                        static_cast<uint32_t>(Table->BatchN),
                        static_cast<uint32_t>(RegionKind));
}

void Runtime::netCloseRegion() {
  if (NetServer)
    NetServer->closeRegion();
}

/// Server callback: claim up to \p Want leases for a remote agent.
/// Returned leases first (the re-run path local workers also prefer),
/// then the bounded shared counter — the identical policy of
/// claimLeaseGated(), just batched. The claim marks (LsClaimed,
/// Attempts) are applied here, in the tuning process, so by the time
/// anyone else looks a remote claim is indistinguishable from a local
/// one.
std::vector<int64_t> Runtime::netClaimLeases(uint32_t Want) {
  std::vector<int64_t> Out;
  if (!Table || !Table->PoolMode || !RegionIsPool)
    return Out;
  LeaseCell *Leases = leasesOf(Table);
  int N = Table->NumLeases;
  while (Out.size() < Want) {
    int64_t Idx = -1;
    if (Table->LeasesReturned.load(std::memory_order_acquire) > 0) {
      for (int I = 0; I != N; ++I) {
        int32_t Expect = LsReturned;
        if (Leases[I].State.compare_exchange_strong(
                Expect, LsClaimed, std::memory_order_acq_rel)) {
          Table->LeasesReturned.fetch_sub(1, std::memory_order_relaxed);
          Idx = I;
          break;
        }
      }
    }
    if (Idx < 0) {
      int64_t Bound = std::min<int64_t>(
          Table->ClaimLimit.load(std::memory_order_acquire), N);
      Idx = Ctl->leaseClaimBounded(LeaseSlot, Bound);
      if (Idx < 0)
        break; // drained (or pipeline-gated): the agent re-asks later
      Leases[Idx].State.store(LsClaimed, std::memory_order_relaxed);
    }
    Leases[Idx].Attempts.fetch_add(1, std::memory_order_relaxed);
    Out.push_back(Idx);
  }
  return Out;
}

/// Server callback: apply one remotely run lease's result. The state CAS
/// comes FIRST: a lease the supervisor already retired (deadline settle)
/// must not land its payload — exactly-once means a late result is
/// dropped whole, leaving no trace in the store.
void Runtime::netApplyCommit(const net::LeaseResult &R) {
  if (!Table || !Table->PoolMode || R.Lease < 0 ||
      R.Lease >= Table->NumLeases)
    return;
  LeaseCell &L = leasesOf(Table)[R.Lease];
  bool Committed = R.Outcome == net::LeaseOutcome::Committed;
  int32_t Expect = LsClaimed;
  if (!L.State.compare_exchange_strong(Expect,
                                       Committed ? LsCommitted : LsPruned,
                                       std::memory_order_acq_rel))
    return;
  if (!Committed)
    return;
  // Batch lease → (region, local sample index), same mapping the
  // folding sweep uses; non-batch tables have BatchN == NumLeases so
  // this degenerates to the identity.
  uint64_t Reg = Table->BatchBase + static_cast<uint64_t>(R.Lease) /
                                        static_cast<uint64_t>(Table->BatchN);
  int Child = static_cast<int>(R.Lease % Table->BatchN);
  for (const net::CommitVar &V : R.Vars) {
    // Same slab-first routing as commitBytes() on the sampling side, so
    // a remote commit's stored bytes are identical to a local one's.
    if (Opts.Backend == StoreBackend::Shm) {
      if (V.Bytes.size() <= Opts.ShmRecordThreshold) {
        if (Ctl->slabCommit(TpId, Reg, V.Name, Child, V.Bytes.data(),
                            V.Bytes.size(), false))
          continue;
      } else {
        Ctl->noteSlabFallback(obs::FallbackReason::Oversized);
      }
    }
    std::string Dir = regionDir(Reg);
    makeDirOrWarn(Dir);
    writeFileBytes(sampleFilePath(Dir, V.Name, Child), V.Bytes);
  }
}

/// Server callback: a disconnected agent's still-owned lease. Inside the
/// region budget it goes back to the pool through the same one-retry
/// machinery that covers crashed local workers; past the deadline it is
/// retired as timed out, and a second-time orphan as crashed.
bool Runtime::netReturnLease(int64_t Lease) {
  if (!Table || !Table->PoolMode || Lease < 0 || Lease >= Table->NumLeases)
    return false;
  LeaseCell &L = leasesOf(Table)[Lease];
  int32_t Expect = LsClaimed;
  if (regionDeadlinePassed()) {
    L.State.compare_exchange_strong(Expect, LsTimedOut,
                                    std::memory_order_acq_rel);
    return false;
  }
  if (L.Attempts.load(std::memory_order_relaxed) < MaxLeaseAttempts) {
    if (L.State.compare_exchange_strong(Expect, LsReturned,
                                        std::memory_order_acq_rel)) {
      Table->LeasesReturned.fetch_add(1, std::memory_order_release);
      Ctl->noteLeaseReclaim();
      traceEmit(obs::EventKind::LeaseReclaim, static_cast<uint64_t>(Lease));
      return true;
    }
    return false;
  }
  L.State.compare_exchange_strong(Expect, LsCrashed,
                                  std::memory_order_acq_rel);
  return false;
}

/// An agent's whole life: connect, Hello, then claim lease ranges and
/// stream CommitBatch frames back until Shutdown. The agent never
/// touches the lease table, the slab, or the pool gate — and it does not
/// even use the inherited trace ring: a real remote agent would have no
/// shared mapping at all, so its events buffer locally (traceEmitSlow)
/// and travel as TraceFrame batches on the lease connection. Any socket
/// failure (injected partitions and torn frames included) resets to a
/// clean reconnect; whatever it had claimed has already been handed back
/// by the server's disconnect path.
void Runtime::netAgentLoop(uint32_t AgentId, uint16_t Port) {
  Mode = ModeKind::Sampling;
  NetAgentMode = true;
  PoolWorker = false;
  WorkerIndex = -1;
  SplitChildren.clear();
  // The region tables and the nursery belong to the tuning process.
  Table = nullptr;
  TableBytes = 0;
  ZygotesSpawned = false;
  NumZygotes = 0;
  ZygotePids.clear();
  closeInheritedNetFds();
  NetAgentPids.clear();
  if (inject::armed())
    inject::tagProcess(mixSeed(TpId, 0xA6E47ULL + AgentId));
  net::AgentChannel Chan(Opts.NetListenAddress, Port, AgentId);
  net::RegionOpenMsg Region;
  bool WindowOpen = false;
  std::vector<uint8_t> Payload;
  for (;;) {
    if (!Chan.connected() && !Chan.ensureConnected())
      break; // the server is gone for good
    if (!WindowOpen) {
      // Park on the wire until the next window (or Shutdown).
      if (!Chan.recvFrame(Payload))
        continue;
      if (net::frameType(Payload) == net::FrameType::Shutdown)
        break;
      if (net::frameType(Payload) == net::FrameType::RegionOpen &&
          net::decodeRegionOpen(Payload, Region))
        WindowOpen = true;
      else if (net::frameType(Payload) == net::FrameType::RegionClose)
        // Close-ack even when parked: the server's close harvest waits
        // for one TraceFrame per live agent before the region settles.
        agentFlushTrace(Chan);
      continue;
    }
    net::ClaimReqMsg Req;
    Req.Gen = Region.Gen;
    Req.Want = std::max(1u, Opts.NetLeaseChunk);
    if (!Chan.sendFrame(net::encodeClaimReq(Req)))
      continue;
    // Wait for the matching ClaimResp; a RegionOpen or RegionClose
    // arriving instead moves the window and abandons this claim.
    net::ClaimRespMsg Resp;
    bool HaveResp = false;
    while (Chan.recvFrame(Payload)) {
      net::FrameType T = net::frameType(Payload);
      if (T == net::FrameType::ClaimResp) {
        HaveResp =
            net::decodeClaimResp(Payload, Resp) && Resp.Gen == Region.Gen;
        break;
      }
      if (T == net::FrameType::RegionOpen) {
        if (net::decodeRegionOpen(Payload, Region))
          break; // newer window: re-ask under its generation
        continue;
      }
      if (T == net::FrameType::RegionClose) {
        uint64_t Gen = 0;
        if (net::decodeRegionClose(Payload, Gen) && Gen == Region.Gen)
          WindowOpen = false;
        // End-of-window flush: the server's closeRegion() harvest pumps
        // read this batch before the region settles.
        agentFlushTrace(Chan);
        break;
      }
      if (T == net::FrameType::Shutdown) {
        std::fflush(nullptr);
        _exit(0);
      }
    }
    if (!HaveResp)
      continue;
    if (Resp.Closed) {
      WindowOpen = false;
      continue;
    }
    if (Resp.Leases.empty()) {
      // The local pool drained the counter for now (or the pipeline gate
      // is down): ask again shortly instead of hammering the server.
      ::usleep(1000);
      continue;
    }
    net::CommitBatchMsg Batch;
    Batch.Gen = Region.Gen;
    for (int64_t Idx : Resp.Leases)
      Batch.Leases.push_back(netRunLease(Region, Idx));
    // The frame tracepoint fires BEFORE the send: a `tp.net.frame:kill`
    // plan kills the agent with results computed but the commit frame
    // unsent — exactly the lease loss the reclaim machinery must eat.
    traceEmit(obs::EventKind::NetCommitFrame,
              static_cast<uint64_t>(Batch.Leases.size()), Region.Gen);
    if (Chan.sendFrame(net::encodeCommitBatch(Batch)))
      // Piggy-back the buffered trace records on the same connection
      // while it is known-good; the server rebases their timestamps by
      // this connection's Hello clock offset.
      agentFlushTrace(Chan);
  }
  // Last-chance flush (Shutdown or server gone): best effort — if the
  // connection is already dead the backlog dies with this process, like
  // any other buffered telemetry of a killed host.
  if (Chan.connected())
    agentFlushTrace(Chan);
  std::fflush(nullptr);
  Ctl->childEventNotify();
  _exit(0);
}

/// Runs one remotely claimed lease, impersonating the local worker that
/// would have run it: same region identity, same region-local child
/// index, same per-lease RNG reseed — so remote draws are bitwise-
/// identical to local ones and mixed regions aggregate equivalently.
net::LeaseResult Runtime::netRunLease(const net::RegionOpenMsg &Region,
                                      int64_t Idx) {
  net::LeaseResult Out;
  Out.Lease = Idx;
  uint64_t Reg = Region.Base + static_cast<uint64_t>(Idx) / Region.N;
  int Local = static_cast<int>(static_cast<uint64_t>(Idx) % Region.N);
  RegionCounter = Reg;
  RegionDirPath.clear(); // agents never touch the file store
  RegionN = static_cast<int>(Region.N);
  RegionKind = static_cast<SamplingKind>(Region.Kind);
  ChildIndex = Local;
  LeaseIndex = static_cast<int>(Idx);
  RegionActive = true;
  AgentVars.clear();
  AgentCommitted = false;
  traceEmit(obs::EventKind::LeaseBegin, RegionCounter,
            static_cast<uint64_t>(Idx));
  TheRng = Rng(mixSeed(mixSeed(Opts.Seed, Region.TpId),
                       (RegionCounter << 20) + static_cast<uint64_t>(Local)));
  try {
    RegionBody();
    // Falling out of the body without aggregate() is a voluntary prune,
    // exactly as for local workers.
  } catch (const LeaseEnd &) {
  }
  traceEmit(obs::EventKind::LeaseEnd, RegionCounter,
            static_cast<uint64_t>(Idx),
            static_cast<uint16_t>(AgentCommitted ? LsCommitted : LsPruned));
  RegionActive = false;
  Out.Outcome = AgentCommitted ? net::LeaseOutcome::Committed
                               : net::LeaseOutcome::Pruned;
  Out.Vars = std::move(AgentVars);
  AgentVars.clear();
  ChildIndex = -1;
  LeaseIndex = -1;
  return Out;
}

double Runtime::sample(const std::string &Name, const Distribution &D) {
  assert(Inited && "sample() before init()");
  // Rule [SAMPLE] applies only in sampling processes; the tuning process
  // proceeds with the distribution's representative value.
  if (!isSampling())
    return D.defaultValue();
  if (RegionKind == SamplingKind::Random)
    return D.sample(TheRng);
  // Stratified: the run owning sample index I deterministically lands in
  // stratum perm(I) — stratifiedStratum()'s name-keyed affine
  // permutation. Retry spares (index >= N) fold back into the stratum
  // space; pool workers key on the claimed lease index, so coverage is
  // independent of which worker runs which sample.
  uint64_t N = static_cast<uint64_t>(RegionN);
  uint64_t Stratum =
      stratifiedStratum(Name, static_cast<uint64_t>(ChildIndex), N);
  double U = (static_cast<double>(Stratum) + 0.5) / static_cast<double>(N);
  return D.quantile(U);
}

void Runtime::check(bool Ok) {
  assert(Inited && "check() before init()");
  // Rule [CHECK] applies only in sampling processes.
  if (!isSampling() || Ok)
    return;
  if (NetAgentMode) {
    // Prune only the current remote lease; the agent survives to run the
    // rest of its claimed range. AgentCommitted stays false, which is
    // what the CommitBatch frame reports as Pruned.
    throw LeaseEnd();
  }
  if (PoolWorker) {
    // Prune only the current lease; the worker survives to claim the
    // next sample index.
    leasesOf(Table)[LeaseIndex].State.store(LsPruned,
                                            std::memory_order_relaxed);
    throw LeaseEnd();
  }
  slotsOf(Table)[ChildIndex].Status.store(
      static_cast<int32_t>(SampleStatus::Pruned), std::memory_order_relaxed);
  exitChild();
}

void Runtime::sync(const std::function<void()> &BarrierCb) {
  assert(Inited && RegionActive && "sync() outside a sampling region");
  // A pool worker runs its leases one after another, so there is no
  // moment when all samples exist to meet at a barrier.
  assert(!(Table && Table->PoolMode) && !NetAgentMode &&
         "sync() is not supported in worker-pool regions");
  if (isSampling()) {
    // Rule [SYNC-S]: notify the tuning process, wait to be released. The
    // InBarrier flag lets the supervisor repair the counts if we die here.
    Ctl->barrierArriveAndWait(BarrierSlot,
                              &slotsOf(Table)[ChildIndex].InBarrier);
    return;
  }
  // Rule [SYNC-T]: wait for every live child — in bounded slices, reaping
  // dead children between them so a crashed child cannot deadlock the
  // barrier — then run the callback and release. Retry spares are never
  // activated once a region synced (a replacement cannot replay the
  // barriers it missed).
  RegionUsedSync = true;
  while (!Ctl->barrierWaitAllTimed(BarrierSlot, 50)) {
    sweepChildren();
    if (regionDeadlinePassed())
      killStragglers();
  }
  if (BarrierCb)
    BarrierCb();
  Ctl->barrierRelease(BarrierSlot);
}

/// Routes one commit (sampling side) per the configured backend: slab
/// first under Shm, file store for the Files backend and for payloads
/// the slab will not take (oversized, directory/arena overflow,
/// over-long name). Either way the commit is torn-proof: the slab
/// publishes with a release-store after the payload, the file path
/// writes to a temp file and renames.
void Runtime::commitBytes(const std::string &Var,
                          const std::vector<uint8_t> &Bytes) {
  // Remote agent: commits ride the CommitBatch frame, not the store —
  // the server applies them tuning-side through this same routing.
  if (NetAgentMode) {
    AgentVars.push_back({Var, Bytes});
    return;
  }
  double T0 = monoNow();
  bool FellBack = false;
  obs::FallbackReason Why = obs::FallbackReason::Exhausted;
  if (Opts.Backend == StoreBackend::Shm) {
    if (Bytes.size() > Opts.ShmRecordThreshold) {
      // Oversized payloads are routed around the slab without touching
      // it, so the per-reason counter is bumped here, not in slabCommit.
      Ctl->noteSlabFallback(obs::FallbackReason::Oversized);
      FellBack = true;
      Why = obs::FallbackReason::Oversized;
    } else if (Ctl->slabCommit(TpId, RegionCounter, Var, ChildIndex,
                               Bytes.data(), Bytes.size(),
                               ChildIndex == Opts.DebugKillMidCommitAt)) {
      uint64_t Ns = static_cast<uint64_t>((monoNow() - T0) * 1e9);
      Ctl->recordCommitLatency(Ns);
      traceEmit(obs::EventKind::StoreCommit, /*Backend=*/0, Ns);
      return;
    } else {
      // slabCommit counted the refusal; reconstruct the reason for the
      // trace record (same classification order as slabCommit).
      FellBack = true;
      Why = Var.size() > SlabVarNameMax ? obs::FallbackReason::LongName
                                        : obs::FallbackReason::Exhausted;
    }
  }
  // Lazy region directory: pure-shm regions never create it; the first
  // file-fallback commit pays the mkdir (idempotent — EEXIST from a
  // sibling's earlier fallback is success) right before the write.
  makeDirOrWarn(RegionDirPath);
  writeFileBytes(sampleFilePath(RegionDirPath, Var, ChildIndex), Bytes);
  uint64_t Ns = static_cast<uint64_t>((monoNow() - T0) * 1e9);
  Ctl->recordCommitLatency(Ns);
  traceEmit(obs::EventKind::StoreCommit, /*Backend=*/1, Ns,
            FellBack ? static_cast<uint16_t>(Why) + 1 : 0);
}

void Runtime::commitExtra(const std::string &Var,
                          const std::vector<uint8_t> &Bytes) {
  assert(Inited && "commitExtra() before init()");
  if (!isSampling())
    return;
  assert(RegionActive && "commit outside a sampling region");
  commitBytes(Var, Bytes);
}

void Runtime::aggregate(const std::string &Var,
                        const std::vector<uint8_t> &Bytes,
                        const std::function<void(AggregationView &)> &Cb) {
  assert(Inited && RegionActive && "aggregate() outside a sampling region");
  if (isSampling()) {
    // Rule [AGGR-S] on a remote agent: the commit is captured for the
    // next CommitBatch frame instead of the store, and the lease body
    // unwinds back into the claim loop. The tuning-side server routes
    // the payload through the same slab/file machinery a local child
    // would have used, so the stored bytes are identical.
    if (NetAgentMode) {
      commitBytes(Var, Bytes);
      AgentCommitted = true;
      throw LeaseEnd();
    }
    // Rule [AGGR-S]: commit this run's outcome and terminate. The commit
    // is atomic under either backend (slab publish word / temp file +
    // rename), so dying mid-write can never leave a torn record that
    // committed() would count. The payload lands before the Committed
    // status store, so the tuning-side folding sweep never sees a
    // Committed child whose aggregate() variable is missing.
    commitBytes(Var, Bytes);
    if (PoolWorker) {
      // The lease is done, not the worker: publish completion and unwind
      // back into workerLoop() for the next sample index.
      leasesOf(Table)[LeaseIndex].State.store(LsCommitted,
                                              std::memory_order_release);
      throw LeaseEnd();
    }
    slotsOf(Table)[ChildIndex].Status.store(
        static_cast<int32_t>(SampleStatus::Committed),
        std::memory_order_release);
    exitChild();
  }
  // Rule [AGGR-T]: supervise the children until all have terminated —
  // bounded waits punctuated by WNOHANG reaps, the region deadline, and
  // retry-spare activation — then aggregate. A child that exits without
  // committing (pruned by @check, or crashed) simply has no record in
  // the store. Registered fold accumulators were filled incrementally
  // during the sweeps; foldRemaining() below tops them up with whatever
  // went through the file path. Pool mode additionally requires every
  // lease to reach a terminal state: all workers exiting with leases
  // still open (a wipe-out) makes settlePoolLeases() return the orphans
  // and fork a replacement worker.
  //
  // Pipelined batch: this delivery only waits for its own region's lease
  // window to settle — workers are meanwhile already sampling the next
  // regions, which is the whole point. Only the batch's last delivery
  // waits for the workers themselves to exit.
  bool Batched = BatchActive;
  bool LastDelivery =
      !Batched ||
      RegionCounter == BatchBase + static_cast<uint64_t>(BatchRegions) - 1;
  size_t W0 =
      Batched ? static_cast<size_t>(RegionCounter - BatchBase) *
                    static_cast<size_t>(BatchN)
              : 0;
  size_t WindowN = Batched ? static_cast<size_t>(BatchN)
                           : (RegionIsPool
                                  ? static_cast<size_t>(Table->NumLeases)
                                  : 0);
  auto windowSettled = [&]() {
    LeaseCell *Leases = leasesOf(Table);
    for (size_t I = W0, E = W0 + WindowN; I != E; ++I) {
      int32_t St = Leases[I].State.load(std::memory_order_acquire);
      if (St != LsCommitted && St != LsPruned && St != LsCrashed &&
          St != LsTimedOut && St != LsForkFailed)
        return false;
    }
    return true;
  };
  for (;;) {
    // Snapshot the event counter before the sweep: an exit event posted
    // while we are sweeping must not be lost to the wait below (with a
    // small worker pool that stall would be the last worker's exit, a
    // full 50 ms of dead time per region).
    uint64_t EventsSeen = Ctl->childEventCount();
    int Live = sweepChildren();
    // Remote agents hold no worker slot, so Live == 0 says nothing about
    // them: while the server still has owned leases, keep pumping — the
    // plain settle path would busy-spin without ever reading the wire.
    bool NetBusy = NetServer && NetServer->busy();
    if (Batched && windowSettled() && (!LastDelivery || (Live == 0 && !NetBusy)))
      break;
    if (Live == 0 && !NetBusy) {
      if (!RegionIsPool || settlePoolLeases())
        break;
      continue;
    }
    if (regionDeadlinePassed()) {
      killStragglers();
      if (RegionIsPool)
        markLeasesTimedOut();
      // Remotely owned leases were just retired as timed out; dropping
      // the connections lets the Return callback agree (past-deadline
      // returns retire) and unblocks the settle gate above. The agents
      // reconnect on their own for the next region.
      if (NetServer && NetServer->regionOpen())
        NetServer->dropConnections();
      continue;
    }
    if (NetServer && NetServer->regionOpen()) {
      // One poll covers agent frames, new connections, AND the local
      // child-event fd, so local wakeups keep their sub-50ms latency.
      NetServer->pump(50, Ctl->eventFd());
      Ctl->eventFdDrain();
    } else {
      Ctl->childEventWaitTimed(50, EventsSeen);
    }
  }
  discardSpares();

  std::vector<AggregationView::SampleRecord> Records;
  if (RegionIsPool) {
    // Pool mode reports per-sample records from the lease table; the
    // worker slots are an execution detail. A batch delivery reads its
    // region's window of the shared table.
    Records.resize(WindowN);
    LeaseCell *Leases = leasesOf(Table) + W0;
    for (size_t I = 0, E = Records.size(); I != E; ++I) {
      Records[I].Status =
          leaseSampleStatus(Leases[I].State.load(std::memory_order_acquire));
      Records[I].Signal = Leases[I].Signal.load(std::memory_order_relaxed);
    }
  } else {
    Records.resize(static_cast<size_t>(Table->NumSlots));
    ChildSlot *Slots = slotsOf(Table);
    for (size_t I = 0, E = Records.size(); I != E; ++I) {
      Records[I].Status = statusOf(Slots[I]);
      Records[I].Signal = Slots[I].Signal.load(std::memory_order_relaxed);
    }
  }
  // Final folding pass with every lease of this window terminal (their
  // publishing stores ordered before our acquire loads above): first the
  // slab, then the file-path stragglers through the reader.
  foldSlabCommits();
  std::shared_ptr<const RegionReader> Reader = makeRegionReader();
  foldRemaining(*Reader, Records);
  if (Batched) {
    // Slide the fold sweep's low-water mark past everything this
    // delivery (and earlier ones) fully consumed, so the next delivery
    // rescans only the pipeline's in-flight window instead of the whole
    // batch prefix (O(K*N) per delivery instead of O(R*N)). Stop at the
    // first record we cannot prove consumed: unpublished (its writer may
    // be mid-commit for a future region) or belonging to an undelivered
    // region.
    SlabEntryView E;
    for (size_t End = Ctl->slabAllocated(); RegionSlabStart != End;
         ++RegionSlabStart) {
      if (!Ctl->slabEntry(RegionSlabStart, E))
        break;
      if (E.Tp == TpId && E.Region > RegionCounter)
        break;
    }
  }
  if (!Batched) {
    // A batch keeps its table, worker set, and lease/barrier slots alive
    // across deliveries; regionBatch() tears them down after the last.
    netCloseRegion();
    destroyRegionTable();
    RegionIsZygote = false;
    Ctl->releaseBarrierSlot(BarrierSlot);
    if (RegionIsPool) {
      Ctl->releaseLeaseSlot(LeaseSlot);
      LeaseSlot = -1;
      RegionIsPool = false;
    }
  }
  AggregationView::StoreCounters SC;
  SC.ShmCommits = Ctl->slabPublishedTotal() - RegionShmStart;
  for (int R = 0; R != obs::NumFallbackReasons; ++R)
    SC.Fallbacks[R] = Ctl->slabFallbacks(static_cast<obs::FallbackReason>(R)) -
                      RegionFallbackStart[R];
  Ctl->noteRegionResolved();
  // Wall-clock latency of the whole region — open to resolution — next
  // to the per-operation fork/commit histograms.
  if (RegionT0 > 0) {
    Ctl->recordRegionLatency(
        static_cast<uint64_t>((monoNow() - RegionT0) * 1e9));
    RegionT0 = 0;
  }
  traceEmit(obs::EventKind::RegionEnd, RegionCounter);
  publishTelemetry();
  // Every child of this region is reaped, so an unpublished cell can only
  // be a torn writer (or a concurrent tuning process, whose claim the
  // ring recovers from) — skip instead of stalling the ring. Mid-batch
  // deliveries still have live writers, so they must NOT skip: a cell a
  // live worker is about to publish would be counted as a drop and the
  // ring's tail would run past it.
  drainTraceEvents(/*Final=*/LastDelivery);
  AggregationView View(std::move(Reader), std::move(Records), SC);
  RegionActive = false;
  if (Cb)
    Cb(View);
}

bool Runtime::split() {
  assert(Inited && "split() before init()");
  assert(isTuning() && "rule [SPLIT] applies to tuning processes only");
  Ctl->tuningProcessForked();
  // Alg. 1: a tuning spawn waits for the 75% gate.
  Ctl->acquireSlot(/*IsTuning=*/true);
  traceEmit(obs::EventKind::SchedAdmit, /*Tuning=*/1);
  std::fflush(nullptr); // keep buffered stdio out of the child
  double ForkT0 = monoNow();
  pid_t Pid = sys::forkProcess();
  if (Pid < 0) {
    // Undo the reservation: the child tuning process never existed.
    Ctl->releaseSlot();
    Ctl->tuningProcessExited();
    Ctl->noteForkFailure();
    std::fprintf(stderr,
                 "wbtuner: fork failed for split of tuning process %llu; "
                 "continuing without the child\n",
                 static_cast<unsigned long long>(TpId));
    return false;
  }
  if (Pid != 0) {
    uint64_t ForkNs = static_cast<uint64_t>((monoNow() - ForkT0) * 1e9);
    Ctl->recordForkLatency(ForkNs);
    traceEmit(obs::EventKind::Fork, static_cast<uint64_t>(Pid), ForkNs,
              /*Split=*/1);
    SplitChildren.push_back(Pid);
    return false;
  }
  // Child tuning process: fresh aggregation store and region bookkeeping;
  // the regular store (address space) is inherited, the sample store is
  // not, per rule [SPLIT].
  IsRoot = false;
  TpId = Ctl->nextTpId();
  TpDir = Opts.RunDir + "/tp" + std::to_string(TpId);
  makeDirOrWarn(TpDir);
  if (inject::armed())
    inject::tagProcess(mixSeed(TpId, 0x5B117));
  RegionCounter = 0;
  RegionActive = false;
  SplitChildren.clear();
  // The parent's live region (we are usually forked from inside its
  // aggregation callback) is not ours to supervise: drop our view of its
  // child table and barrier.
  if (Table) {
    // A zygote-board table is part of the control-block mapping (see
    // destroyRegionTable); only a per-region table is ours to unmap.
    if (!RegionIsZygote)
      munmap(Table, TableBytes);
    Table = nullptr;
    TableBytes = 0;
  }
  Reaped.clear();
  NumSpares = 0;
  RegionDirPath.clear();
  RegionSlabStart = 0;
  RegionShmStart = 0;
  std::fill(std::begin(RegionFallbackStart), std::end(RegionFallbackStart),
            0);
  // Drained events belong to the parent; ours start fresh (the parent
  // merges our fragment at root finish()).
  TraceBuf.clear();
  FoldScalars.clear();
  FoldVotes.clear();
  FoldMeanVecs.clear();
  FoldedPairs.clear();
  RegionIsPool = false;
  RegionWorkers = 0;
  LeaseSlot = -1;
  LeaseIndex = -1;
  RespawnsUsed = 0;
  RegionBody = nullptr;
  PoolWorker = false;
  WorkerIndex = -1;
  BatchActive = false;
  BatchRegions = 0;
  BatchN = 0;
  BatchBase = 0;
  // The nursery belongs to the root; a split tp forks plain workers.
  ZygotesSpawned = false;
  NumZygotes = 0;
  ZygotePids.clear();
  ZygoteRespawnsLeft = 0;
  RegionIsZygote = false;
  // So do the lease server and its agents: drop the inherited fds
  // without running any lease-state callbacks.
  closeInheritedNetFds();
  NetAgentPids.clear();
  NetSpawned = false;
  TheRng = Rng(mixSeed(Opts.Seed, 0x5117 + TpId));
  return true;
}

void Runtime::expose(const std::string &Name,
                     const std::vector<uint8_t> &Bytes) {
  assert(Inited && "expose() before init()");
  // Rule [EXPOSE] applies to tuning processes; we accept it from sampling
  // processes too (their exposed values are visible run-wide).
  writeFileBytes(Opts.RunDir + "/exposed/" + Name, Bytes);
}

bool Runtime::load(const std::string &Name, std::vector<uint8_t> &Out) const {
  assert(Inited && "load() before init()");
  return readFileBytes(Opts.RunDir + "/exposed/" + Name, Out);
}

int Runtime::freeSlots() const { return Ctl->freeSlots(); }
unsigned Runtime::maxPool() const { return Ctl->maxPool(); }
uint64_t Runtime::crashedSamples() const { return Ctl->crashedTotal(); }
uint64_t Runtime::timedOutSamples() const { return Ctl->timedOutTotal(); }
uint64_t Runtime::forkFailures() const { return Ctl->forkFailedTotal(); }
uint64_t Runtime::leaseReclaims() const { return Ctl->leaseReclaimsTotal(); }
uint64_t Runtime::shmCommits() const { return Ctl->slabPublishedTotal(); }
uint64_t Runtime::storeFallbacks() const { return Ctl->slabFallbackTotal(); }

obs::RuntimeMetrics Runtime::metrics() const {
  obs::RuntimeMetrics M;
  M.RegionsResolved = Ctl->regionsResolvedTotal();
  M.ElapsedSec = monoNow() - InitTime;
  M.ShmCommits = Ctl->slabPublishedTotal();
  M.FileFallbacks = Ctl->slabFallbackTotal();
  for (int R = 0; R != obs::NumFallbackReasons; ++R)
    M.Fallbacks[R] = Ctl->slabFallbacks(static_cast<obs::FallbackReason>(R));
  M.CrashedSamples = Ctl->crashedTotal();
  M.TimedOutSamples = Ctl->timedOutTotal();
  M.ForkFailures = Ctl->forkFailedTotal();
  M.LeaseReclaims = Ctl->leaseReclaimsTotal();
  M.Retries = Ctl->retriesTotal();
  M.SlabRecordsHighWater = Ctl->slabRecordsHighWater();
  M.SlabBytesHighWater = Ctl->slabBytesHighWater();
  M.SlabRecycles = Ctl->slabRecyclesTotal();
  M.SlabEpochHighWater = Ctl->slabEpochRecordsHighWater();
  M.ThpGranted = Ctl->thpGranted();
  M.ThpDeclined = Ctl->thpDeclined();
  M.HugetlbGranted = Ctl->hugetlbGranted();
  M.HugetlbDeclined = Ctl->hugetlbDeclined();
  M.ZygoteRespawns = Ctl->zygoteRespawnsTotal();
  M.ZygoteRestores = Ctl->zygoteRestoresTotal();
  M.RemoveFailures = removeTreeFailures();
  M.TraceEvents = Ctl->traceEmittedTotal();
  M.TraceDrops = Ctl->traceDropsTotal();
  M.ForkLatency = Ctl->forkLatencySnapshot();
  M.CommitLatency = Ctl->commitLatencySnapshot();
  M.RegionLatency = Ctl->regionLatencySnapshot();
  M.ScoresNoted = Ctl->scoresNotedTotal();
  M.ScoreLast = Ctl->scoreLast();
  M.ScoreMin = Ctl->scoreMin();
  M.ScoreMax = Ctl->scoreMax();
  M.NetAgents = NetAgentPids.size();
  if (NetServer) {
    const net::NetStats &NS = NetServer->stats();
    M.NetReconnects = NS.Reconnects;
    M.NetRemoteLeases = NS.RemoteLeases;
    M.NetLeasesReturned = NS.LeasesReturned;
    M.NetFrames = NS.Frames;
    M.NetBytesIn = NS.BytesIn;
    M.NetBytesOut = NS.BytesOut;
    M.NetRecvHello = NS.RecvByType[static_cast<int>(net::FrameType::Hello)];
    M.NetRecvClaimReq =
        NS.RecvByType[static_cast<int>(net::FrameType::ClaimReq)];
    M.NetRecvCommitBatch =
        NS.RecvByType[static_cast<int>(net::FrameType::CommitBatch)];
    M.NetRecvTrace =
        NS.RecvByType[static_cast<int>(net::FrameType::TraceFrame)];
    // Agent records never touch the shared ring; fold the harvested
    // count in so TraceEvents stays the run-wide total.
    M.TraceEvents += NS.TraceEvents;
  }
  return M;
}

uint16_t Runtime::metricsPort() const {
  return MetricsEp ? MetricsEp->port() : 0;
}

void Runtime::publishTelemetry() {
  // Single seqlock writer: only the root tuning process publishes (a
  // @split tuning process sweeping its own children must not interleave
  // with the root's write side).
  if (!Inited || !IsRoot || !isTuning())
    return;
  Ctl->publishMetricsSnapshot(metrics());
  if (MetricsEp)
    MetricsEp->pump(0);
}

void Runtime::noteScore(double Score, uint32_t Samples) {
  // Loud in every build type: under NDEBUG the old assert compiled out
  // and the next line dereferenced a null Ctl.
  if (!Inited)
    sys::fatal("noteScore() before init()");
  Ctl->noteScore(Score);
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Score));
  std::memcpy(&Bits, &Score, sizeof(Bits));
  traceEmit(obs::EventKind::Progress, RegionCounter, Bits,
            static_cast<uint16_t>(Samples > 0xffff ? 0xffff : Samples));
  publishTelemetry();
}

void Runtime::traceEmitSlow(obs::EventKind Kind, uint64_t A, uint64_t B,
                            uint16_t Arg) {
  if (NetAgentMode) {
    // A remote agent has no shared ring with the tuning host; buffer the
    // event for the next TraceFrame flush. Bounded: a stalled connection
    // drops the oldest half rather than growing without limit.
    constexpr size_t MaxAgentBacklog = 65536;
    if (AgentTraceBuf.size() >= MaxAgentBacklog)
      AgentTraceBuf.erase(AgentTraceBuf.begin(),
                          AgentTraceBuf.begin() + MaxAgentBacklog / 2);
    AgentTraceBuf.push_back(obs::makeEvent(Kind, A, B, Arg));
    return;
  }
  Ctl->traceEmit(obs::makeEvent(Kind, A, B, Arg));
}

void Runtime::agentFlushTrace(net::AgentChannel &Chan) {
  if (AgentTraceBuf.empty())
    return;
  // Best effort: on send failure keep the backlog for the reconnect path
  // (the channel re-Hellos, re-establishing the clock offset the server
  // applies to these timestamps).
  if (Chan.sendFrame(net::encodeTraceFrame(AgentTraceBuf)))
    AgentTraceBuf.clear();
}

void Runtime::drainTraceEvents(bool Final) {
  // Only tuning processes consume the ring; children are producers only.
  if (!TraceOn || !isTuning())
    return;
  Ctl->traceDrain(TraceBuf, /*SkipUnpublished=*/Final);
}

void Runtime::writeTraceFragmentFile() {
  std::string Path = Opts.RunDir + "/obs-frag." + std::to_string(TpId) + ".bin";
  if (!obs::writeTraceFragment(Path, TraceBuf))
    std::fprintf(stderr, "wbtuner: failed to write trace fragment %s\n",
                 Path.c_str());
  TraceBuf.clear();
}

namespace {

/// True for exactly "obs-frag.<digits>.bin" — the names
/// writeTraceFragmentFile produces. A leftover ".tmp" of a killed
/// writer, or any stray file, must not reach the fragment parser.
bool isTraceFragmentName(const char *Name) {
  std::string_view V(Name);
  if (V.size() < 14 || V.substr(0, 9) != "obs-frag." ||
      V.substr(V.size() - 4) != ".bin")
    return false;
  std::string_view Id = V.substr(9, V.size() - 13);
  for (char C : Id)
    if (C < '0' || C > '9')
      return false;
  return true;
}

} // namespace

void Runtime::exportTrace() {
  // Merge the fragments @split tuning processes left in the run dir; the
  // exporter re-sorts by timestamp, so order does not matter here. A
  // run dir we cannot list, or a fragment that fails to parse, loses
  // those events but must not lose the export of everything else.
  DIR *D = sys::openDir(Opts.RunDir.c_str());
  if (!D) {
    std::fprintf(stderr,
                 "wbtuner: cannot list run dir %s for trace fragments: %s\n",
                 Opts.RunDir.c_str(), std::strerror(errno));
  } else {
    while (dirent *E = readdir(D)) {
      if (!isTraceFragmentName(E->d_name))
        continue;
      std::string Path = Opts.RunDir + "/" + E->d_name;
      if (!obs::readTraceFragment(Path, TraceBuf))
        std::fprintf(stderr,
                     "wbtuner: trace fragment %s is corrupt or truncated; "
                     "merged what was readable\n",
                     Path.c_str());
    }
    closedir(D);
  }
  if (!obs::writeChromeTrace(TracePathEff, std::move(TraceBuf)))
    std::fprintf(stderr, "wbtuner: failed to write trace file %s\n",
                 TracePathEff.c_str());
  TraceBuf.clear();
}

void Runtime::sharedScalarAdd(int Cell, double X) { Ctl->scalarAdd(Cell, X); }
void Runtime::sharedScalarReset(int Cell) { Ctl->scalarReset(Cell); }
double Runtime::sharedScalarMin(int Cell) const { return Ctl->scalarMin(Cell); }
double Runtime::sharedScalarMax(int Cell) const { return Ctl->scalarMax(Cell); }
double Runtime::sharedScalarMean(int Cell) const {
  return Ctl->scalarMean(Cell);
}
size_t Runtime::sharedScalarCount(int Cell) const {
  return Ctl->scalarCount(Cell);
}

void Runtime::sharedVoteAdd(const std::vector<uint8_t> &Mask) {
  Ctl->voteAdd(Mask.data(), Mask.size());
}
size_t Runtime::sharedVoteRuns() const { return Ctl->voteRuns(); }
std::vector<uint8_t> Runtime::sharedVoteResult(double Threshold) const {
  return Ctl->voteResult(Threshold);
}
void Runtime::sharedVoteReset() { Ctl->voteReset(); }
