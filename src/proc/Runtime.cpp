//===- proc/Runtime.cpp - Fork-based WBTuner runtime ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "proc/Runtime.h"

#include "proc/SharedControl.h"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

using namespace wbt;
using namespace wbt::proc;

namespace {

uint64_t mixSeed(uint64_t X, uint64_t Y) {
  uint64_t Z = X + 0x9e3779b97f4a7c15ULL * (Y + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t hashName(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : S)
    H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ULL;
  return H;
}

uint64_t gcd64(uint64_t A, uint64_t B) {
  while (B) {
    uint64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

bool makeDir(const std::string &Path) {
  return mkdir(Path.c_str(), 0700) == 0 || errno == EEXIST;
}

/// Recursively removes \p Path (files and directories created by us only).
void removeTree(const std::string &Path) {
  std::string Cmd = "rm -rf '" + Path + "'";
  // The run directory is created via mkdtemp under our control; paths
  // never contain quotes.
  int Rc = std::system(Cmd.c_str());
  (void)Rc;
}

std::string sampleFilePath(const std::string &RegionDir,
                           const std::string &Var, int I) {
  return RegionDir + "/" + Var + "." + std::to_string(I);
}

} // namespace

//===----------------------------------------------------------------------===//
// AggregationView
//===----------------------------------------------------------------------===//

std::vector<int> AggregationView::committed(const std::string &Var) const {
  std::vector<int> Out;
  for (int I = 0; I != Spawned; ++I)
    if (access(sampleFilePath(RegionDir, Var, I).c_str(), R_OK) == 0)
      Out.push_back(I);
  return Out;
}

bool AggregationView::loadBytes(const std::string &Var, int I,
                                std::vector<uint8_t> &Out) const {
  return readFileBytes(sampleFilePath(RegionDir, Var, I), Out);
}

double AggregationView::loadDouble(const std::string &Var, int I,
                                   double Default) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return Default;
  return decodeDouble(Bytes, Default);
}

std::vector<double> AggregationView::loadDoubles(const std::string &Var,
                                                 int I) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return {};
  return decodeVector<double>(Bytes);
}

std::vector<uint8_t> AggregationView::loadMask(const std::string &Var,
                                               int I) const {
  std::vector<uint8_t> Bytes;
  if (!loadBytes(Var, I, Bytes))
    return {};
  return decodeVector<uint8_t>(Bytes);
}

//===----------------------------------------------------------------------===//
// Runtime
//===----------------------------------------------------------------------===//

Runtime &Runtime::get() {
  static Runtime Instance;
  return Instance;
}

void Runtime::init(const RuntimeOptions &InOpts) {
  assert(!Inited && "proc runtime initialized twice");
  Opts = InOpts;
  if (Opts.RunDir.empty()) {
    char Template[] = "/tmp/wbtuner.XXXXXX";
    char *Dir = mkdtemp(Template);
    assert(Dir && "mkdtemp failed");
    Opts.RunDir = Dir;
  } else {
    makeDir(Opts.RunDir);
  }
  makeDir(Opts.RunDir + "/exposed");

  Ctl = std::make_unique<SharedControl>();
  Ctl->init(Opts.MaxPool, Opts.VoteSlots, Opts.UseScheduler);

  Inited = true;
  IsRoot = true;
  Mode = ModeKind::Tuning;
  TpId = 0;
  TpDir = Opts.RunDir + "/tp0";
  makeDir(TpDir);
  TheRng = Rng(mixSeed(Opts.Seed, 0));
  // The root tuning process occupies a pool slot like any other process.
  Ctl->acquireSlot(/*IsTuning=*/true);
}

void Runtime::finish() {
  assert(Inited && "finish() before init()");
  assert(isTuning() && "sampling processes terminate in aggregate()");
  // Reap our own split children first; their finish() already waited for
  // theirs, so this transitively covers all descendants.
  for (pid_t Pid : SplitChildren)
    waitpid(Pid, nullptr, 0);
  SplitChildren.clear();
  if (IsRoot) {
    Ctl->waitLiveTuningProcesses(1);
    Ctl->releaseSlot();
    if (!Opts.KeepFiles)
      removeTree(Opts.RunDir);
    Inited = false;
    Ctl.reset();
    return;
  }
  Ctl->tuningProcessExited();
  Ctl->releaseSlot();
}

void Runtime::finishAndExit() {
  finish();
  std::fflush(nullptr); // _exit(2) skips stdio teardown
  _exit(0);
}

std::string Runtime::regionDir(uint64_t Region) const {
  return TpDir + "/r" + std::to_string(Region);
}

void Runtime::exitChild() {
  // Controlled exit of a sampling process: leave the region barrier so a
  // pending @sync cannot deadlock, then return the pool slot. _exit(2)
  // skips stdio teardown, so flush what the user printed first.
  std::fflush(nullptr);
  Ctl->barrierLeave(BarrierSlot);
  Ctl->releaseSlot();
  _exit(0);
}

void Runtime::sampling(int N, SamplingKind Kind) {
  assert(Inited && "sampling() before init()");
  assert(N > 0 && "region needs at least one sample");
  // Rule [SAMPLING] only applies in a tuning process; in a sampling
  // process it is a no-op.
  if (isSampling())
    return;
  assert(!RegionActive && "nested @sampling regions are not supported");

  ++RegionCounter;
  std::string Dir = regionDir(RegionCounter);
  makeDir(Dir);

  RegionN = N;
  RegionKind = Kind;
  BarrierSlot = static_cast<int>(
      mixSeed(TpId, RegionCounter) % static_cast<uint64_t>(NumBarrierSlots));
  Ctl->barrierReset(BarrierSlot, N);
  ChildPids.clear();
  ChildPids.reserve(N);

  // Flush stdio before forking so children do not replay the parent's
  // buffered output.
  std::fflush(nullptr);
  for (int I = 0; I != N; ++I) {
    // Alg. 1: a sampling spawn waits only for a free slot.
    Ctl->acquireSlot(/*IsTuning=*/false);
    pid_t Pid = fork();
    assert(Pid >= 0 && "fork failed");
    if (Pid == 0) {
      // Sampling child: it owns the slot just acquired and releases it in
      // exitChild().
      Mode = ModeKind::Sampling;
      ChildIndex = I;
      RegionActive = true;
      ChildPids.clear();
      SplitChildren.clear();
      TheRng = Rng(mixSeed(mixSeed(Opts.Seed, TpId),
                           (RegionCounter << 20) + static_cast<uint64_t>(I)));
      return;
    }
    ChildPids.push_back(Pid);
  }
  RegionActive = true;
}

double Runtime::sample(const std::string &Name, const Distribution &D) {
  assert(Inited && "sample() before init()");
  // Rule [SAMPLE] applies only in sampling processes; the tuning process
  // proceeds with the distribution's representative value.
  if (!isSampling())
    return D.defaultValue();
  if (RegionKind == SamplingKind::Random)
    return D.sample(TheRng);
  // Stratified: child I deterministically owns stratum perm(I), where
  // perm is an affine map with a name-derived multiplier (coprime to N)
  // and offset, so different variables get different stratum orders.
  uint64_t N = static_cast<uint64_t>(RegionN);
  uint64_t H = hashName(Name);
  uint64_t Mult = (H | 1) % N;
  if (Mult == 0 || gcd64(Mult, N) != 1)
    Mult = 1;
  uint64_t Offset = (H >> 17) % N;
  uint64_t Stratum = (static_cast<uint64_t>(ChildIndex) * Mult + Offset) % N;
  double U = (static_cast<double>(Stratum) + 0.5) / static_cast<double>(N);
  return D.quantile(U);
}

void Runtime::check(bool Ok) {
  assert(Inited && "check() before init()");
  // Rule [CHECK] applies only in sampling processes.
  if (!isSampling() || Ok)
    return;
  exitChild();
}

void Runtime::sync(const std::function<void()> &BarrierCb) {
  assert(Inited && RegionActive && "sync() outside a sampling region");
  if (isSampling()) {
    // Rule [SYNC-S]: notify the tuning process, wait to be released.
    Ctl->barrierArriveAndWait(BarrierSlot);
    return;
  }
  // Rule [SYNC-T]: wait for every live child, run the callback, release.
  Ctl->barrierWaitAll(BarrierSlot);
  if (BarrierCb)
    BarrierCb();
  Ctl->barrierRelease(BarrierSlot);
}

void Runtime::commitExtra(const std::string &Var,
                          const std::vector<uint8_t> &Bytes) {
  assert(Inited && "commitExtra() before init()");
  if (!isSampling())
    return;
  assert(RegionActive && "commit outside a sampling region");
  writeFileBytes(sampleFilePath(regionDir(RegionCounter), Var, ChildIndex),
                 Bytes);
}

void Runtime::aggregate(const std::string &Var,
                        const std::vector<uint8_t> &Bytes,
                        const std::function<void(AggregationView &)> &Cb) {
  assert(Inited && RegionActive && "aggregate() outside a sampling region");
  if (isSampling()) {
    // Rule [AGGR-S]: commit this run's outcome and terminate.
    writeFileBytes(sampleFilePath(regionDir(RegionCounter), Var, ChildIndex),
                   Bytes);
    exitChild();
  }
  // Rule [AGGR-T]: wait for all children, then aggregate. A child that
  // exits without committing (pruned by @check, or crashed) simply has no
  // file in the store.
  for (pid_t Pid : ChildPids)
    waitpid(Pid, nullptr, 0);
  ChildPids.clear();
  AggregationView View(regionDir(RegionCounter), RegionN);
  RegionActive = false;
  if (Cb)
    Cb(View);
}

bool Runtime::split() {
  assert(Inited && "split() before init()");
  assert(isTuning() && "rule [SPLIT] applies to tuning processes only");
  Ctl->tuningProcessForked();
  // Alg. 1: a tuning spawn waits for the 75% gate.
  Ctl->acquireSlot(/*IsTuning=*/true);
  std::fflush(nullptr); // keep buffered stdio out of the child
  pid_t Pid = fork();
  assert(Pid >= 0 && "fork failed");
  if (Pid != 0) {
    SplitChildren.push_back(Pid);
    return false;
  }
  // Child tuning process: fresh aggregation store and region bookkeeping;
  // the regular store (address space) is inherited, the sample store is
  // not, per rule [SPLIT].
  IsRoot = false;
  TpId = Ctl->nextTpId();
  TpDir = Opts.RunDir + "/tp" + std::to_string(TpId);
  makeDir(TpDir);
  RegionCounter = 0;
  RegionActive = false;
  ChildPids.clear();
  SplitChildren.clear();
  TheRng = Rng(mixSeed(Opts.Seed, 0x5117 + TpId));
  return true;
}

void Runtime::expose(const std::string &Name,
                     const std::vector<uint8_t> &Bytes) {
  assert(Inited && "expose() before init()");
  // Rule [EXPOSE] applies to tuning processes; we accept it from sampling
  // processes too (their exposed values are visible run-wide).
  writeFileBytes(Opts.RunDir + "/exposed/" + Name, Bytes);
}

bool Runtime::load(const std::string &Name, std::vector<uint8_t> &Out) const {
  assert(Inited && "load() before init()");
  return readFileBytes(Opts.RunDir + "/exposed/" + Name, Out);
}

void Runtime::sharedScalarAdd(int Cell, double X) { Ctl->scalarAdd(Cell, X); }
void Runtime::sharedScalarReset(int Cell) { Ctl->scalarReset(Cell); }
double Runtime::sharedScalarMin(int Cell) const { return Ctl->scalarMin(Cell); }
double Runtime::sharedScalarMax(int Cell) const { return Ctl->scalarMax(Cell); }
double Runtime::sharedScalarMean(int Cell) const {
  return Ctl->scalarMean(Cell);
}
size_t Runtime::sharedScalarCount(int Cell) const {
  return Ctl->scalarCount(Cell);
}

void Runtime::sharedVoteAdd(const std::vector<uint8_t> &Mask) {
  Ctl->voteAdd(Mask.data(), Mask.size());
}
size_t Runtime::sharedVoteRuns() const { return Ctl->voteRuns(); }
std::vector<uint8_t> Runtime::sharedVoteResult(double Threshold) const {
  return Ctl->voteResult(Threshold);
}
void Runtime::sharedVoteReset() { Ctl->voteReset(); }
