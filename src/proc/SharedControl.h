//===- proc/SharedControl.h - Cross-process shared state --------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The anonymous shared-memory control block behind the fork-based
/// runtime. Created once by the root tuning process and inherited by
/// every forked sampling/tuning process. Holds:
///
///  * the process pool of paper Alg. 1 (slot counter + the 75% tuning
///    admission gate) — the cross-process counterpart of core/Scheduler;
///  * barrier slots for @sync, handed out through a shared free-list so
///    concurrent tuning processes can never collide on one slot;
///  * the live-tuning-process counter that lets the root wait for @split
///    descendants;
///  * a child-event condvar that sampling children pulse on exit, so the
///    supervising tuning process can sleep in bounded waits instead of
///    blocking indefinitely in waitpid(2);
///  * crash/timeout/fork-failure counters (diagnostics for the child
///    supervisor);
///  * shared accumulators for incremental aggregation across processes
///    (paper Sec. IV-B: shared min/max/avg cells and a vote buffer that
///    replaces one-shot file aggregation);
///  * the **commit slab**: a lock-free shared-memory aggregation store
///    that replaces the per-commit write(2)+rename(2) pair of the file
///    backend. A fixed directory of commit records plus a payload arena,
///    both bump-allocated with atomic counters; a committing child fills
///    its record and payload first and only then publishes with a
///    release-store of the record's Ready word. A child SIGKILLed
///    mid-commit leaves the slot allocated but unpublished, so readers
///    can never observe a torn record — the shared-memory equivalent of
///    the temp-file+rename defense. Capacity or record-size overflow is
///    reported to the caller, which falls back to the file path.
///
/// Everything is built from process-shared pthread primitives inside one
/// mmap(MAP_SHARED | MAP_ANONYMOUS) region; no names leak into the
/// filesystem. Condition variables use CLOCK_MONOTONIC so the timed waits
/// that drive the supervisor are immune to wall-clock steps.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PROC_SHAREDCONTROL_H
#define WBT_PROC_SHAREDCONTROL_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <pthread.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wbt {
namespace proc {

/// Raw POD layout of the shared region (lives in shared memory; no
/// pointers, no non-trivial members).
struct SharedLayout;

/// Number of shared scalar-accumulator cells available via scalarCell().
constexpr int NumScalarCells = 16;
/// Number of barrier slots; allocated through a shared free-list.
constexpr int NumBarrierSlots = 64;
/// Number of lease-counter slots for worker-pool sampling regions;
/// allocated through a shared free-list like barrier slots.
constexpr int NumLeaseSlots = 64;
/// Longest variable name a slab record can hold inline; longer names
/// fall back to the file store.
constexpr size_t SlabVarNameMax = 40;

/// Sizing of the shared commit slab (0 records disables it entirely, as
/// the Files backend does).
struct SlabConfig {
  /// Directory entries (one per commit record).
  size_t Records = 4096;
  /// Payload arena bytes shared by all records.
  size_t ArenaBytes = 1u << 20;
  /// Back the control mapping with huge pages. init() first tries an
  /// explicit hugetlbfs reservation (mmap(MAP_HUGETLB), counted in
  /// hugetlbGranted()/hugetlbDeclined()); when no huge-page pool is
  /// configured — the common case — it falls back to transparent huge
  /// pages (madvise(MADV_HUGEPAGE), counted in thpGranted()/
  /// thpDeclined()). Both are best-effort: the run proceeds on regular
  /// pages either way.
  bool HugePages = false;
};

/// Sizing of the shared trace-event ring (0 records = tracing disabled;
/// the ring is then not even mapped).
struct TraceConfig {
  size_t Records = 0;
};

/// One published commit record viewed in place. Name/Data point into the
/// shared mapping and stay valid for the SharedControl's lifetime.
struct SlabEntryView {
  uint64_t Tp = 0;
  uint64_t Region = 0;
  int32_t Child = -1;
  std::string_view Name;
  const uint8_t *Data = nullptr;
  uint32_t Size = 0;
};

/// A pthread mutex + condvar pair configured for cross-process use.
/// Lives inside shared mappings only (POD; init() before first use).
struct SharedLock {
  pthread_mutex_t Mutex;
  pthread_cond_t Cond;

  void init();
};

/// Owner handle over the mmap'd control block.
class SharedControl {
public:
  SharedControl() = default;
  ~SharedControl();

  SharedControl(const SharedControl &) = delete;
  SharedControl &operator=(const SharedControl &) = delete;

  /// Maps and initializes the region. \p MaxPool is MAX_POOL_SIZE;
  /// \p VoteSlots sizes the shared majority-vote buffer;
  /// \p UseScheduler false disables pool gating (Fig. 10 ablation);
  /// \p Slab sizes the shared commit slab; \p Trace sizes the shared
  /// trace-event ring (disabled by default); \p AuxBytes reserves an
  /// opaque zero-initialized tail region (the zygote board — its layout
  /// belongs to the Runtime, which only needs it inside the one mapping
  /// every pre-forked process inherits).
  void init(unsigned MaxPool, size_t VoteSlots, bool UseScheduler,
            const SlabConfig &Slab = SlabConfig(),
            const TraceConfig &Trace = TraceConfig(), size_t AuxBytes = 0);
  bool initialized() const { return Layout != nullptr; }

  /// The opaque AuxBytes tail reserved at init(), or null when none was.
  void *auxRegion() const;

  //===--------------------------------------------------------------------===
  // Process pool (paper Alg. 1 across real processes).
  //===--------------------------------------------------------------------===

  /// Blocks until a pool slot is free; \p IsTuning applies the 75% gate.
  void acquireSlot(bool IsTuning);
  /// Bounded acquireSlot(): waits at most \p TimeoutMs and returns whether
  /// a slot was taken. Lets the supervised spawn loop in sampling() reap
  /// dead children (reclaiming their leaked slots) between attempts.
  bool acquireSlotTimed(bool IsTuning, int TimeoutMs);
  /// Returns a slot to the pool.
  void releaseSlot();
  /// Free slots right now (diagnostics only).
  int freeSlots() const;
  unsigned maxPool() const;

  //===--------------------------------------------------------------------===
  // Live tuning-process accounting (for @split + shutdown).
  //===--------------------------------------------------------------------===

  /// Called by a parent immediately before forking a tuning child.
  void tuningProcessForked();
  /// Called by a tuning process when it finishes (or by its parent on its
  /// behalf when it died without reaching finish()).
  void tuningProcessExited();
  /// Blocks until only \p Remaining tuning processes are alive.
  void waitLiveTuningProcesses(int Remaining);
  /// Bounded variant: waits at most \p TimeoutMs; returns true once only
  /// \p Remaining tuning processes are alive.
  bool waitLiveTuningProcessesTimed(int Remaining, int TimeoutMs);
  int liveTuningProcesses() const;
  /// Draws a fresh unique tuning-process id.
  uint64_t nextTpId();

  //===--------------------------------------------------------------------===
  // Barriers for @sync.
  //===--------------------------------------------------------------------===

  /// Draws a free barrier slot from the shared free-list (blocks if all
  /// NumBarrierSlots are in use). Regions own their slot until
  /// releaseBarrierSlot().
  int acquireBarrierSlot();
  /// Returns a barrier slot to the free-list.
  void releaseBarrierSlot(int Slot);

  /// Child side: announce arrival at barrier \p Slot and block until the
  /// tuning process releases the generation. \p InBarrier, when non-null,
  /// is raised while the caller is blocked (it lives in a shared child
  /// table and lets the supervisor repair the counts if the caller dies
  /// at the barrier).
  void barrierArriveAndWait(int Slot,
                            std::atomic<int32_t> *InBarrier = nullptr);
  /// Child side: a child that will never arrive (pruned / committed)
  /// leaves the barrier's expected set.
  void barrierLeave(int Slot);
  /// Tuning side: set the number of children expected at barrier \p Slot.
  void barrierReset(int Slot, int Expected);
  /// Tuning side: grow/shrink the expected count (retry respawns).
  void barrierAdd(int Slot, int Delta);
  /// Tuning side: block until every still-live child has arrived.
  void barrierWaitAll(int Slot);
  /// Bounded variant of barrierWaitAll(): waits at most \p TimeoutMs and
  /// returns true once the barrier is satisfied.
  bool barrierWaitAllTimed(int Slot, int TimeoutMs);
  /// Tuning side: open the next generation, releasing every waiter.
  void barrierRelease(int Slot);
  /// Supervisor side: remove a dead child from barrier \p Slot — undo its
  /// arrival if \p InBarrier says it died blocked there, and shrink the
  /// expected count.
  void barrierReclaimDead(int Slot, std::atomic<int32_t> *InBarrier);

  //===--------------------------------------------------------------------===
  // Sample-lease counters (worker-pool sampling regions).
  //===--------------------------------------------------------------------===
  //
  // A worker-pool region (Runtime::samplingRegion) forks min(N, pool)
  // long-lived workers instead of N one-shot children; each worker claims
  // sample indices from a lock-free monotone counter until the region is
  // drained. Only the counter lives here — the per-lease state table is
  // part of the region's own shared child table, next to the slots it
  // already supervises.

  /// Draws a free lease-counter slot (blocks if all NumLeaseSlots are in
  /// use). Regions own their slot until releaseLeaseSlot().
  int acquireLeaseSlot();
  /// Returns a lease slot to the free-list.
  void releaseLeaseSlot(int Slot);
  /// Tuning side: rewind the claim counter of \p Slot to zero before the
  /// workers fork.
  void leaseReset(int Slot);
  /// Worker side: claims the next sample index (lock-free fetch_add). The
  /// caller bounds the result against the region's N; over-claims past N
  /// are harmless and simply tell the worker the region is drained.
  int64_t leaseClaim(int Slot);
  /// Worker side, pipelined batches: claims the next sample index only
  /// if it lies below \p Bound, else returns -1 without claiming. The
  /// claim-limit gate must reject BEFORE the claim — an index claimed
  /// and then parked on belongs to a region whose delivery would stall
  /// until its sleeping holder is rescheduled.
  int64_t leaseClaimBounded(int Slot, int64_t Bound);
  /// Next unclaimed index (acquire load; supervisor orphan scans).
  int64_t leaseNext(int Slot) const;
  /// Bumped by the supervisor each time a dead worker's unfinished lease
  /// is returned for another worker to re-claim.
  void noteLeaseReclaim();
  uint64_t leaseReclaimsTotal() const;

  //===--------------------------------------------------------------------===
  // Child events + supervisor counters.
  //===--------------------------------------------------------------------===

  /// Pulsed by sampling children as they exit so a supervising tuning
  /// process wakes promptly from childEventWaitTimed().
  void childEventNotify();
  /// Current value of the event counter. Snapshot this *before* sweeping
  /// children, then pass it to the counted childEventWaitTimed overload:
  /// an event posted during the sweep then returns immediately instead of
  /// being lost until the next event or timeout.
  uint64_t childEventCount() const;
  /// Sleeps until the next child event or \p TimeoutMs, whichever first.
  /// Abnormal deaths emit no event, so callers must re-poll on timeout.
  void childEventWaitTimed(int TimeoutMs);
  /// Like the above, but returns immediately if the counter has already
  /// advanced past \p Seen (a childEventCount() snapshot).
  void childEventWaitTimed(int TimeoutMs, uint64_t Seen);

  /// An eventfd mirrored with the child-event condvar: childEventNotify()
  /// also writes it, so a poll(2) loop (the net lease server's pump) can
  /// wake instantly on local child events alongside socket readiness.
  /// Non-blocking; forked children inherit the descriptor. The counter is
  /// left readable until eventFdDrain(), so an event posted during a
  /// sweep makes the next poll return immediately instead of being lost
  /// until the timeout. -1 before init().
  int eventFd() const { return EventFd; }
  /// Consumes the eventfd counter after a poll has observed it.
  void eventFdDrain();

  void noteCrash();
  void noteTimeout();
  void noteForkFailure();
  uint64_t crashedTotal() const;
  uint64_t timedOutTotal() const;
  uint64_t forkFailedTotal() const;

  //===--------------------------------------------------------------------===
  // Commit slab (shared-memory aggregation store).
  //===--------------------------------------------------------------------===

  /// Publishes one commit record for (\p Tp, \p Region, \p Var, \p Child).
  /// Payload first, then a release-store of the Ready word — a writer
  /// killed at any point leaves the record unpublished. \returns false
  /// (bumping the fallback counter) when the directory or arena is full
  /// or \p Var exceeds SlabVarNameMax; the caller then uses the file
  /// path. \p DebugDieBeforePublish is a testing hook: the caller
  /// SIGKILLs itself after the payload write but before publication.
  bool slabCommit(uint64_t Tp, uint64_t Region, const std::string &Var,
                  int Child, const uint8_t *Data, size_t Size,
                  bool DebugDieBeforePublish = false);
  /// Directory entries handed out so far (clamped to capacity). Readers
  /// scan [0, slabAllocated()); unpublished entries read as absent.
  size_t slabAllocated() const;
  /// Reads entry \p Idx if it has been published.
  bool slabEntry(size_t Idx, SlabEntryView &Out) const;
  /// Counts the Runtime's store diagnostics are built from.
  uint64_t slabPublishedTotal() const;
  uint64_t slabFallbackTotal() const;
  /// Per-reason slice of slabFallbackTotal().
  uint64_t slabFallbacks(obs::FallbackReason R) const;
  /// Counts a shm->file fallback under \p R. slabCommit calls this for
  /// the overflows it detects itself; the commit path calls it for the
  /// decisions it makes before reaching slabCommit (oversized payload
  /// under the Shm backend).
  void noteSlabFallback(obs::FallbackReason R);
  /// Slab occupancy high-water marks, cumulative across recycling
  /// epochs: records/bytes retired by slabRecycle() plus the current
  /// epoch's bump counters (clamped to capacity). For runs that never
  /// recycle these are the plain clamped counters, as before.
  uint64_t slabRecordsHighWater() const;
  uint64_t slabBytesHighWater() const;

  //===--------------------------------------------------------------------===
  // Epoch-based slab recycling.
  //===--------------------------------------------------------------------===

  /// Monotone recycling epoch; bumped by every slabRecycle(). Readers
  /// holding raw slab pointers (ShmRegionReader) snapshot this and treat
  /// an epoch mismatch as "my records are gone".
  uint64_t slabEpoch() const;
  /// True once the current epoch has consumed at least half the record
  /// directory or half the payload arena — the trigger the runtime uses
  /// so short runs never pay for a recycle sweep.
  bool slabNeedsRecycle() const;
  /// Resets the bump allocators to an empty slab and bumps the epoch.
  /// ONLY safe when no process can be mid-commit or mid-scan: the
  /// runtime calls it between regions, from the root tuning process,
  /// when it is the only live tuning process and no region is open.
  /// Ready flags of consumed records are cleared first so a stale
  /// record can never alias a fresh allocation.
  void slabRecycle();
  uint64_t slabRecyclesTotal() const;
  /// Largest single-epoch record count seen — the "how big does the
  /// slab actually need to be" number once recycling decouples capacity
  /// from run length.
  uint64_t slabEpochRecordsHighWater() const;

  /// Transparent-huge-page outcome counters for SlabConfig::HugePages:
  /// one of the two is bumped per init() that asked (granted when
  /// madvise(MADV_HUGEPAGE) accepted the mapping, declined when the
  /// kernel refused or the platform lacks the advice flag).
  uint64_t thpGranted() const;
  uint64_t thpDeclined() const;

  /// Explicit hugetlbfs outcome counters: granted when init()'s
  /// mmap(MAP_HUGETLB) reservation succeeded (the mapping *is* huge
  /// pages, not merely advised), declined when the kernel refused —
  /// typically an unconfigured huge-page pool — and init() fell back to
  /// the madvise path above.
  uint64_t hugetlbGranted() const;
  uint64_t hugetlbDeclined() const;

  //===--------------------------------------------------------------------===
  // Observability: trace ring + metric cells (src/obs).
  //===--------------------------------------------------------------------===

  /// Whether init() mapped a trace ring (TraceConfig::Records != 0).
  bool traceEnabled() const;
  /// Emits one event into the shared ring; drops (and counts) when full.
  /// No-op returning false when tracing is disabled.
  bool traceEmit(const obs::TraceEvent &Ev, bool DebugDieBeforePublish = false);
  /// Drains published events into \p Out (see obs::traceRingDrain for the
  /// SkipUnpublished contract). Returns events appended.
  size_t traceDrain(std::vector<obs::TraceEvent> &Out, bool SkipUnpublished);
  uint64_t traceDropsTotal() const;
  uint64_t traceEmittedTotal() const;

  /// Always-on latency histograms and run counters.
  void recordForkLatency(uint64_t Ns);
  void recordCommitLatency(uint64_t Ns);
  void recordRegionLatency(uint64_t Ns);
  void noteRegionResolved();
  void noteRetry();
  void noteZygoteRespawn();
  void noteZygoteRestore();
  uint64_t regionsResolvedTotal() const;
  uint64_t retriesTotal() const;
  uint64_t zygoteRespawnsTotal() const;
  uint64_t zygoteRestoresTotal() const;
  obs::HistogramSnapshot forkLatencySnapshot() const;
  obs::HistogramSnapshot commitLatencySnapshot() const;
  obs::HistogramSnapshot regionLatencySnapshot() const;

  /// Tuning-progress score cells: noteScore() records each per-region
  /// aggregate outcome (last/min/max via lock-free CAS on the bit
  /// patterns) so readers of the metrics page see score progression
  /// without any aggregation-side locking.
  void noteScore(double Score);
  uint64_t scoresNotedTotal() const;
  double scoreLast() const;
  double scoreMin() const; ///< 0 until any score was noted
  double scoreMax() const; ///< 0 until any score was noted

  //===--------------------------------------------------------------------===
  // Seqlock-published metrics snapshot page.
  //===--------------------------------------------------------------------===
  //
  // The root supervisor republishes a full RuntimeMetrics snapshot into
  // the shared mapping after every sweep. Readers (the scrape endpoint,
  // or any process holding the mapping) get tear-free snapshots without
  // pausing the run: the writer bumps the sequence word to odd, copies
  // the payload, then publishes with an even release-store; a reader
  // retries until it sees the same even sequence on both sides of its
  // copy.

  /// Writer side — root supervisor only (single writer by construction).
  void publishMetricsSnapshot(const obs::RuntimeMetrics &M);
  /// Reader side. False when nothing has been published yet or a stable
  /// snapshot could not be obtained in a bounded number of retries.
  bool readMetricsSnapshot(obs::RuntimeMetrics &Out) const;
  /// Publication count (even sequence / 2); 0 before the first publish.
  uint64_t metricsSnapshotCount() const;

  //===--------------------------------------------------------------------===
  // Shared accumulators (incremental aggregation, paper Sec. IV-B).
  //===--------------------------------------------------------------------===

  /// Adds \p X to shared scalar cell \p Cell (min/max/sum/count).
  void scalarAdd(int Cell, double X);
  void scalarReset(int Cell);
  double scalarMin(int Cell) const;
  double scalarMax(int Cell) const;
  double scalarMean(int Cell) const;
  size_t scalarCount(int Cell) const;

  /// Adds a binary mask into the shared vote buffer. The first add fixes
  /// the mask size; it must be <= the VoteSlots passed to init().
  void voteAdd(const uint8_t *Mask, size_t Size);
  /// Current number of voted runs.
  size_t voteRuns() const;
  /// Majority mask (> Threshold fraction of runs).
  std::vector<uint8_t> voteResult(double Threshold) const;
  void voteReset();

private:
  SharedLayout *Layout = nullptr;
  size_t MappedBytes = 0;
  int EventFd = -1;
};

} // namespace proc
} // namespace wbt

#endif // WBT_PROC_SHAREDCONTROL_H
