//===- proc/SharedControl.h - Cross-process shared state --------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The anonymous shared-memory control block behind the fork-based
/// runtime. Created once by the root tuning process and inherited by
/// every forked sampling/tuning process. Holds:
///
///  * the process pool of paper Alg. 1 (slot counter + the 75% tuning
///    admission gate) — the cross-process counterpart of core/Scheduler;
///  * barrier slots for @sync;
///  * the live-tuning-process counter that lets the root wait for @split
///    descendants;
///  * shared accumulators for incremental aggregation across processes
///    (paper Sec. IV-B: shared min/max/avg cells and a vote buffer that
///    replaces one-shot file aggregation).
///
/// Everything is built from process-shared pthread primitives inside one
/// mmap(MAP_SHARED | MAP_ANONYMOUS) region; no names leak into the
/// filesystem.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PROC_SHAREDCONTROL_H
#define WBT_PROC_SHAREDCONTROL_H

#include <pthread.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wbt {
namespace proc {

/// Raw POD layout of the shared region (lives in shared memory; no
/// pointers, no non-trivial members).
struct SharedLayout;

/// Number of shared scalar-accumulator cells available via scalarCell().
constexpr int NumScalarCells = 16;
/// Number of barrier slots; regions reuse them round-robin.
constexpr int NumBarrierSlots = 64;

/// Owner handle over the mmap'd control block.
class SharedControl {
public:
  SharedControl() = default;
  ~SharedControl();

  SharedControl(const SharedControl &) = delete;
  SharedControl &operator=(const SharedControl &) = delete;

  /// Maps and initializes the region. \p MaxPool is MAX_POOL_SIZE;
  /// \p VoteSlots sizes the shared majority-vote buffer;
  /// \p UseScheduler false disables pool gating (Fig. 10 ablation).
  void init(unsigned MaxPool, size_t VoteSlots, bool UseScheduler);
  bool initialized() const { return Layout != nullptr; }

  //===--------------------------------------------------------------------===
  // Process pool (paper Alg. 1 across real processes).
  //===--------------------------------------------------------------------===

  /// Blocks until a pool slot is free; \p IsTuning applies the 75% gate.
  void acquireSlot(bool IsTuning);
  /// Returns a slot to the pool.
  void releaseSlot();
  /// Free slots right now (diagnostics only).
  int freeSlots() const;
  unsigned maxPool() const;

  //===--------------------------------------------------------------------===
  // Live tuning-process accounting (for @split + shutdown).
  //===--------------------------------------------------------------------===

  /// Called by a parent immediately before forking a tuning child.
  void tuningProcessForked();
  /// Called by a tuning process when it finishes.
  void tuningProcessExited();
  /// Blocks until only \p Remaining tuning processes are alive.
  void waitLiveTuningProcesses(int Remaining);
  int liveTuningProcesses() const;
  /// Draws a fresh unique tuning-process id.
  uint64_t nextTpId();

  //===--------------------------------------------------------------------===
  // Barriers for @sync.
  //===--------------------------------------------------------------------===

  /// Child side: announce arrival at barrier \p Slot and block until the
  /// tuning process releases the generation.
  void barrierArriveAndWait(int Slot);
  /// Child side: a child that will never arrive (pruned / committed)
  /// leaves the barrier's expected set.
  void barrierLeave(int Slot);
  /// Tuning side: set the number of children expected at barrier \p Slot.
  void barrierReset(int Slot, int Expected);
  /// Tuning side: block until every still-live child has arrived.
  void barrierWaitAll(int Slot);
  /// Tuning side: open the next generation, releasing every waiter.
  void barrierRelease(int Slot);

  //===--------------------------------------------------------------------===
  // Shared accumulators (incremental aggregation, paper Sec. IV-B).
  //===--------------------------------------------------------------------===

  /// Adds \p X to shared scalar cell \p Cell (min/max/sum/count).
  void scalarAdd(int Cell, double X);
  void scalarReset(int Cell);
  double scalarMin(int Cell) const;
  double scalarMax(int Cell) const;
  double scalarMean(int Cell) const;
  size_t scalarCount(int Cell) const;

  /// Adds a binary mask into the shared vote buffer. The first add fixes
  /// the mask size; it must be <= the VoteSlots passed to init().
  void voteAdd(const uint8_t *Mask, size_t Size);
  /// Current number of voted runs.
  size_t voteRuns() const;
  /// Majority mask (> Threshold fraction of runs).
  std::vector<uint8_t> voteResult(double Threshold) const;
  void voteReset();

private:
  SharedLayout *Layout = nullptr;
  size_t MappedBytes = 0;
};

} // namespace proc
} // namespace wbt

#endif // WBT_PROC_SHAREDCONTROL_H
