//===- proc/SharedControl.cpp - Cross-process shared state ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "proc/SharedControl.h"

#include "inject/Sys.h"

#include <signal.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>
#include <type_traits>

using namespace wbt;
using namespace wbt::proc;

void SharedLock::init() {
  pthread_mutexattr_t MA;
  pthread_mutexattr_init(&MA);
  pthread_mutexattr_setpshared(&MA, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(&Mutex, &MA);
  pthread_mutexattr_destroy(&MA);
  pthread_condattr_t CA;
  pthread_condattr_init(&CA);
  pthread_condattr_setpshared(&CA, PTHREAD_PROCESS_SHARED);
  // Timed waits measure against CLOCK_MONOTONIC so a wall-clock step can
  // neither stall nor fire the supervisor's bounded sleeps.
  pthread_condattr_setclock(&CA, CLOCK_MONOTONIC);
  pthread_cond_init(&Cond, &CA);
  pthread_condattr_destroy(&CA);
}

namespace {

/// Absolute CLOCK_MONOTONIC deadline \p Ms from now.
timespec deadlineIn(int Ms) {
  timespec T;
  clock_gettime(CLOCK_MONOTONIC, &T);
  T.tv_sec += Ms / 1000;
  T.tv_nsec += static_cast<long>(Ms % 1000) * 1000000L;
  if (T.tv_nsec >= 1000000000L) {
    ++T.tv_sec;
    T.tv_nsec -= 1000000000L;
  }
  return T;
}

struct Barrier {
  SharedLock Lock;
  int Expected;
  int Arrived;
  uint64_t Generation;
};

struct ScalarCell {
  SharedLock Lock;
  double Min;
  double Max;
  double Sum;
  uint64_t Count;
};

/// One directory entry of the commit slab. Fixed size, so readers can
/// scan the directory without ever needing an unpublished record's
/// length. Ready is the publication word: 0 until the payload, name and
/// every other field are in place.
struct SlabRecord {
  std::atomic<uint32_t> Ready;
  uint32_t Size;
  uint64_t Tp;
  uint64_t Region;
  uint64_t ArenaOff;
  int32_t Child;
  uint32_t NameLen;
  char Name[wbt::proc::SlabVarNameMax];
};

constexpr uint64_t alignUp8(uint64_t X) { return (X + 7) & ~uint64_t(7); }

uint64_t doubleBits(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

double bitsDouble(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

} // namespace

namespace wbt {
namespace proc {

struct SharedLayout {
  // Pool (Alg. 1).
  SharedLock PoolLock;
  int FreeSlots;
  unsigned MaxPool;
  int UseScheduler; // 0/1

  // Tuning process accounting.
  SharedLock TpLock;
  int LiveTps;
  uint64_t NextTp;

  Barrier Barriers[NumBarrierSlots];

  // Barrier-slot free-list (stack of slot indices).
  SharedLock BarrierAllocLock;
  int BarrierFree[NumBarrierSlots];
  int BarrierFreeCount;

  // Sample-lease counters (worker-pool regions): a free-list of slots,
  // each holding one lock-free monotone claim counter.
  SharedLock LeaseAllocLock;
  int LeaseFree[NumLeaseSlots];
  int LeaseFreeCount;
  std::atomic<int64_t> LeaseNext[NumLeaseSlots];
  std::atomic<uint64_t> LeaseReclaims;

  // Child-exit event channel + supervisor counters.
  SharedLock ChildEventLock;
  uint64_t ChildEvents;
  std::atomic<uint64_t> CrashedTotal;
  std::atomic<uint64_t> TimedOutTotal;
  std::atomic<uint64_t> ForkFailedTotal;

  ScalarCell Scalars[NumScalarCells];

  // Vote buffer.
  SharedLock VoteLock;
  uint64_t VoteRuns;
  uint64_t VoteSize;     // elements used (fixed by first add)
  uint64_t VoteCapacity; // elements available

  // Commit slab: bump allocators + capacities. The directory and arena
  // follow the vote counts in the mapping (offsets fixed at init).
  std::atomic<uint64_t> SlabNext;      // directory entries handed out
  std::atomic<uint64_t> SlabArenaNext; // arena bytes handed out
  std::atomic<uint64_t> SlabPublished;
  std::atomic<uint64_t> SlabFallbacks;
  uint64_t SlabRecCap;
  uint64_t SlabArenaCap;
  uint64_t SlabRecByteOff;   // directory offset from the mapping base
  uint64_t SlabArenaByteOff; // arena offset from the mapping base

  // Observability (src/obs): always-on metric cells, plus the offset of
  // the opt-in trace ring (0 when tracing is disabled).
  std::atomic<uint64_t> SlabFallbackReasons[obs::NumFallbackReasons];
  std::atomic<uint64_t> RegionsResolved;
  std::atomic<uint64_t> Retries;
  obs::LatencyHistogram ForkLatency;
  obs::LatencyHistogram CommitLatency;
  obs::LatencyHistogram RegionLatency;
  std::atomic<uint64_t> ZygoteRespawns;
  std::atomic<uint64_t> ZygoteRestores;

  // Tuning-progress score cells: last as a plain bit-pattern store,
  // min/max maintained by CAS loops over the bit patterns (decoded for
  // the comparison — bit order is not double order).
  std::atomic<uint64_t> ScoreCount;
  std::atomic<uint64_t> ScoreLastBits;
  std::atomic<uint64_t> ScoreMinBits; // +inf until the first score
  std::atomic<uint64_t> ScoreMaxBits; // -inf until the first score

  // Seqlock-published metrics snapshot page (obs::MetricsSnapshotPage
  // owns the protocol). Single writer: the root supervisor.
  obs::MetricsSnapshotPage MetricsPg;

  // Epoch-based slab recycling (written only by the root tuning process,
  // single-threaded, between regions; atomics because every process may
  // read them through the metrics accessors).
  std::atomic<uint64_t> SlabEpoch;
  std::atomic<uint64_t> SlabRecycles;
  std::atomic<uint64_t> SlabRetiredRecords; // summed over retired epochs
  std::atomic<uint64_t> SlabRetiredBytes;
  std::atomic<uint64_t> SlabEpochRecHW; // largest single-epoch record count

  // Huge-page backing outcome (SlabConfig::HugePages): the explicit
  // hugetlbfs reservation attempt, then the THP advice fallback.
  std::atomic<uint64_t> HugetlbGranted;
  std::atomic<uint64_t> HugetlbDeclined;
  std::atomic<uint64_t> ThpGranted;
  std::atomic<uint64_t> ThpDeclined;

  uint64_t TraceByteOff;
  uint64_t AuxByteOff; // opaque init() tail (zygote board); 0 = none

  // uint32_t VoteCounts[VoteCapacity], then SlabRecord[SlabRecCap], then
  // uint8_t Arena[SlabArenaCap], then the optional TraceRingLayout, then
  // the optional AuxBytes tail follow the struct in memory.
};

} // namespace proc
} // namespace wbt

static uint32_t *voteCounts(SharedLayout *L) {
  return reinterpret_cast<uint32_t *>(L + 1);
}

static SlabRecord *slabRecords(SharedLayout *L) {
  return reinterpret_cast<SlabRecord *>(reinterpret_cast<uint8_t *>(L) +
                                        L->SlabRecByteOff);
}

static uint8_t *slabArena(SharedLayout *L) {
  return reinterpret_cast<uint8_t *>(L) + L->SlabArenaByteOff;
}

static wbt::obs::TraceRingLayout *traceRing(SharedLayout *L) {
  if (!L->TraceByteOff)
    return nullptr;
  return reinterpret_cast<wbt::obs::TraceRingLayout *>(
      reinterpret_cast<uint8_t *>(L) + L->TraceByteOff);
}

SharedControl::~SharedControl() {
  if (Layout)
    munmap(Layout, MappedBytes);
  if (EventFd >= 0)
    close(EventFd);
}

void SharedControl::init(unsigned MaxPool, size_t VoteSlots,
                         bool UseScheduler, const SlabConfig &Slab,
                         const TraceConfig &Trace, size_t AuxBytes) {
  assert(!Layout && "SharedControl initialized twice");
  if (MaxPool == 0)
    MaxPool = std::max(2u, std::thread::hardware_concurrency());
  uint64_t RecByteOff =
      alignUp8(sizeof(SharedLayout) + VoteSlots * sizeof(uint32_t));
  uint64_t ArenaByteOff = RecByteOff + Slab.Records * sizeof(SlabRecord);
  uint64_t TraceByteOff = ArenaByteOff + alignUp8(Slab.ArenaBytes);
  uint64_t AuxByteOff =
      alignUp8(TraceByteOff + obs::traceRingBytes(Trace.Records));
  MappedBytes = AuxByteOff + AuxBytes;
  // Huge-page backing, strongest first: an explicit hugetlbfs mapping
  // reserves its 2 MiB pages up front, so a machine with no huge-page
  // pool configured — the common case — fails right here and falls back
  // cleanly. The attempt bypasses the inject mmap site on purpose: a
  // declined reservation is normal operation, not a schedulable fault,
  // and the fallback mmap below still goes through the wrapper.
  bool HtlbAsked = false, HtlbOk = false;
  void *Mem = MAP_FAILED;
#ifdef MAP_HUGETLB
  if (Slab.HugePages) {
    constexpr uint64_t HugePageBytes = uint64_t(2) << 20;
    uint64_t Rounded = (MappedBytes + HugePageBytes - 1) & ~(HugePageBytes - 1);
    HtlbAsked = true;
    Mem = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (Mem != MAP_FAILED) {
      HtlbOk = true;
      MappedBytes = Rounded; // the destructor must munmap whole pages
    }
  }
#endif
  bool ThpAsked = false, ThpOk = false;
  if (Mem == MAP_FAILED) {
    // assert() compiles out under NDEBUG; a failed mapping here must be
    // loud in every build type — nothing downstream can run without it.
    Mem = sys::mmapShared(MappedBytes);
    if (Mem == MAP_FAILED)
      sys::fatal("mmap of shared control block (%zu bytes) failed: %s",
                 MappedBytes, std::strerror(errno));
    // Advise huge pages before first touch so the initial memset can fault
    // the mapping in as huge pages. Advisory only: anonymous MAP_SHARED
    // memory is shmem, whose THP policy is a kernel knob — madvise may
    // succeed or fail (EINVAL on old kernels), and either way the run
    // proceeds; the outcome is only counted.
    if (Slab.HugePages) {
      ThpAsked = true;
#ifdef MADV_HUGEPAGE
      ThpOk = madvise(Mem, MappedBytes, MADV_HUGEPAGE) == 0;
#endif
    }
  }
  std::memset(Mem, 0, MappedBytes);
  Layout = static_cast<SharedLayout *>(Mem);
  Layout->SlabRecCap = Slab.Records;
  Layout->SlabArenaCap = Slab.ArenaBytes;
  Layout->SlabRecByteOff = RecByteOff;
  Layout->SlabArenaByteOff = ArenaByteOff;
  if (HtlbAsked)
    (HtlbOk ? Layout->HugetlbGranted : Layout->HugetlbDeclined)
        .fetch_add(1, std::memory_order_relaxed);
  if (ThpAsked)
    (ThpOk ? Layout->ThpGranted : Layout->ThpDeclined)
        .fetch_add(1, std::memory_order_relaxed);
  if (Trace.Records) {
    Layout->TraceByteOff = TraceByteOff;
    obs::traceRingInit(traceRing(Layout), Trace.Records);
  }
  if (AuxBytes)
    Layout->AuxByteOff = AuxByteOff;

  Layout->PoolLock.init();
  Layout->FreeSlots = static_cast<int>(MaxPool);
  Layout->MaxPool = MaxPool;
  Layout->UseScheduler = UseScheduler ? 1 : 0;

  Layout->TpLock.init();
  Layout->LiveTps = 1; // the root tuning process
  Layout->NextTp = 1;

  for (Barrier &B : Layout->Barriers)
    B.Lock.init();
  Layout->BarrierAllocLock.init();
  for (int I = 0; I != NumBarrierSlots; ++I)
    Layout->BarrierFree[I] = NumBarrierSlots - 1 - I; // pop low slots first
  Layout->BarrierFreeCount = NumBarrierSlots;

  Layout->LeaseAllocLock.init();
  for (int I = 0; I != NumLeaseSlots; ++I)
    Layout->LeaseFree[I] = NumLeaseSlots - 1 - I;
  Layout->LeaseFreeCount = NumLeaseSlots;

  Layout->ChildEventLock.init();
  // Poll-compatible mirror of the child-event condvar for the net lease
  // server's pump. Best effort: if the kernel refuses, the pump degrades
  // to its bounded poll timeout, exactly like the condvar's timed wait.
  EventFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);

  for (ScalarCell &C : Layout->Scalars) {
    C.Lock.init();
    C.Min = std::numeric_limits<double>::infinity();
    C.Max = -std::numeric_limits<double>::infinity();
  }

  // The memset above zeroed the score cells; min/max start at their
  // identities so the first noteScore() wins both CAS races.
  Layout->ScoreMinBits.store(
      doubleBits(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  Layout->ScoreMaxBits.store(
      doubleBits(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);

  Layout->VoteLock.init();
  Layout->VoteCapacity = VoteSlots;
}

//===----------------------------------------------------------------------===//
// Pool
//===----------------------------------------------------------------------===//

void SharedControl::acquireSlot(bool IsTuning) {
  assert(Layout && "shared control not initialized");
  if (!Layout->UseScheduler)
    return;
  pthread_mutex_lock(&Layout->PoolLock.Mutex);
  for (;;) {
    // Alg. 1 line 8: sampling threshold is 0; tuning threshold is 75% of
    // the pool ("it has to wait if 25% processes are occupied"). The slot
    // the requesting tuning process itself holds is not occupancy: counting
    // it makes the gate unsatisfiable for MaxPool <= 4 (FreeSlots can never
    // exceed MaxPool - 1 while the caller is alive), and split() hangs
    // forever. Crediting the caller's slot also subsumes the old
    // idle-pool escape, so progress on an otherwise idle pool still holds.
    double Threshold =
        IsTuning ? 0.75 * static_cast<double>(Layout->MaxPool) : 0.0;
    double Free =
        static_cast<double>(Layout->FreeSlots) + (IsTuning ? 1.0 : 0.0);
    if (Free > Threshold)
      break;
    pthread_cond_wait(&Layout->PoolLock.Cond, &Layout->PoolLock.Mutex);
  }
  --Layout->FreeSlots;
  pthread_mutex_unlock(&Layout->PoolLock.Mutex);
}

bool SharedControl::acquireSlotTimed(bool IsTuning, int TimeoutMs) {
  assert(Layout && "shared control not initialized");
  if (!Layout->UseScheduler)
    return true;
  timespec Deadline = deadlineIn(TimeoutMs);
  pthread_mutex_lock(&Layout->PoolLock.Mutex);
  bool Taken = false;
  for (;;) {
    // Same gate as acquireSlot(), caller's own tuning slot excluded.
    double Threshold =
        IsTuning ? 0.75 * static_cast<double>(Layout->MaxPool) : 0.0;
    double Free =
        static_cast<double>(Layout->FreeSlots) + (IsTuning ? 1.0 : 0.0);
    if (Free > Threshold) {
      --Layout->FreeSlots;
      Taken = true;
      break;
    }
    if (pthread_cond_timedwait(&Layout->PoolLock.Cond,
                               &Layout->PoolLock.Mutex, &Deadline) ==
        ETIMEDOUT)
      break;
  }
  pthread_mutex_unlock(&Layout->PoolLock.Mutex);
  return Taken;
}

void SharedControl::releaseSlot() {
  if (!Layout->UseScheduler)
    return;
  pthread_mutex_lock(&Layout->PoolLock.Mutex);
  ++Layout->FreeSlots;
  pthread_cond_broadcast(&Layout->PoolLock.Cond);
  pthread_mutex_unlock(&Layout->PoolLock.Mutex);
}

int SharedControl::freeSlots() const {
  pthread_mutex_lock(&Layout->PoolLock.Mutex);
  int N = Layout->FreeSlots;
  pthread_mutex_unlock(&Layout->PoolLock.Mutex);
  return N;
}

unsigned SharedControl::maxPool() const { return Layout->MaxPool; }

//===----------------------------------------------------------------------===//
// Tuning process accounting
//===----------------------------------------------------------------------===//

void SharedControl::tuningProcessForked() {
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  ++Layout->LiveTps;
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
}

void SharedControl::tuningProcessExited() {
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  --Layout->LiveTps;
  pthread_cond_broadcast(&Layout->TpLock.Cond);
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
}

void SharedControl::waitLiveTuningProcesses(int Remaining) {
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  while (Layout->LiveTps > Remaining)
    pthread_cond_wait(&Layout->TpLock.Cond, &Layout->TpLock.Mutex);
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
}

bool SharedControl::waitLiveTuningProcessesTimed(int Remaining,
                                                 int TimeoutMs) {
  timespec Deadline = deadlineIn(TimeoutMs);
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  while (Layout->LiveTps > Remaining) {
    if (pthread_cond_timedwait(&Layout->TpLock.Cond, &Layout->TpLock.Mutex,
                               &Deadline) == ETIMEDOUT)
      break;
  }
  bool Done = Layout->LiveTps <= Remaining;
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
  return Done;
}

int SharedControl::liveTuningProcesses() const {
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  int N = Layout->LiveTps;
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
  return N;
}

uint64_t SharedControl::nextTpId() {
  pthread_mutex_lock(&Layout->TpLock.Mutex);
  uint64_t Id = Layout->NextTp++;
  pthread_mutex_unlock(&Layout->TpLock.Mutex);
  return Id;
}

//===----------------------------------------------------------------------===//
// Barriers
//===----------------------------------------------------------------------===//

int SharedControl::acquireBarrierSlot() {
  pthread_mutex_lock(&Layout->BarrierAllocLock.Mutex);
  while (Layout->BarrierFreeCount == 0)
    pthread_cond_wait(&Layout->BarrierAllocLock.Cond,
                      &Layout->BarrierAllocLock.Mutex);
  int Slot = Layout->BarrierFree[--Layout->BarrierFreeCount];
  pthread_mutex_unlock(&Layout->BarrierAllocLock.Mutex);
  return Slot;
}

void SharedControl::releaseBarrierSlot(int Slot) {
  pthread_mutex_lock(&Layout->BarrierAllocLock.Mutex);
  assert(Layout->BarrierFreeCount < NumBarrierSlots &&
         "barrier slot freed twice");
  Layout->BarrierFree[Layout->BarrierFreeCount++] = Slot;
  pthread_cond_broadcast(&Layout->BarrierAllocLock.Cond);
  pthread_mutex_unlock(&Layout->BarrierAllocLock.Mutex);
}

void SharedControl::barrierReset(int Slot, int Expected) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  B.Expected = Expected;
  B.Arrived = 0;
  pthread_mutex_unlock(&B.Lock.Mutex);
}

void SharedControl::barrierAdd(int Slot, int Delta) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  B.Expected += Delta;
  pthread_cond_broadcast(&B.Lock.Cond);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

void SharedControl::barrierArriveAndWait(int Slot,
                                         std::atomic<int32_t> *InBarrier) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  ++B.Arrived;
  if (InBarrier)
    InBarrier->store(1, std::memory_order_relaxed);
  uint64_t Gen = B.Generation;
  pthread_cond_broadcast(&B.Lock.Cond);
  while (B.Generation == Gen)
    pthread_cond_wait(&B.Lock.Cond, &B.Lock.Mutex);
  if (InBarrier)
    InBarrier->store(0, std::memory_order_relaxed);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

void SharedControl::barrierLeave(int Slot) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  --B.Expected;
  pthread_cond_broadcast(&B.Lock.Cond);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

void SharedControl::barrierReclaimDead(int Slot,
                                       std::atomic<int32_t> *InBarrier) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  // If the child died blocked inside barrierArriveAndWait(), undo its
  // arrival too; the Arrived > 0 guard covers a death racing the release
  // of the generation (Arrived already reset for the next one).
  if (InBarrier && InBarrier->exchange(0, std::memory_order_relaxed) == 1 &&
      B.Arrived > 0)
    --B.Arrived;
  --B.Expected;
  pthread_cond_broadcast(&B.Lock.Cond);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

void SharedControl::barrierWaitAll(int Slot) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  while (B.Arrived < B.Expected)
    pthread_cond_wait(&B.Lock.Cond, &B.Lock.Mutex);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

bool SharedControl::barrierWaitAllTimed(int Slot, int TimeoutMs) {
  Barrier &B = Layout->Barriers[Slot];
  timespec Deadline = deadlineIn(TimeoutMs);
  pthread_mutex_lock(&B.Lock.Mutex);
  while (B.Arrived < B.Expected) {
    if (pthread_cond_timedwait(&B.Lock.Cond, &B.Lock.Mutex, &Deadline) ==
        ETIMEDOUT)
      break;
  }
  bool Satisfied = B.Arrived >= B.Expected;
  pthread_mutex_unlock(&B.Lock.Mutex);
  return Satisfied;
}

void SharedControl::barrierRelease(int Slot) {
  Barrier &B = Layout->Barriers[Slot];
  pthread_mutex_lock(&B.Lock.Mutex);
  B.Arrived = 0;
  ++B.Generation;
  pthread_cond_broadcast(&B.Lock.Cond);
  pthread_mutex_unlock(&B.Lock.Mutex);
}

//===----------------------------------------------------------------------===//
// Sample-lease counters
//===----------------------------------------------------------------------===//

int SharedControl::acquireLeaseSlot() {
  pthread_mutex_lock(&Layout->LeaseAllocLock.Mutex);
  while (Layout->LeaseFreeCount == 0)
    pthread_cond_wait(&Layout->LeaseAllocLock.Cond,
                      &Layout->LeaseAllocLock.Mutex);
  int Slot = Layout->LeaseFree[--Layout->LeaseFreeCount];
  pthread_mutex_unlock(&Layout->LeaseAllocLock.Mutex);
  return Slot;
}

void SharedControl::releaseLeaseSlot(int Slot) {
  pthread_mutex_lock(&Layout->LeaseAllocLock.Mutex);
  assert(Layout->LeaseFreeCount < NumLeaseSlots && "lease slot freed twice");
  Layout->LeaseFree[Layout->LeaseFreeCount++] = Slot;
  pthread_cond_broadcast(&Layout->LeaseAllocLock.Cond);
  pthread_mutex_unlock(&Layout->LeaseAllocLock.Mutex);
}

void SharedControl::leaseReset(int Slot) {
  Layout->LeaseNext[Slot].store(0, std::memory_order_release);
}

int64_t SharedControl::leaseClaim(int Slot) {
  return Layout->LeaseNext[Slot].fetch_add(1, std::memory_order_relaxed);
}

int64_t SharedControl::leaseClaimBounded(int Slot, int64_t Bound) {
  std::atomic<int64_t> &Next = Layout->LeaseNext[Slot];
  int64_t Cur = Next.load(std::memory_order_relaxed);
  while (Cur < Bound)
    if (Next.compare_exchange_weak(Cur, Cur + 1, std::memory_order_relaxed))
      return Cur;
  return -1;
}

int64_t SharedControl::leaseNext(int Slot) const {
  return Layout->LeaseNext[Slot].load(std::memory_order_acquire);
}

void SharedControl::noteLeaseReclaim() {
  Layout->LeaseReclaims.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedControl::leaseReclaimsTotal() const {
  return Layout->LeaseReclaims.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Child events + supervisor counters
//===----------------------------------------------------------------------===//

void SharedControl::childEventNotify() {
  pthread_mutex_lock(&Layout->ChildEventLock.Mutex);
  ++Layout->ChildEvents;
  pthread_cond_broadcast(&Layout->ChildEventLock.Cond);
  pthread_mutex_unlock(&Layout->ChildEventLock.Mutex);
  if (EventFd >= 0) {
    // Forked children inherit the descriptor, so their notifies wake a
    // root poll too. EAGAIN (saturated counter) still leaves it readable.
    uint64_t One = 1;
    ssize_t R = write(EventFd, &One, sizeof(One));
    (void)R;
  }
}

void SharedControl::eventFdDrain() {
  if (EventFd < 0)
    return;
  uint64_t V = 0;
  ssize_t R = read(EventFd, &V, sizeof(V)); // non-blocking; EAGAIN is fine
  (void)R;
}

uint64_t SharedControl::childEventCount() const {
  pthread_mutex_lock(&Layout->ChildEventLock.Mutex);
  uint64_t C = Layout->ChildEvents;
  pthread_mutex_unlock(&Layout->ChildEventLock.Mutex);
  return C;
}

void SharedControl::childEventWaitTimed(int TimeoutMs) {
  childEventWaitTimed(TimeoutMs, childEventCount());
}

void SharedControl::childEventWaitTimed(int TimeoutMs, uint64_t Seen) {
  timespec Deadline = deadlineIn(TimeoutMs);
  pthread_mutex_lock(&Layout->ChildEventLock.Mutex);
  while (Layout->ChildEvents == Seen) {
    if (pthread_cond_timedwait(&Layout->ChildEventLock.Cond,
                               &Layout->ChildEventLock.Mutex,
                               &Deadline) == ETIMEDOUT)
      break;
  }
  pthread_mutex_unlock(&Layout->ChildEventLock.Mutex);
}

void SharedControl::noteCrash() {
  Layout->CrashedTotal.fetch_add(1, std::memory_order_relaxed);
}
void SharedControl::noteTimeout() {
  Layout->TimedOutTotal.fetch_add(1, std::memory_order_relaxed);
}
void SharedControl::noteForkFailure() {
  Layout->ForkFailedTotal.fetch_add(1, std::memory_order_relaxed);
}
uint64_t SharedControl::crashedTotal() const {
  return Layout->CrashedTotal.load(std::memory_order_relaxed);
}
uint64_t SharedControl::timedOutTotal() const {
  return Layout->TimedOutTotal.load(std::memory_order_relaxed);
}
uint64_t SharedControl::forkFailedTotal() const {
  return Layout->ForkFailedTotal.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Commit slab
//===----------------------------------------------------------------------===//

bool SharedControl::slabCommit(uint64_t Tp, uint64_t Region,
                               const std::string &Var, int Child,
                               const uint8_t *Data, size_t Size,
                               bool DebugDieBeforePublish) {
  SharedLayout *L = Layout;
  if (Var.size() > SlabVarNameMax) {
    noteSlabFallback(obs::FallbackReason::LongName);
    return false;
  }
  if (Size > std::numeric_limits<uint32_t>::max()) {
    noteSlabFallback(obs::FallbackReason::Oversized);
    return false;
  }
  if (L->SlabRecCap == 0) {
    noteSlabFallback(obs::FallbackReason::Exhausted);
    return false;
  }
  // Bump-allocate a directory entry and payload space. Rejected
  // allocations stay consumed (the counters only grow), which keeps the
  // fast path a single fetch_add with no retry loop; the lost bytes are
  // bounded by the one commit that hit the boundary.
  uint64_t Idx = L->SlabNext.fetch_add(1, std::memory_order_relaxed);
  if (Idx >= L->SlabRecCap) {
    noteSlabFallback(obs::FallbackReason::Exhausted);
    return false;
  }
  uint64_t Need = alignUp8(Size);
  uint64_t Off = L->SlabArenaNext.fetch_add(Need, std::memory_order_relaxed);
  if (Off + Need > L->SlabArenaCap) {
    noteSlabFallback(obs::FallbackReason::Exhausted);
    return false;
  }
  SlabRecord &R = slabRecords(L)[Idx];
  R.Size = static_cast<uint32_t>(Size);
  R.Tp = Tp;
  R.Region = Region;
  R.ArenaOff = Off;
  R.Child = Child;
  R.NameLen = static_cast<uint32_t>(Var.size());
  std::memcpy(R.Name, Var.data(), Var.size());
  if (Size)
    std::memcpy(slabArena(L) + Off, Data, Size);
  if (DebugDieBeforePublish)
    raise(SIGKILL); // torn-commit test: die with the record unpublished
  L->SlabPublished.fetch_add(1, std::memory_order_relaxed);
  // Publication point: everything above must be visible before Ready.
  R.Ready.store(1, std::memory_order_release);
  return true;
}

size_t SharedControl::slabAllocated() const {
  uint64_t N = Layout->SlabNext.load(std::memory_order_acquire);
  return static_cast<size_t>(std::min<uint64_t>(N, Layout->SlabRecCap));
}

bool SharedControl::slabEntry(size_t Idx, SlabEntryView &Out) const {
  SharedLayout *L = Layout;
  if (Idx >= slabAllocated())
    return false;
  SlabRecord &R = slabRecords(L)[Idx];
  // Acquire pairs with the writer's release: a published record's
  // payload and header are fully visible; an unpublished one is absent.
  if (R.Ready.load(std::memory_order_acquire) != 1)
    return false;
  Out.Tp = R.Tp;
  Out.Region = R.Region;
  Out.Child = R.Child;
  Out.Name = std::string_view(R.Name, R.NameLen);
  Out.Data = slabArena(L) + R.ArenaOff;
  Out.Size = R.Size;
  return true;
}

uint64_t SharedControl::slabPublishedTotal() const {
  return Layout->SlabPublished.load(std::memory_order_relaxed);
}

uint64_t SharedControl::slabFallbackTotal() const {
  return Layout->SlabFallbacks.load(std::memory_order_relaxed);
}

uint64_t SharedControl::slabFallbacks(obs::FallbackReason R) const {
  return Layout->SlabFallbackReasons[int(R)].load(std::memory_order_relaxed);
}

void SharedControl::noteSlabFallback(obs::FallbackReason R) {
  Layout->SlabFallbacks.fetch_add(1, std::memory_order_relaxed);
  Layout->SlabFallbackReasons[int(R)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedControl::slabRecordsHighWater() const {
  return Layout->SlabRetiredRecords.load(std::memory_order_relaxed) +
         std::min(Layout->SlabNext.load(std::memory_order_relaxed),
                  Layout->SlabRecCap);
}

uint64_t SharedControl::slabBytesHighWater() const {
  return Layout->SlabRetiredBytes.load(std::memory_order_relaxed) +
         std::min(Layout->SlabArenaNext.load(std::memory_order_relaxed),
                  Layout->SlabArenaCap);
}

uint64_t SharedControl::slabEpoch() const {
  return Layout->SlabEpoch.load(std::memory_order_acquire);
}

bool SharedControl::slabNeedsRecycle() const {
  SharedLayout *L = Layout;
  if (L->SlabRecCap == 0)
    return false;
  uint64_t Recs = std::min(L->SlabNext.load(std::memory_order_relaxed),
                           L->SlabRecCap);
  uint64_t Bytes = std::min(L->SlabArenaNext.load(std::memory_order_relaxed),
                            L->SlabArenaCap);
  return Recs >= L->SlabRecCap / 2 || Bytes >= L->SlabArenaCap / 2;
}

void SharedControl::slabRecycle() {
  SharedLayout *L = Layout;
  if (L->SlabRecCap == 0)
    return;
  uint64_t Recs = std::min(L->SlabNext.load(std::memory_order_relaxed),
                           L->SlabRecCap);
  uint64_t Bytes = std::min(L->SlabArenaNext.load(std::memory_order_relaxed),
                            L->SlabArenaCap);
  // Clear the consumed Ready flags before resetting the allocators: a
  // stale Ready=1 entry racing a fresh writer on the same index would
  // let a reader see a half-written record as published.
  SlabRecord *Recs0 = slabRecords(L);
  for (uint64_t I = 0; I != Recs; ++I)
    Recs0[I].Ready.store(0, std::memory_order_relaxed);
  L->SlabRetiredRecords.fetch_add(Recs, std::memory_order_relaxed);
  L->SlabRetiredBytes.fetch_add(Bytes, std::memory_order_relaxed);
  uint64_t HW = L->SlabEpochRecHW.load(std::memory_order_relaxed);
  if (Recs > HW)
    L->SlabEpochRecHW.store(Recs, std::memory_order_relaxed);
  L->SlabArenaNext.store(0, std::memory_order_relaxed);
  // Release so a process that observes the reset directory (or the new
  // epoch) also observes the cleared Ready flags above.
  L->SlabNext.store(0, std::memory_order_release);
  L->SlabEpoch.fetch_add(1, std::memory_order_release);
  L->SlabRecycles.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedControl::slabRecyclesTotal() const {
  return Layout->SlabRecycles.load(std::memory_order_relaxed);
}

uint64_t SharedControl::slabEpochRecordsHighWater() const {
  uint64_t Cur = std::min(Layout->SlabNext.load(std::memory_order_relaxed),
                          Layout->SlabRecCap);
  return std::max(Layout->SlabEpochRecHW.load(std::memory_order_relaxed), Cur);
}

uint64_t SharedControl::thpGranted() const {
  return Layout->ThpGranted.load(std::memory_order_relaxed);
}

uint64_t SharedControl::thpDeclined() const {
  return Layout->ThpDeclined.load(std::memory_order_relaxed);
}

uint64_t SharedControl::hugetlbGranted() const {
  return Layout->HugetlbGranted.load(std::memory_order_relaxed);
}

uint64_t SharedControl::hugetlbDeclined() const {
  return Layout->HugetlbDeclined.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Observability: trace ring + metric cells
//===----------------------------------------------------------------------===//

bool SharedControl::traceEnabled() const {
  return Layout && Layout->TraceByteOff != 0;
}

bool SharedControl::traceEmit(const obs::TraceEvent &Ev,
                              bool DebugDieBeforePublish) {
  obs::TraceRingLayout *Ring = traceRing(Layout);
  if (!Ring)
    return false;
  return obs::traceRingEmit(Ring, Ev, DebugDieBeforePublish);
}

size_t SharedControl::traceDrain(std::vector<obs::TraceEvent> &Out,
                                 bool SkipUnpublished) {
  obs::TraceRingLayout *Ring = traceRing(Layout);
  if (!Ring)
    return 0;
  return obs::traceRingDrain(Ring, Out, SkipUnpublished);
}

uint64_t SharedControl::traceDropsTotal() const {
  obs::TraceRingLayout *Ring = traceRing(Layout);
  return Ring ? Ring->Drops.load(std::memory_order_relaxed) : 0;
}

uint64_t SharedControl::traceEmittedTotal() const {
  obs::TraceRingLayout *Ring = traceRing(Layout);
  return Ring ? Ring->Published.load(std::memory_order_relaxed) : 0;
}

void SharedControl::recordForkLatency(uint64_t Ns) {
  Layout->ForkLatency.record(Ns);
}

void SharedControl::recordCommitLatency(uint64_t Ns) {
  Layout->CommitLatency.record(Ns);
}

void SharedControl::noteRegionResolved() {
  Layout->RegionsResolved.fetch_add(1, std::memory_order_relaxed);
}

void SharedControl::noteRetry() {
  Layout->Retries.fetch_add(1, std::memory_order_relaxed);
}

void SharedControl::noteZygoteRespawn() {
  Layout->ZygoteRespawns.fetch_add(1, std::memory_order_relaxed);
}

void SharedControl::noteZygoteRestore() {
  Layout->ZygoteRestores.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedControl::regionsResolvedTotal() const {
  return Layout->RegionsResolved.load(std::memory_order_relaxed);
}

uint64_t SharedControl::retriesTotal() const {
  return Layout->Retries.load(std::memory_order_relaxed);
}

uint64_t SharedControl::zygoteRespawnsTotal() const {
  return Layout->ZygoteRespawns.load(std::memory_order_relaxed);
}

uint64_t SharedControl::zygoteRestoresTotal() const {
  return Layout->ZygoteRestores.load(std::memory_order_relaxed);
}

void *SharedControl::auxRegion() const {
  if (!Layout || !Layout->AuxByteOff)
    return nullptr;
  return reinterpret_cast<uint8_t *>(Layout) + Layout->AuxByteOff;
}

static obs::HistogramSnapshot snapshotOf(const obs::LatencyHistogram &H) {
  obs::HistogramSnapshot S;
  for (int B = 0; B != obs::NumHistBuckets; ++B)
    S.Counts[B] = H.Counts[B].load(std::memory_order_relaxed);
  S.SumNs = H.SumNs.load(std::memory_order_relaxed);
  return S;
}

obs::HistogramSnapshot SharedControl::forkLatencySnapshot() const {
  return snapshotOf(Layout->ForkLatency);
}

obs::HistogramSnapshot SharedControl::commitLatencySnapshot() const {
  return snapshotOf(Layout->CommitLatency);
}

void SharedControl::recordRegionLatency(uint64_t Ns) {
  Layout->RegionLatency.record(Ns);
}

obs::HistogramSnapshot SharedControl::regionLatencySnapshot() const {
  return snapshotOf(Layout->RegionLatency);
}

void SharedControl::noteScore(double Score) {
  SharedLayout *L = Layout;
  L->ScoreLastBits.store(doubleBits(Score), std::memory_order_relaxed);
  uint64_t Bits = doubleBits(Score);
  uint64_t Cur = L->ScoreMinBits.load(std::memory_order_relaxed);
  while (Score < bitsDouble(Cur) &&
         !L->ScoreMinBits.compare_exchange_weak(Cur, Bits,
                                                std::memory_order_relaxed))
    ;
  Cur = L->ScoreMaxBits.load(std::memory_order_relaxed);
  while (Score > bitsDouble(Cur) &&
         !L->ScoreMaxBits.compare_exchange_weak(Cur, Bits,
                                                std::memory_order_relaxed))
    ;
  L->ScoreCount.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedControl::scoresNotedTotal() const {
  return Layout->ScoreCount.load(std::memory_order_relaxed);
}

double SharedControl::scoreLast() const {
  if (!scoresNotedTotal())
    return 0.0;
  return bitsDouble(Layout->ScoreLastBits.load(std::memory_order_relaxed));
}

double SharedControl::scoreMin() const {
  if (!scoresNotedTotal())
    return 0.0; // the cell still holds +inf — never leak it into JSON
  return bitsDouble(Layout->ScoreMinBits.load(std::memory_order_relaxed));
}

double SharedControl::scoreMax() const {
  if (!scoresNotedTotal())
    return 0.0;
  return bitsDouble(Layout->ScoreMaxBits.load(std::memory_order_relaxed));
}

//===----------------------------------------------------------------------===//
// Seqlock metrics snapshot page
//===----------------------------------------------------------------------===//

void SharedControl::publishMetricsSnapshot(const obs::RuntimeMetrics &M) {
  Layout->MetricsPg.publish(M);
}

bool SharedControl::readMetricsSnapshot(obs::RuntimeMetrics &Out) const {
  return Layout->MetricsPg.read(Out);
}

uint64_t SharedControl::metricsSnapshotCount() const {
  return Layout->MetricsPg.published();
}

//===----------------------------------------------------------------------===//
// Shared accumulators
//===----------------------------------------------------------------------===//

void SharedControl::scalarAdd(int Cell, double X) {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  C.Min = std::min(C.Min, X);
  C.Max = std::max(C.Max, X);
  C.Sum += X;
  ++C.Count;
  pthread_mutex_unlock(&C.Lock.Mutex);
}

void SharedControl::scalarReset(int Cell) {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  C.Min = std::numeric_limits<double>::infinity();
  C.Max = -std::numeric_limits<double>::infinity();
  C.Sum = 0;
  C.Count = 0;
  pthread_mutex_unlock(&C.Lock.Mutex);
}

double SharedControl::scalarMin(int Cell) const {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  double V = C.Min;
  pthread_mutex_unlock(&C.Lock.Mutex);
  return V;
}

double SharedControl::scalarMax(int Cell) const {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  double V = C.Max;
  pthread_mutex_unlock(&C.Lock.Mutex);
  return V;
}

double SharedControl::scalarMean(int Cell) const {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  double V = C.Count ? C.Sum / static_cast<double>(C.Count) : 0.0;
  pthread_mutex_unlock(&C.Lock.Mutex);
  return V;
}

size_t SharedControl::scalarCount(int Cell) const {
  ScalarCell &C = Layout->Scalars[Cell];
  pthread_mutex_lock(&C.Lock.Mutex);
  size_t V = C.Count;
  pthread_mutex_unlock(&C.Lock.Mutex);
  return V;
}

void SharedControl::voteAdd(const uint8_t *Mask, size_t Size) {
  pthread_mutex_lock(&Layout->VoteLock.Mutex);
  if (Layout->VoteSize == 0)
    Layout->VoteSize = std::min<uint64_t>(Size, Layout->VoteCapacity);
  assert(Size >= Layout->VoteSize && "vote masks must share a size");
  uint32_t *Counts = voteCounts(Layout);
  for (uint64_t I = 0, E = Layout->VoteSize; I != E; ++I)
    if (Mask[I])
      ++Counts[I];
  ++Layout->VoteRuns;
  pthread_mutex_unlock(&Layout->VoteLock.Mutex);
}

size_t SharedControl::voteRuns() const {
  pthread_mutex_lock(&Layout->VoteLock.Mutex);
  size_t N = Layout->VoteRuns;
  pthread_mutex_unlock(&Layout->VoteLock.Mutex);
  return N;
}

std::vector<uint8_t> SharedControl::voteResult(double Threshold) const {
  pthread_mutex_lock(&Layout->VoteLock.Mutex);
  std::vector<uint8_t> Out(Layout->VoteSize, 0);
  double Cut = Threshold * static_cast<double>(Layout->VoteRuns);
  const uint32_t *Counts = voteCounts(Layout);
  for (uint64_t I = 0, E = Layout->VoteSize; I != E; ++I)
    Out[I] = Counts[I] > Cut ? 1 : 0;
  pthread_mutex_unlock(&Layout->VoteLock.Mutex);
  return Out;
}

void SharedControl::voteReset() {
  pthread_mutex_lock(&Layout->VoteLock.Mutex);
  std::memset(voteCounts(Layout), 0, Layout->VoteSize * sizeof(uint32_t));
  Layout->VoteRuns = 0;
  Layout->VoteSize = 0;
  pthread_mutex_unlock(&Layout->VoteLock.Mutex);
}
