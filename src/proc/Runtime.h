//===- proc/Runtime.h - Fork-based WBTuner runtime --------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's runtime, faithfully multi-process: tuning primitives are
/// plain library calls inserted into an existing program (paper Fig. 3/4),
/// and sampling is realized by fork(2) so that every sampling process
/// inherits the full program state reached so far — the "reused full
/// execution" that gives white-box tuning its asymptotic edge (paper
/// Sec. I-C).
///
/// Primitive mapping (paper -> here):
///   @sampling(n, cbStrgy)  -> Runtime::sampling(n, kind)
///   @sample(x, cbDist)     -> x = Runtime::sample("x", dist)
///   @aggregate(x, cbAggr)  -> Runtime::aggregate("x", bytes, cb)
///   @split()               -> Runtime::split()
///   @sync(cbBarrier)       -> Runtime::sync(cb)
///   @check(cbChk)          -> Runtime::check(ok)
///   @expose(x)             -> Runtime::expose("x", bytes)
///   y = @load(x)           -> Runtime::load("x", out)
///   y = @loadS(x, i)       -> AggregationView::loadBytes("x", i, out)
///
/// Semantics follow paper Fig. 8: after sampling() both the tuning process
/// and the children execute the region body; @sample is a no-op in the
/// tuning process (it observes each distribution's default value), and the
/// sampling children terminate inside aggregate() after committing. Guard
/// expensive region code with isSampling() if the tuning process should
/// not duplicate it.
///
/// Failure semantics: sampling processes are disposable, and the tuning
/// process supervises them. A child that crashes (signal, nonzero exit),
/// is killed by the optional per-region wall-clock timeout, or whose
/// fork(2) failed outright is reaped by the supervisor inside sync() and
/// aggregate(): its pool slot is reclaimed, the region barrier's expected
/// count is repaired, and its terminal SampleStatus is surfaced through
/// AggregationView. An opt-in retry policy (RuntimeOptions::MaxRetries)
/// pre-forks spare sampling processes that park before the region body and
/// replace crashed/timed-out samples with fresh RNG streams. One bad
/// sample can therefore never wedge a run — see DESIGN.md, "Failure
/// semantics".
///
/// Runtime::samplingRegion() is the worker-pool variant of a sampling
/// region: min(N, pool) long-lived workers claim sample indices from a
/// shared lease counter instead of paying one fork(2) per sample, with
/// per-index RNG reseeding keeping every draw bitwise-identical to the
/// fork-per-sample mode — see DESIGN.md, "Worker-pool sampling".
///
/// The aggregation store has two backends (RuntimeOptions::Backend).
/// StoreBackend::Files is the paper's Sec. III-B1 design: each sampling
/// process commits its result variables into per-index files inside a
/// directory owned by its tuning process; commits are atomic
/// (write-to-temp + rename), so a child killed mid-commit leaves no torn
/// file behind. StoreBackend::Shm (the default) commits through a
/// MAP_SHARED slab in the control block instead: payload first, then a
/// release-store publication word, giving the same torn-commit defense
/// without the write+rename syscall pair; oversized payloads and slab
/// overflow transparently fall back to the file path. On top of either
/// backend, foldScalar()/foldVote()/foldMeanVector() register tuning-side
/// incremental aggregation (paper Sec. IV-B): under Shm, commits are
/// folded into the accumulators as the supervisor observes them during
/// its WNOHANG sweeps, so aggregate() is O(1) per sample instead of an
/// O(N * vars) file-read storm at the barrier. The process pool and the
/// 75% tuning-spawn gate (Alg. 1) live in shared memory
/// (proc/SharedControl.h). Limitations vs. the in-process engine
/// (core/Pipeline.h): feedback-driven strategies (MCMC) are not
/// available across processes, and the caller must be single-threaded
/// when invoking sampling()/split() (standard fork discipline).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PROC_RUNTIME_H
#define WBT_PROC_RUNTIME_H

#include "aggregate/Aggregators.h"
#include "inject/Inject.h"
#include "net/Wire.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "param/Distribution.h"
#include "support/ByteBuffer.h"

#include <sys/types.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace wbt {
namespace net {
class AgentChannel;
class LeaseServer;
class MetricsEndpoint;
} // namespace net

namespace proc {

class SharedControl;
struct RegionTable;

/// Sampling strategies available across processes.
enum class SamplingKind {
  /// Independent draws from each variable's distribution.
  Random,
  /// Deterministic stratification: child i lands in stratum
  /// perm(i) of each variable's quantile space.
  Stratified,
};

/// Terminal state of one sampling child, as observed by the supervisor.
enum class SampleStatus : int32_t {
  /// Still running (only visible while the region is live).
  Running = 0,
  /// Committed its result through aggregate()/commitExtra().
  Committed,
  /// Exited voluntarily without committing (@check pruned it).
  Pruned,
  /// Died abnormally (signal or nonzero exit); see crashSignal().
  Crashed,
  /// Killed by the supervisor after the region wall-clock timeout.
  TimedOut,
  /// fork(2) failed; the sample never existed.
  ForkFailed,
  /// A retry spare that was never activated (no failures to replace).
  Unused,
};

/// Backend of the per-region aggregation store.
enum class StoreBackend {
  /// Paper Sec. III-B1: one file per (variable, child), atomic via
  /// temp-file + rename(2).
  Files,
  /// Shared-memory commit slab in the control block; release-store
  /// publication replaces rename as the torn-commit defense. Oversized
  /// payloads and slab overflow fall back to Files transparently.
  Shm,
};

struct RuntimeOptions {
  /// Root directory for the run's stores; empty = fresh mkdtemp(3) dir.
  std::string RunDir;
  /// MAX_POOL_SIZE of paper Alg. 1; 0 = hardware concurrency.
  unsigned MaxPool = 0;
  /// Apply the Alg. 1 pool rules; false = unbounded spawning (Fig. 10).
  bool UseScheduler = true;
  uint64_t Seed = 1;
  /// Elements in the shared majority-vote buffer.
  size_t VoteSlots = 1u << 20;
  /// Keep the run directory on finish() (debugging).
  bool KeepFiles = false;
  /// Per-region wall-clock budget in seconds; stragglers are SIGKILLed
  /// and reported as SampleStatus::TimedOut. 0 disables the timeout.
  /// Overridable per region via RegionOptions::TimeoutSec.
  double SampleTimeoutSec = 0.0;
  /// Spare sampling processes pre-forked per region; each crashed or
  /// timed-out sample is replaced by one spare (fresh RNG stream) until
  /// they run out. 0 disables retries. Regions that use sync() never
  /// activate spares (a replacement cannot replay missed barriers).
  int MaxRetries = 0;
  /// Testing hook: make the fork of main-sample \p DebugFailForkAt fail
  /// as if fork(2) returned -1. Negative = disabled.
  int DebugFailForkAt = -1;
  /// Where commits land; see StoreBackend.
  StoreBackend Backend = StoreBackend::Shm;
  /// Commit-slab directory entries (Shm backend). Every commit consumes
  /// one; overflow falls back to files.
  size_t ShmSlabRecords = 4096;
  /// Commit-slab payload arena bytes (Shm backend).
  size_t ShmSlabBytes = 1u << 20;
  /// Payloads larger than this bypass the slab and go to a file even
  /// under the Shm backend (keeps the arena for small hot commits).
  size_t ShmRecordThreshold = 16u << 10;
  /// Testing hook: child \p DebugKillMidCommitAt SIGKILLs itself after
  /// writing its slab payload but before publishing it (torn-commit
  /// test). Negative = disabled.
  int DebugKillMidCommitAt = -1;
  /// Workers forked per samplingRegion() (worker-pool mode); the actual
  /// count is min(N, WorkerPool, MaxPool - 1). 0 = MaxPool - 1.
  /// Overridable per region via RegionOptions::Workers.
  unsigned WorkerPool = 0;
  /// Chrome trace-event JSON output path. Non-empty enables event
  /// tracing: every process writes fixed-size records into a shared
  /// lock-free ring, the tuning process drains them during supervisor
  /// sweeps, and the root writes the merged trace here at finish().
  /// Empty consults the WBT_TRACE environment variable; tracing stays
  /// off (and the ring unmapped) when both are unset.
  std::string TracePath;
  /// Capacity of the shared trace-event ring, in records (rounded up to
  /// a power of two). A full ring drops events and counts them in
  /// RuntimeMetrics::TraceDrops rather than ever blocking a child.
  size_t TraceRingRecords = 8192;
  /// Fault-injection plan armed at init() (see inject/Inject.h for the
  /// grammar): deterministic syscall failures, EINTR storms, short
  /// writes, and SIGKILLs at named trace points, all replayable from
  /// the plan text. Empty consults the WBT_INJECT environment variable;
  /// injection stays disarmed (every hook one predicted branch) when
  /// both are unset. A malformed plan aborts init loudly.
  std::string InjectPlan;
  /// Pre-forked parked sampling processes ("zygotes") for
  /// samplingRegion(): forked once, at the first eligible region, then
  /// woken per region through a shared board — restoring the region's
  /// tuned-parameter identity (ordinal, sample count, kind, RNG
  /// streams) from shared memory instead of being re-forked. Draws stay
  /// bitwise-identical to fork-mode sampling because the per-lease RNG
  /// reseed depends only on (seed, tp, region, index). Root tuning
  /// process only; regions with more samples than the board's lease
  /// capacity fall back to forked workers. Constraint: the nursery
  /// snapshots the process image — including the first region's body
  /// closure — at spawn, so every zygote-eligible region of a run must
  /// use one body whose behavior derives from runtime queries
  /// (sample(), sampleIndex(), regionOrdinal()), not from freshly
  /// captured per-region state. 0 disables.
  unsigned Zygotes = 0;
  /// Run-wide budget of replacement zygotes forked when the supervisor
  /// finds nursery members dead (fault injection, straggler kills).
  /// Dead slots past the budget shrink the nursery; a fully dead
  /// nursery degrades to plain forked respawn workers.
  unsigned ZygoteRespawnBudget = 8;
  /// Ask the kernel to back the shared control block (commit slab +
  /// trace ring) with huge pages. init() first tries an explicit
  /// hugetlbfs reservation (mmap(MAP_HUGETLB)); when no huge-page pool
  /// is configured it falls back to transparent huge pages
  /// (madvise(MADV_HUGEPAGE)). Both outcomes are advisory and surfaced
  /// as RuntimeMetrics::HugetlbGranted/Declined and ThpGranted/Declined
  /// — the run proceeds on regular pages either way.
  bool HugePages = false;
  /// Remote sampling agents (distributed lease protocol, src/net): the
  /// root tuning process opens a TCP lease server and forks this many
  /// agent processes — stand-ins for agents on other hosts — at the
  /// first worker-pool region. Agents claim lease ranges over the wire,
  /// run the region body locally, and stream commits back in batched
  /// frames that fold exactly like local shm-slab records, so mixed
  /// local/remote regions aggregate bitwise-identically. Root tuning
  /// process only; worker-pool regions (samplingRegion / regionBatch)
  /// only. 0 disables the net path entirely.
  unsigned NetAgents = 0;
  /// Listen address of the lease server (localhost simulation by
  /// default; the protocol itself does not care where agents run).
  std::string NetListenAddress = "127.0.0.1";
  /// Lease-range size an agent claims per round trip — the wire
  /// analogue of regionBatch() amortizing supervisor wakes.
  unsigned NetLeaseChunk = 8;
  /// "ip:port" of the live metrics scrape endpoint (Prometheus text
  /// exposition, served threadless from the supervisor sweep; port 0 =
  /// kernel-picked, read back via Runtime::metricsPort()). Empty
  /// consults the WBT_METRICS environment variable; the endpoint stays
  /// off when both are unset. Root tuning process only.
  std::string MetricsAddress;
};

/// Per-region overrides for sampling().
struct RegionOptions {
  SamplingKind Kind = SamplingKind::Random;
  /// Region wall-clock budget; < 0 inherits RuntimeOptions::SampleTimeoutSec.
  double TimeoutSec = -1.0;
  /// Retry spares for this region; < 0 inherits RuntimeOptions::MaxRetries.
  int MaxRetries = -1;
  /// Workers for this region under samplingRegion(); <= 0 inherits
  /// RuntimeOptions::WorkerPool. Ignored by fork-per-sample sampling().
  int Workers = 0;
  /// Sampling regions kept in flight by regionBatch(): while the tuning
  /// process folds and delivers region R, workers may sample regions
  /// R+1 .. R+Pipeline. <= 1 degenerates to sequential samplingRegion()
  /// calls. Ignored outside regionBatch().
  int Pipeline = 1;
};

/// Backend-neutral read access to one region's committed results. The
/// Runtime builds the concrete reader (file directory scan or slab scan)
/// when the region's aggregate() barrier resolves.
class RegionReader {
public:
  virtual ~RegionReader() = default;
  /// Whether child \p I committed \p Var.
  virtual bool has(const std::string &Var, int I) const = 0;
  /// Reads child \p I's committed bytes of \p Var. \returns false if
  /// absent.
  virtual bool load(const std::string &Var, int I,
                    std::vector<uint8_t> &Out) const = 0;
};

/// Read access to one region's committed sample results (the aggregation
/// store of the owning tuning process), passed to aggregation callbacks.
class AggregationView {
public:
  /// One per-child supervision record.
  struct SampleRecord {
    SampleStatus Status = SampleStatus::Running;
    /// Terminating signal for Crashed children (0 if it exited nonzero).
    int Signal = 0;
  };

  /// Region-lifetime deltas of the run-wide store counters, attributed
  /// to this region's open->resolve window. Concurrent @split regions
  /// share the underlying counters, so under concurrent tuning processes
  /// read these as attribution of the window, not a sealed ledger.
  struct StoreCounters {
    uint64_t ShmCommits = 0;
    uint64_t Fallbacks[obs::NumFallbackReasons] = {};
  };

  AggregationView(std::shared_ptr<const RegionReader> Store,
                  std::vector<SampleRecord> Records)
      : Store(std::move(Store)), Records(std::move(Records)) {}

  AggregationView(std::shared_ptr<const RegionReader> Store,
                  std::vector<SampleRecord> Records, StoreCounters Counters)
      : Store(std::move(Store)), Records(std::move(Records)),
        Counters(Counters) {}

  /// Number of sample slots in the region: the requested samples plus any
  /// retry spares (activated or not).
  int spawned() const { return static_cast<int>(Records.size()); }

  /// Terminal status of child \p I.
  SampleStatus status(int I) const { return Records[I].Status; }
  /// Terminating signal of a Crashed child (0 otherwise).
  int crashSignal(int I) const { return Records[I].Signal; }
  /// Number of children whose terminal status is \p S.
  int countStatus(SampleStatus S) const;

  /// Indices of children that committed variable \p Var (ascending),
  /// read from the supervisor's per-child status table plus a store
  /// presence check — no per-sample access(2) scan. Children pruned by
  /// @check or crashed do not appear; in particular a crashed child's
  /// partial commitExtra() results are not surfaced here (the paper's
  /// "a crashed sample has no file in the store"), though loadBytes()
  /// still reads them raw.
  std::vector<int> committed(const std::string &Var) const;

  /// @loadS(x, i): raw committed bytes of \p Var from child \p I.
  bool loadBytes(const std::string &Var, int I,
                 std::vector<uint8_t> &Out) const;

  /// Typed helpers over loadBytes().
  double loadDouble(const std::string &Var, int I, double Default = 0) const;
  std::vector<double> loadDoubles(const std::string &Var, int I) const;
  std::vector<uint8_t> loadMask(const std::string &Var, int I) const;

  /// Store-path accounting for this region: commits that landed in the
  /// shm slab, and commits routed to the file store, by reason. Counted
  /// whether or not tracing is enabled.
  uint64_t shmCommits() const { return Counters.ShmCommits; }
  uint64_t fileFallbacks(obs::FallbackReason R) const {
    return Counters.Fallbacks[int(R)];
  }
  uint64_t fileFallbackTotal() const {
    uint64_t N = 0;
    for (uint64_t C : Counters.Fallbacks)
      N += C;
    return N;
  }

private:
  std::shared_ptr<const RegionReader> Store;
  std::vector<SampleRecord> Records;
  StoreCounters Counters;
};

/// The per-process runtime singleton.
class Runtime {
public:
  /// The calling process' runtime handle.
  static Runtime &get();

  /// Initializes the root tuning process. Call once, before any primitive.
  void init(const RuntimeOptions &Opts = RuntimeOptions());
  bool initialized() const { return Inited; }

  /// Ends this tuning process. The root waits for every @split descendant
  /// first and then removes the run directory; split children must call
  /// finishAndExit() instead.
  void finish();

  /// finish() + _exit(0); for @split children whose work is done.
  [[noreturn]] void finishAndExit();

  //===--------------------------------------------------------------------===
  // Primitives
  //===--------------------------------------------------------------------===

  /// @sampling(n, cbStrgy): forks \p N sampling children (through the
  /// pool gate). Both the parent (tuning mode) and the children (sampling
  /// mode) return and execute the region body.
  void sampling(int N, SamplingKind Kind = SamplingKind::Random) {
    RegionOptions Ro;
    Ro.Kind = Kind;
    sampling(N, Ro);
  }

  /// sampling() with per-region timeout/retry overrides.
  void sampling(int N, const RegionOptions &Ro);

  /// Worker-pool variant of a sampling region: forks only
  /// min(N, RegionOptions::Workers, MaxPool - 1) long-lived sampling
  /// workers instead of one process per sample. Each worker claims sample
  /// indices from a lock-free lease counter and runs \p Body once per
  /// claimed index; commits flow through the regular store, so the
  /// tuning side's incremental folding overlaps with still-running
  /// workers. \p Body must therefore be re-entrant: it runs many times in
  /// one worker process, and writes it makes to process-local state leak
  /// into the worker's later leases (keep per-sample state inside the
  /// body; derive everything varying from sample()/sampleIndex()).
  ///
  /// Observable behavior matches sampling() exactly: the worker reseeds
  /// its RNG per claimed index with the same stream a fork-per-sample
  /// child of that index would get, so Random and Stratified draws are
  /// bitwise-identical; sampleIndex() reports the claimed index; check()
  /// prunes just the current lease (the worker moves on); a worker that
  /// dies has its unfinished lease returned to the pool and re-claimed
  /// (once) by a survivor. sync() is not supported — workers run their
  /// leases at different times, so there is no cross-sample barrier.
  ///
  /// The tuning process also runs \p Body once (sampling primitives
  /// no-op as usual), and the body must reach aggregate(), which is
  /// where the supervision happens; samplingRegion() returns after the
  /// aggregation callback.
  void samplingRegion(int N, const RegionOptions &Ro,
                      const std::function<void()> &Body);

  void samplingRegion(int N, const std::function<void()> &Body) {
    samplingRegion(N, RegionOptions(), Body);
  }

  /// Pipelined batch of \p Regions identical sampling regions of \p N
  /// samples each, every one running \p Body: one worker set (or the
  /// zygote nursery, woken once for the whole batch) claims leases from
  /// a single counter spanning all Regions * N samples, rolling from
  /// region R's last lease straight into region R+1 without re-parking,
  /// while the tuning process folds and delivers finished regions behind
  /// them. Up to RegionOptions::Pipeline regions run ahead of the
  /// delivery point; results are delivered in submission order, and \p
  /// Body observes exactly what Regions sequential samplingRegion()
  /// calls would show it — same region ordinals, same sample indices,
  /// bitwise-identical draws via the per-lease RNG reseed. \p Body must
  /// satisfy the zygote-body constraint (derive behavior from runtime
  /// queries, not captured per-region state) whenever it branches per
  /// region. Pipeline <= 1 or Regions == 1 literally runs the
  /// sequential loop. See DESIGN.md, "Pipelined region batches".
  void regionBatch(int Regions, int N, const RegionOptions &Ro,
                   const std::function<void()> &Body);

  void regionBatch(int Regions, int N, const std::function<void()> &Body) {
    RegionOptions Ro;
    Ro.Pipeline = Regions;
    regionBatch(Regions, N, Ro, Body);
  }

  /// @sample(x, cbDist): draws this run's value of \p Name; the tuning
  /// process observes D.defaultValue() (the rule is a no-op in T mode).
  double sample(const std::string &Name, const Distribution &D);

  /// @check(cbChk): in a sampling process, terminates it when \p Ok is
  /// false (the run is pruned); no-op in a tuning process.
  void check(bool Ok);

  /// @sync(cbBarrier): all live sampling children of the current region
  /// block; once every one arrived, \p BarrierCb runs in the tuning
  /// process, then everyone proceeds. Children that died before arriving
  /// are reaped and removed from the barrier, so a crash cannot deadlock
  /// the sync.
  ///
  /// A region that uses sync() needs all its children alive at once, so
  /// its sample count must not exceed MaxPool - 1 or the pool gate
  /// deadlocks against the barrier.
  void sync(const std::function<void()> &BarrierCb);

  /// @aggregate(x, cbAggr): a sampling process commits \p Bytes as \p Var
  /// into the aggregation store and terminates. The tuning process
  /// supervises the children — reaping crashes, enforcing the region
  /// timeout, activating retry spares — then runs \p Cb over the
  /// committed results and continues.
  void aggregate(const std::string &Var, const std::vector<uint8_t> &Bytes,
                 const std::function<void(AggregationView &)> &Cb);

  /// Commits an additional result variable before aggregate() (the paper
  /// supports multiple sample-result variables per region). No-op in T
  /// mode.
  void commitExtra(const std::string &Var, const std::vector<uint8_t> &Bytes);

  /// @split(): forks a new tuning process (through the 75% gate).
  /// \returns true in the child, false in the parent (also false when
  /// fork(2) fails, after logging and releasing the reserved slot). The
  /// child inherits the regular store (the entire address space) but owns
  /// a fresh aggregation store, per rule [SPLIT].
  bool split();

  /// @expose(x): publishes \p Bytes under \p Name in the run-global
  /// exposed store (file-backed, available to every process and scope).
  void expose(const std::string &Name, const std::vector<uint8_t> &Bytes);

  /// @load(x): reads an exposed value. \returns false if absent.
  bool load(const std::string &Name, std::vector<uint8_t> &Out) const;

  //===--------------------------------------------------------------------===
  // Mode and identity
  //===--------------------------------------------------------------------===

  bool isSampling() const { return Mode == ModeKind::Sampling; }
  bool isTuning() const { return Mode == ModeKind::Tuning; }
  /// Child index within the current region, or -1 in a tuning process.
  /// Retry spares observe indices >= the region's requested sample count.
  /// In a worker-pool region this is the currently claimed sample index,
  /// not the worker's slot (see poolWorkerIndex()).
  int sampleIndex() const { return isSampling() ? ChildIndex : -1; }
  /// Worker slot within a samplingRegion() pool, or -1 outside one.
  /// Unlike sampleIndex(), this identifies the long-lived process.
  int poolWorkerIndex() const { return PoolWorker ? WorkerIndex : -1; }
  /// Attempt number (1-based) of the current sample. A pool lease being
  /// re-run after its previous holder died observes 2, 3, ...; fork-mode
  /// samples and tuning processes always observe 1. Lets a body act on
  /// exactly one attempt of a given index regardless of which worker
  /// claims it (the re-runner's own increment orders after the dead
  /// holder's in the cell's modification order).
  int sampleAttempt() const;
  /// Ordinal of the current (most recently opened) sampling region.
  /// Zygote-mode bodies branch on this instead of capturing per-region
  /// state (the nursery's body closure is frozen at spawn).
  uint64_t regionOrdinal() const { return RegionCounter; }
  uint64_t tuningProcessId() const { return TpId; }
  /// Deterministic per-process random stream.
  Rng &rng() { return TheRng; }

  //===--------------------------------------------------------------------===
  // Supervisor diagnostics
  //===--------------------------------------------------------------------===

  /// Free pool slots right now (slot-reclaim accounting checks).
  int freeSlots() const;
  unsigned maxPool() const;
  /// Run-wide counts of abnormal sample outcomes.
  uint64_t crashedSamples() const;
  uint64_t timedOutSamples() const;
  uint64_t forkFailures() const;
  /// Leases of dead workers returned for re-claiming (worker-pool mode).
  uint64_t leaseReclaims() const;

  //===--------------------------------------------------------------------===
  // Shared incremental aggregation (paper Sec. IV-B across processes)
  //===--------------------------------------------------------------------===

  void sharedScalarAdd(int Cell, double X);
  void sharedScalarReset(int Cell);
  double sharedScalarMin(int Cell) const;
  double sharedScalarMax(int Cell) const;
  double sharedScalarMean(int Cell) const;
  size_t sharedScalarCount(int Cell) const;

  void sharedVoteAdd(const std::vector<uint8_t> &Mask);
  size_t sharedVoteRuns() const;
  std::vector<uint8_t> sharedVoteResult(double Threshold = 0.5) const;
  void sharedVoteReset();

  //===--------------------------------------------------------------------===
  // Tuning-side incremental folding (paper Sec. IV-B over the store)
  //===--------------------------------------------------------------------===

  /// Registers variable \p Var for incremental aggregation and returns
  /// its accumulator. Call in the tuning process between sampling() and
  /// aggregate(); under the Shm backend each commit of \p Var is folded
  /// into the accumulator as the supervisor observes it (O(1) per
  /// sample), and any file-fallback commits are folded before the
  /// aggregation callback runs, so the accumulator is complete —
  /// covering exactly the Committed children — by the time \p Cb sees
  /// the AggregationView. The reference is valid until the next
  /// sampling(). foldScalar expects encodeDouble() payloads, foldVote
  /// encodeVector<uint8_t>() masks, foldMeanVector
  /// encodeVector<double>().
  ScalarAccumulator &foldScalar(const std::string &Var);
  VoteAccumulator &foldVote(const std::string &Var);
  MeanVectorAccumulator &foldMeanVector(const std::string &Var);

  /// Run-wide store diagnostics: commits published through the slab, and
  /// commits that fell back to the file path (oversized payload, slab
  /// overflow, or over-long variable name).
  uint64_t shmCommits() const;
  uint64_t storeFallbacks() const;

  //===--------------------------------------------------------------------===
  // Observability (src/obs)
  //===--------------------------------------------------------------------===

  /// One coherent snapshot of the run's counters and latency histograms
  /// (always collected; valid while the runtime is initialized).
  obs::RuntimeMetrics metrics() const;
  /// Records one per-region aggregate outcome: updates the shared score
  /// cells (last/min/max, surfaced as RuntimeMetrics::Score*), emits an
  /// EventKind::Progress trace record, and republishes the metrics
  /// snapshot page — the tuning-progress signal drift detectors and
  /// meta-tuners consume. Call from the aggregation callback (or right
  /// after aggregate()) with whatever scalar the caller optimizes.
  /// \p Samples is the committed sample count behind the score (0 ok).
  void noteScore(double Score, uint32_t Samples = 0);
  /// Port of the live metrics endpoint, 0 when it is off. With
  /// MetricsAddress port 0, this is the kernel-picked port.
  uint16_t metricsPort() const;
  /// Whether event tracing is active (TracePath / WBT_TRACE was set).
  bool traceEnabled() const { return TraceOn; }
  /// Effective trace output path ("" when tracing is off).
  const std::string &tracePath() const { return TracePathEff; }

  const std::string &runDir() const { return Opts.RunDir; }

private:
  Runtime() = default;

  enum class ModeKind { Tuning, Sampling };

  std::string regionDir(uint64_t Region) const;
  /// Routes one commit to the slab or the file store per Backend /
  /// threshold / capacity (sampling side).
  void commitBytes(const std::string &Var, const std::vector<uint8_t> &Bytes);
  /// Builds the region's RegionReader once its barrier resolved.
  std::shared_ptr<const RegionReader> makeRegionReader() const;
  /// Folds newly published slab commits of the live region into the
  /// registered accumulators (called from supervisor sweeps).
  void foldSlabCommits();
  /// Folds whatever registered (Var, child) pairs the slab sweep missed
  /// — file-fallback commits and the whole Files backend.
  void foldRemaining(const RegionReader &Store,
                     const std::vector<AggregationView::SampleRecord> &Records);
  void foldEntryBytes(const std::string &Var, int Child, const uint8_t *Data,
                      size_t Size);
  /// Emits one trace event into the shared ring; single-branch no-op
  /// when tracing is off (the <1% disabled-path budget). Trace points
  /// double as fault-injection kill points — the armed() check runs
  /// even with tracing off, so `tp.<name>@...:kill` clauses work
  /// without paying for the ring.
  void traceEmit(obs::EventKind Kind, uint64_t A = 0, uint64_t B = 0,
                 uint16_t Arg = 0) {
    if (inject::armed())
      inject::onTracePoint(obs::eventPointName(Kind));
    if (TraceOn)
      traceEmitSlow(Kind, A, B, Arg);
  }
  void traceEmitSlow(obs::EventKind Kind, uint64_t A, uint64_t B,
                     uint16_t Arg);
  /// Drains the ring into TraceBuf (tuning side, supervisor sweeps).
  /// \p Final skips cells left unpublished by dead writers.
  void drainTraceEvents(bool Final);
  /// Root: merges @split fragments and writes the Chrome trace JSON.
  /// Non-root tuning processes persist their TraceBuf as a fragment.
  void exportTrace();
  void writeTraceFragmentFile();
  /// Root supervisor: republishes the seqlock metrics page and pumps the
  /// scrape endpoint (zero timeout). Called from every sweep.
  void publishTelemetry();
  /// Agent side: sends the buffered trace backlog as one TraceFrame.
  void agentFlushTrace(net::AgentChannel &Chan);
  [[noreturn]] void exitChild();
  /// Spare child: blocks until activated (returns, to run the region body)
  /// or discarded (_exits, never returns).
  void parkAsSpare(int Idx);

  // Supervisor internals (tuning side of a live region).
  bool reapOne(int Idx, bool Block);
  int sweepChildren();
  void killStragglers();
  bool regionDeadlinePassed() const;
  bool activateSpare();
  void discardSpares();
  void destroyRegionTable();

  // Worker-pool internals (samplingRegion / regionBatch).
  [[noreturn]] void workerLoop();
  void runLeases();
  void runOneLease(int Idx);
  int claimLease();
  int claimLeaseGated();
  int claimReturnedLease();
  void forkPoolWorker(int SlotIdx);
  void reclaimWorkerLease(int SlotIdx);
  bool settlePoolLeases();
  void markLeasesTimedOut();
  /// Maps the per-region child table and forks \p W pool workers with
  /// \p TotalLeases lease cells (a batch spans several regions' worth).
  void openPoolTable(int W, int TotalLeases, int64_t ClaimInit);
  /// Raises the batch pipeline gate to \p NewLimit and wakes gate-blocked
  /// workers. No-op on plain regions.
  void advanceClaimLimit(int64_t NewLimit);
  /// Recycles the commit slab between regions when it is safe (root
  /// tuning process, sole live tuning process, no open region) and the
  /// current epoch has consumed at least half the slab.
  void maybeRecycleSlab();

  // Zygote nursery (pre-forked parked workers; root tuning side except
  // zygoteLoop, which is the zygote's whole life).
  [[noreturn]] void zygoteLoop(int Slot, uint64_t StartGen);
  void spawnZygotes();
  bool spawnZygoteInto(int Slot);
  int openZygoteRegion(int N, int TotalLeases, int MaxW, int64_t ClaimInit);
  void shutdownZygotes();

  // Distributed sampling agents (src/net; root tuning side except
  // netAgentLoop, which is an agent's whole life).
  void spawnNetAgents();
  void shutdownNetAgents();
  /// Opens/closes the server's lease window over the current pool table.
  void netOpenRegion();
  void netCloseRegion();
  /// Server callbacks (run in the root tuning process, from pump()).
  std::vector<int64_t> netClaimLeases(uint32_t Want);
  void netApplyCommit(const net::LeaseResult &R);
  bool netReturnLease(int64_t Lease);
  /// Forked children must not hold the server's descriptors: a dup of a
  /// connection fd would keep the socket alive past the server's close,
  /// so a dropped agent never sees EOF.
  void closeInheritedNetFds();
  [[noreturn]] void netAgentLoop(uint32_t AgentId, uint16_t Port);
  net::LeaseResult netRunLease(const net::RegionOpenMsg &Region, int64_t Idx);

  RuntimeOptions Opts;
  std::unique_ptr<SharedControl> Ctl;
  bool Inited = false;
  bool IsRoot = false;
  bool TraceOn = false;
  std::string TracePathEff;
  std::vector<obs::TraceEvent> TraceBuf; // drained events (tuning side)
  double InitTime = 0; // monotonic seconds at init() (metrics elapsed)
  ModeKind Mode = ModeKind::Tuning;
  uint64_t TpId = 0;
  std::string TpDir;
  uint64_t RegionCounter = 0;
  Rng TheRng;

  // Current region state.
  bool RegionActive = false;
  int RegionN = 0;
  SamplingKind RegionKind = SamplingKind::Random;
  int BarrierSlot = 0;
  int ChildIndex = -1;
  RegionTable *Table = nullptr; // per-region shared child table
  size_t TableBytes = 0;
  int NumSpares = 0;
  int NextSpare = 0;           // next unactivated spare (tuning side)
  bool RegionUsedSync = false; // disables spare activation
  bool RegionHasDeadline = false;
  double RegionDeadline = 0;      // CLOCK_MONOTONIC seconds
  std::vector<char> Reaped;       // per-child, tuning side
  std::vector<pid_t> SplitChildren;

  // Worker-pool region state (samplingRegion).
  bool RegionIsPool = false;
  int RegionWorkers = 0; // workers forked (tuning side)
  int LeaseSlot = -1;    // SharedControl lease-counter slot
  int RespawnsUsed = 0;  // replacement workers forked after a wipe-out
  std::function<void()> RegionBody; // re-run by workers and respawns
  bool PoolWorker = false;          // this process is a pool worker
  int WorkerIndex = -1;             // its slot in the region table
  int LeaseIndex = -1; // claimed lease cell; == sample index except in a
                       // batch, where ChildIndex is the within-region one

  // Pipelined batch state (regionBatch, tuning side).
  bool BatchActive = false;
  int BatchRegions = 0;    // regions in the open batch
  int BatchN = 0;          // samples per region (uniform)
  uint64_t BatchBase = 0;  // ordinal of the batch's first region

  // Zygote nursery state (root tuning side).
  bool ZygotesSpawned = false;
  int NumZygotes = 0;            // nursery slots (== Opts.Zygotes)
  std::vector<pid_t> ZygotePids; // per nursery slot; 0 = dead
  unsigned ZygoteRespawnsLeft = 0;
  bool RegionIsZygote = false; // current region runs on the board

  // Distributed-agent state. The server lives in the root tuning
  // process only; NetAgentMode marks a forked agent process, whose
  // commits are captured into AgentVars and shipped over the wire
  // instead of touching the store.
  std::unique_ptr<net::LeaseServer> NetServer;
  std::vector<pid_t> NetAgentPids;
  bool NetSpawned = false;   // agents forked (first eligible region)
  bool NetAgentMode = false; // this process is a remote sampling agent
  std::vector<net::CommitVar> AgentVars; // current lease's commits
  bool AgentCommitted = false; // current lease reached aggregate()
  /// Agent-side trace backlog: an agent's process has no shared ring
  /// with the root, so its traceEmitSlow() buffers here and the loop
  /// flushes as TraceFrame batches (before each CommitBatch and on
  /// RegionClose). Bounded; overflow drops the oldest half.
  std::vector<obs::TraceEvent> AgentTraceBuf;

  // Live telemetry plane (root tuning side).
  std::unique_ptr<net::MetricsEndpoint> MetricsEp;
  double RegionT0 = 0; // monotonic seconds at region open (RegionLatency)

  // Aggregation-store state of the current region.
  std::string RegionDirPath; // cached regionDir(RegionCounter)
  size_t RegionSlabStart = 0; // slab watermark at sampling(); earlier
                              // entries cannot belong to this region
  // Store-counter watermarks at region open (AggregationView deltas).
  uint64_t RegionShmStart = 0;
  uint64_t RegionFallbackStart[obs::NumFallbackReasons] = {};
  std::map<std::string, ScalarAccumulator> FoldScalars;
  std::map<std::string, VoteAccumulator> FoldVotes;
  std::map<std::string, MeanVectorAccumulator> FoldMeanVecs;
  std::set<std::pair<std::string, int>> FoldedPairs;
};

/// Process-local count of entries removeTree() failed to remove (warned
/// on stderr, surfaced as RuntimeMetrics::RemoveFailures).
uint64_t removeTreeFailures();

//===----------------------------------------------------------------------===//
// Typed commit/expose helpers
//===----------------------------------------------------------------------===//

/// Encodes a double for aggregate()/expose().
inline std::vector<uint8_t> encodeDouble(double X) {
  ByteWriter W;
  W.write(X);
  return W.take();
}

inline double decodeDouble(const std::vector<uint8_t> &Bytes,
                           double Default = 0) {
  ByteReader R(Bytes);
  double X = R.read<double>();
  return R.ok() ? X : Default;
}

/// Encodes a vector of trivially copyable elements.
template <typename T>
std::vector<uint8_t> encodeVector(const std::vector<T> &V) {
  ByteWriter W;
  W.writeVector(V);
  return W.take();
}

template <typename T>
std::vector<T> decodeVector(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  return R.readVector<T>();
}

} // namespace proc
} // namespace wbt

#endif // WBT_PROC_RUNTIME_H
