//===- proc/Runtime.h - Fork-based WBTuner runtime --------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's runtime, faithfully multi-process: tuning primitives are
/// plain library calls inserted into an existing program (paper Fig. 3/4),
/// and sampling is realized by fork(2) so that every sampling process
/// inherits the full program state reached so far — the "reused full
/// execution" that gives white-box tuning its asymptotic edge (paper
/// Sec. I-C).
///
/// Primitive mapping (paper -> here):
///   @sampling(n, cbStrgy)  -> Runtime::sampling(n, kind)
///   @sample(x, cbDist)     -> x = Runtime::sample("x", dist)
///   @aggregate(x, cbAggr)  -> Runtime::aggregate("x", bytes, cb)
///   @split()               -> Runtime::split()
///   @sync(cbBarrier)       -> Runtime::sync(cb)
///   @check(cbChk)          -> Runtime::check(ok)
///   @expose(x)             -> Runtime::expose("x", bytes)
///   y = @load(x)           -> Runtime::load("x", out)
///   y = @loadS(x, i)       -> AggregationView::loadBytes("x", i, out)
///
/// Semantics follow paper Fig. 8: after sampling() both the tuning process
/// and the children execute the region body; @sample is a no-op in the
/// tuning process (it observes each distribution's default value), and the
/// sampling children terminate inside aggregate() after committing. Guard
/// expensive region code with isSampling() if the tuning process should
/// not duplicate it.
///
/// Failure semantics: sampling processes are disposable, and the tuning
/// process supervises them. A child that crashes (signal, nonzero exit),
/// is killed by the optional per-region wall-clock timeout, or whose
/// fork(2) failed outright is reaped by the supervisor inside sync() and
/// aggregate(): its pool slot is reclaimed, the region barrier's expected
/// count is repaired, and its terminal SampleStatus is surfaced through
/// AggregationView. An opt-in retry policy (RuntimeOptions::MaxRetries)
/// pre-forks spare sampling processes that park before the region body and
/// replace crashed/timed-out samples with fresh RNG streams. One bad
/// sample can therefore never wedge a run — see DESIGN.md, "Failure
/// semantics".
///
/// The aggregation store is file-backed exactly as in paper Sec. III-B1:
/// each sampling process commits its result variables into per-index files
/// inside a directory owned by its tuning process; commits are atomic
/// (write-to-temp + rename), so a child killed mid-commit leaves no
/// torn file behind. The process pool and the 75% tuning-spawn gate
/// (Alg. 1) live in shared memory (proc/SharedControl.h). Limitations vs.
/// the in-process engine (core/Pipeline.h): feedback-driven strategies
/// (MCMC) are not available across processes, and the caller must be
/// single-threaded when invoking sampling()/split() (standard fork
/// discipline).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PROC_RUNTIME_H
#define WBT_PROC_RUNTIME_H

#include "param/Distribution.h"
#include "support/ByteBuffer.h"

#include <sys/types.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wbt {
namespace proc {

class SharedControl;
struct RegionTable;

/// Sampling strategies available across processes.
enum class SamplingKind {
  /// Independent draws from each variable's distribution.
  Random,
  /// Deterministic stratification: child i lands in stratum
  /// perm(i) of each variable's quantile space.
  Stratified,
};

/// Terminal state of one sampling child, as observed by the supervisor.
enum class SampleStatus : int32_t {
  /// Still running (only visible while the region is live).
  Running = 0,
  /// Committed its result through aggregate()/commitExtra().
  Committed,
  /// Exited voluntarily without committing (@check pruned it).
  Pruned,
  /// Died abnormally (signal or nonzero exit); see crashSignal().
  Crashed,
  /// Killed by the supervisor after the region wall-clock timeout.
  TimedOut,
  /// fork(2) failed; the sample never existed.
  ForkFailed,
  /// A retry spare that was never activated (no failures to replace).
  Unused,
};

struct RuntimeOptions {
  /// Root directory for the run's stores; empty = fresh mkdtemp(3) dir.
  std::string RunDir;
  /// MAX_POOL_SIZE of paper Alg. 1; 0 = hardware concurrency.
  unsigned MaxPool = 0;
  /// Apply the Alg. 1 pool rules; false = unbounded spawning (Fig. 10).
  bool UseScheduler = true;
  uint64_t Seed = 1;
  /// Elements in the shared majority-vote buffer.
  size_t VoteSlots = 1u << 20;
  /// Keep the run directory on finish() (debugging).
  bool KeepFiles = false;
  /// Per-region wall-clock budget in seconds; stragglers are SIGKILLed
  /// and reported as SampleStatus::TimedOut. 0 disables the timeout.
  /// Overridable per region via RegionOptions::TimeoutSec.
  double SampleTimeoutSec = 0.0;
  /// Spare sampling processes pre-forked per region; each crashed or
  /// timed-out sample is replaced by one spare (fresh RNG stream) until
  /// they run out. 0 disables retries. Regions that use sync() never
  /// activate spares (a replacement cannot replay missed barriers).
  int MaxRetries = 0;
  /// Testing hook: make the fork of main-sample \p DebugFailForkAt fail
  /// as if fork(2) returned -1. Negative = disabled.
  int DebugFailForkAt = -1;
};

/// Per-region overrides for sampling().
struct RegionOptions {
  SamplingKind Kind = SamplingKind::Random;
  /// Region wall-clock budget; < 0 inherits RuntimeOptions::SampleTimeoutSec.
  double TimeoutSec = -1.0;
  /// Retry spares for this region; < 0 inherits RuntimeOptions::MaxRetries.
  int MaxRetries = -1;
};

/// Read access to one region's committed sample results (the aggregation
/// store of the owning tuning process), passed to aggregation callbacks.
class AggregationView {
public:
  /// One per-child supervision record.
  struct SampleRecord {
    SampleStatus Status = SampleStatus::Running;
    /// Terminating signal for Crashed children (0 if it exited nonzero).
    int Signal = 0;
  };

  AggregationView(std::string RegionDir, std::vector<SampleRecord> Records)
      : RegionDir(std::move(RegionDir)), Records(std::move(Records)) {}

  /// Number of sample slots in the region: the requested samples plus any
  /// retry spares (activated or not).
  int spawned() const { return static_cast<int>(Records.size()); }

  /// Terminal status of child \p I.
  SampleStatus status(int I) const { return Records[I].Status; }
  /// Terminating signal of a Crashed child (0 otherwise).
  int crashSignal(int I) const { return Records[I].Signal; }
  /// Number of children whose terminal status is \p S.
  int countStatus(SampleStatus S) const;

  /// Indices of children that committed variable \p Var (ascending).
  /// Children pruned by @check or crashed do not appear.
  std::vector<int> committed(const std::string &Var) const;

  /// @loadS(x, i): raw committed bytes of \p Var from child \p I.
  bool loadBytes(const std::string &Var, int I,
                 std::vector<uint8_t> &Out) const;

  /// Typed helpers over loadBytes().
  double loadDouble(const std::string &Var, int I, double Default = 0) const;
  std::vector<double> loadDoubles(const std::string &Var, int I) const;
  std::vector<uint8_t> loadMask(const std::string &Var, int I) const;

private:
  std::string RegionDir;
  std::vector<SampleRecord> Records;
};

/// The per-process runtime singleton.
class Runtime {
public:
  /// The calling process' runtime handle.
  static Runtime &get();

  /// Initializes the root tuning process. Call once, before any primitive.
  void init(const RuntimeOptions &Opts = RuntimeOptions());
  bool initialized() const { return Inited; }

  /// Ends this tuning process. The root waits for every @split descendant
  /// first and then removes the run directory; split children must call
  /// finishAndExit() instead.
  void finish();

  /// finish() + _exit(0); for @split children whose work is done.
  [[noreturn]] void finishAndExit();

  //===--------------------------------------------------------------------===
  // Primitives
  //===--------------------------------------------------------------------===

  /// @sampling(n, cbStrgy): forks \p N sampling children (through the
  /// pool gate). Both the parent (tuning mode) and the children (sampling
  /// mode) return and execute the region body.
  void sampling(int N, SamplingKind Kind = SamplingKind::Random) {
    RegionOptions Ro;
    Ro.Kind = Kind;
    sampling(N, Ro);
  }

  /// sampling() with per-region timeout/retry overrides.
  void sampling(int N, const RegionOptions &Ro);

  /// @sample(x, cbDist): draws this run's value of \p Name; the tuning
  /// process observes D.defaultValue() (the rule is a no-op in T mode).
  double sample(const std::string &Name, const Distribution &D);

  /// @check(cbChk): in a sampling process, terminates it when \p Ok is
  /// false (the run is pruned); no-op in a tuning process.
  void check(bool Ok);

  /// @sync(cbBarrier): all live sampling children of the current region
  /// block; once every one arrived, \p BarrierCb runs in the tuning
  /// process, then everyone proceeds. Children that died before arriving
  /// are reaped and removed from the barrier, so a crash cannot deadlock
  /// the sync.
  ///
  /// A region that uses sync() needs all its children alive at once, so
  /// its sample count must not exceed MaxPool - 1 or the pool gate
  /// deadlocks against the barrier.
  void sync(const std::function<void()> &BarrierCb);

  /// @aggregate(x, cbAggr): a sampling process commits \p Bytes as \p Var
  /// into the aggregation store and terminates. The tuning process
  /// supervises the children — reaping crashes, enforcing the region
  /// timeout, activating retry spares — then runs \p Cb over the
  /// committed results and continues.
  void aggregate(const std::string &Var, const std::vector<uint8_t> &Bytes,
                 const std::function<void(AggregationView &)> &Cb);

  /// Commits an additional result variable before aggregate() (the paper
  /// supports multiple sample-result variables per region). No-op in T
  /// mode.
  void commitExtra(const std::string &Var, const std::vector<uint8_t> &Bytes);

  /// @split(): forks a new tuning process (through the 75% gate).
  /// \returns true in the child, false in the parent (also false when
  /// fork(2) fails, after logging and releasing the reserved slot). The
  /// child inherits the regular store (the entire address space) but owns
  /// a fresh aggregation store, per rule [SPLIT].
  bool split();

  /// @expose(x): publishes \p Bytes under \p Name in the run-global
  /// exposed store (file-backed, available to every process and scope).
  void expose(const std::string &Name, const std::vector<uint8_t> &Bytes);

  /// @load(x): reads an exposed value. \returns false if absent.
  bool load(const std::string &Name, std::vector<uint8_t> &Out) const;

  //===--------------------------------------------------------------------===
  // Mode and identity
  //===--------------------------------------------------------------------===

  bool isSampling() const { return Mode == ModeKind::Sampling; }
  bool isTuning() const { return Mode == ModeKind::Tuning; }
  /// Child index within the current region, or -1 in a tuning process.
  /// Retry spares observe indices >= the region's requested sample count.
  int sampleIndex() const { return isSampling() ? ChildIndex : -1; }
  uint64_t tuningProcessId() const { return TpId; }
  /// Deterministic per-process random stream.
  Rng &rng() { return TheRng; }

  //===--------------------------------------------------------------------===
  // Supervisor diagnostics
  //===--------------------------------------------------------------------===

  /// Free pool slots right now (slot-reclaim accounting checks).
  int freeSlots() const;
  unsigned maxPool() const;
  /// Run-wide counts of abnormal sample outcomes.
  uint64_t crashedSamples() const;
  uint64_t timedOutSamples() const;
  uint64_t forkFailures() const;

  //===--------------------------------------------------------------------===
  // Shared incremental aggregation (paper Sec. IV-B across processes)
  //===--------------------------------------------------------------------===

  void sharedScalarAdd(int Cell, double X);
  void sharedScalarReset(int Cell);
  double sharedScalarMin(int Cell) const;
  double sharedScalarMax(int Cell) const;
  double sharedScalarMean(int Cell) const;
  size_t sharedScalarCount(int Cell) const;

  void sharedVoteAdd(const std::vector<uint8_t> &Mask);
  size_t sharedVoteRuns() const;
  std::vector<uint8_t> sharedVoteResult(double Threshold = 0.5) const;
  void sharedVoteReset();

  const std::string &runDir() const { return Opts.RunDir; }

private:
  Runtime() = default;

  enum class ModeKind { Tuning, Sampling };

  std::string regionDir(uint64_t Region) const;
  [[noreturn]] void exitChild();
  /// Spare child: blocks until activated (returns, to run the region body)
  /// or discarded (_exits, never returns).
  void parkAsSpare(int Idx);

  // Supervisor internals (tuning side of a live region).
  bool reapOne(int Idx, bool Block);
  int sweepChildren();
  void killStragglers();
  bool regionDeadlinePassed() const;
  bool activateSpare();
  void discardSpares();
  void destroyRegionTable();

  RuntimeOptions Opts;
  std::unique_ptr<SharedControl> Ctl;
  bool Inited = false;
  bool IsRoot = false;
  ModeKind Mode = ModeKind::Tuning;
  uint64_t TpId = 0;
  std::string TpDir;
  uint64_t RegionCounter = 0;
  Rng TheRng;

  // Current region state.
  bool RegionActive = false;
  int RegionN = 0;
  SamplingKind RegionKind = SamplingKind::Random;
  int BarrierSlot = 0;
  int ChildIndex = -1;
  RegionTable *Table = nullptr; // per-region shared child table
  size_t TableBytes = 0;
  int NumSpares = 0;
  int NextSpare = 0;           // next unactivated spare (tuning side)
  bool RegionUsedSync = false; // disables spare activation
  bool RegionHasDeadline = false;
  double RegionDeadline = 0;      // CLOCK_MONOTONIC seconds
  std::vector<char> Reaped;       // per-child, tuning side
  std::vector<pid_t> SplitChildren;
};

//===----------------------------------------------------------------------===//
// Typed commit/expose helpers
//===----------------------------------------------------------------------===//

/// Encodes a double for aggregate()/expose().
inline std::vector<uint8_t> encodeDouble(double X) {
  ByteWriter W;
  W.write(X);
  return W.take();
}

inline double decodeDouble(const std::vector<uint8_t> &Bytes,
                           double Default = 0) {
  ByteReader R(Bytes);
  double X = R.read<double>();
  return R.ok() ? X : Default;
}

/// Encodes a vector of trivially copyable elements.
template <typename T>
std::vector<uint8_t> encodeVector(const std::vector<T> &V) {
  ByteWriter W;
  W.writeVector(V);
  return W.take();
}

template <typename T>
std::vector<T> decodeVector(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  return R.readVector<T>();
}

} // namespace proc
} // namespace wbt

#endif // WBT_PROC_RUNTIME_H
