//===- speech/Recognizer.cpp - Toy isolated-word recognizer ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "speech/Recognizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace wbt;
using namespace wbt::speech;

namespace {

/// Per-word spectral template: three moving formant peaks with a
/// word-specific amplitude envelope. The wide parameter ranges keep words
/// spectrally well separated so that time warping does not erase class
/// margins.
Frames makeTemplate(int NumFrames, Rng &R) {
  Frames F(static_cast<size_t>(NumFrames),
           std::vector<double>(NumBins, 0.05));
  double Formant1 = R.uniform(1.5, 6.5);
  double Formant2 = R.uniform(7.0, 14.5);
  double Formant3 = R.uniform(3.0, 13.0);
  double Amp1 = R.uniform(0.5, 1.5);
  double Amp2 = R.uniform(0.3, 1.3);
  double Amp3 = R.uniform(0.0, 0.9);
  double Drift1 = R.uniform(-3.0, 3.0) / NumFrames;
  double Drift2 = R.uniform(-4.0, 4.0) / NumFrames;
  double Drift3 = R.uniform(-5.0, 5.0) / NumFrames;
  double Width1 = R.uniform(0.6, 1.6);
  double Width2 = R.uniform(0.6, 2.0);
  double Width3 = R.uniform(0.5, 1.2);
  double EnvFreq = R.uniform(0.5, 2.5);   // word-specific loudness contour
  double EnvPhase = R.uniform(0.0, 3.14);
  for (int T = 0; T != NumFrames; ++T) {
    double C1 = Formant1 + Drift1 * T;
    double C2 = Formant2 + Drift2 * T;
    double C3 = Formant3 + Drift3 * T;
    double Phase = 3.14159 * T / NumFrames;
    double Env = 0.55 + 0.45 * std::sin(Phase) *
                            (0.6 + 0.4 * std::cos(EnvFreq * Phase + EnvPhase));
    for (int B = 0; B != NumBins; ++B) {
      double V =
          Amp1 * std::exp(-(B - C1) * (B - C1) / (2 * Width1 * Width1)) +
          Amp2 * std::exp(-(B - C2) * (B - C2) / (2 * Width2 * Width2)) +
          Amp3 * std::exp(-(B - C3) * (B - C3) / (2 * Width3 * Width3));
      F[static_cast<size_t>(T)][static_cast<size_t>(B)] = 0.05 + Env * V;
    }
  }
  return F;
}

/// Renders a speaker's version of a template: spectral shift, speed warp,
/// loudness, noise, and silence padding.
Frames renderUtterance(const Frames &Template, const SpeakerProfile &S,
                       Rng &R) {
  Frames Out;
  int Lead = static_cast<int>(R.uniformInt(1, 4));
  int Trail = static_cast<int>(R.uniformInt(1, 4));
  auto SilenceFrame = [&] {
    std::vector<double> F(NumBins);
    for (double &V : F)
      V = std::fabs(R.gaussian(0.0, 0.5 * S.NoiseSigma + 0.01));
    return F;
  };
  for (int I = 0; I != Lead; ++I)
    Out.push_back(SilenceFrame());
  double Pos = 0.0;
  while (Pos < static_cast<double>(Template.size()) - 1e-9) {
    const std::vector<double> &Src =
        Template[std::min(Template.size() - 1, static_cast<size_t>(Pos))];
    std::vector<double> F(NumBins, 0.0);
    for (int B = 0; B != NumBins; ++B) {
      int SrcBin = B - S.SpectralShift;
      double V = (SrcBin >= 0 && SrcBin < NumBins)
                     ? Src[static_cast<size_t>(SrcBin)]
                     : 0.03;
      F[static_cast<size_t>(B)] =
          std::max(0.0, S.Loudness * V + R.gaussian(0.0, S.NoiseSigma));
    }
    Out.push_back(std::move(F));
    Pos += S.Speed * R.uniform(0.92, 1.08);
  }
  for (int I = 0; I != Trail; ++I)
    Out.push_back(SilenceFrame());
  return Out;
}

double frameEnergy(const std::vector<double> &F) {
  double E = 0.0;
  for (double V : F)
    E += V;
  return E / static_cast<double>(F.size());
}

} // namespace

SpeechDataset wbt::speech::makeSpeechDataset(uint64_t Seed,
                                             const SpeechDatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 31337);
  SpeechDataset D;
  for (int W = 0; W != Opts.VocabularySize; ++W) {
    int Frames = static_cast<int>(R.uniformInt(Opts.MinFrames,
                                               Opts.MaxFrames));
    D.Vocab.Templates.push_back(makeTemplate(Frames, R));
    D.Vocab.Priors.push_back(std::log(R.uniform(0.2, 1.0)));
  }
  for (int S = 0; S != Opts.NumSpeakers; ++S) {
    SpeakerProfile P;
    P.SpectralShift = static_cast<int>(R.uniformInt(-2, 2));
    P.Speed = R.uniform(0.8, 1.25);
    P.NoiseSigma = R.uniform(0.02, 0.10);
    P.Loudness = R.uniform(0.6, 1.4);
    D.Speakers.push_back(P);
    std::vector<Utterance> Set;
    for (int U = 0; U != Opts.PerSpeaker; ++U) {
      Utterance Utt;
      Utt.TrueWord = static_cast<int>(R.uniformInt(0,
                                                   Opts.VocabularySize - 1));
      Utt.Audio = renderUtterance(
          D.Vocab.Templates[static_cast<size_t>(Utt.TrueWord)], P, R);
      Set.push_back(std::move(Utt));
    }
    D.Sets.push_back(std::move(Set));
  }
  return D;
}

Frames wbt::speech::frontEnd(const Frames &Audio, const SpeechParams &P) {
  if (Audio.empty())
    return {};

  // Silence trimming.
  size_t Begin = 0, End = Audio.size();
  while (Begin < End && frameEnergy(Audio[Begin]) < P.SilenceThresh)
    ++Begin;
  while (End > Begin && frameEnergy(Audio[End - 1]) < P.SilenceThresh)
    --End;
  if (Begin >= End) {
    Begin = 0;
    End = Audio.size();
  }

  // Triangular filter bank over [LowEdge, HighEdge].
  int NumFilters = std::clamp(P.NumFilters, 2, 12);
  double Lo = std::clamp(P.LowEdge, 0.0, static_cast<double>(NumBins - 2));
  double Hi = std::clamp(P.HighEdge, Lo + 1.0, static_cast<double>(NumBins - 1));
  std::vector<std::vector<double>> Filters(
      static_cast<size_t>(NumFilters), std::vector<double>(NumBins, 0.0));
  for (int F = 0; F != NumFilters; ++F) {
    double Center = Lo + (Hi - Lo) * (F + 0.5) / NumFilters;
    double Width = std::max(0.75, (Hi - Lo) / NumFilters);
    for (int B = 0; B != NumBins; ++B) {
      double D = std::fabs(B - Center) / Width;
      Filters[static_cast<size_t>(F)][static_cast<size_t>(B)] =
          std::max(0.0, 1.0 - D);
    }
  }

  Frames Feat;
  std::vector<double> PrevRaw(NumBins, 0.0);
  for (size_t T = Begin; T != End; ++T) {
    // Pre-emphasis across time, then noise-floor subtraction.
    std::vector<double> Raw(NumBins);
    for (int B = 0; B != NumBins; ++B) {
      double V = Audio[T][static_cast<size_t>(B)] -
                 P.Preemphasis * PrevRaw[static_cast<size_t>(B)];
      Raw[static_cast<size_t>(B)] = std::max(0.0, V - P.NoiseFloor);
    }
    PrevRaw = Audio[T];
    // Filter bank + log compression + lifter exponent.
    std::vector<double> F(static_cast<size_t>(NumFilters) + 1, 0.0);
    for (int K = 0; K != NumFilters; ++K) {
      double Acc = 0.0;
      for (int B = 0; B != NumBins; ++B)
        Acc += Filters[static_cast<size_t>(K)][static_cast<size_t>(B)] *
               Raw[static_cast<size_t>(B)];
      F[static_cast<size_t>(K)] =
          std::pow(std::log1p(Acc), P.Lifter);
    }
    F[static_cast<size_t>(NumFilters)] =
        P.EnergyWeight * std::log1p(frameEnergy(Audio[T]));
    Feat.push_back(std::move(F));
  }

  // Mean / variance normalization over the utterance.
  size_t Dim = Feat.empty() ? 0 : Feat[0].size();
  if (P.MeanNorm && !Feat.empty()) {
    std::vector<double> Mean(Dim, 0.0);
    for (const auto &F : Feat)
      for (size_t D = 0; D != Dim; ++D)
        Mean[D] += F[D];
    for (double &M : Mean)
      M /= static_cast<double>(Feat.size());
    for (auto &F : Feat)
      for (size_t D = 0; D != Dim; ++D)
        F[D] -= Mean[D];
  }
  if (P.VarNorm && Feat.size() > 1) {
    std::vector<double> Var(Dim, 0.0);
    for (const auto &F : Feat)
      for (size_t D = 0; D != Dim; ++D)
        Var[D] += F[D] * F[D];
    for (auto &F : Feat)
      for (size_t D = 0; D != Dim; ++D)
        F[D] /= std::sqrt(Var[D] / static_cast<double>(Feat.size())) + 1e-6;
  }

  // Delta features appended with DeltaWeight.
  if (P.DeltaWeight > 0 && Feat.size() > 2) {
    Frames WithDelta;
    for (size_t T = 0; T != Feat.size(); ++T) {
      std::vector<double> F = Feat[T];
      size_t Prev = T > 0 ? T - 1 : T;
      size_t Next = T + 1 < Feat.size() ? T + 1 : T;
      for (size_t D = 0; D != Dim; ++D)
        F.push_back(P.DeltaWeight * 0.5 * (Feat[Next][D] - Feat[Prev][D]));
      WithDelta.push_back(std::move(F));
    }
    return WithDelta;
  }
  return Feat;
}

double wbt::speech::dtwDistance(const Frames &A, const Frames &B, int Band,
                                double MatchExponent) {
  if (A.empty() || B.empty())
    return std::numeric_limits<double>::infinity();
  size_t N = A.size(), M = B.size();
  Band = std::max(Band, static_cast<int>(
                            std::llabs(static_cast<long long>(N) -
                                       static_cast<long long>(M))) +
                            1);
  const double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> Prev(M + 1, Inf), Cur(M + 1, Inf);
  Prev[0] = 0.0;
  size_t Dim = std::min(A[0].size(), B[0].size());
  for (size_t I = 1; I <= N; ++I) {
    std::fill(Cur.begin(), Cur.end(), Inf);
    size_t Center = I * M / N;
    size_t JLo = Center > static_cast<size_t>(Band) ? Center - Band : 1;
    size_t JHi = std::min(M, Center + static_cast<size_t>(Band));
    for (size_t J = JLo; J <= JHi; ++J) {
      double D = 0.0;
      for (size_t K = 0; K != Dim; ++K)
        D += std::fabs(A[I - 1][K] - B[J - 1][K]);
      D = std::pow(D / static_cast<double>(Dim), MatchExponent);
      double Best = std::min({Prev[J - 1], Prev[J], Cur[J - 1]});
      Cur[J] = D + Best;
    }
    std::swap(Prev, Cur);
  }
  double Total = Prev[M];
  return Total / static_cast<double>(N + M);
}

int wbt::speech::recognize(const Frames &Audio, const Vocabulary &Vocab,
                           const SpeechParams &P) {
  assert(!Vocab.Templates.empty() && "empty vocabulary");
  Frames Query = frontEnd(Audio, P);
  int Best = 0;
  double BestScore = std::numeric_limits<double>::infinity();
  for (size_t W = 0; W != Vocab.Templates.size(); ++W) {
    Frames Ref = frontEnd(Vocab.Templates[W], P);
    if (P.SmoothAlpha > 0 && Ref.size() > 1) {
      // Exponential smoothing of the template along time.
      for (size_t T = 1; T != Ref.size(); ++T)
        for (size_t D = 0; D != Ref[T].size(); ++D)
          Ref[T][D] = (1 - P.SmoothAlpha) * Ref[T][D] +
                      P.SmoothAlpha * Ref[T - 1][D];
    }
    double D = dtwDistance(Query, Ref, P.DtwBand, P.MatchExponent);
    D += P.LengthPenalty *
         std::fabs(static_cast<double>(Query.size()) -
                   static_cast<double>(Ref.size())) /
         static_cast<double>(std::max<size_t>(1, Ref.size()));
    D -= P.LangWeight * 0.05 * Vocab.Priors[W];
    if (D < BestScore) {
      BestScore = D;
      Best = static_cast<int>(W);
    }
  }
  return Best;
}

int wbt::speech::recognizeSet(const std::vector<Utterance> &Set,
                              const Vocabulary &Vocab,
                              const SpeechParams &P) {
  int Correct = 0;
  for (const Utterance &U : Set)
    Correct += recognize(U.Audio, Vocab, P) == U.TrueWord;
  return Correct;
}
