//===- speech/Recognizer.h - Toy isolated-word recognizer -------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stand-in for the paper's Sphinx benchmark: isolated-word
/// recognition over synthetic "audio". Words have spectral templates;
/// utterances are time-warped, speaker-shifted, noisy renditions with
/// leading/trailing silence. The recognizer mirrors Sphinx's staged
/// front-end/decoder structure and exposes sixteen tunables (the paper's
/// #P = 16): filter-bank edges and size, pre-emphasis, noise floor,
/// energy/delta weights, normalization switches, DTW band, language
/// weight, insertion/length penalties, and match shaping. Speaker
/// profiles shift the informative spectral bands, so the optimal
/// front-end is speaker-dependent — the effect behind paper Fig. 20.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_SPEECH_RECOGNIZER_H
#define WBT_SPEECH_RECOGNIZER_H

#include "support/Rng.h"

#include <vector>

namespace wbt {
namespace speech {

/// Raw audio: frames x spectral bins (values >= 0).
using Frames = std::vector<std::vector<double>>;

/// Number of raw spectral bins per frame.
constexpr int NumBins = 16;

/// The sixteen tunables (paper Table I, Speech Rec row). The defaults are
/// deliberately generic "factory" values — plausible, but matched to no
/// particular speaker — mirroring how stock Sphinx performs before tuning
/// (the paper's 2.7/5 no-tuning baseline).
struct SpeechParams {
  // Front end (stage 1).
  double Preemphasis = 0.7;  ///< temporal high-pass strength [0, 1)
  double LowEdge = 0.0;      ///< filter bank lower edge, bins [0, 15]
  double HighEdge = 15.0;    ///< filter bank upper edge, bins [0, 15]
  int NumFilters = 5;        ///< triangular filters [2, 12]
  double NoiseFloor = 0.0;   ///< subtractive denoise level [0, 0.3]
  double EnergyWeight = 0.5; ///< weight of the energy feature [0, 2]
  double DeltaWeight = 0.0;  ///< weight of delta features [0, 2]
  bool MeanNorm = false;     ///< cepstral-style mean normalization
  bool VarNorm = false;      ///< variance normalization
  double Lifter = 1.0;       ///< feature scaling exponent [0.5, 2]
  double SilenceThresh = 0.02; ///< leading/trailing trim level [0, 0.5]
  // Decoder (stage 2).
  int DtwBand = 4;            ///< Sakoe-Chiba band half-width [1, 20]
  double LangWeight = 0.0;     ///< weight of the word prior [0, 2]
  double LengthPenalty = 0.02; ///< per-frame length mismatch cost [0, 0.2]
  double SmoothAlpha = 0.0;   ///< template smoothing [0, 0.9]
  double MatchExponent = 1.0; ///< local distance exponent [0.5, 2]
};

/// The known vocabulary: per-word template audio and a prior.
struct Vocabulary {
  std::vector<Frames> Templates;
  std::vector<double> Priors; ///< unigram log-prior per word
};

/// Speaker rendition regime.
struct SpeakerProfile {
  int SpectralShift = 0;   ///< bins the speaker's energy is shifted by
  double Speed = 1.0;      ///< time-warp factor
  double NoiseSigma = 0.0; ///< additive noise level
  double Loudness = 1.0;
};

/// One labeled utterance.
struct Utterance {
  Frames Audio;
  int TrueWord = 0;
};

/// A ten-speaker dataset in the AN4 style: per speaker, \p PerSpeaker
/// labeled utterances.
struct SpeechDataset {
  Vocabulary Vocab;
  std::vector<SpeakerProfile> Speakers;
  /// [speaker][utterance].
  std::vector<std::vector<Utterance>> Sets;
};

struct SpeechDatasetOptions {
  int VocabularySize = 12;
  int NumSpeakers = 10;
  int PerSpeaker = 5;
  int MinFrames = 12;
  int MaxFrames = 22;
};

SpeechDataset makeSpeechDataset(uint64_t Seed,
                                const SpeechDatasetOptions &Opts =
                                    SpeechDatasetOptions());

/// Stage 1: front-end feature extraction.
Frames frontEnd(const Frames &Audio, const SpeechParams &P);

/// Stage 2: decodes \p Audio against \p Vocab; \returns the word index.
int recognize(const Frames &Audio, const Vocabulary &Vocab,
              const SpeechParams &P);

/// Words correctly recognized in \p Set (0..Set.size()).
int recognizeSet(const std::vector<Utterance> &Set, const Vocabulary &Vocab,
                 const SpeechParams &P);

/// DTW distance between two feature sequences with a Sakoe-Chiba band.
double dtwDistance(const Frames &A, const Frames &B, int Band,
                   double MatchExponent);

} // namespace speech
} // namespace wbt

#endif // WBT_SPEECH_RECOGNIZER_H
