//===- net/LeaseServer.h - Tuning-side lease-range server -------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning process' end of the distributed lease protocol. Remote
/// sampling agents connect over TCP, claim lease ranges out of the same
/// shared claim counter local pool workers race on, run the samples in
/// their own process, and stream results back in CommitBatch frames.
///
/// The server is deliberately *threadless*: it owns non-blocking-accept
/// sockets and a poll(2) pump that the runtime's aggregate() supervisor
/// loop calls in place of its plain timed wait. One poll covers the
/// listening socket, every agent connection, and the SharedControl
/// eventfd, so the supervisor still wakes instantly on local child
/// events while also reacting to remote frames — no locks, no threads,
/// no second supervisor.
///
/// All lease-state decisions stay in the runtime via callbacks: the
/// server only enforces the protocol invariants that make remote
/// execution exactly-once — per-connection *owned sets* (a commit for a
/// lease this connection does not own is stale and dropped) and the
/// region *generation* (frames from a previous region are dropped). A
/// disconnect — orderly, reset, or a SIGKILLed agent mid-frame — hands
/// every still-owned lease back to the runtime, which reuses the same
/// one-retry return machinery that covers crashed local workers.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_NET_LEASESERVER_H
#define WBT_NET_LEASESERVER_H

#include "net/Wire.h"
#include "obs/Trace.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace wbt {
namespace net {

/// Process-local protocol counters (the server only lives in the root
/// tuning process, so plain fields suffice).
struct NetStats {
  uint64_t Accepts = 0;        ///< connections accepted
  uint64_t Reconnects = 0;     ///< Hellos from an agent id seen before
  uint64_t RemoteLeases = 0;   ///< leases granted over the wire
  uint64_t LeasesReturned = 0; ///< owned leases returned on disconnect
  uint64_t Frames = 0;         ///< complete frames received
  uint64_t BytesIn = 0;        ///< raw bytes received from agents
  uint64_t BytesOut = 0;       ///< raw bytes sent to agents
  uint64_t TraceEvents = 0;    ///< trace records harvested from agents
  uint64_t RecvByType[NumFrameTypes] = {}; ///< frames received per type
};

class LeaseServer {
public:
  struct Callbacks {
    /// Claim up to \p Want leases for a remote agent (returned-first,
    /// then the bounded shared counter — the runtime's policy). The
    /// runtime must mark every returned index claimed before this
    /// returns.
    std::function<std::vector<int64_t>(uint32_t Want)> Claim;
    /// Apply one lease result. Only called while the sending connection
    /// owns the lease; the runtime still guards with its state CAS, so
    /// a lease the region timed out is dropped, not double-counted.
    std::function<void(const LeaseResult &R)> Commit;
    /// A disconnected agent's still-owned lease. The runtime decides:
    /// return it for another worker (true) or retire it (false).
    std::function<bool(int64_t Lease)> Return;
    /// Optional trace emit hook (NetAccept/NetClaim/NetDisconnect).
    std::function<void(obs::EventKind Kind, uint64_t A, uint64_t B)> Trace;
    /// Optional sink for agent trace records (TraceFrame payloads). The
    /// events arrive already rebased onto the server's CLOCK_MONOTONIC
    /// via the connection's Hello clock offset.
    std::function<void(std::vector<obs::TraceEvent> &&Evs)> TraceSink;
  };

  explicit LeaseServer(Callbacks CB) : CB(std::move(CB)) {}
  ~LeaseServer();

  LeaseServer(const LeaseServer &) = delete;
  LeaseServer &operator=(const LeaseServer &) = delete;

  /// Binds and listens on \p Addr with an ephemeral port. False + errno
  /// on failure (the runtime then runs local-only).
  bool listen(const std::string &Addr);
  uint16_t port() const { return Port; }

  /// Opens a lease window for agents: bumps the generation and pushes
  /// the region identity to every connected agent (late joiners get it
  /// at Hello).
  void openRegion(uint64_t TpId, uint64_t Base, uint32_t Regions, uint32_t N,
                  uint32_t Kind);
  /// Ends the window: agents are told, stale frames die on the
  /// generation check from here on. Leftover owned leases (none, unless
  /// the caller is tearing down early) are handed to Callbacks::Return.
  void closeRegion();
  bool regionOpen() const { return RegionIsOpen; }
  uint64_t generation() const { return Gen; }

  /// One supervisor wait: polls listen + connections + \p WakeFd for up
  /// to \p TimeoutMs, then accepts, reads, and dispatches whatever is
  /// ready. WakeFd (the SharedControl eventfd) only shortens the wait;
  /// the caller drains it.
  void pump(int TimeoutMs, int WakeFd = -1);

  /// Whether the open region still has remotely owned leases — the
  /// supervisor must keep pumping instead of settling the region.
  bool busy() const { return RegionIsOpen && ownedLeases() != 0; }
  size_t ownedLeases() const;
  bool ownsLease(int64_t Lease) const;
  size_t connections() const { return Conns.size(); }

  /// Deadline path: drops every connection, returning owned leases
  /// through Callbacks::Return (which, past the deadline, retires them
  /// as timed out). Agents reconnect on their own for the next region.
  void dropConnections();

  /// Best-effort Shutdown broadcast before the runtime SIGKILLs the
  /// agent processes.
  void broadcastShutdown();

  /// Closes every descriptor without running callbacks. For split
  /// children that inherited the fds but must not touch lease state.
  void closeAll();

  const NetStats &stats() const { return Stats; }

private:
  struct Conn {
    int Fd = -1;
    bool HaveHello = false;
    uint32_t AgentId = 0;
    FrameBuffer In;
    std::set<int64_t> Owned;
    /// Server clock minus agent clock, estimated at Hello receipt
    /// (upper-bounds the agent clock by one network flight). Added to
    /// every TraceFrame timestamp from this connection.
    int64_t ClockOffsetNs = 0;
    /// TraceFrame frames received on this connection. closeRegion()
    /// reads it to tell when an agent's close-time flush has landed.
    uint64_t TraceFrames = 0;
  };

  void acceptReady();
  /// One recv + frame dispatch round. False when the connection died.
  bool readConn(Conn &C);
  bool handleFrame(Conn &C, const std::vector<uint8_t> &Payload);
  /// False when the send failed and the caller must disconnect.
  bool sendFrame(Conn &C, const std::vector<uint8_t> &Frame);
  void disconnect(size_t Idx);
  void traceHook(obs::EventKind Kind, uint64_t A, uint64_t B);

  Callbacks CB;
  int ListenFd = -1;
  uint16_t Port = 0;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::set<uint32_t> SeenAgents;
  bool RegionIsOpen = false;
  uint64_t Gen = 0;
  RegionOpenMsg Cur;
  NetStats Stats;
};

} // namespace net
} // namespace wbt

#endif // WBT_NET_LEASESERVER_H
