//===- net/HostPort.h - host:port address parsing ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One strict `host:port` parser shared by everything that accepts a
/// listen/connect address (MetricsEndpoint, wbt-top, wbtuned's TCP
/// fallback). Replaces two copies of a lax strtol idiom that accepted
/// trailing junk ("9464x") and parsed an empty port as 0 — which then
/// silently bound an ephemeral port instead of failing. Header-only so
/// tools that do not link wbt_net can use it.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_NET_HOSTPORT_H
#define WBT_NET_HOSTPORT_H

#include <cstdint>
#include <cstdlib>
#include <string>

namespace wbt {
namespace net {

/// Splits \p Addr at the last ':' into \p Host and \p Port. Strict:
/// the host must be non-empty and the port must be all digits in
/// [0, 65535] — empty ("h:"), trailing junk ("h:9464x"), signs, and
/// out-of-range values are all rejected. Returns false (outputs
/// untouched) on any malformed input. Port 0 is allowed: listeners use
/// it to request an ephemeral port explicitly, never by accident.
inline bool parseHostPort(const std::string &Addr, std::string &Host,
                          uint16_t &Port) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Addr.size())
    return false;
  const char *P = Addr.c_str() + Colon + 1;
  // strtol accepts whitespace and signs; a port is digits only.
  for (const char *Q = P; *Q; ++Q)
    if (*Q < '0' || *Q > '9')
      return false;
  char *End = nullptr;
  long Num = std::strtol(P, &End, 10);
  if (*End != '\0' || Num < 0 || Num > 65535)
    return false;
  Host = Addr.substr(0, Colon);
  Port = static_cast<uint16_t>(Num);
  return true;
}

} // namespace net
} // namespace wbt

#endif // WBT_NET_HOSTPORT_H
