//===- net/LeaseServer.cpp - Tuning-side lease-range server ---------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/LeaseServer.h"

#include "inject/Sys.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace wbt;
using namespace wbt::net;

LeaseServer::~LeaseServer() { closeAll(); }

bool LeaseServer::listen(const std::string &Addr) {
  int Fd = sys::socketCreate();
  if (Fd < 0)
    return false;
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_port = 0; // ephemeral: the kernel picks, getsockname reports
  if (::inet_pton(AF_INET, Addr.c_str(), &Sa.sin_addr) != 1 ||
      ::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0 ||
      ::listen(Fd, 64) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  // Non-blocking accept: the pump polls first, but a connection that
  // vanishes between poll and accept must not wedge the supervisor.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  socklen_t Len = sizeof(Sa);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sa), &Len) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  ListenFd = Fd;
  Port = ntohs(Sa.sin_port);
  return true;
}

void LeaseServer::openRegion(uint64_t TpId, uint64_t Base, uint32_t Regions,
                             uint32_t N, uint32_t Kind) {
  ++Gen;
  RegionIsOpen = true;
  Cur.Gen = Gen;
  Cur.TpId = TpId;
  Cur.Base = Base;
  Cur.Regions = Regions;
  Cur.N = N;
  Cur.Kind = Kind;
  std::vector<uint8_t> Frame = encodeRegionOpen(Cur);
  for (size_t I = Conns.size(); I-- != 0;) {
    if (!Conns[I]->HaveHello)
      continue;
    if (!sendFrame(*Conns[I], Frame))
      disconnect(I);
  }
}

void LeaseServer::closeRegion() {
  if (!RegionIsOpen)
    return;
  RegionIsOpen = false;
  std::vector<uint8_t> Frame = encodeRegionClose(Gen);
  for (size_t I = Conns.size(); I-- != 0;) {
    Conn &C = *Conns[I];
    // A settled region has no owned leases left; an early teardown hands
    // any leftovers back to the runtime's retry machinery.
    for (int64_t L : C.Owned)
      if (CB.Return && CB.Return(L))
        ++Stats.LeasesReturned;
    C.Owned.clear();
    if (C.HaveHello && !sendFrame(C, Frame))
      disconnect(I);
  }
}

void LeaseServer::pump(int TimeoutMs, int WakeFd) {
  std::vector<pollfd> Pfds;
  Pfds.reserve(Conns.size() + 2);
  size_t ListenAt = static_cast<size_t>(-1), WakeAt = static_cast<size_t>(-1);
  if (ListenFd >= 0) {
    ListenAt = Pfds.size();
    Pfds.push_back({ListenFd, POLLIN, 0});
  }
  if (WakeFd >= 0) {
    WakeAt = Pfds.size();
    Pfds.push_back({WakeFd, POLLIN, 0});
  }
  size_t ConnBase = Pfds.size();
  for (const std::unique_ptr<Conn> &C : Conns)
    Pfds.push_back({C->Fd, POLLIN, 0});

  int R = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (R <= 0)
    return; // timeout or EINTR: the supervisor loop re-enters
  if (ListenAt != static_cast<size_t>(-1) && (Pfds[ListenAt].revents & POLLIN))
    acceptReady();
  (void)WakeAt; // the caller drains the eventfd after every pump
  // Walk connections back to front so disconnect()'s swap-and-pop never
  // disturbs an index we have yet to visit.
  for (size_t I = Conns.size(); I-- != 0;) {
    if (I >= Pfds.size() - ConnBase)
      continue; // accepted this round; no revents yet
    short Ev = Pfds[ConnBase + I].revents;
    if (!Ev)
      continue;
    if (!readConn(*Conns[I]))
      disconnect(I);
  }
}

void LeaseServer::acceptReady() {
  for (;;) {
    int Fd = sys::acceptConn(ListenFd);
    if (Fd < 0)
      return; // EAGAIN (drained) or an injected failure: try next pump
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    ++Stats.Accepts;
    Conns.push_back(std::move(C));
  }
}

bool LeaseServer::readConn(Conn &C) {
  uint8_t Buf[64 * 1024];
  ssize_t R = sys::recvBytes(C.Fd, Buf, sizeof(Buf));
  if (R == 0)
    return false; // orderly shutdown
  if (R < 0)
    return errno == EAGAIN; // real errors (or injected ones) drop the conn
  C.In.append(Buf, static_cast<size_t>(R));
  std::vector<uint8_t> Payload;
  while (C.In.next(Payload)) {
    ++Stats.Frames;
    if (!handleFrame(C, Payload))
      return false;
  }
  return !C.In.corrupt();
}

bool LeaseServer::handleFrame(Conn &C, const std::vector<uint8_t> &Payload) {
  switch (frameType(Payload)) {
  case FrameType::Hello: {
    uint32_t Id = 0;
    if (!decodeHello(Payload, Id))
      return false;
    C.HaveHello = true;
    C.AgentId = Id;
    if (!SeenAgents.insert(Id).second)
      ++Stats.Reconnects;
    traceHook(obs::EventKind::NetAccept, Id, Gen);
    // Late joiner / reconnect during an open region: push the identity
    // it missed so it can start claiming immediately.
    if (RegionIsOpen)
      return sendFrame(C, encodeRegionOpen(Cur));
    return true;
  }
  case FrameType::ClaimReq: {
    ClaimReqMsg M;
    if (!decodeClaimReq(Payload, M) || !C.HaveHello)
      return false;
    ClaimRespMsg Resp;
    Resp.Gen = M.Gen;
    if (!RegionIsOpen || M.Gen != Gen) {
      Resp.Closed = true; // stale generation: stop asking for this one
    } else if (CB.Claim) {
      Resp.Leases = CB.Claim(M.Want);
      for (int64_t L : Resp.Leases)
        C.Owned.insert(L);
      Stats.RemoteLeases += Resp.Leases.size();
      if (!Resp.Leases.empty())
        traceHook(obs::EventKind::NetClaim, C.AgentId, Resp.Leases.size());
    }
    return sendFrame(C, encodeClaimResp(Resp));
  }
  case FrameType::CommitBatch: {
    CommitBatchMsg M;
    if (!decodeCommitBatch(Payload, M) || !C.HaveHello)
      return false;
    if (M.Gen != Gen)
      return true; // a previous region's stragglers: drop whole frame
    for (const LeaseResult &L : M.Leases) {
      // Ownership is the at-most-once guard: a lease this connection no
      // longer owns was returned on a disconnect and belongs to someone
      // else now — its result must not apply twice.
      if (C.Owned.erase(L.Lease) == 0)
        continue;
      if (CB.Commit)
        CB.Commit(L);
    }
    return true;
  }
  case FrameType::Shutdown:
  case FrameType::RegionOpen:
  case FrameType::ClaimResp:
  case FrameType::RegionClose:
  case FrameType::None:
    return false; // not something an agent may send
  }
  return false;
}

bool LeaseServer::sendFrame(Conn &C, const std::vector<uint8_t> &Frame) {
  return sys::sendBytes(C.Fd, Frame.data(), Frame.size()) ==
         static_cast<ssize_t>(Frame.size());
}

void LeaseServer::disconnect(size_t Idx) {
  Conn &C = *Conns[Idx];
  uint64_t Returned = 0;
  for (int64_t L : C.Owned)
    if (CB.Return && CB.Return(L)) {
      ++Stats.LeasesReturned;
      ++Returned;
    }
  traceHook(obs::EventKind::NetDisconnect, C.AgentId, Returned);
  ::close(C.Fd);
  Conns[Idx] = std::move(Conns.back());
  Conns.pop_back();
}

void LeaseServer::dropConnections() {
  while (!Conns.empty())
    disconnect(Conns.size() - 1);
}

void LeaseServer::broadcastShutdown() {
  std::vector<uint8_t> Frame = encodeShutdown();
  for (size_t I = Conns.size(); I-- != 0;)
    if (!sendFrame(*Conns[I], Frame))
      disconnect(I);
}

void LeaseServer::closeAll() {
  for (const std::unique_ptr<Conn> &C : Conns)
    ::close(C->Fd);
  Conns.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

size_t LeaseServer::ownedLeases() const {
  size_t N = 0;
  for (const std::unique_ptr<Conn> &C : Conns)
    N += C->Owned.size();
  return N;
}

bool LeaseServer::ownsLease(int64_t Lease) const {
  for (const std::unique_ptr<Conn> &C : Conns)
    if (C->Owned.count(Lease))
      return true;
  return false;
}

void LeaseServer::traceHook(obs::EventKind Kind, uint64_t A, uint64_t B) {
  if (CB.Trace)
    CB.Trace(Kind, A, B);
}
