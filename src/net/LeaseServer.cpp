//===- net/LeaseServer.cpp - Tuning-side lease-range server ---------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/LeaseServer.h"

#include "inject/Sys.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

using namespace wbt;
using namespace wbt::net;

namespace {

/// Server-side CLOCK_MONOTONIC (clock-offset estimation at Hello).
uint64_t nowNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

} // namespace

LeaseServer::~LeaseServer() { closeAll(); }

bool LeaseServer::listen(const std::string &Addr) {
  int Fd = sys::socketCreate();
  if (Fd < 0)
    return false;
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_port = 0; // ephemeral: the kernel picks, getsockname reports
  if (::inet_pton(AF_INET, Addr.c_str(), &Sa.sin_addr) != 1 ||
      ::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0 ||
      ::listen(Fd, 64) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  // Non-blocking accept: the pump polls first, but a connection that
  // vanishes between poll and accept must not wedge the supervisor.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  socklen_t Len = sizeof(Sa);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sa), &Len) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  ListenFd = Fd;
  Port = ntohs(Sa.sin_port);
  return true;
}

void LeaseServer::openRegion(uint64_t TpId, uint64_t Base, uint32_t Regions,
                             uint32_t N, uint32_t Kind) {
  ++Gen;
  RegionIsOpen = true;
  Cur.Gen = Gen;
  Cur.TpId = TpId;
  Cur.Base = Base;
  Cur.Regions = Regions;
  Cur.N = N;
  Cur.Kind = Kind;
  std::vector<uint8_t> Frame = encodeRegionOpen(Cur);
  for (size_t I = Conns.size(); I-- != 0;) {
    if (!Conns[I]->HaveHello)
      continue;
    if (!sendFrame(*Conns[I], Frame))
      disconnect(I);
  }
}

void LeaseServer::closeRegion() {
  if (!RegionIsOpen)
    return;
  RegionIsOpen = false;
  std::vector<uint8_t> Frame = encodeRegionClose(Gen);
  for (size_t I = Conns.size(); I-- != 0;) {
    Conn &C = *Conns[I];
    // A settled region has no owned leases left; an early teardown hands
    // any leftovers back to the runtime's retry machinery.
    for (int64_t L : C.Owned)
      if (CB.Return && CB.Return(L))
        ++Stats.LeasesReturned;
    C.Owned.clear();
    if (C.HaveHello && !sendFrame(C, Frame))
      disconnect(I);
  }
  // Ack harvest: every live agent answers RegionClose with a TraceFrame
  // flush (possibly empty), so its buffered records — and any flush
  // still in flight behind its last CommitBatch — land before the
  // region settles and emits RegionEnd. The wait is bounded: a dead or
  // wedged agent can stall the close by at most CloseHarvestNs, and its
  // straggler records are picked up by later pumps instead.
  constexpr uint64_t CloseHarvestNs = 25'000'000; // 25 ms
  std::vector<std::pair<uint32_t, uint64_t>> Pending; // (agent, frames@close)
  for (const std::unique_ptr<Conn> &C : Conns)
    if (C->HaveHello)
      Pending.push_back({C->AgentId, C->TraceFrames});
  uint64_t Deadline = nowNs() + CloseHarvestNs;
  while (!Pending.empty() && nowNs() < Deadline) {
    pump(1);
    for (size_t I = Pending.size(); I-- != 0;) {
      const Conn *C = nullptr;
      for (const std::unique_ptr<Conn> &Cp : Conns)
        if (Cp->HaveHello && Cp->AgentId == Pending[I].first)
          C = Cp.get();
      // Gone (disconnect returned its leases) or flushed: done with it.
      if (!C || C->TraceFrames > Pending[I].second)
        Pending.erase(Pending.begin() + static_cast<long>(I));
    }
  }
}

void LeaseServer::pump(int TimeoutMs, int WakeFd) {
  std::vector<pollfd> Pfds;
  Pfds.reserve(Conns.size() + 2);
  size_t ListenAt = static_cast<size_t>(-1), WakeAt = static_cast<size_t>(-1);
  if (ListenFd >= 0) {
    ListenAt = Pfds.size();
    Pfds.push_back({ListenFd, POLLIN, 0});
  }
  if (WakeFd >= 0) {
    WakeAt = Pfds.size();
    Pfds.push_back({WakeFd, POLLIN, 0});
  }
  size_t ConnBase = Pfds.size();
  for (const std::unique_ptr<Conn> &C : Conns)
    Pfds.push_back({C->Fd, POLLIN, 0});

  int R = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (R <= 0)
    return; // timeout or EINTR: the supervisor loop re-enters
  if (ListenAt != static_cast<size_t>(-1) && (Pfds[ListenAt].revents & POLLIN))
    acceptReady();
  (void)WakeAt; // the caller drains the eventfd after every pump
  // Walk connections back to front so disconnect()'s swap-and-pop never
  // disturbs an index we have yet to visit.
  for (size_t I = Conns.size(); I-- != 0;) {
    if (I >= Pfds.size() - ConnBase)
      continue; // accepted this round; no revents yet
    short Ev = Pfds[ConnBase + I].revents;
    if (!Ev)
      continue;
    if (!readConn(*Conns[I]))
      disconnect(I);
  }
}

void LeaseServer::acceptReady() {
  for (;;) {
    int Fd = sys::acceptConn(ListenFd);
    if (Fd < 0)
      return; // EAGAIN (drained) or an injected failure: try next pump
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    ++Stats.Accepts;
    Conns.push_back(std::move(C));
  }
}

bool LeaseServer::readConn(Conn &C) {
  uint8_t Buf[64 * 1024];
  ssize_t R = sys::recvBytes(C.Fd, Buf, sizeof(Buf));
  if (R == 0)
    return false; // orderly shutdown
  if (R < 0)
    return errno == EAGAIN; // real errors (or injected ones) drop the conn
  Stats.BytesIn += static_cast<uint64_t>(R);
  C.In.append(Buf, static_cast<size_t>(R));
  std::vector<uint8_t> Payload;
  while (C.In.next(Payload)) {
    ++Stats.Frames;
    ++Stats.RecvByType[static_cast<int>(frameType(Payload))];
    if (!handleFrame(C, Payload))
      return false;
  }
  return !C.In.corrupt();
}

bool LeaseServer::handleFrame(Conn &C, const std::vector<uint8_t> &Payload) {
  switch (frameType(Payload)) {
  case FrameType::Hello: {
    uint32_t Id = 0;
    uint64_t AgentClockNs = 0;
    if (!decodeHello(Payload, Id, AgentClockNs))
      return false;
    C.HaveHello = true;
    C.AgentId = Id;
    // One-sided offset estimate: the agent stamped its clock at send, we
    // read ours at receipt, so the estimate is high by the network
    // flight time — good enough to land agent spans inside their
    // enclosing region span on a merged timeline.
    C.ClockOffsetNs =
        static_cast<int64_t>(nowNs()) - static_cast<int64_t>(AgentClockNs);
    if (!SeenAgents.insert(Id).second)
      ++Stats.Reconnects;
    traceHook(obs::EventKind::NetAccept, Id, Gen);
    // Late joiner / reconnect during an open region: push the identity
    // it missed so it can start claiming immediately.
    if (RegionIsOpen)
      return sendFrame(C, encodeRegionOpen(Cur));
    return true;
  }
  case FrameType::ClaimReq: {
    ClaimReqMsg M;
    if (!decodeClaimReq(Payload, M) || !C.HaveHello)
      return false;
    ClaimRespMsg Resp;
    Resp.Gen = M.Gen;
    if (!RegionIsOpen || M.Gen != Gen) {
      Resp.Closed = true; // stale generation: stop asking for this one
    } else if (CB.Claim) {
      Resp.Leases = CB.Claim(M.Want);
      for (int64_t L : Resp.Leases)
        C.Owned.insert(L);
      Stats.RemoteLeases += Resp.Leases.size();
      if (!Resp.Leases.empty())
        traceHook(obs::EventKind::NetClaim, C.AgentId, Resp.Leases.size());
    }
    return sendFrame(C, encodeClaimResp(Resp));
  }
  case FrameType::CommitBatch: {
    CommitBatchMsg M;
    if (!decodeCommitBatch(Payload, M) || !C.HaveHello)
      return false;
    if (M.Gen != Gen)
      return true; // a previous region's stragglers: drop whole frame
    for (const LeaseResult &L : M.Leases) {
      // Ownership is the at-most-once guard: a lease this connection no
      // longer owns was returned on a disconnect and belongs to someone
      // else now — its result must not apply twice.
      if (C.Owned.erase(L.Lease) == 0)
        continue;
      if (CB.Commit)
        CB.Commit(L);
    }
    return true;
  }
  case FrameType::TraceFrame: {
    std::vector<obs::TraceEvent> Evs;
    if (!decodeTraceFrame(Payload, Evs) || !C.HaveHello)
      return false;
    ++C.TraceFrames;
    Stats.TraceEvents += Evs.size();
    // Rebase each record from the agent's island-local monotonic clock
    // onto ours before the runtime merges it into the shared stream. The
    // Hello-time offset estimate is high by one network flight, so a
    // record emitted just before this frame could rebase past "now";
    // clamp to receipt time — nothing can happen after we receive it —
    // which keeps harvested agent spans inside the enclosing region span.
    uint64_t Now = nowNs();
    for (obs::TraceEvent &Ev : Evs) {
      uint64_t Ts = static_cast<uint64_t>(static_cast<int64_t>(Ev.TsNs) +
                                          C.ClockOffsetNs);
      Ev.TsNs = Ts < Now ? Ts : Now;
    }
    if (CB.TraceSink && !Evs.empty())
      CB.TraceSink(std::move(Evs));
    return true;
  }
  case FrameType::Shutdown:
  case FrameType::RegionOpen:
  case FrameType::ClaimResp:
  case FrameType::RegionClose:
  case FrameType::None:
    return false; // not something an agent may send
  }
  return false;
}

bool LeaseServer::sendFrame(Conn &C, const std::vector<uint8_t> &Frame) {
  bool Ok = sys::sendBytes(C.Fd, Frame.data(), Frame.size()) ==
            static_cast<ssize_t>(Frame.size());
  if (Ok)
    Stats.BytesOut += Frame.size();
  return Ok;
}

void LeaseServer::disconnect(size_t Idx) {
  Conn &C = *Conns[Idx];
  uint64_t Returned = 0;
  for (int64_t L : C.Owned)
    if (CB.Return && CB.Return(L)) {
      ++Stats.LeasesReturned;
      ++Returned;
    }
  traceHook(obs::EventKind::NetDisconnect, C.AgentId, Returned);
  ::close(C.Fd);
  Conns[Idx] = std::move(Conns.back());
  Conns.pop_back();
}

void LeaseServer::dropConnections() {
  while (!Conns.empty())
    disconnect(Conns.size() - 1);
}

void LeaseServer::broadcastShutdown() {
  std::vector<uint8_t> Frame = encodeShutdown();
  for (size_t I = Conns.size(); I-- != 0;)
    if (!sendFrame(*Conns[I], Frame))
      disconnect(I);
}

void LeaseServer::closeAll() {
  for (const std::unique_ptr<Conn> &C : Conns)
    ::close(C->Fd);
  Conns.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

size_t LeaseServer::ownedLeases() const {
  size_t N = 0;
  for (const std::unique_ptr<Conn> &C : Conns)
    N += C->Owned.size();
  return N;
}

bool LeaseServer::ownsLease(int64_t Lease) const {
  for (const std::unique_ptr<Conn> &C : Conns)
    if (C->Owned.count(Lease))
      return true;
  return false;
}

void LeaseServer::traceHook(obs::EventKind Kind, uint64_t A, uint64_t B) {
  if (CB.Trace)
    CB.Trace(Kind, A, B);
}
