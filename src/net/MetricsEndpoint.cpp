//===- net/MetricsEndpoint.cpp - Threadless scrape endpoint ---------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/MetricsEndpoint.h"

#include "inject/Sys.h"
#include "net/HostPort.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace wbt;
using namespace wbt::net;

namespace {

/// More than this many simultaneous scrapers is abuse, not monitoring;
/// extra accepts are refused so a connection flood cannot grow the
/// supervisor's poll set without bound.
constexpr size_t MaxScrapeConns = 16;

/// A request longer than this never finishes its headers here — drop it.
constexpr size_t MaxRequestBytes = 4096;

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

MetricsEndpoint::~MetricsEndpoint() { closeAll(); }

bool MetricsEndpoint::listen(const std::string &Addr) {
  std::string Host;
  uint16_t PortNum = 0;
  if (!parseHostPort(Addr, Host, PortNum)) {
    errno = EINVAL;
    return false;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(static_cast<uint16_t>(PortNum));
  if (::inet_pton(AF_INET, Host.c_str(), &Sa.sin_addr) != 1 ||
      ::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0 ||
      ::listen(Fd, 16) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  setNonBlocking(Fd);
  socklen_t Len = sizeof(Sa);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sa), &Len) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return false;
  }
  ListenFd = Fd;
  Port = ntohs(Sa.sin_port);
  return true;
}

void MetricsEndpoint::pump(int TimeoutMs) {
  if (ListenFd < 0)
    return;
  std::vector<pollfd> Pfds;
  Pfds.reserve(Conns.size() + 1);
  Pfds.push_back({ListenFd, POLLIN, 0});
  for (const std::unique_ptr<Conn> &C : Conns)
    Pfds.push_back(
        {C->Fd, static_cast<short>(C->Responding ? POLLOUT : POLLIN), 0});

  int R = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (R <= 0)
    return;
  if (Pfds[0].revents & POLLIN)
    acceptReady();
  // Back to front: the swap-and-pop removal never disturbs an index we
  // have yet to visit (new accepts sit past the polled range).
  for (size_t I = Conns.size(); I-- != 0;) {
    if (I + 1 >= Pfds.size())
      continue; // accepted this round
    short Ev = Pfds[I + 1].revents;
    if (!Ev)
      continue;
    if (!serviceConn(*Conns[I], Ev)) {
      ::close(Conns[I]->Fd);
      Conns[I] = std::move(Conns.back());
      Conns.pop_back();
    }
  }
}

void MetricsEndpoint::acceptReady() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN: drained
    if (Conns.size() >= MaxScrapeConns) {
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    Conns.push_back(std::move(C));
  }
}

bool MetricsEndpoint::serviceConn(Conn &C, short Revents) {
  if (Revents & (POLLERR | POLLNVAL))
    return false;
  if (!C.Responding) {
    char Buf[4096];
    ssize_t R = sys::recvOnce(C.Fd, Buf, sizeof(Buf));
    if (R == 0)
      return false; // peer closed before finishing a request
    if (R < 0)
      // An interrupted read is not a dead connection: retry on the
      // next pump, same as a would-block.
      return errno == EAGAIN || errno == EINTR;
    C.In.append(Buf, static_cast<size_t>(R));
    if (C.In.find("\r\n\r\n") == std::string::npos &&
        C.In.find("\n\n") == std::string::npos) {
      // Headers not complete yet; an oversized request never will be.
      return C.In.size() < MaxRequestBytes;
    }
    std::string Body = Render ? Render() : std::string();
    char Head[128];
    std::snprintf(Head, sizeof(Head),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  Body.size());
    C.Out = Head;
    C.Out += Body;
    C.OutOff = 0;
    C.Responding = true;
    // Fall through: most responses fit the socket buffer in one write.
  }
  while (C.OutOff < C.Out.size()) {
    ssize_t W = sys::sendOnce(C.Fd, C.Out.data() + C.OutOff,
                              C.Out.size() - C.OutOff);
    if (W < 0)
      // Keep the rest for the next pump; EINTR no more kills the
      // scrape than a full socket buffer does.
      return errno == EAGAIN || errno == EINTR;
    C.OutOff += static_cast<size_t>(W);
  }
  ++Scrapes;
  return false; // fully answered: Connection: close
}

void MetricsEndpoint::closeAll() {
  for (const std::unique_ptr<Conn> &C : Conns)
    ::close(C->Fd);
  Conns.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}
