//===- net/AgentChannel.h - Agent-side protocol channel ---------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling agent's end of the lease protocol: one blocking TCP
/// connection with connect backoff and Hello on (re)connect. An agent
/// that loses its connection — server restart, injected ECONNRESET, a
/// torn frame — just reconnects and re-Hellos: anything it had claimed
/// was already handed back to the pool by the server's disconnect path,
/// and anything it had half-sent is discarded by the server's frame
/// buffer, so a reconnecting agent always starts from a clean slate.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_NET_AGENTCHANNEL_H
#define WBT_NET_AGENTCHANNEL_H

#include "net/Wire.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wbt {
namespace net {

class AgentChannel {
public:
  AgentChannel(std::string Addr, uint16_t Port, uint32_t AgentId)
      : Addr(std::move(Addr)), Port(Port), AgentId(AgentId) {}
  ~AgentChannel();

  AgentChannel(const AgentChannel &) = delete;
  AgentChannel &operator=(const AgentChannel &) = delete;

  /// Connects (with ~20ms backoff between attempts) and sends Hello.
  /// No-op when already connected. False once the server looks gone for
  /// good (~2s of refused connections) — the agent should exit.
  bool ensureConnected();
  bool connected() const { return Fd >= 0; }
  void closeConn();

  /// Sends one complete frame. False (connection closed) on any error —
  /// including an injected short send, which really does leave half the
  /// frame on the wire for the server to discard.
  bool sendFrame(const std::vector<uint8_t> &Frame);

  /// Blocks until the next complete frame payload. False (connection
  /// closed) on disconnect or a corrupt stream.
  bool recvFrame(std::vector<uint8_t> &Out);

private:
  std::string Addr;
  uint16_t Port;
  uint32_t AgentId;
  int Fd = -1;
  FrameBuffer In;
};

} // namespace net
} // namespace wbt

#endif // WBT_NET_AGENTCHANNEL_H
