//===- net/Wire.h - Lease-protocol frame encoding ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frame layout of the distributed lease protocol. Every frame is a
/// 4-byte native-endian payload length followed by the payload, whose
/// first byte is the FrameType. Payloads are encoded with the same
/// ByteWriter/ByteReader pair the aggregation stores use, so remote
/// commit bytes are byte-for-byte what a local child would have written
/// into the shm slab — which is what keeps mixed local/remote regions
/// bitwise-compatible in aggregate results.
///
/// Conversation shape (one tuning process, N sampling agents):
///
///   agent  -> server   Hello{agent id, clock}    once per connection
///   server -> agent    RegionOpen{gen, identity} per region / batch
///   agent  -> server   ClaimReq{gen, want}       repeat
///   server -> agent    ClaimResp{gen, leases, closed}
///   agent  -> server   TraceFrame{events}        whenever the agent's
///                                                local ring has backlog
///   agent  -> server   CommitBatch{gen, results} one per claim granted
///   server -> agent    RegionClose{gen}          region settled
///   server -> agent    Shutdown{}                teardown
///
/// The Hello clock is the agent's CLOCK_MONOTONIC at send time; the
/// server subtracts it from its own clock on receipt to estimate the
/// per-connection offset it applies to TraceFrame timestamps (each
/// host's monotonic clock is island-local, see obs/Trace.h).
///
/// Every region-scoped frame carries the server's monotone *generation*;
/// a frame whose generation is not the current one is dropped, which is
/// what makes half-dead agents that wake up mid-teardown harmless.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_NET_WIRE_H
#define WBT_NET_WIRE_H

#include "obs/Trace.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wbt {
namespace net {

enum class FrameType : uint8_t {
  None = 0,
  Hello,
  RegionOpen,
  ClaimReq,
  ClaimResp,
  CommitBatch,
  RegionClose,
  Shutdown,
  TraceFrame,
};

/// One past the largest FrameType value — sizes per-type receive
/// counter arrays.
constexpr int NumFrameTypes =
    static_cast<int>(FrameType::TraceFrame) + 1;

/// A frame longer than this is a protocol error (a torn length prefix
/// read as garbage), not a big message — the peer is disconnected.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// How one remotely run lease ended (mirrors the terminal LeaseStates a
/// local worker can store).
enum class LeaseOutcome : uint8_t {
  Committed = 1, ///< the body reached @aggregate; Vars carry the commits
  Pruned = 2,    ///< the body was pruned (@check(false) or fell through)
};

/// Region identity pushed to agents: enough to rebuild the exact
/// per-lease RNG seeds and child indices a local worker would use.
/// Covers both plain pool regions (Regions == 1) and pipelined batches
/// (Regions == BatchCount over one flat lease table of Regions * N).
struct RegionOpenMsg {
  uint64_t Gen = 0;
  uint64_t TpId = 0;
  uint64_t Base = 0;    ///< first region ordinal of the window
  uint32_t Regions = 1; ///< regions sharing the flat lease table
  uint32_t N = 0;       ///< samples per region
  uint32_t Kind = 0;    ///< SamplingKind (stratified draws need it)
};

struct ClaimReqMsg {
  uint64_t Gen = 0;
  uint32_t Want = 0; ///< lease-range size the agent asks for
};

struct ClaimRespMsg {
  uint64_t Gen = 0;
  bool Closed = false; ///< region is gone; stop asking this generation
  std::vector<int64_t> Leases; ///< flat lease indices granted
};

/// One committed variable of one lease (name + encoded payload).
struct CommitVar {
  std::string Name;
  std::vector<uint8_t> Bytes;
};

/// Everything one lease produced.
struct LeaseResult {
  int64_t Lease = -1;
  LeaseOutcome Outcome = LeaseOutcome::Pruned;
  std::vector<CommitVar> Vars;
};

struct CommitBatchMsg {
  uint64_t Gen = 0;
  std::vector<LeaseResult> Leases;
};

//===----------------------------------------------------------------------===//
// Encoding. Each returns a complete frame (length prefix included).
//===----------------------------------------------------------------------===//

/// \p ClockNs is the sender's CLOCK_MONOTONIC at send time (clock-offset
/// estimation for trace correlation).
std::vector<uint8_t> encodeHello(uint32_t AgentId, uint64_t ClockNs);
std::vector<uint8_t> encodeRegionOpen(const RegionOpenMsg &M);
std::vector<uint8_t> encodeClaimReq(const ClaimReqMsg &M);
std::vector<uint8_t> encodeClaimResp(const ClaimRespMsg &M);
std::vector<uint8_t> encodeCommitBatch(const CommitBatchMsg &M);
std::vector<uint8_t> encodeRegionClose(uint64_t Gen);
std::vector<uint8_t> encodeShutdown();
/// Batches raw trace records from an agent's local ring. Timestamps are
/// the agent's clock; the server rebases them with the Hello offset.
std::vector<uint8_t> encodeTraceFrame(const std::vector<obs::TraceEvent> &Evs);

//===----------------------------------------------------------------------===//
// Decoding over one extracted payload (FrameBuffer::next output).
//===----------------------------------------------------------------------===//

/// First byte of \p Payload, or FrameType::None when empty/unknown.
FrameType frameType(const std::vector<uint8_t> &Payload);

bool decodeHello(const std::vector<uint8_t> &Payload, uint32_t &AgentId,
                 uint64_t &ClockNs);
bool decodeRegionOpen(const std::vector<uint8_t> &Payload, RegionOpenMsg &Out);
bool decodeClaimReq(const std::vector<uint8_t> &Payload, ClaimReqMsg &Out);
bool decodeClaimResp(const std::vector<uint8_t> &Payload, ClaimRespMsg &Out);
bool decodeCommitBatch(const std::vector<uint8_t> &Payload,
                       CommitBatchMsg &Out);
bool decodeRegionClose(const std::vector<uint8_t> &Payload, uint64_t &Gen);
bool decodeTraceFrame(const std::vector<uint8_t> &Payload,
                      std::vector<obs::TraceEvent> &Out);

/// Incremental frame splitter over a byte stream. Append whatever recv
/// returned; next() hands out complete payloads in order. A partial
/// frame (torn send, mid-read disconnect) simply never completes and is
/// discarded with the buffer.
class FrameBuffer {
public:
  void append(const uint8_t *Data, size_t Size);
  /// Moves the next complete payload into \p Out. False when no
  /// complete frame is buffered.
  bool next(std::vector<uint8_t> &Out);
  /// A length prefix exceeded MaxFrameBytes — the stream is garbage and
  /// the connection must be dropped.
  bool corrupt() const { return Corrupt; }
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  bool Corrupt = false;
};

} // namespace net
} // namespace wbt

#endif // WBT_NET_WIRE_H
