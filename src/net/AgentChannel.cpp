//===- net/AgentChannel.cpp - Agent-side protocol channel -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/AgentChannel.h"

#include "inject/Sys.h"

#include <unistd.h>

#include <cerrno>
#include <ctime>

using namespace wbt;
using namespace wbt::net;

namespace {

/// Agent-side CLOCK_MONOTONIC, stamped into Hello for the server's
/// clock-offset estimate.
uint64_t nowNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

} // namespace

AgentChannel::~AgentChannel() { closeConn(); }

void AgentChannel::closeConn() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  In = FrameBuffer(); // a reconnect must not resume a torn stream
}

bool AgentChannel::ensureConnected() {
  if (Fd >= 0)
    return true;
  // ~100 x 20ms covers a server briefly drowned in connection load; a
  // server that is really gone (teardown raced the Shutdown frame)
  // keeps refusing and the agent gives up and exits.
  for (int Attempt = 0; Attempt != 100; ++Attempt) {
    if (Attempt)
      ::usleep(20 * 1000);
    int S = sys::socketCreate();
    if (S < 0)
      continue;
    if (sys::connectTo(S, Addr, Port) != 0) {
      ::close(S);
      continue;
    }
    Fd = S;
    if (!sendFrame(encodeHello(AgentId, nowNs())))
      continue; // sendFrame closed Fd; retry from scratch
    return true;
  }
  return false;
}

bool AgentChannel::sendFrame(const std::vector<uint8_t> &Frame) {
  if (Fd < 0)
    return false;
  if (sys::sendBytes(Fd, Frame.data(), Frame.size()) !=
      static_cast<ssize_t>(Frame.size())) {
    closeConn();
    return false;
  }
  return true;
}

bool AgentChannel::recvFrame(std::vector<uint8_t> &Out) {
  while (Fd >= 0) {
    if (In.next(Out))
      return true;
    if (In.corrupt())
      break;
    uint8_t Buf[64 * 1024];
    ssize_t R = sys::recvBytes(Fd, Buf, sizeof(Buf));
    if (R <= 0)
      break;
    In.append(Buf, static_cast<size_t>(R));
  }
  closeConn();
  return false;
}
