//===- net/Wire.cpp - Lease-protocol frame encoding -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "support/ByteBuffer.h"

#include <cstring>

using namespace wbt;
using namespace wbt::net;

namespace {

/// Wraps a finished payload in the 4-byte length prefix.
std::vector<uint8_t> finishFrame(ByteWriter &Payload) {
  std::vector<uint8_t> Body = Payload.take();
  ByteWriter Frame;
  Frame.write<uint32_t>(static_cast<uint32_t>(Body.size()));
  std::vector<uint8_t> Out = Frame.take();
  Out.insert(Out.end(), Body.begin(), Body.end());
  return Out;
}

ByteWriter beginPayload(FrameType T) {
  ByteWriter W;
  W.write<uint8_t>(static_cast<uint8_t>(T));
  return W;
}

/// Positions \p Payload past the type byte, verifying it is \p T.
bool beginDecode(const std::vector<uint8_t> &Payload, FrameType T,
                 ByteReader &R) {
  if (frameType(Payload) != T)
    return false;
  R.read<uint8_t>(); // the type byte
  return R.ok();
}

} // namespace

std::vector<uint8_t> net::encodeHello(uint32_t AgentId, uint64_t ClockNs) {
  ByteWriter W = beginPayload(FrameType::Hello);
  W.write<uint32_t>(AgentId);
  W.write<uint64_t>(ClockNs);
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeRegionOpen(const RegionOpenMsg &M) {
  ByteWriter W = beginPayload(FrameType::RegionOpen);
  W.write<uint64_t>(M.Gen);
  W.write<uint64_t>(M.TpId);
  W.write<uint64_t>(M.Base);
  W.write<uint32_t>(M.Regions);
  W.write<uint32_t>(M.N);
  W.write<uint32_t>(M.Kind);
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeClaimReq(const ClaimReqMsg &M) {
  ByteWriter W = beginPayload(FrameType::ClaimReq);
  W.write<uint64_t>(M.Gen);
  W.write<uint32_t>(M.Want);
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeClaimResp(const ClaimRespMsg &M) {
  ByteWriter W = beginPayload(FrameType::ClaimResp);
  W.write<uint64_t>(M.Gen);
  W.write<uint8_t>(M.Closed ? 1 : 0);
  W.writeVector<int64_t>(M.Leases);
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeCommitBatch(const CommitBatchMsg &M) {
  ByteWriter W = beginPayload(FrameType::CommitBatch);
  W.write<uint64_t>(M.Gen);
  W.write<uint32_t>(static_cast<uint32_t>(M.Leases.size()));
  for (const LeaseResult &L : M.Leases) {
    W.write<int64_t>(L.Lease);
    W.write<uint8_t>(static_cast<uint8_t>(L.Outcome));
    W.write<uint32_t>(static_cast<uint32_t>(L.Vars.size()));
    for (const CommitVar &V : L.Vars) {
      W.writeString(V.Name);
      W.writeVector<uint8_t>(V.Bytes);
    }
  }
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeRegionClose(uint64_t Gen) {
  ByteWriter W = beginPayload(FrameType::RegionClose);
  W.write<uint64_t>(Gen);
  return finishFrame(W);
}

std::vector<uint8_t> net::encodeShutdown() {
  ByteWriter W = beginPayload(FrameType::Shutdown);
  return finishFrame(W);
}

std::vector<uint8_t>
net::encodeTraceFrame(const std::vector<obs::TraceEvent> &Evs) {
  ByteWriter W = beginPayload(FrameType::TraceFrame);
  W.write<uint32_t>(static_cast<uint32_t>(Evs.size()));
  for (const obs::TraceEvent &Ev : Evs) {
    W.write<uint64_t>(Ev.TsNs);
    W.write<int32_t>(Ev.Pid);
    W.write<uint16_t>(Ev.Kind);
    W.write<uint16_t>(Ev.Arg);
    W.write<uint64_t>(Ev.A);
    W.write<uint64_t>(Ev.B);
  }
  return finishFrame(W);
}

FrameType net::frameType(const std::vector<uint8_t> &Payload) {
  if (Payload.empty())
    return FrameType::None;
  uint8_t T = Payload[0];
  if (T == 0 || T > static_cast<uint8_t>(FrameType::TraceFrame))
    return FrameType::None;
  return static_cast<FrameType>(T);
}

bool net::decodeHello(const std::vector<uint8_t> &Payload, uint32_t &AgentId,
                      uint64_t &ClockNs) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::Hello, R))
    return false;
  AgentId = R.read<uint32_t>();
  ClockNs = R.read<uint64_t>();
  return R.ok();
}

bool net::decodeRegionOpen(const std::vector<uint8_t> &Payload,
                           RegionOpenMsg &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::RegionOpen, R))
    return false;
  Out.Gen = R.read<uint64_t>();
  Out.TpId = R.read<uint64_t>();
  Out.Base = R.read<uint64_t>();
  Out.Regions = R.read<uint32_t>();
  Out.N = R.read<uint32_t>();
  Out.Kind = R.read<uint32_t>();
  return R.ok() && Out.N != 0 && Out.Regions != 0;
}

bool net::decodeClaimReq(const std::vector<uint8_t> &Payload,
                         ClaimReqMsg &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::ClaimReq, R))
    return false;
  Out.Gen = R.read<uint64_t>();
  Out.Want = R.read<uint32_t>();
  return R.ok();
}

bool net::decodeClaimResp(const std::vector<uint8_t> &Payload,
                          ClaimRespMsg &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::ClaimResp, R))
    return false;
  Out.Gen = R.read<uint64_t>();
  Out.Closed = R.read<uint8_t>() != 0;
  Out.Leases = R.readVector<int64_t>();
  return R.ok();
}

bool net::decodeCommitBatch(const std::vector<uint8_t> &Payload,
                            CommitBatchMsg &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::CommitBatch, R))
    return false;
  Out.Gen = R.read<uint64_t>();
  uint32_t Count = R.read<uint32_t>();
  if (!R.ok())
    return false;
  Out.Leases.clear();
  Out.Leases.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    LeaseResult L;
    L.Lease = R.read<int64_t>();
    uint8_t Outc = R.read<uint8_t>();
    if (Outc != static_cast<uint8_t>(LeaseOutcome::Committed) &&
        Outc != static_cast<uint8_t>(LeaseOutcome::Pruned))
      return false;
    L.Outcome = static_cast<LeaseOutcome>(Outc);
    uint32_t Vars = R.read<uint32_t>();
    if (!R.ok())
      return false;
    for (uint32_t V = 0; V != Vars; ++V) {
      CommitVar CV;
      CV.Name = R.readString();
      CV.Bytes = R.readVector<uint8_t>();
      if (!R.ok())
        return false;
      L.Vars.push_back(std::move(CV));
    }
    Out.Leases.push_back(std::move(L));
  }
  return R.ok();
}

bool net::decodeRegionClose(const std::vector<uint8_t> &Payload,
                            uint64_t &Gen) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::RegionClose, R))
    return false;
  Gen = R.read<uint64_t>();
  return R.ok();
}

bool net::decodeTraceFrame(const std::vector<uint8_t> &Payload,
                           std::vector<obs::TraceEvent> &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, FrameType::TraceFrame, R))
    return false;
  uint32_t Count = R.read<uint32_t>();
  // Each event is 32 payload bytes — a count the payload cannot hold is
  // a corrupt frame, not a request to allocate.
  if (!R.ok() || size_t(Count) * 32 > Payload.size())
    return false;
  Out.clear();
  Out.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    obs::TraceEvent Ev;
    Ev.TsNs = R.read<uint64_t>();
    Ev.Pid = R.read<int32_t>();
    Ev.Kind = R.read<uint16_t>();
    Ev.Arg = R.read<uint16_t>();
    Ev.A = R.read<uint64_t>();
    Ev.B = R.read<uint64_t>();
    if (!R.ok())
      return false;
    Out.push_back(Ev);
  }
  return R.ok();
}

void FrameBuffer::append(const uint8_t *Data, size_t Size) {
  // Compact the consumed prefix before growing, so a long-lived
  // connection never accumulates its whole history.
  if (Pos && Pos == Buf.size()) {
    Buf.clear();
    Pos = 0;
  } else if (Pos > 4096 && Pos > Buf.size() / 2) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Size);
}

bool FrameBuffer::next(std::vector<uint8_t> &Out) {
  if (Corrupt || Buf.size() - Pos < sizeof(uint32_t))
    return false;
  uint32_t Len = 0;
  std::memcpy(&Len, Buf.data() + Pos, sizeof(Len));
  if (Len > MaxFrameBytes) {
    Corrupt = true;
    return false;
  }
  if (Buf.size() - Pos < sizeof(uint32_t) + Len)
    return false;
  const uint8_t *Body = Buf.data() + Pos + sizeof(uint32_t);
  Out.assign(Body, Body + Len);
  Pos += sizeof(uint32_t) + Len;
  return true;
}
