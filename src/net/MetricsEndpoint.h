//===- net/MetricsEndpoint.h - Threadless scrape endpoint -------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal HTTP/1.0 text-exposition endpoint with no thread of its
/// own: like net::LeaseServer, it owns non-blocking sockets and a
/// poll(2) pump that the runtime's supervisor sweep calls with a zero
/// timeout. Each pump accepts pending scrapers, reads whatever request
/// bytes arrived, and writes response bytes as far as the socket allows
/// — partial writes are buffered per connection and continued on the
/// next sweep, so a slow scraper can never stall the run.
///
/// The response body comes from a render callback (the seqlock metrics
/// page via obs::writeExpositionText), evaluated once per request at
/// response time. Every request path is answered 200 with the full
/// exposition; the endpoint is a scrape surface, not a router.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_NET_METRICSENDPOINT_H
#define WBT_NET_METRICSENDPOINT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wbt {
namespace net {

class MetricsEndpoint {
public:
  /// Produces the exposition body for one scrape.
  using RenderFn = std::function<std::string()>;

  explicit MetricsEndpoint(RenderFn Render) : Render(std::move(Render)) {}
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint &) = delete;
  MetricsEndpoint &operator=(const MetricsEndpoint &) = delete;

  /// Binds and listens on \p Addr ("ip:port"; port 0 lets the kernel
  /// pick — read it back with port()). False + errno on failure.
  bool listen(const std::string &Addr);
  uint16_t port() const { return Port; }

  /// One poll round: accept + read + respond whatever is ready, waiting
  /// at most \p TimeoutMs (0 = never block — the supervisor-sweep mode).
  void pump(int TimeoutMs = 0);

  /// Closes every descriptor (scrapers mid-response are cut off).
  void closeAll();

  /// Requests fully answered so far.
  uint64_t scrapes() const { return Scrapes; }
  size_t connections() const { return Conns.size(); }

private:
  struct Conn {
    int Fd = -1;
    std::string In;   ///< request bytes until the blank line
    std::string Out;  ///< response bytes not yet written
    size_t OutOff = 0;
    bool Responding = false;
  };

  void acceptReady();
  /// False when the connection is finished (responded or died).
  bool serviceConn(Conn &C, short Revents);

  RenderFn Render;
  int ListenFd = -1;
  uint16_t Port = 0;
  std::vector<std::unique_ptr<Conn>> Conns;
  uint64_t Scrapes = 0;
};

} // namespace net
} // namespace wbt

#endif // WBT_NET_METRICSENDPOINT_H
