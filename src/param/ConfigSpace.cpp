//===- param/ConfigSpace.cpp - Tunable parameter spaces -------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "param/ConfigSpace.h"

#include "support/Statistics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace wbt;

size_t ConfigSpace::addDouble(std::string Name, double Min, double Max,
                              double Default, bool LogScale) {
  assert(Min <= Max && "inverted parameter range");
  assert((!LogScale || Min > 0) && "log-scale parameters need Min > 0");
  ParamSpec S;
  S.Name = std::move(Name);
  S.Kind = ParamKind::Double;
  S.Min = Min;
  S.Max = Max;
  S.Default = wbt::clamp(Default, Min, Max);
  S.LogScale = LogScale;
  Specs.push_back(std::move(S));
  return Specs.size() - 1;
}

size_t ConfigSpace::addInt(std::string Name, int64_t Min, int64_t Max,
                           int64_t Default) {
  assert(Min <= Max && "inverted parameter range");
  ParamSpec S;
  S.Name = std::move(Name);
  S.Kind = ParamKind::Int;
  S.Min = static_cast<double>(Min);
  S.Max = static_cast<double>(Max);
  S.Default = wbt::clamp(static_cast<double>(Default), S.Min, S.Max);
  Specs.push_back(std::move(S));
  return Specs.size() - 1;
}

size_t ConfigSpace::addBool(std::string Name, bool Default) {
  ParamSpec S;
  S.Name = std::move(Name);
  S.Kind = ParamKind::Bool;
  S.Min = 0.0;
  S.Max = 1.0;
  S.Default = Default ? 1.0 : 0.0;
  Specs.push_back(std::move(S));
  return Specs.size() - 1;
}

size_t ConfigSpace::addEnum(std::string Name, std::vector<std::string> Choices,
                            size_t Default) {
  assert(!Choices.empty() && "enum parameter needs at least one choice");
  assert(Default < Choices.size() && "enum default out of range");
  ParamSpec S;
  S.Name = std::move(Name);
  S.Kind = ParamKind::Enum;
  S.Min = 0.0;
  S.Max = static_cast<double>(Choices.size() - 1);
  S.Default = static_cast<double>(Default);
  S.Choices = std::move(Choices);
  Specs.push_back(std::move(S));
  return Specs.size() - 1;
}

size_t ConfigSpace::indexOf(const std::string &Name) const {
  for (size_t I = 0, E = Specs.size(); I != E; ++I)
    if (Specs[I].Name == Name)
      return I;
  assert(false && "unknown parameter name");
  return ~size_t(0);
}

bool ConfigSpace::contains(const std::string &Name) const {
  for (const ParamSpec &S : Specs)
    if (S.Name == Name)
      return true;
  return false;
}

Config ConfigSpace::defaultConfig() const {
  Config C;
  C.Values.reserve(Specs.size());
  for (const ParamSpec &S : Specs)
    C.Values.push_back(S.Default);
  return C;
}

Config ConfigSpace::randomConfig(Rng &R) const {
  Config C;
  C.Values.reserve(Specs.size());
  for (const ParamSpec &S : Specs) {
    switch (S.Kind) {
    case ParamKind::Double:
      C.Values.push_back(S.LogScale ? R.logUniform(S.Min, S.Max)
                                    : R.uniform(S.Min, S.Max));
      break;
    case ParamKind::Int:
    case ParamKind::Enum:
      C.Values.push_back(static_cast<double>(R.uniformInt(
          static_cast<int64_t>(S.Min), static_cast<int64_t>(S.Max))));
      break;
    case ParamKind::Bool:
      C.Values.push_back(R.flip() ? 1.0 : 0.0);
      break;
    }
  }
  return C;
}

Config ConfigSpace::mutate(const Config &C, Rng &R, double Scale,
                           double MutateProb) const {
  assert(C.Values.size() == Specs.size() && "config/space size mismatch");
  Config Out = C;
  for (size_t I = 0, E = Specs.size(); I != E; ++I) {
    if (!R.flip(MutateProb))
      continue;
    const ParamSpec &S = Specs[I];
    switch (S.Kind) {
    case ParamKind::Double: {
      if (S.LogScale) {
        double Span = std::log(S.Max) - std::log(S.Min);
        double L = std::log(Out.Values[I]) + R.gaussian(0.0, Scale * Span);
        Out.Values[I] = std::exp(L);
      } else {
        Out.Values[I] += R.gaussian(0.0, Scale * (S.Max - S.Min));
      }
      break;
    }
    case ParamKind::Int: {
      double Span = S.Max - S.Min;
      double Step = std::max(1.0, Scale * Span);
      Out.Values[I] += std::round(R.gaussian(0.0, Step));
      break;
    }
    case ParamKind::Bool:
      Out.Values[I] = Out.Values[I] >= 0.5 ? 0.0 : 1.0;
      break;
    case ParamKind::Enum:
      Out.Values[I] = static_cast<double>(R.uniformInt(
          static_cast<int64_t>(S.Min), static_cast<int64_t>(S.Max)));
      break;
    }
  }
  clamp(Out);
  return Out;
}

Config ConfigSpace::crossover(const Config &A, const Config &B, Rng &R) const {
  assert(A.Values.size() == Specs.size() && B.Values.size() == Specs.size() &&
         "config/space size mismatch");
  Config Out;
  Out.Values.reserve(Specs.size());
  for (size_t I = 0, E = Specs.size(); I != E; ++I)
    Out.Values.push_back(R.flip() ? A.Values[I] : B.Values[I]);
  return Out;
}

void ConfigSpace::clamp(Config &C) const {
  assert(C.Values.size() == Specs.size() && "config/space size mismatch");
  for (size_t I = 0, E = Specs.size(); I != E; ++I) {
    const ParamSpec &S = Specs[I];
    C.Values[I] = wbt::clamp(C.Values[I], S.Min, S.Max);
    if (S.Kind != ParamKind::Double)
      C.Values[I] = std::round(C.Values[I]);
  }
}

std::string ConfigSpace::describe(const Config &C) const {
  std::string Out;
  char Buf[128];
  for (size_t I = 0, E = Specs.size(); I != E; ++I) {
    const ParamSpec &S = Specs[I];
    if (I)
      Out += " ";
    switch (S.Kind) {
    case ParamKind::Double:
      std::snprintf(Buf, sizeof(Buf), "%s=%.6g", S.Name.c_str(), C.Values[I]);
      break;
    case ParamKind::Int:
      std::snprintf(Buf, sizeof(Buf), "%s=%lld", S.Name.c_str(),
                    static_cast<long long>(C.asInt(I)));
      break;
    case ParamKind::Bool:
      std::snprintf(Buf, sizeof(Buf), "%s=%s", S.Name.c_str(),
                    C.asBool(I) ? "true" : "false");
      break;
    case ParamKind::Enum:
      std::snprintf(Buf, sizeof(Buf), "%s=%s", S.Name.c_str(),
                    S.Choices[C.asEnum(I)].c_str());
      break;
    }
    Out += Buf;
  }
  return Out;
}
