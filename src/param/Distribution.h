//===- param/Distribution.h - Value distributions for @sample ---*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distribution argument of the paper's @sample(x, cbDist) primitive:
/// where a sampled variable's candidate values come from. A Distribution is
/// a small value type so it can be built inline at the sample site, e.g.
/// \code
///   double Sigma = Ctx.sample("sigma", wbt::Distribution::uniform(0.1, 2));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PARAM_DISTRIBUTION_H
#define WBT_PARAM_DISTRIBUTION_H

#include "support/Rng.h"

#include <vector>

namespace wbt {

/// A one-dimensional sampling distribution for a tuned variable.
class Distribution {
public:
  enum class Kind { Uniform, LogUniform, UniformInt, Gaussian, Choice };

  /// Uniform double in [Lo, Hi).
  static Distribution uniform(double Lo, double Hi);
  /// Log-uniform double in [Lo, Hi); bounds must be positive.
  static Distribution logUniform(double Lo, double Hi);
  /// Uniform integer in [Lo, Hi] inclusive.
  static Distribution uniformInt(int64_t Lo, int64_t Hi);
  /// Normal with the given mean/stddev, truncated to [Lo, Hi].
  static Distribution gaussian(double Mean, double Stddev, double Lo,
                               double Hi);
  /// Uniform pick from an explicit candidate list.
  static Distribution choice(std::vector<double> Values);

  /// Draws one value.
  double sample(Rng &R) const;

  /// The value a *tuning* process observes: per the paper's semantics
  /// @sample is a no-op outside sampling mode, so tuning processes proceed
  /// with a deterministic representative value (midpoint / mean / first
  /// choice).
  double defaultValue() const;

  /// Gaussian random-walk proposal around \p Current, used by the MCMC
  /// sampling strategy; stays inside the distribution's support.
  double perturb(double Current, Rng &R, double Scale = 0.15) const;

  /// Maps \p U in [0, 1] to the distribution's U-quantile. Used by
  /// stratified sampling (each run owns one stratum). For Choice, picks
  /// the floor(U * N)-th candidate.
  double quantile(double U) const;

  Kind kind() const { return TheKind; }
  double lo() const { return Lo; }
  double hi() const { return Hi; }

private:
  Distribution() = default;

  Kind TheKind = Kind::Uniform;
  double Lo = 0.0;
  double Hi = 1.0;
  double Mean = 0.0;
  double Stddev = 1.0;
  std::vector<double> Values;
};

} // namespace wbt

#endif // WBT_PARAM_DISTRIBUTION_H
