//===- param/Distribution.cpp - Value distributions for @sample ----------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "param/Distribution.h"

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace wbt;

Distribution Distribution::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "inverted uniform range");
  Distribution D;
  D.TheKind = Kind::Uniform;
  D.Lo = Lo;
  D.Hi = Hi;
  return D;
}

Distribution Distribution::logUniform(double Lo, double Hi) {
  assert(Lo > 0 && Lo <= Hi && "log-uniform needs 0 < Lo <= Hi");
  Distribution D;
  D.TheKind = Kind::LogUniform;
  D.Lo = Lo;
  D.Hi = Hi;
  return D;
}

Distribution Distribution::uniformInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "inverted integer range");
  Distribution D;
  D.TheKind = Kind::UniformInt;
  D.Lo = static_cast<double>(Lo);
  D.Hi = static_cast<double>(Hi);
  return D;
}

Distribution Distribution::gaussian(double Mean, double Stddev, double Lo,
                                    double Hi) {
  assert(Lo <= Hi && "inverted truncation range");
  Distribution D;
  D.TheKind = Kind::Gaussian;
  D.Mean = Mean;
  D.Stddev = Stddev;
  D.Lo = Lo;
  D.Hi = Hi;
  return D;
}

Distribution Distribution::choice(std::vector<double> Values) {
  assert(!Values.empty() && "choice distribution needs candidates");
  Distribution D;
  D.TheKind = Kind::Choice;
  D.Values = std::move(Values);
  D.Lo = D.Values.front();
  D.Hi = D.Values.front();
  for (double V : D.Values) {
    D.Lo = std::min(D.Lo, V);
    D.Hi = std::max(D.Hi, V);
  }
  return D;
}

double Distribution::sample(Rng &R) const {
  switch (TheKind) {
  case Kind::Uniform:
    return R.uniform(Lo, Hi);
  case Kind::LogUniform:
    return R.logUniform(Lo, Hi);
  case Kind::UniformInt:
    return static_cast<double>(R.uniformInt(static_cast<int64_t>(Lo),
                                            static_cast<int64_t>(Hi)));
  case Kind::Gaussian:
    return clamp(R.gaussian(Mean, Stddev), Lo, Hi);
  case Kind::Choice:
    return R.pick(Values);
  }
  return Lo;
}

double Distribution::defaultValue() const {
  switch (TheKind) {
  case Kind::Uniform:
    return 0.5 * (Lo + Hi);
  case Kind::LogUniform:
    return std::exp(0.5 * (std::log(Lo) + std::log(Hi)));
  case Kind::UniformInt:
    return std::round(0.5 * (Lo + Hi));
  case Kind::Gaussian:
    return clamp(Mean, Lo, Hi);
  case Kind::Choice:
    return Values.front();
  }
  return Lo;
}

namespace {

/// Acklam's rational approximation of the inverse normal CDF; relative
/// error below 1.15e-9 over (0, 1).
double probit(double P) {
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425, PHigh = 1 - PLow;
  P = clamp(P, 1e-12, 1 - 1e-12);
  if (P < PLow) {
    double Q = std::sqrt(-2 * std::log(P));
    return (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
            C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1);
  }
  if (P > PHigh) {
    double Q = std::sqrt(-2 * std::log(1 - P));
    return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
             C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1);
  }
  double Q = P - 0.5, R2 = Q * Q;
  return (((((A[0] * R2 + A[1]) * R2 + A[2]) * R2 + A[3]) * R2 + A[4]) * R2 +
          A[5]) *
         Q /
         (((((B[0] * R2 + B[1]) * R2 + B[2]) * R2 + B[3]) * R2 + B[4]) * R2 +
          1);
}

} // namespace

double Distribution::quantile(double U) const {
  U = clamp(U, 0.0, 1.0);
  switch (TheKind) {
  case Kind::Uniform:
    return Lo + U * (Hi - Lo);
  case Kind::LogUniform:
    return std::exp(std::log(Lo) + U * (std::log(Hi) - std::log(Lo)));
  case Kind::UniformInt:
    return clamp(std::floor(Lo + U * (Hi - Lo + 1.0)), Lo, Hi);
  case Kind::Gaussian:
    return clamp(Mean + Stddev * probit(U), Lo, Hi);
  case Kind::Choice: {
    size_t I = std::min(Values.size() - 1,
                        static_cast<size_t>(U * Values.size()));
    return Values[I];
  }
  }
  return Lo;
}

double Distribution::perturb(double Current, Rng &R, double Scale) const {
  switch (TheKind) {
  case Kind::Uniform:
  case Kind::Gaussian: {
    double Span = Hi - Lo;
    return clamp(Current + R.gaussian(0.0, Scale * Span), Lo, Hi);
  }
  case Kind::LogUniform: {
    double Span = std::log(Hi) - std::log(Lo);
    double L = std::log(clamp(Current, Lo, Hi)) + R.gaussian(0.0, Scale * Span);
    return clamp(std::exp(L), Lo, Hi);
  }
  case Kind::UniformInt: {
    double Span = Hi - Lo;
    double Step = std::max(1.0, Scale * Span);
    return clamp(std::round(Current + R.gaussian(0.0, Step)), Lo, Hi);
  }
  case Kind::Choice:
    // Neighborhood structure is meaningless for unordered candidates;
    // resample uniformly.
    return R.pick(Values);
  }
  return Current;
}
