//===- param/ConfigSpace.h - Tunable parameter spaces -----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed descriptions of tunable parameters and concrete configurations.
/// Both the white-box engine (per-stage parameter subsets) and the
/// black-box baseline (the full cross-product space) draw, mutate and
/// cross configurations through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_PARAM_CONFIGSPACE_H
#define WBT_PARAM_CONFIGSPACE_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wbt {

/// The representable parameter categories.
enum class ParamKind { Double, Int, Bool, Enum };

/// Description of a single tunable parameter. Every kind is carried in a
/// double: integers are rounded, booleans are 0/1, enums are the index
/// into \c Choices.
struct ParamSpec {
  std::string Name;
  ParamKind Kind = ParamKind::Double;
  double Min = 0.0;
  double Max = 1.0;
  double Default = 0.0;
  /// Draw and mutate on a log scale (Min must be > 0).
  bool LogScale = false;
  /// Labels for ParamKind::Enum.
  std::vector<std::string> Choices;
};

/// A point in a ConfigSpace: one double per parameter, in spec order.
struct Config {
  std::vector<double> Values;

  double asDouble(size_t I) const { return Values[I]; }
  int64_t asInt(size_t I) const {
    return static_cast<int64_t>(Values[I] + (Values[I] >= 0 ? 0.5 : -0.5));
  }
  bool asBool(size_t I) const { return Values[I] >= 0.5; }
  size_t asEnum(size_t I) const { return static_cast<size_t>(asInt(I)); }

  bool operator==(const Config &O) const { return Values == O.Values; }
};

/// An ordered collection of parameter specs with draw/mutate/cross
/// operations over concrete configurations.
class ConfigSpace {
public:
  /// Adds a continuous parameter; \returns its index.
  size_t addDouble(std::string Name, double Min, double Max, double Default,
                   bool LogScale = false);

  /// Adds an integer parameter; \returns its index.
  size_t addInt(std::string Name, int64_t Min, int64_t Max, int64_t Default);

  /// Adds a boolean parameter; \returns its index.
  size_t addBool(std::string Name, bool Default);

  /// Adds an enumerated parameter; \returns its index.
  size_t addEnum(std::string Name, std::vector<std::string> Choices,
                 size_t Default);

  size_t size() const { return Specs.size(); }
  bool empty() const { return Specs.empty(); }
  const ParamSpec &spec(size_t I) const { return Specs[I]; }
  const std::vector<ParamSpec> &specs() const { return Specs; }

  /// Index of the parameter named \p Name; asserts if absent.
  size_t indexOf(const std::string &Name) const;

  /// True if a parameter named \p Name exists.
  bool contains(const std::string &Name) const;

  /// The all-defaults configuration.
  Config defaultConfig() const;

  /// Independent uniform (or log-uniform) draw of every parameter.
  Config randomConfig(Rng &R) const;

  /// Gaussian-perturbs each parameter with probability \p MutateProb;
  /// \p Scale is the stddev as a fraction of the parameter range.
  Config mutate(const Config &C, Rng &R, double Scale = 0.1,
                double MutateProb = 1.0) const;

  /// Uniform crossover: each parameter picked from A or B with equal
  /// probability.
  Config crossover(const Config &A, const Config &B, Rng &R) const;

  /// Clamps every value into its legal range (and snaps discrete kinds).
  void clamp(Config &C) const;

  /// Renders "name=value" pairs for logs and reports.
  std::string describe(const Config &C) const;

private:
  std::vector<ParamSpec> Specs;
};

} // namespace wbt

#endif // WBT_PARAM_CONFIGSPACE_H
