//===- bio/Sequences.h - DNA sequence evolution ------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truthed DNA data: sequences evolved down a random phylogeny
/// with a Kimura-style transition/transversion bias, invariant sites and
/// gamma-like rate variation. The generator parameters vary per dataset,
/// so the distance-correction knobs the Phylip benchmark tunes (ease,
/// invarfrac, cvi) have input-dependent optima. Ground truth (the true
/// tree and its pairwise path distances) is kept for measurement only.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BIO_SEQUENCES_H
#define WBT_BIO_SEQUENCES_H

#include "support/Rng.h"

#include <string>
#include <vector>

namespace wbt {
namespace bio {

/// A DNA sequence over {0, 1, 2, 3} = {A, C, G, T}. A and G are purines,
/// so 0<->2 and 1<->3 changes are transitions, everything else a
/// transversion.
using Sequence = std::vector<uint8_t>;

/// True if base substitution \p From -> \p To is a transition.
bool isTransition(uint8_t From, uint8_t To);

/// A binary phylogeny with branch lengths; leaves are 0..NumLeaves-1.
struct Phylogeny {
  struct Node {
    int Left = -1;
    int Right = -1;
    double LeftLen = 0.0;
    double RightLen = 0.0;
  };
  int NumLeaves = 0;
  /// Internal nodes, the last one is the root. Child indices < NumLeaves
  /// refer to leaves, otherwise to Nodes[index - NumLeaves].
  std::vector<Node> Nodes;

  /// Pairwise path distance between leaves.
  std::vector<std::vector<double>> leafDistances() const;
};

/// An evolved dataset with its ground truth.
struct SequenceDataset {
  std::vector<Sequence> Leaves;
  Phylogeny TrueTree;
  std::vector<std::vector<double>> TrueDistances;
  /// Generator regime the tuner must adapt to.
  double Kappa = 2.0;      ///< transition/transversion rate ratio
  double InvariantFrac = 0; ///< fraction of never-changing sites
  double RateCV = 0.5;      ///< coefficient of variation of site rates
};

struct SequenceDatasetOptions {
  int NumLeaves = 10;
  int SequenceLength = 300;
  double BranchLo = 0.02;
  double BranchHi = 0.25;
  double KappaLo = 1.5;
  double KappaHi = 8.0;
  double InvariantLo = 0.0;
  double InvariantHi = 0.35;
  double RateCVLo = 0.2;
  double RateCVHi = 1.0;
};

/// Dataset number \p Index of the family identified by \p Seed.
SequenceDataset makeSequenceDataset(uint64_t Seed, int Index,
                                    const SequenceDatasetOptions &Opts =
                                        SequenceDatasetOptions());

/// Uniform random sequence of the given length.
Sequence randomSequence(int Length, Rng &R);

/// Point-mutates \p In: each base substituted with probability \p Rate
/// (uniform target base).
Sequence mutate(const Sequence &In, double Rate, Rng &R);

} // namespace bio
} // namespace wbt

#endif // WBT_BIO_SEQUENCES_H
