//===- bio/Phylip.h - Staged phylogeny inference ----------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Phylip-style pipeline of paper Fig. 14 with the same tunable
/// stages:
///
///   Stage 1  transition-probability model           — ease
///   Stage 3  distance matrix from sequence pairs    — invarfrac, cvi
///   Stage 5  least-squares tree fit                 — power
///
/// `ease` interpolates the distance correction between Jukes-Cantor
/// (transition-blind) and Kimura two-parameter (full transition /
/// transversion separation); `invarfrac` removes an assumed invariant
/// site fraction; `cvi` applies a gamma rate-variation correction with
/// coefficient of variation cvi. Stage 5 builds a neighbor-joining
/// topology and refines branch lengths by Fitch-Margoliash weighted least
/// squares with weights 1 / d^power; its default score (the one WBTuner
/// aggregates on) is the unweighted sum of squares.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BIO_PHYLIP_H
#define WBT_BIO_PHYLIP_H

#include "bio/Sequences.h"

namespace wbt {
namespace bio {

/// Pairwise site-difference summary of two sequences.
struct PairCounts {
  double TransitionFrac = 0.0;   ///< P of K2P
  double TransversionFrac = 0.0; ///< Q of K2P
  double DiffFrac = 0.0;         ///< P + Q
};

PairCounts countDifferences(const Sequence &A, const Sequence &B);

/// Stage 1+3: the corrected evolutionary distance for one pair.
/// \p Ease in [0, 1], \p InvarFrac in [0, 1), \p Cvi > 0.
double correctedDistance(const PairCounts &C, double Ease, double InvarFrac,
                         double Cvi);

/// Full distance matrix over \p Leaves.
std::vector<std::vector<double>>
distanceMatrix(const std::vector<Sequence> &Leaves, double Ease,
               double InvarFrac, double Cvi);

/// Stage 5 output: fitted tree distances and the fit score.
struct TreeFit {
  Phylogeny Tree;
  /// Leaf-to-leaf path distances of the fitted tree.
  std::vector<std::vector<double>> FittedDistances;
  /// Unweighted sum of squared residuals (Phylip's default score; lower
  /// is better). This is the paper's aggregation score for stage 5.
  double SumOfSquares = 0.0;
};

/// Neighbor joining + weighted least-squares branch refinement.
TreeFit fitTree(const std::vector<std::vector<double>> &Distances,
                double Power);

/// Quality against ground truth (measurement only): RMSE between fitted
/// and true pairwise distances.
double treeDistanceRmse(const std::vector<std::vector<double>> &Fitted,
                        const std::vector<std::vector<double>> &Truth);

} // namespace bio
} // namespace wbt

#endif // WBT_BIO_PHYLIP_H
