//===- bio/Fasta.h - FASTA-style sequence search ----------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FASTA-style similarity search (Pearson & Lipman, the paper's [57]):
/// stage 1 finds high-scoring diagonals through ktup word hits, stage 2
/// runs banded Smith-Waterman around the best diagonal. Tunables are the
/// stage-2 gap penalties (the paper's two parameters) plus the stage-1
/// ktup/band knobs as extensions.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BIO_FASTA_H
#define WBT_BIO_FASTA_H

#include "bio/Sequences.h"

namespace wbt {
namespace bio {

struct FastaParams {
  int Ktup = 4;
  int Band = 12;
  double Match = 2.0;
  double Mismatch = -1.0;
  double GapOpen = -4.0;
  double GapExtend = -1.0;
};

/// Stage 1: the diagonal (offset = query pos - subject pos) with the most
/// ktup word hits; \returns the hit count through \p Hits.
int bestDiagonal(const Sequence &Query, const Sequence &Subject, int Ktup,
                 long &Hits);

/// Stage 2: banded Smith-Waterman local alignment score around diagonal
/// \p Diagonal with half-width \p Band.
double bandedAlign(const Sequence &Query, const Sequence &Subject,
                   int Diagonal, const FastaParams &P);

/// Full pipeline: per-subject similarity score.
double fastaScore(const Sequence &Query, const Sequence &Subject,
                  const FastaParams &P);

/// A search problem with planted homologs.
struct FastaDataset {
  Sequence Query;
  std::vector<Sequence> Database;
  /// True for subjects that contain a mutated copy of a query region.
  std::vector<uint8_t> IsHomolog;
  /// Mutation rate used for the planted copies.
  double MutationRate = 0.1;
};

struct FastaDatasetOptions {
  int QueryLength = 160;
  int SubjectLength = 240;
  int DatabaseSize = 24;
  double HomologFraction = 0.4;
  double MutationLo = 0.03;
  double MutationHi = 0.25;
  /// Planted-region length as a fraction of the query length.
  double RegionFracLo = 0.5;
  double RegionFracHi = 0.95;
  /// Per-base probability of an insertion or deletion in planted copies.
  double IndelRate = 0.0;
};

FastaDataset makeFastaDataset(uint64_t Seed, int Index,
                              const FastaDatasetOptions &Opts =
                                  FastaDatasetOptions());

/// Separation quality of \p Scores vs the planted labels: the fraction of
/// (homolog, non-homolog) pairs ranked correctly (1 = perfect separation,
/// 0.5 = chance). Ground truth is measurement-only.
double rankingQuality(const std::vector<double> &Scores,
                      const std::vector<uint8_t> &IsHomolog);

} // namespace bio
} // namespace wbt

#endif // WBT_BIO_FASTA_H
