//===- bio/Sequences.cpp - DNA sequence evolution ---------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "bio/Sequences.h"

#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::bio;

bool wbt::bio::isTransition(uint8_t From, uint8_t To) {
  // A(0)<->G(2) and C(1)<->T(3).
  return (From ^ To) == 2;
}

std::vector<std::vector<double>> Phylogeny::leafDistances() const {
  // Distance from every tree node to every leaf, bottom-up.
  int Total = NumLeaves + static_cast<int>(Nodes.size());
  std::vector<std::vector<std::pair<int, double>>> Below(
      static_cast<size_t>(Total));
  for (int L = 0; L != NumLeaves; ++L)
    Below[static_cast<size_t>(L)] = {{L, 0.0}};
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    auto &Mine = Below[NumLeaves + I];
    for (auto &[Leaf, D] : Below[static_cast<size_t>(N.Left)])
      Mine.emplace_back(Leaf, D + N.LeftLen);
    for (auto &[Leaf, D] : Below[static_cast<size_t>(N.Right)])
      Mine.emplace_back(Leaf, D + N.RightLen);
  }

  std::vector<std::vector<double>> Dist(
      static_cast<size_t>(NumLeaves),
      std::vector<double>(static_cast<size_t>(NumLeaves), 0.0));
  // For each internal node, leaves in the left subtree pair with leaves
  // in the right subtree through this node.
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    for (auto &[LA, DA] : Below[static_cast<size_t>(N.Left)])
      for (auto &[LB, DB] : Below[static_cast<size_t>(N.Right)]) {
        double D = DA + N.LeftLen + DB + N.RightLen;
        Dist[static_cast<size_t>(LA)][static_cast<size_t>(LB)] = D;
        Dist[static_cast<size_t>(LB)][static_cast<size_t>(LA)] = D;
      }
  }
  return Dist;
}

Sequence wbt::bio::randomSequence(int Length, Rng &R) {
  Sequence S(static_cast<size_t>(Length));
  for (uint8_t &B : S)
    B = static_cast<uint8_t>(R.uniformInt(0, 3));
  return S;
}

Sequence wbt::bio::mutate(const Sequence &In, double Rate, Rng &R) {
  Sequence Out = In;
  for (uint8_t &B : Out)
    if (R.flip(Rate)) {
      uint8_t New = static_cast<uint8_t>(R.uniformInt(0, 2));
      B = New >= B ? New + 1 : New; // uniform over the other three bases
    }
  return Out;
}

namespace {

/// Evolves \p In along a branch of length \p Len under a Kimura model
/// with ratio \p Kappa, per-site rates \p Rates and invariant mask.
Sequence evolveBranch(const Sequence &In, double Len, double Kappa,
                      const std::vector<double> &Rates,
                      const std::vector<uint8_t> &Invariant, Rng &R) {
  Sequence Out = In;
  for (size_t I = 0, E = Out.size(); I != E; ++I) {
    if (Invariant[I])
      continue;
    double Mu = Len * Rates[I];
    // Substitution probabilities: transitions happen Kappa times as often
    // as each transversion.
    double PTransition = Mu * Kappa / (Kappa + 2.0);
    double PTransversionEach = Mu / (Kappa + 2.0);
    double U = R.uniform(0.0, 1.0);
    uint8_t B = Out[I];
    if (U < PTransition) {
      Out[I] = static_cast<uint8_t>(B ^ 2); // the transition partner
    } else if (U < PTransition + 2 * PTransversionEach) {
      // One of the two transversion targets.
      uint8_t T1 = static_cast<uint8_t>(B ^ 1);
      uint8_t T2 = static_cast<uint8_t>(B ^ 3);
      Out[I] = (U < PTransition + PTransversionEach) ? T1 : T2;
    }
  }
  return Out;
}

} // namespace

SequenceDataset
wbt::bio::makeSequenceDataset(uint64_t Seed, int Index,
                              const SequenceDatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 907);
  SequenceDataset D;
  D.Kappa = R.uniform(Opts.KappaLo, Opts.KappaHi);
  D.InvariantFrac = R.uniform(Opts.InvariantLo, Opts.InvariantHi);
  D.RateCV = R.uniform(Opts.RateCVLo, Opts.RateCVHi);

  // Random topology: repeatedly join two random roots of the forest.
  Phylogeny &T = D.TrueTree;
  T.NumLeaves = Opts.NumLeaves;
  std::vector<int> Roots(static_cast<size_t>(Opts.NumLeaves));
  for (int I = 0; I != Opts.NumLeaves; ++I)
    Roots[static_cast<size_t>(I)] = I;
  while (Roots.size() > 1) {
    size_t A = R.index(Roots.size());
    int NodeA = Roots[A];
    Roots.erase(Roots.begin() + static_cast<long>(A));
    size_t B = R.index(Roots.size());
    int NodeB = Roots[B];
    Roots.erase(Roots.begin() + static_cast<long>(B));
    Phylogeny::Node N;
    N.Left = NodeA;
    N.Right = NodeB;
    N.LeftLen = R.uniform(Opts.BranchLo, Opts.BranchHi);
    N.RightLen = R.uniform(Opts.BranchLo, Opts.BranchHi);
    T.Nodes.push_back(N);
    Roots.push_back(Opts.NumLeaves + static_cast<int>(T.Nodes.size()) - 1);
  }
  D.TrueDistances = T.leafDistances();

  // Per-site rates (mean 1, CV = RateCV) and invariant mask.
  std::vector<double> Rates(static_cast<size_t>(Opts.SequenceLength));
  std::vector<uint8_t> Invariant(static_cast<size_t>(Opts.SequenceLength));
  for (size_t I = 0; I != Rates.size(); ++I) {
    double X = R.gaussian(1.0, D.RateCV);
    Rates[I] = X < 0.05 ? 0.05 : X;
    Invariant[I] = R.flip(D.InvariantFrac) ? 1 : 0;
  }

  // Evolve down from the root.
  int Total = Opts.NumLeaves + static_cast<int>(T.Nodes.size());
  std::vector<Sequence> SeqOf(static_cast<size_t>(Total));
  SeqOf[static_cast<size_t>(Total - 1)] =
      randomSequence(Opts.SequenceLength, R);
  for (size_t I = T.Nodes.size(); I-- > 0;) {
    const Phylogeny::Node &N = T.Nodes[I];
    const Sequence &Parent = SeqOf[Opts.NumLeaves + I];
    assert(!Parent.empty() && "parent evolved out of order");
    SeqOf[static_cast<size_t>(N.Left)] =
        evolveBranch(Parent, N.LeftLen, D.Kappa, Rates, Invariant, R);
    SeqOf[static_cast<size_t>(N.Right)] =
        evolveBranch(Parent, N.RightLen, D.Kappa, Rates, Invariant, R);
  }
  D.Leaves.assign(SeqOf.begin(), SeqOf.begin() + Opts.NumLeaves);
  return D;
}
