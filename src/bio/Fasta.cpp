//===- bio/Fasta.cpp - FASTA-style sequence search --------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "bio/Fasta.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace wbt;
using namespace wbt::bio;

namespace {

/// Packs the ktup-mer ending at position I (2 bits per base).
uint64_t packWord(const Sequence &S, size_t Start, int Ktup) {
  uint64_t W = 0;
  for (int I = 0; I != Ktup; ++I)
    W = (W << 2) | S[Start + static_cast<size_t>(I)];
  return W;
}

} // namespace

int wbt::bio::bestDiagonal(const Sequence &Query, const Sequence &Subject,
                           int Ktup, long &Hits) {
  Hits = 0;
  if (Ktup < 1 || Query.size() < static_cast<size_t>(Ktup) ||
      Subject.size() < static_cast<size_t>(Ktup))
    return 0;
  // Word index over the subject.
  std::map<uint64_t, std::vector<int>> Index;
  for (size_t I = 0; I + Ktup <= Subject.size(); ++I)
    Index[packWord(Subject, I, Ktup)].push_back(static_cast<int>(I));
  // Vote per diagonal.
  std::map<int, long> DiagHits;
  for (size_t I = 0; I + Ktup <= Query.size(); ++I) {
    auto It = Index.find(packWord(Query, I, Ktup));
    if (It == Index.end())
      continue;
    for (int J : It->second)
      ++DiagHits[static_cast<int>(I) - J];
  }
  int Best = 0;
  for (auto &[Diag, Count] : DiagHits)
    if (Count > Hits) {
      Hits = Count;
      Best = Diag;
    }
  return Best;
}

double wbt::bio::bandedAlign(const Sequence &Query, const Sequence &Subject,
                             int Diagonal, const FastaParams &P) {
  int QN = static_cast<int>(Query.size());
  int SN = static_cast<int>(Subject.size());
  int Band = std::max(1, P.Band);
  // Affine gaps approximated with the gap-open penalty applied per run
  // start; classic FASTA uses full affine, a 3-matrix band here would
  // triple memory for marginal benefit at these scales. We track one
  // matrix plus "came from gap" bits.
  const double NegInf = -1e18;
  // Column range per query row restricted to the band around Diagonal:
  // j in [i - Diagonal - Band, i - Diagonal + Band].
  std::vector<double> Prev(static_cast<size_t>(SN) + 1, 0.0);
  std::vector<double> Cur(static_cast<size_t>(SN) + 1, 0.0);
  double Best = 0.0;
  for (int I = 1; I <= QN; ++I) {
    int Center = I - Diagonal;
    int JLo = std::max(1, Center - Band);
    int JHi = std::min(SN, Center + Band);
    if (JLo > JHi) {
      std::fill(Cur.begin(), Cur.end(), 0.0);
      std::swap(Prev, Cur);
      continue;
    }
    for (int J = 0; J <= SN; ++J)
      Cur[static_cast<size_t>(J)] = (J >= JLo - 1 && J <= JHi) ? 0.0 : NegInf;
    for (int J = JLo; J <= JHi; ++J) {
      double Sub = Query[static_cast<size_t>(I - 1)] ==
                           Subject[static_cast<size_t>(J - 1)]
                       ? P.Match
                       : P.Mismatch;
      double FromDiag = Prev[static_cast<size_t>(J - 1)] + Sub;
      double FromUp = Prev[static_cast<size_t>(J)] + P.GapOpen + P.GapExtend;
      double FromLeft = Cur[static_cast<size_t>(J - 1)] + P.GapOpen +
                        P.GapExtend;
      double V = std::max({0.0, FromDiag, FromUp, FromLeft});
      Cur[static_cast<size_t>(J)] = V;
      Best = std::max(Best, V);
    }
    std::swap(Prev, Cur);
  }
  return Best;
}

double wbt::bio::fastaScore(const Sequence &Query, const Sequence &Subject,
                            const FastaParams &P) {
  long Hits = 0;
  int Diag = bestDiagonal(Query, Subject, P.Ktup, Hits);
  if (Hits == 0)
    return 0.0;
  return bandedAlign(Query, Subject, Diag, P);
}

FastaDataset wbt::bio::makeFastaDataset(uint64_t Seed, int Index,
                                        const FastaDatasetOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 4243);
  FastaDataset D;
  D.Query = randomSequence(Opts.QueryLength, R);
  D.MutationRate = R.uniform(Opts.MutationLo, Opts.MutationHi);
  for (int I = 0; I != Opts.DatabaseSize; ++I) {
    Sequence S = randomSequence(Opts.SubjectLength, R);
    bool Homolog = R.flip(Opts.HomologFraction);
    if (Homolog) {
      // Plant a mutated copy of a random query region.
      int RegionLen = static_cast<int>(R.uniformInt(
          static_cast<int64_t>(Opts.RegionFracLo * Opts.QueryLength),
          static_cast<int64_t>(Opts.RegionFracHi * Opts.QueryLength)));
      RegionLen = std::max(RegionLen, 8);
      int QStart = static_cast<int>(
          R.uniformInt(0, Opts.QueryLength - RegionLen));
      int SStart = static_cast<int>(
          R.uniformInt(0, Opts.SubjectLength - RegionLen));
      Sequence Region(D.Query.begin() + QStart,
                      D.Query.begin() + QStart + RegionLen);
      Region = mutate(Region, D.MutationRate, R);
      if (Opts.IndelRate > 0) {
        Sequence WithIndels;
        WithIndels.reserve(Region.size() + 8);
        for (uint8_t B : Region) {
          if (R.flip(Opts.IndelRate))
            continue; // deletion
          WithIndels.push_back(B);
          if (R.flip(Opts.IndelRate))
            WithIndels.push_back(
                static_cast<uint8_t>(R.uniformInt(0, 3))); // insertion
        }
        Region = std::move(WithIndels);
        RegionLen = std::min<int>(static_cast<int>(Region.size()),
                                  Opts.SubjectLength - SStart);
      }
      std::copy(Region.begin(), Region.begin() + RegionLen,
                S.begin() + SStart);
    }
    D.Database.push_back(std::move(S));
    D.IsHomolog.push_back(Homolog ? 1 : 0);
  }
  return D;
}

double wbt::bio::rankingQuality(const std::vector<double> &Scores,
                                const std::vector<uint8_t> &IsHomolog) {
  assert(Scores.size() == IsHomolog.size() && "scores/labels mismatch");
  long Concordant = 0, Pairs = 0;
  for (size_t I = 0; I != Scores.size(); ++I) {
    if (!IsHomolog[I])
      continue;
    for (size_t J = 0; J != Scores.size(); ++J) {
      if (IsHomolog[J])
        continue;
      ++Pairs;
      if (Scores[I] > Scores[J])
        ++Concordant;
      else if (Scores[I] == Scores[J])
        Concordant += 0; // ties count as wrong: be strict
    }
  }
  return Pairs ? static_cast<double>(Concordant) / static_cast<double>(Pairs)
               : 0.0;
}
