//===- bio/Phylip.cpp - Staged phylogeny inference --------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "bio/Phylip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::bio;

PairCounts wbt::bio::countDifferences(const Sequence &A, const Sequence &B) {
  assert(A.size() == B.size() && !A.empty() && "sequences must align");
  long Ts = 0, Tv = 0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    if (A[I] == B[I])
      continue;
    if (isTransition(A[I], B[I]))
      ++Ts;
    else
      ++Tv;
  }
  PairCounts C;
  C.TransitionFrac = static_cast<double>(Ts) / static_cast<double>(A.size());
  C.TransversionFrac = static_cast<double>(Tv) / static_cast<double>(A.size());
  C.DiffFrac = C.TransitionFrac + C.TransversionFrac;
  return C;
}

namespace {

/// Gamma + invariant-sites correction applied to an uncorrected
/// divergence estimate: expands observed divergence into evolutionary
/// time under rate heterogeneity.
double rateCorrect(double Raw, double InvarFrac, double Cvi) {
  InvarFrac = std::clamp(InvarFrac, 0.0, 0.95);
  // Rescale: only the variable fraction of sites accumulates change.
  double Scaled = Raw / (1.0 - InvarFrac);
  if (Cvi < 1e-3)
    return Scaled;
  // Gamma rates with shape alpha = 1/cvi^2:
  // d = alpha * ((1 - x)^(-1/alpha) - 1) applied to the JC-style inner
  // term, here applied on the already-log-free estimate via the standard
  // transform exp(d) ~ (1 - x)^-1.
  double Alpha = 1.0 / (Cvi * Cvi);
  double X = 1.0 - std::exp(-Scaled);
  X = std::min(X, 0.95);
  return Alpha * (std::pow(1.0 - X, -1.0 / Alpha) - 1.0);
}

} // namespace

double wbt::bio::correctedDistance(const PairCounts &C, double Ease,
                                   double InvarFrac, double Cvi) {
  Ease = std::clamp(Ease, 0.0, 1.0);
  // Jukes-Cantor: transition-blind.
  double PTotal = std::min(C.DiffFrac, 0.70);
  double Jc = -0.75 * std::log(1.0 - (4.0 / 3.0) * PTotal);
  // Kimura 2-parameter: separates transitions and transversions.
  double P = std::min(C.TransitionFrac, 0.45);
  double Q = std::min(C.TransversionFrac, 0.45);
  double A1 = 1.0 - 2.0 * P - Q;
  double A2 = 1.0 - 2.0 * Q;
  A1 = std::max(A1, 0.05);
  A2 = std::max(A2, 0.05);
  double K2p = -0.5 * std::log(A1) - 0.25 * std::log(A2);
  double Raw = (1.0 - Ease) * Jc + Ease * K2p;
  return rateCorrect(Raw, InvarFrac, Cvi);
}

std::vector<std::vector<double>>
wbt::bio::distanceMatrix(const std::vector<Sequence> &Leaves, double Ease,
                         double InvarFrac, double Cvi) {
  size_t N = Leaves.size();
  std::vector<std::vector<double>> D(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double V = correctedDistance(countDifferences(Leaves[I], Leaves[J]),
                                   Ease, InvarFrac, Cvi);
      D[I][J] = V;
      D[J][I] = V;
    }
  return D;
}

namespace {

/// Leaf-pair -> branch incidence for least-squares refinement.
struct PathIndex {
  /// Branch id per (internal node, side): node i sides 0/1 map to branch
  /// 2i / 2i+1.
  std::vector<std::vector<std::vector<int>>> PathBranches;

  PathIndex(const Phylogeny &T) {
    int L = T.NumLeaves;
    int Total = L + static_cast<int>(T.Nodes.size());
    // Leaves below each node, with the branch lists leading to them.
    std::vector<std::vector<std::pair<int, std::vector<int>>>> Below(
        static_cast<size_t>(Total));
    for (int I = 0; I != L; ++I)
      Below[static_cast<size_t>(I)] = {{I, {}}};
    for (size_t N = 0; N != T.Nodes.size(); ++N) {
      auto &Mine = Below[L + N];
      const Phylogeny::Node &Node = T.Nodes[N];
      for (auto &[Leaf, Branches] : Below[static_cast<size_t>(Node.Left)]) {
        std::vector<int> B = Branches;
        B.push_back(static_cast<int>(2 * N));
        Mine.emplace_back(Leaf, std::move(B));
      }
      for (auto &[Leaf, Branches] : Below[static_cast<size_t>(Node.Right)]) {
        std::vector<int> B = Branches;
        B.push_back(static_cast<int>(2 * N + 1));
        Mine.emplace_back(Leaf, std::move(B));
      }
    }
    PathBranches.assign(static_cast<size_t>(L),
                        std::vector<std::vector<int>>(static_cast<size_t>(L)));
    for (size_t N = 0; N != T.Nodes.size(); ++N) {
      const Phylogeny::Node &Node = T.Nodes[N];
      for (auto &[LA, BA] : Below[static_cast<size_t>(Node.Left)])
        for (auto &[LB, BB] : Below[static_cast<size_t>(Node.Right)]) {
          std::vector<int> Path = BA;
          Path.insert(Path.end(), BB.begin(), BB.end());
          Path.push_back(static_cast<int>(2 * N));
          Path.push_back(static_cast<int>(2 * N + 1));
          PathBranches[static_cast<size_t>(LA)][static_cast<size_t>(LB)] =
              Path;
          PathBranches[static_cast<size_t>(LB)][static_cast<size_t>(LA)] =
              std::move(Path);
        }
    }
  }
};

double &branchLen(Phylogeny &T, int Branch) {
  Phylogeny::Node &N = T.Nodes[static_cast<size_t>(Branch / 2)];
  return Branch % 2 == 0 ? N.LeftLen : N.RightLen;
}

} // namespace

TreeFit wbt::bio::fitTree(const std::vector<std::vector<double>> &Distances,
                          double Power) {
  size_t N = Distances.size();
  assert(N >= 2 && "need at least two taxa");
  TreeFit Fit;
  Fit.Tree.NumLeaves = static_cast<int>(N);

  // Neighbor joining over active cluster set.
  struct Cluster {
    int NodeId;        // < NumLeaves: leaf; otherwise internal
    size_t MatrixRow;  // row in the working distance matrix
  };
  std::vector<std::vector<double>> D = Distances;
  std::vector<int> Active; // node ids; index into D rows matches position
  std::vector<int> Rows;
  for (size_t I = 0; I != N; ++I) {
    Active.push_back(static_cast<int>(I));
    Rows.push_back(static_cast<int>(I));
  }
  // Working matrix indexed by current cluster positions.
  std::vector<std::vector<double>> W(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      W[I][J] = D[I][J];

  while (Active.size() > 2) {
    size_t M = Active.size();
    std::vector<double> RowSum(M, 0.0);
    for (size_t I = 0; I != M; ++I)
      for (size_t J = 0; J != M; ++J)
        RowSum[I] += W[I][J];
    // Minimize the NJ Q criterion.
    size_t BI = 0, BJ = 1;
    double BestQ = 0;
    bool First = true;
    for (size_t I = 0; I != M; ++I)
      for (size_t J = I + 1; J != M; ++J) {
        double Q = (static_cast<double>(M) - 2.0) * W[I][J] - RowSum[I] -
                   RowSum[J];
        if (First || Q < BestQ) {
          BestQ = Q;
          BI = I;
          BJ = J;
          First = false;
        }
      }
    // Branch lengths to the new internal node.
    double LI = 0.5 * W[BI][BJ] +
                (RowSum[BI] - RowSum[BJ]) / (2.0 * (static_cast<double>(M) - 2.0));
    double LJ = W[BI][BJ] - LI;
    LI = std::max(LI, 1e-6);
    LJ = std::max(LJ, 1e-6);

    Phylogeny::Node Node;
    Node.Left = Active[BI];
    Node.Right = Active[BJ];
    Node.LeftLen = LI;
    Node.RightLen = LJ;
    Fit.Tree.Nodes.push_back(Node);
    int NewId =
        static_cast<int>(N) + static_cast<int>(Fit.Tree.Nodes.size()) - 1;

    // New distances to the merged cluster.
    std::vector<double> NewRow(M, 0.0);
    for (size_t K = 0; K != M; ++K)
      if (K != BI && K != BJ)
        NewRow[K] = 0.5 * (W[BI][K] + W[BJ][K] - W[BI][BJ]);

    // Replace cluster BI with the merged one; drop BJ.
    for (size_t K = 0; K != M; ++K) {
      W[BI][K] = NewRow[K];
      W[K][BI] = NewRow[K];
    }
    W[BI][BI] = 0.0;
    Active[BI] = NewId;
    Active.erase(Active.begin() + static_cast<long>(BJ));
    W.erase(W.begin() + static_cast<long>(BJ));
    for (auto &Row : W)
      Row.erase(Row.begin() + static_cast<long>(BJ));
  }
  // Join the final two clusters at the root.
  Phylogeny::Node Root;
  Root.Left = Active[0];
  Root.Right = Active[1];
  Root.LeftLen = std::max(0.5 * W[0][1], 1e-6);
  Root.RightLen = std::max(0.5 * W[0][1], 1e-6);
  Fit.Tree.Nodes.push_back(Root);

  // Fitch-Margoliash refinement of the weighted least-squares objective
  // sum_ij (d_ij - t_ij)^2 / d_ij^Power. Damped Gauss-Newton coordinate
  // steps: each branch moves by the weighted mean residual of the pairs
  // routed through it, which cannot overshoot the per-branch optimum.
  PathIndex Paths(Fit.Tree);
  size_t NumBranches = 2 * Fit.Tree.Nodes.size();
  // All branches move at once and each pair's residual is spread over
  // every branch on its path, so damp by the mean path length to keep
  // the joint update contractive.
  double MeanPathLen = 0.0;
  {
    long Count = 0;
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J) {
        MeanPathLen += static_cast<double>(Paths.PathBranches[I][J].size());
        ++Count;
      }
    MeanPathLen = Count ? MeanPathLen / Count : 1.0;
  }
  double Damping = 1.0 / (1.0 + MeanPathLen);
  for (int Iter = 0; Iter != 300; ++Iter) {
    std::vector<std::vector<double>> T = Fit.Tree.leafDistances();
    std::vector<double> Grad(NumBranches, 0.0);
    std::vector<double> WeightSum(NumBranches, 0.0);
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J) {
        double Weight = 1.0 / std::pow(std::max(Distances[I][J], 1e-3), Power);
        double Resid = T[I][J] - Distances[I][J];
        for (int B : Paths.PathBranches[I][J]) {
          Grad[static_cast<size_t>(B)] += Weight * Resid;
          WeightSum[static_cast<size_t>(B)] += Weight;
        }
      }
    double MaxMove = 0.0;
    for (size_t B = 0; B != NumBranches; ++B) {
      if (WeightSum[B] <= 0)
        continue;
      double &L = branchLen(Fit.Tree, static_cast<int>(B));
      double Move = Damping * Grad[B] / WeightSum[B];
      L = std::max(1e-6, L - Move);
      MaxMove = std::max(MaxMove, std::fabs(Move));
    }
    if (MaxMove < 1e-8)
      break;
  }

  Fit.FittedDistances = Fit.Tree.leafDistances();
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double R = Fit.FittedDistances[I][J] - Distances[I][J];
      Fit.SumOfSquares += R * R;
    }
  return Fit;
}

double
wbt::bio::treeDistanceRmse(const std::vector<std::vector<double>> &Fitted,
                           const std::vector<std::vector<double>> &Truth) {
  assert(Fitted.size() == Truth.size() && "matrix size mismatch");
  size_t N = Fitted.size();
  double Sum = 0.0;
  long Count = 0;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      double D = Fitted[I][J] - Truth[I][J];
      Sum += D * D;
      ++Count;
    }
  return Count ? std::sqrt(Sum / static_cast<double>(Count)) : 0.0;
}
