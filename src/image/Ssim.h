//===- image/Ssim.h - Structural similarity scoring -------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSIM (Wang et al., the paper's [70]) over grayscale images, used to
/// score Canny edge maps against expert ground truth (paper Figs. 7/11).
/// Plus a boundary F1 score used for segmentations.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_SSIM_H
#define WBT_IMAGE_SSIM_H

#include "image/Image.h"

namespace wbt {
namespace img {

/// Mean SSIM over sliding 8x8 windows (stride 4), dynamic range 1.
/// \returns a value in [-1, 1]; 1 means identical.
double ssim(const Image &A, const Image &B);

/// SSIM between two binary masks of the given dimensions.
double ssimMasks(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B,
                 int Width, int Height);

/// Boundary F1: precision/recall of mask pixels with a \p Tolerance-pixel
/// match radius. Robust scoring for thin structures (edges, watershed
/// boundaries).
double boundaryF1(const std::vector<uint8_t> &Predicted,
                  const std::vector<uint8_t> &Truth, int Width, int Height,
                  int Tolerance = 1);

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_SSIM_H
