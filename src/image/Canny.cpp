//===- image/Canny.cpp - Canny edge detector ------------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Canny.h"

#include <deque>

using namespace wbt;
using namespace wbt::img;

Image wbt::img::nonMaxSuppress(const Gradient &G) {
  int W = G.Magnitude.width(), H = G.Magnitude.height();
  Image Out(W, H);
  // Neighbor offsets along each quantized gradient direction.
  static const int DX[4] = {1, 1, 0, -1};
  static const int DY[4] = {0, 1, 1, 1};
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      float M = G.Magnitude.at(X, Y);
      int D = G.Direction[static_cast<size_t>(Y) * W + X];
      float A = G.Magnitude.atClamped(X + DX[D], Y + DY[D]);
      float B = G.Magnitude.atClamped(X - DX[D], Y - DY[D]);
      Out.at(X, Y) = (M >= A && M >= B) ? M : 0.0f;
    }
  return Out;
}

std::vector<uint8_t> wbt::img::hysteresis(const Image &Suppressed, double Low,
                                          double High) {
  int W = Suppressed.width(), H = Suppressed.height();
  std::vector<uint8_t> Mask(static_cast<size_t>(W) * H, 0);
  float MaxMag = Suppressed.maxValue();
  // Flat images have only numerical-noise gradients; no edges exist.
  if (MaxMag <= 1e-5f)
    return Mask;
  if (Low > High)
    std::swap(Low, High);
  float LowT = static_cast<float>(Low) * MaxMag;
  float HighT = static_cast<float>(High) * MaxMag;

  // Seed from strong pixels and grow 8-connected through weak pixels.
  std::deque<std::pair<int, int>> Work;
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X)
      if (Suppressed.at(X, Y) >= HighT) {
        Mask[static_cast<size_t>(Y) * W + X] = 1;
        Work.emplace_back(X, Y);
      }
  while (!Work.empty()) {
    auto [X, Y] = Work.front();
    Work.pop_front();
    for (int DY = -1; DY <= 1; ++DY)
      for (int DX = -1; DX <= 1; ++DX) {
        int NX = X + DX, NY = Y + DY;
        if (!Suppressed.inBounds(NX, NY))
          continue;
        size_t Idx = static_cast<size_t>(NY) * W + NX;
        if (Mask[Idx] || Suppressed.at(NX, NY) < LowT)
          continue;
        Mask[Idx] = 1;
        Work.emplace_back(NX, NY);
      }
  }
  return Mask;
}

std::vector<uint8_t> wbt::img::canny(const Image &In, double Sigma, double Low,
                                     double High) {
  Image Smoothed = gaussianSmooth(In, Sigma);
  Gradient G = sobel(Smoothed);
  Image Suppressed = nonMaxSuppress(G);
  return hysteresis(Suppressed, Low, High);
}

double wbt::img::edgeFraction(const std::vector<uint8_t> &Mask) {
  if (Mask.empty())
    return 0.0;
  size_t Set = 0;
  for (uint8_t M : Mask)
    Set += M != 0;
  return static_cast<double>(Set) / static_cast<double>(Mask.size());
}
