//===- image/Synthetic.h - Ground-truthed scene generator -------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded synthetic scenes standing in for the paper's expert-annotated
/// image datasets (its [33]): random flat-shaded shapes over a background,
/// degraded by blur and Gaussian noise. Because the shapes are planted,
/// the exact ground-truth edge map and segmentation are known, which is
/// what the paper's SSIM scoring needs. Noise and blur levels vary per
/// scene, so the optimal Canny/watershed parameters are input-dependent —
/// the property that motivates tuning in the first place (paper Fig. 1).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_SYNTHETIC_H
#define WBT_IMAGE_SYNTHETIC_H

#include "image/Image.h"
#include "support/Rng.h"

namespace wbt {
namespace img {

/// A generated scene with its ground truth.
struct Scene {
  Image Picture;
  /// 0/1 ground-truth edge mask (shape outlines).
  std::vector<uint8_t> TrueEdges;
  /// Ground-truth region labels (0 = background, >= 1 = shape id).
  std::vector<int> TrueLabels;
  int NumShapes = 0;
  /// The degradations applied (what tuning must adapt to).
  double NoiseSigma = 0.0;
  double BlurSigma = 0.0;
};

struct SceneOptions {
  int Width = 96;
  int Height = 96;
  int MinShapes = 3;
  int MaxShapes = 6;
  /// Pixel noise stddev range; drawn per scene.
  double NoiseLo = 0.01;
  double NoiseHi = 0.08;
  /// Pre-noise blur sigma range; drawn per scene.
  double BlurLo = 0.0;
  double BlurHi = 1.2;
};

/// Generates scene number \p Index of a dataset identified by \p Seed.
Scene makeScene(uint64_t Seed, int Index,
                const SceneOptions &Opts = SceneOptions());

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_SYNTHETIC_H
