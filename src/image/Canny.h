//===- image/Canny.h - Canny edge detector ----------------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged Canny edge detector of paper Sec. II-B, with the stage
/// boundaries the paper tunes across: Gaussian smoothing (parameter
/// sigma), gradient + non-maximal suppression, and hysteresis edge
/// traversal (parameters low and high, as fractions of the maximum
/// gradient magnitude). Each stage is exported separately so the
/// white-box tuner can sample inside the pipeline; canny() composes them
/// for black-box use.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_CANNY_H
#define WBT_IMAGE_CANNY_H

#include "image/Filters.h"

namespace wbt {
namespace img {

/// Stage 2: gradient magnitude after non-maximal suppression — pixels
/// that are not local maxima along their gradient direction are zeroed.
Image nonMaxSuppress(const Gradient &G);

/// Stage 3: hysteresis edge traversal. \p Low and \p High are fractions
/// of the maximum suppressed magnitude (0..1, Low <= High): pixels above
/// High seed edges, pixels above Low extend them (8-connected).
/// \returns a 0/1 edge mask.
std::vector<uint8_t> hysteresis(const Image &Suppressed, double Low,
                                double High);

/// The full pipeline: smooth(Sigma) -> sobel -> NMS -> hysteresis.
std::vector<uint8_t> canny(const Image &In, double Sigma, double Low,
                           double High);

/// Edge-count plausibility heuristic used when no scoring function exists
/// (paper Sec. II-D): a result with almost no edge pixels or mostly edge
/// pixels is a poor sample. \returns the edge-pixel fraction.
double edgeFraction(const std::vector<uint8_t> &Mask);

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_CANNY_H
