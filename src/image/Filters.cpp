//===- image/Filters.cpp - Convolution and gradients ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Filters.h"

#include <cmath>

using namespace wbt;
using namespace wbt::img;

std::vector<float> wbt::img::gaussianKernel(double Sigma) {
  int Radius = static_cast<int>(std::ceil(3.0 * Sigma));
  if (Radius < 1)
    Radius = 1;
  std::vector<float> K(static_cast<size_t>(2 * Radius + 1));
  double Sum = 0.0;
  for (int I = -Radius; I <= Radius; ++I) {
    double V = std::exp(-(I * I) / (2.0 * Sigma * Sigma));
    K[static_cast<size_t>(I + Radius)] = static_cast<float>(V);
    Sum += V;
  }
  for (float &V : K)
    V = static_cast<float>(V / Sum);
  return K;
}

Image wbt::img::convolveSeparable(const Image &In,
                                  const std::vector<float> &Kernel) {
  int Radius = static_cast<int>(Kernel.size() / 2);
  int W = In.width(), H = In.height();
  Image Tmp(W, H), Out(W, H);
  // Horizontal pass.
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      float Acc = 0.0f;
      for (int I = -Radius; I <= Radius; ++I)
        Acc += Kernel[static_cast<size_t>(I + Radius)] * In.atClamped(X + I, Y);
      Tmp.at(X, Y) = Acc;
    }
  // Vertical pass.
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      float Acc = 0.0f;
      for (int I = -Radius; I <= Radius; ++I)
        Acc += Kernel[static_cast<size_t>(I + Radius)] *
               Tmp.atClamped(X, Y + I);
      Out.at(X, Y) = Acc;
    }
  return Out;
}

Image wbt::img::gaussianSmooth(const Image &In, double Sigma) {
  if (Sigma <= 0.0)
    return In;
  return convolveSeparable(In, gaussianKernel(Sigma));
}

Gradient wbt::img::sobel(const Image &In) {
  int W = In.width(), H = In.height();
  Gradient G;
  G.Magnitude = Image(W, H);
  G.Direction.assign(static_cast<size_t>(W) * H, 0);
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      float Gx = -In.atClamped(X - 1, Y - 1) - 2 * In.atClamped(X - 1, Y) -
                 In.atClamped(X - 1, Y + 1) + In.atClamped(X + 1, Y - 1) +
                 2 * In.atClamped(X + 1, Y) + In.atClamped(X + 1, Y + 1);
      float Gy = -In.atClamped(X - 1, Y - 1) - 2 * In.atClamped(X, Y - 1) -
                 In.atClamped(X + 1, Y - 1) + In.atClamped(X - 1, Y + 1) +
                 2 * In.atClamped(X, Y + 1) + In.atClamped(X + 1, Y + 1);
      G.Magnitude.at(X, Y) = std::hypot(Gx, Gy);
      // Quantize the angle into 4 bins: 0 = horizontal gradient (vertical
      // edge), proceeding counter-clockwise by 45 degrees.
      double Angle = std::atan2(Gy, Gx); // [-pi, pi]
      if (Angle < 0)
        Angle += 3.14159265358979323846;
      int Bin = static_cast<int>((Angle + 3.14159265358979323846 / 8) /
                                 (3.14159265358979323846 / 4)) %
                4;
      G.Direction[static_cast<size_t>(Y) * W + X] = static_cast<uint8_t>(Bin);
    }
  return G;
}

double wbt::img::laplacianSharpness(const Image &In) {
  int W = In.width(), H = In.height();
  if (W == 0 || H == 0)
    return 0.0;
  double Sum = 0.0;
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      float L = In.atClamped(X - 1, Y) + In.atClamped(X + 1, Y) +
                In.atClamped(X, Y - 1) + In.atClamped(X, Y + 1) -
                4 * In.at(X, Y);
      Sum += std::fabs(L);
    }
  return Sum / (static_cast<double>(W) * H);
}
