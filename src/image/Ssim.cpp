//===- image/Ssim.cpp - Structural similarity scoring ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Ssim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace wbt;
using namespace wbt::img;

double wbt::img::ssim(const Image &A, const Image &B) {
  assert(A.width() == B.width() && A.height() == B.height() &&
         "ssim over mismatched images");
  const int Win = 8, Stride = 4;
  const double C1 = 0.01 * 0.01, C2 = 0.03 * 0.03; // L = 1
  int W = A.width(), H = A.height();
  if (W == 0 || H == 0)
    return 0.0;

  double Total = 0.0;
  long Windows = 0;
  for (int Y0 = 0; Y0 < H; Y0 += Stride)
    for (int X0 = 0; X0 < W; X0 += Stride) {
      int X1 = std::min(X0 + Win, W), Y1 = std::min(Y0 + Win, H);
      int N = (X1 - X0) * (Y1 - Y0);
      if (N < 4)
        continue;
      double MeanA = 0, MeanB = 0;
      for (int Y = Y0; Y != Y1; ++Y)
        for (int X = X0; X != X1; ++X) {
          MeanA += A.at(X, Y);
          MeanB += B.at(X, Y);
        }
      MeanA /= N;
      MeanB /= N;
      double VarA = 0, VarB = 0, Cov = 0;
      for (int Y = Y0; Y != Y1; ++Y)
        for (int X = X0; X != X1; ++X) {
          double DA = A.at(X, Y) - MeanA;
          double DB = B.at(X, Y) - MeanB;
          VarA += DA * DA;
          VarB += DB * DB;
          Cov += DA * DB;
        }
      VarA /= N - 1;
      VarB /= N - 1;
      Cov /= N - 1;
      double Num = (2 * MeanA * MeanB + C1) * (2 * Cov + C2);
      double Den = (MeanA * MeanA + MeanB * MeanB + C1) * (VarA + VarB + C2);
      Total += Num / Den;
      ++Windows;
    }
  return Windows ? Total / Windows : 0.0;
}

double wbt::img::ssimMasks(const std::vector<uint8_t> &A,
                           const std::vector<uint8_t> &B, int Width,
                           int Height) {
  return ssim(Image::fromMask(A, Width, Height),
              Image::fromMask(B, Width, Height));
}

double wbt::img::boundaryF1(const std::vector<uint8_t> &Predicted,
                            const std::vector<uint8_t> &Truth, int Width,
                            int Height, int Tolerance) {
  assert(Predicted.size() == Truth.size() &&
         Predicted.size() == static_cast<size_t>(Width) * Height &&
         "boundaryF1 over mismatched masks");
  auto NearSet = [&](const std::vector<uint8_t> &Mask, int X, int Y) {
    for (int DY = -Tolerance; DY <= Tolerance; ++DY)
      for (int DX = -Tolerance; DX <= Tolerance; ++DX) {
        int NX = X + DX, NY = Y + DY;
        if (NX < 0 || NX >= Width || NY < 0 || NY >= Height)
          continue;
        if (Mask[static_cast<size_t>(NY) * Width + NX])
          return true;
      }
    return false;
  };

  long PredPixels = 0, PredMatched = 0, TruthPixels = 0, TruthMatched = 0;
  for (int Y = 0; Y != Height; ++Y)
    for (int X = 0; X != Width; ++X) {
      size_t I = static_cast<size_t>(Y) * Width + X;
      if (Predicted[I]) {
        ++PredPixels;
        PredMatched += NearSet(Truth, X, Y);
      }
      if (Truth[I]) {
        ++TruthPixels;
        TruthMatched += NearSet(Predicted, X, Y);
      }
    }
  if (PredPixels == 0 || TruthPixels == 0)
    return 0.0;
  double Precision = static_cast<double>(PredMatched) / PredPixels;
  double Recall = static_cast<double>(TruthMatched) / TruthPixels;
  if (Precision + Recall == 0.0)
    return 0.0;
  return 2 * Precision * Recall / (Precision + Recall);
}
