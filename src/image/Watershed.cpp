//===- image/Watershed.cpp - Marker-based watershed ------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Watershed.h"

#include "image/Filters.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>

using namespace wbt;
using namespace wbt::img;

std::vector<uint8_t> Segmentation::boundaryMask() const {
  std::vector<uint8_t> Mask(Labels.size(), 0);
  for (size_t I = 0, E = Labels.size(); I != E; ++I)
    Mask[I] = Labels[I] == 0 ? 1 : 0;
  return Mask;
}

std::vector<int> wbt::img::extractMarkers(const Image &Surface,
                                          double MarkerDepth) {
  int W = Surface.width(), H = Surface.height();
  float Lo = Surface.minValue(), Hi = Surface.maxValue();
  float Cut = Lo + static_cast<float>(MarkerDepth) * (Hi - Lo);
  std::vector<int> Markers(static_cast<size_t>(W) * H, 0);
  int NextLabel = 1;
  // Connected components (4-neighborhood) of the sub-threshold pixels.
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      size_t I = static_cast<size_t>(Y) * W + X;
      if (Markers[I] || Surface.at(X, Y) > Cut)
        continue;
      int Label = NextLabel++;
      std::deque<std::pair<int, int>> Work{{X, Y}};
      Markers[I] = Label;
      while (!Work.empty()) {
        auto [CX, CY] = Work.front();
        Work.pop_front();
        static const int DX[4] = {1, -1, 0, 0};
        static const int DY[4] = {0, 0, 1, -1};
        for (int D = 0; D != 4; ++D) {
          int NX = CX + DX[D], NY = CY + DY[D];
          if (!Surface.inBounds(NX, NY))
            continue;
          size_t NI = static_cast<size_t>(NY) * W + NX;
          if (Markers[NI] || Surface.at(NX, NY) > Cut)
            continue;
          Markers[NI] = Label;
          Work.emplace_back(NX, NY);
        }
      }
    }
  return Markers;
}

namespace {

struct QueueEntry {
  float Value;
  uint64_t Seq; // FIFO among equal values for determinism
  int X, Y;
  int Label;
  bool operator>(const QueueEntry &O) const {
    if (Value != O.Value)
      return Value > O.Value;
    return Seq > O.Seq;
  }
};

} // namespace

Segmentation wbt::img::flood(const Image &Surface, std::vector<int> Markers,
                             int MinBasin) {
  int W = Surface.width(), H = Surface.height();
  Segmentation Seg;
  Seg.Width = W;
  Seg.Height = H;
  Seg.Labels.assign(static_cast<size_t>(W) * H, -1); // -1 = unvisited

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      Queue;
  uint64_t Seq = 0;
  static const int DX[4] = {1, -1, 0, 0};
  static const int DY[4] = {0, 0, 1, -1};

  // Seed with marker pixels.
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      size_t I = static_cast<size_t>(Y) * W + X;
      if (Markers[I] > 0) {
        Seg.Labels[I] = Markers[I];
        Queue.push(QueueEntry{Surface.at(X, Y), Seq++, X, Y, Markers[I]});
      }
    }
  if (Queue.empty()) {
    // No markers: one giant basin.
    std::fill(Seg.Labels.begin(), Seg.Labels.end(), 1);
    Seg.NumBasins = 1;
    return Seg;
  }

  // Meyer flooding: grow basins in order of increasing surface height;
  // a pixel reachable from two basins becomes a watershed line (0).
  while (!Queue.empty()) {
    QueueEntry E = Queue.top();
    Queue.pop();
    for (int D = 0; D != 4; ++D) {
      int NX = E.X + DX[D], NY = E.Y + DY[D];
      if (!Surface.inBounds(NX, NY))
        continue;
      size_t NI = static_cast<size_t>(NY) * W + NX;
      if (Seg.Labels[NI] != -1)
        continue;
      // Distinct labeled neighbors decide boundary vs. growth.
      int Found = 0;
      bool Multi = false;
      for (int D2 = 0; D2 != 4; ++D2) {
        int MX = NX + DX[D2], MY = NY + DY[D2];
        if (!Surface.inBounds(MX, MY))
          continue;
        int L = Seg.Labels[static_cast<size_t>(MY) * W + MX];
        if (L <= 0)
          continue;
        if (Found == 0)
          Found = L;
        else if (Found != L)
          Multi = true;
      }
      if (Multi) {
        Seg.Labels[NI] = 0; // watershed line
        continue;
      }
      int Label = Found ? Found : E.Label;
      Seg.Labels[NI] = Label;
      Queue.push(QueueEntry{Surface.at(NX, NY), Seq++, NX, NY, Label});
    }
  }

  // Merge undersized basins into their dominant neighbor.
  std::map<int, long> Sizes;
  for (int L : Seg.Labels)
    if (L > 0)
      ++Sizes[L];
  std::map<int, int> Remap;
  for (auto &[Label, Size] : Sizes) {
    if (Size >= MinBasin)
      continue;
    // Count adjacency to other basins.
    std::map<int, long> Adjacent;
    for (int Y = 0; Y != H; ++Y)
      for (int X = 0; X != W; ++X) {
        if (Seg.Labels[static_cast<size_t>(Y) * W + X] != Label)
          continue;
        for (int D = 0; D != 4; ++D) {
          int NX = X + DX[D], NY = Y + DY[D];
          if (!Surface.inBounds(NX, NY))
            continue;
          // Look through boundary pixels one step further.
          int L = Seg.Labels[static_cast<size_t>(NY) * W + NX];
          if (L == 0) {
            int MX = NX + DX[D], MY = NY + DY[D];
            if (Surface.inBounds(MX, MY))
              L = Seg.Labels[static_cast<size_t>(MY) * W + MX];
          }
          if (L > 0 && L != Label)
            ++Adjacent[L];
        }
      }
    if (Adjacent.empty())
      continue;
    int Best = Adjacent.begin()->first;
    long BestCount = Adjacent.begin()->second;
    for (auto &[L, C] : Adjacent)
      if (C > BestCount) {
        Best = L;
        BestCount = C;
      }
    Remap[Label] = Best;
  }
  if (!Remap.empty()) {
    auto Resolve = [&Remap](int L) {
      // Chase chains (small basin merged into another small basin).
      for (int Hops = 0; Hops != 8; ++Hops) {
        auto It = Remap.find(L);
        if (It == Remap.end())
          return L;
        L = It->second;
      }
      return L;
    };
    for (int &L : Seg.Labels)
      if (L > 0)
        L = Resolve(L);
    // Dissolve boundary pixels that no longer separate distinct basins.
    for (int Y = 0; Y != H; ++Y)
      for (int X = 0; X != W; ++X) {
        size_t I = static_cast<size_t>(Y) * W + X;
        if (Seg.Labels[I] != 0)
          continue;
        int Found = 0;
        bool Multi = false;
        for (int D = 0; D != 4; ++D) {
          int NX = X + DX[D], NY = Y + DY[D];
          if (!Surface.inBounds(NX, NY))
            continue;
          int L = Seg.Labels[static_cast<size_t>(NY) * W + NX];
          if (L <= 0)
            continue;
          if (Found == 0)
            Found = L;
          else if (Found != L)
            Multi = true;
        }
        if (!Multi && Found)
          Seg.Labels[I] = Found;
      }
  }

  // Count the surviving basins.
  std::map<int, long> Final;
  for (int L : Seg.Labels)
    if (L > 0)
      ++Final[L];
  Seg.NumBasins = static_cast<int>(Final.size());
  // Any pixel still unvisited (disconnected plateau) joins basin 0 lines.
  for (int &L : Seg.Labels)
    if (L == -1)
      L = 0;
  return Seg;
}

Segmentation wbt::img::watershed(const Image &In, double Sigma,
                                 double MarkerDepth, int MinBasin) {
  Image Smoothed = gaussianSmooth(In, Sigma);
  Gradient G = sobel(Smoothed);
  std::vector<int> Markers = extractMarkers(G.Magnitude, MarkerDepth);
  return flood(G.Magnitude, std::move(Markers), MinBasin);
}
