//===- image/Filters.h - Convolution and gradients --------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Separable Gaussian smoothing and Sobel gradients — the first two
/// stages of the Canny pipeline and the preprocessing of watershed.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_FILTERS_H
#define WBT_IMAGE_FILTERS_H

#include "image/Image.h"

namespace wbt {
namespace img {

/// Normalized 1-D Gaussian kernel of radius ceil(3 * Sigma).
std::vector<float> gaussianKernel(double Sigma);

/// Separable convolution with a symmetric 1-D kernel (clamped borders).
Image convolveSeparable(const Image &In, const std::vector<float> &Kernel);

/// Gaussian smoothing with standard deviation \p Sigma (<= 0 returns the
/// input unchanged).
Image gaussianSmooth(const Image &In, double Sigma);

/// Sobel gradient field.
struct Gradient {
  Image Magnitude;
  /// Direction quantized to {0, 1, 2, 3} = {E-W, NE-SW, N-S, NW-SE}.
  std::vector<uint8_t> Direction;
};

/// 3x3 Sobel gradients of \p In.
Gradient sobel(const Image &In);

/// Blur-sharpness proxy: mean absolute Laplacian response. Low values
/// mean the image was smoothed too aggressively; used by the paper's
/// AggregateGaussian-style pruning (its [39] blur measure).
double laplacianSharpness(const Image &In);

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_FILTERS_H
