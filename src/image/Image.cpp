//===- image/Image.cpp - Grayscale image container -------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Image.h"

#include <algorithm>
#include <cstdio>

using namespace wbt;
using namespace wbt::img;

std::vector<uint8_t> Image::toMask() const {
  std::vector<uint8_t> Mask(Pix.size());
  for (size_t I = 0, E = Pix.size(); I != E; ++I)
    Mask[I] = Pix[I] >= 0.5f ? 1 : 0;
  return Mask;
}

Image Image::fromMask(const std::vector<uint8_t> &Mask, int Width,
                      int Height) {
  assert(Mask.size() == static_cast<size_t>(Width) * Height &&
         "mask size does not match dimensions");
  Image Out(Width, Height);
  for (size_t I = 0, E = Mask.size(); I != E; ++I)
    Out.Pix[I] = Mask[I] ? 1.0f : 0.0f;
  return Out;
}

float Image::maxValue() const {
  float M = 0.0f;
  for (float P : Pix)
    M = std::max(M, P);
  return M;
}

float Image::minValue() const {
  if (Pix.empty())
    return 0.0f;
  float M = Pix[0];
  for (float P : Pix)
    M = std::min(M, P);
  return M;
}

bool Image::writePgm(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::fprintf(F, "P5\n%d %d\n255\n", W, H);
  std::vector<uint8_t> Row(static_cast<size_t>(W));
  for (int Y = 0; Y != H; ++Y) {
    for (int X = 0; X != W; ++X) {
      float V = std::clamp(at(X, Y), 0.0f, 1.0f);
      Row[static_cast<size_t>(X)] = static_cast<uint8_t>(V * 255.0f + 0.5f);
    }
    if (std::fwrite(Row.data(), 1, Row.size(), F) != Row.size()) {
      std::fclose(F);
      return false;
    }
  }
  return std::fclose(F) == 0;
}

bool Image::readPgm(const std::string &Path, Image &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  int W = 0, H = 0, MaxVal = 0;
  char Magic[3] = {0, 0, 0};
  if (std::fscanf(F, "%2s %d %d %d", Magic, &W, &H, &MaxVal) != 4 ||
      Magic[0] != 'P' || Magic[1] != '5' || W <= 0 || H <= 0 ||
      MaxVal <= 0 || MaxVal > 255) {
    std::fclose(F);
    return false;
  }
  std::fgetc(F); // the single whitespace after the header
  Out = Image(W, H);
  std::vector<uint8_t> Raw(static_cast<size_t>(W) * H);
  if (std::fread(Raw.data(), 1, Raw.size(), F) != Raw.size()) {
    std::fclose(F);
    return false;
  }
  std::fclose(F);
  for (size_t I = 0, E = Raw.size(); I != E; ++I)
    Out.Pix[I] = static_cast<float>(Raw[I]) / static_cast<float>(MaxVal);
  return true;
}
