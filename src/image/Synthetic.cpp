//===- image/Synthetic.cpp - Ground-truthed scene generator ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "image/Synthetic.h"

#include "image/Filters.h"

#include <algorithm>
#include <cmath>

using namespace wbt;
using namespace wbt::img;

namespace {

/// Paints shape \p Label into \p Labels where \p Inside holds.
template <typename InsideFn>
void paintShape(std::vector<int> &Labels, Image &Pic, int W, int H, int Label,
                float Intensity, InsideFn Inside) {
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X)
      if (Inside(X, Y)) {
        Labels[static_cast<size_t>(Y) * W + X] = Label;
        Pic.at(X, Y) = Intensity;
      }
}

} // namespace

Scene wbt::img::makeScene(uint64_t Seed, int Index, const SceneOptions &Opts) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(Index) + 1);
  int W = Opts.Width, H = Opts.Height;

  Scene S;
  float Background = static_cast<float>(R.uniform(0.1, 0.35));
  S.Picture = Image(W, H, Background);
  S.TrueLabels.assign(static_cast<size_t>(W) * H, 0);
  S.NumShapes = static_cast<int>(R.uniformInt(Opts.MinShapes, Opts.MaxShapes));

  for (int Shape = 1; Shape <= S.NumShapes; ++Shape) {
    // Shapes get intensities well separated from the background.
    float Intensity =
        static_cast<float>(R.uniform(0.5, 0.95)) * (R.flip(0.15) ? -1 : 1);
    if (Intensity < 0)
      Intensity = Background * 0.3f; // occasionally darker than background
    int Kind = static_cast<int>(R.uniformInt(0, 2));
    int CX = static_cast<int>(R.uniformInt(W / 6, 5 * W / 6));
    int CY = static_cast<int>(R.uniformInt(H / 6, 5 * H / 6));
    int Size = static_cast<int>(R.uniformInt(std::min(W, H) / 10,
                                             std::min(W, H) / 4));
    switch (Kind) {
    case 0: // axis-aligned rectangle
      paintShape(S.TrueLabels, S.Picture, W, H, Shape, Intensity,
                 [&](int X, int Y) {
                   return std::abs(X - CX) <= Size &&
                          std::abs(Y - CY) <= Size * 2 / 3;
                 });
      break;
    case 1: // disc
      paintShape(S.TrueLabels, S.Picture, W, H, Shape, Intensity,
                 [&](int X, int Y) {
                   return (X - CX) * (X - CX) + (Y - CY) * (Y - CY) <=
                          Size * Size;
                 });
      break;
    default: // diamond
      paintShape(S.TrueLabels, S.Picture, W, H, Shape, Intensity,
                 [&](int X, int Y) {
                   return std::abs(X - CX) + std::abs(Y - CY) <= Size;
                 });
      break;
    }
  }

  // Ground-truth edges: label discontinuities (4-neighborhood).
  S.TrueEdges.assign(static_cast<size_t>(W) * H, 0);
  for (int Y = 0; Y != H; ++Y)
    for (int X = 0; X != W; ++X) {
      int L = S.TrueLabels[static_cast<size_t>(Y) * W + X];
      bool Edge = false;
      if (X + 1 < W)
        Edge |= S.TrueLabels[static_cast<size_t>(Y) * W + X + 1] != L;
      if (Y + 1 < H)
        Edge |= S.TrueLabels[static_cast<size_t>(Y + 1) * W + X] != L;
      S.TrueEdges[static_cast<size_t>(Y) * W + X] = Edge ? 1 : 0;
    }

  // Degrade: blur, then pixel noise (per-scene severity).
  S.BlurSigma = R.uniform(Opts.BlurLo, Opts.BlurHi);
  if (S.BlurSigma > 0.05)
    S.Picture = gaussianSmooth(S.Picture, S.BlurSigma);
  S.NoiseSigma = R.uniform(Opts.NoiseLo, Opts.NoiseHi);
  for (float &P : S.Picture.pixels())
    P = static_cast<float>(
        std::clamp(P + R.gaussian(0.0, S.NoiseSigma), 0.0, 1.0));
  return S;
}
