//===- image/Image.h - Grayscale image container ----------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense single-channel float image with clamped-border access and
/// 8-bit PGM I/O — the substrate under the Canny and watershed
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_IMAGE_H
#define WBT_IMAGE_IMAGE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace wbt {
namespace img {

/// Grayscale image; pixel values are conventionally in [0, 1].
class Image {
public:
  Image() = default;
  Image(int Width, int Height, float Fill = 0.0f)
      : W(Width), H(Height),
        Pix(static_cast<size_t>(Width) * Height, Fill) {
    assert(Width >= 0 && Height >= 0 && "negative image dimensions");
  }

  int width() const { return W; }
  int height() const { return H; }
  size_t size() const { return Pix.size(); }
  bool empty() const { return Pix.empty(); }

  float &at(int X, int Y) {
    assert(inBounds(X, Y) && "pixel out of bounds");
    return Pix[static_cast<size_t>(Y) * W + X];
  }
  float at(int X, int Y) const {
    assert(inBounds(X, Y) && "pixel out of bounds");
    return Pix[static_cast<size_t>(Y) * W + X];
  }

  /// Border-clamped read.
  float atClamped(int X, int Y) const {
    X = X < 0 ? 0 : (X >= W ? W - 1 : X);
    Y = Y < 0 ? 0 : (Y >= H ? H - 1 : Y);
    return at(X, Y);
  }

  bool inBounds(int X, int Y) const {
    return X >= 0 && X < W && Y >= 0 && Y < H;
  }

  std::vector<float> &pixels() { return Pix; }
  const std::vector<float> &pixels() const { return Pix; }

  /// Flattens to a 0/1 mask with threshold 0.5.
  std::vector<uint8_t> toMask() const;

  /// Builds a 0/1-valued image from a mask.
  static Image fromMask(const std::vector<uint8_t> &Mask, int Width,
                        int Height);

  /// Largest / smallest pixel value (0 for empty images).
  float maxValue() const;
  float minValue() const;

  /// Writes binary 8-bit PGM (values clamped to [0, 1] then scaled).
  bool writePgm(const std::string &Path) const;
  /// Reads binary 8-bit PGM. \returns false on parse failure.
  static bool readPgm(const std::string &Path, Image &Out);

private:
  int W = 0;
  int H = 0;
  std::vector<float> Pix;
};

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_IMAGE_H
