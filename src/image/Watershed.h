//===- image/Watershed.h - Marker-based watershed ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Marker-controlled watershed segmentation (the paper's Leptonica
/// watershed benchmark, reimplemented from the classic Meyer flooding
/// algorithm). Stages and tunables:
///
///   1. Gaussian smoothing of the input           — Sigma
///   2. Marker extraction: regional minima of the gradient deeper than a
///      depth threshold                           — MarkerDepth
///   3. Flooding from the markers, with boundary pixels emitted where
///      basins meet; basins smaller than MinBasin are merged away
///                                                — MinBasin
///
//===----------------------------------------------------------------------===//

#ifndef WBT_IMAGE_WATERSHED_H
#define WBT_IMAGE_WATERSHED_H

#include "image/Image.h"

namespace wbt {
namespace img {

/// A labeled segmentation: 0 = boundary, >= 1 = basin id.
struct Segmentation {
  int Width = 0;
  int Height = 0;
  std::vector<int> Labels;
  int NumBasins = 0;

  /// 0/1 mask of the boundary pixels.
  std::vector<uint8_t> boundaryMask() const;
};

/// Runs the full watershed pipeline on \p In.
Segmentation watershed(const Image &In, double Sigma, double MarkerDepth,
                       int MinBasin);

/// Stage 2 alone: marker seeds on the smoothed gradient surface.
/// Exposed so the white-box tuner can aggregate after marker extraction.
std::vector<int> extractMarkers(const Image &GradientSurface,
                                double MarkerDepth);

/// Stage 3 alone: flood \p GradientSurface from \p Markers (a label per
/// pixel, 0 = unlabeled) and merge basins smaller than \p MinBasin.
Segmentation flood(const Image &GradientSurface, std::vector<int> Markers,
                   int MinBasin);

} // namespace img
} // namespace wbt

#endif // WBT_IMAGE_WATERSHED_H
