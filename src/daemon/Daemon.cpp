//===- daemon/Daemon.cpp - The multi-tenant tuning daemon -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "daemon/FairShare.h"
#include "daemon/JobRunner.h"
#include "inject/Sys.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

using namespace wbt;
using namespace wbt::daemon;

namespace {

/// More simultaneous control connections than this is abuse, not
/// tenancy (same reasoning as MetricsEndpoint::MaxScrapeConns).
constexpr size_t MaxCtlClients = 64;

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

void closeIf(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

Daemon::~Daemon() {
  for (auto &E : Jobs) {
    closeIf(E.second.CapFd);
    closeIf(E.second.StatusFd);
  }
  for (const std::unique_ptr<Client> &C : Clients)
    ::close(C->Fd);
  Clients.clear();
  closeIf(ListenFd);
  if (SocketBound)
    ::unlink(Opts.SocketPath.c_str());
}

bool Daemon::bindControlSocket() {
  sockaddr_un Sa{};
  Sa.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Sa.sun_path)) {
    std::fprintf(stderr, "wbtuned: bad socket path '%s'\n",
                 Opts.SocketPath.c_str());
    return false;
  }
  std::memcpy(Sa.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);
  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    int Fd = sys::socketUnix();
    if (Fd < 0)
      return false;
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) == 0) {
      if (::listen(Fd, 16) != 0) {
        ::close(Fd);
        return false;
      }
      setNonBlocking(Fd);
      ListenFd = Fd;
      SocketBound = true;
      return true;
    }
    ::close(Fd);
    if (errno != EADDRINUSE || Attempt == 1)
      return false;
    // A path can be in use because a daemon is alive, or because one
    // was SIGKILLed and left the inode behind. Probe: a live daemon
    // accepts; a stale socket refuses.
    int Probe = sys::socketUnix();
    if (Probe < 0)
      return false;
    bool Alive =
        ::connect(Probe, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) == 0;
    ::close(Probe);
    if (Alive) {
      errno = EADDRINUSE;
      std::fprintf(stderr, "wbtuned: %s: daemon already running\n",
                   Opts.SocketPath.c_str());
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
  }
  return false;
}

bool Daemon::start() {
  // Cap updates go to runners over pipes, where MSG_NOSIGNAL cannot
  // help: a runner that exits between finishing its last region and
  // being reaped leaves a widowed read end, and the default SIGPIPE
  // disposition would kill the whole daemon on the next rebalance.
  // Ignore it so those writes surface as EPIPE (already best-effort).
  std::signal(SIGPIPE, SIG_IGN);
  if (Opts.Budget == 0) {
    long N = ::sysconf(_SC_NPROCESSORS_ONLN);
    Opts.Budget = N > 3 ? static_cast<uint32_t>(N - 1) : 2;
  }
  if (Opts.MaxJobs == 0)
    Opts.MaxJobs = 1;
  if (!bindControlSocket())
    return false;
  void *Mem = sys::mmapShared(Opts.MaxJobs * sizeof(obs::MetricsSnapshotPage));
  if (Mem == MAP_FAILED) {
    std::fprintf(stderr, "wbtuned: metrics mapping failed: %s\n",
                 std::strerror(errno));
    return false;
  }
  Pages = static_cast<obs::MetricsSnapshotPage *>(Mem);
  for (int I = static_cast<int>(Opts.MaxJobs); I-- != 0;)
    FreePages.push_back(I);
  if (!Opts.MetricsAddress.empty()) {
    MetricsEp = std::make_unique<net::MetricsEndpoint>(
        [this] { return renderExposition(); });
    if (!MetricsEp->listen(Opts.MetricsAddress)) {
      std::fprintf(stderr, "wbtuned: cannot listen on %s: %s\n",
                   Opts.MetricsAddress.c_str(), std::strerror(errno));
      return false;
    }
  }
  return true;
}

bool Daemon::draining() const {
  return DrainRequested || (Opts.DrainSignal && *Opts.DrainSignal);
}

size_t Daemon::liveJobs() const {
  size_t N = 0;
  for (const auto &E : Jobs)
    if (E.second.State == JobState::Queued ||
        E.second.State == JobState::Running)
      ++N;
  return N;
}

int Daemon::run() {
  for (;;) {
    pumpOnce(50);
    // Drain exits once every admitted job has been *reaped* — exiting
    // between a runner's death and its waitpid would leak a zombie.
    if (draining() && liveJobs() == 0) {
      bool Unreaped = false;
      for (const auto &E : Jobs)
        if (E.second.Pid != 0)
          Unreaped = true;
      if (!Unreaped)
        break;
    }
  }
  for (const std::unique_ptr<Client> &C : Clients)
    ::close(C->Fd);
  Clients.clear();
  closeIf(ListenFd);
  if (MetricsEp)
    MetricsEp->closeAll();
  if (SocketBound) {
    ::unlink(Opts.SocketPath.c_str());
    SocketBound = false;
  }
  return 0;
}

void Daemon::pumpOnce(int TimeoutMs) {
  reapRunners();
  admitQueued();

  std::vector<pollfd> Pfds;
  Pfds.push_back({ListenFd, POLLIN, 0});
  for (const std::unique_ptr<Client> &C : Clients)
    Pfds.push_back({C->Fd,
                    static_cast<short>(C->OutOff < C->Out.size()
                                           ? POLLIN | POLLOUT
                                           : POLLIN),
                    0});
  std::vector<uint64_t> PipeJobs;
  for (auto &E : Jobs)
    if (E.second.StatusFd >= 0) {
      PipeJobs.push_back(E.first);
      Pfds.push_back({E.second.StatusFd, POLLIN, 0});
    }

  int R = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (R > 0) {
    if (Pfds[0].revents & POLLIN)
      acceptClients();
    // Back to front: swap-and-pop removal never disturbs an index we
    // have yet to visit (new accepts sit past the polled range).
    size_t NClients = Pfds.size() - 1 - PipeJobs.size();
    for (size_t I = NClients; I-- != 0;) {
      short Ev = Pfds[I + 1].revents;
      if (!Ev)
        continue;
      if (!serviceClient(*Clients[I], Ev)) {
        int Fd = Clients[I]->Fd;
        ::close(Fd);
        for (size_t W = Waits.size(); W-- != 0;)
          if (Waits[W].second == Fd) {
            Waits[W] = Waits.back();
            Waits.pop_back();
          }
        Clients[I] = std::move(Clients.back());
        Clients.pop_back();
      }
    }
    for (size_t I = 0; I != PipeJobs.size(); ++I) {
      short Ev = Pfds[NClients + 1 + I].revents;
      if (Ev & (POLLIN | POLLHUP | POLLERR)) {
        auto It = Jobs.find(PipeJobs[I]);
        if (It != Jobs.end())
          drainStatusPipe(It->second);
      }
    }
  }
  if (MetricsEp)
    MetricsEp->pump(0);
}

void Daemon::acceptClients() {
  for (;;) {
    int Fd = sys::acceptConn(ListenFd);
    if (Fd < 0)
      return; // EAGAIN: drained
    if (Clients.size() >= MaxCtlClients) {
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    auto C = std::make_unique<Client>();
    C->Fd = Fd;
    Clients.push_back(std::move(C));
  }
}

bool Daemon::serviceClient(Client &C, short Revents) {
  if (Revents & (POLLERR | POLLNVAL))
    return false;
  if (Revents & (POLLIN | POLLHUP)) {
    uint8_t Buf[4096];
    ssize_t R = sys::recvOnce(C.Fd, Buf, sizeof(Buf));
    if (R == 0)
      return false; // orderly shutdown; a half-sent frame dies with it
    if (R < 0) {
      if (errno != EAGAIN && errno != EINTR)
        return false;
    } else {
      C.In.append(Buf, static_cast<size_t>(R));
      if (C.In.corrupt())
        return false;
      std::vector<uint8_t> Payload;
      while (C.In.next(Payload))
        handleFrame(C, Payload);
    }
  }
  flushOut(C);
  return true;
}

void Daemon::queueOut(Client &C, const std::vector<uint8_t> &Frame) {
  C.Out.append(reinterpret_cast<const char *>(Frame.data()), Frame.size());
}

void Daemon::flushOut(Client &C) {
  while (C.OutOff < C.Out.size()) {
    ssize_t W = sys::sendOnce(C.Fd, C.Out.data() + C.OutOff,
                              C.Out.size() - C.OutOff);
    if (W <= 0)
      return; // EAGAIN/EINTR: finish on a later pump
    C.OutOff += static_cast<size_t>(W);
  }
  if (C.OutOff == C.Out.size() && C.OutOff) {
    C.Out.clear();
    C.OutOff = 0;
  }
}

void Daemon::handleFrame(Client &C, const std::vector<uint8_t> &Payload) {
  switch (ctlFrameType(Payload)) {
  case CtlFrame::JobSubmit: {
    JobSpec Spec;
    if (!decodeJobSubmit(Payload, Spec))
      return;
    if (draining()) {
      queueOut(C, encodeSubmitResp(0, false, "draining"));
      return;
    }
    if (!validJobName(Spec.Name)) {
      queueOut(C, encodeSubmitResp(0, false, "bad job name"));
      return;
    }
    if (Spec.Regions == 0 || Spec.Samples == 0) {
      queueOut(C, encodeSubmitResp(0, false, "empty job"));
      return;
    }
    for (const auto &E : Jobs)
      if (E.second.Spec.Name == Spec.Name &&
          (E.second.State == JobState::Queued ||
           E.second.State == JobState::Running)) {
        queueOut(C, encodeSubmitResp(0, false, "name in use"));
        return;
      }
    if (Spec.Priority == 0)
      Spec.Priority = 1;
    Job J;
    J.Id = NextJobId++;
    J.Spec = std::move(Spec);
    uint64_t Id = J.Id;
    Jobs.emplace(Id, std::move(J));
    queueOut(C, encodeSubmitResp(Id, true, std::string()));
    admitQueued();
    return;
  }
  case CtlFrame::StatusReq:
    queueOut(C, encodeStatusResp(buildStatus()));
    return;
  case CtlFrame::CancelReq: {
    uint64_t Id = 0;
    if (!decodeCancelReq(Payload, Id))
      return;
    auto It = Jobs.find(Id);
    bool Found = It != Jobs.end() &&
                 (It->second.State == JobState::Queued ||
                  It->second.State == JobState::Running);
    queueOut(C, encodeCancelResp(Found));
    if (Found)
      cancelJob(It->second);
    return;
  }
  case CtlFrame::DrainReq:
    DrainRequested = true;
    queueOut(C, encodeDrainResp(static_cast<uint32_t>(liveJobs())));
    return;
  case CtlFrame::WaitReq: {
    uint64_t Id = 0;
    if (!decodeWaitReq(Payload, Id))
      return;
    auto It = Jobs.find(Id);
    if (It == Jobs.end()) {
      // Unknown id: answer now rather than strand the waiter.
      queueOut(C, encodeJobDone(Id, JobState::Crashed, JobResult()));
      return;
    }
    if (It->second.State == JobState::Queued ||
        It->second.State == JobState::Running) {
      Waits.emplace_back(Id, C.Fd);
      return;
    }
    queueOut(C, encodeJobDone(Id, It->second.State, It->second.Result));
    return;
  }
  default:
    return; // unknown frames are dropped, not fatal (forward compat)
  }
}

void Daemon::admitQueued() {
  size_t Running = 0;
  for (const auto &E : Jobs)
    if (E.second.State == JobState::Running)
      ++Running;
  for (auto &E : Jobs) {
    if (Running >= Opts.Budget)
      return; // every running job needs >= 1 worker
    Job &J = E.second;
    if (J.State != JobState::Queued)
      continue;
    if (FreePages.empty()) {
      // Steal the page of the oldest reaped terminal job; its labeled
      // series drop off the scrape when the slot is recycled.
      for (auto &T : Jobs)
        if (T.second.PageIdx >= 0 && T.second.Pid == 0 &&
            T.second.State != JobState::Queued &&
            T.second.State != JobState::Running) {
          FreePages.push_back(T.second.PageIdx);
          T.second.PageIdx = -1;
          break;
        }
      if (FreePages.empty())
        return; // every page busy with a live job
    }
    J.PageIdx = FreePages.back();
    FreePages.pop_back();
    J.State = JobState::Running;
    rebalance(); // assigns J.Cap before the fork
    spawnRunner(J);
    if (J.State == JobState::Running)
      ++Running;
  }
}

void Daemon::spawnRunner(Job &J) {
  int CapPipe[2] = {-1, -1}, StatusPipe[2] = {-1, -1};
  if (::pipe(CapPipe) != 0 || ::pipe(StatusPipe) != 0) {
    closeIf(CapPipe[0]);
    closeIf(CapPipe[1]);
    finishJob(J, JobState::Crashed);
    return;
  }
  pid_t Pid = sys::forkProcess();
  if (Pid < 0) {
    for (int Fd : {CapPipe[0], CapPipe[1], StatusPipe[0], StatusPipe[1]})
      ::close(Fd);
    finishJob(J, JobState::Crashed);
    return;
  }
  if (Pid == 0) {
    // The runner must not hold the daemon's sockets: a tenant that
    // outlives a crashed daemon would otherwise pin the control socket
    // and every client connection open.
    ::close(ListenFd);
    for (const std::unique_ptr<Client> &C : Clients)
      ::close(C->Fd);
    if (MetricsEp)
      MetricsEp->closeAll();
    for (auto &E : Jobs) {
      closeIf(E.second.CapFd);
      closeIf(E.second.StatusFd);
    }
    ::close(CapPipe[1]);
    ::close(StatusPipe[0]);
    runJob(J.Spec, Opts.Budget, J.Cap, CapPipe[0], StatusPipe[1],
           Pages + J.PageIdx);
  }
  ::close(CapPipe[0]);
  ::close(StatusPipe[1]);
  // Both sides race to setpgid; whichever runs first wins identically,
  // and the group must exist before any cancel sweep.
  ::setpgid(Pid, Pid);
  setNonBlocking(CapPipe[1]);
  setNonBlocking(StatusPipe[0]);
  J.Pid = Pid;
  J.CapFd = CapPipe[1];
  J.StatusFd = StatusPipe[0];
}

void Daemon::drainStatusPipe(Job &J) {
  if (J.StatusFd < 0)
    return;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t R = ::read(J.StatusFd, Buf, sizeof(Buf));
    if (R > 0) {
      J.StatusBuf.append(Buf, static_cast<size_t>(R));
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    break; // EAGAIN (quiet) or EOF (runner gone; reap finalizes)
  }
  std::vector<uint8_t> Payload;
  bool Progressed = false;
  while (J.StatusBuf.next(Payload)) {
    JobResult Res;
    if (decodeRunnerProgress(Payload, Res)) {
      J.Result = Res;
      Progressed = true;
    } else if (decodeRunnerDone(Payload, Res)) {
      J.Result = Res;
      J.DoneReported = true;
    }
  }
  if (Progressed)
    rebalance(); // remaining-samples weights moved
}

void Daemon::reapRunners() {
  for (auto &E : Jobs) {
    Job &J = E.second;
    if (J.Pid == 0)
      continue;
    int Status = 0;
    pid_t R = sys::waitPid(J.Pid, &Status, WNOHANG);
    if (R <= 0)
      continue;
    drainStatusPipe(J); // frames that raced the exit
    // Sweep stragglers (workers mid-sample when the runner died).
    ::kill(-J.Pid, SIGKILL);
    J.Pid = 0;
    closeIf(J.StatusFd);
    if (J.State == JobState::Running)
      finishJob(J, J.DoneReported && WIFEXITED(Status) &&
                           WEXITSTATUS(Status) == 0
                       ? JobState::Done
                       : JobState::Crashed);
    else
      closeIf(J.CapFd); // canceled: already terminal, just tidy up
  }
}

void Daemon::finishJob(Job &J, JobState Terminal) {
  J.State = Terminal;
  closeIf(J.CapFd);
  for (size_t W = Waits.size(); W-- != 0;) {
    if (Waits[W].first != J.Id)
      continue;
    int Fd = Waits[W].second;
    Waits[W] = Waits.back();
    Waits.pop_back();
    for (const std::unique_ptr<Client> &C : Clients)
      if (C->Fd == Fd) {
        queueOut(*C, encodeJobDone(J.Id, J.State, J.Result));
        flushOut(*C);
        break;
      }
  }
  rebalance();
}

void Daemon::cancelJob(Job &J) {
  if (J.State == JobState::Queued) {
    if (J.PageIdx >= 0) {
      FreePages.push_back(J.PageIdx);
      J.PageIdx = -1;
    }
    finishJob(J, JobState::Canceled);
    return;
  }
  // Running: SIGKILL the whole runner group; reapRunners collects the
  // corpse. Terminal state is immediate — cancel is not negotiable.
  ::kill(-J.Pid, SIGKILL);
  finishJob(J, JobState::Canceled);
}

void Daemon::rebalance() {
  std::vector<Job *> Running;
  std::vector<ShareInput> In;
  for (auto &E : Jobs)
    if (E.second.State == JobState::Running) {
      Job &J = E.second;
      uint32_t RegionsLeft = J.Spec.Regions > J.Result.RegionsDone
                                 ? J.Spec.Regions - J.Result.RegionsDone
                                 : 0;
      Running.push_back(&J);
      In.push_back({double(J.Spec.Priority) * double(RegionsLeft) *
                    double(J.Spec.Samples)});
    }
  std::vector<uint32_t> Caps = fairShareCaps(Opts.Budget, In);
  for (size_t I = 0; I != Running.size(); ++I) {
    if (Running[I]->Cap == Caps[I])
      continue;
    Running[I]->Cap = Caps[I];
    if (Running[I]->CapFd >= 0) {
      int32_t Cap = static_cast<int32_t>(Caps[I]);
      // Best effort: a full pipe means undrained older updates; the
      // newest lands on a later rebalance.
      ssize_t Ignored = ::write(Running[I]->CapFd, &Cap, sizeof(Cap));
      (void)Ignored;
    }
  }
}

StatusMsg Daemon::buildStatus() const {
  StatusMsg M;
  M.Budget = Opts.Budget;
  M.Draining = draining() ? 1 : 0;
  M.MetricsPort = metricsPort();
  for (const auto &E : Jobs) {
    const Job &J = E.second;
    JobRow Row;
    Row.Id = J.Id;
    Row.Name = J.Spec.Name;
    Row.State = J.State;
    Row.Cap = J.State == JobState::Running ? J.Cap : 0;
    Row.RunnerPid = static_cast<int32_t>(J.Pid);
    Row.Result = J.Result;
    M.Jobs.push_back(std::move(Row));
  }
  return M;
}

std::string Daemon::renderExposition() {
  std::string Out;
  char Buf[256];
  size_t NRunning = 0, NQueued = 0;
  for (const auto &E : Jobs) {
    if (E.second.State == JobState::Running)
      ++NRunning;
    if (E.second.State == JobState::Queued)
      ++NQueued;
  }
  std::snprintf(Buf, sizeof(Buf),
                "# TYPE wbt_daemon_budget gauge\nwbt_daemon_budget %u\n"
                "# TYPE wbt_daemon_draining gauge\nwbt_daemon_draining %d\n"
                "# TYPE wbt_daemon_jobs_running gauge\n"
                "wbt_daemon_jobs_running %zu\n"
                "# TYPE wbt_daemon_jobs_queued gauge\n"
                "wbt_daemon_jobs_queued %zu\n",
                Opts.Budget, draining() ? 1 : 0, NRunning, NQueued);
  Out += Buf;
  // One labeled exposition block per job slot. Names are admission-
  // checked to the label-safe alphabet, so no escaping happens here.
  for (const auto &E : Jobs) {
    const Job &J = E.second;
    if (J.PageIdx < 0)
      continue;
    obs::RuntimeMetrics M;
    if (!Pages[J.PageIdx].read(M))
      continue; // nothing published yet
    obs::writeExpositionText(Out, M, "job=\"" + J.Spec.Name + "\"");
  }
  return Out;
}
