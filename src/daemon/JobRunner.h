//===- daemon/JobRunner.h - One tenant job's forked runner ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-job process wbtuned forks for each admitted JobSpec: its own
/// proc::Runtime over the shared worker budget, running the built-in
/// shifted-sphere objective region by region. Between regions it drains
/// the cap pipe (newest daemon-assigned worker cap wins) and reports
/// progress frames up the status pipe; after the last region it reports
/// RunnerDone and exits.
///
/// Determinism contract (the acceptance criterion): a job's JobResult
/// depends only on (Seed, Kind, Regions, Samples) — never on the worker
/// cap in force, because per-lease RNG reseed makes every draw a
/// function of (seed, tp, region, index) and the per-region score is a
/// MIN over all committed samples. So a job run under wbtuned next to
/// noisy neighbours matches a solo runLocal() bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DAEMON_JOBRUNNER_H
#define WBT_DAEMON_JOBRUNNER_H

#include "daemon/Protocol.h"
#include "obs/Metrics.h"

#include <cstdint>

namespace wbt {
namespace daemon {

/// Forked-child entry point. Runs \p Spec to completion with the
/// runtime pool sized to \p Budget, starting at \p InitialCap workers;
/// \p CapReadFd delivers later cap updates (raw int32, newest wins) and
/// \p StatusWriteFd carries RunnerProgress/RunnerDone frames back to
/// the daemon. \p Page, when non-null, is this job's slot in the
/// daemon's shared metrics mapping — the runner publishes its
/// Runtime::metrics() there after every region (the per-job seqlock
/// feed behind the scrape endpoint's `job` label). Never returns.
[[noreturn]] void runJob(const JobSpec &Spec, uint32_t Budget,
                         uint32_t InitialCap, int CapReadFd, int StatusWriteFd,
                         obs::MetricsSnapshotPage *Page);

/// The same workload in the calling process, no daemon anywhere: what
/// wbtctl run-local and the equivalence tests compare daemon results
/// against. \p Workers sizes the region pool (0 = Samples).
JobResult runJobLocal(const JobSpec &Spec, uint32_t Workers);

} // namespace daemon
} // namespace wbt

#endif // WBT_DAEMON_JOBRUNNER_H
