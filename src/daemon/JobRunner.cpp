//===- daemon/JobRunner.cpp - One tenant job's forked runner --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/JobRunner.h"

#include "param/Distribution.h"
#include "proc/Runtime.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <limits>

using namespace wbt;
using namespace wbt::daemon;
using namespace wbt::proc;

namespace {

/// splitmix64: the region-center hash. Statistically fine and — the
/// actual requirement — identical everywhere the same (seed, region,
/// axis) triple is hashed.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Optimum coordinate of the shifted-sphere objective for one region,
/// in [0,1): derived from the job seed and region ordinal only, so a
/// solo rerun meets the same landscape.
double regionCenter(uint64_t Seed, uint64_t Region, uint64_t Axis) {
  uint64_t H = mix64(Seed ^ mix64(Region * 2 + Axis));
  return double(H >> 11) * (1.0 / 9007199254740992.0);
}

/// One pool region of the job's objective; returns the MIN committed
/// score. The body derives everything from runtime queries, so it is
/// cap-independent: per-lease RNG reseed fixes every draw by
/// (seed, tp, region, index), and MIN over all committed samples does
/// not care which worker ran which lease.
double runRegion(Runtime &Rt, const JobSpec &Spec, uint32_t Cap) {
  RegionOptions Ro;
  Ro.Kind = static_cast<SamplingKind>(Spec.Kind);
  Ro.Workers = static_cast<int>(Cap);
  double Best = std::numeric_limits<double>::infinity();
  uint64_t Seed = Spec.Seed;
  Rt.samplingRegion(static_cast<int>(Spec.Samples), Ro, [&Rt, Seed, &Best] {
    uint64_t Ord = Rt.regionOrdinal();
    double Cx = regionCenter(Seed, Ord, 0);
    double Cy = regionCenter(Seed, Ord, 1);
    double X = Rt.sample("x", Distribution::uniform(0.0, 1.0));
    double Y = Rt.sample("y", Distribution::uniform(0.0, 1.0));
    if (Rt.isSampling()) {
      double S = (X - Cx) * (X - Cx) + (Y - Cy) * (Y - Cy);
      Rt.aggregate("score", encodeDouble(S), nullptr);
    }
    Rt.aggregate("score", encodeDouble(0), [&](AggregationView &V) {
      for (int I : V.committed("score")) {
        double S = V.loadDouble("score", I);
        if (S < Best)
          Best = S;
      }
    });
  });
  return Best;
}

/// Newest cap written by the daemon, or \p Cur when the pipe is quiet.
/// The pipe is O_NONBLOCK; int32 writes are atomic at pipe granularity.
uint32_t drainCapPipe(int Fd, uint32_t Cur) {
  if (Fd < 0)
    return Cur;
  int32_t Cap;
  for (;;) {
    ssize_t R = ::read(Fd, &Cap, sizeof(Cap));
    if (R == sizeof(Cap)) {
      if (Cap > 0)
        Cur = static_cast<uint32_t>(Cap);
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    return Cur; // EAGAIN, EOF, or a torn write: keep what we have
  }
}

/// Full write to a pipe; EINTR retried. Best effort — a daemon that
/// died mid-run closes the read end and the runner just keeps tuning.
void writeAll(int Fd, const std::vector<uint8_t> &Bytes) {
  if (Fd < 0)
    return;
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t W = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (W < 0 && errno == EINTR)
      continue;
    if (W <= 0)
      return;
    Off += static_cast<size_t>(W);
  }
}

JobResult runSpec(Runtime &Rt, const JobSpec &Spec, uint32_t Budget,
                  uint32_t Cap, int CapReadFd, int StatusWriteFd,
                  obs::MetricsSnapshotPage *Page) {
  JobResult Res;
  Res.AggHash = FnvBasis;
  double Best = std::numeric_limits<double>::infinity();
  for (uint32_t R = 0; R != Spec.Regions; ++R) {
    Cap = drainCapPipe(CapReadFd, Cap);
    if (Cap > Budget)
      Cap = Budget;
    double RegionBest = runRegion(Rt, Spec, Cap);
    if (RegionBest < Best)
      Best = RegionBest;
    uint64_t Bits;
    std::memcpy(&Bits, &RegionBest, sizeof(Bits));
    Res.AggHash = fnvFold(Res.AggHash, Bits);
    ++Res.RegionsDone;
    std::memcpy(&Res.BestBits, &Best, sizeof(Res.BestBits));
    Rt.noteScore(RegionBest, Spec.Samples);
    if (Page)
      Page->publish(Rt.metrics());
    writeAll(StatusWriteFd, encodeRunnerProgress(Res));
  }
  return Res;
}

} // namespace

void daemon::runJob(const JobSpec &Spec, uint32_t Budget, uint32_t InitialCap,
                    int CapReadFd, int StatusWriteFd,
                    obs::MetricsSnapshotPage *Page) {
  // Own process group: the daemon cancels/sweeps a job with
  // kill(-pid, SIGKILL) and never touches its neighbours.
  ::setpgid(0, 0);
  // The daemon's drain handler must not fire in a tenant.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  // Progress frames go up a pipe; if the daemon died first, fail the
  // write with EPIPE instead of taking SIGPIPE mid-region.
  std::signal(SIGPIPE, SIG_IGN);
  if (CapReadFd >= 0)
    ::fcntl(CapReadFd, F_SETFL,
            ::fcntl(CapReadFd, F_GETFL, 0) | O_NONBLOCK);

  Runtime &Rt = Runtime::get();
  RuntimeOptions Opts;
  Opts.MaxPool = Budget + 1; // workers + this tuning process
  Opts.Seed = Spec.Seed;
  Opts.InjectPlan = Spec.InjectPlan;
  Rt.init(Opts);

  JobResult Res =
      runSpec(Rt, Spec, Budget, InitialCap, CapReadFd, StatusWriteFd, Page);
  writeAll(StatusWriteFd, encodeRunnerDone(Res));
  Rt.finish();
  ::_exit(0);
}

JobResult daemon::runJobLocal(const JobSpec &Spec, uint32_t Workers) {
  if (Workers == 0)
    Workers = Spec.Samples;
  Runtime &Rt = Runtime::get();
  RuntimeOptions Opts;
  Opts.MaxPool = Workers + 1;
  Opts.Seed = Spec.Seed;
  Rt.init(Opts);
  JobResult Res = runSpec(Rt, Spec, Workers, Workers, -1, -1, nullptr);
  Rt.finish();
  return Res;
}
