//===- daemon/Client.cpp - Blocking wbtuned control client ----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include "inject/Sys.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace wbt;
using namespace wbt::daemon;

bool CtlClient::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Sa{};
  Sa.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Sa.sun_path)) {
    errno = EINVAL;
    return false;
  }
  std::memcpy(Sa.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int S = sys::socketUnix();
  if (S < 0)
    return false;
  for (;;) {
    if (::connect(S, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) == 0)
      break;
    if (errno == EINTR)
      continue;
    int E = errno;
    ::close(S);
    errno = E;
    return false;
  }
  Fd = S;
  return true;
}

void CtlClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  In = net::FrameBuffer();
}

bool CtlClient::sendFrame(const std::vector<uint8_t> &Frame) {
  if (Fd < 0)
    return false;
  return sys::sendBytes(Fd, Frame.data(), Frame.size()) ==
         static_cast<ssize_t>(Frame.size());
}

bool CtlClient::recvFrame(CtlFrame Want, std::vector<uint8_t> &Payload) {
  if (Fd < 0)
    return false;
  for (;;) {
    while (In.next(Payload)) {
      if (ctlFrameType(Payload) == Want)
        return true;
      // A pushed frame from an older conversation (e.g. a JobDone for
      // a wait this process abandoned); skip it.
    }
    if (In.corrupt())
      return false;
    uint8_t Buf[4096];
    ssize_t R = sys::recvBytes(Fd, Buf, sizeof(Buf));
    if (R <= 0)
      return false; // EOF or error: the daemon is gone
    In.append(Buf, static_cast<size_t>(R));
  }
}

bool CtlClient::submit(const JobSpec &Spec, uint64_t &JobId,
                       std::string &Error) {
  Error.clear();
  if (!sendFrame(encodeJobSubmit(Spec)))
    return false;
  std::vector<uint8_t> Payload;
  if (!recvFrame(CtlFrame::SubmitResp, Payload))
    return false;
  bool Accepted = false;
  return decodeSubmitResp(Payload, JobId, Accepted, Error) && Accepted;
}

bool CtlClient::status(StatusMsg &Out) {
  if (!sendFrame(encodeStatusReq()))
    return false;
  std::vector<uint8_t> Payload;
  return recvFrame(CtlFrame::StatusResp, Payload) &&
         decodeStatusResp(Payload, Out);
}

bool CtlClient::cancel(uint64_t JobId, bool &Found) {
  if (!sendFrame(encodeCancelReq(JobId)))
    return false;
  std::vector<uint8_t> Payload;
  return recvFrame(CtlFrame::CancelResp, Payload) &&
         decodeCancelResp(Payload, Found);
}

bool CtlClient::drain(uint32_t &JobsLeft) {
  if (!sendFrame(encodeDrainReq()))
    return false;
  std::vector<uint8_t> Payload;
  return recvFrame(CtlFrame::DrainResp, Payload) &&
         decodeDrainResp(Payload, JobsLeft);
}

bool CtlClient::wait(uint64_t JobId, JobState &State, JobResult &Result) {
  if (!sendFrame(encodeWaitReq(JobId)))
    return false;
  for (;;) {
    std::vector<uint8_t> Payload;
    if (!recvFrame(CtlFrame::JobDone, Payload))
      return false;
    uint64_t Id = 0;
    if (!decodeJobDone(Payload, Id, State, Result))
      return false;
    if (Id == JobId)
      return true;
    // Someone else's completion pushed on a shared connection: ignore.
  }
}
