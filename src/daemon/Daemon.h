//===- daemon/Daemon.h - The multi-tenant tuning daemon ---------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// wbtuned's core: one poll(2) loop multiplexing the Unix control
/// socket (wbtctl clients), every job-runner's status pipe, and the
/// Prometheus scrape endpoint — threadless like LeaseServer and
/// MetricsEndpoint, because every subsystem here is a set of
/// non-blocking fds pumped from one place.
///
/// Job lifecycle: JobSubmit -> Queued -> (budget slot frees) -> fork
/// job-runner -> Running -> RunnerDone + exit(0) -> Done, or Crashed
/// (runner died without RunnerDone), or Canceled (CancelReq SIGKILLs
/// the runner's process group). Every arrival/departure/progress report
/// rebalances the global worker budget across running jobs
/// (daemon/FairShare.h) and pushes changed caps down the cap pipes.
///
/// Drain (SIGTERM, SIGINT, or a DrainReq frame): new submissions are
/// refused, already-admitted jobs (running *and* queued — admission was
/// acknowledged) finish normally, then the daemon unlinks its socket
/// and exits 0. A SIGKILLed daemon leaves a stale socket; the next
/// start detects it by a refused connect probe and rebinds.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DAEMON_DAEMON_H
#define WBT_DAEMON_DAEMON_H

#include "daemon/Protocol.h"
#include "net/MetricsEndpoint.h"
#include "net/Wire.h"
#include "obs/Metrics.h"

#include <csignal>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wbt {
namespace daemon {

struct DaemonOptions {
  /// Unix control-socket path (required).
  std::string SocketPath;
  /// Global worker budget shared by every tenant job; 0 = hardware
  /// concurrency - 1, floored at 2.
  uint32_t Budget = 0;
  /// Per-job metrics page slots in the shared mapping (also the cap on
  /// simultaneously admitted-but-unreaped jobs the scrape can label).
  uint32_t MaxJobs = 64;
  /// "ip:port" scrape endpoint; empty = off.
  std::string MetricsAddress;
  /// Signal-handler flag: when it goes nonzero the daemon drains, as if
  /// a DrainReq had arrived (wbtuned points this at its sig_atomic_t).
  const volatile std::sig_atomic_t *DrainSignal = nullptr;
};

class Daemon {
public:
  explicit Daemon(const DaemonOptions &Opts) : Opts(Opts) {}
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the control socket (reclaiming a stale one), maps the per-job
  /// metrics pages, and opens the scrape endpoint. False + a message on
  /// stderr when the socket cannot be ours.
  bool start();

  /// Serves until drained (signal or DrainReq). Returns the process
  /// exit code: 0 after a clean drain.
  int run();

  uint16_t metricsPort() const {
    return MetricsEp ? MetricsEp->port() : 0;
  }

private:
  struct Client {
    int Fd = -1;
    net::FrameBuffer In;
    std::string Out;
    size_t OutOff = 0;
  };

  struct Job {
    uint64_t Id = 0;
    JobSpec Spec;
    JobState State = JobState::Queued;
    uint32_t Cap = 0;
    pid_t Pid = 0;
    int CapFd = -1;    ///< write end of the runner's cap pipe
    int StatusFd = -1; ///< read end of the runner's status pipe
    net::FrameBuffer StatusBuf;
    bool DoneReported = false; ///< RunnerDone frame seen
    JobResult Result;
    int PageIdx = -1; ///< slot in the shared metrics mapping
  };

  bool bindControlSocket();
  void pumpOnce(int TimeoutMs);
  void acceptClients();
  /// False when the client is finished (EOF, error, or corrupt stream).
  bool serviceClient(Client &C, short Revents);
  void handleFrame(Client &C, const std::vector<uint8_t> &Payload);
  void queueOut(Client &C, const std::vector<uint8_t> &Frame);
  void flushOut(Client &C);

  void admitQueued();
  void spawnRunner(Job &J);
  void drainStatusPipe(Job &J);
  void reapRunners();
  void finishJob(Job &J, JobState Terminal);
  void cancelJob(Job &J);
  void rebalance();
  bool draining() const;
  size_t liveJobs() const; ///< queued + running
  std::string renderExposition();
  StatusMsg buildStatus() const;

  DaemonOptions Opts;
  int ListenFd = -1;
  bool SocketBound = false;
  bool DrainRequested = false;
  uint64_t NextJobId = 1;
  std::vector<std::unique_ptr<Client>> Clients;
  std::map<uint64_t, Job> Jobs; ///< ordered: status rows in submit order
  std::vector<std::pair<uint64_t, int>> Waits; ///< (job id, client fd)
  obs::MetricsSnapshotPage *Pages = nullptr; ///< MaxJobs shared slots
  std::vector<int> FreePages;
  std::unique_ptr<net::MetricsEndpoint> MetricsEp;
};

} // namespace daemon
} // namespace wbt

#endif // WBT_DAEMON_DAEMON_H
