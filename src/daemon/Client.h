//===- daemon/Client.h - Blocking wbtuned control client --------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the control protocol: one blocking connection,
/// one request-response (or subscribe-push, for wait) at a time. What
/// wbtctl and the daemon tests are built from. All sends and receives
/// go through wbt::sys wrappers, so inject plans can partition the
/// socket mid-submit and the daemon's torn-frame handling is exercised
/// by real torn frames.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DAEMON_CLIENT_H
#define WBT_DAEMON_CLIENT_H

#include "daemon/Protocol.h"
#include "net/Wire.h"

#include <string>

namespace wbt {
namespace daemon {

class CtlClient {
public:
  CtlClient() = default;
  ~CtlClient() { close(); }

  CtlClient(const CtlClient &) = delete;
  CtlClient &operator=(const CtlClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False + errno on failure
  /// (ECONNREFUSED = stale socket, ENOENT = no daemon).
  bool connect(const std::string &SocketPath);
  void close();
  bool connected() const { return Fd >= 0; }

  /// JobSubmit -> SubmitResp. On refusal returns false with the
  /// daemon's reason in \p Error; transport failure leaves Error empty.
  bool submit(const JobSpec &Spec, uint64_t &JobId, std::string &Error);

  /// StatusReq -> StatusResp.
  bool status(StatusMsg &Out);

  /// CancelReq -> CancelResp. \p Found: the id named a live job.
  bool cancel(uint64_t JobId, bool &Found);

  /// DrainReq -> DrainResp. \p JobsLeft: jobs the drain still waits on.
  bool drain(uint32_t &JobsLeft);

  /// WaitReq -> JobDone (blocks until the daemon pushes it).
  bool wait(uint64_t JobId, JobState &State, JobResult &Result);

private:
  /// Full frame out; EINTR handled by sys::sendBytes.
  bool sendFrame(const std::vector<uint8_t> &Frame);
  /// Blocks until one complete frame of type \p Want arrives (other
  /// types are dropped — this client has one conversation in flight).
  bool recvFrame(CtlFrame Want, std::vector<uint8_t> &Payload);

  int Fd = -1;
  net::FrameBuffer In;
};

} // namespace daemon
} // namespace wbt

#endif // WBT_DAEMON_CLIENT_H
