//===- daemon/FairShare.h - Cross-job worker-budget shares ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-job generalization of the paper's Alg. 1 pool rule: where
/// one tuning run caps its in-flight sampling children at MAX_POOL_SIZE,
/// wbtuned caps the *sum over tenant jobs* at one global worker budget
/// and carves it into per-job caps by remaining-work-weighted shares
/// ("Tuning the Tuner"-style priority knobs fold in as weight
/// multipliers). Shares are apportioned by largest remainder, so caps
/// sum exactly to the budget whenever the job count allows it, and every
/// running job keeps at least one worker — a tenant may be slowed by a
/// heavy neighbour but never starved. Deterministic: equal remainders
/// break toward the earlier job, so the daemon and the tests compute
/// identical tables.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DAEMON_FAIRSHARE_H
#define WBT_DAEMON_FAIRSHARE_H

#include <cstdint>
#include <vector>

namespace wbt {
namespace daemon {

/// One running job's claim on the budget.
struct ShareInput {
  /// Priority x remaining samples. A zero weight (job on its last
  /// region barrier) still holds one worker until it exits.
  double Weight = 0;
};

/// Splits \p Budget workers over \p Jobs: caps proportional to weight,
/// floored at 1 each, apportioned by largest remainder. When Jobs.size()
/// exceeds Budget the floor wins and the result oversubscribes — the
/// admission queue in the daemon keeps that from happening.
std::vector<uint32_t> fairShareCaps(uint32_t Budget,
                                    const std::vector<ShareInput> &Jobs);

} // namespace daemon
} // namespace wbt

#endif // WBT_DAEMON_FAIRSHARE_H
