//===- daemon/Protocol.h - wbtuned control-socket protocol ------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frame layout of the wbtuned control protocol: what wbtctl speaks to
/// the daemon over the Unix socket, and what a job-runner reports back
/// to the daemon over its status pipe. Framing is identical to the
/// lease protocol (net/Wire.h): a 4-byte native-endian payload length,
/// then the payload whose first byte is the CtlFrame type — so both
/// sides reuse net::FrameBuffer for reassembly and torn frames are
/// handled by the same corruption cap.
///
/// Conversation shape (client -> daemon over the control socket):
///
///   client -> daemon   JobSubmit{spec}          admission request
///   daemon -> client   SubmitResp{id|refusal}
///   client -> daemon   StatusReq{}              any time
///   daemon -> client   StatusResp{daemon + per-job rows}
///   client -> daemon   CancelReq{id}
///   daemon -> client   CancelResp{found}
///   client -> daemon   WaitReq{id}              subscribe to completion
///   daemon -> client   JobDone{id, state, result}  pushed on completion
///   client -> daemon   DrainReq{}
///   daemon -> client   DrainResp{jobs left}     drain acknowledged
///
/// and daemon-internal (job-runner -> daemon over the status pipe):
///
///   runner -> daemon   RunnerProgress{result so far}  after each region
///   runner -> daemon   RunnerDone{final result}       before _exit(0)
///
/// Worker-cap updates flow the other way (daemon -> runner) as raw
/// int32 writes on the cap pipe — single writer, atomic at that size
/// (PIPE_BUF), drained newest-wins by the runner between regions.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DAEMON_PROTOCOL_H
#define WBT_DAEMON_PROTOCOL_H

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace wbt {
namespace daemon {

enum class CtlFrame : uint8_t {
  None = 0,
  JobSubmit,
  SubmitResp,
  StatusReq,
  StatusResp,
  CancelReq,
  CancelResp,
  DrainReq,
  DrainResp,
  WaitReq,
  JobDone,
  RunnerProgress,
  RunnerDone,
};

/// Job names become Prometheus label values and run-directory names, so
/// admission restricts them to this alphabet (no quoting/escaping
/// anywhere downstream). Non-empty, at most 64 bytes.
bool validJobName(const std::string &Name);

/// What a client submits: the tuning workload wbtuned runs on the
/// submitter's behalf. Regions x Samples shifted-sphere regions over
/// the built-in objective, seeded so reruns (and solo reruns) replay
/// bitwise-identically.
struct JobSpec {
  std::string Name;
  uint32_t Regions = 4;
  uint32_t Samples = 8;
  /// Fair-share weight multiplier (>= 1); see daemon/FairShare.h.
  uint32_t Priority = 1;
  uint32_t Kind = 0; ///< proc::SamplingKind
  uint64_t Seed = 1;
  /// Fault-injection plan armed inside the job-runner (inject/Inject.h
  /// grammar) — how CI kills one runner mid-region without touching the
  /// daemon or the other tenants.
  std::string InjectPlan;
};

/// Where a job is in its lifecycle.
enum class JobState : uint8_t {
  Queued = 0, ///< admitted, waiting for a worker-budget slot
  Running,
  Done,     ///< runner reported RunnerDone and exited 0
  Crashed,  ///< runner died without RunnerDone (fault or bug)
  Canceled, ///< CancelReq: runner process group SIGKILLed
};

const char *jobStateName(JobState S);

/// A job's observable output. BestBits carries the best (minimum)
/// region score as a double bit pattern — bit-exact comparison is the
/// point (solo rerun equivalence), so the wire never rounds through
/// text. AggHash folds every per-region best into one FNV-1a word: two
/// runs agree on it iff they agreed on every region.
struct JobResult {
  uint32_t RegionsDone = 0;
  uint64_t BestBits = 0;
  uint64_t AggHash = 0;
};

/// FNV-1a fold of one 64-bit word into \p H (seed with fnvBasis).
constexpr uint64_t FnvBasis = 1469598103934665603ull;
uint64_t fnvFold(uint64_t H, uint64_t Word);

/// One row of StatusResp.
struct JobRow {
  uint64_t Id = 0;
  std::string Name;
  JobState State = JobState::Queued;
  uint32_t Cap = 0; ///< current fair-share worker cap
  int32_t RunnerPid = 0;
  JobResult Result;
};

struct StatusMsg {
  uint32_t Budget = 0;
  uint8_t Draining = 0;
  uint16_t MetricsPort = 0; ///< 0 when the scrape endpoint is off
  std::vector<JobRow> Jobs;
};

//===----------------------------------------------------------------------===//
// Encoding. Each returns a complete frame (length prefix included).
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeJobSubmit(const JobSpec &Spec);
std::vector<uint8_t> encodeSubmitResp(uint64_t JobId, bool Accepted,
                                      const std::string &Error);
std::vector<uint8_t> encodeStatusReq();
std::vector<uint8_t> encodeStatusResp(const StatusMsg &M);
std::vector<uint8_t> encodeCancelReq(uint64_t JobId);
std::vector<uint8_t> encodeCancelResp(bool Found);
std::vector<uint8_t> encodeDrainReq();
std::vector<uint8_t> encodeDrainResp(uint32_t JobsLeft);
std::vector<uint8_t> encodeWaitReq(uint64_t JobId);
std::vector<uint8_t> encodeJobDone(uint64_t JobId, JobState State,
                                   const JobResult &R);
std::vector<uint8_t> encodeRunnerProgress(const JobResult &R);
std::vector<uint8_t> encodeRunnerDone(const JobResult &R);

//===----------------------------------------------------------------------===//
// Decoding over one extracted payload (net::FrameBuffer::next output).
//===----------------------------------------------------------------------===//

/// First byte of \p Payload, or CtlFrame::None when empty/unknown.
CtlFrame ctlFrameType(const std::vector<uint8_t> &Payload);

bool decodeJobSubmit(const std::vector<uint8_t> &Payload, JobSpec &Out);
bool decodeSubmitResp(const std::vector<uint8_t> &Payload, uint64_t &JobId,
                      bool &Accepted, std::string &Error);
bool decodeStatusResp(const std::vector<uint8_t> &Payload, StatusMsg &Out);
bool decodeCancelReq(const std::vector<uint8_t> &Payload, uint64_t &JobId);
bool decodeCancelResp(const std::vector<uint8_t> &Payload, bool &Found);
bool decodeDrainResp(const std::vector<uint8_t> &Payload, uint32_t &JobsLeft);
bool decodeWaitReq(const std::vector<uint8_t> &Payload, uint64_t &JobId);
bool decodeJobDone(const std::vector<uint8_t> &Payload, uint64_t &JobId,
                   JobState &State, JobResult &R);
bool decodeRunnerProgress(const std::vector<uint8_t> &Payload, JobResult &R);
bool decodeRunnerDone(const std::vector<uint8_t> &Payload, JobResult &R);

} // namespace daemon
} // namespace wbt

#endif // WBT_DAEMON_PROTOCOL_H
