//===- daemon/FairShare.cpp - Cross-job worker-budget shares --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/FairShare.h"

#include <algorithm>
#include <cmath>

using namespace wbt;
using namespace wbt::daemon;

std::vector<uint32_t>
daemon::fairShareCaps(uint32_t Budget, const std::vector<ShareInput> &Jobs) {
  size_t N = Jobs.size();
  std::vector<uint32_t> Caps(N, 1);
  if (N == 0 || Budget <= N)
    return Caps; // the >=1 floor consumes (or oversubscribes) everything

  double TotalW = 0;
  for (const ShareInput &J : Jobs)
    TotalW += J.Weight > 0 ? J.Weight : 0;
  if (TotalW <= 0) {
    // No declared work anywhere: split evenly, front jobs take the rest.
    uint32_t Each = Budget / static_cast<uint32_t>(N);
    uint32_t Left = Budget % static_cast<uint32_t>(N);
    for (size_t I = 0; I != N; ++I)
      Caps[I] = Each + (I < Left ? 1 : 0);
    return Caps;
  }

  // Largest-remainder apportionment over the budget left after the
  // one-worker floors. Ideal share of the *whole* budget, minus the
  // floor already granted; negative ideals (tiny weights) stay at the
  // floor.
  uint32_t Extra = Budget - static_cast<uint32_t>(N);
  std::vector<double> Ideal(N);
  std::vector<uint32_t> Grant(N, 0);
  uint32_t Granted = 0;
  for (size_t I = 0; I != N; ++I) {
    double W = Jobs[I].Weight > 0 ? Jobs[I].Weight : 0;
    Ideal[I] = double(Budget) * W / TotalW - 1.0;
    if (Ideal[I] < 0)
      Ideal[I] = 0;
    Grant[I] = static_cast<uint32_t>(Ideal[I]);
    if (Grant[I] > Extra - Granted)
      Grant[I] = Extra - Granted; // clamp against rounding spill
    Granted += Grant[I];
  }
  // Hand out what truncation left, one worker at a time, to the
  // largest fractional remainder (ties to the earlier job).
  uint32_t Left = Extra - Granted;
  while (Left) {
    size_t Best = N;
    double BestFrac = -1;
    for (size_t I = 0; I != N; ++I) {
      double Frac = Ideal[I] - double(Grant[I]);
      if (Frac > BestFrac + 1e-12) {
        BestFrac = Frac;
        Best = I;
      }
    }
    if (Best == N)
      break; // everyone is at their ideal; stop (budget underused)
    ++Grant[Best];
    Ideal[Best] = double(Grant[Best]); // consumed its remainder
    --Left;
  }
  // Whatever the remainder pass could not place (all-integral ideals)
  // goes front-to-back so the budget is never silently wasted.
  for (size_t I = 0; Left && I != N; ++I, --Left)
    ++Grant[I];
  for (size_t I = 0; I != N; ++I)
    Caps[I] = 1 + Grant[I];
  return Caps;
}
