//===- daemon/Protocol.cpp - wbtuned control-socket protocol --------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include "support/ByteBuffer.h"

using namespace wbt;
using namespace wbt::daemon;

bool daemon::validJobName(const std::string &Name) {
  if (Name.empty() || Name.size() > 64)
    return false;
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

const char *daemon::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Crashed:
    return "crashed";
  case JobState::Canceled:
    return "canceled";
  }
  return "unknown";
}

uint64_t daemon::fnvFold(uint64_t H, uint64_t Word) {
  constexpr uint64_t Prime = 1099511628211ull;
  for (int B = 0; B != 8; ++B) {
    H ^= (Word >> (B * 8)) & 0xff;
    H *= Prime;
  }
  return H;
}

namespace {

/// Wraps a finished payload in the 4-byte length prefix (same frame
/// shape as net/Wire.cpp, so net::FrameBuffer splits both protocols).
std::vector<uint8_t> finishFrame(ByteWriter &Payload) {
  std::vector<uint8_t> Body = Payload.take();
  ByteWriter Frame;
  Frame.write<uint32_t>(static_cast<uint32_t>(Body.size()));
  std::vector<uint8_t> Out = Frame.take();
  Out.insert(Out.end(), Body.begin(), Body.end());
  return Out;
}

ByteWriter beginPayload(CtlFrame T) {
  ByteWriter W;
  W.write<uint8_t>(static_cast<uint8_t>(T));
  return W;
}

/// Positions \p R past the type byte, verifying it is \p T.
bool beginDecode(const std::vector<uint8_t> &Payload, CtlFrame T,
                 ByteReader &R) {
  if (ctlFrameType(Payload) != T)
    return false;
  R.read<uint8_t>(); // the type byte
  return R.ok();
}

void writeResult(ByteWriter &W, const JobResult &R) {
  W.write<uint32_t>(R.RegionsDone);
  W.write<uint64_t>(R.BestBits);
  W.write<uint64_t>(R.AggHash);
}

JobResult readResult(ByteReader &R) {
  JobResult Out;
  Out.RegionsDone = R.read<uint32_t>();
  Out.BestBits = R.read<uint64_t>();
  Out.AggHash = R.read<uint64_t>();
  return Out;
}

} // namespace

CtlFrame daemon::ctlFrameType(const std::vector<uint8_t> &Payload) {
  if (Payload.empty() ||
      Payload[0] > static_cast<uint8_t>(CtlFrame::RunnerDone))
    return CtlFrame::None;
  return static_cast<CtlFrame>(Payload[0]);
}

std::vector<uint8_t> daemon::encodeJobSubmit(const JobSpec &Spec) {
  ByteWriter W = beginPayload(CtlFrame::JobSubmit);
  W.writeString(Spec.Name);
  W.write<uint32_t>(Spec.Regions);
  W.write<uint32_t>(Spec.Samples);
  W.write<uint32_t>(Spec.Priority);
  W.write<uint32_t>(Spec.Kind);
  W.write<uint64_t>(Spec.Seed);
  W.writeString(Spec.InjectPlan);
  return finishFrame(W);
}

bool daemon::decodeJobSubmit(const std::vector<uint8_t> &Payload,
                             JobSpec &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::JobSubmit, R))
    return false;
  Out.Name = R.readString();
  Out.Regions = R.read<uint32_t>();
  Out.Samples = R.read<uint32_t>();
  Out.Priority = R.read<uint32_t>();
  Out.Kind = R.read<uint32_t>();
  Out.Seed = R.read<uint64_t>();
  Out.InjectPlan = R.readString();
  return R.ok();
}

std::vector<uint8_t> daemon::encodeSubmitResp(uint64_t JobId, bool Accepted,
                                              const std::string &Error) {
  ByteWriter W = beginPayload(CtlFrame::SubmitResp);
  W.write<uint64_t>(JobId);
  W.write<uint8_t>(Accepted ? 1 : 0);
  W.writeString(Error);
  return finishFrame(W);
}

bool daemon::decodeSubmitResp(const std::vector<uint8_t> &Payload,
                              uint64_t &JobId, bool &Accepted,
                              std::string &Error) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::SubmitResp, R))
    return false;
  JobId = R.read<uint64_t>();
  Accepted = R.read<uint8_t>() != 0;
  Error = R.readString();
  return R.ok();
}

std::vector<uint8_t> daemon::encodeStatusReq() {
  ByteWriter W = beginPayload(CtlFrame::StatusReq);
  return finishFrame(W);
}

std::vector<uint8_t> daemon::encodeStatusResp(const StatusMsg &M) {
  ByteWriter W = beginPayload(CtlFrame::StatusResp);
  W.write<uint32_t>(M.Budget);
  W.write<uint8_t>(M.Draining);
  W.write<uint16_t>(M.MetricsPort);
  W.write<uint32_t>(static_cast<uint32_t>(M.Jobs.size()));
  for (const JobRow &J : M.Jobs) {
    W.write<uint64_t>(J.Id);
    W.writeString(J.Name);
    W.write<uint8_t>(static_cast<uint8_t>(J.State));
    W.write<uint32_t>(J.Cap);
    W.write<int32_t>(J.RunnerPid);
    writeResult(W, J.Result);
  }
  return finishFrame(W);
}

bool daemon::decodeStatusResp(const std::vector<uint8_t> &Payload,
                              StatusMsg &Out) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::StatusResp, R))
    return false;
  Out.Budget = R.read<uint32_t>();
  Out.Draining = R.read<uint8_t>();
  Out.MetricsPort = R.read<uint16_t>();
  uint32_t N = R.read<uint32_t>();
  Out.Jobs.clear();
  for (uint32_t I = 0; R.ok() && I != N; ++I) {
    JobRow J;
    J.Id = R.read<uint64_t>();
    J.Name = R.readString();
    J.State = static_cast<JobState>(R.read<uint8_t>());
    J.Cap = R.read<uint32_t>();
    J.RunnerPid = R.read<int32_t>();
    J.Result = readResult(R);
    Out.Jobs.push_back(std::move(J));
  }
  return R.ok();
}

std::vector<uint8_t> daemon::encodeCancelReq(uint64_t JobId) {
  ByteWriter W = beginPayload(CtlFrame::CancelReq);
  W.write<uint64_t>(JobId);
  return finishFrame(W);
}

bool daemon::decodeCancelReq(const std::vector<uint8_t> &Payload,
                             uint64_t &JobId) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::CancelReq, R))
    return false;
  JobId = R.read<uint64_t>();
  return R.ok();
}

std::vector<uint8_t> daemon::encodeCancelResp(bool Found) {
  ByteWriter W = beginPayload(CtlFrame::CancelResp);
  W.write<uint8_t>(Found ? 1 : 0);
  return finishFrame(W);
}

bool daemon::decodeCancelResp(const std::vector<uint8_t> &Payload,
                              bool &Found) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::CancelResp, R))
    return false;
  Found = R.read<uint8_t>() != 0;
  return R.ok();
}

std::vector<uint8_t> daemon::encodeDrainReq() {
  ByteWriter W = beginPayload(CtlFrame::DrainReq);
  return finishFrame(W);
}

std::vector<uint8_t> daemon::encodeDrainResp(uint32_t JobsLeft) {
  ByteWriter W = beginPayload(CtlFrame::DrainResp);
  W.write<uint32_t>(JobsLeft);
  return finishFrame(W);
}

bool daemon::decodeDrainResp(const std::vector<uint8_t> &Payload,
                             uint32_t &JobsLeft) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::DrainResp, R))
    return false;
  JobsLeft = R.read<uint32_t>();
  return R.ok();
}

std::vector<uint8_t> daemon::encodeWaitReq(uint64_t JobId) {
  ByteWriter W = beginPayload(CtlFrame::WaitReq);
  W.write<uint64_t>(JobId);
  return finishFrame(W);
}

bool daemon::decodeWaitReq(const std::vector<uint8_t> &Payload,
                           uint64_t &JobId) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::WaitReq, R))
    return false;
  JobId = R.read<uint64_t>();
  return R.ok();
}

std::vector<uint8_t> daemon::encodeJobDone(uint64_t JobId, JobState State,
                                           const JobResult &Res) {
  ByteWriter W = beginPayload(CtlFrame::JobDone);
  W.write<uint64_t>(JobId);
  W.write<uint8_t>(static_cast<uint8_t>(State));
  writeResult(W, Res);
  return finishFrame(W);
}

bool daemon::decodeJobDone(const std::vector<uint8_t> &Payload,
                           uint64_t &JobId, JobState &State, JobResult &Res) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::JobDone, R))
    return false;
  JobId = R.read<uint64_t>();
  State = static_cast<JobState>(R.read<uint8_t>());
  Res = readResult(R);
  return R.ok();
}

std::vector<uint8_t> daemon::encodeRunnerProgress(const JobResult &Res) {
  ByteWriter W = beginPayload(CtlFrame::RunnerProgress);
  writeResult(W, Res);
  return finishFrame(W);
}

bool daemon::decodeRunnerProgress(const std::vector<uint8_t> &Payload,
                                  JobResult &Res) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::RunnerProgress, R))
    return false;
  Res = readResult(R);
  return R.ok();
}

std::vector<uint8_t> daemon::encodeRunnerDone(const JobResult &Res) {
  ByteWriter W = beginPayload(CtlFrame::RunnerDone);
  writeResult(W, Res);
  return finishFrame(W);
}

bool daemon::decodeRunnerDone(const std::vector<uint8_t> &Payload,
                              JobResult &Res) {
  ByteReader R(Payload);
  if (!beginDecode(Payload, CtlFrame::RunnerDone, R))
    return false;
  Res = readResult(R);
  return R.ok();
}
