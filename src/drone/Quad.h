//===- drone/Quad.h - Quadrotor rigid-body simulation -----------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small quadrotor flight-dynamics model (plus-configuration, Euler
/// integration) standing in for the paper's Gazebo simulator in the
/// Ardupilot/PX4 behavior-learning study (Sec. V-B5). Motor commands are
/// normalized [0, 1] speeds; the paper's behavior-matching score compares
/// exactly these four signals between controllers.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DRONE_QUAD_H
#define WBT_DRONE_QUAD_H

#include <array>

namespace wbt {
namespace drone {

struct Vec3 {
  double X = 0, Y = 0, Z = 0;

  Vec3 operator+(const Vec3 &O) const { return {X + O.X, Y + O.Y, Z + O.Z}; }
  Vec3 operator-(const Vec3 &O) const { return {X - O.X, Y - O.Y, Z - O.Z}; }
  Vec3 operator*(double S) const { return {X * S, Y * S, Z * S}; }
  double norm() const;
};

/// Normalized motor speeds: {front, right, back, left}.
using Motors = std::array<double, 4>;

struct QuadState {
  Vec3 Pos;    ///< world position (Z up), meters
  Vec3 Vel;    ///< world velocity, m/s
  double Roll = 0, Pitch = 0, Yaw = 0;   ///< radians
  double RollRate = 0, PitchRate = 0, YawRate = 0;
};

struct QuadModel {
  double Mass = 1.2;        ///< kg
  double ArmLength = 0.25;  ///< m
  double ThrustCoeff = 8.0; ///< N at full speed, per motor pair scaling
  double TorqueCoeff = 0.4;
  double Inertia = 0.06;    ///< kg m^2 (diagonal, symmetric)
  double YawInertia = 0.1;
  double LinearDrag = 0.35;
  double AngularDrag = 0.6;
  double Gravity = 9.81;
  double Dt = 0.02; ///< integration step, seconds
};

/// Advances \p S by one Dt step under motor command \p M (clamped to
/// [0, 1] internally).
void stepQuad(QuadState &S, const Motors &M, const QuadModel &Model);

/// Hover command: the per-motor speed that balances gravity.
double hoverSpeed(const QuadModel &Model);

} // namespace drone
} // namespace wbt

#endif // WBT_DRONE_QUAD_H
