//===- drone/Quad.cpp - Quadrotor rigid-body simulation --------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "drone/Quad.h"

#include <algorithm>
#include <cmath>

using namespace wbt;
using namespace wbt::drone;

double Vec3::norm() const { return std::sqrt(X * X + Y * Y + Z * Z); }

void wbt::drone::stepQuad(QuadState &S, const Motors &MIn,
                          const QuadModel &Model) {
  Motors M = MIn;
  for (double &W : M)
    W = std::clamp(W, 0.0, 1.0);

  // Thrust is quadratic in normalized speed.
  auto Thrust = [&](double W) { return Model.ThrustCoeff * W * W; };
  double T0 = Thrust(M[0]), T1 = Thrust(M[1]), T2 = Thrust(M[2]),
         T3 = Thrust(M[3]);
  double Total = T0 + T1 + T2 + T3;

  // Torques in the plus configuration: pitch from front/back pair, roll
  // from left/right pair, yaw from drag torque imbalance.
  double TauPitch = Model.ArmLength * (T2 - T0);
  double TauRoll = Model.ArmLength * (T3 - T1);
  double TauYaw =
      Model.TorqueCoeff * (T0 - T1 + T2 - T3);

  // Angular dynamics with linear damping.
  S.RollRate += (TauRoll / Model.Inertia - Model.AngularDrag * S.RollRate) *
                Model.Dt;
  S.PitchRate += (TauPitch / Model.Inertia - Model.AngularDrag * S.PitchRate) *
                 Model.Dt;
  S.YawRate += (TauYaw / Model.YawInertia - Model.AngularDrag * S.YawRate) *
               Model.Dt;
  S.Roll += S.RollRate * Model.Dt;
  S.Pitch += S.PitchRate * Model.Dt;
  S.Yaw += S.YawRate * Model.Dt;
  S.Roll = std::clamp(S.Roll, -0.9, 0.9);
  S.Pitch = std::clamp(S.Pitch, -0.9, 0.9);

  // Small-angle body-to-world thrust projection (yaw rotation applied to
  // the lean direction).
  double SinR = std::sin(S.Roll), SinP = std::sin(S.Pitch);
  double CosR = std::cos(S.Roll), CosP = std::cos(S.Pitch);
  double CosY = std::cos(S.Yaw), SinY = std::sin(S.Yaw);
  double Ax = Total * (SinP * CosY + SinR * SinY) / Model.Mass;
  double Ay = Total * (SinP * SinY - SinR * CosY) / Model.Mass;
  double Az = Total * CosR * CosP / Model.Mass - Model.Gravity;

  S.Vel.X += (Ax - Model.LinearDrag * S.Vel.X) * Model.Dt;
  S.Vel.Y += (Ay - Model.LinearDrag * S.Vel.Y) * Model.Dt;
  S.Vel.Z += (Az - Model.LinearDrag * S.Vel.Z) * Model.Dt;
  S.Pos = S.Pos + S.Vel * Model.Dt;

  // Ground contact.
  if (S.Pos.Z < 0) {
    S.Pos.Z = 0;
    if (S.Vel.Z < 0)
      S.Vel.Z = 0;
  }
}

double wbt::drone::hoverSpeed(const QuadModel &Model) {
  // 4 * ThrustCoeff * w^2 = Mass * Gravity.
  return std::sqrt(Model.Mass * Model.Gravity / (4.0 * Model.ThrustCoeff));
}
