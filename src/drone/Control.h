//===- drone/Control.h - Flight controllers and missions --------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two structurally different cascaded flight controllers over the same
/// airframe, standing in for PX4 and Ardupilot in the paper's behavior
/// learning case study (Sec. V-B5):
///
///  * ReferenceController ("PX4"): position -> velocity -> acceleration
///    -> attitude -> rate cascade with well-chosen fixed gains.
///  * StudentController ("Ardupilot"): position -> lean-angle cascade
///    with per-flight-mode PID banks — 13 gains for each of the three
///    flight modes plus a hover-throttle estimate: the paper's ~40
///    tunables whose names and meanings do not line up with the
///    reference's.
///
/// Missions are scripted as takeoff / waypoint / land phases; the
/// executor logs per-step motor speeds grouped by flight mode, and
/// behaviorDistance() computes the paper's scoring function — the RMS
/// error between two controllers' motor-speed traces per mode.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_DRONE_CONTROL_H
#define WBT_DRONE_CONTROL_H

#include "drone/Quad.h"

#include <cstddef>
#include <vector>

namespace wbt {
namespace drone {

enum class FlightMode { Takeoff = 0, Cruise = 1, Land = 2 };
constexpr int NumFlightModes = 3;

/// A mission: climb to altitude, visit waypoints, land.
struct Mission {
  double TakeoffAltitude = 10.0;
  std::vector<Vec3> Waypoints;
  double WaypointRadius = 1.0;
  double MaxSeconds = 240.0;
};

/// The paper's two test missions plus the longer zigzag test mission.
Mission hoverMission();   ///< take off to 10 m, land
Mission routeMission();   ///< 45 m route with 3 waypoints
Mission zigzagMission();  ///< 165 m zigzag returning to start

/// Common controller interface: map state + setpoint to motor commands.
class Controller {
public:
  virtual ~Controller();
  virtual Motors control(const QuadState &S, const Vec3 &Target,
                         FlightMode Mode, const QuadModel &Model) = 0;
  /// Reset integrators between flights.
  virtual void reset() = 0;
};

/// The well-tuned reference ("PX4").
class ReferenceController : public Controller {
public:
  Motors control(const QuadState &S, const Vec3 &Target, FlightMode Mode,
                 const QuadModel &Model) override;
  void reset() override;

private:
  double VzInt = 0, VxInt = 0, VyInt = 0;
};

/// Per-mode gain bank of the student controller. Defaults are the
/// deliberately poor factory values the tuner must improve.
struct StudentModeGains {
  double PosP = 0.25;     ///< position error -> velocity demand
  double VelP = 0.8;      ///< velocity error -> lean/climb demand
  double VelI = 0.0;
  double VelD = 0.0;
  double AngP = 1.2;      ///< lean error -> rate demand
  double RateP = 0.05;    ///< rate error -> motor delta
  double RateI = 0.0;
  double RateD = 0.0;
  double ThrP = 0.08;     ///< climb demand -> throttle delta
  double ThrI = 0.0;
  double MaxLean = 0.18;  ///< rad
  double MaxClimb = 1.2;  ///< m/s
  double MaxSpeed = 2.0;  ///< m/s horizontal
};

/// The 40 tunables: 13 per mode x 3 modes + hover throttle.
struct StudentParams {
  StudentModeGains Mode[NumFlightModes];
  double HoverThrottle = 0.5;

  /// Flat views used by the tuner (40 values).
  std::vector<double> flatten() const;
  static StudentParams unflatten(const std::vector<double> &Values);
  static const char *valueName(size_t I);
  static constexpr size_t NumValues = 40;
};

/// The learner ("Ardupilot"): different cascade, different knobs.
class StudentController : public Controller {
public:
  explicit StudentController(const StudentParams &P) : P(P) {}

  Motors control(const QuadState &S, const Vec3 &Target, FlightMode Mode,
                 const QuadModel &Model) override;
  void reset() override;

  const StudentParams &params() const { return P; }

private:
  StudentParams P;
  double VelIntX = 0, VelIntY = 0, VelIntZ = 0;
  double RateIntR = 0, RateIntP = 0;
  double ThrInt = 0;
  double PrevVelErrX = 0, PrevVelErrY = 0, PrevVelErrZ = 0;
  double PrevRateErrR = 0, PrevRateErrP = 0;
};

/// One flight's log.
struct FlightTrace {
  /// Per step: mode and the four motor speeds.
  std::vector<FlightMode> Modes;
  std::vector<Motors> MotorLog;
  std::vector<Vec3> Positions;
  double FlightSeconds = 0.0;
  bool MissionCompleted = false;
};

/// Flies \p Mission with \p C; logs every step.
FlightTrace fly(Controller &C, const Mission &M, const QuadModel &Model);

/// The paper's scoring function: per-mode RMS error between the two
/// traces' motor speeds, after resampling each mode segment to a common
/// length. \returns the mean over modes present in both traces (lower is
/// better).
double behaviorDistance(const FlightTrace &A, const FlightTrace &B);

/// Per-mode behavior distance (entries are -1 for modes absent from
/// either trace).
std::vector<double> behaviorDistancePerMode(const FlightTrace &A,
                                            const FlightTrace &B);

} // namespace drone
} // namespace wbt

#endif // WBT_DRONE_CONTROL_H
