//===- drone/Control.cpp - Flight controllers and missions -----------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "drone/Control.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cmath>

using namespace wbt;
using namespace wbt::drone;

Controller::~Controller() = default;

Mission wbt::drone::hoverMission() {
  Mission M;
  M.TakeoffAltitude = 10.0;
  M.MaxSeconds = 120.0;
  return M;
}

Mission wbt::drone::routeMission() {
  Mission M;
  M.TakeoffAltitude = 8.0;
  M.Waypoints = {{15, 0, 8}, {15, 15, 8}, {30, 15, 8}};
  M.MaxSeconds = 240.0;
  return M;
}

Mission wbt::drone::zigzagMission() {
  Mission M;
  M.TakeoffAltitude = 10.0;
  M.Waypoints = {{20, 10, 10}, {40, -10, 10}, {60, 10, 10},
                 {40, 25, 10}, {20, 10, 10},  {0, 0, 10}};
  M.MaxSeconds = 400.0;
  return M;
}

namespace {

double clampMag(double X, double Mag) { return std::clamp(X, -Mag, Mag); }

/// Mixes collective throttle and attitude corrections to plus-config
/// motors {front, right, back, left}.
Motors mix(double Throttle, double RollCmd, double PitchCmd, double YawCmd) {
  Motors M;
  M[0] = Throttle - PitchCmd + YawCmd; // front
  M[1] = Throttle - RollCmd - YawCmd;  // right
  M[2] = Throttle + PitchCmd + YawCmd; // back
  M[3] = Throttle + RollCmd - YawCmd;  // left
  for (double &W : M)
    W = std::clamp(W, 0.0, 1.0);
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// ReferenceController ("PX4")
//===----------------------------------------------------------------------===//

void ReferenceController::reset() { VzInt = VxInt = VyInt = 0; }

Motors ReferenceController::control(const QuadState &S, const Vec3 &Target,
                                    FlightMode Mode, const QuadModel &Model) {
  // Position -> velocity demand (brisk but bounded).
  double MaxSpeed = Mode == FlightMode::Cruise ? 6.0 : 3.0;
  double MaxClimb = Mode == FlightMode::Land ? 1.5 : 3.0;
  Vec3 PosErr = Target - S.Pos;
  Vec3 VelDes{clampMag(1.1 * PosErr.X, MaxSpeed),
              clampMag(1.1 * PosErr.Y, MaxSpeed),
              clampMag(1.3 * PosErr.Z, MaxClimb)};

  // Velocity -> acceleration demand (PI).
  double Dt = Model.Dt;
  double ExVx = VelDes.X - S.Vel.X, ExVy = VelDes.Y - S.Vel.Y,
         ExVz = VelDes.Z - S.Vel.Z;
  VxInt = clampMag(VxInt + ExVx * Dt, 2.0);
  VyInt = clampMag(VyInt + ExVy * Dt, 2.0);
  VzInt = clampMag(VzInt + ExVz * Dt, 2.0);
  double AxDes = 2.2 * ExVx + 0.4 * VxInt;
  double AyDes = 2.2 * ExVy + 0.4 * VyInt;
  double AzDes = 3.0 * ExVz + 0.8 * VzInt;

  // Acceleration -> attitude + collective.
  double PitchDes = clampMag(AxDes / Model.Gravity, 0.45);
  double RollDes = clampMag(-AyDes / Model.Gravity, 0.45);
  double Hover = hoverSpeed(Model);
  double Throttle = std::clamp(
      Hover + AzDes * Model.Mass / (8.0 * Model.ThrustCoeff * Hover), 0.05,
      0.95);

  // Attitude P -> rate, rate P -> command.
  double RateRollDes = 6.0 * (RollDes - S.Roll);
  double RatePitchDes = 6.0 * (PitchDes - S.Pitch);
  double RollCmd = clampMag(0.12 * (RateRollDes - S.RollRate), 0.3);
  double PitchCmd = clampMag(0.12 * (RatePitchDes - S.PitchRate), 0.3);
  double YawCmd = clampMag(-0.05 * S.YawRate, 0.1);
  return mix(Throttle, RollCmd, PitchCmd, YawCmd);
}

//===----------------------------------------------------------------------===//
// StudentController ("Ardupilot")
//===----------------------------------------------------------------------===//

std::vector<double> StudentParams::flatten() const {
  std::vector<double> V;
  V.reserve(NumValues);
  for (const StudentModeGains &G : Mode) {
    V.push_back(G.PosP);
    V.push_back(G.VelP);
    V.push_back(G.VelI);
    V.push_back(G.VelD);
    V.push_back(G.AngP);
    V.push_back(G.RateP);
    V.push_back(G.RateI);
    V.push_back(G.RateD);
    V.push_back(G.ThrP);
    V.push_back(G.ThrI);
    V.push_back(G.MaxLean);
    V.push_back(G.MaxClimb);
    V.push_back(G.MaxSpeed);
  }
  V.push_back(HoverThrottle);
  assert(V.size() == NumValues && "flatten size drifted");
  return V;
}

StudentParams StudentParams::unflatten(const std::vector<double> &Values) {
  assert(Values.size() == NumValues && "bad parameter vector");
  StudentParams P;
  size_t I = 0;
  for (StudentModeGains &G : P.Mode) {
    G.PosP = Values[I++];
    G.VelP = Values[I++];
    G.VelI = Values[I++];
    G.VelD = Values[I++];
    G.AngP = Values[I++];
    G.RateP = Values[I++];
    G.RateI = Values[I++];
    G.RateD = Values[I++];
    G.ThrP = Values[I++];
    G.ThrI = Values[I++];
    G.MaxLean = Values[I++];
    G.MaxClimb = Values[I++];
    G.MaxSpeed = Values[I++];
  }
  P.HoverThrottle = Values[I++];
  return P;
}

const char *StudentParams::valueName(size_t I) {
  static const char *Fields[] = {"POS_P",  "VEL_P",  "VEL_I",   "VEL_D",
                                 "ANG_P",  "RATE_P", "RATE_I",  "RATE_D",
                                 "THR_P",  "THR_I",  "LEAN_MAX", "CLMB_MAX",
                                 "SPD_MAX"};
  static const char *Modes[] = {"TKOFF", "CRUISE", "LAND"};
  static char Buf[32];
  if (I >= NumValues - 1)
    return "MOT_HOVER";
  std::snprintf(Buf, sizeof(Buf), "%s_%s", Modes[I / 13], Fields[I % 13]);
  return Buf;
}

void StudentController::reset() {
  VelIntX = VelIntY = VelIntZ = 0;
  RateIntR = RateIntP = 0;
  ThrInt = 0;
  PrevVelErrX = PrevVelErrY = PrevVelErrZ = 0;
  PrevRateErrR = PrevRateErrP = 0;
}

Motors StudentController::control(const QuadState &S, const Vec3 &Target,
                                  FlightMode Mode, const QuadModel &Model) {
  const StudentModeGains &G = P.Mode[static_cast<int>(Mode)];
  double Dt = Model.Dt;

  // Position -> velocity demand (single P, unlike the reference's cascade).
  Vec3 PosErr = Target - S.Pos;
  double VxDes = clampMag(G.PosP * PosErr.X, G.MaxSpeed);
  double VyDes = clampMag(G.PosP * PosErr.Y, G.MaxSpeed);
  double VzDes = clampMag(G.PosP * PosErr.Z, G.MaxClimb);

  // Velocity PID -> lean angles directly.
  double ExVx = VxDes - S.Vel.X, ExVy = VyDes - S.Vel.Y, ExVz = VzDes - S.Vel.Z;
  VelIntX = clampMag(VelIntX + ExVx * Dt, 3.0);
  VelIntY = clampMag(VelIntY + ExVy * Dt, 3.0);
  VelIntZ = clampMag(VelIntZ + ExVz * Dt, 3.0);
  double DVx = (ExVx - PrevVelErrX) / Dt, DVy = (ExVy - PrevVelErrY) / Dt;
  PrevVelErrX = ExVx;
  PrevVelErrY = ExVy;
  PrevVelErrZ = ExVz;
  double PitchDes =
      clampMag(0.1 * (G.VelP * ExVx + G.VelI * VelIntX + G.VelD * DVx),
               G.MaxLean);
  double RollDes =
      clampMag(-0.1 * (G.VelP * ExVy + G.VelI * VelIntY + G.VelD * DVy),
               G.MaxLean);

  // Attitude P -> rate demand; rate PID -> mixer command.
  double RateRDes = G.AngP * (RollDes - S.Roll);
  double RatePDes = G.AngP * (PitchDes - S.Pitch);
  double ErrR = RateRDes - S.RollRate, ErrP = RatePDes - S.PitchRate;
  RateIntR = clampMag(RateIntR + ErrR * Dt, 1.0);
  RateIntP = clampMag(RateIntP + ErrP * Dt, 1.0);
  double DerR = (ErrR - PrevRateErrR) / Dt, DerP = (ErrP - PrevRateErrP) / Dt;
  PrevRateErrR = ErrR;
  PrevRateErrP = ErrP;
  double RollCmd =
      clampMag(G.RateP * ErrR + G.RateI * RateIntR + G.RateD * DerR, 0.3);
  double PitchCmd =
      clampMag(G.RateP * ErrP + G.RateI * RateIntP + G.RateD * DerP, 0.3);

  // Throttle: hover estimate + climb PI.
  ThrInt = clampMag(ThrInt + ExVz * Dt, 2.0);
  double Throttle = std::clamp(
      P.HoverThrottle + G.ThrP * ExVz + G.ThrI * ThrInt, 0.05, 0.95);

  return mix(Throttle, RollCmd, PitchCmd, clampMag(-0.05 * S.YawRate, 0.1));
}

//===----------------------------------------------------------------------===//
// Mission execution
//===----------------------------------------------------------------------===//

FlightTrace wbt::drone::fly(Controller &C, const Mission &M,
                            const QuadModel &Model) {
  C.reset();
  QuadState S;
  FlightTrace Trace;
  FlightMode Mode = FlightMode::Takeoff;
  size_t NextWaypoint = 0;
  Vec3 LandSpot{0, 0, 0};

  long MaxSteps = static_cast<long>(M.MaxSeconds / Model.Dt);
  for (long Step = 0; Step != MaxSteps; ++Step) {
    Vec3 Target;
    switch (Mode) {
    case FlightMode::Takeoff:
      Target = {S.Pos.X, S.Pos.Y, M.TakeoffAltitude};
      if (S.Pos.Z >= M.TakeoffAltitude - 0.4) {
        Mode = M.Waypoints.empty() ? FlightMode::Land : FlightMode::Cruise;
        LandSpot = {S.Pos.X, S.Pos.Y, 0};
      }
      break;
    case FlightMode::Cruise: {
      Target = M.Waypoints[NextWaypoint];
      Vec3 Err = Target - S.Pos;
      if (Err.norm() < M.WaypointRadius) {
        ++NextWaypoint;
        if (NextWaypoint >= M.Waypoints.size()) {
          Mode = FlightMode::Land;
          LandSpot = {S.Pos.X, S.Pos.Y, 0};
        }
      }
      break;
    }
    case FlightMode::Land:
      Target = LandSpot;
      break;
    }

    Motors Cmd = C.control(S, Target, Mode, Model);
    stepQuad(S, Cmd, Model);
    Trace.Modes.push_back(Mode);
    Trace.MotorLog.push_back(Cmd);
    Trace.Positions.push_back(S.Pos);
    Trace.FlightSeconds = (Step + 1) * Model.Dt;

    if (Mode == FlightMode::Land && S.Pos.Z <= 0.05 &&
        std::fabs(S.Vel.Z) < 0.2 && Step > 50) {
      Trace.MissionCompleted = true;
      break;
    }
  }
  return Trace;
}

namespace {

/// Extracts and resamples one mode's motor segment to \p Samples rows.
std::vector<Motors> resampleMode(const FlightTrace &T, FlightMode Mode,
                                 int Samples) {
  std::vector<const Motors *> Segment;
  for (size_t I = 0; I != T.Modes.size(); ++I)
    if (T.Modes[I] == Mode)
      Segment.push_back(&T.MotorLog[I]);
  if (Segment.empty())
    return {};
  std::vector<Motors> Out(static_cast<size_t>(Samples));
  for (int I = 0; I != Samples; ++I) {
    double Pos = static_cast<double>(I) * (Segment.size() - 1) /
                 std::max(1, Samples - 1);
    Out[static_cast<size_t>(I)] = *Segment[static_cast<size_t>(Pos)];
  }
  return Out;
}

} // namespace

std::vector<double>
wbt::drone::behaviorDistancePerMode(const FlightTrace &A,
                                    const FlightTrace &B) {
  const int Samples = 60;
  std::vector<double> Out(NumFlightModes, -1.0);
  for (int M = 0; M != NumFlightModes; ++M) {
    std::vector<Motors> SA = resampleMode(A, static_cast<FlightMode>(M),
                                          Samples);
    std::vector<Motors> SB = resampleMode(B, static_cast<FlightMode>(M),
                                          Samples);
    if (SA.empty() && SB.empty())
      continue; // neither flight used this mode
    if (SA.empty() || SB.empty()) {
      // A controller that never reaches a mode the other flies is
      // maximally wrong there.
      Out[static_cast<size_t>(M)] = 1.0;
      continue;
    }
    double Sum = 0.0;
    for (int I = 0; I != Samples; ++I)
      for (int W = 0; W != 4; ++W) {
        double D = SA[static_cast<size_t>(I)][static_cast<size_t>(W)] -
                   SB[static_cast<size_t>(I)][static_cast<size_t>(W)];
        Sum += D * D;
      }
    Out[static_cast<size_t>(M)] = std::sqrt(Sum / (Samples * 4.0));
  }
  return Out;
}

double wbt::drone::behaviorDistance(const FlightTrace &A,
                                    const FlightTrace &B) {
  std::vector<double> PerMode = behaviorDistancePerMode(A, B);
  double Sum = 0.0;
  int Count = 0;
  for (double D : PerMode)
    if (D >= 0) {
      Sum += D;
      ++Count;
    }
  return Count ? Sum / Count : 1.0;
}
