//===- strategy/SamplingStrategy.h - cbStrgy implementations ----*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling strategies — the cbStrgy callback of the paper's
/// @sampling(n, cbStrgy) primitive. A strategy decides, for every sampling
/// run and every tuned variable inside the region, which concrete value
/// the run observes. The paper ships RAND and MCMC (Sec. IV-C); we add a
/// stratified LHS strategy as an extension. Strategies may be feedback
/// driven: the engine reports each run's score back through feedback().
///
/// All strategies are safe to call from concurrently executing sampling
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef WBT_STRATEGY_SAMPLINGSTRATEGY_H
#define WBT_STRATEGY_SAMPLINGSTRATEGY_H

#include "param/Distribution.h"

#include <memory>
#include <string>

namespace wbt {

/// Decides the sampled value of each tuned variable for each run.
class SamplingStrategy {
public:
  virtual ~SamplingStrategy();

  /// Value for variable \p Name in sampling run \p RunIdx (0-based).
  /// \p R is the run's private deterministic stream.
  virtual double draw(int RunIdx, const std::string &Name,
                      const Distribution &D, Rng &R) = 0;

  /// Reports the score of a finished run (higher is better). Strategies
  /// that are not feedback driven ignore this.
  virtual void feedback(int RunIdx, double Score);

  /// Strategy name as printed in Table I ("RAND", "MCMC", ...).
  virtual std::string name() const = 0;
};

/// Independent draws from each variable's distribution (RAND).
std::unique_ptr<SamplingStrategy> makeRandomStrategy();

/// Markov-chain Monte-Carlo random walk (MCMC): each run proposes a
/// Gaussian perturbation of the best accepted point so far; feedback()
/// performs the Metropolis accept/reject with temperature \p Temperature.
std::unique_ptr<SamplingStrategy> makeMcmcStrategy(double Temperature = 1.0,
                                                   double Scale = 0.15);

/// Latin-hypercube stratified sampling over \p TotalRuns runs: every
/// variable's range is cut into TotalRuns strata and each run lands in a
/// distinct stratum per variable (extension beyond the paper).
std::unique_ptr<SamplingStrategy> makeLatinHypercubeStrategy(int TotalRuns,
                                                             uint64_t Seed);

/// Stratum of sampling run \p RunIdx for variable \p Name among \p N
/// strata: an affine permutation of [0, N) whose multiplier (forced
/// coprime to N) and offset derive from the variable name, so different
/// variables visit the strata in different orders while each run still
/// covers every variable's range exactly once across N runs. Shared by
/// the fork runtime's Stratified regions (proc/Runtime.cpp), where
/// worker-pool mode keys it on the *claimed sample index* rather than the
/// worker index so lease distribution cannot change coverage.
uint64_t stratifiedStratum(const std::string &Name, uint64_t RunIdx,
                           uint64_t N);

} // namespace wbt

#endif // WBT_STRATEGY_SAMPLINGSTRATEGY_H
