//===- strategy/SamplingStrategy.cpp - cbStrgy implementations -----------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//

#include "strategy/SamplingStrategy.h"

#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

using namespace wbt;

SamplingStrategy::~SamplingStrategy() = default;

void SamplingStrategy::feedback(int RunIdx, double Score) {
  (void)RunIdx;
  (void)Score;
}

namespace {

class RandomStrategy : public SamplingStrategy {
public:
  double draw(int RunIdx, const std::string &Name, const Distribution &D,
              Rng &R) override {
    (void)RunIdx;
    (void)Name;
    return D.sample(R);
  }

  std::string name() const override { return "RAND"; }
};

/// Metropolis random walk. The chain state is the per-variable map of the
/// last *accepted* values. Each run's proposal perturbs the accepted point;
/// feedback() accepts a run's proposal if it improves, or with probability
/// exp((Score - Accepted) / T) otherwise. Concurrent runs act as parallel
/// proposals from the same chain state, which is the standard way to batch
/// MCMC sampling.
class McmcStrategy : public SamplingStrategy {
public:
  McmcStrategy(double Temperature, double Scale)
      : Temperature(Temperature), Scale(Scale) {}

  double draw(int RunIdx, const std::string &Name, const Distribution &D,
              Rng &R) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    // Burn-in: the first few runs draw independently so the chain does
    // not inherit an unlucky corner start.
    bool Explore = DrawsSeen[Name]++ < BurnIn;
    auto It = Accepted.find(Name);
    double V = (Explore || It == Accepted.end())
                   ? D.sample(R)
                   : D.perturb(It->second, R, Scale);
    if (It == Accepted.end())
      Accepted.emplace(Name, V);
    Proposals[RunIdx][Name] = V;
    return V;
  }

  void feedback(int RunIdx, double Score) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Proposals.find(RunIdx);
    if (It == Proposals.end())
      return;
    bool Accept = Score >= AcceptedScore;
    if (!Accept && Temperature > 0) {
      double P = std::exp((Score - AcceptedScore) / Temperature);
      Accept = FeedbackRng.flip(P);
    }
    if (Accept) {
      for (const auto &[Name, Value] : It->second)
        Accepted[Name] = Value;
      AcceptedScore = Score;
    }
    Proposals.erase(It);
  }

  std::string name() const override { return "MCMC"; }

private:
  static constexpr int BurnIn = 6;

  double Temperature;
  double Scale;
  std::mutex Mutex;
  std::map<std::string, int> DrawsSeen;
  std::map<std::string, double> Accepted;
  double AcceptedScore = -std::numeric_limits<double>::infinity();
  std::map<int, std::map<std::string, double>> Proposals;
  Rng FeedbackRng{0x5eed0c0cULL};
};

/// One random stratum permutation per variable; run I of variable V lands
/// uniformly inside stratum Perm_V[I mod TotalRuns].
class LatinHypercubeStrategy : public SamplingStrategy {
public:
  LatinHypercubeStrategy(int TotalRuns, uint64_t Seed)
      : TotalRuns(TotalRuns < 1 ? 1 : TotalRuns), PermRng(Seed) {}

  double draw(int RunIdx, const std::string &Name, const Distribution &D,
              Rng &R) override {
    int Stratum;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      std::vector<int> &Perm = Perms[Name];
      if (Perm.empty()) {
        Perm.resize(TotalRuns);
        for (int I = 0; I != TotalRuns; ++I)
          Perm[I] = I;
        PermRng.shuffle(Perm);
      }
      Stratum = Perm[static_cast<size_t>(RunIdx) % Perm.size()];
    }
    double U = (Stratum + R.uniform(0.0, 1.0)) / TotalRuns;
    double Lo = D.lo(), Hi = D.hi();
    if (D.kind() == Distribution::Kind::LogUniform)
      return std::exp(std::log(Lo) + U * (std::log(Hi) - std::log(Lo)));
    if (D.kind() == Distribution::Kind::UniformInt)
      return std::floor(Lo + U * (Hi - Lo + 1.0));
    return Lo + U * (Hi - Lo);
  }

  std::string name() const override { return "LHS"; }

private:
  int TotalRuns;
  std::mutex Mutex;
  std::map<std::string, std::vector<int>> Perms;
  Rng PermRng;
};

} // namespace

std::unique_ptr<SamplingStrategy> wbt::makeRandomStrategy() {
  return std::make_unique<RandomStrategy>();
}

std::unique_ptr<SamplingStrategy> wbt::makeMcmcStrategy(double Temperature,
                                                        double Scale) {
  return std::make_unique<McmcStrategy>(Temperature, Scale);
}

std::unique_ptr<SamplingStrategy>
wbt::makeLatinHypercubeStrategy(int TotalRuns, uint64_t Seed) {
  return std::make_unique<LatinHypercubeStrategy>(TotalRuns, Seed);
}

uint64_t wbt::stratifiedStratum(const std::string &Name, uint64_t RunIdx,
                                uint64_t N) {
  if (N == 0)
    return 0;
  // FNV-1a of the variable name seeds the permutation parameters.
  uint64_t H = 1469598103934665603ULL;
  for (char C : Name)
    H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ULL;
  // An affine map I -> (I * Mult + Offset) mod N permutes [0, N) exactly
  // when gcd(Mult, N) == 1; degrade to the identity multiplier otherwise.
  uint64_t Mult = (H | 1) % N;
  uint64_t A = Mult, B = N;
  while (B) {
    uint64_t T = A % B;
    A = B;
    B = T;
  }
  if (Mult == 0 || A != 1)
    Mult = 1;
  uint64_t Offset = (H >> 17) % N;
  return ((RunIdx % N) * Mult + Offset) % N;
}
