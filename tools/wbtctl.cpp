//===- tools/wbtctl.cpp - wbtuned control client --------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Submits and manages tuning jobs on a running wbtuned. Output is
// line-oriented and parseable (CI asserts on it):
//
//   wbtctl --socket S submit --name canny [--regions N] [--samples N]
//          [--priority N] [--seed N] [--stratified] [--inject PLAN]
//          [--wait]                  -> "job <id> submitted" and, with
//                                       --wait, the same line "job <id>
//                                       <state> regions <n> best <hex>
//                                       hash <hex>" run-local prints
//   wbtctl --socket S wait <id>      -> "job <id> <state> regions <n>
//                                       best <hex> hash <hex>"
//   wbtctl --socket S status         -> one "job ..." row per job
//   wbtctl --socket S cancel <id>    -> "job <id> canceled" | "no such job"
//   wbtctl --socket S drain          -> "draining <n> jobs"
//   wbtctl run-local --name x ...    -> no daemon: same workload inline,
//                                       same result line (the bitwise
//                                       reference for daemon runs)
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/JobRunner.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace wbt;
using namespace wbt::daemon;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH <submit|wait|status|cancel|drain> [args]\n"
      "       %s run-local --name NAME [job options]\n"
      "job options: --name N --regions N --samples N --priority N\n"
      "             --seed N --stratified --inject PLAN\n"
      "submit also takes --wait (block until the job finishes);\n"
      "run-local takes --workers N (pool size of the local run).\n",
      Argv0, Argv0);
}

void printResult(uint64_t Id, const char *State, const JobResult &R) {
  std::printf("job %" PRIu64 " %s regions %u best 0x%016" PRIx64
              " hash 0x%016" PRIx64 "\n",
              Id, State, R.RegionsDone, R.BestBits, R.AggHash);
}

/// Job options shared by submit and run-local. Returns false on an
/// unrecognized argument.
bool parseJobArgs(int Argc, char **Argv, int &I, JobSpec &Spec,
                  uint32_t &Workers, bool &Wait) {
  for (; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 != Argc ? Argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (A == "--name" && (V = Value()))
      Spec.Name = V;
    else if (A == "--regions" && (V = Value()))
      Spec.Regions = static_cast<uint32_t>(std::atoi(V));
    else if (A == "--samples" && (V = Value()))
      Spec.Samples = static_cast<uint32_t>(std::atoi(V));
    else if (A == "--priority" && (V = Value()))
      Spec.Priority = static_cast<uint32_t>(std::atoi(V));
    else if (A == "--seed" && (V = Value()))
      Spec.Seed = std::strtoull(V, nullptr, 10);
    else if (A == "--stratified")
      Spec.Kind = 1;
    else if (A == "--inject" && (V = Value()))
      Spec.InjectPlan = V;
    else if (A == "--workers" && (V = Value()))
      Workers = static_cast<uint32_t>(std::atoi(V));
    else if (A == "--wait")
      Wait = true;
    else
      return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket, Cmd;
  int I = 1;
  for (; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--socket" && I + 1 != Argc) {
      Socket = Argv[++I];
    } else if (A == "-h" || A == "--help") {
      usage(Argv[0]);
      return 0;
    } else {
      Cmd = A;
      ++I;
      break;
    }
  }
  if (Cmd.empty()) {
    usage(Argv[0]);
    return 2;
  }

  if (Cmd == "run-local") {
    JobSpec Spec;
    uint32_t Workers = 0;
    bool Wait = false;
    if (!parseJobArgs(Argc, Argv, I, Spec, Workers, Wait) ||
        Spec.Name.empty()) {
      usage(Argv[0]);
      return 2;
    }
    JobResult R = runJobLocal(Spec, Workers);
    printResult(0, "done", R);
    return 0;
  }

  if (Socket.empty()) {
    usage(Argv[0]);
    return 2;
  }
  CtlClient Ctl;
  if (!Ctl.connect(Socket)) {
    std::fprintf(stderr, "wbtctl: cannot connect to %s: %s\n",
                 Socket.c_str(), std::strerror(errno));
    return 1;
  }

  if (Cmd == "submit") {
    JobSpec Spec;
    uint32_t Workers = 0;
    bool Wait = false;
    if (!parseJobArgs(Argc, Argv, I, Spec, Workers, Wait) ||
        Spec.Name.empty()) {
      usage(Argv[0]);
      return 2;
    }
    uint64_t Id = 0;
    std::string Error;
    if (!Ctl.submit(Spec, Id, Error)) {
      std::fprintf(stderr, "wbtctl: submit refused: %s\n",
                   Error.empty() ? "connection lost" : Error.c_str());
      return 1;
    }
    std::printf("job %" PRIu64 " submitted\n", Id);
    std::fflush(stdout);
    if (!Wait)
      return 0;
    JobState State;
    JobResult R;
    if (!Ctl.wait(Id, State, R)) {
      std::fprintf(stderr, "wbtctl: wait failed: daemon gone\n");
      return 1;
    }
    printResult(Id, jobStateName(State), R);
    return State == JobState::Done ? 0 : 3;
  }

  if (Cmd == "wait") {
    if (I == Argc) {
      usage(Argv[0]);
      return 2;
    }
    uint64_t Id = std::strtoull(Argv[I], nullptr, 10);
    JobState State;
    JobResult R;
    if (!Ctl.wait(Id, State, R)) {
      std::fprintf(stderr, "wbtctl: wait failed: daemon gone\n");
      return 1;
    }
    printResult(Id, jobStateName(State), R);
    return State == JobState::Done ? 0 : 3;
  }

  if (Cmd == "status") {
    StatusMsg M;
    if (!Ctl.status(M)) {
      std::fprintf(stderr, "wbtctl: status failed\n");
      return 1;
    }
    std::printf("daemon budget %u draining %u metrics %u jobs %zu\n",
                M.Budget, M.Draining, M.MetricsPort, M.Jobs.size());
    for (const JobRow &J : M.Jobs) {
      std::printf("job %" PRIu64 " %s name %s cap %u pid %d regions %u"
                  " best 0x%016" PRIx64 " hash 0x%016" PRIx64 "\n",
                  J.Id, jobStateName(J.State), J.Name.c_str(), J.Cap,
                  J.RunnerPid, J.Result.RegionsDone, J.Result.BestBits,
                  J.Result.AggHash);
    }
    return 0;
  }

  if (Cmd == "cancel") {
    if (I == Argc) {
      usage(Argv[0]);
      return 2;
    }
    uint64_t Id = std::strtoull(Argv[I], nullptr, 10);
    bool Found = false;
    if (!Ctl.cancel(Id, Found)) {
      std::fprintf(stderr, "wbtctl: cancel failed\n");
      return 1;
    }
    if (Found)
      std::printf("job %" PRIu64 " canceled\n", Id);
    else
      std::printf("no such job\n");
    return Found ? 0 : 3;
  }

  if (Cmd == "drain") {
    uint32_t Left = 0;
    if (!Ctl.drain(Left)) {
      std::fprintf(stderr, "wbtctl: drain failed\n");
      return 1;
    }
    std::printf("draining %u jobs\n", Left);
    return 0;
  }

  usage(Argv[0]);
  return 2;
}
