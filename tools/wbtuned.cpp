//===- tools/wbtuned.cpp - Multi-tenant tuning daemon entry point ---------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Long-lived daemon serving concurrent tuning jobs over a Unix control
// socket (submit with wbtctl). One global worker budget is fair-shared
// across tenants by remaining-work-weighted shares; per-job metrics are
// served with a `job` label from the optional Prometheus endpoint.
// SIGTERM/SIGINT drain: in-flight jobs finish, new admissions are
// refused, the socket is unlinked, exit 0.
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "net/HostPort.h"

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

volatile std::sig_atomic_t GDrain = 0;

void onDrainSignal(int) { GDrain = 1; }

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH     control socket path (required)\n"
               "  --budget N        global worker budget "
               "(default: cores - 1)\n"
               "  --max-jobs N      per-job metrics page slots "
               "(default 64)\n"
               "  --metrics IP:PORT Prometheus scrape endpoint "
               "(port 0 = kernel-picked, printed on stdout)\n"
               "  -h                this help\n",
               Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  wbt::daemon::DaemonOptions Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 != Argc ? Argv[++I] : nullptr;
    };
    if (A == "--socket") {
      const char *V = Value();
      if (!V)
        return usage(Argv[0]), 2;
      Opts.SocketPath = V;
    } else if (A == "--budget") {
      const char *V = Value();
      if (!V)
        return usage(Argv[0]), 2;
      Opts.Budget = static_cast<uint32_t>(std::atoi(V));
    } else if (A == "--max-jobs") {
      const char *V = Value();
      if (!V)
        return usage(Argv[0]), 2;
      Opts.MaxJobs = static_cast<uint32_t>(std::atoi(V));
    } else if (A == "--metrics") {
      const char *V = Value();
      if (!V)
        return usage(Argv[0]), 2;
      std::string Host;
      uint16_t Port = 0;
      if (!wbt::net::parseHostPort(V, Host, Port)) {
        std::fprintf(stderr, "wbtuned: bad metrics address '%s'\n", V);
        return 2;
      }
      Opts.MetricsAddress = V;
    } else if (A == "-h" || A == "--help") {
      usage(Argv[0]);
      return 0;
    } else {
      usage(Argv[0]);
      return 2;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage(Argv[0]);
    return 2;
  }

  Opts.DrainSignal = &GDrain;
  struct sigaction Sa{};
  Sa.sa_handler = onDrainSignal;
  // No SA_RESTART: the poll loop must wake to notice the drain.
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);

  wbt::daemon::Daemon D(Opts);
  if (!D.start())
    return 1;
  // Parseable readiness line: tests and CI discover the (possibly
  // kernel-picked) metrics port from it.
  std::printf("wbtuned ready socket %s metrics %u\n",
              Opts.SocketPath.c_str(), D.metricsPort());
  std::fflush(stdout);
  return D.run();
}
