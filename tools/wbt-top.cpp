//===- tools/wbt-top.cpp - Terminal viewer for the metrics endpoint -------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Scrapes a running tuner's metrics endpoint (RuntimeOptions::
// MetricsAddress / WBT_METRICS) and renders a one-screen summary:
// regions resolved and regions/s, crash/timeout/fallback counters,
// lease traffic, net bytes, and the best score so far. One-shot by
// default; `-w [sec]` redraws like top(1). `--raw` dumps the exposition
// text verbatim (for piping into other tooling).
//
// Deliberately freestanding: plain sockets and stdio, no runtime
// libraries — it must be able to watch any wbtuner process, including
// one built from a different checkout.
//
//===----------------------------------------------------------------------===//

#include "net/HostPort.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

namespace {

struct Options {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  bool Watch = false;
  double IntervalSec = 1.0;
  bool Raw = false;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <ip:port>\n"
               "  -w [sec]   watch mode: redraw every sec seconds (default 1)\n"
               "  --raw      print the raw exposition text and exit\n"
               "  -h         this help\n"
               "The address is what the tuner was given via\n"
               "RuntimeOptions::MetricsAddress or WBT_METRICS.\n",
               Argv0);
}

bool parseAddr(const std::string &Addr, Options &Opt) {
  // Strict shared parser: "host:9464x" and "host:" used to slip
  // through here as ports 9464 and 0.
  return wbt::net::parseHostPort(Addr, Opt.Host, Opt.Port) && Opt.Port != 0;
}

/// One full scrape: connect, GET /metrics, read to EOF, strip headers.
/// Empty string on any failure (errno describes the first one).
std::string scrape(const Options &Opt) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return {};
  sockaddr_in Sa{};
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Opt.Port);
  if (::inet_pton(AF_INET, Opt.Host.c_str(), &Sa.sin_addr) != 1 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return {};
  }
  std::string Req = "GET /metrics HTTP/1.0\r\nHost: " + Opt.Host + "\r\n\r\n";
  for (size_t Off = 0; Off < Req.size();) {
    ssize_t W = ::send(Fd, Req.data() + Off, Req.size() - Off, 0);
    if (W <= 0) {
      ::close(Fd);
      return {};
    }
    Off += static_cast<size_t>(W);
  }
  std::string Resp;
  char Buf[4096];
  for (;;) {
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      break;
    Resp.append(Buf, static_cast<size_t>(R));
  }
  ::close(Fd);
  size_t Split = Resp.find("\r\n\r\n");
  if (Split == std::string::npos)
    return {};
  return Resp.substr(Split + 4);
}

/// Parses exposition text into name -> value, skipping comment lines and
/// dropping any {labels} suffix (bucket lines keep only the last-seen
/// value, which is fine: the summary reads scalars and _p50 gauges).
std::map<std::string, double> parseMetrics(const std::string &Body) {
  std::map<std::string, double> Out;
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t Eol = Body.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Body.size();
    std::string Line = Body.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    if (Space == std::string::npos)
      continue;
    std::string Name = Line.substr(0, Space);
    size_t Brace = Name.find('{');
    if (Brace != std::string::npos)
      Name.resize(Brace);
    Out[Name] = std::strtod(Line.c_str() + Space + 1, nullptr);
  }
  return Out;
}

double get(const std::map<std::string, double> &M, const char *Key) {
  auto It = M.find(Key);
  return It == M.end() ? 0.0 : It->second;
}

void render(const std::map<std::string, double> &M, const Options &Opt) {
  double Elapsed = get(M, "wbt_elapsed_sec");
  double Regions = get(M, "wbt_regions_resolved");
  std::printf("wbt-top — %s:%u   up %.1fs\n\n", Opt.Host.c_str(), Opt.Port,
              Elapsed);
  std::printf("  regions    %12.0f   (%.1f/s)   region p50 %.0f us\n", Regions,
              Elapsed > 0 ? Regions / Elapsed : 0.0,
              get(M, "wbt_region_latency_p50_us"));
  std::printf("  commits    %12.0f   fallbacks %.0f   fork p50 %.0f us   "
              "commit p50 %.0f us\n",
              get(M, "wbt_shm_commits"), get(M, "wbt_file_fallbacks"),
              get(M, "wbt_fork_latency_p50_us"),
              get(M, "wbt_commit_latency_p50_us"));
  std::printf("  failures   crashed %.0f   timed-out %.0f   fork-fail %.0f   "
              "retries %.0f\n",
              get(M, "wbt_crashed"), get(M, "wbt_timed_out"),
              get(M, "wbt_fork_failures"), get(M, "wbt_retries"));
  std::printf("  leases     remote %.0f   reclaimed %.0f   returned %.0f\n",
              get(M, "wbt_net_remote_leases"), get(M, "wbt_lease_reclaims"),
              get(M, "wbt_net_leases_returned"));
  std::printf("  net        agents %.0f   frames %.0f   in %.0f B   "
              "out %.0f B   trace-recs %.0f\n",
              get(M, "wbt_net_agents"), get(M, "wbt_net_frames"),
              get(M, "wbt_net_bytes_in"), get(M, "wbt_net_bytes_out"),
              get(M, "wbt_net_recv_trace"));
  std::printf("  trace      events %.0f   drops %.0f\n",
              get(M, "wbt_trace_events"), get(M, "wbt_trace_drops"));
  double Noted = get(M, "wbt_scores_noted");
  if (Noted > 0)
    std::printf("  score      last %.6g   min %.6g   max %.6g   (%.0f noted)\n",
                get(M, "wbt_score_last"), get(M, "wbt_score_min"),
                get(M, "wbt_score_max"), Noted);
  else
    std::printf("  score      (none noted yet)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  std::string Addr;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "-h" || A == "--help") {
      usage(Argv[0]);
      return 0;
    }
    if (A == "--raw") {
      Opt.Raw = true;
      continue;
    }
    if (A == "-w") {
      Opt.Watch = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-') {
        double S = std::strtod(Argv[I + 1], nullptr);
        if (S > 0) {
          Opt.IntervalSec = S;
          ++I;
        }
      }
      continue;
    }
    Addr = A;
  }
  if (Addr.empty() || !parseAddr(Addr, Opt)) {
    usage(Argv[0]);
    return 2;
  }
  for (;;) {
    std::string Body = scrape(Opt);
    if (Body.empty()) {
      std::fprintf(stderr, "wbt-top: cannot scrape %s:%u: %s\n",
                   Opt.Host.c_str(), Opt.Port, std::strerror(errno));
      return 1;
    }
    if (Opt.Raw) {
      std::fwrite(Body.data(), 1, Body.size(), stdout);
      return 0;
    }
    if (Opt.Watch)
      std::printf("\x1b[H\x1b[2J"); // home + clear, like top(1)
    render(parseMetrics(Body), Opt);
    std::fflush(stdout);
    if (!Opt.Watch)
      return 0;
    ::usleep(static_cast<useconds_t>(Opt.IntervalSec * 1e6));
  }
}
