//===- bench/bench_svm.cpp - Paper Figs. 17, 18, 19 ------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 17: training/testing error of the tuned SVM with and without the
//          engine's built-in cross-validation, over 10 datasets — the
//          overfitting demonstration.
// Fig. 18: testing error on 10 datasets, no-tuning / OpenTuner / WBTuner.
// Fig. 19: error-over-time for the best/worst datasets.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace wbt::apps;
using namespace wbtbench;

int main() {
  const int NumDatasets = 10;

  //===------------------------------------------------------------------===//
  // Fig. 17: with vs without cross-validation.
  //===------------------------------------------------------------------===//
  std::printf("=== Fig. 17: tuned SVM train/test error with and without "
              "cross-validation ===\n");
  std::printf("%-8s | %10s %10s | %10s %10s\n", "dataset", "noCV-train",
              "noCV-test", "CV-train", "CV-test");
  double SumNoCvTrain = 0, SumNoCvTest = 0, SumCvTrain = 0, SumCvTest = 0;
  for (int I = 0; I != NumDatasets; ++I) {
    std::unique_ptr<TunedApp> NoCv = makeSvmAppNoCv();
    std::unique_ptr<TunedApp> WithCv = makeSvmApp();
    NoCv->loadDataset(I);
    WithCv->loadDataset(I);
    NoCv->whiteBoxTune(1, 53 + I);
    WithCv->whiteBoxTune(1, 53 + I);
    auto [NoCvTrain, NoCvTest] = svmLastErrors(*NoCv);
    auto [CvTrain, CvTest] = svmLastErrors(*WithCv);
    std::printf("%-8d | %10.3f %10.3f | %10.3f %10.3f\n", I, NoCvTrain,
                NoCvTest, CvTrain, CvTest);
    SumNoCvTrain += NoCvTrain;
    SumNoCvTest += NoCvTest;
    SumCvTrain += CvTrain;
    SumCvTest += CvTest;
  }
  std::printf("%-8s | %10.3f %10.3f | %10.3f %10.3f\n", "mean",
              SumNoCvTrain / NumDatasets, SumNoCvTest / NumDatasets,
              SumCvTrain / NumDatasets, SumCvTest / NumDatasets);
  std::printf("(paper: without CV the training error collapses while the "
              "testing error stays high)\n\n");

  //===------------------------------------------------------------------===//
  // Fig. 18: scores on 10 datasets.
  //===------------------------------------------------------------------===//
  std::printf("=== Fig. 18: SVM testing error on %d datasets (lower is "
              "better) ===\n",
              NumDatasets);
  std::printf("%-8s %10s %10s %10s\n", "dataset", "no-tune", "OpenTuner",
              "WBTuner");
  std::unique_ptr<TunedApp> App = makeSvmApp();
  double SumNative = 0, SumOt = 0, SumWb = 0;
  int BestData = 0, WorstData = 0;
  double BestGain = -1e18, WorstGain = 1e18;
  for (int I = 0; I != NumDatasets; ++I) {
    App->loadDataset(I);
    double Native = App->nativeQuality();
    TuneOutcome W = App->whiteBoxTune(1, 59 + I);
    TuneOutcome O = App->blackBoxTune(W.Seconds, 1, 61 + I);
    std::printf("%-8d %10.3f %10.3f %10.3f\n", I, Native, O.Quality,
                W.Quality);
    SumNative += Native;
    SumOt += O.Quality;
    SumWb += W.Quality;
    double Gain = O.Quality - W.Quality;
    if (Gain > BestGain) {
      BestGain = Gain;
      BestData = I;
    }
    if (Gain < WorstGain) {
      WorstGain = Gain;
      WorstData = I;
    }
  }
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "mean", SumNative / NumDatasets,
              SumOt / NumDatasets, SumWb / NumDatasets);
  std::printf("improvement over no-tuning: OpenTuner %.0f%%, WBTuner %.0f%% "
              "(paper: 35%% vs 47%%)\n\n",
              100 * (SumNative - SumOt) / SumNative,
              100 * (SumNative - SumWb) / SumNative);

  //===------------------------------------------------------------------===//
  // Fig. 19: error vs time.
  //===------------------------------------------------------------------===//
  std::printf("=== Fig. 19: error vs tuning-time ===\n");
  for (int Data : {BestData, WorstData}) {
    App->loadDataset(Data);
    TuneOutcome W = App->whiteBoxTune(1, 59 + Data);
    std::printf("dataset %d (%s): WBTuner %.3f @ %.3fs\n", Data,
                Data == BestData ? "max improvement" : "min improvement",
                W.Quality, W.Seconds);
    std::printf("%-12s %-12s\n", "OT budget(x)", "OT error");
    for (double Frac : {0.5, 1.0, 2.0, 4.0}) {
      TuneOutcome O = App->blackBoxTune(Frac * W.Seconds, 1, 61 + Data);
      std::printf("%-12.1f %-12.3f\n", Frac, O.Quality);
    }
  }
  return 0;
}
