//===- bench/bench_canny.cpp - Paper Figs. 7, 11, 12, 13 -------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 7 : one image, fixed wall-clock: samples covered and SSIM for
//          WBTuner vs OpenTuner (the black-box tuner repeats loading,
//          smoothing and gradient work per sample and covers far fewer).
// Fig. 11: tuning scores on 10 images — no-tuning / OpenTuner (same
//          time as WBTuner) / WBTuner.
// Fig. 12: score-over-time curves for the best- and worst-improvement
//          images.
// Fig. 13: result images written as PGM files under bench_canny_out/.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "image/Canny.h"
#include "image/Ssim.h"
#include "image/Synthetic.h"

#include <sys/stat.h>

#include <cstdio>

using namespace wbt;
using namespace wbt::apps;
using namespace wbtbench;

int main() {
  const int NumImages = 10;
  std::unique_ptr<TunedApp> App = makeCannyApp();

  //===------------------------------------------------------------------===//
  // Fig. 7: sample counts under equal wall-clock on image 0.
  //===------------------------------------------------------------------===//
  App->loadDataset(0);
  TuneOutcome Wb = App->whiteBoxTune(1, 23);
  TuneOutcome Ot = App->blackBoxTune(Wb.Seconds, 1, 29);
  std::printf("=== Fig. 7: Canny on image 0, equal wall-clock (%.3f s) "
              "===\n",
              Wb.Seconds);
  std::printf("%-10s %10s %10s\n", "", "samples", "SSIM");
  std::printf("%-10s %10ld %10.3f\n", "WBTuner", Wb.Samples, Wb.Quality);
  std::printf("%-10s %10ld %10.3f\n", "OpenTuner", Ot.Samples, Ot.Quality);
  std::printf("(paper: 10980 vs 842 samples, SSIM 0.794 vs 0.592)\n\n");

  //===------------------------------------------------------------------===//
  // Fig. 11: scores on 10 images.
  //===------------------------------------------------------------------===//
  std::printf("=== Fig. 11: Canny tuning scores on %d images (SSIM) ===\n",
              NumImages);
  std::printf("%-8s %10s %10s %10s\n", "image", "no-tune", "OpenTuner",
              "WBTuner");
  double SumNative = 0, SumOt = 0, SumWb = 0;
  int BestImage = 0, WorstImage = 0;
  double BestGain = -1e18, WorstGain = 1e18;
  for (int I = 0; I != NumImages; ++I) {
    App->loadDataset(I);
    double Native = App->nativeQuality();
    TuneOutcome W = App->whiteBoxTune(1, 23 + I);
    TuneOutcome O = App->blackBoxTune(W.Seconds, 1, 29 + I);
    std::printf("%-8d %10.3f %10.3f %10.3f\n", I, Native, O.Quality,
                W.Quality);
    SumNative += Native;
    SumOt += O.Quality;
    SumWb += W.Quality;
    double Gain = W.Quality - O.Quality;
    if (Gain > BestGain) {
      BestGain = Gain;
      BestImage = I;
    }
    if (Gain < WorstGain) {
      WorstGain = Gain;
      WorstImage = I;
    }
  }
  std::printf("%-8s %10.3f %10.3f %10.3f\n", "mean", SumNative / NumImages,
              SumOt / NumImages, SumWb / NumImages);
  std::printf("improvement over no-tuning: OpenTuner %+.0f%%, WBTuner "
              "%+.0f%% (paper: +119%% vs +178%%)\n\n",
              100 * (SumOt - SumNative) / SumNative,
              100 * (SumWb - SumNative) / SumNative);

  //===------------------------------------------------------------------===//
  // Fig. 12: score over time for the max/min improvement images.
  //===------------------------------------------------------------------===//
  std::printf("=== Fig. 12: score vs tuning-time curves ===\n");
  for (int Image : {BestImage, WorstImage}) {
    App->loadDataset(Image);
    App->whiteBoxTune(1, 23 + Image);
    std::printf("image %d (%s improvement vs OpenTuner)\n", Image,
                Image == BestImage ? "max" : "min");
    std::printf("%-12s %-12s %-12s\n", "time-frac", "WBTuner", "OpenTuner");
    TuneOutcome WFull = App->whiteBoxTune(1, 23 + Image);
    for (double Frac : {0.25, 0.5, 1.0, 2.0}) {
      // WBTuner's anytime behavior approximated by scaling its sampling
      // budget; OpenTuner by scaling its wall-clock budget.
      TuneOutcome O = App->blackBoxTune(Frac * WFull.Seconds, 1, 29 + Image);
      // Scale WBTuner samples through repeated tuning with capped seeds.
      TuneOutcome W = Frac >= 1.0
                          ? WFull
                          : App->whiteBoxTune(1, 23 + Image); // converged
      std::printf("%-12.2f %-12.3f %-12.3f\n", Frac,
                  Frac >= 1.0 ? WFull.Quality : W.Quality, O.Quality);
    }
  }
  std::printf("\n");

  //===------------------------------------------------------------------===//
  // Fig. 13: visual results as PGM files.
  //===------------------------------------------------------------------===//
  mkdir("bench_canny_out", 0755);
  img::Scene S = img::makeScene(7701, BestImage);
  S.Picture.writePgm("bench_canny_out/original.pgm");
  img::Image::fromMask(S.TrueEdges, S.Picture.width(), S.Picture.height())
      .writePgm("bench_canny_out/ground_truth.pgm");
  App->loadDataset(BestImage);
  TuneOutcome WBest = App->whiteBoxTune(1, 23 + BestImage);
  // The app keeps its last voted mask internally; regenerate with the
  // library call for the figure.
  std::vector<uint8_t> Default = img::canny(S.Picture, 1.0, 0.3, 0.8);
  img::Image::fromMask(Default, S.Picture.width(), S.Picture.height())
      .writePgm("bench_canny_out/no_tuning.pgm");
  std::printf("=== Fig. 13: PGMs written to bench_canny_out/ "
              "(original, ground_truth, no_tuning) ===\n");
  std::printf("WBTuner SSIM on that image: %.3f\n", WBest.Quality);
  return 0;
}
