//===- bench/bench_sphinx.cpp - Paper Figs. 20, 21 -------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 20: correctly recognized utterances (out of 5) per speaker set —
//          no-tuning / OpenTuner / WBTuner, averaged over repetitions.
// Fig. 21: precision over tuning time for the best/worst sets.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace wbt::apps;
using namespace wbtbench;

int main() {
  const int NumSets = 10;
  const int Reps = 3; // the paper averages repeated runs
  std::unique_ptr<TunedApp> App = makeSphinxApp();

  std::printf("=== Fig. 20: Sphinx recognition on %d speaker sets "
              "(correct out of 5, averaged over %d runs) ===\n",
              NumSets, Reps);
  std::printf("%-8s %10s %10s %10s\n", "set", "no-tune", "OpenTuner",
              "WBTuner");
  double SumNative = 0, SumOt = 0, SumWb = 0;
  int BestSet = 0, WorstSet = 0;
  double BestGain = -1e18, WorstGain = 1e18;
  for (int I = 0; I != NumSets; ++I) {
    App->loadDataset(I);
    double Native = App->nativeQuality();
    double WbSum = 0, OtSum = 0, WbSecs = 0;
    for (int R = 0; R != Reps; ++R) {
      TuneOutcome W = App->whiteBoxTune(1, 67 + 13 * R + I);
      WbSum += W.Quality;
      WbSecs = W.Seconds;
      TuneOutcome O = App->blackBoxTune(W.Seconds, 1, 71 + 13 * R + I);
      OtSum += O.Quality;
    }
    double Wb = WbSum / Reps, Ot = OtSum / Reps;
    std::printf("%-8d %10.2f %10.2f %10.2f\n", I, Native, Ot, Wb);
    SumNative += Native;
    SumOt += Ot;
    SumWb += Wb;
    double Gain = Wb - Ot;
    if (Gain > BestGain) {
      BestGain = Gain;
      BestSet = I;
    }
    if (Gain < WorstGain) {
      WorstGain = Gain;
      WorstSet = I;
    }
    (void)WbSecs;
  }
  std::printf("%-8s %10.2f %10.2f %10.2f\n", "mean", SumNative / NumSets,
              SumOt / NumSets, SumWb / NumSets);
  std::printf("(paper: no-tune 2.7, OpenTuner 3.94, WBTuner ~4.7 of 5)\n\n");

  std::printf("=== Fig. 21: precision vs tuning time ===\n");
  for (int Set : {BestSet, WorstSet}) {
    App->loadDataset(Set);
    TuneOutcome W = App->whiteBoxTune(1, 67 + Set);
    std::printf("set %d (%s): WBTuner %.1f @ %.3fs\n", Set,
                Set == BestSet ? "max improvement" : "min improvement",
                W.Quality, W.Seconds);
    std::printf("%-12s %-12s\n", "OT budget(x)", "OT correct");
    for (double Frac : {0.5, 1.0, 2.0, 4.0}) {
      TuneOutcome O = App->blackBoxTune(Frac * W.Seconds, 1, 71 + Set);
      std::printf("%-12.1f %-12.1f\n", Frac, O.Quality);
    }
  }
  return 0;
}
