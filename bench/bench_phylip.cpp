//===- bench/bench_phylip.cpp - Paper Figs. 15, 16 -------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 15: Phylip tree errors on 10 datasets — no-tuning / OpenTuner
//          (escalation protocol) / WBTuner. Lower is better (distance
//          RMSE against the planted phylogeny).
// Fig. 16: error-over-time for the best/worst datasets.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace wbt::apps;
using namespace wbtbench;

int main() {
  const int NumDatasets = 10;
  std::unique_ptr<TunedApp> App = makePhylipApp();

  std::printf("=== Fig. 15: Phylip tuning scores on %d datasets "
              "(tree-distance RMSE, lower is better) ===\n",
              NumDatasets);
  std::printf("%-8s %12s %12s %12s\n", "dataset", "no-tune", "OpenTuner",
              "WBTuner");
  double SumNative = 0, SumOt = 0, SumWb = 0;
  int BestData = 0, WorstData = 0;
  double BestGain = -1e18, WorstGain = 1e18;
  for (int I = 0; I != NumDatasets; ++I) {
    App->loadDataset(I);
    double Native = App->nativeQuality();
    TuneOutcome W = App->whiteBoxTune(1, 43 + I);
    TuneOutcome O = App->blackBoxTune(W.Seconds, 1, 47 + I);
    std::printf("%-8d %12.4f %12.4f %12.4f\n", I, Native, O.Quality,
                W.Quality);
    SumNative += Native;
    SumOt += O.Quality;
    SumWb += W.Quality;
    double Gain = O.Quality - W.Quality; // positive = WBTuner better
    if (Gain > BestGain) {
      BestGain = Gain;
      BestData = I;
    }
    if (Gain < WorstGain) {
      WorstGain = Gain;
      WorstData = I;
    }
  }
  std::printf("%-8s %12.4f %12.4f %12.4f\n", "mean", SumNative / NumDatasets,
              SumOt / NumDatasets, SumWb / NumDatasets);
  std::printf("error reduction: vs no-tuning %.1fx, vs OpenTuner %.2fx "
              "(paper: 283x and 4.77x)\n\n",
              SumNative / SumWb, SumOt / SumWb);

  std::printf("=== Fig. 16: error vs tuning-time (equal-time OpenTuner at "
              "budget fractions; WBTuner converges at 1.0) ===\n");
  for (int Data : {BestData, WorstData}) {
    App->loadDataset(Data);
    TuneOutcome W = App->whiteBoxTune(1, 43 + Data);
    std::printf("dataset %d (%s improvement): WBTuner %.4f @ %.3fs\n", Data,
                Data == BestData ? "max" : "min", W.Quality, W.Seconds);
    std::printf("%-12s %-12s\n", "OT budget(x)", "OT error");
    for (double Frac : {0.5, 1.0, 2.0, 4.0}) {
      TuneOutcome O = App->blackBoxTune(Frac * W.Seconds, 1, 47 + Data);
      std::printf("%-12.1f %-12.4f\n", Frac, O.Quality);
    }
  }
  return 0;
}
