//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure benches: the paper's OpenTuner
/// escalation protocol ("gradually increased the timeout parameter until
/// it either reaches similar results as WBTuner (difference < 10%) or
/// could not after spending 10 times WBTuner's tuning time", Sec. V-A).
///
//===----------------------------------------------------------------------===//

#ifndef WBT_BENCH_BENCHUTIL_H
#define WBT_BENCH_BENCHUTIL_H

#include "apps/Apps.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wbtbench {

/// True when \p Candidate is within 10% of \p Target in the direction
/// that matters.
inline bool withinTenPercent(double Candidate, double Target,
                             bool LowerIsBetter) {
  double Slack = 0.1 * std::max(std::fabs(Target), 0.05);
  return LowerIsBetter ? Candidate <= Target + Slack
                       : Candidate >= Target - Slack;
}

struct EscalationResult {
  wbt::apps::TuneOutcome Outcome;
  /// Total black-box tuning seconds spent across escalations.
  double TotalSeconds = 0;
  bool TimedOut = false;
};

/// Runs the paper's escalation protocol against \p App.
inline EscalationResult escalateBlackBox(wbt::apps::TunedApp &App,
                                         double WhiteBoxSeconds,
                                         double WhiteBoxQuality,
                                         unsigned Workers, uint64_t Seed) {
  EscalationResult Res;
  double Budget = std::max(WhiteBoxSeconds, 0.01);
  const double Cap = 10.0 * std::max(WhiteBoxSeconds, 0.01);
  while (true) {
    wbt::apps::TuneOutcome Out = App.blackBoxTune(Budget, Workers, Seed);
    Res.TotalSeconds += Out.Seconds;
    Res.Outcome = Out;
    if (withinTenPercent(Out.Quality, WhiteBoxQuality, App.lowerIsBetter()))
      return Res;
    if (Res.TotalSeconds >= Cap) {
      Res.TimedOut = true;
      return Res;
    }
    Budget = std::min(2.0 * Budget, Cap - Res.TotalSeconds + 0.01);
  }
}

/// "12.3" or "t/o" column text.
inline std::string timeOrTimeout(const EscalationResult &R) {
  char Buf[32];
  if (R.TimedOut)
    return "t/o";
  std::snprintf(Buf, sizeof(Buf), "%.3f", R.TotalSeconds);
  return Buf;
}

} // namespace wbtbench

#endif // WBT_BENCH_BENCHUTIL_H
