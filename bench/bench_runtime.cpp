//===- bench/bench_runtime.cpp - Runtime micro-benchmarks ------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the tuner machinery itself: scheduler task
// throughput (Alg. 1 vs FIFO), aggregation strategies, sampling
// strategies, a full in-process pipeline per sample, and the fork
// runtime's aggregation-store backends (Files vs Shm: per-commit latency,
// tuning-side aggregation, and end-to-end region cost). These quantify
// the framework overhead that the paper's "reasonable overhead" claim
// rests on.
//
// `--json` additionally writes the results to BENCH_runtime.json at the
// repo root (the perf-trajectory artifact CI's bench-smoke step checks).
//
//===----------------------------------------------------------------------===//

#include "aggregate/Aggregators.h"
#include "core/Pipeline.h"
#include "obs/Metrics.h"
#include "proc/Runtime.h"
#include "proc/SharedControl.h"
#include "strategy/SamplingStrategy.h"

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

using namespace wbt;

namespace {

void BM_SchedulerThroughput(benchmark::State &State) {
  bool UseAlg1 = State.range(0) != 0;
  for (auto _ : State) {
    Scheduler::Options Opts;
    Opts.Workers = 4;
    Opts.UseAlg1 = UseAlg1;
    Scheduler S(Opts);
    std::atomic<long> Count{0};
    for (int I = 0; I != 1000; ++I)
      S.submitSampling(1000 - I, [&Count] { Count.fetch_add(1); });
    S.waitIdle();
    benchmark::DoNotOptimize(Count.load());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_MajorityVote(benchmark::State &State) {
  size_t Size = static_cast<size_t>(State.range(0));
  std::vector<uint8_t> Mask(Size, 1);
  for (auto _ : State) {
    VoteAccumulator Acc;
    for (int I = 0; I != 50; ++I)
      Acc.add(Mask);
    benchmark::DoNotOptimize(Acc.result(0.5));
  }
  State.SetBytesProcessed(State.iterations() * 50 * Size);
}
BENCHMARK(BM_MajorityVote)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_StrategyDraw(benchmark::State &State) {
  std::unique_ptr<SamplingStrategy> S =
      State.range(0) == 0   ? makeRandomStrategy()
      : State.range(0) == 1 ? makeMcmcStrategy()
                            : makeLatinHypercubeStrategy(1024, 7);
  Distribution D = Distribution::uniform(0.0, 1.0);
  Rng R(11);
  int Run = 0;
  for (auto _ : State) {
    double X = S->draw(Run, "x", D, R);
    S->feedback(Run, X);
    ++Run;
    benchmark::DoNotOptimize(X);
  }
}
BENCHMARK(BM_StrategyDraw)->Arg(0)->Arg(1)->Arg(2);

void BM_PipelinePerSample(benchmark::State &State) {
  // Cost of one engine-managed sampling run with a trivial body: the
  // framework overhead per sample.
  long Samples = State.range(0);
  for (auto _ : State) {
    Pipeline P;
    StageOptions O;
    O.NumSamples = static_cast<int>(Samples);
    P.addStage<double, double, double>(
        "s", O,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [](const double &, SampleContext &Ctx) -> std::optional<double> {
              double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
              Ctx.setScore(X);
              return X;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    RunOptions RO;
    RO.Workers = 4;
    RO.Seed = 5;
    benchmark::DoNotOptimize(P.run(std::any(0.0), RO));
  }
  State.SetItemsProcessed(State.iterations() * Samples);
}
BENCHMARK(BM_PipelinePerSample)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DedupVectors(benchmark::State &State) {
  Rng R(3);
  std::vector<std::vector<double>> Items;
  for (int I = 0; I != 64; ++I) {
    std::vector<double> V(32);
    for (double &X : V)
      X = R.uniform(0, 1);
    Items.push_back(V);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(dedupVectors(Items, 0.05));
}
BENCHMARK(BM_DedupVectors);

//===----------------------------------------------------------------------===//
// Fork-runtime aggregation store: Files vs Shm.
//===----------------------------------------------------------------------===//

constexpr int CommitBatch = 256;

/// Per-commit latency of the file backend: write(2) + rename(2) per
/// commit, the paper's Sec. III-B1 mechanism. Arg = payload bytes.
void BM_CommitFiles(benchmark::State &State) {
  size_t Payload = static_cast<size_t>(State.range(0));
  std::vector<uint8_t> Bytes(Payload, 0x5a);
  char Template[] = "/tmp/wbtuner-bench.XXXXXX";
  std::string Dir = mkdtemp(Template);
  for (auto _ : State)
    for (int I = 0; I != CommitBatch; ++I)
      writeFileBytes(Dir + "/x." + std::to_string(I), Bytes);
  State.SetItemsProcessed(State.iterations() * CommitBatch);
  for (int I = 0; I != CommitBatch; ++I)
    std::remove((Dir + "/x." + std::to_string(I)).c_str());
  rmdir(Dir.c_str());
}
BENCHMARK(BM_CommitFiles)->Arg(64)->Arg(4096);

/// Per-commit latency of the shared-memory slab: payload memcpy + one
/// release-store, no syscalls. Arg = payload bytes.
void BM_CommitShm(benchmark::State &State) {
  size_t Payload = static_cast<size_t>(State.range(0));
  std::vector<uint8_t> Bytes(Payload, 0x5a);
  proc::SlabConfig Slab;
  Slab.Records = CommitBatch;
  Slab.ArenaBytes = (Payload + 64) * CommitBatch;
  for (auto _ : State) {
    State.PauseTiming(); // fresh slab per batch (bump allocators)
    proc::SharedControl Ctl;
    Ctl.init(/*MaxPool=*/2, /*VoteSlots=*/16, /*UseScheduler=*/true, Slab);
    State.ResumeTiming();
    for (int I = 0; I != CommitBatch; ++I)
      benchmark::DoNotOptimize(
          Ctl.slabCommit(0, 1, "x", I, Bytes.data(), Bytes.size()));
  }
  State.SetItemsProcessed(State.iterations() * CommitBatch);
}
BENCHMARK(BM_CommitShm)->Arg(64)->Arg(4096);

/// Tuning-side one-shot aggregation cost over N pre-committed 8-byte
/// results: the open/read/close-per-sample storm vs one slab scan.
void BM_AggregateFiles(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  char Template[] = "/tmp/wbtuner-bench.XXXXXX";
  std::string Dir = mkdtemp(Template);
  for (int I = 0; I != N; ++I)
    writeFileBytes(Dir + "/x." + std::to_string(I),
                   proc::encodeDouble(static_cast<double>(I)));
  std::vector<uint8_t> Bytes;
  for (auto _ : State) {
    ScalarAccumulator Acc;
    for (int I = 0; I != N; ++I)
      if (readFileBytes(Dir + "/x." + std::to_string(I), Bytes))
        Acc.add(proc::decodeDouble(Bytes));
    benchmark::DoNotOptimize(Acc.mean());
  }
  State.SetItemsProcessed(State.iterations() * N);
  for (int I = 0; I != N; ++I)
    std::remove((Dir + "/x." + std::to_string(I)).c_str());
  rmdir(Dir.c_str());
}
BENCHMARK(BM_AggregateFiles)->Arg(32)->Arg(256);

void BM_AggregateShm(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  proc::SlabConfig Slab;
  Slab.Records = static_cast<size_t>(N);
  Slab.ArenaBytes = static_cast<size_t>(N) * 64;
  proc::SharedControl Ctl;
  Ctl.init(/*MaxPool=*/2, /*VoteSlots=*/16, /*UseScheduler=*/true, Slab);
  for (int I = 0; I != N; ++I) {
    std::vector<uint8_t> B = proc::encodeDouble(static_cast<double>(I));
    Ctl.slabCommit(0, 1, "x", I, B.data(), B.size());
  }
  for (auto _ : State) {
    ScalarAccumulator Acc;
    proc::SlabEntryView E;
    for (size_t I = 0, End = Ctl.slabAllocated(); I != End; ++I)
      if (Ctl.slabEntry(I, E)) {
        ByteReader R(E.Data, E.Size);
        Acc.add(R.read<double>());
      }
    benchmark::DoNotOptimize(Acc.mean());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_AggregateShm)->Arg(32)->Arg(256);

/// End-to-end fork-runtime region (N samples, each commits one double;
/// tuning side folds + aggregates). Arg0: 0 = Files (fork-per-sample),
/// 1 = Shm (fork-per-sample), 2 = Shm through the worker pool (one fork
/// per worker, leases amortize the rest), 3 = the pool configuration
/// with event tracing live (arm 2 doubles as its tracing-disabled
/// baseline — tracing is always compiled in). Fixed iteration count
/// keeps the bump-allocated slab within capacity.
void BM_RegionAggregate(benchmark::State &State) {
  proc::StoreBackend B = State.range(0) ? proc::StoreBackend::Shm
                                        : proc::StoreBackend::Files;
  bool Pool = State.range(0) >= 2;
  bool Trace = State.range(0) == 3;
  std::string TracePath =
      "/tmp/wbt-bench-trace." + std::to_string(getpid()) + ".json";
  const int N = 32;
  proc::Runtime &Rt = proc::Runtime::get();
  proc::RuntimeOptions Opts;
  Opts.MaxPool = 8;
  Opts.Seed = 42;
  Opts.Backend = B;
  Opts.ShmSlabRecords = 1u << 12;
  if (Trace)
    Opts.TracePath = TracePath;
  Rt.init(Opts);
  for (auto _ : State) {
    ScalarAccumulator *Acc = nullptr;
    auto Body = [&] {
      double X = Rt.sample("x", Distribution::uniform(0.0, 1.0));
      if (Rt.isSampling())
        Rt.aggregate("x2", proc::encodeDouble(X * X), nullptr);
      Acc = &Rt.foldScalar("x2");
      Rt.aggregate("x2", proc::encodeDouble(0),
                   [&](proc::AggregationView &) {});
    };
    if (Pool) {
      Rt.samplingRegion(N, Body);
    } else {
      Rt.sampling(N);
      Body();
    }
    benchmark::DoNotOptimize(Acc->mean());
  }
  State.SetItemsProcessed(State.iterations() * N);
  // Surface the runtime's own accounting next to the timing so the
  // --json artifact carries store and tracing behavior per arm.
  obs::RuntimeMetrics M = Rt.metrics();
  State.counters["shm_commits"] = static_cast<double>(M.ShmCommits);
  State.counters["file_fallbacks"] = static_cast<double>(M.FileFallbacks);
  State.counters["trace_events"] = static_cast<double>(M.TraceEvents);
  State.counters["trace_drops"] = static_cast<double>(M.TraceDrops);
  State.counters["fork_p50_us"] = M.ForkLatency.quantileUs(0.5);
  State.counters["commit_p50_us"] = M.CommitLatency.quantileUs(0.5);
  State.counters["region_p50_us"] = M.RegionLatency.quantileUs(0.5);
  State.counters["net_bytes_in"] = static_cast<double>(M.NetBytesIn);
  State.counters["net_bytes_out"] = static_cast<double>(M.NetBytesOut);
  State.counters["net_recv_hello"] = static_cast<double>(M.NetRecvHello);
  State.counters["net_recv_claim_req"] =
      static_cast<double>(M.NetRecvClaimReq);
  State.counters["net_recv_commit_batch"] =
      static_cast<double>(M.NetRecvCommitBatch);
  State.counters["net_recv_trace"] = static_cast<double>(M.NetRecvTrace);
  State.counters["slab_recycles"] = static_cast<double>(M.SlabRecycles);
  State.counters["slab_epoch_hw"] = static_cast<double>(M.SlabEpochHighWater);
  State.counters["thp_granted"] = static_cast<double>(M.ThpGranted);
  State.counters["thp_declined"] = static_cast<double>(M.ThpDeclined);
  Rt.finish();
  if (Trace)
    std::remove(TracePath.c_str());
}
BENCHMARK(BM_RegionAggregate)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(40)
    ->Unit(benchmark::kMillisecond);

} // namespace

#ifndef WBT_SOURCE_ROOT
#define WBT_SOURCE_ROOT "."
#endif
#ifndef WBT_BUILD_TYPE
#define WBT_BUILD_TYPE "unknown"
#endif

/// BENCHMARK_MAIN plus a `--json` convenience flag that routes the
/// results to <repo>/BENCH_runtime.json (benchmark's own JSON format).
int main(int argc, char **argv) {
  if (std::strcmp(WBT_BUILD_TYPE, "Release") != 0)
    std::fprintf(stderr,
                 "WARNING: bench_runtime built as '%s', not Release; "
                 "numbers are not comparable to the committed artifacts\n",
                 WBT_BUILD_TYPE);
  // Stamp the build type into the JSON context so a debug-built artifact
  // is detectable after the fact (CI greps for Release), plus host
  // provenance: numbers are only comparable on the same machine shape.
  benchmark::AddCustomContext("wbt_build_type", WBT_BUILD_TYPE);
  char Host[256] = {0};
  if (gethostname(Host, sizeof(Host) - 1) != 0)
    std::strcpy(Host, "unknown");
  benchmark::AddCustomContext("wbt_hostname", Host);
  benchmark::AddCustomContext(
      "wbt_cores_online", std::to_string(sysconf(_SC_NPROCESSORS_ONLN)));
  benchmark::AddCustomContext(
      "wbt_cores_configured", std::to_string(sysconf(_SC_NPROCESSORS_CONF)));
  std::vector<char *> Args(argv, argv + argc);
  bool Json = false;
  for (auto It = Args.begin(); It != Args.end();) {
    if (std::strcmp(*It, "--json") == 0) {
      Json = true;
      It = Args.erase(It);
    } else {
      ++It;
    }
  }
  std::string OutArg =
      std::string("--benchmark_out=") + WBT_SOURCE_ROOT + "/BENCH_runtime.json";
  std::string FmtArg = "--benchmark_out_format=json";
  if (Json) {
    Args.push_back(OutArg.data());
    Args.push_back(FmtArg.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
