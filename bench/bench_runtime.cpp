//===- bench/bench_runtime.cpp - Runtime micro-benchmarks ------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the tuner machinery itself: scheduler task
// throughput (Alg. 1 vs FIFO), aggregation strategies, sampling
// strategies, and a full in-process pipeline per sample. These quantify
// the framework overhead that the paper's "reasonable overhead" claim
// rests on.
//
//===----------------------------------------------------------------------===//

#include "aggregate/Aggregators.h"
#include "core/Pipeline.h"
#include "strategy/SamplingStrategy.h"

#include <benchmark/benchmark.h>

#include <atomic>

using namespace wbt;

namespace {

void BM_SchedulerThroughput(benchmark::State &State) {
  bool UseAlg1 = State.range(0) != 0;
  for (auto _ : State) {
    Scheduler::Options Opts;
    Opts.Workers = 4;
    Opts.UseAlg1 = UseAlg1;
    Scheduler S(Opts);
    std::atomic<long> Count{0};
    for (int I = 0; I != 1000; ++I)
      S.submitSampling(1000 - I, [&Count] { Count.fetch_add(1); });
    S.waitIdle();
    benchmark::DoNotOptimize(Count.load());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_MajorityVote(benchmark::State &State) {
  size_t Size = static_cast<size_t>(State.range(0));
  std::vector<uint8_t> Mask(Size, 1);
  for (auto _ : State) {
    VoteAccumulator Acc;
    for (int I = 0; I != 50; ++I)
      Acc.add(Mask);
    benchmark::DoNotOptimize(Acc.result(0.5));
  }
  State.SetBytesProcessed(State.iterations() * 50 * Size);
}
BENCHMARK(BM_MajorityVote)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_StrategyDraw(benchmark::State &State) {
  std::unique_ptr<SamplingStrategy> S =
      State.range(0) == 0   ? makeRandomStrategy()
      : State.range(0) == 1 ? makeMcmcStrategy()
                            : makeLatinHypercubeStrategy(1024, 7);
  Distribution D = Distribution::uniform(0.0, 1.0);
  Rng R(11);
  int Run = 0;
  for (auto _ : State) {
    double X = S->draw(Run, "x", D, R);
    S->feedback(Run, X);
    ++Run;
    benchmark::DoNotOptimize(X);
  }
}
BENCHMARK(BM_StrategyDraw)->Arg(0)->Arg(1)->Arg(2);

void BM_PipelinePerSample(benchmark::State &State) {
  // Cost of one engine-managed sampling run with a trivial body: the
  // framework overhead per sample.
  long Samples = State.range(0);
  for (auto _ : State) {
    Pipeline P;
    StageOptions O;
    O.NumSamples = static_cast<int>(Samples);
    P.addStage<double, double, double>(
        "s", O,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [](const double &, SampleContext &Ctx) -> std::optional<double> {
              double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
              Ctx.setScore(X);
              return X;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    RunOptions RO;
    RO.Workers = 4;
    RO.Seed = 5;
    benchmark::DoNotOptimize(P.run(std::any(0.0), RO));
  }
  State.SetItemsProcessed(State.iterations() * Samples);
}
BENCHMARK(BM_PipelinePerSample)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DedupVectors(benchmark::State &State) {
  Rng R(3);
  std::vector<std::vector<double>> Items;
  for (int I = 0; I != 64; ++I) {
    std::vector<double> V(32);
    for (double &X : V)
      X = R.uniform(0, 1);
    Items.push_back(V);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(dedupVectors(Items, 0.05));
}
BENCHMARK(BM_DedupVectors);

} // namespace

BENCHMARK_MAIN();
