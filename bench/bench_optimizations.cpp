//===- bench/bench_optimizations.cpp - Paper Fig. 10 -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The optimization ablation of paper Fig. 10 plus the DESIGN.md ablation
// list: for workloads shaped like the heavier benchmarks (large
// per-sample results, many samples), measure tuning time and the
// undigested-result memory high-water mark under
//
//   o  : one-shot aggregation, no Alg. 1 scheduling (plain FIFO pool)
//   +i : incremental aggregation
//   +s : incremental aggregation + the Alg. 1 scheduler
//
// and additionally the effect of @check pruning (the Canny funnel), and
// the same Fig. 10 shape in the real fork runtime: the aggregation-store
// ablation Files vs Shm vs Shm+incremental-folding (commit latency,
// tuning-side aggregation latency, end-to-end region throughput).
//
// `--json` writes the store-ablation rows to BENCH_optimizations.json at
// the repo root.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "obs/Metrics.h"
#include "proc/Runtime.h"
#include "support/Timer.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <numeric>

using namespace wbt;

namespace {

struct WorkloadSpec {
  const char *Name;
  int Samples;
  size_t ResultBytes;  // per-sample committed payload
  int WorkUnits;       // synthetic compute per sample
};

using BodyFn =
    std::function<std::optional<std::vector<double>>(const double &,
                                                     SampleContext &)>;

/// Runs one configuration; returns (seconds, peak live bytes).
std::pair<double, size_t> runConfig(const WorkloadSpec &W, bool Incremental,
                                    bool UseAlg1) {
  Pipeline P;
  StageOptions S;
  S.NumSamples = W.Samples;
  S.Incremental = Incremental;
  S.ResultBytesHint = W.ResultBytes;
  int Units = W.WorkUnits;
  size_t Elems = W.ResultBytes / sizeof(double);

  auto MakeAgg = [] {
    // Mean-vector aggregation: representable both incrementally (running
    // sums) and batch (all results retained until the barrier).
    class MeanAgg
        : public Aggregator<std::vector<double>, std::vector<double>> {
    public:
      void add(const SampleInfo &, std::vector<double> &&R) override {
        if (Sums.empty())
          Sums.assign(R.size(), 0.0);
        for (size_t I = 0; I != R.size(); ++I)
          Sums[I] += R[I];
        ++N;
      }
      std::vector<std::vector<double>> finish() override {
        for (double &X : Sums)
          X /= std::max(1, N);
        return {Sums};
      }

    private:
      std::vector<double> Sums;
      int N = 0;
    };
    return std::make_unique<MeanAgg>();
  };

  P.addStage<double, std::vector<double>, std::vector<double>>(
      W.Name, S,
      BodyFn([Units, Elems](const double &,
                            SampleContext &Ctx) -> std::optional<std::vector<double>> {
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        // Synthetic stage computation.
        double Acc = X;
        for (int I = 0; I != Units * 1000; ++I)
          Acc = Acc * 1.0000001 + 0.5;
        std::vector<double> Result(Elems, Acc);
        Ctx.setScore(X);
        return Result;
      }),
      std::function<std::unique_ptr<
          Aggregator<std::vector<double>, std::vector<double>>>()>(MakeAgg));

  RunOptions RO;
  RO.Workers = 4;
  RO.Seed = 99;
  RO.UseAlg1Scheduler = UseAlg1;
  Timer T;
  RunReport Rep = P.run(std::any(0.0), RO);
  return {T.seconds(), Rep.Stages[0].PeakLiveBytes};
}

//===----------------------------------------------------------------------===//
// Fork-runtime store ablation (Fig. 10's shape outside the in-process
// engine).
//===----------------------------------------------------------------------===//

/// One measured configuration of the fork-runtime store ablation.
struct StoreAblationRow {
  const char *Name;
  double CommitUs;      // mean per-commit latency inside the children
  double AggregateMs;   // tuning-side aggregation time, summed
  double RegionsPerSec; // end-to-end region throughput
  double TotalSec;
  obs::RuntimeMetrics Metrics; // snapshot taken just before finish()
};

/// Scalar cell reserved for publishing child-side commit latencies to
/// the tuning process (cells 0-7 are claimed by examples/tests).
constexpr int CommitLatencyCell = 8;

/// Runs `Regions` fork-runtime regions of `N` samples each, with every
/// child committing a `PayloadDoubles`-element vector, and measures the
/// three Fig. 10 quantities for one store configuration. `Pool` enters
/// each region through samplingRegion() (worker-pool leases, one fork
/// per worker) instead of sampling() (one fork per sample). A non-null
/// `TracePath` turns the event ring on, measuring tracing's cost against
/// the identical untraced configuration. A non-null `InjectPlan` arms
/// fault injection with that plan text (use a never-firing clause to
/// price the armed-but-idle wrapper checks). `Zygotes` > 0 runs pool
/// regions on a pre-forked nursery of that many parked workers.
/// `Pipeline` > 1 runs the timed regions as one regionBatch() call with
/// that many regions in flight. `HugePages` requests THP backing for
/// the shared mappings. `NetAgents` > 0 adds that many remote sampling
/// agents over localhost TCP, racing the local pool for lease ranges.
StoreAblationRow runStoreConfig(const char *Name, proc::StoreBackend B,
                                bool Fold, bool Pool,
                                const char *TracePath = nullptr,
                                const char *InjectPlan = nullptr,
                                unsigned Zygotes = 0, int Regions = 6,
                                int Pipeline = 1, bool HugePages = false,
                                unsigned NetAgents = 0) {
  using namespace wbt::proc;
  // Untimed regions run first so one-time costs (shm slab creation, COW
  // page faults, zygote nursery spawn, trace-file open) don't land in
  // whichever row happens to run first. Without this the ablation rows
  // were order-dependent: the traced row could beat its own untraced
  // baseline simply by running later. Throughput is then best-of-Trials
  // over `Regions`-region runs, which strips scheduler noise without
  // needing the slow configurations to run for minutes.
  constexpr int WarmupRegions = 2;
  constexpr int Trials = 3;
  constexpr int N = 32;
  constexpr size_t PayloadDoubles = 256;

  Runtime &Rt = Runtime::get();
  RuntimeOptions Opts;
  Opts.MaxPool = 8;
  Opts.Seed = 123;
  Opts.Backend = B;
  // The slab is run-scoped, not per-region: size it for the largest row
  // (about 300 regions x 64 commits x 2KiB) so no configuration spills
  // into the file fallback and muddies the store comparison.
  Opts.ShmSlabRecords = 1u << 16;
  Opts.ShmSlabBytes = 64u << 20;
  Opts.Zygotes = Zygotes;
  Opts.HugePages = HugePages;
  Opts.NetAgents = NetAgents;
  if (TracePath)
    Opts.TracePath = TracePath;
  if (InjectPlan)
    Opts.InjectPlan = InjectPlan;
  Rt.init(Opts);
  Rt.sharedScalarReset(CommitLatencyCell);

  double AggregateSec = 0;
  auto Body = [&] {
    double X = Rt.sample("x", Distribution::uniform(0.0, 1.0));
    if (Rt.isSampling()) {
      std::vector<double> Vec(PayloadDoubles, X);
      std::vector<uint8_t> Bytes = encodeVector(Vec);
      Timer Commit;
      Rt.commitExtra("v", Bytes);
      Rt.sharedScalarAdd(CommitLatencyCell, Commit.seconds() * 1e6);
      Rt.aggregate("done", encodeDouble(X), nullptr);
    }
    MeanVectorAccumulator *Acc = Fold ? &Rt.foldMeanVector("v") : nullptr;
    std::vector<double> Mean;
    Rt.aggregate("done", encodeDouble(0), [&](AggregationView &V) {
      Timer Agg;
      if (Acc) {
        // Incremental: commits were folded during the supervisor
        // sweeps; only the O(accumulator) result extraction remains.
        Mean = Acc->result();
      } else {
        // One-shot: the classic read-everything-at-the-barrier storm.
        MeanVectorAccumulator OneShot;
        for (int I : V.committed("v"))
          OneShot.add(V.loadDoubles("v", I));
        Mean = OneShot.result();
      }
      AggregateSec += Agg.seconds();
    });
    if (Mean.size() != PayloadDoubles)
      std::fprintf(stderr, "store ablation: bad mean size %zu\n",
                   Mean.size());
  };
  auto RunRegion = [&] {
    if (Pool) {
      Rt.samplingRegion(N, Body);
    } else {
      Rt.sampling(N);
      Body();
    }
  };
  // Pipeline > 1 times whole regionBatch() calls instead of sequential
  // regions: one lease table spans the batch, workers roll region to
  // region while the tuning side folds and delivers in order.
  auto RunSpan = [&](int Count) {
    if (Pipeline > 1 && Pool) {
      proc::RegionOptions Ro;
      Ro.Pipeline = Pipeline;
      Rt.regionBatch(Count, N, Ro, Body);
    } else {
      for (int R = 0; R != Count; ++R)
        RunRegion();
    }
  };

  RunSpan(WarmupRegions);
  // Warmup done: drop its contributions and start measuring.
  Rt.sharedScalarReset(CommitLatencyCell);
  AggregateSec = 0;
  double BestSec = std::numeric_limits<double>::infinity();
  for (int T = 0; T != Trials; ++T) {
    Timer Trial;
    RunSpan(Regions);
    BestSec = std::min(BestSec, Trial.seconds());
  }
  StoreAblationRow Row;
  Row.Name = Name;
  Row.CommitUs = Rt.sharedScalarMean(CommitLatencyCell);
  Row.AggregateMs = AggregateSec * 1e3 / Trials;
  Row.RegionsPerSec = Regions / BestSec;
  Row.TotalSec = BestSec;
  Row.Metrics = Rt.metrics();
  Rt.finish();
  return Row;
}

} // namespace

#ifndef WBT_SOURCE_ROOT
#define WBT_SOURCE_ROOT "."
#endif
#ifndef WBT_BUILD_TYPE
#define WBT_BUILD_TYPE "unknown"
#endif

int main(int argc, char **argv) {
  bool Json = false, StoreOnly = false;
  for (int I = 1; I != argc; ++I) {
    Json |= std::strcmp(argv[I], "--json") == 0;
    StoreOnly |= std::strcmp(argv[I], "--store-only") == 0;
  }
  if (std::strcmp(WBT_BUILD_TYPE, "Release") != 0)
    std::fprintf(stderr,
                 "WARNING: bench_optimizations built as '%s', not Release; "
                 "numbers are not comparable to the committed artifacts\n",
                 WBT_BUILD_TYPE);
  // `--store-only` skips the in-process engine ablations (CI's bench
  // smoke only checks the fork-runtime store rows).
  if (!StoreOnly) {
  std::printf("=== Fig. 10: optimization effects (o = one-shot+FIFO, "
              "+i = incremental, +s = +Alg.1 scheduler) ===\n");
  std::printf("%-10s | %9s %12s | %9s %12s | %9s %12s\n", "workload",
              "o time", "o mem", "+i time", "+i mem", "+s time", "+s mem");

  WorkloadSpec Specs[] = {
      // name            samples  result bytes   work
      {"Canny-like", 200, 9216 * 8, 20},   // big images, many samples
      {"Kmeans-like", 120, 64 * 8, 40},    // small results
      {"SVM-like", 60, 512 * 8, 120},      // few, heavy samples
      {"Sphinx-like", 150, 256 * 8, 60},
  };
  for (const WorkloadSpec &W : Specs) {
    auto [TO, MO] = runConfig(W, /*Incremental=*/false, /*UseAlg1=*/false);
    auto [TI, MI] = runConfig(W, true, false);
    auto [TS, MS] = runConfig(W, true, true);
    std::printf("%-10s | %8.3fs %11zuB | %8.3fs %11zuB | %8.3fs %11zuB\n",
                W.Name, TO, MO, TI, MI, TS, MS);
  }
  std::printf("(incremental aggregation should collapse the memory "
              "high-water mark; the scheduler should not regress time)\n\n");

  //===------------------------------------------------------------------===//
  // DESIGN.md ablation 3: pruning via @check (the 200 -> 122 funnel).
  //===------------------------------------------------------------------===//
  std::printf("=== Ablation: @check pruning of poor samples ===\n");
  for (bool Prune : {false, true}) {
    Pipeline P;
    StageOptions S1;
    S1.NumSamples = 200;
    P.addStage<double, double, double>(
        "stage1", S1,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [Prune](const double &,
                    SampleContext &Ctx) -> std::optional<double> {
              double Sigma =
                  Ctx.sample("sigma", Distribution::uniform(0.0, 1.0));
              // "Properly smoothed" band, as in the paper's Canny example.
              if (Prune && !Ctx.check(Sigma > 0.2 && Sigma < 0.8))
                return std::nullopt;
              Ctx.setScore(-std::fabs(Sigma - 0.5));
              return Sigma;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    StageOptions S2;
    S2.NumSamples = 90;
    std::atomic<long> Stage2Work{0};
    P.addStage<double, double, double>(
        "stage2", S2,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [&Stage2Work](const double &In,
                          SampleContext &Ctx) -> std::optional<double> {
              Stage2Work.fetch_add(1);
              double Low = Ctx.sample("low", Distribution::uniform(0.0, 1.0));
              Ctx.setScore(-std::fabs(In + Low - 1.0));
              return In + Low;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    RunOptions RO;
    RO.Workers = 4;
    RO.Seed = 101;
    RunReport Rep = P.run(std::any(0.0), RO);
    std::printf("  pruning %-3s: stage-1 pruned %ld of %ld; total samples "
                "%ld\n",
                Prune ? "on" : "off", Rep.Stages[0].Pruned,
                Rep.Stages[0].SamplesRun, Rep.TotalSamples);
  }
  std::printf("(paper Sec. II-D: 200 samples, 78 pruned, 122 survive)\n\n");
  } // !StoreOnly

  //===------------------------------------------------------------------===//
  // Fork-runtime aggregation-store ablation: Files vs Shm vs Shm+fold vs
  // Shm+fold through the worker pool (forks amortized across leases).
  //===------------------------------------------------------------------===//
  std::printf("=== Fork-runtime store ablation (32-sample regions, 2KiB "
              "payloads; 2 untimed warmup regions, best of 3 trials) ===\n");
  std::printf("%-20s | %11s | %12s | %11s\n", "config", "commit", "aggregate",
              "regions/s");
  // Per-row timed region counts scale with expected throughput so every
  // row measures a comparable wall-clock span; a 6-region run of the
  // fastest configs finishes in a few milliseconds, where scheduler
  // noise swamps the signal.
  StoreAblationRow Rows[] = {
      runStoreConfig("files", proc::StoreBackend::Files, /*Fold=*/false,
                     /*Pool=*/false, nullptr, nullptr, 0, /*Regions=*/6),
      runStoreConfig("shm", proc::StoreBackend::Shm, /*Fold=*/false,
                     /*Pool=*/false, nullptr, nullptr, 0, /*Regions=*/24),
      runStoreConfig("shm+fold", proc::StoreBackend::Shm, /*Fold=*/true,
                     /*Pool=*/false, nullptr, nullptr, 0, /*Regions=*/24),
      runStoreConfig("shm+fold+workerpool", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr, nullptr, 0,
                     /*Regions=*/48),
      // Tracing ablation: same configuration as the workerpool row with
      // the event ring and exporter live. The untraced row above doubles
      // as the "tracing compiled in but disabled" baseline (tracing is
      // always compiled in); CI asserts the two agree within a symmetric
      // noise band.
      runStoreConfig("shm+fold+workerpool+trace", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true,
                     WBT_SOURCE_ROOT "/BENCH_trace.json", nullptr, 0,
                     /*Regions=*/48),
      // Fault-injection ablation: same configuration as the workerpool
      // row with injection armed but a clause that never fires (ordinal
      // far past any call count), so only the per-syscall plan lookups
      // are priced. The untraced workerpool row doubles as the disarmed
      // baseline; CI asserts the two agree within a symmetric noise band.
      runStoreConfig("shm+fold+workerpool+inject", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr,
                     "fork@n1000000:EAGAIN", 0, /*Regions=*/48),
      // Zygote ablation: the pool's per-region worker forks replaced by
      // parked pre-forked processes that restore the region snapshot.
      // This is the fully-amortized configuration -- no fork(2) and no
      // region-table mmap on the per-region path.
      runStoreConfig("shm+fold+zygote", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr, nullptr,
                     /*Zygotes=*/8, /*Regions=*/96),
      runStoreConfig("shm+fold+zygote+trace", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true,
                     WBT_SOURCE_ROOT "/BENCH_trace_zygote.json", nullptr,
                     /*Zygotes=*/8, /*Regions=*/96),
      // Pipelined-batch ablation: the zygote configuration's regions run
      // as one regionBatch() with 4 regions in flight, so workers sample
      // region R+1..R+4 while the tuning side folds and delivers region
      // R. This removes the per-region drain stall — the last serial
      // cost left after zygotes remove the forks.
      runStoreConfig("shm+fold+zygote+batch", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr, nullptr,
                     /*Zygotes=*/8, /*Regions=*/96, /*Pipeline=*/4),
      // Huge-page ablation: same batch configuration with
      // madvise(MADV_HUGEPAGE) requested for the shared slab and control
      // mappings. Advisory only — the row prices the request, and the
      // thp_granted/thp_declined counters in the JSON record whether the
      // kernel honored it.
      runStoreConfig("shm+fold+zygote+batch+hugepage", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr, nullptr,
                     /*Zygotes=*/8, /*Regions=*/96, /*Pipeline=*/4,
                     /*HugePages=*/true),
      // Distributed ablation: the batch configuration plus 4 remote
      // sampling agents connected over localhost TCP, claiming lease
      // ranges out of the same shared counter and streaming commits
      // back in batched frames. On one machine this prices the wire
      // protocol against the shm fast path (agents mostly add parallel
      // sampling processes); across machines the same rows would show
      // throughput past the single-host ceiling.
      runStoreConfig("shm+fold+zygote+batch+net4", proc::StoreBackend::Shm,
                     /*Fold=*/true, /*Pool=*/true, nullptr, nullptr,
                     /*Zygotes=*/8, /*Regions=*/96, /*Pipeline=*/4,
                     /*HugePages=*/false, /*NetAgents=*/4),
  };
  for (const StoreAblationRow &R : Rows)
    std::printf("%-25s | %9.2fus | %10.3fms | %11.1f\n", R.Name, R.CommitUs,
                R.AggregateMs, R.RegionsPerSec);
  std::printf("(shm should beat files on commit latency; folding should "
              "collapse the barrier-time aggregation; the worker pool "
              "should lift region throughput further; zygotes should "
              "remove the last per-region forks; pipelined batches "
              "should overlap sampling with delivery; tracing and armed "
              "fault injection should cost almost nothing)\n");

  if (Json) {
    const char *Path = WBT_SOURCE_ROOT "/BENCH_optimizations.json";
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path);
      return 1;
    }
    // Host provenance: throughput numbers are only comparable across
    // runs of the same machine shape, so record where they came from.
    char Host[256] = {0};
    if (gethostname(Host, sizeof(Host) - 1) != 0)
      std::strcpy(Host, "unknown");
    long CoresOnline = sysconf(_SC_NPROCESSORS_ONLN);
    long CoresConfigured = sysconf(_SC_NPROCESSORS_CONF);
    double PeakRegionsPerSec = 0;
    for (const StoreAblationRow &R : Rows)
      PeakRegionsPerSec = std::max(PeakRegionsPerSec, R.RegionsPerSec);
    std::fprintf(F,
                 "{\n  \"build_type\": \"%s\",\n"
                 "  \"host\": {\"hostname\": \"%s\", \"cores_online\": %ld, "
                 "\"cores_configured\": %ld},\n"
                 "  \"regions_per_sec\": %.2f,\n"
                 "  \"store_ablation\": [\n",
                 WBT_BUILD_TYPE, Host, CoresOnline, CoresConfigured,
                 PeakRegionsPerSec);
    size_t NumRows = sizeof(Rows) / sizeof(Rows[0]);
    for (size_t I = 0; I != NumRows; ++I) {
      std::fprintf(F,
                   "    {\"config\": \"%s\", \"commit_us\": %.3f, "
                   "\"aggregate_ms\": %.3f, \"regions_per_sec\": %.2f, "
                   "\"total_sec\": %.4f,\n     \"metrics\": ",
                   Rows[I].Name, Rows[I].CommitUs, Rows[I].AggregateMs,
                   Rows[I].RegionsPerSec, Rows[I].TotalSec);
      obs::writeMetricsJson(F, Rows[I].Metrics);
      std::fprintf(F, "}%s\n", I + 1 == NumRows ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Path);
  }
  return 0;
}
