//===- bench/bench_optimizations.cpp - Paper Fig. 10 -----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The optimization ablation of paper Fig. 10 plus the DESIGN.md ablation
// list: for workloads shaped like the heavier benchmarks (large
// per-sample results, many samples), measure tuning time and the
// undigested-result memory high-water mark under
//
//   o  : one-shot aggregation, no Alg. 1 scheduling (plain FIFO pool)
//   +i : incremental aggregation
//   +s : incremental aggregation + the Alg. 1 scheduler
//
// and additionally the effect of @check pruning (the Canny funnel).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "support/Timer.h"

#include <cstdio>
#include <numeric>

using namespace wbt;

namespace {

struct WorkloadSpec {
  const char *Name;
  int Samples;
  size_t ResultBytes;  // per-sample committed payload
  int WorkUnits;       // synthetic compute per sample
};

using BodyFn =
    std::function<std::optional<std::vector<double>>(const double &,
                                                     SampleContext &)>;

/// Runs one configuration; returns (seconds, peak live bytes).
std::pair<double, size_t> runConfig(const WorkloadSpec &W, bool Incremental,
                                    bool UseAlg1) {
  Pipeline P;
  StageOptions S;
  S.NumSamples = W.Samples;
  S.Incremental = Incremental;
  S.ResultBytesHint = W.ResultBytes;
  int Units = W.WorkUnits;
  size_t Elems = W.ResultBytes / sizeof(double);

  auto MakeAgg = [] {
    // Mean-vector aggregation: representable both incrementally (running
    // sums) and batch (all results retained until the barrier).
    class MeanAgg
        : public Aggregator<std::vector<double>, std::vector<double>> {
    public:
      void add(const SampleInfo &, std::vector<double> &&R) override {
        if (Sums.empty())
          Sums.assign(R.size(), 0.0);
        for (size_t I = 0; I != R.size(); ++I)
          Sums[I] += R[I];
        ++N;
      }
      std::vector<std::vector<double>> finish() override {
        for (double &X : Sums)
          X /= std::max(1, N);
        return {Sums};
      }

    private:
      std::vector<double> Sums;
      int N = 0;
    };
    return std::make_unique<MeanAgg>();
  };

  P.addStage<double, std::vector<double>, std::vector<double>>(
      W.Name, S,
      BodyFn([Units, Elems](const double &,
                            SampleContext &Ctx) -> std::optional<std::vector<double>> {
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        // Synthetic stage computation.
        double Acc = X;
        for (int I = 0; I != Units * 1000; ++I)
          Acc = Acc * 1.0000001 + 0.5;
        std::vector<double> Result(Elems, Acc);
        Ctx.setScore(X);
        return Result;
      }),
      std::function<std::unique_ptr<
          Aggregator<std::vector<double>, std::vector<double>>>()>(MakeAgg));

  RunOptions RO;
  RO.Workers = 4;
  RO.Seed = 99;
  RO.UseAlg1Scheduler = UseAlg1;
  Timer T;
  RunReport Rep = P.run(std::any(0.0), RO);
  return {T.seconds(), Rep.Stages[0].PeakLiveBytes};
}

} // namespace

int main() {
  std::printf("=== Fig. 10: optimization effects (o = one-shot+FIFO, "
              "+i = incremental, +s = +Alg.1 scheduler) ===\n");
  std::printf("%-10s | %9s %12s | %9s %12s | %9s %12s\n", "workload",
              "o time", "o mem", "+i time", "+i mem", "+s time", "+s mem");

  WorkloadSpec Specs[] = {
      // name            samples  result bytes   work
      {"Canny-like", 200, 9216 * 8, 20},   // big images, many samples
      {"Kmeans-like", 120, 64 * 8, 40},    // small results
      {"SVM-like", 60, 512 * 8, 120},      // few, heavy samples
      {"Sphinx-like", 150, 256 * 8, 60},
  };
  for (const WorkloadSpec &W : Specs) {
    auto [TO, MO] = runConfig(W, /*Incremental=*/false, /*UseAlg1=*/false);
    auto [TI, MI] = runConfig(W, true, false);
    auto [TS, MS] = runConfig(W, true, true);
    std::printf("%-10s | %8.3fs %11zuB | %8.3fs %11zuB | %8.3fs %11zuB\n",
                W.Name, TO, MO, TI, MI, TS, MS);
  }
  std::printf("(incremental aggregation should collapse the memory "
              "high-water mark; the scheduler should not regress time)\n\n");

  //===------------------------------------------------------------------===//
  // DESIGN.md ablation 3: pruning via @check (the 200 -> 122 funnel).
  //===------------------------------------------------------------------===//
  std::printf("=== Ablation: @check pruning of poor samples ===\n");
  for (bool Prune : {false, true}) {
    Pipeline P;
    StageOptions S1;
    S1.NumSamples = 200;
    P.addStage<double, double, double>(
        "stage1", S1,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [Prune](const double &,
                    SampleContext &Ctx) -> std::optional<double> {
              double Sigma =
                  Ctx.sample("sigma", Distribution::uniform(0.0, 1.0));
              // "Properly smoothed" band, as in the paper's Canny example.
              if (Prune && !Ctx.check(Sigma > 0.2 && Sigma < 0.8))
                return std::nullopt;
              Ctx.setScore(-std::fabs(Sigma - 0.5));
              return Sigma;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    StageOptions S2;
    S2.NumSamples = 90;
    std::atomic<long> Stage2Work{0};
    P.addStage<double, double, double>(
        "stage2", S2,
        std::function<std::optional<double>(const double &, SampleContext &)>(
            [&Stage2Work](const double &In,
                          SampleContext &Ctx) -> std::optional<double> {
              Stage2Work.fetch_add(1);
              double Low = Ctx.sample("low", Distribution::uniform(0.0, 1.0));
              Ctx.setScore(-std::fabs(In + Low - 1.0));
              return In + Low;
            }),
        std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
          return std::make_unique<BestScoreAggregator<double>>(false);
        }));
    RunOptions RO;
    RO.Workers = 4;
    RO.Seed = 101;
    RunReport Rep = P.run(std::any(0.0), RO);
    std::printf("  pruning %-3s: stage-1 pruned %ld of %ld; total samples "
                "%ld\n",
                Prune ? "on" : "off", Rep.Stages[0].Pruned,
                Rep.Stages[0].SamplesRun, Rep.TotalSamples);
  }
  std::printf("(paper Sec. II-D: 200 samples, 78 pruned, 122 survive)\n");
  return 0;
}
