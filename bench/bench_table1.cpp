//===- bench/bench_table1.cpp - Paper Table I ------------------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates paper Table I: for each of the 13 benchmark programs, the
// native (untuned) score, WBTuner's tuning time and converged score, and
// OpenTuner's time/score under the escalation protocol — in a single-core
// and a multi-core setting. Scores are ground-truth qualities in each
// program's own units (direction marked with ^ / v as in the paper).
// Ardupilot's black-box column is "-": per the paper (Sec. V-B5),
// OpenTuner cannot express per-flight-mode parameter values.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <thread>

using namespace wbt::apps;
using namespace wbtbench;

namespace {

struct Row {
  std::string Name;
  char Dir;
  int Params;
  std::string Sampling, Aggregation;
  double Native;
  double WbtTime1, WbtScore1;
  std::string OtTime1;
  double OtScore1;
  double Ratio1;
  double WbtTimeN, WbtScoreN;
  std::string OtTimeN;
  double OtScoreN;
  double RatioN;
  bool HasOt = true;
};

Row runApp(TunedApp &App, unsigned MultiWorkers) {
  Row R;
  R.Name = App.name();
  R.Dir = App.lowerIsBetter() ? 'v' : '^';
  R.Params = App.numParams();
  R.Sampling = App.samplingName();
  R.Aggregation = App.aggregationName();
  App.loadDataset(0); // the "largest dataset" stand-in
  R.Native = App.nativeQuality();

  // Single core.
  TuneOutcome Wb1 = App.whiteBoxTune(/*Workers=*/1, /*Seed=*/17);
  R.WbtTime1 = Wb1.Seconds;
  R.WbtScore1 = Wb1.Quality;
  R.HasOt = App.name() != "Ardupilot";
  if (R.HasOt) {
    EscalationResult Ot1 =
        escalateBlackBox(App, Wb1.Seconds, Wb1.Quality, 1, 19);
    R.OtTime1 = timeOrTimeout(Ot1);
    R.OtScore1 = Ot1.Outcome.Quality;
    R.Ratio1 = Ot1.TotalSeconds / std::max(Wb1.Seconds, 1e-6);
  }

  // Multi core.
  TuneOutcome WbN = App.whiteBoxTune(MultiWorkers, 17);
  R.WbtTimeN = WbN.Seconds;
  R.WbtScoreN = WbN.Quality;
  if (R.HasOt) {
    EscalationResult OtN =
        escalateBlackBox(App, WbN.Seconds, WbN.Quality, MultiWorkers, 19);
    R.OtTimeN = timeOrTimeout(OtN);
    R.OtScoreN = OtN.Outcome.Quality;
    R.RatioN = OtN.TotalSeconds / std::max(WbN.Seconds, 1e-6);
  }
  return R;
}

} // namespace

int main() {
  unsigned MultiWorkers =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  std::printf("=== Table I: benchmark statistics and best tuning scores "
              "===\n");
  std::printf("(scores are ground-truth quality; ^ higher is better, "
              "v lower is better; multi-core uses %u workers)\n\n",
              MultiWorkers);
  std::printf("%-11s %c %3s %-8s %-10s | %9s | %9s %9s | %9s %9s %6s | "
              "%9s %9s | %9s %9s %6s\n",
              "Program", ' ', "#P", "Sampling", "Aggreg.", "Native",
              "WBt(s)", "WBscore", "OTt(s)", "OTscore", "o/h",
              "WBt(s)mc", "WBscoremc", "OTt(s)mc", "OTscoremc", "o/h");

  double RatioSum1 = 0, RatioSumN = 0;
  int RatioCount1 = 0, RatioCountN = 0;
  int Timeouts1 = 0, TimeoutsN = 0;

  std::vector<std::unique_ptr<TunedApp>> Apps = makeAllApps();
  for (auto &App : Apps) {
    Row R = runApp(*App, MultiWorkers);
    if (R.HasOt) {
      std::printf("%-11s %c %3d %-8s %-10s | %9.3f | %9.3f %9.3f | %9s "
                  "%9.3f %5.1fx | %9.3f %9.3f | %9s %9.3f %5.1fx\n",
                  R.Name.c_str(), R.Dir, R.Params, R.Sampling.c_str(),
                  R.Aggregation.c_str(), R.Native, R.WbtTime1, R.WbtScore1,
                  R.OtTime1.c_str(), R.OtScore1, R.Ratio1, R.WbtTimeN,
                  R.WbtScoreN, R.OtTimeN.c_str(), R.OtScoreN, R.RatioN);
      if (R.OtTime1 == "t/o")
        ++Timeouts1;
      else {
        RatioSum1 += R.Ratio1;
        ++RatioCount1;
      }
      if (R.OtTimeN == "t/o")
        ++TimeoutsN;
      else {
        RatioSumN += R.RatioN;
        ++RatioCountN;
      }
    } else {
      std::printf("%-11s %c %3d %-8s %-10s | %9.3f | %9.3f %9.3f | %9s "
                  "%9s %6s | %9.3f %9.3f | %9s %9s %6s\n",
                  R.Name.c_str(), R.Dir, R.Params, R.Sampling.c_str(),
                  R.Aggregation.c_str(), R.Native, R.WbtTime1, R.WbtScore1,
                  "-", "-", "-", R.WbtTimeN, R.WbtScoreN, "-", "-", "-");
    }
    std::fflush(stdout);
  }

  std::printf("\nSummary (paper: single-core o/h 3.08x with 2 timeouts; "
              "multi-core 4.67x with 3 timeouts):\n");
  std::printf("  single-core: OpenTuner needed %.2fx WBTuner's time on "
              "average (%d of %d timed out)\n",
              RatioCount1 ? RatioSum1 / RatioCount1 : 0.0, Timeouts1,
              RatioCount1 + Timeouts1);
  std::printf("  multi-core : OpenTuner needed %.2fx WBTuner's time on "
              "average (%d of %d timed out)\n",
              RatioCountN ? RatioSumN / RatioCountN : 0.0, TimeoutsN,
              RatioCountN + TimeoutsN);
  return 0;
}
