//===- bench/bench_drone.cpp - Paper Fig. 22 / Sec. V-B5 -------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The behavior-learning case study: tune the student ("Ardupilot")
// controller's 40 per-mode gains to mimic the reference ("PX4")
// controller's motor-speed behavior, then evaluate on the held-out zigzag
// test mission. Prints Fig. 22's content: motor-speed traces (subsampled
// series), per-mode RMS errors, and the flight-time reduction; plus a
// black-box comparison at equal budget showing why flat 40-parameter
// tuning cannot keep up.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace wbt;
using namespace wbt::apps;
using namespace wbt::drone;
using namespace wbtbench;

int main() {
  std::unique_ptr<TunedApp> App = makeArdupilotApp();

  double Native = App->nativeQuality();
  TuneOutcome Wb = App->whiteBoxTune(/*Workers=*/4, /*Seed=*/83);
  std::printf("=== Sec. V-B5: behavior learning, zigzag test mission ===\n");
  std::printf("motor-speed RMS distance to the reference controller:\n");
  std::printf("  factory student : %.4f\n", Native);
  std::printf("  tuned student   : %.4f  (%ld sampled flights, %.2f s "
              "tuning)\n",
              Wb.Quality, Wb.Samples, Wb.Seconds);

  DroneFig22Data Fig = droneFig22(*App);
  std::printf("\n=== Fig. 22: flight times on the test mission ===\n");
  auto PrintFlight = [](const char *Name, const FlightTrace &T) {
    std::printf("  %-18s %s in %.1f s\n", Name,
                T.MissionCompleted ? "completed" : "DID NOT FINISH",
                T.FlightSeconds);
  };
  PrintFlight("reference (PX4)", Fig.Reference);
  PrintFlight("factory student", Fig.Factory);
  PrintFlight("tuned student", Fig.Tuned);
  if (Fig.Factory.MissionCompleted && Fig.Tuned.MissionCompleted)
    std::printf("  flight time reduced by %.0f%% (paper: 22%%, 105 s -> "
                "82 s)\n",
                100.0 * (Fig.Factory.FlightSeconds - Fig.Tuned.FlightSeconds) /
                    Fig.Factory.FlightSeconds);

  std::printf("\n=== Fig. 22: motor-0 speed traces (every 100th step) "
              "===\n");
  std::printf("%-8s %10s %10s %10s\n", "step", "reference", "factory",
              "tuned");
  size_t Steps = std::min({Fig.Reference.MotorLog.size(),
                           Fig.Factory.MotorLog.size(),
                           Fig.Tuned.MotorLog.size()});
  for (size_t I = 0; I < Steps; I += 100)
    std::printf("%-8zu %10.3f %10.3f %10.3f\n", I,
                Fig.Reference.MotorLog[I][0], Fig.Factory.MotorLog[I][0],
                Fig.Tuned.MotorLog[I][0]);

  std::printf("\nper-mode RMS motor error of the tuned student:\n");
  std::vector<double> PerMode =
      behaviorDistancePerMode(Fig.Tuned, Fig.Reference);
  static const char *Names[] = {"takeoff", "cruise", "land"};
  for (int M = 0; M != NumFlightModes; ++M)
    if (PerMode[static_cast<size_t>(M)] >= 0)
      std::printf("  %-8s %.4f\n", Names[M], PerMode[static_cast<size_t>(M)]);

  std::printf("\n=== black-box comparison at equal budget ===\n");
  TuneOutcome Ot = App->blackBoxTune(Wb.Seconds, 4, 89);
  std::printf("  WBTuner  (per-mode regions): %.4f\n", Wb.Quality);
  std::printf("  OpenTuner (flat 40 params) : %.4f in %ld full missions\n",
              Ot.Quality, Ot.Samples);
  std::printf("(the paper argues flat black-box tuning cannot express "
              "per-flight-mode parameter values at all)\n");
  return 0;
}
