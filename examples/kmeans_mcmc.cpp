//===- examples/kmeans_mcmc.cpp - MCMC sampling with mid-run checks -------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's K-means scenario (Sec. V-B3): tune K with the MCMC sampling
// strategy, kill diverging runs long before they converge via the @check
// hook, and keep the best clustering by silhouette (MAX aggregation). The
// ground-truth cluster count is only revealed at the end for comparison.
//
// Build and run:  ./examples/kmeans_mcmc
//
//===----------------------------------------------------------------------===//

#include "cluster/KMeans.h"
#include "cluster/Scores.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace wbt;
using namespace wbt::clus;

namespace {

struct Clustering {
  int K = 0;
  std::vector<int> Labels;
  double Silhouette = 0;
};

} // namespace

int main() {
  Dataset Data = makeClusterDataset(/*Seed=*/99, /*Index=*/2);
  std::printf("dataset: %zu points in %d dims\n", Data.Points.size(),
              Data.Dims);

  Pipeline P;
  StageOptions S;
  S.NumSamples = 32;
  S.Strategy = [] { return makeMcmcStrategy(/*Temperature=*/0.2,
                                            /*Scale=*/0.25); };
  const Dataset *D = &Data;
  P.addStage<int, Clustering, Clustering>(
      "kmeans", S,
      std::function<std::optional<Clustering>(const int &, SampleContext &)>(
          [D](const int &, SampleContext &Ctx) -> std::optional<Clustering> {
            Clustering Out;
            Out.K = static_cast<int>(
                Ctx.sampleInt("k", Distribution::uniformInt(2, 20)));
            Rng R = Ctx.rng();
            KMeansOptions Opts;
            bool Killed = false;
            // The white-box @check: watch convergence from inside the
            // algorithm and abort hopeless runs early (inertia still a
            // large fraction of the first assignment's after 3 rounds).
            double First = -1;
            Opts.IterationCheck = [&](int Iter, double Inertia) {
              if (Iter == 0)
                First = Inertia;
              if (Iter == 3 && First > 0 && Inertia > 0.9 * First &&
                  Inertia > 1.0) {
                Killed = true;
                return false;
              }
              return true;
            };
            KMeansResult KRes = kmeans(D->Points, Out.K, R, Opts);
            if (!Ctx.check(!Killed))
              return std::nullopt;
            Out.Labels = std::move(KRes.Labels);
            Out.Silhouette = silhouette(D->Points, Out.Labels);
            Ctx.setScore(Out.Silhouette);
            return Out;
          }),
      std::function<std::unique_ptr<Aggregator<Clustering, Clustering>>()>(
          [] {
            return std::make_unique<BestScoreAggregator<Clustering>>(false);
          }));

  RunOptions Opts;
  Opts.Seed = 3;
  RunReport Report = P.run(std::any(0), Opts);

  const Clustering &Best = Report.finalAs<Clustering>(0);
  std::printf("MCMC explored %ld samples (%ld pruned mid-run by @check)\n",
              Report.TotalSamples, Report.Stages[0].Pruned);
  std::printf("chosen K = %d with silhouette %.3f\n", Best.K,
              Best.Silhouette);
  std::printf("ground truth (never shown to the tuner): %d clusters; "
              "adjusted Rand index of the result: %.3f\n",
              Data.TrueClusters, adjustedRand(Best.Labels, Data.TrueLabels));
  return 0;
}
