//===- examples/quickstart.cpp - WBTuner in 60 lines ----------------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The smallest useful white-box tuning task: a two-stage computation
// where each stage has one tunable knob. Black-box tuning would need to
// search the 2-D cross product with a full execution per sample; the
// staged engine samples each stage independently (the paper's m*n vs m^n
// argument) and reuses the first stage's result for every second-stage
// sample.
//
//   Stage 1: y = expensivePreprocess(input, alpha)   — tune alpha
//   Stage 2: z = refine(y, beta)                     — tune beta
//
// Build and run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <cmath>
#include <cstdio>

using namespace wbt;

namespace {

// A stand-in for an expensive, parameterized preprocessing stage. The
// best alpha depends on the input (here: 0.3 * Input).
double expensivePreprocess(double Input, double Alpha) {
  return Input - std::pow(Alpha - 0.3 * Input, 2);
}

// The refinement stage; the best beta is wherever beta == y / 2.
double refine(double Y, double Beta) {
  return Y - std::fabs(Beta - Y / 2.0);
}

} // namespace

int main() {
  Pipeline P;

  // Stage 1: sample alpha, keep the best intermediate result.
  StageOptions S1;
  S1.NumSamples = 32;
  P.addStage<double, double, double>(
      "preprocess", S1,
      std::function<std::optional<double>(const double &, SampleContext &)>(
          [](const double &Input,
             SampleContext &Ctx) -> std::optional<double> {
            double Alpha =
                Ctx.sample("alpha", Distribution::uniform(0.0, 1.0));
            double Y = expensivePreprocess(Input, Alpha);
            Ctx.setScore(Y); // higher intermediate value = better
            return Y;
          }),
      std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
        return std::make_unique<BestScoreAggregator<double>>(false);
      }));

  // Stage 2: sample beta on top of the stage-1 winner.
  StageOptions S2;
  S2.NumSamples = 32;
  P.addStage<double, double, double>(
      "refine", S2,
      std::function<std::optional<double>(const double &, SampleContext &)>(
          [](const double &Y, SampleContext &Ctx) -> std::optional<double> {
            double Beta = Ctx.sample("beta", Distribution::uniform(0.0, 1.0));
            double Z = refine(Y, Beta);
            Ctx.setScore(Z);
            return Z;
          }),
      std::function<std::unique_ptr<Aggregator<double, double>>()>([] {
        return std::make_unique<BestScoreAggregator<double>>(false);
      }));

  RunOptions Opts;
  Opts.Seed = 42;
  RunReport Report = P.run(std::any(1.0), Opts);

  std::printf("tuned result: %.4f (optimum 1.0)\n",
              Report.finalAs<double>(0));
  std::printf("samples: %ld total = %d + %d (a black-box tuner searching "
              "the cross product would need %d full executions for the "
              "same grid density)\n",
              Report.TotalSamples, 32, 32, 32 * 32);
  for (const StageReport &S : Report.Stages)
    std::printf("  stage %-10s: %ld samples, %ld pruned\n", S.Name.c_str(),
                S.SamplesRun, S.Pruned);
  return 0;
}
