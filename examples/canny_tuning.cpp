//===- examples/canny_tuning.cpp - The paper's Fig. 4 walkthrough ---------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the running example of paper Sec. II: tune Canny's sigma in
// the Gaussian-smoothing region (pruning improperly smoothed samples,
// splitting one tuning process per survivor) and (low, high) in the edge
// traversal region, aggregating edge maps by majority vote. Writes the
// input, the untuned result and the tuned result as PGM files.
//
// Build and run:  ./examples/canny_tuning
//
//===----------------------------------------------------------------------===//

#include "aggregate/Aggregators.h"
#include "core/Pipeline.h"
#include "image/Canny.h"
#include "image/Ssim.h"
#include "image/Synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

using namespace wbt;
using namespace wbt::img;

namespace {

struct Smoothed {
  Image Suppressed;
  double Sigma = 0;
  double Sharpness = 0;
};

} // namespace

int main() {
  // A noisy, blurred scene: the regime where fixed parameters fail and
  // tuning pays off.
  SceneOptions SceneOpts;
  SceneOpts.NoiseLo = 0.05;
  SceneOpts.NoiseHi = 0.12;
  SceneOpts.BlurHi = 1.6;
  Scene S = makeScene(/*Seed=*/4242, /*Index=*/3, SceneOpts);
  int W = S.Picture.width(), H = S.Picture.height();
  double BaseSharpness = laplacianSharpness(S.Picture);
  S.Picture.writePgm("canny_input.pgm");

  // Untuned baseline: the paper's Fig. 1 configuration.
  std::vector<uint8_t> Untuned = canny(S.Picture, 0.6, 0.5, 0.9);
  Image::fromMask(Untuned, W, H).writePgm("canny_untuned.pgm");

  auto Votes = std::make_shared<VoteAccumulator>();

  Pipeline P;
  StageOptions Gaussian; // wbt_sampling(200, RANDOM) scaled down
  Gaussian.NumSamples = 40;
  P.addStage<Image, Smoothed, Smoothed>(
      "gaussian", Gaussian,
      std::function<std::optional<Smoothed>(const Image &, SampleContext &)>(
          [BaseSharpness](const Image &In,
                          SampleContext &Ctx) -> std::optional<Smoothed> {
            Smoothed Out;
            Out.Sigma = Ctx.sample("sigma", Distribution::uniform(0.2, 3.0));
            // Injected misbehaving trial: one run throws instead of
            // returning. The engine contains it (reported as Failed) —
            // sampling runs are disposable, exactly like crashed
            // processes in the fork runtime.
            if (Ctx.sampleIndex() == 7)
              throw std::runtime_error("injected trial failure");
            Image Blur = gaussianSmooth(In, Out.Sigma);
            Out.Sharpness = laplacianSharpness(Blur) / (BaseSharpness + 1e-9);
            // AggregateGaussian's pruning: drop improperly smoothed runs.
            if (!Ctx.check(Out.Sharpness > 0.08 && Out.Sharpness < 0.85))
              return std::nullopt;
            Out.Suppressed = nonMaxSuppress(sobel(Blur));
            Ctx.setScore(-std::fabs(Out.Sharpness - 0.45));
            return Out;
          }),
      BatchAggregator<Smoothed, Smoothed>::Fn(
          [](std::vector<std::pair<SampleInfo, Smoothed>> &&Rs) {
            // wbt_split(): one tuning process per well-smoothed image.
            std::sort(Rs.begin(), Rs.end(), [](const auto &A, const auto &B) {
              return std::fabs(A.second.Sharpness - 0.45) <
                     std::fabs(B.second.Sharpness - 0.45);
            });
            std::vector<Smoothed> Keep;
            for (auto &[Info, St] : Rs)
              if (Keep.size() < 5)
                Keep.push_back(std::move(St));
            return Keep;
          }));

  StageOptions Traversal;
  Traversal.NumSamples = 24;
  P.addStage<Smoothed, int, int>(
      "edge-traversal", Traversal,
      std::function<std::optional<int>(const Smoothed &, SampleContext &)>(
          [Votes, W, H](const Smoothed &In,
                        SampleContext &Ctx) -> std::optional<int> {
            double Low = Ctx.sample("low", Distribution::uniform(0.05, 0.6));
            double High = Ctx.sample("high", Distribution::uniform(0.3, 0.95));
            std::vector<uint8_t> Mask = hysteresis(In.Suppressed, Low, High);
            double Frac = edgeFraction(Mask);
            // The paper's "very few or too many pixels" check.
            if (!Ctx.check(Frac > 0.003 && Frac < 0.25))
              return std::nullopt;
            Votes->add(Mask); // majority vote across every sample run
            Ctx.setScore(-std::fabs(std::log(Frac / 0.04)));
            return 1;
          }),
      std::function<std::unique_ptr<Aggregator<int, int>>()>([] {
        return std::make_unique<BestScoreAggregator<int>>(false);
      }));

  RunOptions Opts;
  Opts.Seed = 7;
  RunReport Report = P.run(std::any(S.Picture), Opts);

  std::vector<uint8_t> Tuned = Votes->result(0.5);
  Image::fromMask(Tuned, W, H).writePgm("canny_tuned.pgm");
  Image::fromMask(S.TrueEdges, W, H).writePgm("canny_ground_truth.pgm");

  std::printf("tuning funnel:\n");
  for (const StageReport &St : Report.Stages)
    std::printf("  %-14s: %ld samples, %ld pruned, %ld failed, %ld splits\n",
                St.Name.c_str(), St.SamplesRun, St.Pruned, St.Failed,
                St.Splits);
  std::printf("SSIM vs expert ground truth: untuned %.3f -> tuned %.3f\n",
              ssimMasks(Untuned, S.TrueEdges, W, H),
              ssimMasks(Tuned, S.TrueEdges, W, H));
  std::printf("wrote canny_input.pgm, canny_untuned.pgm, canny_tuned.pgm, "
              "canny_ground_truth.pgm\n");
  return 0;
}
