//===- examples/drone_behavior.cpp - Behavior learning (Sec. V-B5) --------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Makes the "Ardupilot" student controller learn the flying behavior of
// the "PX4" reference: per-flight-mode tuning regions sample each mode's
// gain bank and score it by that mode's motor-speed RMS error alone —
// something a black-box tuner over all 40 parameters cannot express. The
// tuned controller is then flown on a held-out zigzag mission.
//
// Build and run:  ./examples/drone_behavior
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cstdio>

using namespace wbt::apps;
using namespace wbt::drone;

int main() {
  std::unique_ptr<TunedApp> App = makeArdupilotApp();

  double Factory = App->nativeQuality();
  std::printf("factory student vs reference on the test mission: "
              "motor RMS error %.4f\n",
              Factory);

  std::printf("tuning the three flight-mode regions (takeoff, cruise, "
              "land)...\n");
  TuneOutcome Out = App->whiteBoxTune(/*Workers=*/4, /*Seed=*/7);
  std::printf("tuned student: motor RMS error %.4f (%ld sampled flights "
              "in %.2f s)\n",
              Out.Quality, Out.Samples, Out.Seconds);

  DroneFig22Data Fig = droneFig22(*App);
  std::printf("\nflight times on the zigzag mission:\n");
  std::printf("  reference: %6.1f s (%s)\n", Fig.Reference.FlightSeconds,
              Fig.Reference.MissionCompleted ? "completed" : "not finished");
  std::printf("  factory  : %6.1f s (%s)\n", Fig.Factory.FlightSeconds,
              Fig.Factory.MissionCompleted ? "completed" : "not finished");
  std::printf("  tuned    : %6.1f s (%s)\n", Fig.Tuned.FlightSeconds,
              Fig.Tuned.MissionCompleted ? "completed" : "not finished");

  if (Fig.Factory.MissionCompleted && Fig.Tuned.MissionCompleted)
    std::printf("\nflight time reduced by %.0f%% after learning "
                "(paper: 22%%)\n",
                100.0 * (Fig.Factory.FlightSeconds - Fig.Tuned.FlightSeconds) /
                    Fig.Factory.FlightSeconds);
  return 0;
}
