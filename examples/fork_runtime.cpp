//===- examples/fork_runtime.cpp - The paper's literal primitives ---------===//
//
// Part of the WBTuner reproduction, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the faithful fork-based runtime (proc/Runtime.h): real sampling
// processes created with fork(2), the shared-memory aggregation store
// with incremental tuning-side folding, the shared-memory Alg. 1 pool,
// @check pruning, @split tuning processes and cross-process majority
// voting. This is the paper's Fig. 4 programming model verbatim —
// primitives inserted into straight-line code.
//
// Build and run:  ./examples/fork_runtime
//
// Set WBT_TRACE=/path/to/trace.json (or RuntimeOptions::TracePath) to
// record every fork, lease, commit, and region of the run as a Chrome
// trace-event file — open it in Perfetto or chrome://tracing.
//
//===----------------------------------------------------------------------===//

#include "proc/Runtime.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace wbt;
using namespace wbt::proc;

int main() {
  Runtime &Rt = Runtime::get();
  RuntimeOptions Opts;
  Opts.MaxPool = 8;
  Opts.Seed = 2024;
  Rt.init(Opts);

  // ---- Region 1: tune `sigma`; keep the two best intermediate results
  // alive as split tuning processes. --------------------------------------
  std::printf("[pid-ish %d] region 1: sampling sigma with 8 processes\n",
              Rt.isTuning() ? 0 : Rt.sampleIndex());
  Rt.sampling(8);
  double Sigma = Rt.sample("sigma", Distribution::uniform(0.0, 2.0));
  double Intermediate = 4.0 - std::pow(Sigma - 1.3, 2); // peak at 1.3
  // @check: prune clearly poor samples before they commit.
  Rt.check(Intermediate > 2.0);
  if (Rt.isSampling()) {
    Rt.commitExtra("sigma", encodeDouble(Sigma));
    Rt.aggregate("intermediate", encodeDouble(Intermediate), nullptr);
  }

  // Incremental folding: with the default Shm store backend the tuning
  // process folds each child's commit into this accumulator during its
  // supervision sweeps, so the statistics are ready at the barrier
  // without re-reading every sample.
  ScalarAccumulator &Fold = Rt.foldScalar("intermediate");

  double MySigma = 0, MyIntermediate = 0;
  bool IsSplitChild = false;
  Rt.aggregate("intermediate", encodeDouble(0), [&](AggregationView &V) {
    std::vector<int> Committed = V.committed("intermediate");
    std::printf("tuning process: %zu of %d samples survived @check\n",
                Committed.size(), V.spawned());
    std::printf("tuning process: folded mean over %zu commits = %.3f "
                "(%llu via the shm slab)\n",
                Fold.count(), Fold.mean(),
                static_cast<unsigned long long>(Rt.shmCommits()));
    int Kept = 0;
    for (int I : Committed) {
      double Val = V.loadDouble("intermediate", I);
      double Sig = V.loadDouble("sigma", I);
      if (Kept == 2)
        break;
      ++Kept;
      // @split: a fresh tuning process continues with this result.
      if (Rt.split()) {
        IsSplitChild = true;
        MySigma = Sig;
        MyIntermediate = Val;
        return;
      }
    }
  });

  if (IsSplitChild) {
    // ---- Region 2 (in each split tuning process): tune `threshold` and
    // vote the final bitmask across ALL processes through the shared
    // accumulator. --------------------------------------------------------
    Rt.sampling(6);
    double Threshold =
        Rt.sample("threshold", Distribution::uniform(0.0, 1.0));
    std::vector<uint8_t> Mask(16);
    for (size_t I = 0; I != Mask.size(); ++I)
      Mask[I] = (MyIntermediate * (I + 1) / 16.0) > Threshold * 4.0 ? 1 : 0;
    if (Rt.isSampling()) {
      Rt.sharedVoteAdd(Mask);
      Rt.aggregate("done", encodeDouble(1), nullptr);
    }
    Rt.aggregate("done", encodeDouble(0), nullptr);
    std::printf("split tuning process (sigma=%.3f) finished its region\n",
                MySigma);
    Rt.finishAndExit();
  }

  // ---- Region 3 (root): fault tolerance. Sampling processes are
  // disposable — one crashes, one hangs past the region timeout — and the
  // supervisor reaps both, reclaims their pool slots, and reports their
  // terminal status through the AggregationView. ---------------------------
  RegionOptions Ro;
  Ro.TimeoutSec = 0.5; // wall-clock budget for the whole region
  Ro.MaxRetries = 1;   // one spare replaces the first failed sample
  Rt.sampling(6, Ro);
  double Gain = Rt.sample("gain", Distribution::uniform(0.0, 1.0));
  if (Rt.isSampling()) {
    if (Rt.sampleIndex() == 1)
      abort(); // injected crash: e.g. a segfaulting candidate config
    if (Rt.sampleIndex() == 4)
      sleep(30); // injected hang: killed by the region timeout
    Rt.aggregate("gain", encodeDouble(Gain), nullptr);
  }
  Rt.aggregate("gain", encodeDouble(0), [&](AggregationView &V) {
    std::printf("supervisor: %d committed, %d crashed, %d timed out, "
                "%d spare(s) activated\n",
                V.countStatus(SampleStatus::Committed),
                V.countStatus(SampleStatus::Crashed),
                V.countStatus(SampleStatus::TimedOut),
                V.spawned() - 6 - V.countStatus(SampleStatus::Unused));
    for (int I = 0; I != V.spawned(); ++I)
      if (V.status(I) == SampleStatus::Crashed)
        std::printf("supervisor: sample %d died on signal %d\n", I,
                    V.crashSignal(I));
  });
  std::printf("root: pool slots reclaimed — %d of %u free (root holds one)\n",
              Rt.freeSlots(), Rt.maxPool());

  // ---- Region 4 (root): worker-pool sampling. The same programming
  // model, but the 16 samples share 4 long-lived workers that claim
  // sample indices from a lease counter instead of costing one fork(2)
  // each. Draws are bitwise-identical to the fork-per-sample mode. ---------
  RegionOptions Po;
  Po.Workers = 4;
  ScalarAccumulator *PoolFold = nullptr;
  Rt.samplingRegion(16, Po, [&] {
    double Bias = Rt.sample("bias", Distribution::uniform(-1.0, 1.0));
    if (Rt.isSampling())
      Rt.aggregate("bias2", encodeDouble(Bias * Bias), nullptr);
    PoolFold = &Rt.foldScalar("bias2");
    Rt.aggregate("bias2", encodeDouble(0), [&](AggregationView &V) {
      std::printf("worker pool: %d samples committed through %d workers "
                  "(mean bias^2 = %.3f)\n",
                  V.countStatus(SampleStatus::Committed), Po.Workers,
                  PoolFold->mean());
    });
  });

  // Metrics are collected whether or not tracing is on; snapshot them
  // before finish() tears the shared mapping down.
  obs::RuntimeMetrics M = Rt.metrics();
  std::printf("metrics: %llu regions (%.1f/s), %llu shm commits, %llu file "
              "fallbacks, %llu crashed, %llu timed out, %llu lease "
              "reclaims, fork p50 %.0fus, commit p50 %.0fus\n",
              static_cast<unsigned long long>(M.RegionsResolved),
              M.regionsPerSec(),
              static_cast<unsigned long long>(M.ShmCommits),
              static_cast<unsigned long long>(M.FileFallbacks),
              static_cast<unsigned long long>(M.CrashedSamples),
              static_cast<unsigned long long>(M.TimedOutSamples),
              static_cast<unsigned long long>(M.LeaseReclaims),
              M.ForkLatency.quantileUs(0.5), M.CommitLatency.quantileUs(0.5));
  if (Rt.traceEnabled())
    std::printf("tracing: writing %s at finish()\n", Rt.tracePath().c_str());

  // Root: wait for the split children, then read the cross-process vote.
  Rt.finish(); // waits for all descendants
  std::printf("root: all tuning processes finished\n");
  std::printf("(the shared majority vote lived in the runtime's shared "
              "memory; see tests/ProcTest.cpp for assertions over it)\n");
  return 0;
}
