//===- tests/PropertyTest.cpp - cross-module property tests ---------------===//
//
// Part of the WBTuner reproduction, MIT license.
//
// Deeper invariants across the tuning machinery: quantile calculus,
// engine determinism and equivalences, auto-tune boundedness, CV/split
// composition, and black-box technique behavior under stress.
//
//===----------------------------------------------------------------------===//

#include "blackbox/SearchDriver.h"
#include "core/Pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

using namespace wbt;

namespace {

using BodyFn =
    std::function<std::optional<double>(const double &, SampleContext &)>;
using AggFactory =
    std::function<std::unique_ptr<Aggregator<double, double>>()>;

AggFactory bestMax() {
  return [] { return std::make_unique<BestScoreAggregator<double>>(false); };
}

} // namespace

//===----------------------------------------------------------------------===//
// Distribution quantile calculus
//===----------------------------------------------------------------------===//

class QuantileTest : public testing::TestWithParam<int> {};

TEST_P(QuantileTest, MonotoneAndInSupport) {
  Distribution D = Distribution::uniform(0, 1);
  switch (GetParam()) {
  case 0:
    D = Distribution::uniform(-3.0, 7.0);
    break;
  case 1:
    D = Distribution::logUniform(0.01, 100.0);
    break;
  case 2:
    D = Distribution::uniformInt(2, 19);
    break;
  case 3:
    D = Distribution::gaussian(1.0, 2.0, -5.0, 7.0);
    break;
  default:
    D = Distribution::choice({1.0, 2.0, 4.0, 8.0});
    break;
  }
  double Prev = -1e300;
  for (double U = 0.0; U <= 1.0 + 1e-12; U += 0.05) {
    double Q = D.quantile(U);
    EXPECT_GE(Q, D.lo() - 1e-9);
    EXPECT_LE(Q, D.hi() + 1e-9);
    EXPECT_GE(Q, Prev - 1e-9) << "quantile must be monotone, U=" << U;
    Prev = Q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, QuantileTest, testing::Values(0, 1, 2, 3, 4));

TEST(QuantileTest, MedianOfUniformIsMidpoint) {
  Distribution D = Distribution::uniform(10.0, 20.0);
  EXPECT_NEAR(D.quantile(0.5), 15.0, 1e-12);
}

TEST(QuantileTest, GaussianMedianIsMean) {
  Distribution D = Distribution::gaussian(3.0, 1.5, -10.0, 10.0);
  EXPECT_NEAR(D.quantile(0.5), 3.0, 1e-6);
}

TEST(QuantileTest, IntQuantileCoversAllValuesUniformly) {
  Distribution D = Distribution::uniformInt(0, 3);
  std::set<int> Seen;
  for (double U = 0.01; U < 1.0; U += 0.02)
    Seen.insert(static_cast<int>(D.quantile(U)));
  EXPECT_EQ(Seen, (std::set<int>{0, 1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// Engine equivalences and determinism
//===----------------------------------------------------------------------===//

namespace {

/// Runs a one-stage max-score pipeline and returns the final value.
double runMaxPipeline(int Samples, unsigned Workers, bool Incremental,
                      bool UseAlg1, uint64_t Seed) {
  Pipeline P;
  StageOptions O;
  O.NumSamples = Samples;
  O.Incremental = Incremental;
  P.addStage<double, double, double>(
      "s", O,
      BodyFn([](const double &, SampleContext &Ctx) -> std::optional<double> {
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        Ctx.setScore(X);
        return X;
      }),
      bestMax());
  RunOptions RO;
  RO.Workers = Workers;
  RO.Seed = Seed;
  RO.UseAlg1Scheduler = UseAlg1;
  return P.run(std::any(0.0), RO).finalAs<double>(0);
}

} // namespace

TEST(EnginePropertyTest, ResultIndependentOfWorkerCount) {
  // Max over a fixed sample set is order-insensitive, so the outcome must
  // not depend on the parallelism or the scheduler flavor.
  double Reference = runMaxPipeline(64, 1, true, true, 99);
  for (unsigned Workers : {2u, 4u, 8u})
    EXPECT_DOUBLE_EQ(runMaxPipeline(64, Workers, true, true, 99), Reference);
  EXPECT_DOUBLE_EQ(runMaxPipeline(64, 4, true, false, 99), Reference);
}

TEST(EnginePropertyTest, BatchAndIncrementalAgree) {
  // For a commutative aggregator both collection modes must give the same
  // answer.
  double Inc = runMaxPipeline(48, 4, true, true, 7);
  double Batch = runMaxPipeline(48, 4, false, true, 7);
  EXPECT_DOUBLE_EQ(Inc, Batch);
}

TEST(EnginePropertyTest, MoreSamplesNeverHurtMaxAggregation) {
  // Sample sets under one seed are nested prefixes, so max is monotone.
  double S16 = runMaxPipeline(16, 1, true, true, 31);
  double S64 = runMaxPipeline(64, 1, true, true, 31);
  EXPECT_LE(S16, S64 + 1e-12);
}

TEST(EnginePropertyTest, AutoTuneRespectsMaxSamples) {
  Pipeline P;
  StageOptions O;
  O.NumSamples = 4;
  O.AutoTuneSamples = true;
  O.MaxSamples = 32;
  std::atomic<long> Bodies{0};
  P.addStage<double, double, double>(
      "auto", O,
      BodyFn([&](const double &, SampleContext &Ctx) -> std::optional<double> {
        Bodies.fetch_add(1);
        // Score always improves with more samples (max of uniforms), so
        // auto-tune doubles until MaxSamples stops it.
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        Ctx.setScore(X);
        return X;
      }),
      bestMax());
  P.setAutoTuneScore<double>(
      [](const std::vector<double> &Outs) { return Outs.empty() ? 0 : Outs[0]; });
  RunReport Rep = P.run(std::any(0.0), RunOptions{.Seed = 3});
  // 4 + 8 + 16 + 32 = 60 is the absolute ceiling of doubling attempts.
  EXPECT_LE(Bodies.load(), 60);
  EXPECT_LE(Rep.Stages[0].AutoTuneRetries, 3);
}

TEST(EnginePropertyTest, SplitTimesCvMultiplies) {
  // Stage 1 splits into 3; stage 2 uses 4 SVGs x 2 folds per tuning
  // process: sample accounting must multiply exactly.
  Pipeline P;
  StageOptions S1;
  S1.NumSamples = 6;
  P.addStage<double, double, double>(
      "split3", S1,
      BodyFn([](const double &, SampleContext &Ctx) -> std::optional<double> {
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        Ctx.setScore(X);
        return X;
      }),
      BatchAggregator<double, double>::Fn(
          [](std::vector<std::pair<SampleInfo, double>> &&Rs) {
            std::vector<double> Outs;
            for (size_t I = 0; I != 3 && I < Rs.size(); ++I)
              Outs.push_back(Rs[I].second);
            return Outs;
          }));
  StageOptions S2;
  S2.NumSamples = 4;
  S2.KFolds = 2;
  P.addStage<double, double, double>(
      "cv", S2,
      BodyFn([](const double &In, SampleContext &Ctx) -> std::optional<double> {
        double Y = Ctx.sample("y", Distribution::uniform(0.0, 1.0));
        Ctx.setScore(Y);
        return In + Y + Ctx.fold() * 0.0;
      }),
      bestMax());
  RunReport Rep = P.run(std::any(0.0), RunOptions{.Seed = 5});
  EXPECT_EQ(Rep.Stages[0].SamplesRun, 6);
  EXPECT_EQ(Rep.Stages[1].TuningProcesses, 3);
  EXPECT_EQ(Rep.Stages[1].SamplesRun, 3 * 4 * 2);
  EXPECT_EQ(Rep.Finals.size(), 3u);
}

TEST(EnginePropertyTest, LatinHypercubeStrategyInEngine) {
  // With exactly N samples and the LHS strategy, the N drawn values land
  // in N distinct strata.
  const int N = 16;
  Pipeline P;
  StageOptions O;
  O.NumSamples = N;
  O.Strategy = [] { return makeLatinHypercubeStrategy(N, 77); };
  std::mutex M;
  std::vector<double> Drawn;
  P.addStage<double, double, double>(
      "lhs", O,
      BodyFn([&](const double &, SampleContext &Ctx) -> std::optional<double> {
        double X = Ctx.sample("x", Distribution::uniform(0.0, 1.0));
        {
          std::lock_guard<std::mutex> Lock(M);
          Drawn.push_back(X);
        }
        Ctx.setScore(X);
        return X;
      }),
      bestMax());
  P.run(std::any(0.0), RunOptions{.Seed = 8});
  ASSERT_EQ(Drawn.size(), static_cast<size_t>(N));
  std::set<int> Strata;
  for (double X : Drawn)
    Strata.insert(std::min(N - 1, static_cast<int>(X * N)));
  EXPECT_EQ(Strata.size(), static_cast<size_t>(N));
}

TEST(EnginePropertyTest, EmptyAggregationEndsPipelineGracefully) {
  // A stage whose aggregator returns nothing terminates that tuning
  // process; downstream stages never run.
  Pipeline P;
  StageOptions O;
  O.NumSamples = 4;
  P.addStage<double, double, double>(
      "empty", O,
      BodyFn([](const double &, SampleContext &Ctx) -> std::optional<double> {
        Ctx.setScore(1.0);
        return 1.0;
      }),
      BatchAggregator<double, double>::Fn(
          [](std::vector<std::pair<SampleInfo, double>> &&) {
            return std::vector<double>{};
          }));
  std::atomic<int> Stage2Runs{0};
  StageOptions O2;
  O2.NumSamples = 4;
  P.addStage<double, double, double>(
      "after", O2,
      BodyFn([&](const double &, SampleContext &Ctx) -> std::optional<double> {
        Stage2Runs.fetch_add(1);
        Ctx.setScore(1.0);
        return 1.0;
      }),
      bestMax());
  RunReport Rep = P.run(std::any(0.0), RunOptions{.Seed = 9});
  EXPECT_TRUE(Rep.Finals.empty());
  EXPECT_EQ(Stage2Runs.load(), 0);
}

//===----------------------------------------------------------------------===//
// Black-box baseline properties
//===----------------------------------------------------------------------===//

TEST(BlackboxPropertyTest, MoreBudgetNeverWorse) {
  ConfigSpace S;
  S.addDouble("x", 0.0, 1.0, 0.5);
  S.addDouble("y", 0.0, 1.0, 0.5);
  auto Objective = [](const Config &C) {
    double X = C.asDouble(0), Y = C.asDouble(1);
    return -((X - 0.42) * (X - 0.42) + (Y - 0.77) * (Y - 0.77));
  };
  double Prev = -1e18;
  for (long Evals : {20L, 100L, 500L}) {
    bb::SearchDriver D;
    bb::DriverOptions O;
    O.MaxEvals = Evals;
    O.Seed = 13;
    double Best = D.run(S, Objective, O).BestScore;
    EXPECT_GE(Best, Prev - 1e-12) << Evals;
    Prev = Best;
  }
}

TEST(BlackboxPropertyTest, HandlesConstantObjective) {
  ConfigSpace S;
  S.addDouble("x", 0.0, 1.0, 0.5);
  bb::SearchDriver D;
  bb::DriverOptions O;
  O.MaxEvals = 50;
  O.Seed = 14;
  bb::DriverResult R = D.run(S, [](const Config &) { return 1.0; }, O);
  EXPECT_DOUBLE_EQ(R.BestScore, 1.0);
  EXPECT_EQ(R.Evals, 50);
}

TEST(BlackboxPropertyTest, SingleParamBooleanSpace) {
  ConfigSpace S;
  S.addBool("flag", false);
  bb::SearchDriver D;
  bb::DriverOptions O;
  O.MaxEvals = 30;
  O.Seed = 15;
  bb::DriverResult R =
      D.run(S, [](const Config &C) { return C.asBool(0) ? 1.0 : 0.0; }, O);
  EXPECT_TRUE(R.Best.asBool(0));
}

TEST(BlackboxPropertyTest, NeedleInHaystackUsuallyFoundByEnsemble) {
  // A narrow peak on a plateau: random search alone would need ~400
  // draws on average; the ensemble with bandit credit should find it
  // reliably within 2000.
  ConfigSpace S;
  S.addDouble("x", 0.0, 1.0, 0.0);
  bb::SearchDriver D;
  bb::DriverOptions O;
  O.MaxEvals = 2000;
  O.Seed = 16;
  bb::DriverResult R = D.run(
      S,
      [](const Config &C) {
        double X = C.asDouble(0);
        return std::fabs(X - 0.314) < 0.02 ? 1.0 - std::fabs(X - 0.314) : 0.0;
      },
      O);
  EXPECT_GT(R.BestScore, 0.97);
}
